module minup

go 1.23
