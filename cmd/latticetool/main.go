// Command latticetool inspects security lattice description files: it
// validates the lattice laws, reports the structural quantities of the
// paper's complexity analysis (size, height H, branching factor B, path
// sum M), and exports Graphviz DOT renderings of the Hasse diagram.
//
// Usage:
//
//	latticetool -lattice lat.txt info
//	latticetool -lattice lat.txt check
//	latticetool -lattice lat.txt dot > lat.dot
package main

import (
	"flag"
	"fmt"
	"os"

	"minup"
	"minup/internal/lattice"
)

func main() {
	latticePath := flag.String("lattice", "", "path to the lattice description file")
	flag.Parse()
	if *latticePath == "" || flag.NArg() != 1 {
		flag.Usage()
		fmt.Fprintln(os.Stderr, "subcommands: info | check | dot")
		os.Exit(2)
	}

	f, err := os.Open(*latticePath)
	if err != nil {
		fatal(err)
	}
	lat, err := minup.ParseLattice(f)
	f.Close()
	if err != nil {
		fatal(err)
	}

	switch flag.Arg(0) {
	case "info":
		fmt.Printf("name:    %s\n", lat.Name())
		fmt.Printf("top:     %s\n", lat.FormatLevel(lat.Top()))
		fmt.Printf("bottom:  %s\n", lat.FormatLevel(lat.Bottom()))
		fmt.Printf("height:  %d\n", lat.Height())
		if en, ok := lat.(lattice.Enumerable); ok {
			fmt.Printf("size:    %d\n", len(en.Elements()))
			fmt.Printf("branch:  %d (max immediate predecessors B)\n", lattice.Branching(en))
			fmt.Printf("pathsum: %d (the paper's M)\n", lattice.PathSumM(en))
		} else if m, ok := lat.(*lattice.MLS); ok {
			fmt.Printf("size:    %d (%d levels × 2^%d categories)\n",
				m.Count(), m.NumLevels(), m.NumCategories())
		}
	case "check":
		en, ok := lat.(lattice.Enumerable)
		if !ok {
			fmt.Println("non-enumerable lattice: operations are correct by construction (bit-vector encoding)")
			return
		}
		if err := lattice.Check(en); err != nil {
			fatal(err)
		}
		fmt.Printf("ok: %d elements satisfy all lattice laws\n", len(en.Elements()))
	case "dot":
		en, ok := lat.(lattice.Enumerable)
		if !ok {
			fatal(fmt.Errorf("dot export requires an enumerable lattice"))
		}
		if err := lattice.WriteDOT(os.Stdout, en); err != nil {
			fatal(err)
		}
	default:
		fatal(fmt.Errorf("unknown subcommand %q", flag.Arg(0)))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "latticetool:", err)
	os.Exit(1)
}
