package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"minup"
	"minup/internal/lattice"
	"minup/internal/workload"
)

// The -solverjson benchmarks measure the compile/solve split directly:
// for each instance shape, "fresh" solves through the one-shot Solve path
// (which compiles a throwaway snapshot per call) and "compiled" solves a
// pre-compiled snapshot through SolveContext with pooled sessions. The
// allocs_per_op gap between the two is the amortized cost Theorem 5.2
// attributes to the one-time analysis.

// solverBenchResult is one row of BENCH_solver.json.
type solverBenchResult struct {
	// Name is shape/path, e.g. "cyclic-scc/compiled".
	Name string `json:"name"`
	// S is the instance's total constraint size (Theorem 5.2's S).
	S int `json:"S"`
	// N is the number of benchmark iterations run.
	N int `json:"iterations"`
	// NsPerOp is wall time per solve in nanoseconds.
	NsPerOp float64 `json:"ns_per_op"`
	// AllocsPerOp counts heap allocations per solve.
	AllocsPerOp int64 `json:"allocs_per_op"`
	// BytesPerOp counts heap bytes per solve.
	BytesPerOp int64 `json:"bytes_per_op"`
}

func solverBenchShapes() map[string]workload.ConstraintSpec {
	return map[string]workload.ConstraintSpec{
		"acyclic": {
			Seed: 1, NumAttrs: 60, NumConstraints: 180, MaxLHS: 3,
			LevelRHSFraction: 0.3,
		},
		"cyclic-scc": {
			Seed: 2, NumAttrs: 60, NumConstraints: 180, MaxLHS: 3,
			LevelRHSFraction: 0.3, Cyclic: true, SingleSCC: true,
		},
		"upper-bounds": {
			Seed: 3, NumAttrs: 60, NumConstraints: 120, MaxLHS: 2,
			LevelRHSFraction: 0.5, UpperBoundFraction: 0.4,
		},
	}
}

// writeSolverBench runs the fresh-vs-compiled benchmark matrix and writes
// the JSON rows to path.
func writeSolverBench(path string) error {
	lat := lattice.MustChain("bench", "U", "C", "S", "TS")
	var rows []solverBenchResult
	for _, shape := range []string{"acyclic", "cyclic-scc", "upper-bounds"} {
		spec := solverBenchShapes()[shape]
		ctx := context.Background()

		// Upper-bound shapes can be inconsistent for an unlucky seed; scan
		// seeds deterministically until the instance is solvable.
		var set *minup.ConstraintSet
		var err error
		for {
			set, err = workload.Constraints(lat, spec)
			if err != nil {
				return fmt.Errorf("generate %s: %w", shape, err)
			}
			if minup.CheckSolvable(set) == nil {
				break
			}
			spec.Seed++
			if spec.Seed > 1000 {
				return fmt.Errorf("generate %s: no solvable instance in 1000 seeds", shape)
			}
		}
		size := set.Stats().TotalSize
		compiled := minup.Compile(set)
		if _, err := minup.SolveContext(ctx, compiled, minup.Options{}); err != nil {
			return fmt.Errorf("solve %s: %w", shape, err)
		}

		fresh := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				// The set is frozen by Compile above; Solve only reads it.
				if _, err := minup.Solve(set, minup.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
		rows = append(rows, benchRow(shape+"/fresh", size, fresh))

		comp := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := minup.SolveContext(ctx, compiled, minup.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
		rows = append(rows, benchRow(shape+"/compiled", size, comp))
	}

	out, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if err := os.WriteFile(path, out, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "benchtab: wrote %d benchmark rows to %s\n", len(rows), path)
	return nil
}

func benchRow(name string, size int, r testing.BenchmarkResult) solverBenchResult {
	return solverBenchResult{
		Name:        name,
		S:           size,
		N:           r.N,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
}
