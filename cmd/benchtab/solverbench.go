package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"minup"
	"minup/internal/baseline"
	"minup/internal/lattice"
	"minup/internal/workload"
)

// The -solverjson benchmarks measure the compile/solve split directly:
// for each instance shape, "fresh" solves through the one-shot Solve path
// (which compiles a throwaway snapshot per call) and "compiled" solves a
// pre-compiled snapshot through SolveContext with pooled sessions. The
// allocs_per_op gap between the two is the amortized cost Theorem 5.2
// attributes to the one-time analysis.

// solverBenchResult is one row of BENCH_solver.json.
type solverBenchResult struct {
	// Name is shape/path, e.g. "cyclic-scc/compiled".
	Name string `json:"name"`
	// S is the instance's total constraint size (Theorem 5.2's S).
	S int `json:"S"`
	// N is the number of benchmark iterations run.
	N int `json:"iterations"`
	// NsPerOp is wall time per solve in nanoseconds.
	NsPerOp float64 `json:"ns_per_op"`
	// AllocsPerOp counts heap allocations per solve.
	AllocsPerOp int64 `json:"allocs_per_op"`
	// BytesPerOp counts heap bytes per solve.
	BytesPerOp int64 `json:"bytes_per_op"`
	// Stats is one instrumented solve's operation counts for this
	// instance (present with -stats), correlating wall time with Try
	// counts across shapes.
	Stats *solveStatsRow `json:"stats,omitempty"`
	// BaselineStats is the work of one baseline run (qian rows).
	BaselineStats *baselineStatsRow `json:"baseline_stats,omitempty"`
}

// solveStatsRow is the JSON shape of one solve's core.Stats.
type solveStatsRow struct {
	Tries          int    `json:"tries"`
	FailedTries    int    `json:"failed_tries"`
	Collapses      int    `json:"collapses"`
	AttrsProcessed int    `json:"attrs_processed"`
	MinlevelCalls  int    `json:"minlevel_calls"`
	TrySteps       int    `json:"try_steps"`
	DescentSteps   int    `json:"descent_steps"`
	LatticeLub     uint64 `json:"lattice_lub"`
	LatticeGlb     uint64 `json:"lattice_glb"`
	LatticeDom     uint64 `json:"lattice_dominates"`
	LatticeCovers  uint64 `json:"lattice_covers"`
	DurationUS     int64  `json:"duration_us"`
}

func newSolveStatsRow(st minup.SolveStats) *solveStatsRow {
	return &solveStatsRow{
		Tries:          st.Tries,
		FailedTries:    st.FailedTries,
		Collapses:      st.Collapses,
		AttrsProcessed: st.AttrsProcessed,
		MinlevelCalls:  st.MinlevelCalls,
		TrySteps:       st.TrySteps,
		DescentSteps:   st.DescentSteps,
		LatticeLub:     st.LatticeOps.Lub,
		LatticeGlb:     st.LatticeOps.Glb,
		LatticeDom:     st.LatticeOps.Dominates,
		LatticeCovers:  st.LatticeOps.Covers,
		DurationUS:     st.Duration.Microseconds(),
	}
}

// baselineStatsRow is the JSON shape of one baseline.Stats.
type baselineStatsRow struct {
	Steps      int   `json:"steps"`
	Upgrades   int   `json:"upgrades"`
	Vectors    int   `json:"vectors"`
	DurationUS int64 `json:"duration_us"`
}

func solverBenchShapes() map[string]workload.ConstraintSpec {
	return map[string]workload.ConstraintSpec{
		"acyclic": {
			Seed: 1, NumAttrs: 60, NumConstraints: 180, MaxLHS: 3,
			LevelRHSFraction: 0.3,
		},
		"cyclic-scc": {
			Seed: 2, NumAttrs: 60, NumConstraints: 180, MaxLHS: 3,
			LevelRHSFraction: 0.3, Cyclic: true, SingleSCC: true,
		},
		"upper-bounds": {
			Seed: 3, NumAttrs: 60, NumConstraints: 120, MaxLHS: 2,
			LevelRHSFraction: 0.5, UpperBoundFraction: 0.4,
		},
	}
}

// writeSolverBench runs the fresh-vs-compiled benchmark matrix and writes
// the JSON rows to path. With stats enabled, each row additionally carries
// the operation counts of one instrumented solve of its instance, and a
// qian baseline row is emitted per lower-bound-only shape for
// apples-to-apples comparison.
func writeSolverBench(path string, withStats bool) error {
	lat := lattice.MustChain("bench", "U", "C", "S", "TS")
	var rows []solverBenchResult
	for _, shape := range []string{"acyclic", "cyclic-scc", "upper-bounds"} {
		spec := solverBenchShapes()[shape]
		ctx := context.Background()

		// Upper-bound shapes can be inconsistent for an unlucky seed; scan
		// seeds deterministically until the instance is solvable.
		var set *minup.ConstraintSet
		var err error
		for {
			set, err = workload.Constraints(lat, spec)
			if err != nil {
				return fmt.Errorf("generate %s: %w", shape, err)
			}
			if minup.CheckSolvable(set) == nil {
				break
			}
			spec.Seed++
			if spec.Seed > 1000 {
				return fmt.Errorf("generate %s: no solvable instance in 1000 seeds", shape)
			}
		}
		size := set.Stats().TotalSize
		compiled := minup.Compile(set)
		res, err := minup.SolveContext(ctx, compiled, minup.Options{CollectLatticeOps: withStats})
		if err != nil {
			return fmt.Errorf("solve %s: %w", shape, err)
		}
		var stats *solveStatsRow
		if withStats {
			stats = newSolveStatsRow(res.Stats)
		}

		fresh := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				// The set is frozen by Compile above; Solve only reads it.
				if _, err := minup.Solve(set, minup.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
		freshRow := benchRow(shape+"/fresh", size, fresh)
		freshRow.Stats = stats
		rows = append(rows, freshRow)

		comp := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := minup.SolveContext(ctx, compiled, minup.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
		compRow := benchRow(shape+"/compiled", size, comp)
		compRow.Stats = stats
		rows = append(rows, compRow)

		// Qian's propagation does not support §6 upper bounds.
		if withStats && len(set.UpperBounds()) == 0 {
			qst := &baseline.Stats{}
			if _, err := baseline.QianWithStats(ctx, set, qst); err != nil {
				return fmt.Errorf("qian %s: %w", shape, err)
			}
			qb := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := baseline.QianContext(ctx, set); err != nil {
						b.Fatal(err)
					}
				}
			})
			qrow := benchRow(shape+"/qian", size, qb)
			qrow.BaselineStats = &baselineStatsRow{
				Steps:      qst.Steps,
				Upgrades:   qst.Upgrades,
				Vectors:    qst.Vectors,
				DurationUS: qst.Duration.Microseconds(),
			}
			rows = append(rows, qrow)
		}
	}

	out, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if err := os.WriteFile(path, out, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "benchtab: wrote %d benchmark rows to %s\n", len(rows), path)
	return nil
}

func benchRow(name string, size int, r testing.BenchmarkResult) solverBenchResult {
	return solverBenchResult{
		Name:        name,
		S:           size,
		N:           r.N,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
}
