// Command benchtab regenerates the reproduction experiment tables E1–E10
// described in DESIGN.md and recorded in EXPERIMENTS.md: the Figure 2
// worked example, the Theorem 5.2 scaling measurements, the §5 lattice-
// encoding costs, the baseline comparisons, the Theorem 6.1 NP-hardness
// contrast, and the §6 extensions.
//
// Usage:
//
//	benchtab                          # run every experiment
//	benchtab -exp E3,E7               # run selected experiments
//	benchtab -solverjson BENCH_solver.json  # solver micro-benchmarks as JSON
//	benchtab -solverjson BENCH_solver.json -stats  # + per-instance stats matrix
//
// -solverjson runs the compile/solve-split micro-benchmarks (one-shot
// Solve vs Compile-once + SolveContext, over acyclic, cyclic, and
// upper-bound instance shapes) and writes machine-readable results to the
// named file instead of running the experiment tables. Adding -stats
// attaches each instance's solver operation counts (tries, collapses,
// lattice ops, duration) to its rows and emits qian baseline rows, so the
// JSON trajectories can correlate wall time with Try counts across shapes.
// -trace-out profiles one instrumented compile+solve per shape and writes
// the span trees as Chrome trace-event JSON for Perfetto.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"minup/internal/experiments"
)

func main() {
	expFlag := flag.String("exp", "", "comma-separated experiment ids (default: all)")
	list := flag.Bool("list", false, "list experiment ids and titles, then exit")
	solverJSON := flag.String("solverjson", "", "write solver fresh-vs-compiled benchmark results as JSON to this file, then exit")
	withStats := flag.Bool("stats", false, "with -solverjson: include per-instance solver operation counts and qian baseline rows")
	traceOut := flag.String("trace-out", "", "write a Chrome trace-event JSON profile of one instrumented compile+solve per benchmark shape to this file, then exit (combinable with -solverjson)")
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(experiments.IDs(), "\n"))
		return
	}
	if *traceOut != "" {
		if err := writeSolverTrace(*traceOut); err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: %v\n", err)
			os.Exit(1)
		}
		if *solverJSON == "" {
			return
		}
	}
	if *solverJSON != "" {
		if err := writeSolverBench(*solverJSON, *withStats); err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: %v\n", err)
			os.Exit(1)
		}
		return
	}

	ids := experiments.IDs()
	if *expFlag != "" {
		ids = nil
		for _, id := range strings.Split(*expFlag, ",") {
			id = strings.TrimSpace(strings.ToUpper(id))
			if _, ok := experiments.Registry[id]; !ok {
				fmt.Fprintf(os.Stderr, "benchtab: unknown experiment %q (have %s)\n",
					id, strings.Join(experiments.IDs(), ", "))
				os.Exit(2)
			}
			ids = append(ids, id)
		}
	}

	for i, id := range ids {
		if i > 0 {
			fmt.Println()
		}
		table, err := experiments.Registry[id]()
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: %s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Print(table.Format())
	}
}
