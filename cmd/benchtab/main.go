// Command benchtab regenerates the reproduction experiment tables E1–E10
// described in DESIGN.md and recorded in EXPERIMENTS.md: the Figure 2
// worked example, the Theorem 5.2 scaling measurements, the §5 lattice-
// encoding costs, the baseline comparisons, the Theorem 6.1 NP-hardness
// contrast, and the §6 extensions.
//
// Usage:
//
//	benchtab              # run every experiment
//	benchtab -exp E3,E7   # run selected experiments
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"minup/internal/experiments"
)

func main() {
	expFlag := flag.String("exp", "", "comma-separated experiment ids (default: all)")
	list := flag.Bool("list", false, "list experiment ids and titles, then exit")
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(experiments.IDs(), "\n"))
		return
	}

	ids := experiments.IDs()
	if *expFlag != "" {
		ids = nil
		for _, id := range strings.Split(*expFlag, ",") {
			id = strings.TrimSpace(strings.ToUpper(id))
			if _, ok := experiments.Registry[id]; !ok {
				fmt.Fprintf(os.Stderr, "benchtab: unknown experiment %q (have %s)\n",
					id, strings.Join(experiments.IDs(), ", "))
				os.Exit(2)
			}
			ids = append(ids, id)
		}
	}

	for i, id := range ids {
		if i > 0 {
			fmt.Println()
		}
		table, err := experiments.Registry[id]()
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: %s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Print(table.Format())
	}
}
