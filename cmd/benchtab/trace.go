package main

import (
	"context"
	"fmt"
	"os"

	"minup"
	"minup/internal/lattice"
	"minup/internal/workload"
)

// writeSolverTrace runs one fully instrumented compile+solve per benchmark
// shape and writes the combined span trees as Chrome trace-event JSON
// (loadable in Perfetto or chrome://tracing). Each shape gets its own root
// span and its own trace track, so the three profiles stack side by side.
func writeSolverTrace(path string) error {
	lat := lattice.MustChain("bench", "U", "C", "S", "TS")
	var roots []*minup.Span
	for _, shape := range []string{"acyclic", "cyclic-scc", "upper-bounds"} {
		spec := solverBenchShapes()[shape]

		// Same solvable-seed scan as the benchmark matrix, so the traced
		// instances match the benchmarked ones.
		var set *minup.ConstraintSet
		var err error
		for {
			set, err = workload.Constraints(lat, spec)
			if err != nil {
				return fmt.Errorf("generate %s: %w", shape, err)
			}
			if minup.CheckSolvable(set) == nil {
				break
			}
			spec.Seed++
			if spec.Seed > 1000 {
				return fmt.Errorf("generate %s: no solvable instance in 1000 seeds", shape)
			}
		}

		root := minup.NewTracer().Start(shape)
		ctx := minup.ContextWithSpan(context.Background(), root)
		compiled := set.CompileContext(ctx)
		if _, err := minup.SolveContext(ctx, compiled, minup.Options{}); err != nil {
			return fmt.Errorf("solve %s: %w", shape, err)
		}
		root.End()
		roots = append(roots, root)
	}

	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := minup.WriteChromeTrace(f, roots...); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "benchtab: wrote Chrome trace for %d shapes to %s (load in ui.perfetto.dev)\n", len(roots), path)
	return nil
}
