// Command minclass computes a minimal security classification from a
// lattice file and a constraint file, implementing the paper's Algorithm
// 3.1 as a command-line tool.
//
// Usage:
//
//	minclass -lattice lat.txt -constraints cons.txt [-trace] [-check]
//
// The lattice file uses the format of internal/lattice.Parse (chain / mls /
// explicit / semilattice); the constraint file uses the format of
// ConstraintSet.ParseInto, e.g.
//
//	salary >= Confidential
//	lub(name, salary) >= Secret
//	bonus >= salary
//	Secret >= rank        # §6 upper bound
//
// With -trace the execution is printed as a Figure 2(b)-style table; with
// -check the result is re-verified against every constraint before
// printing. With -trace-out file.json the run (parse, compile with its
// graph/SCC phases, solve with per-SCC descent spans) is profiled and
// written as Chrome trace-event JSON, loadable in Perfetto or
// chrome://tracing — see the recipe in EXPERIMENTS.md.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"minup"
)

func main() {
	latticePath := flag.String("lattice", "", "path to the lattice description file")
	consPath := flag.String("constraints", "", "path to the constraint file")
	trace := flag.Bool("trace", false, "print the execution trace table")
	check := flag.Bool("check", false, "re-verify the result against all constraints and probe minimality")
	explain := flag.String("explain", "", "explain why the named attribute has its level")
	dotPath := flag.String("dot", "", "write the constraint graph in Graphviz DOT format to this file")
	stats := flag.Bool("stats", false, "print constraint-set shape and solver operation statistics to stderr")
	traceOut := flag.String("trace-out", "", "write a Chrome trace-event JSON profile of this run (parse, compile, solve) to this file; load it in Perfetto or chrome://tracing")
	flag.Parse()
	if *latticePath == "" || *consPath == "" {
		flag.Usage()
		os.Exit(2)
	}

	// With -trace-out the whole run (parse, compile, solve) is recorded
	// under one root span and dumped as Chrome trace-event JSON on exit.
	var troot *minup.Span
	if *traceOut != "" {
		troot = minup.NewTracer().Start("minclass")
	}

	var parseSpan *minup.Span
	if troot != nil {
		parseSpan = troot.Child("parse")
	}
	lf, err := os.Open(*latticePath)
	if err != nil {
		fatal(err)
	}
	lat, err := minup.ParseLattice(lf)
	lf.Close()
	if err != nil {
		fatal(err)
	}

	cf, err := os.Open(*consPath)
	if err != nil {
		fatal(err)
	}
	set := minup.NewConstraintSet(lat)
	err = set.ParseInto(cf)
	cf.Close()
	if err != nil {
		fatal(err)
	}
	if parseSpan != nil {
		parseSpan.SetAttr("attrs", int64(set.NumAttrs()))
		parseSpan.SetAttr("constraints", int64(len(set.Constraints())))
		parseSpan.End()
	}

	if *stats {
		fmt.Fprintln(os.Stderr, "minclass:", set.Stats())
	}
	if *dotPath != "" {
		df, err := os.Create(*dotPath)
		if err != nil {
			fatal(err)
		}
		if err := set.WriteDOT(df); err != nil {
			fatal(err)
		}
		if err := df.Close(); err != nil {
			fatal(err)
		}
	}

	// Compile once, then solve / probe / explain against the immutable
	// snapshot. Ctrl-C cancels the context and aborts a long solve cleanly.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if troot != nil {
		ctx = minup.ContextWithSpan(ctx, troot)
	}
	compiled := set.CompileContext(ctx)
	res, err := minup.SolveContext(ctx, compiled, minup.Options{
		RecordTrace:       *trace,
		CollectLatticeOps: *stats,
	})
	if err != nil {
		if errors.Is(err, minup.ErrCanceled) {
			fatal(fmt.Errorf("interrupted: %w", err))
		}
		fatal(err)
	}
	if *trace {
		fmt.Println(res.Trace.Table())
	}
	if *stats {
		st := res.Stats
		cs := compiled.CompileStats()
		fmt.Fprintf(os.Stderr,
			"minclass: compile: sccs=%d total_size=%d ub_pops=%d ub_tightenings=%d duration=%s\n",
			cs.SCCs, cs.TotalSize, cs.UBPops, cs.UBTightenings, cs.Duration)
		fmt.Fprintf(os.Stderr,
			"minclass: solve: tries=%d failed_tries=%d collapses=%d attrs_processed=%d minlevel_calls=%d try_steps=%d descent_steps=%d lattice{lub=%d glb=%d dominates=%d covers=%d} duration=%s\n",
			st.Tries, st.FailedTries, st.Collapses, st.AttrsProcessed,
			st.MinlevelCalls, st.TrySteps, st.DescentSteps,
			st.LatticeOps.Lub, st.LatticeOps.Glb, st.LatticeOps.Dominates,
			st.LatticeOps.Covers, st.Duration)
	}
	fmt.Println(set.FormatAssignment(res.Assignment))
	if *check {
		if v := set.Violations(res.Assignment); v != nil {
			fatal(fmt.Errorf("result violates constraints: %v", v))
		}
		minimal, w, err := minup.ProbeMinimalityContext(ctx, compiled, res.Assignment)
		if err != nil {
			fatal(err)
		}
		if !minimal {
			fatal(fmt.Errorf("result not minimal: %s lowerable to %s",
				set.AttrName(w.Attr), lat.FormatLevel(w.To)))
		}
		fmt.Fprintf(os.Stderr, "minclass: verified %d constraints, %d upper bounds, and minimality\n",
			len(set.Constraints()), len(set.UpperBounds()))
	}
	if *explain != "" {
		attr, ok := set.AttrByName(*explain)
		if !ok {
			fatal(fmt.Errorf("unknown attribute %q", *explain))
		}
		ex, err := minup.ExplainContext(ctx, compiled, res.Assignment, attr)
		if err != nil {
			fatal(err)
		}
		fmt.Println(minup.FormatExplanation(set, ex))
	}
	if troot != nil {
		troot.End()
		tf, err := os.Create(*traceOut)
		if err != nil {
			fatal(err)
		}
		if err := minup.WriteChromeTrace(tf, troot); err != nil {
			fatal(err)
		}
		if err := tf.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "minclass: wrote Chrome trace to %s (load in ui.perfetto.dev)\n", *traceOut)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "minclass:", err)
	os.Exit(1)
}
