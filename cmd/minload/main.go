// Command minload drives a staged load test against a running minupd and
// gates the result: ramp → storm → soak, plus chaos stages that arm the
// server's fault injector over its debug listener (minupd -fault-admin).
// Each stage mixes catalog mutations (seeded workload.MutationStreams),
// cached policy solves, cold solves, and trace requests across concurrent
// clients, records client-side latency histograms and outcome counts,
// scrapes /metrics?format=prometheus between stages, and writes per-stage
// JSON plus a summary into the result directory. Any failed stage gate
// exits nonzero.
//
// Usage:
//
//	minupd -policies -fault-admin &                # the target
//	minload                                        # full default plan
//	minload -stages ramp,storm -stage-seconds 10   # CI smoke
//	minload -plan plan.json -out artifacts/load    # custom plan
//
// The default plan (printable via -print-plan) answers the ROADMAP's
// capacity question — ramp to find the knee, storm to prove overload stays
// typed (shed/degrade, not errors), soak for sustained health, chaos for
// health under injected faults. -stage-seconds rescales every stage's
// duration for quick runs; -seed replays a run's client-side decisions
// exactly.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"minup/internal/load"
)

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8080", "base URL of the minupd under test; a comma-separated list targets a cluster (reads spread across members, writes follow 307 leader redirects)")
	debugAddr := flag.String("debug-addr", "http://127.0.0.1:6060", "base URL of minupd's debug listener (fault arming); empty disables chaos stages")
	out := flag.String("out", "loadout", "result directory for per-stage JSON and summary.json; empty writes nothing")
	planPath := flag.String("plan", "", "JSON plan file (default: the built-in staged plan)")
	stages := flag.String("stages", "", "comma-separated stage names to run (default: all)")
	stageSeconds := flag.Float64("stage-seconds", 0, "override every stage's duration in seconds (0 keeps plan durations)")
	clients := flag.Int("clients", 0, "override every stage's client count (0 keeps plan values)")
	seed := flag.Int64("seed", 0, "override the plan seed (0 keeps the plan's)")
	printPlan := flag.Bool("print-plan", false, "print the effective plan as JSON and exit")
	quiet := flag.Bool("quiet", false, "suppress per-stage progress lines")
	flag.Parse()

	plan := load.DefaultPlan()
	if *planPath != "" {
		var err error
		plan, err = load.ReadPlanFile(*planPath)
		if err != nil {
			fatal(err)
		}
	}
	if *stages != "" {
		var err error
		plan, err = plan.Filter(*stages)
		if err != nil {
			fatal(err)
		}
	}
	if *seed != 0 {
		plan.Seed = *seed
	}
	for i := range plan.Stages {
		if *stageSeconds > 0 {
			plan.Stages[i].Seconds = *stageSeconds
		}
		if *clients > 0 {
			plan.Stages[i].Clients = *clients
		}
	}
	if err := plan.Validate(); err != nil {
		fatal(err)
	}
	if *printPlan {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(plan); err != nil {
			fatal(err)
		}
		return
	}

	var addrs []string
	for _, a := range strings.Split(*addr, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	if len(addrs) == 0 {
		fatal(fmt.Errorf("-addr: no target address"))
	}
	runner := &load.Runner{
		BaseURL:  addrs[0],
		Addrs:    addrs,
		DebugURL: *debugAddr,
		OutDir:   *out,
	}
	if !*quiet {
		runner.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "minload: "+format+"\n", args...)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	report, err := runner.Run(ctx, plan)
	if err != nil {
		fatal(err)
	}
	for i := range report.Stages {
		st := &report.Stages[i]
		verdict := "PASS"
		if !st.GatePassed {
			verdict = "FAIL"
		}
		fmt.Printf("%-8s %s  attempts=%d rps=%.0f success=%.2f%% degraded=%.2f%% shed=%.2f%% errors=%.2f%% p99=%.1fms\n",
			st.Name, verdict, st.Total.Attempts, st.ThroughputRPS,
			100*st.Total.SuccessRate(), 100*st.Total.DegradedRate(),
			100*st.Total.ShedRate(), 100*st.Total.ErrorRate(), st.Latency.P99MS)
		for _, reason := range st.GateFailures {
			fmt.Printf("         gate: %s\n", reason)
		}
	}
	if *out != "" {
		fmt.Printf("results: %s\n", *out)
	}
	if !report.Passed {
		fmt.Printf("FAIL: stage gates failed: %v\n", report.FailedStages())
		os.Exit(1)
	}
	fmt.Println("PASS")
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "minload: %v\n", err)
	os.Exit(1)
}
