package main

import (
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"minup"
	"minup/internal/constraint"
)

// newTestServer builds a server over the Figure 2(a) fixture with the full
// middleware stack and default serving policy, mirroring main().
func newTestServer(t *testing.T) (*server, http.Handler, *strings.Builder) {
	t.Helper()
	return newTestServerCfg(t, defaultConfig())
}

// newTestServerCfg is newTestServer with an explicit serving policy, for
// the admission/degradation tests.
func newTestServerCfg(t *testing.T, cfg config) (*server, http.Handler, *strings.Builder) {
	t.Helper()
	f := constraint.NewFigure2()
	reg := minup.NewMetricsRegistry()
	cat, err := minup.OpenCatalog(minup.CatalogOptions{Metrics: reg, Flight: cfg.flight})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cat.Close() })
	srv := newServer(f.Set, f.Set.Compile(), cat, reg, cfg)
	logBuf := &strings.Builder{}
	logger := slog.New(slog.NewJSONHandler(logBuf, nil))
	return srv, srv.routes(logger), logBuf
}

func get(t *testing.T, h http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
	return rec
}

func TestSolveEndpoint(t *testing.T) {
	_, h, _ := newTestServer(t)
	rec := get(t, h, "/solve")
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /solve = %d: %s", rec.Code, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type = %q", ct)
	}
	if rec.Header().Get("X-Request-Id") == "" {
		t.Fatal("no X-Request-Id header")
	}
	var out solveResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if out.Assignment["B"] != "L5" {
		t.Fatalf("λ(B) = %q, want L5", out.Assignment["B"])
	}
	if out.TraceID != "" {
		t.Fatalf("untraced solve reported trace id %q", out.TraceID)
	}
}

func TestSolveEndpointTraced(t *testing.T) {
	_, h, logBuf := newTestServer(t)
	rec := get(t, h, "/solve?trace=1")
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /solve?trace=1 = %d: %s", rec.Code, rec.Body.String())
	}
	var out solveResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if out.TraceID == "" {
		t.Fatal("traced solve did not report a trace id")
	}
	if !strings.Contains(logBuf.String(), out.TraceID) {
		t.Fatalf("access log does not carry trace id %s:\n%s", out.TraceID, logBuf.String())
	}
}

func TestMethodNotAllowed(t *testing.T) {
	_, h, _ := newTestServer(t)
	for _, path := range []string{"/solve", "/metrics", "/healthz", "/readyz", "/trace"} {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, path, strings.NewReader("{}")))
		if rec.Code != http.StatusMethodNotAllowed {
			t.Errorf("POST %s = %d, want 405", path, rec.Code)
		}
		if allow := rec.Header().Get("Allow"); allow != http.MethodGet {
			t.Errorf("POST %s Allow = %q, want GET", path, allow)
		}
	}
}

func TestMetricsEndpointJSON(t *testing.T) {
	_, h, _ := newTestServer(t)
	get(t, h, "/solve")
	rec := get(t, h, "/metrics")
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /metrics = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type = %q", ct)
	}
	var snap minup.MetricsSnapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["solve.count"] != 1 {
		t.Fatalf("solve.count = %d, want 1", snap.Counters["solve.count"])
	}
	if _, ok := snap.Gauges["solve.pool.sessions"]; !ok {
		t.Fatalf("gauges %v missing solve.pool.sessions", snap.Gauges)
	}
	if _, ok := snap.Gauges["http.in_flight"]; !ok {
		t.Fatalf("gauges %v missing http.in_flight", snap.Gauges)
	}
}

func TestMetricsEndpointPrometheus(t *testing.T) {
	_, h, _ := newTestServer(t)
	get(t, h, "/solve")
	rec := get(t, h, "/metrics?format=prometheus")
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /metrics?format=prometheus = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("Content-Type = %q", ct)
	}
	body := rec.Body.String()
	if body == "" {
		t.Fatal("empty Prometheus body")
	}
	for _, want := range []string{
		"# TYPE solve_count counter",
		"# TYPE http_in_flight gauge",
		"solve_duration_us_bucket{le=\"+Inf\"}",
		"http_solve_duration_us_count",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("Prometheus body missing %q:\n%s", want, body)
		}
	}
}

func TestMetricsPreRegisteredBeforeTraffic(t *testing.T) {
	// A scrape before the first request must already see the per-route
	// series (the middleware registers them at wrap time).
	_, h, _ := newTestServer(t)
	rec := get(t, h, "/metrics?format=prometheus")
	body := rec.Body.String()
	for _, want := range []string{"http_solve_duration_us", "http_trace_duration_us"} {
		if !strings.Contains(body, want) {
			t.Errorf("pre-traffic scrape missing %q:\n%s", want, body)
		}
	}
}

func TestTraceEndpointJSON(t *testing.T) {
	_, h, _ := newTestServer(t)
	rec := get(t, h, "/trace")
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /trace = %d: %s", rec.Code, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type = %q", ct)
	}
	var out traceResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if out.TraceID == "" {
		t.Fatal("no trace id")
	}
	if out.Spans.Name != "request" || len(out.Spans.Children) == 0 {
		t.Fatalf("span tree root %+v", out.Spans)
	}
	if out.Spans.Children[0].Name != "solve" {
		t.Fatalf("first child %q, want solve", out.Spans.Children[0].Name)
	}
}

func TestTraceEndpointChromeAndFlame(t *testing.T) {
	_, h, _ := newTestServer(t)
	rec := get(t, h, "/trace?format=chrome")
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /trace?format=chrome = %d", rec.Code)
	}
	var chrome struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &chrome); err != nil {
		t.Fatal(err)
	}
	if len(chrome.TraceEvents) < 3 {
		t.Fatalf("chrome trace has %d events", len(chrome.TraceEvents))
	}

	rec = get(t, h, "/trace?format=flame")
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /trace?format=flame = %d", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "solve") {
		t.Fatalf("flame output missing solve:\n%s", rec.Body.String())
	}
}

func TestHealthzContentType(t *testing.T) {
	_, h, _ := newTestServer(t)
	rec := get(t, h, "/healthz")
	if rec.Code != http.StatusOK || !strings.HasPrefix(rec.Header().Get("Content-Type"), "text/plain") {
		t.Fatalf("GET /healthz = %d, Content-Type %q", rec.Code, rec.Header().Get("Content-Type"))
	}
}

func TestRequestIDEchoed(t *testing.T) {
	_, h, logBuf := newTestServer(t)
	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
	req.Header.Set("X-Request-Id", "my-req-42")
	h.ServeHTTP(rec, req)
	if got := rec.Header().Get("X-Request-Id"); got != "my-req-42" {
		t.Fatalf("X-Request-Id = %q, want echo", got)
	}
	if !strings.Contains(logBuf.String(), "my-req-42") {
		t.Fatalf("access log missing request id:\n%s", logBuf.String())
	}
}

func TestStatusClassCounters(t *testing.T) {
	srv, h, _ := newTestServer(t)
	get(t, h, "/solve")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/solve", nil))
	snap := srv.reg.Snapshot()
	if snap.Counters["http.solve.status.2xx"] != 1 {
		t.Fatalf("2xx counter = %d, want 1", snap.Counters["http.solve.status.2xx"])
	}
	if snap.Counters["http.solve.status.4xx"] != 1 {
		t.Fatalf("4xx counter = %d, want 1", snap.Counters["http.solve.status.4xx"])
	}
	if snap.Gauges["http.in_flight"] != 0 {
		t.Fatalf("in_flight gauge = %d after requests drained", snap.Gauges["http.in_flight"])
	}
}

func TestAccessLogShape(t *testing.T) {
	_, h, logBuf := newTestServer(t)
	get(t, h, "/solve")
	var line map[string]any
	if err := json.Unmarshal([]byte(strings.SplitN(logBuf.String(), "\n", 2)[0]), &line); err != nil {
		t.Fatalf("access log is not JSON: %v\n%s", err, logBuf.String())
	}
	for _, key := range []string{"method", "path", "status", "duration_us", "request_id"} {
		if _, ok := line[key]; !ok {
			t.Errorf("access log missing %q: %v", key, line)
		}
	}
	if line["path"] != "/solve" || line["status"] != float64(200) {
		t.Fatalf("access log line %v", line)
	}
}
