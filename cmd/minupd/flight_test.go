package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"minup"
)

// debugRequestsJSON fetches the flight recorder's JSON view the way the
// debug listener serves it.
func debugRequestsJSON(t *testing.T, f *minup.FlightRecorder) (minup.FlightSnapshot, []minup.SLOStatus) {
	t.Helper()
	rec := httptest.NewRecorder()
	f.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/requests?format=json", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /debug/requests = %d", rec.Code)
	}
	var view struct {
		minup.FlightSnapshot
		SLO []minup.SLOStatus `json:"slo"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &view); err != nil {
		t.Fatalf("/debug/requests JSON: %v", err)
	}
	return view.FlightSnapshot, view.SLO
}

// TestDegradedSolveFlightRecordAndSLOBurn is the acceptance scenario end to
// end: a request forced to degrade by a fault spec must (1) show up in
// /debug/requests as a degraded anomaly, (2) leave a Perfetto-loadable dump
// on disk, and (3) move its route's availability burn gauge on the next
// scrape.
func TestDegradedSolveFlightRecordAndSLOBurn(t *testing.T) {
	cfg := slowCfg(t, 30*time.Millisecond, 10*time.Millisecond)
	dumpDir := t.TempDir()
	cfg.flight = minup.NewFlightRecorder(minup.FlightOptions{DumpDir: dumpDir, SLO: cfg.slo})
	srv, h, logBuf := newTestServerCfg(t, cfg)

	rec := get(t, h, "/solve")
	decodeDegraded(t, srv, rec, "deadline")

	// (1) The degraded request is in the flight ring and the anomaly ring.
	snap, slo := debugRequestsJSON(t, cfg.flight)
	if snap.Total != 1 || len(snap.RecentAnomalies) != 1 {
		t.Fatalf("flight snapshot total=%d anomalies=%d, want 1/1", snap.Total, len(snap.RecentAnomalies))
	}
	fr := snap.RecentAnomalies[0]
	if fr.Route != "solve" || !fr.Degraded || fr.DegradeReason != "deadline" {
		t.Fatalf("anomaly record = %+v", fr)
	}
	if fr.Status != http.StatusOK {
		t.Fatalf("degraded record status = %d, want 200", fr.Status)
	}
	if fr.ID != rec.Header().Get("X-Request-Id") {
		t.Fatalf("flight record id %q != response id %q", fr.ID, rec.Header().Get("X-Request-Id"))
	}

	// (2) The anomaly dump exists on disk and is Perfetto-loadable: valid
	// JSON with a traceEvents array that carries the captured solver events.
	if fr.Dump == "" {
		t.Fatal("degraded record carries no dump file name")
	}
	data, err := os.ReadFile(filepath.Join(dumpDir, fr.Dump))
	if err != nil {
		t.Fatalf("anomaly dump missing: %v", err)
	}
	var dump struct {
		TraceEvents []json.RawMessage  `json:"traceEvents"`
		Record      minup.FlightRecord `json:"record"`
	}
	if err := json.Unmarshal(data, &dump); err != nil {
		t.Fatalf("dump is not valid JSON: %v", err)
	}
	// Metadata + the request slice at minimum; the fault spec delays solver
	// steps, so the capture sink saw events before the deadline hit.
	if len(dump.TraceEvents) < 3 {
		t.Fatalf("dump traceEvents = %d entries, want the request plus solver events", len(dump.TraceEvents))
	}
	if dump.Record.ID != fr.ID || !dump.Record.Degraded {
		t.Fatalf("dump record = %+v", dump.Record)
	}

	// (3) The availability burn moved: the degraded answer burns budget even
	// though the client saw a 200.
	var solveSLO *minup.SLOStatus
	for i := range slo {
		if slo[i].Route == "solve" {
			solveSLO = &slo[i]
		}
	}
	if solveSLO == nil {
		t.Fatalf("no solve SLO in /debug/requests: %+v", slo)
	}
	if solveSLO.AvailBurn5m <= 0 || solveSLO.Requests5m != 1 {
		t.Fatalf("availability burn did not move: %+v", *solveSLO)
	}

	// The burn gauges reach the Prometheus scrape (handleMetrics republishes
	// eagerly, so no collector tick is needed).
	body := get(t, h, "/metrics?format=prometheus").Body.String()
	found := false
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, "slo_solve_avail_burn_5m_milli ") {
			found = true
			if strings.TrimPrefix(line, "slo_solve_avail_burn_5m_milli ") == "0" {
				t.Fatalf("scraped burn gauge still zero: %s", line)
			}
		}
	}
	if !found {
		t.Fatalf("Prometheus scrape missing slo_solve_avail_burn_5m_milli:\n%s", body)
	}

	// The access log agrees with the flight record.
	if log := logBuf.String(); !strings.Contains(log, `"degraded":true`) {
		t.Fatalf("access log does not mark the degraded request:\n%s", log)
	}
}

// TestShedRequestRecordedNotDumped pins the overload posture: a shed request
// is visible in the ring with its shed flag and queue-wait, but it is not an
// anomaly — an overload storm must not thrash the dump directory.
func TestShedRequestRecordedNotDumped(t *testing.T) {
	cfg := defaultConfig()
	cfg.maxInflight = 1
	cfg.maxQueue = 0 // no waiting: the second concurrent request sheds
	dumpDir := t.TempDir()
	cfg.flight = minup.NewFlightRecorder(minup.FlightOptions{DumpDir: dumpDir, SLO: cfg.slo})
	srv, h, logBuf := newTestServerCfg(t, cfg)

	// Hold the only slot so the next request sheds instantly.
	srv.gate.sem <- struct{}{}
	rec := get(t, h, "/solve")
	<-srv.gate.sem
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("saturated solve = %d, want 503", rec.Code)
	}

	snap, _ := debugRequestsJSON(t, cfg.flight)
	if snap.Total != 1 {
		t.Fatalf("flight total = %d, want 1", snap.Total)
	}
	fr := snap.Recent[0]
	if !fr.Shed || fr.Status != http.StatusServiceUnavailable {
		t.Fatalf("shed record = %+v", fr)
	}
	if len(snap.RecentAnomalies) != 0 || fr.Dump != "" {
		t.Fatalf("shed request treated as anomaly: anomalies=%d dump=%q", len(snap.RecentAnomalies), fr.Dump)
	}
	if entries, err := os.ReadDir(dumpDir); err != nil || len(entries) != 0 {
		t.Fatalf("dump dir not empty after a shed: %v, %v", entries, err)
	}
	if log := logBuf.String(); !strings.Contains(log, `"shed":true`) {
		t.Fatalf("access log does not mark the shed:\n%s", log)
	}
}

// TestRefreshRecordsInFlightRing checks the async side of the recorder: a
// policy write's background refresh lands in the ring as a "refresh" record
// with the policy identity and a terminal outcome.
func TestRefreshRecordsInFlightRing(t *testing.T) {
	cfg := defaultConfig()
	flight := minup.NewFlightRecorder(minup.FlightOptions{})
	cfg.flight = flight
	_, h, _ := newTestServerCfg(t, cfg)

	// An async PUT (no ?wait) answers immediately and hands the compile+solve
	// to the background refresh pipeline — that job must leave a record.
	rec := policyReq(t, h, http.MethodPut, "/policies/p1",
		&policyRequest{Lattice: testPolicyLattice, Constraints: testPolicyCons}, nil)
	if rec.Code != http.StatusCreated {
		t.Fatalf("PUT /policies/p1 = %d: %s", rec.Code, rec.Body.String())
	}

	deadline := time.Now().Add(2 * time.Second)
	for {
		snap := flight.Snapshot()
		var refresh *minup.FlightRecord
		for i := range snap.Recent {
			if snap.Recent[i].Kind == "refresh" {
				refresh = &snap.Recent[i]
			}
		}
		if refresh != nil {
			if refresh.Route != "catalog.refresh" || refresh.Policy != "p1" {
				t.Fatalf("refresh record = %+v", *refresh)
			}
			if refresh.Outcome == "" {
				t.Fatalf("refresh record has no outcome: %+v", *refresh)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("no refresh record in the ring: %+v", snap.Recent)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
