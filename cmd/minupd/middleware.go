package main

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"log/slog"
	"net/http"
	"runtime/debug"
	"time"

	"minup"
)

// requestInfo is the per-request mutable record shared between the
// middleware and the handler through the request context: the middleware
// fills the request ID and opens the flight record before the handler runs;
// the handler annotates the record (trace ID, policy identity, shed /
// degraded disposition, solver stats, error text); and the middleware reads
// it all back when it completes the flight record and writes the structured
// access log line — so log lines and flight records always agree.
type requestInfo struct {
	id      string
	traceID string

	flight *minup.ActiveFlight

	queueWait     time.Duration
	shed          bool
	degraded      bool
	degradeReason string
	panicked      bool
	cacheHit      bool
	policy        string
	shard         int
	errText       string
	stats         minup.FlightStats
}

type requestInfoKey struct{}

// infoFrom returns the request's info record, or nil outside the
// middleware stack (tests calling handlers directly).
func infoFrom(ctx context.Context) *requestInfo {
	ri, _ := ctx.Value(requestInfoKey{}).(*requestInfo)
	return ri
}

// httpObs bundles the middleware's observability dependencies: the metrics
// registry (required), the structured logger (required), and the flight
// recorder and SLO tracker (both optional — nil just disables that layer,
// which is what unit tests exercising a single handler want).
type httpObs struct {
	reg    *minup.MetricsRegistry
	logger *slog.Logger
	flight *minup.FlightRecorder
	slo    *minup.SLOTracker
}

// statusWriter captures the status code a handler writes so the middleware
// can log it and bump the right status-class counter.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// newRequestID returns 8 random bytes in hex; on entropy failure a fixed
// marker, which only degrades log correlation.
func newRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// statusClass maps a status code to its counter suffix ("2xx", ...).
func statusClass(code int) string {
	switch {
	case code >= 500:
		return "5xx"
	case code >= 400:
		return "4xx"
	case code >= 300:
		return "3xx"
	default:
		return "2xx"
	}
}

// instrument wraps one route with the minupd middleware stack: GET-only
// method gating (405 + Allow), request IDs (X-Request-Id echoed or
// generated), panic recovery (a panicking handler answers 500 and bumps
// http.panics instead of killing the connection goroutine unlogged), an
// in-flight gauge, a per-route latency histogram, per-route status-class
// counters, a flight record per request, SLO accounting, and one structured
// access-log line per request carrying the request ID, the shed/degraded
// disposition, the queue wait, and — when the handler ran an instrumented
// solve — the trace ID.
//
// The bookkeeping runs in a defer so a panicking request is still counted,
// timed, logged, and flight-recorded like any other before the recovery
// answers it.
//
// The histogram and the 2xx counter are registered eagerly at wrap time so
// a Prometheus scrape sees the route's series before its first request.
func instrument(route string, o httpObs, next http.HandlerFunc) http.Handler {
	inner := instrumentMethods(route, o, next)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			w.Header().Set("Allow", http.MethodGet)
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			o.reg.Counter("http." + route + ".status.4xx").Inc()
			return
		}
		inner.ServeHTTP(w, r)
	})
}

// instrumentMethods is instrument without the GET-only gate, for routes
// registered with ServeMux method patterns ("PUT /policies/{name}") —
// there the mux itself answers mismatched methods with 405 and the right
// Allow set. Several method patterns may share one route name; the eager
// metric registration is get-or-create, so the series are shared too.
func instrumentMethods(route string, o httpObs, next http.HandlerFunc) http.Handler {
	hist := o.reg.Histogram("http."+route+".duration_us", minup.DurationBucketsUS)
	o.reg.Counter("http." + route + ".status.2xx")
	inFlight := o.reg.Gauge("http.in_flight")
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ri := &requestInfo{id: r.Header.Get("X-Request-Id")}
		if ri.id == "" {
			ri.id = newRequestID()
		}
		w.Header().Set("X-Request-Id", ri.id)
		if o.flight != nil {
			ri.flight = o.flight.Begin(route, r.Method, ri.id)
		}
		sw := &statusWriter{ResponseWriter: w}
		inFlight.Inc()
		start := time.Now()
		defer func() {
			rec := recover()
			if rec == http.ErrAbortHandler { //nolint:errorlint // net/http compares this sentinel by identity
				// net/http's sentinel for deliberately aborting a response:
				// not a bug, so skip the 500/counter/log handling and let the
				// server suppress it as designed. Keep the gauge and the
				// flight ring honest first, since re-panicking skips the rest
				// of this defer.
				inFlight.Dec()
				if ri.flight != nil {
					o.flight.End(ri.flight, minup.FlightRecord{
						Status: 499, Err: "response aborted",
					})
				}
				panic(rec)
			}
			if rec != nil {
				ri.panicked = true
				o.reg.Counter("http.panics").Inc()
				o.logger.Error("handler panic",
					slog.String("path", r.URL.Path),
					slog.String("request_id", ri.id),
					slog.Any("panic", rec),
					slog.String("stack", string(debug.Stack())),
				)
				if sw.status == 0 {
					// Nothing written yet; the client can still get a clean
					// 500. Otherwise the truncated response has to speak for
					// itself.
					http.Error(sw, "internal server error", http.StatusInternalServerError)
				}
			}
			dur := time.Since(start)
			inFlight.Dec()
			if sw.status == 0 {
				sw.status = http.StatusOK
			}
			hist.Observe(uint64(dur.Microseconds()))
			o.reg.Counter("http." + route + ".status." + statusClass(sw.status)).Inc()
			if ri.flight != nil {
				o.flight.End(ri.flight, minup.FlightRecord{
					Status:        sw.status,
					DurationUS:    dur.Microseconds(),
					QueueWaitUS:   ri.queueWait.Microseconds(),
					Shed:          ri.shed,
					Degraded:      ri.degraded,
					DegradeReason: ri.degradeReason,
					Panicked:      ri.panicked,
					CacheHit:      ri.cacheHit,
					Policy:        ri.policy,
					Shard:         ri.shard,
					TraceID:       ri.traceID,
					Err:           ri.errText,
					Stats:         ri.stats,
				})
			}
			if o.slo != nil {
				// Degraded answers return 200 but burn availability budget:
				// the client got a safe answer, not the minimal one it asked
				// for.
				o.slo.Record(route, dur, sw.status >= 500 || ri.degraded)
			}
			attrs := []any{
				slog.String("method", r.Method),
				slog.String("path", r.URL.Path),
				slog.Int("status", sw.status),
				slog.Int64("duration_us", dur.Microseconds()),
				slog.String("request_id", ri.id),
				slog.Bool("shed", ri.shed),
				slog.Bool("degraded", ri.degraded),
				slog.Int64("queue_wait_us", ri.queueWait.Microseconds()),
			}
			if ri.traceID != "" {
				attrs = append(attrs, slog.String("trace_id", ri.traceID))
			}
			o.logger.Info("request", attrs...)
		}()
		next(sw, r.WithContext(context.WithValue(r.Context(), requestInfoKey{}, ri)))
	})
}
