package main

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"log/slog"
	"net/http"
	"runtime/debug"
	"time"

	"minup"
)

// requestInfo is the per-request mutable record shared between the
// middleware and the handler through the request context: the middleware
// fills the request ID before the handler runs, the handler may record the
// trace ID of an instrumented solve, and the middleware reads both back
// when it writes the structured access log line.
type requestInfo struct {
	id      string
	traceID string
}

type requestInfoKey struct{}

// infoFrom returns the request's info record, or nil outside the
// middleware stack (tests calling handlers directly).
func infoFrom(ctx context.Context) *requestInfo {
	ri, _ := ctx.Value(requestInfoKey{}).(*requestInfo)
	return ri
}

// statusWriter captures the status code a handler writes so the middleware
// can log it and bump the right status-class counter.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// newRequestID returns 8 random bytes in hex; on entropy failure a fixed
// marker, which only degrades log correlation.
func newRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// statusClass maps a status code to its counter suffix ("2xx", ...).
func statusClass(code int) string {
	switch {
	case code >= 500:
		return "5xx"
	case code >= 400:
		return "4xx"
	case code >= 300:
		return "3xx"
	default:
		return "2xx"
	}
}

// instrument wraps one route with the minupd middleware stack: GET-only
// method gating (405 + Allow), request IDs (X-Request-Id echoed or
// generated), panic recovery (a panicking handler answers 500 and bumps
// http.panics instead of killing the connection goroutine unlogged), an
// in-flight gauge, a per-route latency histogram, per-route status-class
// counters, and one structured access-log line per request carrying the
// request ID and — when the handler ran an instrumented solve — the trace
// ID.
//
// The bookkeeping runs in a defer so a panicking request is still counted,
// timed, and logged like any other before the recovery answers it.
//
// The histogram and the 2xx counter are registered eagerly at wrap time so
// a Prometheus scrape sees the route's series before its first request.
func instrument(route string, reg *minup.MetricsRegistry, logger *slog.Logger, next http.HandlerFunc) http.Handler {
	inner := instrumentMethods(route, reg, logger, next)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			w.Header().Set("Allow", http.MethodGet)
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			reg.Counter("http." + route + ".status.4xx").Inc()
			return
		}
		inner.ServeHTTP(w, r)
	})
}

// instrumentMethods is instrument without the GET-only gate, for routes
// registered with ServeMux method patterns ("PUT /policies/{name}") —
// there the mux itself answers mismatched methods with 405 and the right
// Allow set. Several method patterns may share one route name; the eager
// metric registration is get-or-create, so the series are shared too.
func instrumentMethods(route string, reg *minup.MetricsRegistry, logger *slog.Logger, next http.HandlerFunc) http.Handler {
	hist := reg.Histogram("http."+route+".duration_us", minup.DurationBucketsUS)
	reg.Counter("http." + route + ".status.2xx")
	inFlight := reg.Gauge("http.in_flight")
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ri := &requestInfo{id: r.Header.Get("X-Request-Id")}
		if ri.id == "" {
			ri.id = newRequestID()
		}
		w.Header().Set("X-Request-Id", ri.id)
		sw := &statusWriter{ResponseWriter: w}
		inFlight.Inc()
		start := time.Now()
		defer func() {
			rec := recover()
			if rec == http.ErrAbortHandler { //nolint:errorlint // net/http compares this sentinel by identity
				// net/http's sentinel for deliberately aborting a response:
				// not a bug, so skip the 500/counter/log handling and let the
				// server suppress it as designed. Keep the gauge honest first,
				// since re-panicking skips the rest of this defer.
				inFlight.Dec()
				panic(rec)
			}
			if rec != nil {
				reg.Counter("http.panics").Inc()
				logger.Error("handler panic",
					slog.String("path", r.URL.Path),
					slog.String("request_id", ri.id),
					slog.Any("panic", rec),
					slog.String("stack", string(debug.Stack())),
				)
				if sw.status == 0 {
					// Nothing written yet; the client can still get a clean
					// 500. Otherwise the truncated response has to speak for
					// itself.
					http.Error(sw, "internal server error", http.StatusInternalServerError)
				}
			}
			dur := time.Since(start)
			inFlight.Dec()
			if sw.status == 0 {
				sw.status = http.StatusOK
			}
			hist.Observe(uint64(dur.Microseconds()))
			reg.Counter("http." + route + ".status." + statusClass(sw.status)).Inc()
			attrs := []any{
				slog.String("method", r.Method),
				slog.String("path", r.URL.Path),
				slog.Int("status", sw.status),
				slog.Int64("duration_us", dur.Microseconds()),
				slog.String("request_id", ri.id),
			}
			if ri.traceID != "" {
				attrs = append(attrs, slog.String("trace_id", ri.traceID))
			}
			logger.Info("request", attrs...)
		}()
		next(sw, r.WithContext(context.WithValue(r.Context(), requestInfoKey{}, ri)))
	})
}
