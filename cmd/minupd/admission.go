package main

import (
	"context"
	"errors"
	"net/http"
	"sync/atomic"
	"time"

	"minup"
)

// Admission control for the solve-serving routes: a bounded-concurrency
// gate with a short bounded wait queue in front of it. At most maxInflight
// requests hold a slot at once; up to maxQueue more may wait up to
// queueWait for one. Anything beyond that — and everything once the server
// is draining — is shed immediately with 503 + Retry-After, which is the
// overload posture the ROADMAP's heavy-traffic target requires: reject
// fast and cheap instead of stacking goroutines until the deadline storm.
//
// The gate also reports a soft overload signal: when the wait queue is at
// least half full, admitted /solve requests skip the minimal solver and
// serve the Qian baseline directly (see serveDegraded), trading optimality
// for latency while staying secure by construction.

// Shed reasons, returned by gate.acquire and surfaced in the 503 body and
// the structured log.
var (
	errShedQueueFull = errors.New("wait queue full")
	errShedWait      = errors.New("timed out waiting for a slot")
	errShedDraining  = errors.New("server draining")
)

type gate struct {
	sem       chan struct{} // slot tokens; capacity = max in-flight
	maxQueue  int64
	softQueue int64 // queue depth at which admitted solves degrade
	queued    atomic.Int64
	wait      time.Duration
	draining  *atomic.Bool
	reg       *minup.MetricsRegistry
}

// newGate sizes the admission gate. maxInflight is clamped to at least 1;
// maxQueue may be 0 (no waiting — excess load sheds instantly). The shed
// counter and queue gauge are registered eagerly so a scrape sees them
// before the first overload.
func newGate(maxInflight, maxQueue int, wait time.Duration, draining *atomic.Bool, reg *minup.MetricsRegistry) *gate {
	if maxInflight < 1 {
		maxInflight = 1
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	reg.Counter("http.shed")
	reg.Gauge("http.queue_depth")
	return &gate{
		sem:       make(chan struct{}, maxInflight),
		maxQueue:  int64(maxQueue),
		softQueue: int64((maxQueue + 1) / 2),
		wait:      wait,
		draining:  draining,
		reg:       reg,
	}
}

// acquire admits the request or sheds it. On admission it returns a
// release function the caller must invoke exactly once (defer it). On shed
// it returns one of the errShed* reasons after bumping the http.shed
// counter; a nil release with a context error means the client went away
// while queued.
func (g *gate) acquire(ctx context.Context) (release func(), err error) {
	if g.draining.Load() {
		return nil, g.shed(errShedDraining)
	}
	select {
	case g.sem <- struct{}{}:
		return g.release, nil
	default:
	}
	if g.queued.Add(1) > g.maxQueue {
		g.queued.Add(-1)
		return nil, g.shed(errShedQueueFull)
	}
	g.reg.Gauge("http.queue_depth").Set(g.queued.Load())
	waitStart := time.Now()
	defer func() {
		// Report the time spent queued back to the request record, however
		// the wait ended — the access log and flight record carry it.
		if ri := infoFrom(ctx); ri != nil {
			ri.queueWait = time.Since(waitStart)
		}
		g.queued.Add(-1)
		g.reg.Gauge("http.queue_depth").Set(g.queued.Load())
	}()
	t := time.NewTimer(g.wait)
	defer t.Stop()
	select {
	case g.sem <- struct{}{}:
		return g.release, nil
	case <-t.C:
		return nil, g.shed(errShedWait)
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func (g *gate) release() { <-g.sem }

// shed counts and passes the reason through.
func (g *gate) shed(reason error) error {
	g.reg.Counter("http.shed").Inc()
	return reason
}

// overloaded reports the soft overload signal: the wait queue is at or past
// half capacity, so freshly admitted solves should degrade to the baseline
// rather than contend for the full solve budget. Always false when the
// gate has no queue (maxQueue == 0).
func (g *gate) overloaded() bool {
	return g.maxQueue > 0 && g.queued.Load() >= g.softQueue
}

// inflight reports how many slots are currently held (for /readyz detail).
func (g *gate) inflight() int { return len(g.sem) }

// capacity reports the total in-flight slots, and queueDepth the waiters
// currently queued behind them — the /cluster load hints clients use to
// prefer lightly loaded nodes for reads.
func (g *gate) capacity() int { return cap(g.sem) }

func (g *gate) queueDepth() int64 { return g.queued.Load() }

// writeShed answers a shed request: 503 with Retry-After so well-behaved
// clients back off instead of hammering an overloaded server. The shed
// disposition is marked on the request record for the access log and the
// flight recorder (where a shed is an expected overload response, not an
// anomaly).
func writeShed(w http.ResponseWriter, r *http.Request, reason error) {
	if ri := infoFrom(r.Context()); ri != nil {
		ri.shed = true
		ri.errText = reason.Error()
	}
	w.Header().Set("Retry-After", "1")
	http.Error(w, "service unavailable: "+reason.Error(), http.StatusServiceUnavailable)
}
