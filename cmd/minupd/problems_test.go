package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"minup"
)

// problemPost posts a raw instance body to /problems/{family}.
func problemPost(t *testing.T, h http.Handler, path string, body []byte, hdr map[string]string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(string(body)))
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func TestProblemList(t *testing.T) {
	_, h, _ := newTestServer(t)
	rec := get(t, h, "/problems")
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /problems = %d: %s", rec.Code, rec.Body.String())
	}
	var out problemListResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	got := make(map[string]bool)
	for _, f := range out.Families {
		got[f.Family] = true
		if f.Describe == "" {
			t.Errorf("family %q listed without a description", f.Family)
		}
	}
	for _, want := range []string{"suppress", "depinf"} {
		if !got[want] {
			t.Fatalf("GET /problems missing family %q: %s", want, rec.Body.String())
		}
	}
}

// TestProblemCreateRoundTrip is the end-to-end path the issue demands: a
// generated suppress instance enters via POST /problems/suppress, becomes
// an ordinary catalog policy, serves a memoized solve, and the solved
// assignment passes the frontend's own source-level oracle.
func TestProblemCreateRoundTrip(t *testing.T) {
	_, h, _ := newTestServer(t)
	for _, family := range []string{"suppress", "depinf"} {
		fe, ok := minup.LookupProblemFrontend(family)
		if !ok {
			t.Fatalf("frontend %q not registered", family)
		}
		inst, err := fe.Generate(3, 4)
		if err != nil {
			t.Fatal(err)
		}
		raw, err := minup.MarshalProblemInstance(inst)
		if err != nil {
			t.Fatal(err)
		}
		rec := problemPost(t, h, "/problems/"+family+"?wait=1", raw, nil)
		if rec.Code != http.StatusCreated {
			t.Fatalf("POST /problems/%s = %d: %s", family, rec.Code, rec.Body.String())
		}
		var created problemResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &created); err != nil {
			t.Fatal(err)
		}
		if created.Family != family || created.Name != inst.InstanceName() {
			t.Fatalf("created %+v, want family %s name %s", created, family, inst.InstanceName())
		}
		if created.Attrs == 0 || created.Constraints == 0 {
			t.Fatalf("created problem reports an empty compiled shape: %+v", created)
		}
		if rec.Header().Get("ETag") == "" {
			t.Fatal("no ETag on problem create")
		}

		// The stored policy serves a memoized solve like any other.
		solveRec := get(t, h, "/policies/"+inst.InstanceName()+"/solve")
		if solveRec.Code != http.StatusOK {
			t.Fatalf("solve of stored problem = %d: %s", solveRec.Code, solveRec.Body.String())
		}
		var solved policySolveResponse
		if err := json.Unmarshal(solveRec.Body.Bytes(), &solved); err != nil {
			t.Fatal(err)
		}
		if !solved.CacheHit {
			t.Fatalf("%s: wait=1 create should leave a warm cache", family)
		}

		// Check the served assignment against the frontend's source oracle.
		c, err := fe.Compile(inst)
		if err != nil {
			t.Fatal(err)
		}
		m := make(minup.Assignment, c.Set.NumAttrs())
		for name, levelText := range solved.Assignment {
			a, ok := c.Set.AttrByName(name)
			if !ok {
				t.Fatalf("%s: served assignment names unknown attribute %q", family, name)
			}
			lvl, err := c.Lattice.ParseLevel(levelText)
			if err != nil {
				t.Fatalf("%s: served level %q: %v", family, levelText, err)
			}
			m[a] = lvl
		}
		if err := fe.Oracle(c, m); err != nil {
			t.Fatalf("%s: served assignment fails the source oracle: %v", family, err)
		}
	}
}

func TestProblemCreateErrors(t *testing.T) {
	_, h, _ := newTestServer(t)

	rec := problemPost(t, h, "/problems/no-such-family", []byte(`{}`), nil)
	if rec.Code != http.StatusNotFound {
		t.Fatalf("unknown family = %d, want 404", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "suppress") {
		t.Fatalf("404 should list known families: %s", rec.Body.String())
	}

	rec = problemPost(t, h, "/problems/suppress", []byte(`not json`), nil)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("bad body = %d, want 400", rec.Code)
	}

	// Structurally valid JSON, semantically invalid instance.
	rec = problemPost(t, h, "/problems/suppress",
		[]byte(`{"name":"x","levels":["open"],"rows":2,"cols":2,"sensitive":[{"row":0,"col":0,"level":"open"}]}`), nil)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("invalid instance = %d, want 400: %s", rec.Code, rec.Body.String())
	}
}

// TestProblemCreateNameAndPreconditions: ?name= overrides the instance
// name, and the conditional-write headers behave as on policy PUT.
func TestProblemCreateNameAndPreconditions(t *testing.T) {
	_, h, _ := newTestServer(t)
	fe, _ := minup.LookupProblemFrontend("suppress")
	inst, err := fe.Generate(8, 3)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := minup.MarshalProblemInstance(inst)
	if err != nil {
		t.Fatal(err)
	}

	rec := problemPost(t, h, "/problems/suppress?name=renamed", raw, nil)
	if rec.Code != http.StatusCreated {
		t.Fatalf("named create = %d: %s", rec.Code, rec.Body.String())
	}
	var created problemResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &created); err != nil {
		t.Fatal(err)
	}
	if created.Name != "renamed" {
		t.Fatalf("stored under %q, want renamed", created.Name)
	}
	if created.Instance != inst.InstanceName() {
		t.Fatalf("response lost the instance name: %+v", created)
	}
	if getRec := get(t, h, "/policies/renamed"); getRec.Code != http.StatusOK {
		t.Fatalf("stored problem not readable as a policy: %d", getRec.Code)
	}

	// Create-only on an existing name conflicts; a re-post bumps the version.
	rec = problemPost(t, h, "/problems/suppress?name=renamed", raw, map[string]string{"If-None-Match": "*"})
	if rec.Code != http.StatusConflict {
		t.Fatalf("create-only over existing = %d, want 409", rec.Code)
	}
	rec = problemPost(t, h, "/problems/suppress?name=renamed", raw, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("unconditional re-post = %d, want 200: %s", rec.Code, rec.Body.String())
	}
}
