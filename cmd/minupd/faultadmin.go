package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	"minup"
)

// faultAdminHandler serves /debug/fault on the loopback debug listener
// (enabled by -fault-admin): GET reports the injector's armed state, rules,
// and per-point hit counts as JSON; POST rearms it from a plain-text fault
// spec in the request body, with an empty body disarming. Rearming is safe
// under live traffic — unarmed fault points cost one atomic load — which is
// what lets cmd/minload's chaos stages switch faults on and off around a
// stage without restarting the server.
func faultAdminHandler(inj *minup.FaultInjector) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.Method {
		case http.MethodGet:
			// fall through to the snapshot below
		case http.MethodPost:
			body, err := io.ReadAll(io.LimitReader(r.Body, 1<<16))
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			spec := strings.TrimSpace(string(body))
			if err := inj.Rearm(spec); err != nil {
				http.Error(w, fmt.Sprintf("bad fault spec: %v", err), http.StatusBadRequest)
				return
			}
		default:
			w.Header().Set("Allow", "GET, POST")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(inj.Snapshot())
	})
}
