// The /policies surface: the stateful side of minupd. Where /solve serves
// one constraint set compiled at boot, these routes manage a durable
// sharded catalog of named, versioned policies — created and replaced with
// PUT, refined with constraint appends, and served from a per-version
// memoized solve cache.
//
// Mutations answer as soon as the record is durable and the new version is
// visible; the solver work (compile, memoized solve, incremental repair)
// runs on the catalog's per-shard background workers. Add ?wait=1 to a PUT
// or append to run that refresh inline instead: the response then reflects
// a warm cache, and appends report how the memoized solution was repaired.
// Without it, an append whose refresh is still queued carries
// "refresh_pending": true.
//
// Optimistic concurrency is plain HTTP: every response carrying policy
// state sets an ETag holding the version; writers send If-Match with the
// version they read (412 on a lost race) or If-None-Match: * to insist on
// creating (409 if the name exists). Unconditional writes are allowed.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"minup"
)

// maxPolicyBody bounds PUT/POST request bodies; policy source texts are
// human-scale.
const maxPolicyBody = 4 << 20

// policyRequest is the JSON body of PUT /policies/{name} (both fields
// required) and POST /policies/{name}/constraints (constraints only).
type policyRequest struct {
	Lattice     string `json:"lattice"`
	Constraints string `json:"constraints"`
}

// policyIndexEntry is one row of GET /policies: the policy's identity and
// cache state plus its version rendered as the ETag a conditional writer
// would send back.
type policyIndexEntry struct {
	minup.PolicyInfo
	ETag string `json:"etag"`
}

// policyListResponse is the JSON answer of GET /policies.
type policyListResponse struct {
	Count    int                `json:"count"`
	Policies []policyIndexEntry `json:"policies"`
}

// policyAppendResponse reports an accepted constraint append: the new
// version plus how the solution cache was maintained — repaired
// incrementally from the memoized solution (repaired: true, with the
// repair's work counts, ?wait=1 only), left for a shard worker
// (refresh_pending: true), or left cold for the next solve to fill.
type policyAppendResponse struct {
	minup.PolicyInfo
	Repaired         bool `json:"repaired"`
	RepairViolated   int  `json:"repair_violated,omitempty"`
	RepairRecomputed int  `json:"repair_recomputed,omitempty"`
	RepairFellBack   bool `json:"repair_fell_back,omitempty"`
	RefreshPending   bool `json:"refresh_pending,omitempty"`
}

// policySolveResponse is the JSON answer of GET/POST /policies/{name}/solve.
type policySolveResponse struct {
	Name       string            `json:"name"`
	Version    uint64            `json:"version"`
	CacheHit   bool              `json:"cache_hit"`
	Assignment map[string]string `json:"assignment"`
	Stats      solveStats        `json:"stats"`
}

// etag formats a policy version as a strong entity tag.
func etag(version uint64) string { return `"` + strconv.FormatUint(version, 10) + `"` }

// mutateOptionsFrom reads the ?wait=1 query knob: wait forces the solver
// refresh to run inline on this request instead of a shard worker.
func mutateOptionsFrom(r *http.Request) minup.PolicyMutateOptions {
	switch r.URL.Query().Get("wait") {
	case "1", "true":
		return minup.PolicyMutateOptions{Wait: true}
	}
	return minup.PolicyMutateOptions{}
}

// preconditionFrom maps the request's conditional headers to a catalog
// version precondition: If-None-Match: * means create-only, If-Match "N"
// means the policy must still be at version N, If-Match: * or no header
// means unconditional.
func preconditionFrom(r *http.Request) (int64, error) {
	if inm := strings.TrimSpace(r.Header.Get("If-None-Match")); inm != "" {
		if inm != "*" {
			return 0, fmt.Errorf("If-None-Match only supports *, got %q", inm)
		}
		return minup.PolicyMustNotExist, nil
	}
	im := strings.TrimSpace(r.Header.Get("If-Match"))
	if im == "" || im == "*" {
		return minup.PolicyUnconditional, nil
	}
	v, err := strconv.ParseUint(strings.Trim(im, `"`), 10, 63)
	if err != nil || v == 0 {
		return 0, fmt.Errorf("malformed If-Match %q: want a version ETag like %q", im, etag(3))
	}
	return int64(v), nil
}

// decodePolicyBody reads a bounded JSON body into dst, answering 400
// itself on failure.
func decodePolicyBody(w http.ResponseWriter, r *http.Request, dst *policyRequest) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxPolicyBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		http.Error(w, "decoding body: "+err.Error(), http.StatusBadRequest)
		return false
	}
	return true
}

// policyError maps a catalog error to its status: 404 unknown name, 409
// create-only conflict, 412 lost version race, 422 unsolvable, 500 storage
// or solver failure, 503 catalog closed (shutdown), 504 budget expiry, and
// 400 for everything else (bad names, unparseable source text).
func (s *server) policyError(w http.ResponseWriter, r *http.Request, err error) {
	if ri := infoFrom(r.Context()); ri != nil {
		ri.errText = err.Error()
	}
	switch {
	case errors.Is(err, minup.ErrPolicyNotFound):
		http.Error(w, err.Error(), http.StatusNotFound)
	case errors.Is(err, minup.ErrPolicyExists):
		http.Error(w, err.Error(), http.StatusConflict)
	case errors.Is(err, minup.ErrPolicyVersionMismatch):
		http.Error(w, err.Error(), http.StatusPreconditionFailed)
	case errors.Is(err, minup.ErrUnsolvable):
		http.Error(w, err.Error(), http.StatusUnprocessableEntity)
	case errors.Is(err, minup.ErrPolicyStorage):
		http.Error(w, err.Error(), http.StatusInternalServerError)
	case errors.Is(err, minup.ErrPolicyClosed):
		// The catalog only closes during shutdown; tell the client to go
		// elsewhere rather than blaming the request.
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
	case errors.Is(err, minup.ErrInternal):
		http.Error(w, "internal solver error", http.StatusInternalServerError)
	case errors.Is(err, minup.ErrCanceled), errors.Is(err, context.DeadlineExceeded):
		if r.Context().Err() != nil {
			http.Error(w, err.Error(), http.StatusRequestTimeout)
			return
		}
		http.Error(w, err.Error(), http.StatusGatewayTimeout)
	default:
		http.Error(w, err.Error(), http.StatusBadRequest)
	}
}

func (s *server) handlePolicyList(w http.ResponseWriter, _ *http.Request) {
	infos := s.cat.List()
	entries := make([]policyIndexEntry, len(infos))
	for i, info := range infos {
		entries[i] = policyIndexEntry{PolicyInfo: info, ETag: etag(info.Version)}
	}
	writeJSON(w, policyListResponse{Count: len(entries), Policies: entries})
}

func (s *server) handlePolicyGet(w http.ResponseWriter, r *http.Request) {
	info, err := s.cat.Get(r.PathValue("name"))
	if err != nil {
		s.policyError(w, r, err)
		return
	}
	w.Header().Set("ETag", etag(info.Version))
	writeJSON(w, info)
}

func (s *server) handlePolicyPut(w http.ResponseWriter, r *http.Request) {
	if !s.clusterWriteGate(w, r) {
		return
	}
	ifVersion, err := preconditionFrom(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	var req policyRequest
	if !decodePolicyBody(w, r, &req) {
		return
	}
	if req.Lattice == "" || req.Constraints == "" {
		http.Error(w, `body must carry both "lattice" and "constraints" text`, http.StatusBadRequest)
		return
	}
	opts := mutateOptionsFrom(r)
	ctx := r.Context()
	if opts.Wait {
		// ?wait=1 compiles and solves inline, so it passes the same
		// admission gate and solve budget as /solve and appends.
		release, err := s.gate.acquire(ctx)
		if err != nil {
			if ctx.Err() != nil {
				http.Error(w, "client gone while queued", http.StatusRequestTimeout)
				return
			}
			writeShed(w, r, err)
			return
		}
		defer release()
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.solveBudget(r))
		defer cancel()
	}
	if ri := infoFrom(r.Context()); ri != nil {
		ri.policy = r.PathValue("name")
	}
	var seq uint64
	if s.cfg.cluster.node != nil {
		opts.SeqOut = &seq
	}
	info, err := s.cat.Put(ctx, r.PathValue("name"), req.Lattice, req.Constraints, ifVersion, opts)
	if err != nil {
		s.policyError(w, r, err)
		return
	}
	if ri := infoFrom(r.Context()); ri != nil {
		ri.shard = info.Shard
	}
	if !s.clusterBarrier(r.Context(), w, r, info.Shard, seq) {
		return
	}
	w.Header().Set("ETag", etag(info.Version))
	status := http.StatusOK
	if info.Version == 1 {
		status = http.StatusCreated
	}
	writeJSONStatus(w, status, info)
}

func (s *server) handlePolicyDelete(w http.ResponseWriter, r *http.Request) {
	if !s.clusterWriteGate(w, r) {
		return
	}
	ifVersion, err := preconditionFrom(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	var opts minup.PolicyMutateOptions
	var seq uint64
	if s.cfg.cluster.node != nil {
		opts.SeqOut = &seq
	}
	name := r.PathValue("name")
	if err := s.cat.Delete(r.Context(), name, ifVersion, opts); err != nil {
		s.policyError(w, r, err)
		return
	}
	if !s.clusterBarrier(r.Context(), w, r, s.cat.ShardOf(name), seq) {
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// handlePolicyAppend runs POST /policies/{name}/constraints. Appends do
// solver work — at least the solvability check, and with ?wait=1 the full
// inline repair — so they pass the same admission gate and solve budget as
// /solve.
func (s *server) handlePolicyAppend(w http.ResponseWriter, r *http.Request) {
	if !s.clusterWriteGate(w, r) {
		return
	}
	ifVersion, err := preconditionFrom(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	var req policyRequest
	if !decodePolicyBody(w, r, &req) {
		return
	}
	if req.Constraints == "" {
		http.Error(w, `body must carry "constraints" text`, http.StatusBadRequest)
		return
	}
	release, err := s.gate.acquire(r.Context())
	if err != nil {
		if r.Context().Err() != nil {
			http.Error(w, "client gone while queued", http.StatusRequestTimeout)
			return
		}
		writeShed(w, r, err)
		return
	}
	defer release()
	ctx, cancel := context.WithTimeout(r.Context(), s.solveBudget(r))
	defer cancel()
	if ri := infoFrom(r.Context()); ri != nil {
		ri.policy = r.PathValue("name")
	}
	opts := mutateOptionsFrom(r)
	var seq uint64
	if s.cfg.cluster.node != nil {
		opts.SeqOut = &seq
	}
	res, err := s.cat.Append(ctx, r.PathValue("name"), req.Constraints, ifVersion, opts)
	if err != nil {
		s.policyError(w, r, err)
		return
	}
	if ri := infoFrom(r.Context()); ri != nil {
		ri.shard = res.Info.Shard
	}
	if !s.clusterBarrier(r.Context(), w, r, res.Info.Shard, seq) {
		return
	}
	w.Header().Set("ETag", etag(res.Info.Version))
	writeJSON(w, policyAppendResponse{
		PolicyInfo:       res.Info,
		Repaired:         res.Repaired,
		RepairViolated:   res.Repair.ViolatedConstraints,
		RepairRecomputed: res.Repair.Recomputed,
		RepairFellBack:   res.Repair.FellBack,
		RefreshPending:   res.Pending,
	})
}

// handlePolicySolve serves GET/POST /policies/{name}/solve from the
// catalog's memoized cache; only a cache miss (the first solve of a
// version) compiles and solves, under the admission gate's budget.
func (s *server) handlePolicySolve(w http.ResponseWriter, r *http.Request) {
	release, err := s.gate.acquire(r.Context())
	if err != nil {
		if r.Context().Err() != nil {
			http.Error(w, "client gone while queued", http.StatusRequestTimeout)
			return
		}
		writeShed(w, r, err)
		return
	}
	defer release()
	ctx, cancel := context.WithTimeout(r.Context(), s.solveBudget(r))
	defer cancel()
	ri := infoFrom(r.Context())
	if ri != nil {
		ri.policy = r.PathValue("name")
	}
	res, err := s.cat.Solve(ctx, r.PathValue("name"))
	if err != nil {
		s.policyError(w, r, err)
		return
	}
	if ri != nil {
		ri.shard = res.Info.Shard
		ri.cacheHit = res.CacheHit
		ri.stats = flightStatsOf(res.Stats)
	}
	w.Header().Set("ETag", etag(res.Info.Version))
	writeJSON(w, policySolveResponse{
		Name:       res.Info.Name,
		Version:    res.Info.Version,
		CacheHit:   res.CacheHit,
		Assignment: res.Assignment,
		Stats:      newSolveStats(res.Stats),
	})
}

// writeJSONStatus is writeJSON with an explicit status code.
func writeJSONStatus(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// newSolveStats maps the solver's stats block to its JSON shape, shared by
// /solve and /policies/{name}/solve.
func newSolveStats(st minup.SolveStats) solveStats {
	return solveStats{
		Tries:          st.Tries,
		FailedTries:    st.FailedTries,
		Collapses:      st.Collapses,
		AttrsProcessed: st.AttrsProcessed,
		MinlevelCalls:  st.MinlevelCalls,
		TrySteps:       st.TrySteps,
		DescentSteps:   st.DescentSteps,
		LatticeLub:     st.LatticeOps.Lub,
		LatticeGlb:     st.LatticeOps.Glb,
		LatticeDom:     st.LatticeOps.Dominates,
		LatticeCovers:  st.LatticeOps.Covers,
		PoolHit:        st.PoolHit,
		DurationUS:     st.Duration.Microseconds(),
	}
}
