// The /problems surface: source-problem ingestion through the problem
// frontends. POST /problems/{family} accepts a frontend's JSON instance
// format (a suppress cross-tab table, a depinf relation), compiles it to
// policy source texts, and stores it through the ordinary catalog Put —
// so sharding, replication, memoized solves, flight records, and SLO
// gates all apply to compiled problems exactly as to hand-written
// policies. The response carries the stored PolicyInfo plus the compiled
// shape, and the policy is then served by the normal /policies routes.
package main

import (
	"context"
	"io"
	"net/http"
	"strings"

	"minup"
)

// problemFamilyEntry is one row of GET /problems.
type problemFamilyEntry struct {
	Family   string `json:"family"`
	Describe string `json:"describe"`
}

// problemListResponse is the JSON answer of GET /problems.
type problemListResponse struct {
	Count    int                  `json:"count"`
	Families []problemFamilyEntry `json:"families"`
}

// problemResponse reports a stored compiled problem: the catalog row it
// became plus the compiled constraint shape.
type problemResponse struct {
	minup.PolicyInfo
	Family      string `json:"family"`
	Instance    string `json:"instance"`
	Attrs       int    `json:"attrs"`
	Constraints int    `json:"constraints"`
}

func (s *server) handleProblemList(w http.ResponseWriter, _ *http.Request) {
	families := minup.ProblemFamilies()
	entries := make([]problemFamilyEntry, 0, len(families))
	for _, name := range families {
		fe, ok := minup.LookupProblemFrontend(name)
		if !ok {
			continue
		}
		entries = append(entries, problemFamilyEntry{Family: name, Describe: fe.Describe()})
	}
	writeJSON(w, problemListResponse{Count: len(entries), Families: entries})
}

func (s *server) handleProblemCreate(w http.ResponseWriter, r *http.Request) {
	family := r.PathValue("family")
	fe, ok := minup.LookupProblemFrontend(family)
	if !ok {
		http.Error(w, "unknown problem family "+family+" (have "+strings.Join(minup.ProblemFamilies(), ", ")+")",
			http.StatusNotFound)
		return
	}
	if !s.clusterWriteGate(w, r) {
		return
	}
	ifVersion, err := preconditionFrom(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxPolicyBody))
	if err != nil {
		http.Error(w, "reading body: "+err.Error(), http.StatusBadRequest)
		return
	}
	inst, err := fe.Parse(body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	c, err := fe.Compile(inst)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	name := inst.InstanceName()
	if q := r.URL.Query().Get("name"); q != "" {
		name = q
	}
	opts := mutateOptionsFrom(r)
	ctx := r.Context()
	if opts.Wait {
		// ?wait=1 solves inline, so it passes the same admission gate and
		// solve budget as /solve and policy mutations.
		release, err := s.gate.acquire(ctx)
		if err != nil {
			if ctx.Err() != nil {
				http.Error(w, "client gone while queued", http.StatusRequestTimeout)
				return
			}
			writeShed(w, r, err)
			return
		}
		defer release()
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.solveBudget(r))
		defer cancel()
	}
	if ri := infoFrom(r.Context()); ri != nil {
		ri.policy = name
	}
	var seq uint64
	if s.cfg.cluster.node != nil {
		opts.SeqOut = &seq
	}
	info, err := s.cat.Put(ctx, name, c.LatticeText, c.ConstraintText, ifVersion, opts)
	if err != nil {
		s.policyError(w, r, err)
		return
	}
	if ri := infoFrom(r.Context()); ri != nil {
		ri.shard = info.Shard
	}
	if !s.clusterBarrier(r.Context(), w, r, info.Shard, seq) {
		return
	}
	s.reg.Counter("problems." + family + ".created").Inc()
	w.Header().Set("ETag", etag(info.Version))
	status := http.StatusOK
	if info.Version == 1 {
		status = http.StatusCreated
	}
	writeJSONStatus(w, status, problemResponse{
		PolicyInfo:  info,
		Family:      family,
		Instance:    inst.InstanceName(),
		Attrs:       c.Set.NumAttrs(),
		Constraints: len(c.Set.Constraints()),
	})
}
