package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"minup"
)

func faultAdminDo(t *testing.T, h http.Handler, method, body string) *httptest.ResponseRecorder {
	t.Helper()
	var rd *strings.Reader
	if body != "" {
		rd = strings.NewReader(body)
	} else {
		rd = strings.NewReader("")
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(method, "/debug/fault", rd))
	return rec
}

func TestFaultAdminRearmAndSnapshot(t *testing.T) {
	inj := minup.NewFaultInjector(1)
	h := faultAdminHandler(inj)

	// Fresh injector: unarmed, no rules.
	rec := faultAdminDo(t, h, http.MethodGet, "")
	if rec.Code != http.StatusOK {
		t.Fatalf("GET = %d: %s", rec.Code, rec.Body.String())
	}
	var snap struct {
		Armed bool                       `json:"armed"`
		Rules map[string]json.RawMessage `json:"rules"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Armed || len(snap.Rules) != 0 {
		t.Fatalf("fresh injector snapshot: %+v", snap)
	}

	// Arming via POST takes effect on the injector's fault points.
	rec = faultAdminDo(t, h, http.MethodPost, "solve.step:cancel:%1\n")
	if rec.Code != http.StatusOK {
		t.Fatalf("POST spec = %d: %s", rec.Code, rec.Body.String())
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if !snap.Armed || len(snap.Rules) != 1 {
		t.Fatalf("armed snapshot: %+v", snap)
	}
	if err := inj.Hit("solve.step"); err == nil {
		t.Fatal("armed rule did not fire")
	}

	// An empty body disarms.
	rec = faultAdminDo(t, h, http.MethodPost, "")
	if rec.Code != http.StatusOK {
		t.Fatalf("POST empty = %d: %s", rec.Code, rec.Body.String())
	}
	if err := inj.Hit("solve.step"); err != nil {
		t.Fatalf("disarmed injector still fires: %v", err)
	}

	// A bad spec is rejected and leaves the injector disarmed.
	rec = faultAdminDo(t, h, http.MethodPost, "not-a-spec")
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("POST bad spec = %d", rec.Code)
	}
	if err := inj.Hit("solve.step"); err != nil {
		t.Fatalf("rejected spec armed the injector: %v", err)
	}

	if rec := faultAdminDo(t, h, http.MethodDelete, ""); rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("DELETE = %d, want 405", rec.Code)
	}
}

func TestMetricsBuildInfoAndUptime(t *testing.T) {
	srv, h, _ := newTestServer(t)
	srv.reg.Info("build_info", map[string]string{
		"version":    buildVersion(),
		"go_version": "go-test",
	})
	rec := get(t, h, "/metrics?format=prometheus")
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /metrics = %d", rec.Code)
	}
	m, err := minup.ParsePrometheus(strings.NewReader(rec.Body.String()))
	if err != nil {
		t.Fatal(err)
	}
	labels, ok := m.Labels("build_info")
	if !ok {
		t.Fatal("no build_info in scrape")
	}
	if labels["go_version"] != "go-test" || labels["version"] == "" {
		t.Fatalf("build_info labels: %+v", labels)
	}
	if _, ok := m.Value("process_uptime_seconds"); !ok {
		t.Fatal("no process_uptime_seconds in scrape")
	}
}
