// Cluster-mode wiring for minupd: replication flags, the write gate in
// front of every catalog mutation, the majority-ack barrier behind it, and
// the GET /cluster status route.
//
// In cluster mode (-cluster-listen plus -cluster-peers) each minupd runs a
// replication node next to its catalog. The leader accepts mutations,
// streams the resulting WAL record frames to its followers, and a mutation
// handler answers success only after a majority of replicas has durably
// appended the record. Followers answer mutations with a 307 redirect to
// the leader's advertised HTTP address (X-Cluster-Leader carries the hint)
// while a leader is known, and with 503 + "X-Cluster-State: no-leader"
// during election windows. Reads stay local on every node — that is the
// point of replicating the memoized catalog.
package main

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"time"

	"minup"
)

// clusterConfig carries the -cluster-* flags into the server.
type clusterConfig struct {
	node          *minup.ClusterNode
	maxReplicaLag int64 // /readyz threshold; negative disables the check
}

// parseClusterPeers parses "1=127.0.0.1:7001,2=127.0.0.1:7002" into the
// peer map handed to OpenClusterNode.
func parseClusterPeers(spec string) (map[int]string, error) {
	peers := make(map[int]string)
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, addr, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("peer %q: want id=host:port", part)
		}
		n, err := strconv.Atoi(strings.TrimSpace(id))
		if err != nil || n < 0 {
			return nil, fmt.Errorf("peer %q: bad node id", part)
		}
		if _, dup := peers[n]; dup {
			return nil, fmt.Errorf("peer %q: duplicate node id %d", part, n)
		}
		peers[n] = strings.TrimSpace(addr)
	}
	if len(peers) == 0 {
		return nil, fmt.Errorf("empty -cluster-peers")
	}
	return peers, nil
}

// clusterWriteGate fences one mutation request. It returns true when this
// node may apply the mutation locally; otherwise it has already answered —
// a 307 to the leader (method and body preserved) or a 503 during an
// election window.
func (s *server) clusterWriteGate(w http.ResponseWriter, r *http.Request) bool {
	if s.cfg.cluster.node == nil {
		return true
	}
	leaderHTTP, err := s.cfg.cluster.node.WriteGate()
	switch {
	case err == nil:
		return true
	case errors.Is(err, minup.ErrClusterNotLeader) && leaderHTTP != "":
		s.reg.Counter("cluster.http.redirects").Inc()
		w.Header().Set("X-Cluster-Leader", leaderHTTP)
		http.Redirect(w, r, leaderHTTP+r.URL.RequestURI(), http.StatusTemporaryRedirect)
		return false
	default:
		s.reg.Counter("cluster.http.no_leader").Inc()
		w.Header().Set("X-Cluster-State", "no-leader")
		w.Header().Set("Retry-After", "1")
		http.Error(w, "no cluster leader (election in progress); retry", http.StatusServiceUnavailable)
		return false
	}
}

// clusterBarrier blocks until the mutation at (shard, seq) is replicated on
// a majority. On failure it answers the request itself and returns false:
// the mutation is durable locally but must not be acknowledged as
// committed.
func (s *server) clusterBarrier(ctx context.Context, w http.ResponseWriter, r *http.Request, shard int, seq uint64) bool {
	if s.cfg.cluster.node == nil {
		return true
	}
	err := s.cfg.cluster.node.Barrier(ctx, shard, seq)
	if err == nil {
		return true
	}
	if ri := infoFrom(r.Context()); ri != nil {
		ri.errText = err.Error()
	}
	switch {
	case errors.Is(err, minup.ErrClusterNoQuorum):
		w.Header().Set("X-Cluster-State", "no-quorum")
		w.Header().Set("Retry-After", "1")
		http.Error(w, "mutation durable on the leader but not yet replicated to a majority: "+err.Error(),
			http.StatusServiceUnavailable)
	case errors.Is(err, minup.ErrClusterNotLeader), errors.Is(err, minup.ErrClusterNoLeader):
		// Leadership was lost between the local append and the ack; the
		// record either commits via the next leader or is overwritten by its
		// snapshot. Either way this node cannot vouch for it.
		w.Header().Set("X-Cluster-State", "no-leader")
		w.Header().Set("Retry-After", "1")
		http.Error(w, "leadership lost before the mutation reached a majority: "+err.Error(),
			http.StatusServiceUnavailable)
	case r.Context().Err() != nil:
		http.Error(w, err.Error(), http.StatusRequestTimeout)
	default:
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
	}
	return false
}

// clusterReady reports this replica's readiness to serve reads: a
// follower whose replication lag is unknown (no leader contact) or past
// -max-replica-lag answers not-ready so load balancers route around the
// stale replica. The leader is always ready.
func (s *server) clusterReady() (string, bool) {
	node := s.cfg.cluster.node
	if node == nil || s.cfg.cluster.maxReplicaLag < 0 {
		return "", true
	}
	lag, known := node.ReplicaLag()
	if !known {
		return "replica lag unknown (no leader contact)", false
	}
	if lag > uint64(s.cfg.cluster.maxReplicaLag) {
		return fmt.Sprintf("replica lagging %d frames (max %d)", lag, s.cfg.cluster.maxReplicaLag), false
	}
	return "", true
}

// clusterLoadHints is this node's local admission snapshot, attached to
// GET /cluster so load generators and routing clients can prefer lightly
// loaded, low-lag nodes for reads without a second probe.
type clusterLoadHints struct {
	Inflight    int   `json:"inflight"`
	MaxInflight int   `json:"max_inflight"`
	QueueDepth  int64 `json:"queue_depth"`
}

// clusterStatusResponse is the GET /cluster payload: the replication view
// (role, term, lease, per-peer lag, catalog fingerprint) plus the local
// load hints.
type clusterStatusResponse struct {
	minup.ClusterStatus
	Load clusterLoadHints `json:"load"`
}

// handleClusterStatus serves GET /cluster: this node's view of the
// cluster (role, term, lease, per-peer lag, catalog fingerprint) plus
// per-node load-balancing hints.
func (s *server) handleClusterStatus(w http.ResponseWriter, _ *http.Request) {
	node := s.cfg.cluster.node
	if node == nil {
		http.Error(w, "not running in cluster mode (start minupd with -cluster-listen/-cluster-peers)", http.StatusNotFound)
		return
	}
	writeJSON(w, clusterStatusResponse{
		ClusterStatus: node.Status(),
		Load: clusterLoadHints{
			Inflight:    s.gate.inflight(),
			MaxInflight: s.gate.capacity(),
			QueueDepth:  s.gate.queueDepth(),
		},
	})
}

// openCluster boots the replication node from the -cluster-* flag values.
// Called by main after the catalog is open; the record ring must already be
// wired into the catalog's OnRecord hook.
func openCluster(cat *minup.PolicyCatalog, ring *minup.ClusterRecordLog, cf clusterFlags, deps clusterDeps) (*minup.ClusterNode, error) {
	peers, err := parseClusterPeers(cf.peers)
	if err != nil {
		return nil, fmt.Errorf("-cluster-peers: %w", err)
	}
	if _, ok := peers[cf.nodeID]; !ok {
		return nil, fmt.Errorf("-cluster-node %d does not appear in -cluster-peers", cf.nodeID)
	}
	addr := cf.listen
	if addr == "" {
		addr = peers[cf.nodeID]
	}
	return minup.OpenClusterNode(minup.ClusterOptions{
		ID:       cf.nodeID,
		Addr:     addr,
		Peers:    peers,
		HTTPAddr: cf.httpAddr,
		Catalog:  cat,
		Records:  ring,
		Dir:      deps.dir,
		Metrics:  deps.reg,
		Logger:   deps.logger,
		Fault:    deps.fault,
		Tick:     cf.tick,
		Lease:    cf.lease,
	})
}

// clusterFlags is the raw -cluster-* flag bundle.
type clusterFlags struct {
	nodeID   int
	listen   string
	peers    string
	httpAddr string
	tick     time.Duration
	lease    time.Duration
}

// enabled reports whether any cluster flag was set.
func (cf clusterFlags) enabled() bool { return cf.peers != "" || cf.listen != "" }

// clusterDeps carries the already-constructed process-wide dependencies
// into openCluster.
type clusterDeps struct {
	dir    string
	reg    *minup.MetricsRegistry
	logger *slog.Logger
	fault  *minup.FaultInjector
}
