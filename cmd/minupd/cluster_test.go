package main

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"minup"
)

// clusterTestNode is one in-process minupd with a replication node behind
// it, serving real HTTP via httptest so redirects carry resolvable URLs.
type clusterTestNode struct {
	id   int
	cat  *minup.PolicyCatalog
	node *minup.ClusterNode
	reg  *minup.MetricsRegistry
	srv  *server
	hs   *httptest.Server
}

// newClusterServers boots n minupd servers joined into one replication
// cluster (shards pinned to 2, fast test timings).
func newClusterServers(t *testing.T, n int) []*clusterTestNode {
	t.Helper()
	// Reserve replication ports so the full peer map is known up front.
	addrs := make([]string, n)
	lns := make([]net.Listener, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range lns {
		ln.Close()
	}
	peers := make(map[int]string, n)
	for i, a := range addrs {
		peers[i] = a
	}

	nodes := make([]*clusterTestNode, n)
	for i := range nodes {
		tn := &clusterTestNode{id: i, reg: minup.NewMetricsRegistry()}
		ring := minup.NewClusterRecordLog(0)
		cat, err := minup.OpenCatalog(minup.CatalogOptions{
			Metrics:  tn.reg,
			Shards:   2,
			OnRecord: ring.Append,
		})
		if err != nil {
			t.Fatal(err)
		}
		tn.cat = cat
		// The HTTP listener must exist before the cluster node advertises
		// its URL; the handler is swapped in once the server is wired.
		var h atomic.Pointer[http.Handler]
		nf := http.Handler(http.NotFoundHandler())
		h.Store(&nf)
		tn.hs = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			(*h.Load()).ServeHTTP(w, r)
		}))
		node, err := minup.OpenClusterNode(minup.ClusterOptions{
			ID:       i,
			Addr:     addrs[i],
			Peers:    peers,
			HTTPAddr: tn.hs.URL,
			Catalog:  cat,
			Records:  ring,
			Metrics:  tn.reg,
			Tick:     10 * time.Millisecond,
			Lease:    80 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		tn.node = node
		cfg := defaultConfig()
		cfg.cluster = clusterConfig{node: node, maxReplicaLag: 8}
		tn.srv = newServer(nil, nil, cat, tn.reg, cfg)
		logger := slog.New(slog.NewJSONHandler(&strings.Builder{}, nil))
		routes := tn.srv.routes(logger)
		h.Store(&routes)
		nodes[i] = tn
	}
	t.Cleanup(func() {
		for _, tn := range nodes {
			tn.hs.Close()
			tn.node.Close()
			tn.cat.Close()
		}
	})
	return nodes
}

// waitClusterLeader polls until one node reports leadership.
func waitClusterLeader(t *testing.T, nodes []*clusterTestNode) *clusterTestNode {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		for _, tn := range nodes {
			if tn.node.IsLeader() {
				return tn
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("no cluster leader elected")
	return nil
}

// noRedirects is an http.Client that surfaces 307s instead of following.
var noRedirects = &http.Client{
	CheckRedirect: func(*http.Request, []*http.Request) error { return http.ErrUseLastResponse },
}

func putPolicy(t *testing.T, baseURL, name string, client *http.Client) *http.Response {
	t.Helper()
	body := fmt.Sprintf(`{"lattice": %q, "constraints": %q}`, testPolicyLattice, testPolicyCons)
	req, err := http.NewRequest(http.MethodPut, baseURL+"/policies/"+name, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestClusterHTTPWriteFlow: writes on the leader commit after majority
// replication and become visible on follower reads; writes on a follower
// answer 307 with the leader's URL; /cluster and /readyz reflect the roles.
func TestClusterHTTPWriteFlow(t *testing.T) {
	nodes := newClusterServers(t, 3)
	leader := waitClusterLeader(t, nodes)
	var follower *clusterTestNode
	for _, tn := range nodes {
		if tn != leader {
			follower = tn
			break
		}
	}

	// Leader accepts and acks the mutation.
	resp := putPolicy(t, leader.hs.URL, "acct", http.DefaultClient)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("leader PUT = %d", resp.StatusCode)
	}
	resp.Body.Close()
	if got := leader.reg.Counter("cluster.acks").Value(); got == 0 {
		t.Fatal("leader acked the PUT without a majority barrier")
	}

	// Follower redirects writes to the leader, preserving method and path.
	resp = putPolicy(t, follower.hs.URL, "acct2", noRedirects)
	if resp.StatusCode != http.StatusTemporaryRedirect {
		t.Fatalf("follower PUT = %d, want 307", resp.StatusCode)
	}
	if loc := resp.Header.Get("Location"); !strings.HasPrefix(loc, leader.hs.URL) || !strings.HasSuffix(loc, "/policies/acct2") {
		t.Fatalf("follower redirect Location = %q", loc)
	}
	if hint := resp.Header.Get("X-Cluster-Leader"); hint != leader.hs.URL {
		t.Fatalf("X-Cluster-Leader = %q, want %q", hint, leader.hs.URL)
	}
	resp.Body.Close()

	// A client that follows the redirect lands the write.
	resp = putPolicy(t, follower.hs.URL, "acct2", http.DefaultClient)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("redirected PUT = %d", resp.StatusCode)
	}
	resp.Body.Close()

	// The replicated policy becomes readable on the follower.
	deadline := time.Now().Add(5 * time.Second)
	for {
		r, err := http.Get(follower.hs.URL + "/policies/acct2")
		if err != nil {
			t.Fatal(err)
		}
		code := r.StatusCode
		r.Body.Close()
		if code == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower never served the replicated policy (last %d)", code)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// GET /cluster reflects both roles and a converged fingerprint.
	var ls, fs minup.ClusterStatus
	getJSON(t, leader.hs.URL+"/cluster", &ls)
	getJSON(t, follower.hs.URL+"/cluster", &fs)
	if ls.Role != "leader" || fs.Role != "follower" {
		t.Fatalf("roles: leader=%q follower=%q", ls.Role, fs.Role)
	}
	if fs.LeaderID != ls.ID || fs.LeaderHTTP != leader.hs.URL {
		t.Fatalf("follower points at leader %d %q", fs.LeaderID, fs.LeaderHTTP)
	}
	if len(ls.Peers) != 2 {
		t.Fatalf("leader sees %d peers, want 2", len(ls.Peers))
	}
	deadline = time.Now().Add(3 * time.Second)
	for {
		getJSON(t, leader.hs.URL+"/cluster", &ls)
		getJSON(t, follower.hs.URL+"/cluster", &fs)
		if ls.Fingerprint == fs.Fingerprint && fs.ReplicaLagKnown && fs.ReplicaLag == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("status never converged: leader fp=%s follower fp=%s lag=%d known=%v",
				ls.Fingerprint, fs.Fingerprint, fs.ReplicaLag, fs.ReplicaLagKnown)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Both replicas report ready: the leader trivially, the follower
	// because its lag is known and under -max-replica-lag.
	for _, tn := range []*clusterTestNode{leader, follower} {
		r, err := http.Get(tn.hs.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		code := r.StatusCode
		r.Body.Close()
		if code != http.StatusOK {
			t.Fatalf("node %d /readyz = %d", tn.id, code)
		}
	}
}

// TestClusterHTTPNoLeader: a node that cannot reach a quorum must answer
// writes with 503 + X-Cluster-State: no-leader and report itself not
// ready, rather than accepting mutations it can never commit.
func TestClusterHTTPNoLeader(t *testing.T) {
	// One live node in a declared 3-node membership whose other two members
	// never start: elections can never reach quorum.
	lns := make([]net.Listener, 3)
	addrs := make([]string, 3)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range lns {
		ln.Close()
	}
	reg := minup.NewMetricsRegistry()
	ring := minup.NewClusterRecordLog(0)
	cat, err := minup.OpenCatalog(minup.CatalogOptions{Metrics: reg, Shards: 2, OnRecord: ring.Append})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cat.Close() })
	node, err := minup.OpenClusterNode(minup.ClusterOptions{
		ID: 0, Addr: addrs[0],
		Peers:    map[int]string{0: addrs[0], 1: addrs[1], 2: addrs[2]},
		HTTPAddr: "http://unadvertised.test",
		Catalog:  cat, Records: ring, Metrics: reg,
		Tick: 10 * time.Millisecond, Lease: 80 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { node.Close() })
	cfg := defaultConfig()
	cfg.cluster = clusterConfig{node: node, maxReplicaLag: 8}
	srv := newServer(nil, nil, cat, reg, cfg)
	logger := slog.New(slog.NewJSONHandler(&strings.Builder{}, nil))
	h := srv.routes(logger)

	rec := policyReq(t, h, http.MethodPut, "/policies/orphan",
		&policyRequest{Lattice: testPolicyLattice, Constraints: testPolicyCons}, nil)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("leaderless PUT = %d: %s", rec.Code, rec.Body.String())
	}
	if st := rec.Header().Get("X-Cluster-State"); st != "no-leader" {
		t.Fatalf("X-Cluster-State = %q, want no-leader", st)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("leaderless PUT carries no Retry-After")
	}
	// No leader contact: the replica cannot judge its own staleness.
	rec = get(t, h, "/readyz")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("leaderless /readyz = %d: %s", rec.Code, rec.Body.String())
	}
	rec = get(t, h, "/cluster")
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /cluster = %d", rec.Code)
	}
	var st minup.ClusterStatus
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Role == "leader" {
		t.Fatal("quorumless node claims leadership")
	}
}

// TestClusterStatusRouteStandalone: without cluster flags /cluster is 404.
func TestClusterStatusRouteStandalone(t *testing.T) {
	_, h, _ := newTestServer(t)
	rec := get(t, h, "/cluster")
	if rec.Code != http.StatusNotFound {
		t.Fatalf("standalone GET /cluster = %d, want 404", rec.Code)
	}
}

// TestParseClusterPeers covers the flag grammar.
func TestParseClusterPeers(t *testing.T) {
	peers, err := parseClusterPeers("0=127.0.0.1:7000, 1=127.0.0.1:7001,2=127.0.0.1:7002")
	if err != nil {
		t.Fatal(err)
	}
	if len(peers) != 3 || peers[1] != "127.0.0.1:7001" {
		t.Fatalf("parsed %v", peers)
	}
	for _, bad := range []string{"", "x=1:2", "0", "0=a,0=b"} {
		if _, err := parseClusterPeers(bad); err == nil {
			t.Fatalf("spec %q parsed", bad)
		}
	}
}

func getJSON(t *testing.T, url string, dst any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(dst); err != nil {
		t.Fatal(err)
	}
}
