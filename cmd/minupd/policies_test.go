package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

const (
	testPolicyLattice = "chain mil\nlevels U C S TS\n"
	testPolicyCons    = "attrs salary rank\nsalary >= rank\nrank >= S\n"
)

// policyReq performs one request against the handler with an optional JSON
// body built from a policyRequest and optional conditional headers.
func policyReq(t *testing.T, h http.Handler, method, path string, body *policyRequest, hdr map[string]string) *httptest.ResponseRecorder {
	t.Helper()
	var rd *strings.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = strings.NewReader(string(b))
	} else {
		rd = strings.NewReader("")
	}
	req := httptest.NewRequest(method, path, rd)
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

// TestPolicyWaitPutShedWhenSaturated: a PUT with ?wait=1 runs a full
// inline compile+solve, so it passes the same admission gate as /solve and
// appends — and sheds when the gate is saturated. A plain async PUT does
// no inline solver work and must keep landing regardless.
func TestPolicyWaitPutShedWhenSaturated(t *testing.T) {
	cfg := defaultConfig()
	cfg.maxInflight = 1
	cfg.maxQueue = 0
	srv, h, _ := newTestServerCfg(t, cfg)

	// Occupy the only slot, as a long-running solve would.
	srv.gate.sem <- struct{}{}
	defer func() { <-srv.gate.sem }()

	body := &policyRequest{Lattice: testPolicyLattice, Constraints: testPolicyCons}
	rec := policyReq(t, h, http.MethodPut, "/policies/gated?wait=1", body, nil)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("saturated wait-PUT = %d: %s", rec.Code, rec.Body.String())
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("shed response has no Retry-After")
	}
	rec = policyReq(t, h, http.MethodPut, "/policies/gated", body, nil)
	if rec.Code != http.StatusCreated {
		t.Fatalf("saturated async PUT = %d: %s", rec.Code, rec.Body.String())
	}
}

// TestPolicyLifecycle walks the full policy lifecycle over HTTP with
// ?wait=1 mutations and proves the acceptance criterion with counters:
// every solve of an unchanged policy is a cache hit with zero compiles and
// zero full solves beyond the one compile the PUT's inline refresh ran —
// solve.cold never moves, and the append maintains the cache through the
// incremental repair.
func TestPolicyLifecycle(t *testing.T) {
	srv, h, _ := newTestServer(t)

	rec := policyReq(t, h, http.MethodPut, "/policies/acct?wait=1",
		&policyRequest{Lattice: testPolicyLattice, Constraints: testPolicyCons}, nil)
	if rec.Code != http.StatusCreated {
		t.Fatalf("PUT = %d: %s", rec.Code, rec.Body.String())
	}
	if et := rec.Header().Get("ETag"); et != `"1"` {
		t.Fatalf("created ETag = %q, want %q", et, `"1"`)
	}
	var pinfo struct {
		Solved   bool `json:"solved"`
		Compiled bool `json:"compiled"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &pinfo); err != nil {
		t.Fatal(err)
	}
	if !pinfo.Solved || !pinfo.Compiled {
		t.Fatalf("wait-PUT answered with a cold cache: %+v", pinfo)
	}

	rec = get(t, h, "/policies")
	var list policyListResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &list); err != nil {
		t.Fatal(err)
	}
	if list.Count != 1 || len(list.Policies) != 1 || list.Policies[0].Name != "acct" {
		t.Fatalf("list = %+v", list)
	}

	// First solve: the wait-PUT already warmed this version's cache.
	rec = get(t, h, "/policies/acct/solve")
	if rec.Code != http.StatusOK {
		t.Fatalf("solve = %d: %s", rec.Code, rec.Body.String())
	}
	var sr policySolveResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &sr); err != nil {
		t.Fatal(err)
	}
	if !sr.CacheHit {
		t.Fatal("solve after a wait-PUT was not a cache hit")
	}
	if sr.Assignment["salary"] != "S" || sr.Assignment["rank"] != "S" {
		t.Fatalf("assignment = %v", sr.Assignment)
	}
	before := srv.reg.Snapshot()
	if before.Counters["catalog.compiles"] != 1 || before.Counters["solve.cold"] != 0 {
		t.Fatalf("after wait-PUT + solve: compiles=%d cold=%d, want 1/0",
			before.Counters["catalog.compiles"], before.Counters["solve.cold"])
	}

	// Second solve of the unchanged policy: zero compiles, zero solves.
	rec = get(t, h, "/policies/acct/solve")
	if err := json.Unmarshal(rec.Body.Bytes(), &sr); err != nil {
		t.Fatal(err)
	}
	if !sr.CacheHit {
		t.Fatal("unchanged policy's second solve was not a cache hit")
	}
	if et := rec.Header().Get("ETag"); et != `"1"` {
		t.Fatalf("solve ETag = %q, want %q", et, `"1"`)
	}
	after := srv.reg.Snapshot()
	if after.Counters["catalog.compiles"] != before.Counters["catalog.compiles"] {
		t.Fatalf("cache-hit solve compiled: %d -> %d",
			before.Counters["catalog.compiles"], after.Counters["catalog.compiles"])
	}
	if after.Counters["solve.cold"] != before.Counters["solve.cold"] {
		t.Fatalf("cache-hit solve ran a full solve: %d -> %d",
			before.Counters["solve.cold"], after.Counters["solve.cold"])
	}
	if after.Counters["catalog.cache_hits"] != before.Counters["catalog.cache_hits"]+1 {
		t.Fatalf("cache_hits = %d, want %d",
			after.Counters["catalog.cache_hits"], before.Counters["catalog.cache_hits"]+1)
	}

	// A waited append runs the incremental repair off the warm cache and
	// keeps it warm: the next solve is still a hit, at the new version.
	rec = policyReq(t, h, http.MethodPost, "/policies/acct/constraints?wait=1",
		&policyRequest{Constraints: "rank >= TS\n"}, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("append = %d: %s", rec.Code, rec.Body.String())
	}
	var ar policyAppendResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &ar); err != nil {
		t.Fatal(err)
	}
	if !ar.Repaired {
		t.Fatal("waited append with a warm cache did not run the incremental repair")
	}
	if ar.RefreshPending {
		t.Fatal("waited append still reported a pending refresh")
	}
	if ar.Version != 2 {
		t.Fatalf("appended version = %d, want 2", ar.Version)
	}
	rec = get(t, h, "/policies/acct/solve")
	if err := json.Unmarshal(rec.Body.Bytes(), &sr); err != nil {
		t.Fatal(err)
	}
	if !sr.CacheHit || sr.Version != 2 {
		t.Fatalf("post-append solve: hit=%v version=%d, want hit at version 2", sr.CacheHit, sr.Version)
	}
	if sr.Assignment["rank"] != "TS" || sr.Assignment["salary"] != "TS" {
		t.Fatalf("post-append assignment = %v", sr.Assignment)
	}
	final := srv.reg.Snapshot()
	if final.Counters["solve.cold"] != 0 {
		t.Fatalf("solve.cold = %d after repair-maintained cache, want 0", final.Counters["solve.cold"])
	}
	if final.Counters["catalog.repairs"] != 1 {
		t.Fatalf("catalog.repairs = %d, want 1", final.Counters["catalog.repairs"])
	}

	rec = policyReq(t, h, http.MethodDelete, "/policies/acct", nil, nil)
	if rec.Code != http.StatusNoContent {
		t.Fatalf("DELETE = %d: %s", rec.Code, rec.Body.String())
	}
	if rec = get(t, h, "/policies/acct"); rec.Code != http.StatusNotFound {
		t.Fatalf("GET after delete = %d", rec.Code)
	}
	if rec = get(t, h, "/policies/acct/solve"); rec.Code != http.StatusNotFound {
		t.Fatalf("solve after delete = %d", rec.Code)
	}
}

// TestPolicyAsyncPipeline covers the default (no ?wait) path: mutations
// answer before the solver refresh ran, appends carry refresh_pending, and
// once the pipeline drains the next solve is served warm at the new
// version without a single synchronous cold solve.
func TestPolicyAsyncPipeline(t *testing.T) {
	srv, h, _ := newTestServer(t)

	rec := policyReq(t, h, http.MethodPut, "/policies/bg",
		&policyRequest{Lattice: testPolicyLattice, Constraints: testPolicyCons}, nil)
	if rec.Code != http.StatusCreated {
		t.Fatalf("PUT = %d: %s", rec.Code, rec.Body.String())
	}
	rec = policyReq(t, h, http.MethodPost, "/policies/bg/constraints",
		&policyRequest{Constraints: "rank >= TS\n"}, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("append = %d: %s", rec.Code, rec.Body.String())
	}
	var ar policyAppendResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &ar); err != nil {
		t.Fatal(err)
	}
	if ar.Repaired || !ar.RefreshPending {
		t.Fatalf("async append = %+v, want pending refresh and no inline repair", ar)
	}
	if ar.Version != 2 {
		t.Fatalf("async append version = %d, want 2", ar.Version)
	}

	if err := srv.cat.Flush(context.Background()); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	rec = get(t, h, "/policies/bg/solve")
	var sr policySolveResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &sr); err != nil {
		t.Fatal(err)
	}
	if !sr.CacheHit || sr.Version != 2 || sr.Assignment["rank"] != "TS" {
		t.Fatalf("post-flush solve: hit=%v version=%d assignment=%v, want warm version 2",
			sr.CacheHit, sr.Version, sr.Assignment)
	}
	if cold := srv.reg.Snapshot().Counters["solve.cold"]; cold != 0 {
		t.Fatalf("solve.cold = %d, want 0 (refreshes ran on shard workers)", cold)
	}
}

// TestPolicyIndex pins the GET /policies wire format: every entry carries
// the version rendered as an etag, its shard assignment, and the cache
// state, so operators can see pipeline progress without per-policy GETs.
func TestPolicyIndex(t *testing.T) {
	srv, h, _ := newTestServer(t)
	for _, name := range []string{"idx-a", "idx-b"} {
		if rec := policyReq(t, h, http.MethodPut, "/policies/"+name+"?wait=1",
			&policyRequest{Lattice: testPolicyLattice, Constraints: testPolicyCons}, nil); rec.Code != http.StatusCreated {
			t.Fatalf("PUT %s = %d: %s", name, rec.Code, rec.Body.String())
		}
	}

	rec := get(t, h, "/policies")
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /policies = %d", rec.Code)
	}
	for _, key := range []string{`"etag"`, `"shard"`, `"solved"`, `"compiled"`} {
		if !strings.Contains(rec.Body.String(), key) {
			t.Fatalf("index response lacks %s: %s", key, rec.Body.String())
		}
	}
	var list policyListResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &list); err != nil {
		t.Fatal(err)
	}
	if list.Count != 2 || len(list.Policies) != 2 {
		t.Fatalf("index = %+v, want 2 policies", list)
	}
	nshards := srv.cat.RecoveryInfo().Shards
	for _, e := range list.Policies {
		if e.ETag != `"1"` || e.Version != 1 {
			t.Fatalf("%s: etag %q version %d, want \"1\"/1", e.Name, e.ETag, e.Version)
		}
		if e.Shard < 0 || e.Shard >= nshards {
			t.Fatalf("%s: shard %d outside [0,%d)", e.Name, e.Shard, nshards)
		}
		if !e.Solved || !e.Compiled {
			t.Fatalf("%s: wait-PUT left cache state %+v", e.Name, e)
		}
	}
}

// TestPolicyPreconditions covers the conditional-header matrix: 409 for
// create-only conflicts, 412 for lost version races, 404 for unknown
// names, and 400/422 for malformed or unsolvable input.
func TestPolicyPreconditions(t *testing.T) {
	_, h, _ := newTestServer(t)
	body := &policyRequest{Lattice: testPolicyLattice, Constraints: testPolicyCons}

	if rec := policyReq(t, h, http.MethodPut, "/policies/p", body,
		map[string]string{"If-None-Match": "*"}); rec.Code != http.StatusCreated {
		t.Fatalf("create-only PUT = %d: %s", rec.Code, rec.Body.String())
	}
	if rec := policyReq(t, h, http.MethodPut, "/policies/p", body,
		map[string]string{"If-None-Match": "*"}); rec.Code != http.StatusConflict {
		t.Fatalf("create-only PUT over existing = %d, want 409", rec.Code)
	}
	if rec := policyReq(t, h, http.MethodPut, "/policies/p", body,
		map[string]string{"If-Match": `"5"`}); rec.Code != http.StatusPreconditionFailed {
		t.Fatalf("stale If-Match PUT = %d, want 412", rec.Code)
	}
	rec := policyReq(t, h, http.MethodPut, "/policies/p", body,
		map[string]string{"If-Match": `"1"`})
	if rec.Code != http.StatusOK {
		t.Fatalf("matching If-Match PUT = %d: %s", rec.Code, rec.Body.String())
	}
	if et := rec.Header().Get("ETag"); et != `"2"` {
		t.Fatalf("replaced ETag = %q, want %q", et, `"2"`)
	}

	if rec := policyReq(t, h, http.MethodPost, "/policies/p/constraints",
		&policyRequest{Constraints: "salary >= C\n"},
		map[string]string{"If-Match": `"1"`}); rec.Code != http.StatusPreconditionFailed {
		t.Fatalf("stale If-Match append = %d, want 412", rec.Code)
	}
	if rec := policyReq(t, h, http.MethodDelete, "/policies/p", nil,
		map[string]string{"If-Match": `"1"`}); rec.Code != http.StatusPreconditionFailed {
		t.Fatalf("stale If-Match delete = %d, want 412", rec.Code)
	}
	if rec := policyReq(t, h, http.MethodPut, "/policies/p", body,
		map[string]string{"If-Match": "abc"}); rec.Code != http.StatusBadRequest {
		t.Fatalf("malformed If-Match = %d, want 400", rec.Code)
	}

	if rec := get(t, h, "/policies/nope"); rec.Code != http.StatusNotFound {
		t.Fatalf("GET unknown = %d, want 404", rec.Code)
	}
	if rec := policyReq(t, h, http.MethodDelete, "/policies/nope", nil, nil); rec.Code != http.StatusNotFound {
		t.Fatalf("DELETE unknown = %d, want 404", rec.Code)
	}
	if rec := policyReq(t, h, http.MethodPut, "/policies/bad..name/x", body, nil); rec.Code != http.StatusNotFound {
		// Two path segments under /policies only match the /constraints and
		// /solve patterns; everything else is the mux's 404.
		t.Fatalf("nested name = %d, want 404", rec.Code)
	}
	if rec := policyReq(t, h, http.MethodPut, "/policies/unsolvable",
		&policyRequest{Lattice: testPolicyLattice, Constraints: "U >= salary\nsalary >= S\n"},
		nil); rec.Code != http.StatusUnprocessableEntity {
		t.Fatalf("unsolvable PUT = %d, want 422", rec.Code)
	}
	if rec := policyReq(t, h, http.MethodPut, "/policies/q",
		&policyRequest{Lattice: testPolicyLattice, Constraints: "salary >=\n"},
		nil); rec.Code != http.StatusBadRequest {
		t.Fatalf("unparseable PUT = %d, want 400", rec.Code)
	}
	if rec := policyReq(t, h, http.MethodPut, "/policies/q",
		&policyRequest{Lattice: testPolicyLattice}, nil); rec.Code != http.StatusBadRequest {
		t.Fatalf("missing constraints PUT = %d, want 400", rec.Code)
	}
}

// TestPolicyMethodNotAllowed pins the mux's method-pattern behavior: a
// mismatched method on a policy route answers 405 with an Allow set, not
// 404.
func TestPolicyMethodNotAllowed(t *testing.T) {
	_, h, _ := newTestServer(t)
	rec := policyReq(t, h, http.MethodPost, "/policies/p", nil, nil)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST /policies/p = %d, want 405", rec.Code)
	}
	if allow := rec.Header().Get("Allow"); !strings.Contains(allow, "PUT") || !strings.Contains(allow, "DELETE") {
		t.Fatalf("Allow = %q, want PUT and DELETE listed", allow)
	}
	if rec := policyReq(t, h, http.MethodDelete, "/policies", nil, nil); rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("DELETE /policies = %d, want 405", rec.Code)
	}
}

// TestPolicyETagRace hammers one policy with concurrent compare-and-swap
// appenders: each reads the current ETag, sends it back as If-Match, and
// retries on 412. Serialization through the catalog mutex must yield a
// linear version history — every successful append bumps the version by
// exactly one and no appended line is lost.
func TestPolicyETagRace(t *testing.T) {
	_, h, _ := newTestServer(t)
	if rec := policyReq(t, h, http.MethodPut, "/policies/raced",
		&policyRequest{Lattice: testPolicyLattice, Constraints: testPolicyCons}, nil); rec.Code != http.StatusCreated {
		t.Fatalf("PUT = %d: %s", rec.Code, rec.Body.String())
	}

	const (
		goroutines = 8
		appends    = 4
	)
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < appends; i++ {
				line := fmt.Sprintf("r%02d_%02d >= C\n", g, i)
				for {
					rec := policyReq(t, h, http.MethodGet, "/policies/raced", nil, nil)
					if rec.Code != http.StatusOK {
						errs <- fmt.Errorf("GET = %d", rec.Code)
						return
					}
					rec = policyReq(t, h, http.MethodPost, "/policies/raced/constraints",
						&policyRequest{Constraints: line},
						map[string]string{"If-Match": rec.Header().Get("ETag")})
					if rec.Code == http.StatusOK {
						break
					}
					if rec.Code != http.StatusPreconditionFailed {
						errs <- fmt.Errorf("append = %d: %s", rec.Code, rec.Body.String())
						return
					}
					// 412: someone else won the version; re-read and retry.
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	rec := policyReq(t, h, http.MethodGet, "/policies/raced", nil, nil)
	var info struct {
		Version         uint64 `json:"version"`
		ConstraintsText string `json:"constraints_text"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &info); err != nil {
		t.Fatal(err)
	}
	if want := uint64(1 + goroutines*appends); info.Version != want {
		t.Fatalf("final version = %d, want %d (one bump per successful append)", info.Version, want)
	}
	for g := 0; g < goroutines; g++ {
		for i := 0; i < appends; i++ {
			line := fmt.Sprintf("r%02d_%02d >= C", g, i)
			if n := strings.Count(info.ConstraintsText, line); n != 1 {
				t.Fatalf("appended line %q appears %d times, want exactly 1 (lost or duplicated update)", line, n)
			}
		}
	}
}
