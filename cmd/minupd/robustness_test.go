package main

import (
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"minup"
)

// slowCfg returns a policy whose every solver step sleeps, so a solve
// reliably outlives the given budget while the Qian baseline (which does
// not run through the solver) stays fast.
func slowCfg(t *testing.T, stepDelay, budget time.Duration) config {
	t.Helper()
	inj, err := minup.ParseFaultSpec(fmt.Sprintf("solve.step:delay:%%1:%s", stepDelay), 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := defaultConfig()
	cfg.fault = inj
	cfg.solveTimeout = budget
	return cfg
}

func TestReadyzStates(t *testing.T) {
	srv, h, _ := newTestServer(t)

	rec := get(t, h, "/readyz")
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "ready") {
		t.Fatalf("idle /readyz = %d %q, want 200 ready", rec.Code, rec.Body.String())
	}

	srv.draining.Store(true)
	rec = get(t, h, "/readyz")
	if rec.Code != http.StatusServiceUnavailable || !strings.Contains(rec.Body.String(), "draining") {
		t.Fatalf("draining /readyz = %d %q, want 503 draining", rec.Code, rec.Body.String())
	}
	// Liveness is unaffected: a draining process is still alive.
	if rec := get(t, h, "/healthz"); rec.Code != http.StatusOK {
		t.Fatalf("draining /healthz = %d, want 200", rec.Code)
	}
	srv.draining.Store(false)

	srv.gate.queued.Add(srv.gate.softQueue)
	rec = get(t, h, "/readyz")
	if rec.Code != http.StatusServiceUnavailable || !strings.Contains(rec.Body.String(), "overloaded") {
		t.Fatalf("overloaded /readyz = %d %q, want 503 overloaded", rec.Code, rec.Body.String())
	}
	srv.gate.queued.Add(-srv.gate.softQueue)
}

func TestSolveShedWhenSaturated(t *testing.T) {
	cfg := defaultConfig()
	cfg.maxInflight = 1
	cfg.maxQueue = 0
	srv, h, _ := newTestServerCfg(t, cfg)

	// Occupy the only slot, as a long-running solve would.
	srv.gate.sem <- struct{}{}
	defer func() { <-srv.gate.sem }()

	rec := get(t, h, "/solve")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("saturated /solve = %d: %s", rec.Code, rec.Body.String())
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("shed response has no Retry-After")
	}
	if got := srv.reg.Snapshot().Counters["http.shed"]; got != 1 {
		t.Fatalf("http.shed = %d, want 1", got)
	}
	// /trace runs behind the same gate.
	if rec := get(t, h, "/trace"); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("saturated /trace = %d", rec.Code)
	}
}

func TestSolveShedWhileDraining(t *testing.T) {
	srv, h, _ := newTestServer(t)
	srv.draining.Store(true)
	rec := get(t, h, "/solve")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("draining /solve = %d: %s", rec.Code, rec.Body.String())
	}
	if !strings.Contains(rec.Body.String(), "draining") {
		t.Fatalf("draining shed body %q", rec.Body.String())
	}
}

// decodeDegraded asserts a 200 degraded response with the given reason and
// returns it after re-verifying the served assignment against the set.
func decodeDegraded(t *testing.T, srv *server, rec *httptest.ResponseRecorder, reason string) solveResponse {
	t.Helper()
	if rec.Code != http.StatusOK {
		t.Fatalf("degraded solve = %d: %s", rec.Code, rec.Body.String())
	}
	var out solveResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if !out.Degraded || out.DegradeReason != reason {
		t.Fatalf("degraded=%v reason=%q, want degraded %q: %s", out.Degraded, out.DegradeReason, reason, rec.Body.String())
	}
	// The degraded answer must still satisfy every constraint: parse the
	// served levels back and check.
	lat := srv.set.Lattice()
	m := make(minup.Assignment, len(out.Assignment))
	for _, a := range srv.set.Attrs() {
		lvl, err := lat.ParseLevel(out.Assignment[srv.set.AttrName(a)])
		if err != nil {
			t.Fatalf("served level %q: %v", out.Assignment[srv.set.AttrName(a)], err)
		}
		m[a] = lvl
	}
	if err := minup.Verify(srv.set, m); err != nil {
		t.Fatalf("degraded assignment does not verify: %v", err)
	}
	return out
}

func TestSolveDegradesOnDeadline(t *testing.T) {
	srv, h, _ := newTestServerCfg(t, slowCfg(t, 30*time.Millisecond, 10*time.Millisecond))
	rec := get(t, h, "/solve")
	out := decodeDegraded(t, srv, rec, "deadline")
	if out.UpgradedAttrs <= 0 {
		t.Fatalf("degraded response reports %d upgraded attrs", out.UpgradedAttrs)
	}
	if out.UpgradeDelta != nil {
		t.Fatalf("upgrade_delta %d before any minimal solve", *out.UpgradeDelta)
	}
	snap := srv.reg.Snapshot()
	if snap.Counters["solve.degraded"] != 1 || snap.Counters["solve.degraded.deadline"] != 1 {
		t.Fatalf("degraded counters %v", snap.Counters)
	}
}

func TestSolveDegradesOnOverload(t *testing.T) {
	srv, h, _ := newTestServer(t)
	srv.gate.queued.Add(srv.gate.softQueue)
	defer srv.gate.queued.Add(-srv.gate.softQueue)
	rec := get(t, h, "/solve")
	decodeDegraded(t, srv, rec, "overload")
	if got := srv.reg.Snapshot().Counters["solve.degraded.overload"]; got != 1 {
		t.Fatalf("solve.degraded.overload = %d, want 1", got)
	}
}

func TestUpgradeDeltaAgainstLastMinimalSolve(t *testing.T) {
	// A minimal solve first, then a forced-degraded one: the degraded
	// response must report its over-classification cost as a delta.
	srv, h, _ := newTestServer(t)
	if rec := get(t, h, "/solve"); rec.Code != http.StatusOK {
		t.Fatalf("minimal solve = %d", rec.Code)
	}
	if last := srv.lastMinimalUpgraded.Load(); last < 0 {
		t.Fatalf("lastMinimalUpgraded = %d after a successful solve", last)
	}
	srv.gate.queued.Add(srv.gate.softQueue)
	defer srv.gate.queued.Add(-srv.gate.softQueue)
	out := decodeDegraded(t, srv, get(t, h, "/solve"), "overload")
	if out.UpgradeDelta == nil {
		t.Fatal("no upgrade_delta after a prior minimal solve")
	}
	if *out.UpgradeDelta < 0 {
		t.Fatalf("upgrade_delta = %d; Qian can never upgrade fewer attrs than minimal", *out.UpgradeDelta)
	}
}

func TestSolveTimeoutQueryClamped(t *testing.T) {
	// ?timeout_ms may shrink the budget but never grow it past the flag.
	srv, _, _ := newTestServerCfg(t, slowCfg(t, time.Millisecond, 50*time.Millisecond))
	req := httptest.NewRequest(http.MethodGet, "/solve?timeout_ms=999999", nil)
	if got := srv.solveBudget(req); got != 50*time.Millisecond {
		t.Fatalf("budget = %s, want clamp to 50ms", got)
	}
	req = httptest.NewRequest(http.MethodGet, "/solve?timeout_ms=0", nil)
	if got := srv.solveBudget(req); got != time.Millisecond {
		t.Fatalf("budget = %s, want floor 1ms", got)
	}
	req = httptest.NewRequest(http.MethodGet, "/solve?timeout_ms=7", nil)
	if got := srv.solveBudget(req); got != 7*time.Millisecond {
		t.Fatalf("budget = %s, want 7ms", got)
	}
}

func TestDeadlineWithoutDegradeIs504(t *testing.T) {
	cfg := slowCfg(t, 30*time.Millisecond, 10*time.Millisecond)
	cfg.degrade = false
	_, h, _ := newTestServerCfg(t, cfg)
	rec := get(t, h, "/solve")
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("deadline with -degrade=false = %d: %s", rec.Code, rec.Body.String())
	}
}

func TestSolverPanicAnswers500(t *testing.T) {
	// A fault-injected solver panic must surface as an opaque 500 (the
	// recovery guard in core converts it to a typed internal error), never
	// crash the server, and leave the next solve working.
	inj, err := minup.ParseFaultSpec("solve.step:panic:1", 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := defaultConfig()
	cfg.fault = inj
	_, h, _ := newTestServerCfg(t, cfg)
	rec := get(t, h, "/solve")
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("panicking solve = %d: %s", rec.Code, rec.Body.String())
	}
	if strings.Contains(rec.Body.String(), "goroutine") {
		t.Fatal("500 body leaks a stack trace")
	}
	// The panic fired its once-only rule; the next solve must be clean.
	rec = get(t, h, "/solve")
	if rec.Code != http.StatusOK {
		t.Fatalf("solve after panic = %d: %s", rec.Code, rec.Body.String())
	}
	if got := minup.PanicsRecovered(); got < 1 {
		t.Fatalf("PanicsRecovered = %d, want >= 1", got)
	}
}

func TestMiddlewarePanicRecovery(t *testing.T) {
	reg := minup.NewMetricsRegistry()
	logBuf := &strings.Builder{}
	logger := slog.New(slog.NewJSONHandler(logBuf, nil))
	h := instrument("boom", httpObs{reg: reg, logger: logger}, func(http.ResponseWriter, *http.Request) {
		panic("handler exploded")
	})
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/boom", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("panicking handler = %d", rec.Code)
	}
	snap := reg.Snapshot()
	if snap.Counters["http.panics"] != 1 {
		t.Fatalf("http.panics = %d, want 1", snap.Counters["http.panics"])
	}
	if snap.Counters["http.boom.status.5xx"] != 1 {
		t.Fatalf("5xx counter = %d, want 1 (bookkeeping must survive the panic)", snap.Counters["http.boom.status.5xx"])
	}
	if snap.Gauges["http.in_flight"] != 0 {
		t.Fatalf("in_flight = %d after panic", snap.Gauges["http.in_flight"])
	}
	log := logBuf.String()
	if !strings.Contains(log, "handler panic") || !strings.Contains(log, "handler exploded") {
		t.Fatalf("panic not logged:\n%s", log)
	}
}

// TestGracefulShutdownDrainsInFlight is the end-to-end drain scenario over
// a real listener: an in-flight slow /solve must complete while the
// draining server refuses new work and reports not-ready.
func TestGracefulShutdownDrainsInFlight(t *testing.T) {
	srv, h, _ := newTestServerCfg(t, slowCfg(t, 20*time.Millisecond, 2*time.Second))
	ts := httptest.NewServer(h)
	defer ts.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	inflight := make(chan int, 1)
	go func() {
		defer wg.Done()
		resp, err := http.Get(ts.URL + "/solve")
		if err != nil {
			t.Errorf("in-flight solve: %v", err)
			inflight <- 0
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		inflight <- resp.StatusCode
	}()

	// Give the slow solve time to pass admission and enter the solver,
	// then start draining, as the SIGTERM handler does.
	time.Sleep(30 * time.Millisecond)
	srv.draining.Store(true)

	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining /readyz = %d, want 503", resp.StatusCode)
	}

	resp, err = http.Get(ts.URL + "/solve")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("new /solve while draining = %d, want 503", resp.StatusCode)
	}

	wg.Wait()
	if code := <-inflight; code != http.StatusOK {
		t.Fatalf("in-flight solve finished %d, want 200 (drain must not kill it)", code)
	}
}
