// Command minupd serves minimal-classification solves of one compiled
// constraint set over HTTP, with a separate debug listener exposing the
// solver's cumulative telemetry — the ROADMAP's production-shape deployment
// of the compile-once / solve-many split.
//
// Usage:
//
//	minupd -lattice lat.txt -constraints cons.txt \
//	       [-addr :8080] [-debug-addr 127.0.0.1:6060]
//
// The service listener answers (GET only; other methods get 405):
//
//	GET /solve            solve the compiled instance; JSON assignment +
//	                      per-solve stats (add ?lattice_ops=1 to count
//	                      lattice operations, ?trace=1 to run the solve
//	                      under a tracer and report its trace ID)
//	GET /metrics          the metrics registry snapshot as JSON; add
//	                      ?format=prometheus for text exposition format
//	GET /trace            run one fully instrumented solve and return its
//	                      span tree (?format=json|chrome|flame)
//	GET /healthz          liveness check
//
// Every route runs behind a middleware stack: per-route latency histograms
// ("http.<route>.duration_us"), status-class counters, an in-flight gauge,
// request IDs (X-Request-Id echoed or generated), and one slog JSON access
// log line per request carrying the request ID and — for instrumented
// solves — the trace ID. Every solve records into a shared metrics registry
// under the "solve.*" names. The debug listener serves the standard runtime
// surface: /debug/vars (expvar, including the registry published as
// "minup") and /debug/pprof/* for CPU and heap profiles — see the
// "profiling a solve" recipe in EXPERIMENTS.md. Bind it to localhost (the
// default) in production-like settings.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux
	"os"
	"os/signal"
	"syscall"
	"time"

	"minup"
)

func main() {
	latticePath := flag.String("lattice", "", "path to the lattice description file")
	consPath := flag.String("constraints", "", "path to the constraint file")
	addr := flag.String("addr", ":8080", "service listen address")
	debugAddr := flag.String("debug-addr", "127.0.0.1:6060", "debug listen address for /debug/vars and /debug/pprof (empty to disable)")
	flag.Parse()
	if *latticePath == "" || *consPath == "" {
		flag.Usage()
		os.Exit(2)
	}

	lf, err := os.Open(*latticePath)
	if err != nil {
		fatal(err)
	}
	lat, err := minup.ParseLattice(lf)
	lf.Close()
	if err != nil {
		fatal(err)
	}
	set := minup.NewConstraintSet(lat)
	cf, err := os.Open(*consPath)
	if err != nil {
		fatal(err)
	}
	err = set.ParseInto(cf)
	cf.Close()
	if err != nil {
		fatal(err)
	}

	compiled := minup.Compile(set)
	if err := minup.CheckSolvable(set); err != nil {
		fatal(fmt.Errorf("instance is unsolvable: %w", err))
	}
	reg := minup.NewMetricsRegistry()
	reg.Publish("minup")
	logger := slog.New(slog.NewJSONHandler(os.Stderr, nil))

	srv := &server{set: set, compiled: compiled, reg: reg}
	mux := http.NewServeMux()
	mux.Handle("/solve", instrument("solve", reg, logger, srv.handleSolve))
	mux.Handle("/metrics", instrument("metrics", reg, logger, srv.handleMetrics))
	mux.Handle("/trace", instrument("trace", reg, logger, srv.handleTrace))
	mux.Handle("/healthz", instrument("healthz", reg, logger, func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	}))

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *debugAddr != "" {
		// expvar and net/http/pprof register on the default mux; serving it
		// on a dedicated listener keeps the runtime surface off the service
		// port.
		go func() {
			dbg := &http.Server{Addr: *debugAddr, Handler: http.DefaultServeMux}
			fmt.Fprintf(os.Stderr, "minupd: debug listener on %s (/debug/vars, /debug/pprof)\n", *debugAddr)
			if err := dbg.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				fmt.Fprintf(os.Stderr, "minupd: debug listener: %v\n", err)
			}
		}()
	}

	main := &http.Server{Addr: *addr, Handler: mux}
	go func() {
		<-ctx.Done()
		shCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		main.Shutdown(shCtx)
	}()
	cs := compiled.CompileStats()
	fmt.Fprintf(os.Stderr, "minupd: serving %d attrs, %d constraints (S=%d, %d SCCs, compiled in %s) on %s\n",
		cs.Attrs, cs.Constraints, cs.TotalSize, cs.SCCs, cs.Duration, *addr)
	if err := main.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal(err)
	}
}

type server struct {
	set      *minup.ConstraintSet
	compiled *minup.CompiledSet
	reg      *minup.MetricsRegistry
}

// solveResponse is the JSON answer of /solve.
type solveResponse struct {
	Assignment map[string]string `json:"assignment"`
	Stats      solveStats        `json:"stats"`
	TraceID    string            `json:"trace_id,omitempty"`
}

type solveStats struct {
	Tries          int    `json:"tries"`
	FailedTries    int    `json:"failed_tries"`
	Collapses      int    `json:"collapses"`
	AttrsProcessed int    `json:"attrs_processed"`
	MinlevelCalls  int    `json:"minlevel_calls"`
	TrySteps       int    `json:"try_steps"`
	DescentSteps   int    `json:"descent_steps"`
	LatticeLub     uint64 `json:"lattice_lub,omitempty"`
	LatticeGlb     uint64 `json:"lattice_glb,omitempty"`
	LatticeDom     uint64 `json:"lattice_dominates,omitempty"`
	LatticeCovers  uint64 `json:"lattice_covers,omitempty"`
	PoolHit        bool   `json:"pool_hit"`
	DurationUS     int64  `json:"duration_us"`
}

func (s *server) handleSolve(w http.ResponseWriter, r *http.Request) {
	opt := minup.Options{
		Metrics:           s.reg,
		CollectLatticeOps: r.URL.Query().Get("lattice_ops") == "1",
	}
	ctx := r.Context()
	var root *minup.Span
	var traceID string
	if r.URL.Query().Get("trace") == "1" {
		tr := minup.NewTracer()
		root = tr.Start("request")
		traceID = tr.TraceID()
		ctx = minup.ContextWithSpan(ctx, root)
		if ri := infoFrom(r.Context()); ri != nil {
			ri.traceID = traceID
		}
	}
	res, err := minup.SolveContext(ctx, s.compiled, opt)
	if root != nil {
		root.End()
	}
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, minup.ErrCanceled) {
			status = http.StatusRequestTimeout
		} else if errors.Is(err, minup.ErrUnsolvable) {
			status = http.StatusUnprocessableEntity
		}
		http.Error(w, err.Error(), status)
		return
	}
	lat := s.set.Lattice()
	out := solveResponse{
		Assignment: make(map[string]string, len(res.Assignment)),
		TraceID:    traceID,
	}
	for _, a := range s.set.Attrs() {
		out.Assignment[s.set.AttrName(a)] = lat.FormatLevel(res.Assignment[a])
	}
	st := res.Stats
	out.Stats = solveStats{
		Tries:          st.Tries,
		FailedTries:    st.FailedTries,
		Collapses:      st.Collapses,
		AttrsProcessed: st.AttrsProcessed,
		MinlevelCalls:  st.MinlevelCalls,
		TrySteps:       st.TrySteps,
		DescentSteps:   st.DescentSteps,
		LatticeLub:     st.LatticeOps.Lub,
		LatticeGlb:     st.LatticeOps.Glb,
		LatticeDom:     st.LatticeOps.Dominates,
		LatticeCovers:  st.LatticeOps.Covers,
		PoolHit:        st.PoolHit,
		DurationUS:     st.Duration.Microseconds(),
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(out)
}

func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	// The pool gauge is sampled at scrape time: sessions are created on
	// demand, so this tracks peak solve concurrency.
	s.reg.Gauge("solve.pool.sessions").Set(minup.SessionsAllocated())
	if r.URL.Query().Get("format") == "prometheus" {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		s.reg.WritePrometheus(w)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	s.reg.WriteJSON(w)
}

// traceResponse is the JSON answer of /trace: one fully instrumented solve
// and its reconstructed span tree.
type traceResponse struct {
	TraceID string         `json:"trace_id"`
	Spans   minup.SpanNode `json:"spans"`
}

func (s *server) handleTrace(w http.ResponseWriter, r *http.Request) {
	tr := minup.NewTracer()
	root := tr.Start("request")
	if ri := infoFrom(r.Context()); ri != nil {
		ri.traceID = tr.TraceID()
	}
	ctx := minup.ContextWithSpan(r.Context(), root)
	_, err := minup.SolveContext(ctx, s.compiled, minup.Options{Metrics: s.reg})
	root.End()
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, minup.ErrCanceled) {
			status = http.StatusRequestTimeout
		} else if errors.Is(err, minup.ErrUnsolvable) {
			status = http.StatusUnprocessableEntity
		}
		http.Error(w, err.Error(), status)
		return
	}
	switch r.URL.Query().Get("format") {
	case "chrome":
		w.Header().Set("Content-Type", "application/json")
		minup.WriteChromeTrace(w, root)
	case "flame":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		minup.WriteFlameSummary(w, root)
	default:
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(traceResponse{TraceID: tr.TraceID(), Spans: root.Node(root.StartTime())})
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "minupd:", err)
	os.Exit(1)
}
