// Command minupd serves minimal-classification solves of one compiled
// constraint set over HTTP, with a separate debug listener exposing the
// solver's cumulative telemetry — the ROADMAP's production-shape deployment
// of the compile-once / solve-many split.
//
// Usage:
//
//	minupd [-lattice lat.txt -constraints cons.txt] \
//	       [-data-dir dir] [-fsync always|never] [-shards n] \
//	       [-addr :8080] [-debug-addr 127.0.0.1:6060] \
//	       [-max-inflight 64] [-max-queue 128] [-queue-wait 100ms] \
//	       [-solve-timeout 2s] [-degrade] [-fault spec] [-fault-seed n] \
//	       [-flight-size 256] [-flight-dump-dir auto] [-flight-dump-cap n] \
//	       [-flight-slow 1s] [-slo spec] [-slo-interval 10s]
//
// -lattice/-constraints configure the optional static instance behind
// /solve and /trace; without them minupd is a pure policy-catalog server
// and those routes answer 404.
//
// # Policy catalog
//
// Besides the static instance, minupd manages a catalog of named,
// versioned policies (lattice + constraint set each), hashed across
// -shards independent shards (default GOMAXPROCS). The catalog is durable
// when -data-dir is set: every mutation is written to that shard's
// write-ahead log before it is applied (fsync per -fsync), each log is
// periodically compacted into an atomic snapshot, shards recover
// concurrently on startup, and a restart reproduces the catalog exactly —
// a torn final WAL frame is truncated, losing at most the interrupted
// mutation. The directory remembers its shard count, so a later -shards
// value never rehashes existing policies.
//
// Mutations return once durable; compiling and solving the new version
// happens on per-shard background workers unless the request carries
// ?wait=1 to run the refresh inline (appends then report the incremental
// repair, and PUT responses show a warm cache).
//
//	GET    /policies                    index: name, version, etag, shard,
//	                                    and cache state per policy
//	PUT    /policies/{name}             create/replace from JSON
//	                                    {"lattice": ..., "constraints": ...}
//	                                    (?wait=1 warms the cache inline)
//	GET    /policies/{name}             describe one policy (incl. texts)
//	DELETE /policies/{name}             remove it
//	POST   /policies/{name}/constraints append constraint text
//	                                    ({"constraints": ...}); with ?wait=1
//	                                    and a warm solve cache this runs the
//	                                    incremental repair inline, otherwise
//	                                    it answers refresh_pending and the
//	                                    shard worker repairs in background
//	GET    /policies/{name}/solve       minimal classification, memoized:
//	                                    an unchanged policy is served with
//	                                    zero compiles and zero solves
//	                                    (POST works too)
//
// Source problems from the registered problem frontends enter through the
// /problems routes: the instance JSON is parsed and compiled to policy
// source texts, then stored with an ordinary catalog Put — sharding,
// replication, memoized solves, flight records, and SLO gates apply to
// compiled problems unchanged, and the result is served by the /policies
// routes under the instance's name (override with ?name=):
//
//	GET    /problems                    list the problem families
//	POST   /problems/{family}           parse + compile + store an instance
//	                                    (suppress cross-tab table, depinf
//	                                    relation; ?wait=1 and conditional
//	                                    headers as on policy PUT)
//
// Responses carry the policy version as a strong ETag; If-Match gives
// compare-and-swap writes (412 on a lost race) and If-None-Match: *
// create-only PUTs (409 if the name exists).
//
// The service listener answers on the static routes (GET only; other
// methods get 405):
//
//	GET /solve            solve the compiled instance; JSON assignment +
//	                      per-solve stats (add ?lattice_ops=1 to count
//	                      lattice operations, ?trace=1 to run the solve
//	                      under a tracer and report its trace ID, and
//	                      ?timeout_ms=N to tighten the solve deadline —
//	                      clamped to [1ms, -solve-timeout])
//	GET /metrics          the metrics registry snapshot as JSON; add
//	                      ?format=prometheus for text exposition format
//	GET /trace            run one fully instrumented solve and return its
//	                      span tree (?format=json|chrome|flame)
//	GET /healthz          liveness check (process is up)
//	GET /readyz           readiness check: 503 while draining after
//	                      SIGTERM/SIGINT or while the admission queue is
//	                      past its soft overload threshold
//
// # Overload behavior
//
// /solve and /trace run behind a bounded-concurrency admission gate: at
// most -max-inflight requests solve at once, up to -max-queue more wait up
// to -queue-wait for a slot, and everything beyond that is shed with 503 +
// Retry-After (counted as http.shed). Every admitted solve runs under a
// deadline (-solve-timeout, tightened per request with ?timeout_ms=).
//
// When a minimal solve cannot be served — its deadline expired, or the
// gate is already past its soft overload threshold at admission — the
// server degrades instead of failing: it answers with the Qian-baseline
// least fixpoint (§4 of the paper), which satisfies every secrecy,
// inference, and association constraint by construction and merely
// over-classifies. Degraded responses carry "degraded": true, the reason,
// and the over-classification cost (upgraded-attribute delta vs. the last
// minimal solve); each is counted under solve.degraded. Disable with
// -degrade=false to get plain 504/503 errors instead.
//
// Solver panics never kill the process: the solver converts them to typed
// internal errors (returned as 500, counted as solve.panics), and a
// recovery middleware backstops the handlers themselves (http.panics).
//
// The -fault flag (chaos testing only; see internal/fault) arms a
// deterministic fault injector at the solver's named fault points, e.g.
// -fault 'solve.step:delay:%1:5ms' to slow every solver step.
//
// Every route runs behind a middleware stack: per-route latency histograms
// ("http.<route>.duration_us"), status-class counters, an in-flight gauge,
// request IDs (X-Request-Id echoed or generated), panic recovery, and one
// slog JSON access log line per request carrying the request ID, the
// shed/degraded disposition, and the queue wait (plus the trace ID for
// instrumented solves). Every solve records into a shared metrics registry
// under the "solve.*" names.
//
// # Flight recorder and SLOs
//
// An always-on flight recorder (DESIGN.md §8) keeps one compact record per
// request and per async catalog refresh in a bounded ring (-flight-size).
// Anomalous work — panicked, degraded, errored, or slower than -flight-slow
// — additionally dumps its captured solver event stream and span tree as a
// Perfetto-loadable JSON file under -flight-dump-dir ("auto" resolves to
// <data-dir>/anomalies or artifacts/anomalies; empty disables), rotated to
// stay under -flight-dump-cap bytes. A graceful shutdown writes a final
// recorder snapshot there too.
//
// The -slo flag ("route:p99=250ms,avail=99.9;...") arms per-route
// objectives; a background collector (every -slo-interval) publishes
// 5-minute and 1-hour burn-rate gauges ("slo.<route>.*_milli") plus runtime
// samples (goroutines, heap, GC pause, WAL fsync p99) into the registry,
// and /metrics republishes the burn gauges on every scrape. Degraded
// responses count against availability: the client got a safe answer, not
// the minimal one it asked for.
//
// The debug listener serves the live introspection view /debug/requests
// (active flights, SLO burn rates, per-route latency, recent anomalies
// with their dump files; HTML or ?format=json) alongside the standard
// runtime surface: /debug/vars (expvar, including the registry published
// as "minup") and /debug/pprof/* for CPU and heap profiles — see the
// "profiling a solve" recipe in EXPERIMENTS.md. Bind it to localhost (the
// default) in production-like settings. On SIGTERM the server flips
// /readyz to not-ready, then drains both listeners: in-flight requests
// complete, new ones are refused.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	rtdebug "runtime/debug"
	"strconv"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"minup"
)

// config carries the serving-policy knobs from flags to newServer, so
// tests construct servers with the same wiring main uses.
type config struct {
	maxInflight  int
	maxQueue     int
	queueWait    time.Duration
	solveTimeout time.Duration
	degrade      bool
	fault        *minup.FaultInjector
	// flight and slo are the always-on observability layer: the flight
	// recorder behind /debug/requests and the per-route burn-rate tracker.
	// Either may be nil (single-handler unit tests), which just disables
	// that layer.
	flight *minup.FlightRecorder
	slo    *minup.SLOTracker
	// cluster is the replication wiring (-cluster-* flags): nil node when
	// minupd runs standalone.
	cluster clusterConfig
}

// defaultSLOSpec is the -slo default: both solve-serving routes get a p99
// latency target and three nines of availability.
const defaultSLOSpec = "solve:p99=250ms,avail=99.9;policy.solve:p99=250ms,avail=99.9"

func defaultConfig() config {
	slo, err := minup.ParseSLOSpecs(defaultSLOSpec)
	if err != nil {
		panic("minupd: default SLO spec does not parse: " + err.Error())
	}
	tracker := minup.NewSLOTracker(slo...)
	return config{
		maxInflight:  64,
		maxQueue:     128,
		queueWait:    100 * time.Millisecond,
		solveTimeout: 2 * time.Second,
		degrade:      true,
		slo:          tracker,
		flight:       minup.NewFlightRecorder(minup.FlightOptions{SLO: tracker}),
		cluster:      clusterConfig{maxReplicaLag: 1024},
	}
}

func main() {
	latticePath := flag.String("lattice", "", "path to the lattice description file for the static /solve instance (optional)")
	consPath := flag.String("constraints", "", "path to the constraint file for the static /solve instance (optional)")
	dataDir := flag.String("data-dir", "", "policy-catalog data directory; empty keeps the catalog in memory only")
	fsyncPolicy := flag.String("fsync", "always", "catalog WAL fsync policy: always|never")
	shards := flag.Int("shards", 0, "policy-catalog shard count (0 = GOMAXPROCS); an existing data directory's count always wins")
	addr := flag.String("addr", ":8080", "service listen address")
	debugAddr := flag.String("debug-addr", "127.0.0.1:6060", "debug listen address for /debug/vars and /debug/pprof (empty to disable)")
	def := defaultConfig()
	maxInflight := flag.Int("max-inflight", def.maxInflight, "max concurrent /solve and /trace requests before queueing")
	maxQueue := flag.Int("max-queue", def.maxQueue, "max requests waiting for a solve slot; beyond this, shed with 503")
	queueWait := flag.Duration("queue-wait", def.queueWait, "max time a queued request waits for a slot before being shed")
	solveTimeout := flag.Duration("solve-timeout", def.solveTimeout, "per-request solve budget (ceiling for ?timeout_ms=)")
	degrade := flag.Bool("degrade", def.degrade, "serve the Qian-baseline assignment when a minimal solve misses its deadline or the server is overloaded")
	faultSpec := flag.String("fault", "", "chaos-testing fault spec, e.g. 'solve.step:delay:%1:5ms;pool.get:panic:3' (see internal/fault)")
	faultSeed := flag.Int64("fault-seed", 1, "seed for probabilistic fault rules")
	faultAdmin := flag.Bool("fault-admin", false, "expose POST/GET /debug/fault on the debug listener to rearm the injector at runtime (chaos testing; implies an installed, initially unarmed injector)")
	flightSize := flag.Int("flight-size", 256, "flight-recorder ring capacity (records kept for /debug/requests)")
	flightDumpDir := flag.String("flight-dump-dir", "auto", "anomaly dump directory; 'auto' puts it under -data-dir (or artifacts/), empty disables dumps")
	flightDumpCap := flag.Int64("flight-dump-cap", 32<<20, "max total bytes of anomaly dumps before the oldest are pruned")
	flightSlow := flag.Duration("flight-slow", time.Second, "duration past which a request is dumped as a slow anomaly (0 disables the slow trigger)")
	sloSpec := flag.String("slo", defaultSLOSpec, "per-route SLOs, 'route:p99=<dur>,avail=<pct>;...' (empty disables SLO tracking)")
	sloInterval := flag.Duration("slo-interval", 10*time.Second, "runtime-collector sampling interval (burn rates, goroutines, heap, GC, WAL fsync p99)")
	var cf clusterFlags
	flag.IntVar(&cf.nodeID, "cluster-node", 0, "this node's id within -cluster-peers (cluster mode)")
	flag.StringVar(&cf.listen, "cluster-listen", "", "replication listen address; empty uses this node's -cluster-peers entry")
	flag.StringVar(&cf.peers, "cluster-peers", "", "full cluster membership as 'id=host:port,...' including this node (enables cluster mode)")
	flag.StringVar(&cf.httpAddr, "cluster-http", "", "this node's advertised HTTP base URL for write redirects, e.g. http://127.0.0.1:8080")
	flag.DurationVar(&cf.tick, "cluster-tick", 50*time.Millisecond, "replication heartbeat cadence")
	flag.DurationVar(&cf.lease, "cluster-lease", 0, "leader lease (0 = 8 ticks)")
	maxReplicaLag := flag.Int64("max-replica-lag", 1024, "frames a follower may trail the leader before /readyz answers 503 (negative disables the check)")
	flag.Parse()
	if (*latticePath == "") != (*consPath == "") {
		fmt.Fprintln(os.Stderr, "minupd: -lattice and -constraints must be given together")
		flag.Usage()
		os.Exit(2)
	}

	// The static instance behind /solve and /trace is optional; without it
	// minupd is a pure policy-catalog server.
	var set *minup.ConstraintSet
	var compiled *minup.CompiledSet
	if *latticePath != "" {
		lf, err := os.Open(*latticePath)
		if err != nil {
			fatal(err)
		}
		lat, err := minup.ParseLattice(lf)
		lf.Close()
		if err != nil {
			fatal(err)
		}
		set = minup.NewConstraintSet(lat)
		cf, err := os.Open(*consPath)
		if err != nil {
			fatal(err)
		}
		err = set.ParseInto(cf)
		cf.Close()
		if err != nil {
			fatal(err)
		}
		compiled = minup.Compile(set)
		if err := minup.CheckSolvable(set); err != nil {
			fatal(fmt.Errorf("instance is unsolvable: %w", err))
		}
	}
	cfg := config{
		maxInflight:  *maxInflight,
		maxQueue:     *maxQueue,
		queueWait:    *queueWait,
		solveTimeout: *solveTimeout,
		degrade:      *degrade,
	}
	if *faultSpec != "" {
		var err error
		cfg.fault, err = minup.ParseFaultSpec(*faultSpec, *faultSeed)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "minupd: CHAOS fault injection armed: %s\n", *faultSpec)
	} else if *faultAdmin {
		// An installed-but-unarmed injector costs one atomic load per fault
		// point, so -fault-admin can keep it resident for later rearming.
		cfg.fault = minup.NewFaultInjector(*faultSeed)
	}
	if *faultAdmin {
		http.Handle("/debug/fault", faultAdminHandler(cfg.fault))
		fmt.Fprintf(os.Stderr, "minupd: CHAOS fault admin enabled on the debug listener (/debug/fault)\n")
	}
	if *sloSpec != "" {
		specs, err := minup.ParseSLOSpecs(*sloSpec)
		if err != nil {
			fatal(err)
		}
		cfg.slo = minup.NewSLOTracker(specs...)
	}
	dumpDir := *flightDumpDir
	if dumpDir == "auto" {
		if *dataDir != "" {
			dumpDir = filepath.Join(*dataDir, "anomalies")
		} else {
			dumpDir = filepath.Join("artifacts", "anomalies")
		}
	}
	cfg.flight = minup.NewFlightRecorder(minup.FlightOptions{
		Size:          *flightSize,
		DumpDir:       dumpDir,
		DumpCapBytes:  *flightDumpCap,
		SlowThreshold: *flightSlow,
		SLO:           cfg.slo,
	})
	reg := minup.NewMetricsRegistry()
	reg.Publish("minup")
	logger := slog.New(slog.NewJSONHandler(os.Stderr, nil))
	// /debug/requests lives on the loopback debug listener next to
	// /debug/vars and /debug/pprof: live + recent requests, per-route
	// latency, anomalies with their dump files, SLO burn rates.
	http.Handle("/debug/requests", cfg.flight)
	collector := minup.NewRuntimeCollector(reg, cfg.slo, *sloInterval)
	collector.Start()

	var walSync minup.WALSyncPolicy
	switch *fsyncPolicy {
	case "always":
		walSync = minup.WALSyncAlways
	case "never":
		walSync = minup.WALSyncNever
	default:
		fatal(fmt.Errorf("unknown -fsync policy %q (want always or never)", *fsyncPolicy))
	}
	catOpts := minup.CatalogOptions{
		Dir:     *dataDir,
		Sync:    walSync,
		Metrics: reg,
		Fault:   cfg.fault,
		Shards:  *shards,
		Flight:  cfg.flight,
		Logger:  logger,
	}
	// Cluster mode: the record ring must observe every durable append, so
	// it is wired in before the catalog opens.
	var ring *minup.ClusterRecordLog
	if cf.enabled() {
		ring = minup.NewClusterRecordLog(0)
		catOpts.OnRecord = ring.Append
	}
	cat, err := minup.OpenCatalog(catOpts)
	if err != nil {
		fatal(err)
	}
	if cf.enabled() {
		node, err := openCluster(cat, ring, cf, clusterDeps{dir: *dataDir, reg: reg, logger: logger, fault: cfg.fault})
		if err != nil {
			fatal(err)
		}
		cfg.cluster.node = node
		cfg.cluster.maxReplicaLag = *maxReplicaLag
		fmt.Fprintf(os.Stderr, "minupd: cluster node %d replicating on %s (peers %s, advertised %s)\n",
			cf.nodeID, node.Addr(), cf.peers, cf.httpAddr)
	} else {
		cfg.cluster.maxReplicaLag = *maxReplicaLag
	}
	if *dataDir != "" {
		ri := cat.RecoveryInfo()
		fmt.Fprintf(os.Stderr, "minupd: catalog recovered from %s: %d policies over %d shards (snapshot %d, WAL records %d, torn tail %v) in %s\n",
			*dataDir, cat.Len(), ri.Shards, ri.SnapshotPolicies, ri.WALRecords, ri.TornTail, ri.Duration)
	}

	// build_info is the constant-1 info gauge joins dashboards key on:
	// which build, which Go, how many catalog shards, started when.
	reg.Info("build_info", map[string]string{
		"version":    buildVersion(),
		"go_version": runtime.Version(),
		"shards":     strconv.Itoa(cat.RecoveryInfo().Shards),
		"start_time": time.Now().UTC().Format(time.RFC3339),
	})

	srv := newServer(set, compiled, cat, reg, cfg)
	mux := srv.routes(logger)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Both listeners get protocol-level timeouts so a stalled or malicious
	// peer cannot hold a connection goroutine forever. The debug listener's
	// write timeout is generous because /debug/pprof/profile streams for
	// ?seconds= (default 30).
	var dbg *http.Server
	if *debugAddr != "" {
		// expvar and net/http/pprof register on the default mux; serving it
		// on a dedicated listener keeps the runtime surface off the service
		// port.
		dbg = &http.Server{
			Addr:              *debugAddr,
			Handler:           http.DefaultServeMux,
			ReadHeaderTimeout: 5 * time.Second,
			ReadTimeout:       10 * time.Second,
			WriteTimeout:      2 * time.Minute,
			IdleTimeout:       2 * time.Minute,
		}
		go func() {
			fmt.Fprintf(os.Stderr, "minupd: debug listener on %s (/debug/vars, /debug/pprof)\n", *debugAddr)
			if err := dbg.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				fmt.Fprintf(os.Stderr, "minupd: debug listener: %v\n", err)
			}
		}()
	}

	main := &http.Server{
		Addr:              *addr,
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       10 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	// shutdownDone closes once the drain goroutine has finished draining
	// both listeners. main() must block on it after ListenAndServe returns:
	// Shutdown closes the listeners first, so ListenAndServe comes back with
	// ErrServerClosed while in-flight requests are still completing.
	shutdownDone := make(chan struct{})
	go func() {
		<-ctx.Done()
		// Flip readiness first: load balancers stop routing here while
		// in-flight solves finish, then both listeners drain on one clock.
		srv.draining.Store(true)
		logger.Info("draining", slog.String("reason", "signal"))
		shCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		// Drain concurrently: a long-running debug request (pprof profiles
		// stream for up to ?seconds=) must not consume the service
		// listener's share of the drain budget.
		var wg sync.WaitGroup
		if dbg != nil {
			wg.Add(1)
			go func() {
				defer wg.Done()
				dbg.Shutdown(shCtx)
			}()
		}
		main.Shutdown(shCtx)
		wg.Wait()
		close(shutdownDone)
	}()
	if compiled != nil {
		cs := compiled.CompileStats()
		fmt.Fprintf(os.Stderr, "minupd: serving %d attrs, %d constraints (S=%d, %d SCCs, compiled in %s) on %s (max-inflight=%d queue=%d solve-timeout=%s degrade=%v)\n",
			cs.Attrs, cs.Constraints, cs.TotalSize, cs.SCCs, cs.Duration, *addr,
			cfg.maxInflight, cfg.maxQueue, cfg.solveTimeout, cfg.degrade)
	} else {
		fmt.Fprintf(os.Stderr, "minupd: serving the policy catalog (no static instance) on %s (max-inflight=%d queue=%d solve-timeout=%s)\n",
			*addr, cfg.maxInflight, cfg.maxQueue, cfg.solveTimeout)
	}
	err = main.ListenAndServe()
	if err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal(err)
	}
	if errors.Is(err, http.ErrServerClosed) {
		// Only the drain goroutine calls Shutdown, so ErrServerClosed means
		// it is running; wait for in-flight requests to finish before exit.
		<-shutdownDone
	}
	// The cluster node goes first: its peer and server loops read the
	// catalog, so they must stop before the catalog releases its stores.
	if cfg.cluster.node != nil {
		if err := cfg.cluster.node.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "minupd: closing cluster node: %v\n", err)
		}
	}
	// Every catalog mutation is WAL-first, so nothing durable is left to
	// flush; Close still drains the shard workers' queued refreshes before
	// releasing the stores, so no background goroutine outlives the server.
	if err := cat.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "minupd: closing catalog: %v\n", err)
	}
	collector.Stop()
	// Preserve the last moments before the shutdown on disk: the final dump
	// carries the recent ring, the anomaly ring, and per-route latency.
	if name, err := cfg.flight.FinalDump("shutdown"); err != nil {
		fmt.Fprintf(os.Stderr, "minupd: final flight dump: %v\n", err)
	} else if name != "" {
		fmt.Fprintf(os.Stderr, "minupd: final flight dump written: %s\n", filepath.Join(dumpDir, name))
	}
}

type server struct {
	// set and compiled are the optional static instance behind /solve and
	// /trace; both nil when minupd runs as a pure policy-catalog server.
	set      *minup.ConstraintSet
	compiled *minup.CompiledSet
	cat      *minup.PolicyCatalog
	reg      *minup.MetricsRegistry
	cfg      config
	gate     *gate
	draining atomic.Bool
	// lastMinimalUpgraded is CountUpgraded of the most recent successful
	// minimal solve, or -1 before the first; degraded responses report the
	// baseline's over-classification cost as a delta against it.
	lastMinimalUpgraded atomic.Int64
	// start anchors the process.uptime_seconds gauge.
	start time.Time
}

// newServer wires a server the way main does, so tests share the exact
// production admission/degradation path.
func newServer(set *minup.ConstraintSet, compiled *minup.CompiledSet, cat *minup.PolicyCatalog, reg *minup.MetricsRegistry, cfg config) *server {
	s := &server{set: set, compiled: compiled, cat: cat, reg: reg, cfg: cfg, start: time.Now()}
	s.gate = newGate(cfg.maxInflight, cfg.maxQueue, cfg.queueWait, &s.draining, reg)
	s.lastMinimalUpgraded.Store(-1)
	// Register the degradation counters eagerly so a scrape sees the
	// series before the first overload.
	reg.Counter("solve.degraded")
	s.reg.Counter("http.panics")
	return s
}

// routes builds the service mux with the full middleware stack.
func (s *server) routes(logger *slog.Logger) http.Handler {
	o := httpObs{reg: s.reg, logger: logger, flight: s.cfg.flight, slo: s.cfg.slo}
	mux := http.NewServeMux()
	mux.Handle("/solve", instrument("solve", o, s.handleSolve))
	mux.Handle("/metrics", instrument("metrics", o, s.handleMetrics))
	mux.Handle("/trace", instrument("trace", o, s.handleTrace))
	mux.Handle("/healthz", instrument("healthz", o, func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	}))
	mux.Handle("/readyz", instrument("readyz", o, s.handleReady))
	mux.Handle("/cluster", instrument("cluster", o, s.handleClusterStatus))
	// Policy-catalog routes use Go 1.22 method patterns, so the mux itself
	// answers mismatched methods with 405 + Allow; the middleware variant
	// without the GET gate keeps the rest of the stack. Route names stay
	// low-cardinality: the policy name never reaches a metric.
	mux.Handle("GET /policies", instrumentMethods("policies", o, s.handlePolicyList))
	mux.Handle("PUT /policies/{name}", instrumentMethods("policy", o, s.handlePolicyPut))
	mux.Handle("GET /policies/{name}", instrumentMethods("policy", o, s.handlePolicyGet))
	mux.Handle("DELETE /policies/{name}", instrumentMethods("policy", o, s.handlePolicyDelete))
	mux.Handle("POST /policies/{name}/constraints", instrumentMethods("policy.constraints", o, s.handlePolicyAppend))
	mux.Handle("GET /policies/{name}/solve", instrumentMethods("policy.solve", o, s.handlePolicySolve))
	mux.Handle("POST /policies/{name}/solve", instrumentMethods("policy.solve", o, s.handlePolicySolve))
	// Problem-frontend routes: source problems compiled into ordinary
	// catalog policies. Route names stay low-cardinality — the family set
	// is small and fixed at build time.
	mux.Handle("GET /problems", instrumentMethods("problems", o, s.handleProblemList))
	mux.Handle("POST /problems/{family}", instrumentMethods("problem", o, s.handleProblemCreate))
	return mux
}

// handleReady is the readiness probe, distinct from /healthz liveness: a
// live process stops being ready while draining after a signal or while
// the admission queue is past its soft overload threshold, so load
// balancers route around it without restarting it.
func (s *server) handleReady(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if reason, ok := s.clusterReady(); !ok {
		// A replica that cannot vouch for its own freshness routes reads
		// elsewhere rather than serving arbitrarily stale answers.
		http.Error(w, reason, http.StatusServiceUnavailable)
		return
	}
	switch {
	case s.draining.Load():
		http.Error(w, "draining", http.StatusServiceUnavailable)
	case s.gate.overloaded():
		http.Error(w, "overloaded", http.StatusServiceUnavailable)
	default:
		fmt.Fprintf(w, "ready (inflight %d)\n", s.gate.inflight())
	}
}

// solveResponse is the JSON answer of /solve.
type solveResponse struct {
	Assignment map[string]string `json:"assignment"`
	Stats      solveStats        `json:"stats"`
	TraceID    string            `json:"trace_id,omitempty"`

	// Degraded marks an answer produced by the Qian baseline instead of
	// the minimal solver: still satisfying every constraint, but
	// over-classified. DegradeReason is "deadline" or "overload".
	Degraded      bool   `json:"degraded,omitempty"`
	DegradeReason string `json:"degrade_reason,omitempty"`
	// UpgradedAttrs is the number of attributes classified above lattice
	// bottom in a degraded answer; UpgradeDelta is the over-classification
	// cost vs. the last successful minimal solve (absent before one).
	UpgradedAttrs int  `json:"upgraded_attrs,omitempty"`
	UpgradeDelta  *int `json:"upgrade_delta,omitempty"`
}

type solveStats struct {
	Tries          int    `json:"tries"`
	FailedTries    int    `json:"failed_tries"`
	Collapses      int    `json:"collapses"`
	AttrsProcessed int    `json:"attrs_processed"`
	MinlevelCalls  int    `json:"minlevel_calls"`
	TrySteps       int    `json:"try_steps"`
	DescentSteps   int    `json:"descent_steps"`
	LatticeLub     uint64 `json:"lattice_lub,omitempty"`
	LatticeGlb     uint64 `json:"lattice_glb,omitempty"`
	LatticeDom     uint64 `json:"lattice_dominates,omitempty"`
	LatticeCovers  uint64 `json:"lattice_covers,omitempty"`
	PoolHit        bool   `json:"pool_hit"`
	DurationUS     int64  `json:"duration_us"`
}

// solveBudget resolves the request's solve deadline: the -solve-timeout
// flag, tightened by ?timeout_ms= and clamped to [1ms, flag] so a client
// can only shrink its own budget, never grow it past the server's policy.
func (s *server) solveBudget(r *http.Request) time.Duration {
	budget := s.cfg.solveTimeout
	if q := r.URL.Query().Get("timeout_ms"); q != "" {
		if ms, err := strconv.ParseInt(q, 10, 64); err == nil {
			d := time.Duration(ms) * time.Millisecond
			if d < time.Millisecond {
				d = time.Millisecond
			}
			if d > s.cfg.solveTimeout {
				d = s.cfg.solveTimeout
			}
			budget = d
		}
	}
	return budget
}

func (s *server) handleSolve(w http.ResponseWriter, r *http.Request) {
	if s.compiled == nil {
		http.Error(w, "no static instance configured (start minupd with -lattice/-constraints, or use /policies)", http.StatusNotFound)
		return
	}
	release, err := s.gate.acquire(r.Context())
	if err != nil {
		if r.Context().Err() != nil {
			http.Error(w, "client gone while queued", http.StatusRequestTimeout)
			return
		}
		writeShed(w, r, err)
		return
	}
	defer release()
	budget := s.solveBudget(r)

	// Soft overload: the queue behind us is filling. Serve the secure
	// baseline immediately instead of burning a full solve budget.
	if s.cfg.degrade && s.gate.overloaded() {
		s.serveDegraded(w, r, "overload", budget)
		return
	}

	ri := infoFrom(r.Context())
	opt := minup.Options{
		Metrics:           s.reg,
		CollectLatticeOps: r.URL.Query().Get("lattice_ops") == "1",
		Fault:             s.cfg.fault,
	}
	if ri != nil && ri.flight != nil {
		// Arm anomaly capture: the solver's event stream goes into a pooled
		// buffer that is dumped if this request ends slow/errored/degraded
		// and discarded otherwise.
		opt.Sink = ri.flight.CaptureSink()
	}
	ctx, cancel := context.WithTimeout(r.Context(), budget)
	defer cancel()
	var root *minup.Span
	var traceID string
	if r.URL.Query().Get("trace") == "1" {
		tr := minup.NewTracer()
		root = tr.Start("request")
		traceID = tr.TraceID()
		ctx = minup.ContextWithSpan(ctx, root)
		if ri != nil {
			ri.traceID = traceID
			if ri.flight != nil {
				ri.flight.SetSpan(root)
			}
		}
	}
	res, err := minup.SolveContext(ctx, s.compiled, opt)
	if root != nil {
		root.End()
	}
	if err != nil {
		s.solveError(w, r, err, budget)
		return
	}
	lat := s.set.Lattice()
	out := solveResponse{
		Assignment: make(map[string]string, len(res.Assignment)),
		TraceID:    traceID,
	}
	for _, a := range s.set.Attrs() {
		out.Assignment[s.set.AttrName(a)] = lat.FormatLevel(res.Assignment[a])
	}
	out.Stats = newSolveStats(res.Stats)
	if ri != nil {
		ri.stats = flightStatsOf(res.Stats)
	}
	s.lastMinimalUpgraded.Store(int64(minup.CountUpgraded(s.set, res.Assignment)))
	writeJSON(w, out)
}

// flightStatsOf compresses the solver stats block into the flight record's
// compact shape.
func flightStatsOf(st minup.SolveStats) minup.FlightStats {
	return minup.FlightStats{
		Tries:       st.Tries,
		FailedTries: st.FailedTries,
		Collapses:   st.Collapses,
		TrySteps:    st.TrySteps,
		SolveUS:     st.Duration.Microseconds(),
	}
}

// solveError maps a failed minimal solve to a response. A deadline miss
// degrades to the baseline when enabled; everything else maps to a typed
// status.
func (s *server) solveError(w http.ResponseWriter, r *http.Request, err error, budget time.Duration) {
	markErr := func() {
		if ri := infoFrom(r.Context()); ri != nil {
			ri.errText = err.Error()
		}
	}
	switch {
	case errors.Is(err, minup.ErrCanceled) || errors.Is(err, context.DeadlineExceeded):
		if r.Context().Err() != nil {
			// The client went away; nobody is reading a degraded answer.
			http.Error(w, err.Error(), http.StatusRequestTimeout)
			return
		}
		if s.cfg.degrade {
			s.serveDegraded(w, r, "deadline", budget)
			return
		}
		markErr()
		http.Error(w, err.Error(), http.StatusGatewayTimeout)
	case errors.Is(err, minup.ErrUnsolvable):
		markErr()
		http.Error(w, err.Error(), http.StatusUnprocessableEntity)
	case errors.Is(err, minup.ErrInternal):
		// The stack is in the log (the solver logs it at recovery); the
		// client gets an opaque 500.
		markErr()
		http.Error(w, "internal solver error", http.StatusInternalServerError)
	default:
		markErr()
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// serveDegraded answers with the Qian-baseline least fixpoint: satisfying
// — hence safe to serve — but over-classified. The baseline runs on a
// fresh budget detached from the (possibly already expired) solve
// deadline, though still abandoned if the client disconnects.
func (s *server) serveDegraded(w http.ResponseWriter, r *http.Request, reason string, budget time.Duration) {
	start := time.Now()
	qctx, cancel := context.WithTimeout(context.WithoutCancel(r.Context()), budget)
	defer cancel()
	m, err := minup.QianBaseline(qctx, s.set)
	if err != nil {
		// No minimal answer and no baseline either — shed honestly.
		w.Header().Set("Retry-After", "1")
		http.Error(w, "degraded solve failed: "+err.Error(), http.StatusServiceUnavailable)
		return
	}
	if err := minup.Verify(s.set, m); err != nil {
		// Defense in depth: never serve an unverified fallback.
		http.Error(w, "degraded solve produced an invalid assignment: "+err.Error(), http.StatusInternalServerError)
		return
	}
	s.reg.Counter("solve.degraded").Inc()
	s.reg.Counter("solve.degraded." + reason).Inc()
	if ri := infoFrom(r.Context()); ri != nil {
		ri.degraded = true
		ri.degradeReason = reason
	}
	lat := s.set.Lattice()
	out := solveResponse{
		Assignment:    make(map[string]string, len(m)),
		Degraded:      true,
		DegradeReason: reason,
		UpgradedAttrs: minup.CountUpgraded(s.set, m),
	}
	for _, a := range s.set.Attrs() {
		out.Assignment[s.set.AttrName(a)] = lat.FormatLevel(m[a])
	}
	if last := s.lastMinimalUpgraded.Load(); last >= 0 {
		delta := out.UpgradedAttrs - int(last)
		out.UpgradeDelta = &delta
		s.reg.Gauge("solve.degraded.upgrade_delta").Set(int64(delta))
	}
	out.Stats.DurationUS = time.Since(start).Microseconds()
	writeJSON(w, out)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	// The pool gauge is sampled at scrape time: sessions are created on
	// demand, so this tracks peak solve concurrency. The panic gauge
	// counts solver sessions discarded by the recovery guard. SLO burn
	// gauges are republished here too, so a scrape never reads values a
	// full collector interval old.
	s.reg.Gauge("solve.pool.sessions").Set(minup.SessionsAllocated())
	s.reg.Gauge("solve.panics_recovered").Set(minup.PanicsRecovered())
	s.reg.Gauge("process.uptime_seconds").Set(int64(time.Since(s.start).Seconds()))
	s.cfg.slo.Publish(s.reg)
	if r.URL.Query().Get("format") == "prometheus" {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		s.reg.WritePrometheus(w)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	s.reg.WriteJSON(w)
}

// traceResponse is the JSON answer of /trace: one fully instrumented solve
// and its reconstructed span tree.
type traceResponse struct {
	TraceID string         `json:"trace_id"`
	Spans   minup.SpanNode `json:"spans"`
}

func (s *server) handleTrace(w http.ResponseWriter, r *http.Request) {
	if s.compiled == nil {
		http.Error(w, "no static instance configured (start minupd with -lattice/-constraints, or use /policies)", http.StatusNotFound)
		return
	}
	release, err := s.gate.acquire(r.Context())
	if err != nil {
		if r.Context().Err() != nil {
			http.Error(w, "client gone while queued", http.StatusRequestTimeout)
			return
		}
		writeShed(w, r, err)
		return
	}
	defer release()
	tr := minup.NewTracer()
	root := tr.Start("request")
	if ri := infoFrom(r.Context()); ri != nil {
		ri.traceID = tr.TraceID()
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.solveBudget(r))
	defer cancel()
	ctx = minup.ContextWithSpan(ctx, root)
	_, err = minup.SolveContext(ctx, s.compiled, minup.Options{Metrics: s.reg, Fault: s.cfg.fault})
	root.End()
	if err != nil {
		if ri := infoFrom(r.Context()); ri != nil {
			ri.errText = err.Error()
		}
		status := http.StatusInternalServerError
		if errors.Is(err, minup.ErrCanceled) {
			status = http.StatusGatewayTimeout
		} else if errors.Is(err, minup.ErrUnsolvable) {
			status = http.StatusUnprocessableEntity
		}
		http.Error(w, err.Error(), status)
		return
	}
	switch r.URL.Query().Get("format") {
	case "chrome":
		w.Header().Set("Content-Type", "application/json")
		minup.WriteChromeTrace(w, root)
	case "flame":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		minup.WriteFlameSummary(w, root)
	default:
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(traceResponse{TraceID: tr.TraceID(), Spans: root.Node(root.StartTime())})
	}
}

// buildVersion reports the best version identifier the binary carries: the
// module version if stamped, else the VCS revision (dirty-suffixed), else
// "devel".
func buildVersion() string {
	bi, ok := rtdebug.ReadBuildInfo()
	if !ok {
		return "devel"
	}
	if v := bi.Main.Version; v != "" && v != "(devel)" {
		return v
	}
	var rev, dirty string
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			if s.Value == "true" {
				dirty = "-dirty"
			}
		}
	}
	if rev != "" {
		if len(rev) > 12 {
			rev = rev[:12]
		}
		return rev + dirty
	}
	return "devel"
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "minupd:", err)
	os.Exit(1)
}
