// Command minposet demonstrates Theorem 6.1 on real inputs: it reads a
// CNF formula in DIMACS format, builds the paper's min-poset reduction,
// decides it with the backtracking solver, cross-checks the verdict with
// DPLL, and on satisfiable formulas prints the truth assignment extracted
// from the minimal poset labeling.
//
// Usage:
//
//	minposet -cnf formula.cnf [-budget N] [-stats]
package main

import (
	"flag"
	"fmt"
	"os"

	"minup/internal/poset"
)

func main() {
	cnfPath := flag.String("cnf", "", "path to a DIMACS CNF file")
	budget := flag.Int("budget", 0, "search-node budget (0 = unlimited)")
	stats := flag.Bool("stats", false, "print search statistics")
	flag.Parse()
	if *cnfPath == "" {
		flag.Usage()
		os.Exit(2)
	}

	f, err := os.Open(*cnfPath)
	if err != nil {
		fatal(err)
	}
	numVars, clauses, err := poset.ParseDIMACS(f)
	f.Close()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("formula: %d variables, %d clauses\n", numVars, len(clauses))

	red, err := poset.Reduce(numVars, clauses)
	if err != nil {
		fatal(err)
	}
	p := red.Instance.P
	fmt.Printf("reduction poset: %d elements, %d attributes, partial lattice: %v\n",
		p.Size(), len(red.Instance.AttrNames), p.IsPartialLattice())

	m, st, err := red.Instance.Solve(*budget)
	if err != nil {
		fatal(err)
	}
	if *stats {
		fmt.Printf("search: %d nodes, %d backtracks\n", st.Nodes, st.Backtracks)
	}

	_, dpllSAT := poset.SolveSAT(numVars, clauses)
	posetSAT := m != nil
	if posetSAT != dpllSAT {
		fatal(fmt.Errorf("REDUCTION BUG: min-poset says %v, DPLL says %v", posetSAT, dpllSAT))
	}

	if !posetSAT {
		fmt.Println("UNSATISFIABLE (confirmed by DPLL)")
		return
	}
	asg := red.Extract(m)
	if !poset.CheckSAT(asg, clauses) {
		fatal(fmt.Errorf("REDUCTION BUG: extracted assignment does not satisfy the formula"))
	}
	fmt.Println("SATISFIABLE (confirmed by DPLL); assignment from the minimal poset labeling:")
	for v, val := range asg {
		fmt.Printf("  x%d = %v\n", v+1, val)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "minposet:", err)
	os.Exit(1)
}
