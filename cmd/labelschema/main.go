// Command labelschema computes a minimal security labeling for a
// relational schema: it reads a lattice file and a schema file (relations,
// keys, foreign keys, functional/multivalued dependencies, explicit
// requirements and associations), generates the classification constraints
// those structures induce, solves them with Algorithm 3.1, and prints the
// per-attribute labeling plus an inference-channel audit.
//
// Usage:
//
//	labelschema -lattice hospital.lat -schema hospital.schema [-constraints]
//
// Schema file format (see internal/mlsdb.ParseSchema):
//
//	relation patient(patient_id, name, treatment, diagnosis) key(patient_id)
//	fd patient: treatment -> diagnosis
//	require patient.diagnosis >= Confidential
//	assoc patient(name, diagnosis) >= Restricted
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"minup"
	"minup/internal/mlsdb"
)

func main() {
	latticePath := flag.String("lattice", "", "path to the lattice description file")
	schemaPath := flag.String("schema", "", "path to the schema description file")
	showCons := flag.Bool("constraints", false, "also print the generated classification constraints")
	flag.Parse()
	if *latticePath == "" || *schemaPath == "" {
		flag.Usage()
		os.Exit(2)
	}

	lf, err := os.Open(*latticePath)
	if err != nil {
		fatal(err)
	}
	lat, err := minup.ParseLattice(lf)
	lf.Close()
	if err != nil {
		fatal(err)
	}

	sf, err := os.Open(*schemaPath)
	if err != nil {
		fatal(err)
	}
	schema, reqs, assocs, err := mlsdb.ParseSchema(lat, sf)
	sf.Close()
	if err != nil {
		fatal(err)
	}

	set, err := schema.Constraints(reqs, assocs)
	if err != nil {
		fatal(err)
	}
	if *showCons {
		fmt.Printf("generated %d classification constraints:\n", len(set.Constraints()))
		for _, c := range set.Constraints() {
			fmt.Println("  ", set.Format(c))
		}
		for _, u := range set.UpperBounds() {
			fmt.Printf("   %s >= %s (upper bound)\n",
				lat.FormatLevel(u.Level), set.AttrName(u.Attr))
		}
		fmt.Println()
	}

	res, err := minup.Solve(set, minup.Options{})
	if err != nil {
		fatal(err)
	}
	lab, err := schema.ApplyAssignment(set, res.Assignment)
	if err != nil {
		fatal(err)
	}

	fmt.Println("minimal labeling:")
	for _, rel := range schema.Relations() {
		attrs := append([]string(nil), rel.Attrs...)
		sort.Strings(attrs)
		for _, a := range attrs {
			l, _ := lab.Level(rel.Name, a)
			fmt.Printf("  %-28s %s\n", rel.Name+"."+a, lat.FormatLevel(l))
		}
	}

	if open := schema.CheckInferenceClosed(lab); open != nil {
		fmt.Println("\nOPEN INFERENCE CHANNELS:")
		for _, o := range open {
			fmt.Println("  ", o)
		}
		os.Exit(1)
	}
	fmt.Println("\nall dependency-induced inference channels are closed.")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "labelschema:", err)
	os.Exit(1)
}
