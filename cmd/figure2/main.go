// Command figure2 reproduces the paper's worked example (Figure 2): it
// builds the constraint set of Figure 2(a) over the lattice of Figure
// 1(b), runs Algorithm 3.1 with tracing, and prints the priority sets, the
// execution table, and the final minimal classification, checking each
// against the values published in the paper.
package main

import (
	"fmt"
	"os"

	"minup/internal/constraint"
	"minup/internal/core"
)

func main() {
	f := constraint.NewFigure2()
	set := f.Set
	lat := f.Lattice

	fmt.Println("constraints of Figure 2(a):")
	for _, c := range set.Constraints() {
		fmt.Println("  ", set.Format(c))
	}

	res := core.MustSolve(set, core.Options{RecordTrace: true})

	fmt.Println("\npriority sets (paper: [1]={D} [2]={I,O,N} [3]={B,C,E,F,G,M} [4]={P}):")
	for p := 1; p <= res.Priorities.Max; p++ {
		fmt.Printf("  priority[%d] = {", p)
		for i, n := range res.Priorities.Sets[p] {
			if i > 0 {
				fmt.Print(", ")
			}
			fmt.Print(set.AttrName(constraint.Attr(n)))
		}
		fmt.Println("}")
	}

	fmt.Println("\nexecution trace (Figure 2(b)):")
	fmt.Println(res.Trace.Table())

	fmt.Println("final classification vs. the paper's bottom row:")
	ok := true
	for _, a := range set.Attrs() {
		got := lat.FormatLevel(res.Assignment[a])
		want := lat.FormatLevel(f.Want[a])
		marker := "ok"
		if got != want {
			marker = "MISMATCH"
			ok = false
		}
		fmt.Printf("  %-2s computed=%-3s paper=%-3s %s\n", set.AttrName(a), got, want, marker)
	}
	if !ok {
		fmt.Fprintln(os.Stderr, "figure2: reproduction FAILED")
		os.Exit(1)
	}
	fmt.Println("\nreproduction matches the paper exactly.")
}
