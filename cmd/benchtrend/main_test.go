package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func bench(ns float64, allocs int64) benchResult {
	return benchResult{Iterations: 1000, NsPerOp: ns, BytesPerOp: allocs * 16, AllocsPerOp: allocs}
}

func TestCompareWithinThresholdPasses(t *testing.T) {
	base := map[string]benchResult{"BenchmarkA": bench(1000, 10), "BenchmarkB": bench(500, 5)}
	cur := map[string]benchResult{"BenchmarkA": bench(1150, 10), "BenchmarkB": bench(420, 5)}
	lines, failures := compare(base, cur, 0.20)
	if len(failures) != 0 {
		t.Fatalf("unexpected failures: %v", failures)
	}
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
}

func TestCompareNsRegressionFails(t *testing.T) {
	base := map[string]benchResult{"BenchmarkA": bench(1000, 10)}
	cur := map[string]benchResult{"BenchmarkA": bench(1201, 10)} // +20.1%
	_, failures := compare(base, cur, 0.20)
	if len(failures) != 1 || !strings.Contains(failures[0], "ns/op regressed") {
		t.Fatalf("failures: %v", failures)
	}
}

func TestCompareAnyAllocRegressionFails(t *testing.T) {
	// Allocation counts are deterministic: even +1 alloc/op must fail,
	// regardless of how ns/op moved.
	base := map[string]benchResult{"BenchmarkA": bench(1000, 206)}
	cur := map[string]benchResult{"BenchmarkA": bench(900, 207)}
	_, failures := compare(base, cur, 0.20)
	if len(failures) != 1 || !strings.Contains(failures[0], "allocs/op regressed: 206 -> 207") {
		t.Fatalf("failures: %v", failures)
	}
}

func TestCompareMissingBenchmarkFails(t *testing.T) {
	base := map[string]benchResult{"BenchmarkA": bench(1000, 10), "BenchmarkGone": bench(100, 1)}
	cur := map[string]benchResult{"BenchmarkA": bench(1000, 10)}
	_, failures := compare(base, cur, 0.20)
	if len(failures) != 1 || !strings.Contains(failures[0], "BenchmarkGone") {
		t.Fatalf("failures: %v", failures)
	}
}

func TestCompareImprovementNeverFails(t *testing.T) {
	base := map[string]benchResult{"BenchmarkA": bench(1000, 10)}
	cur := map[string]benchResult{"BenchmarkA": bench(300, 4)}
	lines, failures := compare(base, cur, 0.20)
	if len(failures) != 0 {
		t.Fatalf("improvement failed the gate: %v", failures)
	}
	if !strings.Contains(lines[0], "refreshing the baseline") {
		t.Fatalf("big improvement not flagged for baseline refresh: %q", lines[0])
	}
}

func TestCompareNewBenchmarkIsReportedNotFailed(t *testing.T) {
	base := map[string]benchResult{"BenchmarkA": bench(1000, 10)}
	cur := map[string]benchResult{"BenchmarkA": bench(1000, 10), "BenchmarkNew": bench(50, 2)}
	lines, failures := compare(base, cur, 0.20)
	if len(failures) != 0 {
		t.Fatalf("new benchmark failed the gate: %v", failures)
	}
	found := false
	for _, l := range lines {
		if strings.Contains(l, "BenchmarkNew") && strings.Contains(l, "new benchmark") {
			found = true
		}
	}
	if !found {
		t.Fatalf("new benchmark not reported: %v", lines)
	}
}

func TestReadBenchRejectsEmptyAndMalformed(t *testing.T) {
	dir := t.TempDir()
	empty := filepath.Join(dir, "empty.json")
	os.WriteFile(empty, []byte("{}"), 0o644)
	if _, err := readBench(empty); err == nil {
		t.Fatal("empty benchmark file accepted")
	}
	bad := filepath.Join(dir, "bad.json")
	os.WriteFile(bad, []byte("not json"), 0o644)
	if _, err := readBench(bad); err == nil {
		t.Fatal("malformed benchmark file accepted")
	}
	if _, err := readBench(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing benchmark file accepted")
	}
}
