// Command benchtrend compares a fresh BENCH_solve.json benchmark run
// against the committed baseline and fails on regressions: more than
// -max-ns-regress (default 20%) on ns/op, or any increase at all in
// allocs/op — allocation counts are deterministic, so a single extra
// allocation is a real change, not noise. A benchmark present in the
// baseline but missing from the current run is also a failure (a renamed
// or deleted benchmark must update the baseline deliberately).
//
// Usage:
//
//	scripts/bench_json.sh artifacts/bench/current.json
//	benchtrend -baseline BENCH_solve.json -current artifacts/bench/current.json
//
// Improvements beyond the threshold are reported but never fail; refresh
// the committed baseline with `make bench-json` when they stick.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
)

// benchResult mirrors one entry of scripts/bench_json.sh's output.
type benchResult struct {
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

func readBench(path string) (map[string]benchResult, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	out := make(map[string]benchResult)
	if err := json.Unmarshal(b, &out); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%s: no benchmarks", path)
	}
	return out, nil
}

// compare judges current against baseline, returning human-readable lines
// and the regression verdicts. maxNsRegress is fractional (0.20 = +20%).
func compare(baseline, current map[string]benchResult, maxNsRegress float64) (lines []string, failures []string) {
	names := make([]string, 0, len(baseline))
	for name := range baseline {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		base := baseline[name]
		cur, ok := current[name]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: in baseline but missing from current run", name))
			continue
		}
		delta := (cur.NsPerOp - base.NsPerOp) / base.NsPerOp
		line := fmt.Sprintf("%-28s ns/op %10.0f -> %10.0f (%+.1f%%)  allocs/op %4d -> %4d",
			name, base.NsPerOp, cur.NsPerOp, 100*delta, base.AllocsPerOp, cur.AllocsPerOp)
		switch {
		case delta > maxNsRegress:
			failures = append(failures, fmt.Sprintf("%s: ns/op regressed %.1f%% (limit %.0f%%): %.0f -> %.0f",
				name, 100*delta, 100*maxNsRegress, base.NsPerOp, cur.NsPerOp))
		case delta < -maxNsRegress:
			line += "  [improved beyond threshold — consider refreshing the baseline]"
		}
		if cur.AllocsPerOp > base.AllocsPerOp {
			failures = append(failures, fmt.Sprintf("%s: allocs/op regressed: %d -> %d",
				name, base.AllocsPerOp, cur.AllocsPerOp))
		}
		lines = append(lines, line)
	}
	for name := range current {
		if _, ok := baseline[name]; !ok {
			lines = append(lines, fmt.Sprintf("%-28s new benchmark (not in baseline)", name))
		}
	}
	return lines, failures
}

func main() {
	baselinePath := flag.String("baseline", "BENCH_solve.json", "committed baseline benchmark JSON")
	currentPath := flag.String("current", "", "freshly generated benchmark JSON to judge (required)")
	maxNsRegress := flag.Float64("max-ns-regress", 0.20, "max allowed fractional ns/op regression before failing")
	flag.Parse()
	if *currentPath == "" {
		fmt.Fprintln(os.Stderr, "benchtrend: -current is required")
		flag.Usage()
		os.Exit(2)
	}
	baseline, err := readBench(*baselinePath)
	if err != nil {
		fatal(err)
	}
	current, err := readBench(*currentPath)
	if err != nil {
		fatal(err)
	}
	lines, failures := compare(baseline, current, *maxNsRegress)
	for _, l := range lines {
		fmt.Println(l)
	}
	if len(failures) > 0 {
		fmt.Println()
		for _, f := range failures {
			fmt.Printf("FAIL: %s\n", f)
		}
		os.Exit(1)
	}
	fmt.Println("benchtrend: no regressions")
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "benchtrend: %v\n", err)
	os.Exit(1)
}
