// Command minfront inspects the problem frontends: it generates seeded
// source-problem instances, compiles instance files into the engine's
// policy source texts, solves them, and checks solved assignments against
// each frontend's source-level security and minimality oracle — the
// command-line companion to minupd's POST /problems/{family} routes.
//
// Usage:
//
//	minfront -list
//	minfront -family suppress -gen [-seed 7] [-size 5] > table.json
//	minfront -family suppress -in table.json [-emit] [-stats] [-solve] [-check]
//
// -list prints the registered families. -gen writes a seeded instance in
// the family's round-trippable JSON format to stdout. -in reads and
// compiles an instance file (use "-" for stdin); then -emit prints the
// compiled lattice and constraint texts (valid minupd policy source),
// -stats the compiled constraint-set shape, -solve the minimal
// classification, and -check re-verifies the solved assignment with the
// engine verifier, the engine minimality probe, and the frontend's own
// source-problem oracle.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"

	"minup"
)

func main() {
	list := flag.Bool("list", false, "list the registered problem families")
	family := flag.String("family", "", "problem family (see -list)")
	gen := flag.Bool("gen", false, "generate a seeded instance and print its JSON to stdout")
	seed := flag.Int64("seed", 1, "generator seed (with -gen)")
	size := flag.Int("size", 5, "generator size knob (with -gen)")
	in := flag.String("in", "", `instance file to parse and compile ("-" for stdin)`)
	emit := flag.Bool("emit", false, "print the compiled lattice and constraint texts")
	stats := flag.Bool("stats", false, "print the compiled constraint-set shape to stderr")
	solve := flag.Bool("solve", false, "solve the compiled instance and print the assignment")
	check := flag.Bool("check", false, "verify the solved assignment (implies -solve): engine verify, engine minimality probe, and the frontend's source-level oracle")
	flag.Parse()

	if *list {
		for _, name := range minup.ProblemFamilies() {
			fe, ok := minup.LookupProblemFrontend(name)
			if !ok {
				continue
			}
			fmt.Printf("%-10s %s\n", name, fe.Describe())
		}
		return
	}
	if *family == "" {
		flag.Usage()
		os.Exit(2)
	}
	fe, ok := minup.LookupProblemFrontend(*family)
	if !ok {
		fatal(fmt.Errorf("unknown family %q (minfront -list shows the registered ones)", *family))
	}

	var inst minup.ProblemInstance
	switch {
	case *gen:
		var err error
		inst, err = fe.Generate(*seed, *size)
		if err != nil {
			fatal(err)
		}
	case *in != "":
		var data []byte
		var err error
		if *in == "-" {
			data, err = io.ReadAll(os.Stdin)
		} else {
			data, err = os.ReadFile(*in)
		}
		if err != nil {
			fatal(err)
		}
		inst, err = fe.Parse(data)
		if err != nil {
			fatal(err)
		}
	default:
		fatal(fmt.Errorf("need -gen or -in FILE (or -list)"))
	}

	if *gen && *in == "" && !*emit && !*stats && !*solve && !*check {
		// Pure generation: print the instance JSON and stop, so
		// `minfront -family f -gen > f.json` composes with -in.
		raw, err := minup.MarshalProblemInstance(inst)
		if err != nil {
			fatal(err)
		}
		fmt.Println(string(raw))
		return
	}

	c, err := fe.Compile(inst)
	if err != nil {
		fatal(err)
	}
	if *emit {
		fmt.Print(c.LatticeText)
		fmt.Print(c.ConstraintText)
	}
	if *stats {
		fmt.Fprintln(os.Stderr, "minfront:", c.Set.Stats())
	}
	if !*solve && !*check {
		if !*emit && !*stats {
			fmt.Fprintf(os.Stderr, "minfront: %s instance %q compiles to %d attrs, %d constraints (add -emit, -solve, or -check)\n",
				*family, inst.InstanceName(), c.Set.NumAttrs(), len(c.Set.Constraints()))
		}
		return
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	compiled := c.Set.CompileContext(ctx)
	res, err := minup.SolveContext(ctx, compiled, minup.Options{})
	if err != nil {
		fatal(err)
	}
	fmt.Println(c.Set.FormatAssignment(res.Assignment))
	if *check {
		if err := minup.Verify(c.Set, res.Assignment); err != nil {
			fatal(fmt.Errorf("engine verify: %w", err))
		}
		minimal, w, err := minup.ProbeMinimalityContext(ctx, compiled, res.Assignment)
		if err != nil {
			fatal(err)
		}
		if !minimal {
			fatal(fmt.Errorf("engine minimality probe: %s lowerable to %s",
				c.Set.AttrName(w.Attr), c.Lattice.FormatLevel(w.To)))
		}
		if err := fe.Oracle(c, res.Assignment); err != nil {
			fatal(fmt.Errorf("source oracle: %w", err))
		}
		fmt.Fprintf(os.Stderr, "minfront: verified %d constraints, engine minimality, and the %s source oracle\n",
			len(c.Set.Constraints()), *family)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "minfront:", err)
	os.Exit(1)
}
