package minup_test

import (
	"bytes"
	"context"
	"flag"
	"os"
	"testing"
	"time"

	"minup"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// tickClock advances one microsecond per call from a fixed epoch, so every
// span boundary in a traced solve is distinct and reproducible.
func tickClock() func() time.Time {
	t := time.Unix(1_000_000, 0)
	return func() time.Time {
		t = t.Add(time.Microsecond)
		return t
	}
}

// TestChromeTraceGoldenFigure2 validates the full tracing pipeline end to
// end on the checked-in Figure 2(a) fixture: parse, compile (with phase
// spans), one instrumented solve, Chrome trace-event export. The tracer's
// clock and IDs are deterministic (zero-value Tracer, fake clock), and the
// solver itself is deterministic on this instance, so the exported JSON is
// byte-for-byte reproducible and checked against a golden file.
func TestChromeTraceGoldenFigure2(t *testing.T) {
	lf, err := os.Open("testdata/lattice_fig1b.txt")
	if err != nil {
		t.Fatal(err)
	}
	defer lf.Close()
	lat, err := minup.ParseLattice(lf)
	if err != nil {
		t.Fatal(err)
	}
	set := minup.NewConstraintSet(lat)
	cf, err := os.Open("testdata/constraints_fig2.txt")
	if err != nil {
		t.Fatal(err)
	}
	defer cf.Close()
	if err := set.ParseInto(cf); err != nil {
		t.Fatal(err)
	}

	tr := &minup.Tracer{Now: tickClock()}
	root := tr.Start("request")
	ctx := minup.ContextWithSpan(context.Background(), root)
	compiled := set.CompileContext(ctx)
	if _, err := minup.SolveContext(ctx, compiled, minup.Options{}); err != nil {
		t.Fatal(err)
	}
	root.End()

	var buf bytes.Buffer
	if err := minup.WriteChromeTrace(&buf, root); err != nil {
		t.Fatal(err)
	}
	const golden = "testdata/fig2_trace.golden.json"
	if *updateGolden {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("Chrome trace drifted from %s (re-run with -update).\ngot %d bytes, want %d bytes\ngot:\n%.2000s",
			golden, buf.Len(), len(want), buf.String())
	}
}

// TestFlameSummaryFigure2 smoke-tests the flame exporter over the same
// instrumented solve (content is covered by the obs unit tests; this pins
// the integration).
func TestFlameSummaryFigure2(t *testing.T) {
	lf, err := os.Open("testdata/lattice_fig1b.txt")
	if err != nil {
		t.Fatal(err)
	}
	defer lf.Close()
	lat, err := minup.ParseLattice(lf)
	if err != nil {
		t.Fatal(err)
	}
	set := minup.NewConstraintSet(lat)
	cf, err := os.Open("testdata/constraints_fig2.txt")
	if err != nil {
		t.Fatal(err)
	}
	defer cf.Close()
	if err := set.ParseInto(cf); err != nil {
		t.Fatal(err)
	}

	tr := &minup.Tracer{Now: tickClock()}
	root := tr.Start("request")
	ctx := minup.ContextWithSpan(context.Background(), root)
	if _, err := minup.SolveContext(ctx, set.CompileContext(ctx), minup.Options{}); err != nil {
		t.Fatal(err)
	}
	root.End()

	var buf bytes.Buffer
	if err := minup.WriteFlameSummary(&buf, root); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"request", "compile", "solve", "descent"} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Fatalf("flame summary missing %q:\n%s", want, buf.String())
		}
	}
}
