package minup_test

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"minup"
)

// TestFacadeQuickstart exercises the README quick-start path through the
// public API only.
func TestFacadeQuickstart(t *testing.T) {
	lat := minup.MustChainLattice("mil", "U", "C", "S", "TS")
	set := minup.NewConstraintSet(lat)
	if err := set.ParseString(`
salary >= C
lub(name, salary) >= TS
rank >= salary
`); err != nil {
		t.Fatal(err)
	}
	res, err := minup.Solve(set, minup.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := set.FormatAssignment(res.Assignment); got != "name=TS rank=C salary=C" {
		t.Fatalf("quickstart = %q", got)
	}
}

// TestFacadeLatticeConstructors covers every public lattice constructor.
func TestFacadeLatticeConstructors(t *testing.T) {
	if _, err := minup.NewChainLattice("c", "a", "b"); err != nil {
		t.Error(err)
	}
	if _, err := minup.NewMLSLattice("m", []string{"U", "TS"}, []string{"x"}); err != nil {
		t.Error(err)
	}
	if _, err := minup.NewPowersetLattice("p", "x", "y"); err != nil {
		t.Error(err)
	}
	if _, err := minup.NewExplicitLattice("e", []string{"t", "b"},
		map[string][]string{"t": {"b"}}); err != nil {
		t.Error(err)
	}
	semi, err := minup.CompleteSemiLattice("s", []string{"a", "b"}, nil)
	if err != nil {
		t.Error(err)
	}
	if semi.Size() != 4 { // a, b, dummy top, dummy bottom
		t.Errorf("semi size = %d", semi.Size())
	}
	if l, err := minup.ParseLattice(strings.NewReader("chain c\nlevels a b\n")); err != nil || l.Height() != 1 {
		t.Errorf("ParseLattice: %v %v", l, err)
	}
	if minup.Figure1A().Count() != 8 {
		t.Error("Figure1A shape")
	}
	if minup.Figure1B().Size() != 7 {
		t.Error("Figure1B shape")
	}
}

// TestFacadeUpperBoundFlow covers CheckSolvable and DeriveUpperBounds.
func TestFacadeUpperBoundFlow(t *testing.T) {
	lat := minup.MustChainLattice("c", "lo", "hi")
	set := minup.NewConstraintSet(lat)
	if err := set.ParseString("a >= hi\nlo >= a\n"); err != nil {
		t.Fatal(err)
	}
	if err := minup.CheckSolvable(set); err == nil {
		t.Fatal("inconsistency not detected")
	}
	if _, err := minup.DeriveUpperBounds(set); err == nil {
		t.Fatal("DeriveUpperBounds missed inconsistency")
	}
	var ie *minup.InconsistencyError
	_, err := minup.Solve(set, minup.Options{})
	if !errors.As(err, &ie) {
		t.Fatalf("error type: %v", err)
	}
}

// TestFacadeSchemaFlow covers the database layer through the facade.
func TestFacadeSchemaFlow(t *testing.T) {
	lat := minup.MustChainLattice("c", "Public", "Secret")
	schema := minup.NewSchema(lat)
	schema.MustAddRelation("t", []string{"k", "v"}, []string{"k"})
	secret, _ := lat.ParseLevel("Secret")
	set, err := schema.Constraints(
		[]minup.Requirement{{Rel: "t", Attr: "v", Level: secret}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := minup.Solve(set, minup.Options{})
	if err != nil {
		t.Fatal(err)
	}
	lab, err := schema.ApplyAssignment(set, res.Assignment)
	if err != nil {
		t.Fatal(err)
	}
	store := minup.NewStore(schema, lab)
	if err := store.Insert("t", secret, map[string]string{"k": "1", "v": "x"}); err != nil {
		t.Fatal(err)
	}
	pub, _ := lat.ParseLevel("Public")
	rows, err := store.Select("t", pub, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 0 {
		t.Fatalf("public subject sees secret rows: %v", rows)
	}
}

// TestFacadeSAT covers the Theorem 6.1 entry points.
func TestFacadeSAT(t *testing.T) {
	clauses := []minup.SATClause{{0, 1}, {^0, 1}}
	if _, ok := minup.SolveSAT(2, clauses); !ok {
		t.Fatal("satisfiable formula rejected")
	}
	red, err := minup.ReduceSAT(2, clauses)
	if err != nil {
		t.Fatal(err)
	}
	m, _, err := red.Instance.Solve(0)
	if err != nil {
		t.Fatal(err)
	}
	if m == nil {
		t.Fatal("reduced instance unsatisfiable")
	}
	asg := red.Extract(m)
	if !asg[1] { // Q must be true in every solution of (P∨Q)∧(¬P∨Q)
		t.Errorf("extracted assignment %v", asg)
	}
	if minup.Figure4B().IsPartialLattice() {
		t.Error("Figure4B must not be a partial lattice")
	}
	if _, err := minup.NewPoset("p", []string{"a"}, nil); err != nil {
		t.Error(err)
	}
}

// TestFacadeTrace covers trace access through the facade types.
func TestFacadeTrace(t *testing.T) {
	lat := minup.Figure1B()
	set := minup.NewConstraintSet(lat)
	if err := set.ParseString("a >= L3\nb >= a\n"); err != nil {
		t.Fatal(err)
	}
	res, err := minup.Solve(set, minup.Options{RecordTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace == nil || !strings.Contains(res.Trace.Table(), "L3") {
		t.Fatal("trace missing or empty")
	}
}

func ExampleSolve() {
	lat := minup.MustChainLattice("mil", "U", "C", "S", "TS")
	set := minup.NewConstraintSet(lat)
	if err := set.ParseString(`
salary >= C
lub(name, salary) >= TS
bonus >= salary
`); err != nil {
		panic(err)
	}
	res, err := minup.Solve(set, minup.Options{})
	if err != nil {
		panic(err)
	}
	fmt.Println(set.FormatAssignment(res.Assignment))
	// Output: bonus=C name=TS salary=C
}
