package minup_test

// Runnable godoc examples for the public API beyond the basic Solve: each
// doubles as a test via its Output comment.

import (
	"fmt"
	"sync"
	"testing"

	"minup"
)

func ExampleSolve_trace() {
	lat := minup.Figure1B()
	set := minup.NewConstraintSet(lat)
	if err := set.ParseString("a >= L3\nlub(a, b) >= L6\n"); err != nil {
		panic(err)
	}
	res, err := minup.Solve(set, minup.Options{RecordTrace: true})
	if err != nil {
		panic(err)
	}
	fmt.Println(set.FormatAssignment(res.Assignment))
	fmt.Println(res.Trace.Len() > 0)
	// Output:
	// a=L3 b=L6
	// true
}

func ExampleProbeMinimality() {
	lat := minup.MustChainLattice("mil", "U", "C", "S", "TS")
	set := minup.NewConstraintSet(lat)
	if err := set.ParseString("salary >= C\n"); err != nil {
		panic(err)
	}
	ts, _ := lat.ParseLevel("TS")
	over := minup.Assignment{ts} // wildly overclassified but satisfying
	minimal, witness, err := minup.ProbeMinimality(set, over)
	if err != nil {
		panic(err)
	}
	fmt.Println(minimal)
	fmt.Println(set.FormatAssignment(witness.Assignment))
	// Output:
	// false
	// salary=S
}

func ExampleExplain() {
	lat := minup.MustChainLattice("mil", "U", "C", "S", "TS")
	set := minup.NewConstraintSet(lat)
	if err := set.ParseString("bonus >= salary\nsalary >= S\n"); err != nil {
		panic(err)
	}
	res, err := minup.Solve(set, minup.Options{})
	if err != nil {
		panic(err)
	}
	bonus, _ := set.AttrByName("bonus")
	ex, err := minup.Explain(set, res.Assignment, bonus)
	if err != nil {
		panic(err)
	}
	fmt.Println(minup.FormatExplanation(set, ex))
	// Output:
	// bonus = S
	//   cannot lower to C: would violate salary >= S
}

func ExampleRepair() {
	lat := minup.MustChainLattice("mil", "U", "C", "S", "TS")
	set := minup.NewConstraintSet(lat)
	if err := set.ParseString("a >= C\nb >= a\n"); err != nil {
		panic(err)
	}
	res, err := minup.Solve(set, minup.Options{})
	if err != nil {
		panic(err)
	}
	n := len(set.Constraints())
	// Policy evolves: a must now be Secret.
	if err := set.ParseString("a >= S\n"); err != nil {
		panic(err)
	}
	repaired, stats, err := minup.Repair(set, n, res.Assignment, minup.RepairOptions{})
	if err != nil {
		panic(err)
	}
	fmt.Println(set.FormatAssignment(repaired))
	fmt.Println("recomputed:", stats.Recomputed)
	diff, err := set.DiffAssignments(res.Assignment, repaired)
	if err != nil {
		panic(err)
	}
	fmt.Println(set.FormatDiff(diff))
	// Output:
	// a=S b=S
	// recomputed: 2
	// a: C raised to S
	// b: C raised to S
}

func ExampleSchema() {
	lat := minup.MustChainLattice("corp", "Public", "Secret")
	schema := minup.NewSchema(lat)
	schema.MustAddRelation("emp", []string{"id", "name", "salary"}, []string{"id"})
	if err := schema.AddFD("emp", []string{"name"}, []string{"salary"}); err != nil {
		panic(err)
	}
	secret, _ := lat.ParseLevel("Secret")
	set, err := schema.Constraints(
		[]minup.Requirement{{Rel: "emp", Attr: "salary", Level: secret}}, nil)
	if err != nil {
		panic(err)
	}
	res, err := minup.Solve(set, minup.Options{})
	if err != nil {
		panic(err)
	}
	lab, err := schema.ApplyAssignment(set, res.Assignment)
	if err != nil {
		panic(err)
	}
	nameLvl, _ := lab.Level("emp", "name")
	fmt.Println("emp.name:", lat.FormatLevel(nameLvl)) // raised by the FD
	fmt.Println("channels open:", len(schema.CheckInferenceClosed(lab)))
	// Output:
	// emp.name: Secret
	// channels open: 0
}

func ExampleNewMonitor() {
	lat := minup.MustChainLattice("mil", "U", "C", "S", "TS")
	mon := minup.NewMonitor(lat)
	s, _ := lat.ParseLevel("S")
	c, _ := lat.ParseLevel("C")
	u, _ := lat.ParseLevel("U")

	alice, err := mon.NewSubject("alice", s)
	if err != nil {
		panic(err)
	}
	sess, err := mon.Login(alice, c) // run below clearance
	if err != nil {
		panic(err)
	}
	fmt.Println("read U memo:", mon.CheckRead(sess, "memo", u).Allowed)
	fmt.Println("read S plan:", mon.CheckRead(sess, "plan", s).Allowed)
	fmt.Println("write S report:", mon.CheckWrite(sess, "report", s).Allowed)
	fmt.Println("write U wiki:", mon.CheckWrite(sess, "wiki", u).Allowed)
	fmt.Println("denials:", len(mon.Denials()))
	// Output:
	// read U memo: true
	// read S plan: false
	// write S report: true
	// write U wiki: false
	// denials: 2
}

// TestConcurrentSolves checks that a fully built ConstraintSet is safe to
// solve from many goroutines at once (each Solve owns its state; the set
// and lattice are read-only). Run with -race to make this meaningful.
func TestConcurrentSolves(t *testing.T) {
	lat := minup.Figure1B()
	set := minup.NewConstraintSet(lat)
	if err := set.ParseString(`
a >= L3
lub(a, b) >= L6
c >= a
b >= c
`); err != nil {
		t.Fatal(err)
	}
	ref, err := minup.Solve(set, minup.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := minup.Solve(set, minup.Options{})
			if err != nil {
				t.Error(err)
				return
			}
			if !res.Assignment.Equal(ref.Assignment) {
				t.Error("concurrent solve diverged")
			}
		}()
	}
	wg.Wait()
}
