package minup_test

// End-to-end integration tests: build and run every command and example
// binary and check their observable output. These exercise the same
// binaries a user runs, flag parsing included. They shell out to the Go
// tool, so they are skipped in -short mode.

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// runMain runs `go run ./<pkg> args...` with optional input files and
// returns combined output.
func runMain(t *testing.T, pkg string, args ...string) string {
	t.Helper()
	cmd := exec.Command("go", append([]string{"run", "./" + pkg}, args...)...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go run ./%s %v: %v\n%s", pkg, args, err, out)
	}
	return string(out)
}

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o600); err != nil {
		t.Fatal(err)
	}
	return path
}

func skipIfShort(t *testing.T) {
	t.Helper()
	if testing.Short() {
		t.Skip("integration test; skipped in -short mode")
	}
}

func TestIntegrationFigure2(t *testing.T) {
	skipIfShort(t)
	out := runMain(t, "cmd/figure2")
	if !strings.Contains(out, "reproduction matches the paper exactly") {
		t.Fatalf("figure2 output:\n%s", out)
	}
}

func TestIntegrationMinclass(t *testing.T) {
	skipIfShort(t)
	lat := writeTemp(t, "mil.lat", "chain mil\nlevels U C S TS\n")
	cons := writeTemp(t, "payroll.cons", `
salary >= C
lub(name, salary) >= TS
bonus >= salary
S >= rank
`)
	dot := filepath.Join(t.TempDir(), "graph.dot")
	out := runMain(t, "cmd/minclass",
		"-lattice", lat, "-constraints", cons,
		"-trace", "-check", "-explain", "name", "-dot", dot)
	for _, want := range []string{
		"bonus=C name=TS rank=U salary=C",
		"verified",
		"name = TS",
		"cannot lower",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("minclass output missing %q:\n%s", want, out)
		}
	}
	dotBytes, err := os.ReadFile(dot)
	if err != nil || !strings.Contains(string(dotBytes), "digraph constraints") {
		t.Errorf("dot export: %v", err)
	}
}

func TestIntegrationLabelschema(t *testing.T) {
	skipIfShort(t)
	lat := writeTemp(t, "h.lat", "chain hosp\nlevels Public Staff Confidential Restricted\n")
	schema := writeTemp(t, "h.schema", `
relation patient(patient_id, name, treatment, diagnosis) key(patient_id)
fd patient: treatment -> diagnosis
require patient.diagnosis >= Confidential
assoc patient(name, diagnosis) >= Restricted
`)
	out := runMain(t, "cmd/labelschema", "-lattice", lat, "-schema", schema, "-constraints")
	for _, want := range []string{
		"generated",
		"patient.diagnosis",
		"inference channels are closed",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("labelschema output missing %q:\n%s", want, out)
		}
	}
}

func TestIntegrationMinposet(t *testing.T) {
	skipIfShort(t)
	sat := writeTemp(t, "sat.cnf", "p cnf 3 2\n1 2 0\n2 -3 0\n")
	out := runMain(t, "cmd/minposet", "-cnf", sat, "-stats")
	if !strings.Contains(out, "SATISFIABLE (confirmed by DPLL)") {
		t.Fatalf("minposet output:\n%s", out)
	}
	unsat := writeTemp(t, "unsat.cnf", "p cnf 2 4\n1 2 0\n1 -2 0\n-1 2 0\n-1 -2 0\n")
	out = runMain(t, "cmd/minposet", "-cnf", unsat)
	if !strings.Contains(out, "UNSATISFIABLE (confirmed by DPLL)") {
		t.Fatalf("minposet unsat output:\n%s", out)
	}
}

func TestIntegrationLatticetool(t *testing.T) {
	skipIfShort(t)
	lat := writeTemp(t, "f.lat", `
explicit fig1b
elements 1 L1 L2 L3 L4 L5 L6
cover L6 L5 L4
cover L5 L3
cover L4 L2 L3
cover L3 L1
cover L2 L1
cover L1 1
`)
	out := runMain(t, "cmd/latticetool", "-lattice", lat, "info")
	for _, want := range []string{"height:  4", "size:    7", "top:     L6"} {
		if !strings.Contains(out, want) {
			t.Errorf("latticetool info missing %q:\n%s", want, out)
		}
	}
	out = runMain(t, "cmd/latticetool", "-lattice", lat, "check")
	if !strings.Contains(out, "ok: 7 elements") {
		t.Errorf("latticetool check:\n%s", out)
	}
	out = runMain(t, "cmd/latticetool", "-lattice", lat, "dot")
	if !strings.Contains(out, `"L6" -> "L5"`) {
		t.Errorf("latticetool dot:\n%s", out)
	}
}

func TestIntegrationExamples(t *testing.T) {
	skipIfShort(t)
	for _, tc := range []struct {
		pkg  string
		want []string
	}{
		{"examples/quickstart", []string{"minimal classification:", "all 4 constraints satisfied"}},
		{"examples/hospital", []string{"all FD inference channels closed", "Restricted subject"}},
		{"examples/military", []string{"footnote-4 fast path agrees", "correctly rejected"}},
		{"examples/satreduction", []string{"DPLL oracle agrees", "reduced and refuted"}},
		{"examples/filesystem", []string{"probed minimal: true", "TopSecret"}},
	} {
		t.Run(tc.pkg, func(t *testing.T) {
			out := runMain(t, tc.pkg)
			for _, want := range tc.want {
				if !strings.Contains(out, want) {
					t.Errorf("%s output missing %q:\n%s", tc.pkg, want, out)
				}
			}
		})
	}
}

func TestIntegrationBenchtabFast(t *testing.T) {
	skipIfShort(t)
	out := runMain(t, "cmd/benchtab", "-exp", "E1,E9")
	for _, want := range []string{"E1 — Figure 2 worked example", "E9 — semi-lattice handling"} {
		if !strings.Contains(out, want) {
			t.Errorf("benchtab output missing %q", want)
		}
	}
}
