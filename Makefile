# Developer entry points. `make ci` is what the CI workflow runs.

GO ?= go

.PHONY: all build test race vet fmt-check ci bench bench-json

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# gofmt -l prints offending files; fail when the list is non-empty.
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

ci: vet fmt-check race

bench:
	$(GO) test -bench . -benchmem ./...

# Machine-readable solver micro-benchmarks (fresh vs compiled paths).
bench-json:
	$(GO) run ./cmd/benchtab -solverjson BENCH_solver.json
