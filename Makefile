# Developer entry points. `make ci` is what the CI workflow runs.

GO ?= go

.PHONY: all build test race vet fmt-check ci bench bench-json bench-stats bench-trend smoke slo-smoke load-smoke cluster-smoke chaos fuzz-smoke shard-matrix

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# gofmt -l prints offending files; fail when the list is non-empty.
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

ci: vet fmt-check race

bench:
	$(GO) test -bench . -benchmem ./...

# Machine-readable solve-path benchmarks: the fresh/compiled split plus
# the policy catalog's memoized serve path, written to BENCH_solve.json
# (CI uploads it as an artifact).
bench-json:
	sh scripts/bench_json.sh

# bench-json plus the per-instance solver stats matrix (tries, collapses,
# lattice ops, durations, qian baseline rows). CI uploads the result.
bench-stats:
	$(GO) run ./cmd/benchtab -solverjson BENCH_solver.json -stats

# Bench-trend regression gate: rerun the solve-path benchmarks and compare
# against the committed BENCH_solve.json baseline with cmd/benchtrend.
# Fails on >20% ns/op regression or any allocs/op increase. Refresh the
# baseline deliberately with `make bench-json` and commit the result.
bench-trend:
	sh scripts/bench_trend.sh

# End-to-end HTTP smoke of minupd on the Figure 2(a) fixtures plus the
# durable policy catalog (create/append/cached-solve/restart); leaves a
# sample Chrome trace at artifacts/sample-trace.json.
smoke:
	sh scripts/smoke_minupd.sh

# Focused observability smoke: forced-degraded traffic must land in
# /debug/requests, leave Perfetto-loadable anomaly dumps under
# artifacts/anomalies (kept for CI upload), and move the SLO burn gauges.
slo-smoke:
	sh scripts/slo_smoke.sh

# Staged load smoke (~30s): cmd/minload's ramp, storm, and chaos stages
# against a fault-admin minupd, per-stage JSON under artifacts/load, plus
# the negative check that an impossibly tight gate fails the run.
load-smoke:
	sh scripts/load_smoke.sh

# Replication smoke (~15s): boot a 3-node cluster, write acked policies
# through the leader (via a follower 307), SIGKILL the leader, and assert
# failover, zero lost acked mutations, converged fingerprints, and the
# crashed node rejoining via snapshot resync. Status JSON lands under
# artifacts/cluster/.
cluster-smoke:
	sh scripts/cluster_smoke.sh

# The catalog suite under the race detector at the extremes of the shard
# spectrum: one shard (maximum lock contention, the pre-sharding shape) and
# four (cross-shard interleavings). Tests that pin their own shard count
# are unaffected; the rest read CATALOG_TEST_SHARDS via mustOpen.
shard-matrix:
	CATALOG_TEST_SHARDS=1 $(GO) test -race -count=1 ./internal/catalog ./internal/bus
	CATALOG_TEST_SHARDS=4 $(GO) test -race -count=1 ./internal/catalog ./internal/bus

# Fault-injection and resilience suites under the race detector: the
# concurrent chaos storm, panic isolation, admission/shedding, degraded
# serving, graceful-shutdown drain, and the catalog/WAL crash-recovery and
# torn-tail sweeps.
chaos:
	$(GO) test -race -run 'Chaos|Panic|Fault|Injected|Degrad|Shed|Drain|Shutdown|Ready|Gate|Crash|Torn|Recover|Partition|Catchup|Resyncs|OracleSweep' \
		./internal/fault ./internal/core ./cmd/minupd ./internal/catalog ./internal/wal ./internal/cluster \
		./internal/frontend/suppress ./internal/frontend/depinf

# Short fuzz of every fuzz target (go fuzzes one target per invocation).
FUZZTIME ?= 10s
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzParse$$' -fuzztime $(FUZZTIME) ./internal/lattice
	$(GO) test -run '^$$' -fuzz '^FuzzMLSParseLevel$$' -fuzztime $(FUZZTIME) ./internal/lattice
	$(GO) test -run '^$$' -fuzz '^FuzzParseString$$' -fuzztime $(FUZZTIME) ./internal/constraint
	$(GO) test -run '^$$' -fuzz '^FuzzParseDIMACS$$' -fuzztime $(FUZZTIME) ./internal/poset
	$(GO) test -run '^$$' -fuzz '^FuzzSolve$$' -fuzztime $(FUZZTIME) ./internal/core
	$(GO) test -run '^$$' -fuzz '^FuzzSuppressCompile$$' -fuzztime $(FUZZTIME) ./internal/frontend/suppress
	$(GO) test -run '^$$' -fuzz '^FuzzDepinfCompile$$' -fuzztime $(FUZZTIME) ./internal/frontend/depinf
