// Command quickstart is the smallest end-to-end use of the minup public
// API: declare a security lattice, state classification constraints in the
// textual format, compute the minimal classification, and print the
// solver's execution trace in the style of the paper's Figure 2(b).
package main

import (
	"fmt"
	"log"

	"minup"
)

func main() {
	// A four-level military chain: U < C < S < TS.
	lat := minup.MustChainLattice("military", "U", "C", "S", "TS")

	set := minup.NewConstraintSet(lat)
	err := set.ParseString(`
# Basic classification requirements.
salary     >= C
evaluation >= S

# Inference: the bonus is computed from the salary, so anyone who can see
# the bonus effectively sees the salary.
bonus >= salary

# Association: names and salaries are individually visible, but the pair
# reveals who earns what.
lub(name, salary) >= TS

# Visibility guarantee (§6 upper bound): the org chart must stay public.
U >= unit
`)
	if err != nil {
		log.Fatalf("parse: %v", err)
	}

	res, err := minup.Solve(set, minup.Options{RecordTrace: true})
	if err != nil {
		log.Fatalf("solve: %v", err)
	}

	fmt.Println("minimal classification:")
	fmt.Println(" ", set.FormatAssignment(res.Assignment))
	fmt.Println()
	fmt.Println("execution trace (cf. Figure 2(b) of the paper):")
	fmt.Println(res.Trace.Table())

	if v := set.Violations(res.Assignment); v != nil {
		log.Fatalf("internal error: violations %v", v)
	}
	fmt.Printf("all %d constraints satisfied; %d Try calls, %d Minlevel calls\n",
		len(set.Constraints()), res.Stats.Tries, res.Stats.MinlevelCalls)
}
