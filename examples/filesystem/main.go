// Command filesystem applies the classification machinery outside
// databases, as §1 of the paper suggests ("file systems, object-oriented
// databases, or component-based system designs"): a file tree where
//
//   - a directory must be classified no higher than any of its entries
//     (otherwise a user could see a file but not the path to it), which is
//     the constraint λ(child) ≽ λ(parent);
//   - build artifacts inherit the classification of their sources
//     (inference: the binary reveals the code), λ(artifact) ≽ λ(source);
//   - certain file *combinations* are more sensitive than the files
//     themselves (association), e.g. a key file together with the vault it
//     opens.
//
// The minimal labeling gives every path the lowest classification
// consistent with all of that, and Explain shows which rule pins any
// given file.
package main

import (
	"fmt"
	"log"
	"sort"
	"strings"

	"minup"
)

func main() {
	lat := minup.MustChainLattice("corp", "Public", "Internal", "Secret", "TopSecret")

	set := minup.NewConstraintSet(lat)
	files := map[string][]string{
		"/":               {"/src", "/build", "/ops"},
		"/src":            {"/src/app.go", "/src/crypto.go"},
		"/build":          {"/build/app.bin"},
		"/ops":            {"/ops/vault.db", "/ops/vault.key", "/ops/runbook.md"},
		"/src/app.go":     nil,
		"/src/crypto.go":  nil,
		"/build/app.bin":  nil,
		"/ops/vault.db":   nil,
		"/ops/vault.key":  nil,
		"/ops/runbook.md": nil,
	}
	attrOf := map[string]minup.Attr{}
	var paths []string
	for p := range files {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		attrOf[p] = set.MustAttr(pathAttr(p))
	}

	// Path visibility: every entry dominates its directory.
	for dir, entries := range files {
		for _, e := range entries {
			if err := set.Add([]minup.Attr{attrOf[e]}, minup.AttrRHS(attrOf[dir])); err != nil {
				log.Fatal(err)
			}
		}
	}
	// Content requirements and inference/association rules.
	if err := set.ParseString(`
` + pathAttr("/src/crypto.go") + ` >= Secret
` + pathAttr("/ops/vault.db") + ` >= Secret
# The binary is built from the sources: it reveals them.
` + pathAttr("/build/app.bin") + ` >= ` + pathAttr("/src/app.go") + `
` + pathAttr("/build/app.bin") + ` >= ` + pathAttr("/src/crypto.go") + `
# Key + vault together unlock everything.
lub(` + pathAttr("/ops/vault.key") + `, ` + pathAttr("/ops/vault.db") + `) >= TopSecret
# The runbook must stay readable by everyone on call.
Internal >= ` + pathAttr("/ops/runbook.md") + `
`); err != nil {
		log.Fatal(err)
	}

	res, err := minup.Solve(set, minup.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("minimal file labeling:")
	for _, p := range paths {
		fmt.Printf("  %-18s %s\n", p, lat.FormatLevel(res.Assignment[attrOf[p]]))
	}

	minimal, _, err := minup.ProbeMinimality(set, res.Assignment)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nprobed minimal: %v\n\n", minimal)

	for _, p := range []string{"/build/app.bin", "/ops/vault.key"} {
		ex, err := minup.Explain(set, res.Assignment, attrOf[p])
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(minup.FormatExplanation(set, ex))
	}
}

// pathAttr converts a path into an identifier the constraint grammar
// accepts (no slashes or dots).
func pathAttr(p string) string {
	if p == "/" {
		return "root"
	}
	r := strings.NewReplacer("/", "_", ".", "-")
	return strings.TrimPrefix(r.Replace(p), "_")
}
