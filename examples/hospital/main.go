// Command hospital demonstrates closing database inference channels with a
// minimal labeling (experiment E10's scenario): a hospital schema whose
// functional dependencies would let low-cleared staff infer confidential
// diagnoses, the classification constraints the schema generates, the
// minimal classification Algorithm 3.1 computes, and read-down query
// filtering over the labeled store showing the channel closed.
package main

import (
	"fmt"
	"log"
	"sort"

	"minup"
)

func main() {
	lat := minup.MustChainLattice("hospital", "Public", "Staff", "Confidential", "Restricted")
	lv := func(name string) minup.Level {
		l, err := lat.ParseLevel(name)
		if err != nil {
			log.Fatal(err)
		}
		return l
	}

	// Schema: patients and their doctors. The functional dependencies are
	// the inference channels: treatment → diagnosis (the treatment
	// protocol reveals the condition) and (ward, doctor) → diagnosis (in a
	// small hospital, placement plus specialist identifies the illness).
	schema := minup.NewSchema(lat)
	schema.MustAddRelation("patient",
		[]string{"patient_id", "name", "ward", "doctor", "treatment", "diagnosis"},
		[]string{"patient_id"})
	schema.MustAddRelation("doctor",
		[]string{"doctor_id", "name", "specialty"},
		[]string{"doctor_id"})
	must(schema.AddForeignKey("patient", []string{"doctor"}, "doctor"))
	must(schema.AddFD("patient", []string{"treatment"}, []string{"diagnosis"}))
	must(schema.AddFD("patient", []string{"ward", "doctor"}, []string{"diagnosis"}))

	reqs := []minup.Requirement{
		{Rel: "patient", Attr: "diagnosis", Level: lv("Confidential")},
		{Rel: "patient", Attr: "name", Level: lv("Staff")},
	}
	assocs := []minup.Association{
		// A name–diagnosis pair is more sensitive than either field alone.
		{Rel: "patient", Attrs: []string{"name", "diagnosis"}, Level: lv("Restricted")},
	}

	set, err := schema.Constraints(reqs, assocs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("schema generated %d classification constraints:\n", len(set.Constraints()))
	for _, c := range set.Constraints() {
		fmt.Println("  ", set.Format(c))
	}

	res, err := minup.Solve(set, minup.Options{})
	if err != nil {
		log.Fatal(err)
	}
	lab, err := schema.ApplyAssignment(set, res.Assignment)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nminimal labeling:")
	for _, rel := range schema.Relations() {
		attrs := append([]string(nil), rel.Attrs...)
		sort.Strings(attrs)
		for _, a := range attrs {
			l, _ := lab.Level(rel.Name, a)
			fmt.Printf("  %-22s %s\n", rel.Name+"."+a, lat.FormatLevel(l))
		}
	}

	if open := schema.CheckInferenceClosed(lab); open != nil {
		log.Fatalf("inference channels remain open: %v", open)
	}
	fmt.Println("\nall FD inference channels closed.")

	// Populate the labeled store and show read-down filtering.
	store := minup.NewStore(schema, lab)
	must(store.Insert("doctor", lv("Staff"), map[string]string{
		"doctor_id": "d1", "name": "Dr. Wu", "specialty": "oncology",
	}))
	must(store.Insert("patient", lv("Restricted"), map[string]string{
		"patient_id": "p1", "name": "Ada Lovelace", "ward": "W3",
		"doctor": "d1", "treatment": "chemo", "diagnosis": "leukemia",
	}))

	for _, subject := range []string{"Staff", "Restricted"} {
		rows, err := store.Select("patient", lv(subject), nil)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nSELECT * FROM patient AS %s subject → %d row(s)\n", subject, len(rows))
		for _, row := range rows {
			fmt.Printf("  %v\n", row)
		}
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
