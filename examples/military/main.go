// Command military exercises the compartmented MLS lattice of the paper's
// Figure 1(a) on a logistics scenario: individually unclassified fields
// become sensitive in association (origin + destination reveal a route;
// cargo + schedule reveal a nuclear movement), and the §6 upper-bound
// constraints guarantee that the public manifest stays public. The example
// prints the minimal labeling and demonstrates inconsistency detection
// when a visibility guarantee collides with a secrecy requirement.
package main

import (
	"errors"
	"fmt"
	"log"

	"minup"
)

func main() {
	lat, err := minup.NewMLSLattice("logistics",
		[]string{"U", "S", "TS"},
		[]string{"Army", "Nuclear"})
	if err != nil {
		log.Fatal(err)
	}

	set := minup.NewConstraintSet(lat)
	err = set.ParseString(`
# Explicit requirements.
cargo     >= <S,{Nuclear}>
commander >= <S,{Army}>

# Inference: the published schedule determines the cargo type.
schedule >= cargo

# Associations: either endpoint of a route is harmless, the pair is not;
# cargo plus schedule reveal a nuclear movement.
lub(origin, destination) >= <S,{Army}>
lub(cargo, schedule)     >= <TS,{Nuclear}>

# Visibility guarantee: the depot list is public.
<U,{}> >= depot_list
`)
	if err != nil {
		log.Fatal(err)
	}

	res, err := minup.Solve(set, minup.Options{RecordTrace: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("minimal labeling over", lat.Name(), "(", lat.Count(), "access classes ):")
	fmt.Println(" ", set.FormatAssignment(res.Assignment))
	fmt.Println()
	fmt.Println(res.Trace.Table())

	// The footnote-4 closed form was used: compare against the generic
	// descent to show they agree.
	generic, err := minup.Solve(set, minup.Options{DisableMinComplement: true})
	if err != nil {
		log.Fatal(err)
	}
	if !res.Assignment.Equal(generic.Assignment) {
		log.Fatal("fast path diverged from generic Minlevel")
	}
	fmt.Println("footnote-4 fast path agrees with generic lattice descent.")

	// Inconsistency detection (§6): demand the schedule stay unclassified
	// while it must dominate <S,{Nuclear}> through the inference chain.
	bad := minup.NewConstraintSet(lat)
	err = bad.ParseString(`
cargo    >= <S,{Nuclear}>
schedule >= cargo
<U,{}>   >= schedule
`)
	if err != nil {
		log.Fatal(err)
	}
	_, err = minup.Solve(bad, minup.Options{})
	var ie *minup.InconsistencyError
	if !errors.As(err, &ie) {
		log.Fatalf("expected inconsistency, got %v", err)
	}
	fmt.Println("\nconflicting visibility guarantee correctly rejected:")
	for _, c := range ie.Conflicts {
		fmt.Println("  ", c)
	}
}
