// Command satreduction walks through Theorem 6.1 of the paper on its own
// example: the formula (P ∨ Q) ∧ (Q ∨ ¬R) is reduced to a min-poset
// instance over the partial order of Figure 4(a); the instance is solved
// by backtracking search and the satisfying truth assignment is read back
// from the attribute levels. The four-element poset of Figure 4(b) — the
// smallest non-partial-lattice — is shown as the source of the hardness.
package main

import (
	"fmt"
	"log"

	"minup"
)

func main() {
	// Figure 4(b): two upper elements each dominating two lower elements.
	fig4b := minup.Figure4B()
	c, _ := fig4b.ElemByName("c")
	d, _ := fig4b.ElemByName("d")
	fmt.Println("Figure 4(b): minimal upper bounds of {c,d}:")
	for _, e := range fig4b.MinimalUpperBounds(c, d) {
		fmt.Println("  ", fig4b.ElemName(e))
	}
	fmt.Println("two incomparable choices -> the order is not a (partial) lattice,")
	fmt.Println("and each such pair forces a branching decision on the solver.")

	// The paper's running formula: (P ∨ Q) ∧ (Q ∨ ¬R), P=0 Q=1 R=2.
	clauses := []minup.SATClause{{0, 1}, {1, ^2}}
	names := []string{"P", "Q", "R"}

	red, err := minup.ReduceSAT(3, clauses)
	if err != nil {
		log.Fatal(err)
	}
	p := red.Instance.P
	fmt.Printf("\nreduction poset for (P∨Q)∧(Q∨¬R): %d elements, partial lattice: %v\n",
		p.Size(), p.IsPartialLattice())

	m, stats, err := red.Instance.Solve(0)
	if err != nil {
		log.Fatal(err)
	}
	if m == nil {
		log.Fatal("reduced instance unsatisfiable — but the formula is satisfiable")
	}
	fmt.Printf("min-poset solved in %d search nodes (%d backtracks):\n",
		stats.Nodes, stats.Backtracks)
	fmt.Println("  ", red.Instance.FormatAssignment(m))

	asg := red.Extract(m)
	fmt.Println("\nextracted truth assignment:")
	for i, v := range asg {
		fmt.Printf("   %s = %v\n", names[i], v)
	}

	// Cross-check with the DPLL oracle.
	oracle, ok := minup.SolveSAT(3, clauses)
	if !ok {
		log.Fatal("DPLL disagrees: formula unsatisfiable?")
	}
	fmt.Printf("\nDPLL oracle agrees the formula is satisfiable (e.g. P=%v Q=%v R=%v).\n",
		oracle[0], oracle[1], oracle[2])

	// And the negative direction: an unsatisfiable formula reduces to an
	// unsolvable min-poset instance.
	unsat := []minup.SATClause{{0, 1}, {0, ^1}, {^0, 1}, {^0, ^1}}
	red2, err := minup.ReduceSAT(2, unsat)
	if err != nil {
		log.Fatal(err)
	}
	m2, stats2, err := red2.Instance.Solve(0)
	if err != nil {
		log.Fatal(err)
	}
	if m2 != nil {
		log.Fatal("unsatisfiable formula produced a solvable instance")
	}
	fmt.Printf("\nunsatisfiable 2-SAT square reduced and refuted after %d nodes.\n", stats2.Nodes)
}
