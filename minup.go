// Package minup is a from-scratch Go implementation of
//
//	S. Dawson, S. De Capitani di Vimercati, P. Lincoln, P. Samarati:
//	"Minimal Data Upgrading to Prevent Inference and Association Attacks",
//	PODS 1999.
//
// It computes security classifications for database attributes from
// classification constraints — explicit level requirements, inference and
// association constraints, and the integrity constraints of multilevel
// relational models — such that every constraint is satisfied and no
// attribute is classified higher than necessary (a pointwise-minimal
// classification), in low-order polynomial time: linear in the constraint
// size for acyclic constraint sets and quadratic in the worst cyclic case
// (Theorem 5.2 of the paper).
//
// # Quick start
//
//	lat := minup.MustChainLattice("mil", "U", "C", "S", "TS")
//	set := minup.NewConstraintSet(lat)
//	_ = set.ParseString(`
//	    salary >= C
//	    lub(name, salary) >= TS
//	    rank >= salary
//	`)
//	compiled := minup.Compile(set)
//	res, _ := minup.SolveContext(context.Background(), compiled, minup.Options{})
//	fmt.Println(set.FormatAssignment(res.Assignment))
//	// name=TS rank=C salary=C
//
// Compile performs the one-time analysis of the constraint set (constraint
// graph, strongly connected components, evaluation priorities, §6
// upper-bound fixpoint) and freezes the set; SolveContext then answers any
// number of solve requests against the immutable snapshot. The one-shot
// Solve(set, opt) remains as a convenience for throwaway instances — it
// compiles a fresh snapshot on every call, so hot paths that solve the
// same set repeatedly (or concurrently) should prefer Compile +
// SolveContext and will see both lower latency and far fewer allocations.
//
// # Concurrency
//
// A *CompiledSet is immutable and safe for unlimited concurrent use: any
// number of goroutines may call SolveContext, RepairContext,
// ProbeMinimalityContext, ExplainContext, and DeriveUpperBoundsContext
// against the same compiled snapshot simultaneously. All per-solve state
// lives in pooled solver sessions; results share only read-only compiled
// data (Result.Priorities, Result.UpperBounds).
//
// A *ConstraintSet is NOT safe for concurrent mutation: guard it
// externally, or call Compile, after which further mutation is rejected
// with ErrFrozen and the frozen set is safe to read from any goroutine.
// Lattices are immutable after construction and safe to share. The MAC
// reference monitor (Monitor) carries its own internal mutex and may be
// used from multiple goroutines directly.
//
// The package is a thin façade over the implementation packages: security
// lattices (explicit Hasse diagrams, chains, powersets, compartmented MLS
// lattices with single-word encodings, products, and §6 semi-lattice
// completion), classification constraints with a textual format,
// Algorithm 3.1 itself with optional execution traces, §6 upper-bound
// support with inconsistency detection, a multilevel relational schema
// layer that generates constraints from keys, foreign keys, and data
// dependencies, and the Theorem 6.1 min-poset machinery.
package minup

import (
	"context"
	"io"
	"time"

	"minup/internal/baseline"
	"minup/internal/bus"
	"minup/internal/catalog"
	"minup/internal/cluster"
	"minup/internal/constraint"
	"minup/internal/core"
	"minup/internal/fault"
	"minup/internal/frontend"
	_ "minup/internal/frontend/depinf"
	_ "minup/internal/frontend/suppress"
	"minup/internal/lattice"
	"minup/internal/mac"
	"minup/internal/mlsdb"
	"minup/internal/obs"
	"minup/internal/poset"
	"minup/internal/wal"
	"minup/internal/workload"
)

// Lattice types.
type (
	// Lattice is a security lattice of access classes: a partial order
	// with least-upper-bound and greatest-lower-bound operations.
	Lattice = lattice.Lattice
	// Level is an opaque handle for one access class of a specific
	// Lattice.
	Level = lattice.Level
	// Enumerable is a lattice small enough to list exhaustively.
	Enumerable = lattice.Enumerable
	// ExplicitLattice is an arbitrary finite lattice given by its Hasse
	// diagram, with closure-bitset encoded constant-time operations.
	ExplicitLattice = lattice.Explicit
	// ChainLattice is a totally ordered lattice.
	ChainLattice = lattice.Chain
	// PowersetLattice is the lattice of subsets of a small category
	// universe.
	PowersetLattice = lattice.Powerset
	// MLSLattice is the compartmented military lattice of
	// (classification, category set) pairs, encoded in a machine word.
	MLSLattice = lattice.MLS
	// ProductLattice is the component-wise product of two enumerable
	// lattices.
	ProductLattice = lattice.Product
)

// Constraint types.
type (
	// ConstraintSet is a set of classification constraints (Definition
	// 2.1) plus optional §6 upper bounds, over one lattice.
	ConstraintSet = constraint.Set
	// Attr identifies an attribute within a ConstraintSet.
	Attr = constraint.Attr
	// Constraint is one lower-bound constraint lub{λ(lhs)} ≽ rhs.
	Constraint = constraint.Constraint
	// RHS is a constraint right-hand side: a level constant or an
	// attribute.
	RHS = constraint.RHS
	// Assignment maps each attribute of a ConstraintSet to a level — the
	// classification λ.
	Assignment = constraint.Assignment
	// CompiledSet is an immutable compiled snapshot of a ConstraintSet —
	// graph, SCC condensation, priorities, and §6 fixpoint precomputed —
	// safe for concurrent use by any number of solver sessions.
	CompiledSet = constraint.Compiled
)

// Typed errors. Match with errors.Is.
var (
	// ErrUnsolvable reports that a constraint set admits no solution
	// (wrapped by *InconsistencyError).
	ErrUnsolvable = core.ErrUnsolvable
	// ErrCanceled reports that a Context variant stopped early because its
	// context was canceled or timed out.
	ErrCanceled = core.ErrCanceled
	// ErrNotCompiled reports a nil *CompiledSet.
	ErrNotCompiled = core.ErrNotCompiled
	// ErrFrozen reports mutation of a ConstraintSet after Compile.
	ErrFrozen = constraint.ErrFrozen
	// ErrInternal reports a solver panic converted to an error by the
	// recovery guard; the concrete error is an *InternalError carrying the
	// recovered value and stack.
	ErrInternal = core.ErrInternal
	// ErrFaultInjected reports a cancellation injected by an armed
	// FaultInjector (chaos testing only).
	ErrFaultInjected = fault.ErrInjected
)

// Solver types.
type (
	// Options tunes Solve.
	Options = core.Options
	// Result is the outcome of Solve: the minimal classification, the
	// priority structure, optional trace, and operation counts.
	Result = core.Result
	// Trace is a step-by-step record of the solver's execution, printable
	// as the paper's Figure 2(b) table.
	Trace = core.Trace
	// InconsistencyError reports that upper- and lower-bound constraints
	// clash (§6).
	InconsistencyError = core.InconsistencyError
	// InternalError is a solver panic converted to a typed error: the
	// recovered value plus the stack captured at recovery. It unwraps to
	// ErrInternal; the panicking solver session is discarded, so later
	// solves are unaffected.
	InternalError = core.InternalError
	// FaultInjector is a deterministic, seedable chaos-testing injector
	// that delays, cancels, or panics at the solver's named fault points.
	// Arm one via Options.Fault (or minupd's -fault flag); nil is the
	// production value and keeps the hot path allocation-free.
	FaultInjector = fault.Injector
	// FaultRule arms one fault at one named point of a FaultInjector.
	FaultRule = fault.Rule
)

// Observability types. Telemetry is strictly opt-in: with no sink installed
// and no registry configured, a solve pays one nil check per step.
type (
	// SolveStats is the per-solve operation-count block of Result.Stats:
	// tries, failed tries, collapses, attributes processed, lattice op
	// counts, session-pool hit/miss, and wall time.
	SolveStats = core.Stats
	// CompileStats reports the one-time work performed by Compile,
	// including the §6 upper-bound fixpoint's operation counts.
	CompileStats = constraint.CompileStats
	// LatticeOpCounts tallies primitive lattice operations (lub, glb,
	// dominance, covers); populated when Options.CollectLatticeOps is set.
	LatticeOpCounts = lattice.OpCounts
	// MetricsRegistry is a named collection of atomic counters and
	// histograms that snapshots to a stable JSON shape; share one across
	// concurrent solves via Options.Metrics.
	MetricsRegistry = obs.Registry
	// MetricsSnapshot is the point-in-time JSON shape of a MetricsRegistry.
	MetricsSnapshot = obs.Snapshot
	// SolveEvent is one solver step (kind, attribute, level, SCC id),
	// streamed by value to an EventSink.
	SolveEvent = obs.Event
	// SolveEventKind classifies a SolveEvent.
	SolveEventKind = obs.EventKind
	// EventSink receives the solver's event stream; install one with
	// Options.Sink or CompiledSet.WithSink.
	EventSink = obs.EventSink
	// SinkFunc adapts a function to the EventSink interface.
	SinkFunc = obs.SinkFunc
	// TeeSink fans one event stream out to several sinks.
	TeeSink = obs.TeeSink
	// CountingSink tallies events by kind into registry counters.
	CountingSink = obs.CountingSink
	// MetricsGauge is an instantaneous signed value (in-flight requests,
	// pool sizes); obtain one with MetricsRegistry.Gauge.
	MetricsGauge = obs.Gauge
	// Tracer mints trace spans. The zero value is deterministic (for
	// tests); NewTracer seeds the trace ID with entropy.
	Tracer = obs.Tracer
	// Span is one timed region of a trace; spans form a tree.
	Span = obs.Span
	// SpanAttr is one key/value annotation on a Span.
	SpanAttr = obs.SpanAttr
	// SpanNode is the serializable JSON tree shape of a finished Span.
	SpanNode = obs.SpanNode
	// FlightRecorder is the bounded-memory ring of per-request and
	// per-refresh flight records with anomaly dumping; minupd serves it as
	// /debug/requests.
	FlightRecorder = obs.FlightRecorder
	// FlightOptions tunes a FlightRecorder.
	FlightOptions = obs.FlightOptions
	// FlightRecord is one completed request's or refresh job's compact
	// record.
	FlightRecord = obs.FlightRecord
	// FlightStats is the compact solver-work summary on a FlightRecord.
	FlightStats = obs.FlightStats
	// FlightSnapshot is the JSON shape of a recorder's state.
	FlightSnapshot = obs.FlightSnapshot
	// ActiveFlight is one in-flight request's recording handle.
	ActiveFlight = obs.ActiveFlight
	// SLOTracker computes per-route multi-window burn rates.
	SLOTracker = obs.SLOTracker
	// SLOSpec is one route's objectives (p99 latency, availability).
	SLOSpec = obs.SLOSpec
	// SLOStatus is one route's burn-rate readout.
	SLOStatus = obs.SLOStatus
	// RuntimeCollector periodically samples process health (goroutines,
	// heap, GC pause, WAL fsync p99) and SLO burn gauges into a registry.
	RuntimeCollector = obs.Collector
	// PromMetrics is a parsed Prometheus text-format scrape; see
	// ParsePrometheus.
	PromMetrics = obs.PromMetrics
	// PromSample is one sample line of a PromMetrics.
	PromSample = obs.PromSample
)

// Solver event kinds, mirroring the steps of Algorithm 3.1.
const (
	EventAssign    = obs.EventAssign
	EventTry       = obs.EventTry
	EventTryFailed = obs.EventTryFailed
	EventLower     = obs.EventLower
	EventCollapse  = obs.EventCollapse
	EventDone      = obs.EventDone
	EventTryStep   = obs.EventTryStep
)

// NewMetricsRegistry returns an empty metrics registry. Pass it as
// Options.Metrics to aggregate solve stats under the "solve.*" names, call
// its Publish method to expose it through expvar, and WriteJSON to dump it.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// NewCountingSink registers one counter per event kind under prefix in r
// and returns the sink; each event costs one atomic add.
func NewCountingSink(r *MetricsRegistry, prefix string) *CountingSink {
	return obs.NewCountingSink(r, prefix)
}

// Default histogram bucket bounds shared by the solver's canonical metrics.
var (
	// DurationBucketsUS spans 1µs–10s for latency histograms.
	DurationBucketsUS = obs.DurationBucketsUS
	// SizeBuckets spans 1–100k for operation-count histograms.
	SizeBuckets = obs.SizeBuckets
)

// NewFlightRecorder builds a flight recorder; see FlightOptions for the
// ring size, anomaly dump directory, and triggers.
func NewFlightRecorder(opt FlightOptions) *FlightRecorder { return obs.NewFlightRecorder(opt) }

// ParseSLOSpecs parses the -slo flag grammar, e.g.
// "solve:p99=100ms,avail=99.9;policy.solve:p99=50ms".
func ParseSLOSpecs(s string) ([]SLOSpec, error) { return obs.ParseSLOSpecs(s) }

// NewSLOTracker builds a burn-rate tracker for the given objectives.
func NewSLOTracker(specs ...SLOSpec) *SLOTracker { return obs.NewSLOTracker(specs...) }

// ParsePrometheus parses text-exposition-format metrics (the output of
// WritePrometheus, or any 0.0.4 scrape) into a queryable PromMetrics:
// sample lookup by name and labels, and reconstruction of cumulative
// _bucket series back into HistogramSnapshots. Load harnesses and smoke
// tests use it to assert on a live server's /metrics?format=prometheus.
func ParsePrometheus(r io.Reader) (*PromMetrics, error) { return obs.ParsePrometheus(r) }

// NewRuntimeCollector builds the periodic runtime/SLO sampler (interval
// <= 0 defaults to 10s). Call Start, and Stop on drain.
func NewRuntimeCollector(reg *MetricsRegistry, slo *SLOTracker, interval time.Duration) *RuntimeCollector {
	return obs.NewCollector(reg, slo, interval)
}

// SessionsAllocated reports how many pooled solver sessions the process has
// ever allocated — an upper bound on the session pool's current size and a
// proxy for peak solve concurrency. Servers export it as a gauge.
func SessionsAllocated() int64 { return core.SessionsAllocated() }

// PanicsRecovered reports how many solver panics the process has recovered
// from (each converted to an *InternalError and its session discarded).
// Servers export it as a gauge next to the pool size.
func PanicsRecovered() int64 { return core.PanicsRecovered() }

// NewFaultInjector returns an empty chaos-testing injector whose
// probabilistic rules draw from a PRNG seeded with seed.
func NewFaultInjector(seed int64) *FaultInjector { return fault.New(seed) }

// ParseFaultSpec builds a FaultInjector from the textual rule list used by
// minupd's -fault flag, e.g. "solve.step:delay:%1:5ms;pool.get:panic:3".
// See the fault package's ParseSpec for the grammar.
func ParseFaultSpec(spec string, seed int64) (*FaultInjector, error) {
	return fault.ParseSpec(spec, seed)
}

// NewTracer returns a tracer with a random trace ID. Start a root span,
// attach it to a context with ContextWithSpan, and pass that context to
// CompileContext / SolveContext / RepairContext to collect a span tree.
func NewTracer() *Tracer { return obs.NewTracer() }

// ContextWithSpan returns a context carrying sp as the active span; solver
// entry points attach their spans as children of it.
func ContextWithSpan(ctx context.Context, sp *Span) context.Context {
	return obs.ContextWithSpan(ctx, sp)
}

// SpanFromContext returns the active span, or nil for an uninstrumented
// context.
func SpanFromContext(ctx context.Context) *Span { return obs.SpanFromContext(ctx) }

// WriteChromeTrace serializes span trees as Chrome trace-event JSON,
// loadable in Perfetto (ui.perfetto.dev) or chrome://tracing.
func WriteChromeTrace(w io.Writer, roots ...*Span) error {
	return obs.WriteChromeTrace(w, roots...)
}

// WriteFlameSummary writes a human-readable flame-style summary of one span
// tree (same-named siblings aggregated, sorted by total duration).
func WriteFlameSummary(w io.Writer, root *Span) error {
	return obs.WriteFlameSummary(w, root)
}

// Multilevel database types.
type (
	// Schema is a relational schema whose structure (keys, foreign keys,
	// dependencies) generates classification constraints.
	Schema = mlsdb.Schema
	// Requirement is an explicit per-attribute classification requirement.
	Requirement = mlsdb.Requirement
	// Association is an explicit association constraint over several
	// attributes of one relation.
	Association = mlsdb.Association
	// Labeling maps schema attributes to computed levels.
	Labeling = mlsdb.Labeling
	// Store is a labeled in-memory storage engine with read-down
	// filtering and polyinstantiation.
	Store = mlsdb.Store
)

// Poset types (Theorem 6.1 machinery).
type (
	// Poset is an arbitrary finite partial order.
	Poset = poset.Poset
	// MinPosetInstance is a min-poset problem instance over a Poset.
	MinPosetInstance = poset.Instance
)

// NewChainLattice builds a totally ordered lattice from level names listed
// bottom-up.
func NewChainLattice(name string, bottomUp ...string) (*ChainLattice, error) {
	return lattice.NewChain(name, bottomUp...)
}

// MustChainLattice is NewChainLattice that panics on error.
func MustChainLattice(name string, bottomUp ...string) *ChainLattice {
	return lattice.MustChain(name, bottomUp...)
}

// NewMLSLattice builds a compartmented lattice from classification names
// (bottom-up) and category names.
func NewMLSLattice(name string, levels, categories []string) (*MLSLattice, error) {
	return lattice.NewMLS(name, levels, categories)
}

// NewPowersetLattice builds the subset lattice over category names.
func NewPowersetLattice(name string, categories ...string) (*PowersetLattice, error) {
	return lattice.NewPowerset(name, categories...)
}

// NewExplicitLattice builds an arbitrary finite lattice from its Hasse
// diagram: covers maps each element to its immediate descendants, in the
// left-to-right order lattice descents will follow.
func NewExplicitLattice(name string, elements []string, covers map[string][]string) (*ExplicitLattice, error) {
	return lattice.NewExplicit(name, elements, covers)
}

// CompleteSemiLattice builds a lattice from a cover relation that may lack
// a top and/or bottom, injecting dummy extremes per §6 of the paper. Use
// DiagnoseSemiLattice on the solve result to interpret attributes pinned
// at a dummy level.
func CompleteSemiLattice(name string, elements []string, covers map[string][]string) (*ExplicitLattice, error) {
	l, _, err := lattice.CompleteToLattice(name, elements, covers)
	return l, err
}

// ParseLattice reads a lattice description in the text format documented
// at lattice.Parse (chain / mls / explicit / semilattice).
func ParseLattice(r io.Reader) (Lattice, error) { return lattice.Parse(r) }

// Figure1A returns the compartmented example lattice of the paper's
// Figure 1(a).
func Figure1A() *MLSLattice { return lattice.FigureOneA() }

// Figure1B returns the seven-element example lattice of Figure 1(b), used
// by the worked example of Figure 2.
func Figure1B() *ExplicitLattice { return lattice.FigureOneB() }

// AttrRHS returns a constraint right-hand side holding an attribute.
func AttrRHS(a Attr) RHS { return constraint.AttrRHS(a) }

// LevelRHS returns a constraint right-hand side holding a level constant.
func LevelRHS(l Level) RHS { return constraint.LevelRHS(l) }

// NewConstraintSet returns an empty constraint set over the lattice.
// Populate it with AddAttr/Add/AddUpper or the textual ParseString /
// ParseInto format.
func NewConstraintSet(lat Lattice) *ConstraintSet { return constraint.NewSet(lat) }

// NewSchema returns an empty multilevel relational schema over the
// lattice.
func NewSchema(lat Lattice) *Schema { return mlsdb.NewSchema(lat) }

// NewStore creates an empty multilevel store over a schema and a labeling
// computed for it.
func NewStore(schema *Schema, labeling *Labeling) *Store {
	return mlsdb.NewStore(schema, labeling)
}

// Compile freezes the constraint set and returns an immutable compiled
// snapshot: constraint graph, SCC condensation, evaluation priorities, and
// the §6 upper-bound fixpoint, computed once. After Compile, mutators on
// the set return ErrFrozen. The snapshot is safe for concurrent use.
func Compile(set *ConstraintSet) *CompiledSet {
	return set.Compile()
}

// Solve computes a minimal classification for the constraint set with
// Algorithm 3.1 of the paper. Lower-bound-only instances always succeed;
// instances with upper bounds return *InconsistencyError when
// unsatisfiable.
//
// Solve compiles a throwaway snapshot on every call and cannot be
// canceled. Hot paths solving one set repeatedly — and any concurrent use
// — should migrate to Compile + SolveContext, which amortizes the
// compilation and recycles solver state across calls.
func Solve(set *ConstraintSet, opt Options) (*Result, error) {
	return core.Solve(set, opt)
}

// SolveContext solves a compiled set. It may be called concurrently from
// any number of goroutines on the same *CompiledSet. A canceled context
// aborts the solve promptly with an error satisfying
// errors.Is(err, ErrCanceled).
func SolveContext(ctx context.Context, compiled *CompiledSet, opt Options) (*Result, error) {
	return core.SolveContext(ctx, compiled, opt)
}

// CheckSolvable reports nil when the constraint set has a solution (§6
// preprocessing; lower-bound-only sets are always solvable).
func CheckSolvable(set *ConstraintSet) error { return core.CheckSolvable(set) }

// DeriveUpperBounds runs the §6 preprocessing pass alone, returning each
// attribute's firm maximum level or an *InconsistencyError.
func DeriveUpperBounds(set *ConstraintSet) (Assignment, error) {
	return core.DeriveUpperBounds(set)
}

// DeriveUpperBoundsContext returns the §6 preprocessing result cached in a
// compiled set: the firm maximum level of every attribute, or an
// *InconsistencyError.
func DeriveUpperBoundsContext(ctx context.Context, compiled *CompiledSet) (Assignment, error) {
	return core.DeriveUpperBoundsContext(ctx, compiled)
}

// Verification and explanation types.
type (
	// Witness is a strictly lower satisfying assignment, evidence that an
	// assignment probed by ProbeMinimality is not minimal.
	Witness = core.Witness
	// Explanation reports the constraints that pin one attribute at its
	// level.
	Explanation = core.Explanation
)

// Verify checks that an assignment satisfies every constraint of the set,
// returning nil on success. It is one linear pass over the constraints —
// the guard a serving layer runs before returning any assignment it did
// not obtain from the minimal solver, such as the Qian baseline served
// under overload degradation.
func Verify(set *ConstraintSet, m Assignment) error { return core.Verify(set, m) }

// QianBaseline computes a satisfying but generally over-classified
// assignment with the polynomial least-fixpoint propagation of [13] (§4,
// experiment E5): every violated constraint upgrades all of its left-hand
// side attributes. The result satisfies every secrecy, inference, and
// association constraint by construction — it is safe to serve, merely
// non-minimal — which makes it the principled degradation target when a
// minimal solve cannot finish inside its budget. Upper-bound constraint
// sets are not supported.
func QianBaseline(ctx context.Context, set *ConstraintSet) (Assignment, error) {
	return baseline.QianContext(ctx, set)
}

// CountUpgraded returns the number of attributes classified strictly above
// lattice bottom — the over-classification cost measure of the
// optimal-upgrading literature, reported by degraded minupd responses as
// the delta against the last minimal solve.
func CountUpgraded(set *ConstraintSet, m Assignment) int {
	return baseline.CountUpgraded(set, m)
}

// ProbeMinimality checks an arbitrary satisfying assignment for pointwise
// minimality in polynomial time, by attempting every one-step lowering
// with forward propagation — usable far beyond exhaustive search.
func ProbeMinimality(set *ConstraintSet, m Assignment) (minimal bool, w *Witness, err error) {
	return core.ProbeMinimality(set, m)
}

// ProbeMinimalityContext is ProbeMinimality against a compiled snapshot,
// with periodic cancellation checks. Safe for concurrent use.
func ProbeMinimalityContext(ctx context.Context, compiled *CompiledSet, m Assignment) (minimal bool, w *Witness, err error) {
	return core.ProbeMinimalityContext(ctx, compiled, m)
}

// Explain reports, for each level immediately below m[attr], one
// constraint that breaks if the attribute is lowered there.
func Explain(set *ConstraintSet, m Assignment, attr Attr) (*Explanation, error) {
	return core.Explain(set, m, attr)
}

// ExplainContext is Explain against a compiled snapshot. Safe for
// concurrent use.
func ExplainContext(ctx context.Context, compiled *CompiledSet, m Assignment, attr Attr) (*Explanation, error) {
	return core.ExplainContext(ctx, compiled, m, attr)
}

// FormatExplanation renders an Explanation for humans.
func FormatExplanation(set *ConstraintSet, ex *Explanation) string {
	return core.FormatExplanation(set, ex)
}

// Mandatory access-control types (the Bell–LaPadula substrate of §1).
type (
	// Monitor is a reference monitor enforcing no-read-up and
	// no-write-down over one security lattice, with an audit log.
	Monitor = mac.Monitor
	// Subject is a cleared principal.
	Subject = mac.Subject
	// Session is a subject logged in at a level its clearance dominates.
	Session = mac.Session
	// FlowSim is a taint-tracking information-flow simulation over
	// labeled objects, used to demonstrate that a labeling plus the
	// monitor prevents leakage.
	FlowSim = mac.FlowSim
)

// NewMonitor creates a reference monitor for the lattice.
func NewMonitor(lat Lattice) *Monitor { return mac.NewMonitor(lat) }

// NewFlowSim builds an information-flow simulation over labeled objects.
func NewFlowSim(mon *Monitor, levels map[string]Level) *FlowSim {
	return mac.NewFlowSim(mon, levels)
}

// Incremental repair types.
type (
	// RepairOptions tunes Repair.
	RepairOptions = core.RepairOptions
	// RepairStats reports how much work a Repair did.
	RepairStats = core.RepairStats
)

// Repair extends a minimal solution after constraints were appended to the
// set, recomputing only the attributes the additions can force upward.
// base must satisfy the first baseCount constraints (typically a previous
// Solve result before the additions).
func Repair(set *ConstraintSet, baseCount int, base Assignment, opt RepairOptions) (Assignment, *RepairStats, error) {
	return core.Repair(set, baseCount, base, opt)
}

// RepairContext is Repair with cancellation: the partial solve and any
// fallback full solve poll the context.
func RepairContext(ctx context.Context, set *ConstraintSet, baseCount int, base Assignment, opt RepairOptions) (Assignment, *RepairStats, error) {
	return core.RepairContext(ctx, set, baseCount, base, opt)
}

// NewPoset builds an arbitrary finite partial order from its cover
// relation; unlike lattices, posets need not have unique bounds, which is
// where minimal classification turns NP-complete (Theorem 6.1).
func NewPoset(name string, elements []string, covers map[string][]string) (*Poset, error) {
	return poset.FromCovers(name, elements, covers)
}

// Figure4B returns the four-element non-lattice poset of the paper's
// Figure 4(b).
func Figure4B() *Poset { return poset.Figure4B() }

// SATClause is one CNF clause for the Theorem 6.1 machinery: positive
// literal i is variable i, negative is ^i.
type SATClause = poset.Clause

// SATReduction is the Theorem 6.1 construction mapping a CNF formula to a
// min-poset instance.
type SATReduction = poset.Reduction

// ReduceSAT builds the Theorem 6.1 min-poset instance for a CNF formula.
func ReduceSAT(numVars int, clauses []SATClause) (*SATReduction, error) {
	return poset.Reduce(numVars, clauses)
}

// SolveSAT decides a CNF formula with the package's DPLL solver (the
// reduction's oracle).
func SolveSAT(numVars int, clauses []SATClause) (assignment []bool, ok bool) {
	return poset.SolveSAT(numVars, clauses)
}

// Policy-catalog types: the durable multi-tenant store behind minupd's
// /policies API. A catalog holds named, monotonically versioned policies
// (lattice + constraint set) hashed across independent shards, each with
// its own storage backend (CatalogStore) and lock. Mutations return once
// the record is durable and the in-memory maps are updated; the solver
// work (compile, memoized solve, incremental repair via RepairContext)
// runs on per-shard background workers fed by an event bus, unless the
// caller opts into waiting (PolicyMutateOptions{Wait: true}).
type (
	// PolicyCatalog is the store itself; construct with OpenCatalog. Safe
	// for concurrent use.
	PolicyCatalog = catalog.Catalog
	// CatalogOptions configures OpenCatalog (data directory, WAL fsync
	// policy, metrics registry, fault injector, compaction threshold,
	// shard count, storage hook).
	CatalogOptions = catalog.Options
	// PolicyInfo describes one policy version (name, version, shard,
	// sizes, source texts, cache state).
	PolicyInfo = catalog.PolicyInfo
	// PolicyMutateOptions tunes one mutation: Wait forces the solver
	// refresh inline so the response reflects a warm cache.
	PolicyMutateOptions = catalog.MutateOptions
	// PolicyAppendResult reports an Append: the new PolicyInfo plus
	// whether the memoized solution was repaired inline (and how) or the
	// refresh is still pending on a shard worker.
	PolicyAppendResult = catalog.AppendResult
	// PolicySolveResult is a served solution: assignment, solve stats, and
	// whether it came from the memoized cache.
	PolicySolveResult = catalog.SolveResult
	// CatalogRecoveryInfo reports what OpenCatalog reconstructed from the
	// data directory (snapshot policies, WAL records, torn tails, shards).
	CatalogRecoveryInfo = catalog.RecoveryInfo
	// CatalogStore is the per-shard storage contract (append a record,
	// load snapshot + replay, compact, close). The built-in backends are
	// the durable WAL store (CatalogOptions.Dir) and NewCatalogMemStore;
	// CatalogOptions.OpenStore installs a custom one per shard.
	CatalogStore = catalog.Store
	// CatalogLoadStats summarizes one CatalogStore.Load.
	CatalogLoadStats = catalog.LoadStats
	// CatalogMutationEvent is the payload published on
	// CatalogTopicMutations after every durable mutation.
	CatalogMutationEvent = catalog.MutationEvent
	// CatalogRefreshEvent is the payload published on
	// CatalogTopicRefreshed when a shard worker finishes (or fails) a
	// solver refresh.
	CatalogRefreshEvent = catalog.RefreshEvent
	// EventBus is the catalog's internal publish/subscribe bus, reachable
	// via (*PolicyCatalog).Bus for observing pipeline activity.
	EventBus = bus.Bus
	// BusEvent is one delivered bus message (topic, sequence, payload).
	BusEvent = bus.Event
	// BusSubscription receives events for one topic on channel C.
	BusSubscription = bus.Subscription
	// WALSyncPolicy selects when the catalog's write-ahead log calls
	// fsync.
	WALSyncPolicy = wal.SyncPolicy
)

// Bus topics the catalog publishes on; subscribe via (*PolicyCatalog).Bus.
const (
	// CatalogTopicMutations carries a CatalogMutationEvent per durable
	// put, append, and delete.
	CatalogTopicMutations = catalog.TopicMutations
	// CatalogTopicRefreshed carries a CatalogRefreshEvent per finished
	// solver refresh.
	CatalogTopicRefreshed = catalog.TopicRefreshed
)

// NewCatalogMemStore creates an empty in-memory CatalogStore. It survives
// Close, so tests can hand the same instance to successive catalogs via
// CatalogOptions.OpenStore to exercise recovery without a disk.
func NewCatalogMemStore() *catalog.MemStore { return catalog.NewMemStore() }

// WAL fsync policies for CatalogOptions.Sync.
const (
	// WALSyncAlways fsyncs after every appended record (the durable
	// default).
	WALSyncAlways = wal.SyncAlways
	// WALSyncNever leaves flushing to the OS; a crash may lose the most
	// recent records but recovery still yields a consistent prefix.
	WALSyncNever = wal.SyncNever
)

// Version preconditions for the catalog's mutating calls.
const (
	// PolicyUnconditional skips the optimistic-concurrency check.
	PolicyUnconditional = catalog.Unconditional
	// PolicyMustNotExist makes a Put create-only (HTTP If-None-Match: *).
	PolicyMustNotExist = catalog.MustNotExist
)

// Catalog errors. Match with errors.Is; minupd maps them to 404, 409, 412,
// and 500.
var (
	// ErrPolicyNotFound reports a name with no policy behind it.
	ErrPolicyNotFound = catalog.ErrNotFound
	// ErrPolicyExists reports a create-only Put against an existing
	// policy.
	ErrPolicyExists = catalog.ErrExists
	// ErrPolicyVersionMismatch reports a failed version precondition.
	ErrPolicyVersionMismatch = catalog.ErrVersionMismatch
	// ErrPolicyStorage reports a WAL write failure; the mutation was not
	// applied.
	ErrPolicyStorage = catalog.ErrStorage
	// ErrPolicySnapshotCorrupt reports a shard snapshot that failed
	// validation during recovery; OpenCatalog refuses the directory
	// rather than serving partial state.
	ErrPolicySnapshotCorrupt = catalog.ErrSnapshotCorrupt
	// ErrPolicyClosed reports a mutation against a closed catalog.
	ErrPolicyClosed = catalog.ErrClosed
)

// OpenCatalog creates a policy catalog. With CatalogOptions.Dir set it
// recovers the persisted state (per-shard snapshot plus WAL replay,
// shards recovered concurrently, torn final frames truncated); the
// directory's own shard count always wins over CatalogOptions.Shards.
// With an empty Dir and no OpenStore hook the catalog is memory-only.
func OpenCatalog(opt CatalogOptions) (*PolicyCatalog, error) { return catalog.Open(opt) }

// PolicyMutation is one step of a generated catalog workload (a put,
// constraint append, or delete with source texts attached).
type PolicyMutation = workload.Mutation

// PolicyMutationSpec shapes a MutationStream: op mix, policy-name pool,
// constraint-text sizes, and the fresh-attribute rate.
type PolicyMutationSpec = workload.MutationSpec

// MutationStream generates a deterministic seeded sequence of policy
// catalog mutations in which every step is valid against the state its
// predecessors produced — the driver behind the catalog soak and
// crash-recovery chaos tests.
func MutationStream(spec PolicyMutationSpec) ([]PolicyMutation, error) {
	return workload.MutationStream(spec)
}

// ---------------------------------------------------------------------------
// Problem frontends (internal/frontend): adjacent problem classes compiled
// into the constraint engine. Importing the façade registers the suppress
// (Kao cell suppression) and depinf (Pappachan dependency inference)
// frontends.

type (
	// ProblemFrontend compiles one source-problem family (cell-suppression
	// tables, dependency-laden relations) into a lattice plus constraint
	// set, and checks solved assignments against a source-level security
	// and minimality oracle.
	ProblemFrontend = frontend.Frontend
	// ProblemInstance is one parsed source-problem instance with a
	// round-trippable JSON form.
	ProblemInstance = frontend.Instance
	// ProblemCompiled is the engine-ready form of a source instance,
	// including catalog policy source texts.
	ProblemCompiled = frontend.Compiled
)

// LookupProblemFrontend returns the frontend registered for a family
// ("suppress", "depinf").
func LookupProblemFrontend(family string) (ProblemFrontend, bool) { return frontend.Lookup(family) }

// ProblemFamilies returns the registered problem-frontend family names,
// sorted.
func ProblemFamilies() []string { return frontend.Families() }

// MarshalProblemInstance serializes an instance into the JSON format its
// frontend's Parse accepts.
func MarshalProblemInstance(inst ProblemInstance) ([]byte, error) { return frontend.Marshal(inst) }

// PolicyFamilyInstance is one generated instance of a registered workload
// instance family: catalog-ready policy source texts plus (for
// frontend-backed families) the source-problem JSON document.
type PolicyFamilyInstance = workload.FamilyInstance

// PolicyFamilyNames returns the registered workload instance families
// ("paper" plus one per problem frontend), sorted.
func PolicyFamilyNames() []string { return workload.FamilyNames() }

// GeneratePolicyFamily generates one seeded instance of a registered
// workload instance family.
func GeneratePolicyFamily(name string, seed int64, size int) (PolicyFamilyInstance, error) {
	return workload.GenerateFamily(name, seed, size)
}

// ---------------------------------------------------------------------------
// Cluster replication (internal/cluster): leader/follower catalog
// replication over the per-shard WAL record stream.

type (
	// ClusterNode is one replication cluster member: a term- and
	// lease-based leader streams WAL record frames to followers and acks a
	// mutation only after a majority has durably appended it. Construct
	// with OpenClusterNode.
	ClusterNode = cluster.Node
	// ClusterOptions configures OpenClusterNode (node id, listen address,
	// peer map, advertised HTTP address, catalog, record ring, timings).
	ClusterOptions = cluster.Options
	// ClusterStatus is one node's view of the cluster — the GET /cluster
	// payload (role, term, lease expiry, per-peer lag, fingerprints).
	ClusterStatus = cluster.Status
	// ClusterPeerStatus is the leader's replication view of one peer.
	ClusterPeerStatus = cluster.PeerStatus
	// ClusterRecordLog is the in-memory per-shard tail of WAL records the
	// leader replays to followers; wire it into the catalog via
	// CatalogOptions.OnRecord = log.Append.
	ClusterRecordLog = cluster.RecordLog
	// CatalogRecordEvent is the payload of CatalogOptions.OnRecord: one
	// durably appended WAL record (shard, sequence number, payload bytes).
	CatalogRecordEvent = catalog.RecordEvent
)

// Cluster errors. Match with errors.Is; minupd maps them onto the write
// path (307 redirect, 503).
var (
	// ErrClusterNotLeader reports a mutation sent to a follower; redirect
	// to the leader returned alongside it.
	ErrClusterNotLeader = cluster.ErrNotLeader
	// ErrClusterNoLeader reports that no leader is currently known (an
	// election is in progress, or this node is partitioned).
	ErrClusterNoLeader = cluster.ErrNoLeader
	// ErrClusterNoQuorum reports a mutation that is locally durable but
	// was not acknowledged by a majority within the commit timeout.
	ErrClusterNoQuorum = cluster.ErrNoQuorum
	// ErrClusterClosed reports an operation on a closed cluster node.
	ErrClusterClosed = cluster.ErrClosed
)

// NewClusterRecordLog creates the replication record ring (0 uses the
// default window of 1024 records per shard).
func NewClusterRecordLog(size int) *ClusterRecordLog { return cluster.NewRecordLog(size) }

// OpenClusterNode starts a replication cluster member over an open
// catalog. The catalog must have been opened with CatalogOptions.OnRecord
// feeding the same ClusterRecordLog passed here, or followers can only
// catch up by snapshot.
func OpenClusterNode(opt ClusterOptions) (*ClusterNode, error) { return cluster.Open(opt) }
