#!/usr/bin/env sh
# Smoke-test the minupd HTTP service end to end against the checked-in
# Figure 2(a) fixtures: build, start, poll /healthz, then assert that
# /solve, /metrics?format=prometheus, and /trace?format=chrome all answer
# 200 with non-empty bodies. The Chrome trace is left at
# sample-trace.json for CI to upload as an artifact.
#
# Usage: scripts/smoke_minupd.sh [addr]   (default 127.0.0.1:18080)
set -eu

addr="${1:-127.0.0.1:18080}"
repo_root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo_root"

go build -o /tmp/minupd ./cmd/minupd

/tmp/minupd \
  -lattice testdata/lattice_fig1b.txt \
  -constraints testdata/constraints_fig2.txt \
  -addr "$addr" -debug-addr "" &
pid=$!
trap 'kill "$pid" 2>/dev/null || true' EXIT INT TERM

# Poll /healthz until the server is up (max ~5s).
i=0
until curl -fsS "http://$addr/healthz" >/dev/null 2>&1; do
  i=$((i + 1))
  if [ "$i" -ge 50 ]; then
    echo "smoke: minupd did not become healthy at $addr" >&2
    exit 1
  fi
  sleep 0.1
done
echo "smoke: /healthz ok"

fetch() {
  # fetch <url> <outfile>: assert HTTP 200 and a non-empty body.
  code="$(curl -sS -o "$2" -w '%{http_code}' "$1")"
  if [ "$code" != "200" ]; then
    echo "smoke: GET $1 returned $code" >&2
    cat "$2" >&2 || true
    exit 1
  fi
  if [ ! -s "$2" ]; then
    echo "smoke: GET $1 returned an empty body" >&2
    exit 1
  fi
}

fetch "http://$addr/solve?trace=1" /tmp/smoke-solve.json
grep -q '"assignment"' /tmp/smoke-solve.json
grep -q '"trace_id"' /tmp/smoke-solve.json
echo "smoke: /solve?trace=1 ok"

fetch "http://$addr/metrics?format=prometheus" /tmp/smoke-metrics.txt
grep -q '^# TYPE solve_count counter' /tmp/smoke-metrics.txt
grep -q '^solve_duration_us_bucket{le="+Inf"}' /tmp/smoke-metrics.txt
grep -q '^http_in_flight ' /tmp/smoke-metrics.txt
echo "smoke: /metrics?format=prometheus ok"

fetch "http://$addr/trace?format=chrome" sample-trace.json
grep -q '"traceEvents"' sample-trace.json
echo "smoke: /trace?format=chrome ok (sample-trace.json)"

fetch "http://$addr/trace" /tmp/smoke-trace.json
grep -q '"spans"' /tmp/smoke-trace.json
echo "smoke: /trace ok"

echo "smoke: all checks passed"
