#!/usr/bin/env sh
# Smoke-test the minupd HTTP service end to end against the checked-in
# Figure 2(a) fixtures: build, start, poll /healthz, then assert that
# /readyz, /solve, /metrics?format=prometheus, and /trace?format=chrome all
# answer 200 with non-empty bodies. The Chrome trace is left at
# artifacts/sample-trace.json (gitignored) for CI to upload as an artifact.
# A second, deliberately throttled instance (-max-inflight 1, no queue,
# 20ms solve budget, every solver step delayed 30ms by fault injection)
# then exercises the robustness layer: a forced-degraded solve and load
# shedding under concurrent requests, with the http_shed and
# solve_degraded counters asserted via Prometheus exposition. A third
# instance runs the durable sharded policy catalog: create a policy with a
# waited mutation, append a constraint through the inline incremental
# repair (?wait=1), solve twice (the second solve must be a cache hit),
# check the /policies index and per-shard metrics, SIGTERM, restart on the
# same -data-dir WITHOUT -shards (the directory's pinned count must win),
# and assert the policy survived.
#
# The first two instances also expose the loopback debug listener so the
# flight recorder's /debug/requests view and the SLO burn-rate gauges can be
# asserted: issued solves must appear in the JSON view, the chaos instance's
# forced-degraded request must land in the anomaly ring with an on-disk
# Perfetto dump, and its availability burn gauge must move.
#
# Usage: scripts/smoke_minupd.sh [addr] [addr2] [addr3]
#        (defaults 127.0.0.1:18080 .. 127.0.0.1:18082; debug listeners on
#         127.0.0.1:16060 and 127.0.0.1:16061)
set -eu

addr="${1:-127.0.0.1:18080}"
addr2="${2:-127.0.0.1:18081}"
addr3="${3:-127.0.0.1:18082}"
dbg1="${SMOKE_DEBUG_ADDR1:-127.0.0.1:16060}"
dbg2="${SMOKE_DEBUG_ADDR2:-127.0.0.1:16061}"
repo_root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo_root"
mkdir -p artifacts

go build -o /tmp/minupd ./cmd/minupd

/tmp/minupd \
  -lattice testdata/lattice_fig1b.txt \
  -constraints testdata/constraints_fig2.txt \
  -addr "$addr" -debug-addr "$dbg1" &
pid=$!
trap 'kill "$pid" 2>/dev/null || true' EXIT INT TERM

# Poll /healthz until the server is up (max ~5s).
i=0
until curl -fsS "http://$addr/healthz" >/dev/null 2>&1; do
  i=$((i + 1))
  if [ "$i" -ge 50 ]; then
    echo "smoke: minupd did not become healthy at $addr" >&2
    exit 1
  fi
  sleep 0.1
done
echo "smoke: /healthz ok"

fetch() {
  # fetch <url> <outfile>: assert HTTP 200 and a non-empty body.
  code="$(curl -sS -o "$2" -w '%{http_code}' "$1")"
  if [ "$code" != "200" ]; then
    echo "smoke: GET $1 returned $code" >&2
    cat "$2" >&2 || true
    exit 1
  fi
  if [ ! -s "$2" ]; then
    echo "smoke: GET $1 returned an empty body" >&2
    exit 1
  fi
}

fetch "http://$addr/solve?trace=1" /tmp/smoke-solve.json
grep -q '"assignment"' /tmp/smoke-solve.json
grep -q '"trace_id"' /tmp/smoke-solve.json
echo "smoke: /solve?trace=1 ok"

fetch "http://$addr/metrics?format=prometheus" /tmp/smoke-metrics.txt
grep -q '^# TYPE solve_count counter' /tmp/smoke-metrics.txt
grep -q '^solve_duration_us_bucket{le="+Inf"}' /tmp/smoke-metrics.txt
grep -q '^http_in_flight ' /tmp/smoke-metrics.txt
echo "smoke: /metrics?format=prometheus ok"

fetch "http://$addr/trace?format=chrome" artifacts/sample-trace.json
grep -q '"traceEvents"' artifacts/sample-trace.json
echo "smoke: /trace?format=chrome ok (artifacts/sample-trace.json)"

fetch "http://$addr/trace" /tmp/smoke-trace.json
grep -q '"spans"' /tmp/smoke-trace.json
echo "smoke: /trace ok"

fetch "http://$addr/readyz" /tmp/smoke-ready.txt
grep -q 'ready' /tmp/smoke-ready.txt
echo "smoke: /readyz ok"

# The flight recorder's live introspection view on the debug listener: the
# solves issued above must be in the ring, in both the JSON and HTML views.
fetch "http://$dbg1/debug/requests?format=json" /tmp/smoke-flight.json
grep -q '"total_records"' /tmp/smoke-flight.json
grep -q '"route": "solve"' /tmp/smoke-flight.json
fetch "http://$dbg1/debug/requests" /tmp/smoke-flight.html
grep -q '/debug/requests' /tmp/smoke-flight.html
echo "smoke: /debug/requests ok (JSON and HTML)"

# The SLO burn-rate gauges are part of the Prometheus exposition from the
# first scrape (the runtime collector publishes them eagerly).
fetch "http://$addr/metrics?format=prometheus" /tmp/smoke-metrics-slo.txt
grep -q '^# TYPE slo_solve_avail_burn_5m_milli gauge' /tmp/smoke-metrics-slo.txt
grep -q '^slo_solve_latency_burn_1h_milli ' /tmp/smoke-metrics-slo.txt
grep -q '^runtime_goroutines ' /tmp/smoke-metrics-slo.txt
echo "smoke: SLO burn-rate and runtime gauges exported"

# --- Robustness: a throttled chaos instance -------------------------------
# One slot, no queue, a 20ms solve budget, and a fault injector that delays
# every solver step 30ms: any minimal solve blows its deadline (forcing the
# Qian-baseline degraded path), and concurrent requests overflow the gate
# (forcing sheds).
dump_dir="$(mktemp -d)"
/tmp/minupd \
  -lattice testdata/lattice_fig1b.txt \
  -constraints testdata/constraints_fig2.txt \
  -addr "$addr2" -debug-addr "$dbg2" \
  -max-inflight 1 -max-queue 0 -solve-timeout 20ms \
  -flight-dump-dir "$dump_dir" \
  -fault 'solve.step:delay:%1:30ms' &
pid2=$!
trap 'kill "$pid" "$pid2" 2>/dev/null || true; rm -rf "$dump_dir"' EXIT INT TERM

i=0
until curl -fsS "http://$addr2/healthz" >/dev/null 2>&1; do
  i=$((i + 1))
  if [ "$i" -ge 50 ]; then
    echo "smoke: throttled minupd did not become healthy at $addr2" >&2
    exit 1
  fi
  sleep 0.1
done

fetch "http://$addr2/solve" /tmp/smoke-degraded.json
grep -q '"degraded": true' /tmp/smoke-degraded.json
grep -q '"degrade_reason": "deadline"' /tmp/smoke-degraded.json
grep -q '"assignment"' /tmp/smoke-degraded.json
echo "smoke: forced-degraded /solve ok"

# The degraded request is an anomaly: it must be in the flight recorder's
# anomaly ring with a dump file name, the dump must exist on disk as a
# Perfetto-loadable trace, and the route's availability burn gauge must
# move (a degraded 200 still burns error budget).
fetch "http://$dbg2/debug/requests?format=json" /tmp/smoke-flight2.json
grep -q '"degraded": true' /tmp/smoke-flight2.json
grep -q '"degrade_reason": "deadline"' /tmp/smoke-flight2.json
grep -q '"recent_anomalies"' /tmp/smoke-flight2.json
dump_file="$(ls "$dump_dir" | head -n 1)"
if [ -z "$dump_file" ]; then
  echo "smoke: degraded request left no anomaly dump in $dump_dir" >&2
  exit 1
fi
grep -q '"traceEvents"' "$dump_dir/$dump_file"
echo "smoke: degraded anomaly dumped ($dump_file)"

fetch "http://$addr2/metrics?format=prometheus" /tmp/smoke-metrics-burn.txt
burn="$(awk '/^slo_solve_avail_burn_5m_milli /{print $2}' /tmp/smoke-metrics-burn.txt)"
if [ -z "$burn" ] || [ "$burn" -le 0 ]; then
  echo "smoke: availability burn gauge did not move (got '${burn:-absent}')" >&2
  exit 1
fi
echo "smoke: availability burn gauge moved (slo_solve_avail_burn_5m_milli=$burn)"

# Fire 8 concurrent solves at the single-slot gate; with each solve pinned
# down by the 30ms step delay, most must be shed with 503.
: > /tmp/smoke-shed-codes.txt
curl_pids=""
for _ in 1 2 3 4 5 6 7 8; do
  curl -sS -o /dev/null -w '%{http_code}\n' "http://$addr2/solve" >> /tmp/smoke-shed-codes.txt &
  curl_pids="$curl_pids $!"
done
for p in $curl_pids; do
  wait "$p" || true
done
if ! grep -q '^503$' /tmp/smoke-shed-codes.txt; then
  echo "smoke: no request was shed under concurrent load" >&2
  cat /tmp/smoke-shed-codes.txt >&2
  exit 1
fi
echo "smoke: load shedding ok ($(grep -c '^503$' /tmp/smoke-shed-codes.txt) of 8 shed)"

fetch "http://$addr2/metrics?format=prometheus" /tmp/smoke-metrics2.txt
grep -q '^# TYPE http_shed counter' /tmp/smoke-metrics2.txt
# Capture the values explicitly: piping grep into awk would pass vacuously
# when the series is absent (awk over empty input exits 0).
shed="$(awk '/^http_shed /{print $2}' /tmp/smoke-metrics2.txt)"
if [ -z "$shed" ] || [ "$shed" -le 0 ]; then
  echo "smoke: http_shed counter missing or zero (got '${shed:-absent}')" >&2
  exit 1
fi
degraded="$(awk '/^solve_degraded /{print $2}' /tmp/smoke-metrics2.txt)"
if [ -z "$degraded" ] || [ "$degraded" -le 0 ]; then
  echo "smoke: solve_degraded counter missing or zero (got '${degraded:-absent}')" >&2
  exit 1
fi
echo "smoke: http_shed and solve_degraded counters ok (shed=$shed degraded=$degraded)"

# --- Policy catalog: durability across restart ----------------------------
# A pure catalog server (no static instance), sharded two ways: create a
# policy, append a constraint through the inline incremental-repair path
# (?wait=1), solve twice asserting the second solve is a memoized cache
# hit, then SIGTERM and restart on the same data directory — with no
# -shards flag, so recovery must honor the shard count pinned in the
# directory's meta file — and assert the policy state survived.
data_dir="$(mktemp -d)"
/tmp/minupd -addr "$addr3" -debug-addr "" -data-dir "$data_dir" -shards 2 &
pid3=$!
trap 'kill "$pid" "$pid2" "$pid3" 2>/dev/null || true; rm -rf "$data_dir" "$dump_dir"' EXIT INT TERM

wait_healthy() {
  i=0
  until curl -fsS "http://$1/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -ge 50 ]; then
      echo "smoke: minupd did not become healthy at $1" >&2
      exit 1
    fi
    sleep 0.1
  done
}
wait_healthy "$addr3"

request() {
  # request <method> <url> <body-or-empty> <outfile>: print the status code.
  if [ -n "$3" ]; then
    curl -sS -o "$4" -w '%{http_code}' -X "$1" -d "$3" "$2"
  else
    curl -sS -o "$4" -w '%{http_code}' -X "$1" "$2"
  fi
}

# ?wait=1 warms the memoized solve inline, so the append below finds a
# warm cache to repair deterministically.
code="$(request PUT "http://$addr3/policies/smoke?wait=1" \
  '{"lattice":"chain mil\nlevels U C S TS\n","constraints":"attrs salary rank\nsalary >= rank\nrank >= S\n"}' \
  /tmp/smoke-policy.json)"
if [ "$code" != "201" ]; then
  echo "smoke: PUT /policies/smoke returned $code" >&2
  cat /tmp/smoke-policy.json >&2 || true
  exit 1
fi
grep -q '"solved": true' /tmp/smoke-policy.json
echo "smoke: policy created with a warm cache"

code="$(request POST "http://$addr3/policies/smoke/constraints?wait=1" \
  '{"constraints":"rank >= TS\n"}' /tmp/smoke-append.json)"
if [ "$code" != "200" ]; then
  echo "smoke: append returned $code" >&2
  cat /tmp/smoke-append.json >&2 || true
  exit 1
fi
grep -q '"repaired": true' /tmp/smoke-append.json
echo "smoke: constraint appended through the inline repair (version 2)"

fetch "http://$addr3/policies" /tmp/smoke-index.json
grep -q '"name": "smoke"' /tmp/smoke-index.json
grep -q '"etag"' /tmp/smoke-index.json
grep -q '"shard"' /tmp/smoke-index.json
grep -q '"solved"' /tmp/smoke-index.json
echo "smoke: /policies index carries etag, shard, and cache state"

fetch "http://$addr3/policies/smoke/solve" /tmp/smoke-psolve1.json
grep -q '"assignment"' /tmp/smoke-psolve1.json
fetch "http://$addr3/policies/smoke/solve" /tmp/smoke-psolve2.json
grep -q '"cache_hit": true' /tmp/smoke-psolve2.json
fetch "http://$addr3/metrics?format=prometheus" /tmp/smoke-metrics3.txt
hits="$(awk '/^catalog_cache_hits /{print $2}' /tmp/smoke-metrics3.txt)"
if [ -z "$hits" ] || [ "$hits" -le 0 ]; then
  echo "smoke: catalog_cache_hits missing or zero (got '${hits:-absent}')" >&2
  exit 1
fi
echo "smoke: second solve served from cache (catalog_cache_hits=$hits)"
if ! grep -q '^catalog_shard_' /tmp/smoke-metrics3.txt; then
  echo "smoke: no per-shard catalog_shard_* series in /metrics" >&2
  exit 1
fi
published="$(awk '/^bus_published /{print $2}' /tmp/smoke-metrics3.txt)"
if [ -z "$published" ] || [ "$published" -le 0 ]; then
  echo "smoke: bus_published missing or zero (got '${published:-absent}')" >&2
  exit 1
fi
echo "smoke: per-shard gauges and bus counters exported (bus_published=$published)"

# --- Problem frontends: compile-and-store through /problems ---------------
# The frontend routes compile a source-problem instance (here a Kao-style
# cell-suppression table) into an ordinary catalog policy: list the
# registered families, create a compiled problem with a waited mutation,
# and assert the stored policy serves a memoized solve like any other.
fetch "http://$addr3/problems" /tmp/smoke-problems.json
grep -q '"suppress"' /tmp/smoke-problems.json
grep -q '"depinf"' /tmp/smoke-problems.json
echo "smoke: /problems lists the registered frontend families"

code="$(request POST "http://$addr3/problems/suppress?wait=1&name=smokeprob" \
  '{"name":"smoketab","levels":["open","secret"],"rows":3,"cols":3,"sensitive":[{"row":0,"col":0,"level":"secret"}]}' \
  /tmp/smoke-problem.json)"
if [ "$code" != "201" ]; then
  echo "smoke: POST /problems/suppress returned $code" >&2
  cat /tmp/smoke-problem.json >&2 || true
  exit 1
fi
grep -q '"family": "suppress"' /tmp/smoke-problem.json
grep -q '"solved": true' /tmp/smoke-problem.json
echo "smoke: suppress instance compiled and stored with a warm cache"

fetch "http://$addr3/policies/smokeprob/solve" /tmp/smoke-probsolve1.json
grep -q '"assignment"' /tmp/smoke-probsolve1.json
fetch "http://$addr3/policies/smokeprob/solve" /tmp/smoke-probsolve2.json
grep -q '"cache_hit": true' /tmp/smoke-probsolve2.json
echo "smoke: compiled problem serves memoized solves like any policy"

kill -TERM "$pid3"
wait "$pid3" || true
/tmp/minupd -addr "$addr3" -debug-addr "" -data-dir "$data_dir" &
pid3=$!
wait_healthy "$addr3"

code="$(request GET "http://$addr3/policies/smoke" "" /tmp/smoke-survived.json)"
if [ "$code" != "200" ]; then
  echo "smoke: policy did not survive the restart (GET returned $code)" >&2
  cat /tmp/smoke-survived.json >&2 || true
  exit 1
fi
grep -q '"version": 2' /tmp/smoke-survived.json
# encoding/json writes '>' as a backslash-u003e escape inside the stored
# constraint text, so the pattern matches that form.
grep -q 'rank .u003e= TS' /tmp/smoke-survived.json
fetch "http://$addr3/policies/smoke/solve" /tmp/smoke-psolve3.json
grep -q '"rank": "TS"' /tmp/smoke-psolve3.json
echo "smoke: policy survived restart with its appended constraint"

# The compiled problem is durable too: it restarts as an ordinary policy
# and still solves (the Kao reduction forces the sensitive corner cell up).
code="$(request GET "http://$addr3/policies/smokeprob" "" /tmp/smoke-probsurvived.json)"
if [ "$code" != "200" ]; then
  echo "smoke: compiled problem did not survive the restart (GET returned $code)" >&2
  cat /tmp/smoke-probsurvived.json >&2 || true
  exit 1
fi
fetch "http://$addr3/policies/smokeprob/solve" /tmp/smoke-probsolve3.json
grep -q '"r0c0": "secret"' /tmp/smoke-probsolve3.json
echo "smoke: compiled problem survived restart and still solves"

# The restart ran without -shards: the per-shard gauges must still show the
# two-shard layout pinned in the data directory's meta file.
fetch "http://$addr3/metrics?format=prometheus" /tmp/smoke-metrics4.txt
if ! grep -q '^catalog_shard_1_policies ' /tmp/smoke-metrics4.txt; then
  echo "smoke: restart did not honor the pinned 2-shard layout" >&2
  grep '^catalog_shard' /tmp/smoke-metrics4.txt >&2 || true
  exit 1
fi
echo "smoke: restart honored the data directory's pinned shard count"

echo "smoke: all checks passed"
