#!/usr/bin/env sh
# Bench-trend regression gate: rerun the solve-path benchmark family
# (scripts/bench_json.sh) and compare against the committed baseline
# BENCH_solve.json with cmd/benchtrend. Fails on >20% ns/op regression or
# ANY allocs/op increase on any benchmark — allocation counts are
# deterministic, so one extra allocation is a real change.
#
# Usage: scripts/bench_trend.sh [baseline]
#
# BENCHTREND_MAX_NS_REGRESS overrides the fractional ns/op threshold
# (default 0.20) for noisy shared runners; the allocs/op gate is never
# loosened.
#
# The fresh run is left at artifacts/bench/BENCH_solve.current.json for CI
# to upload. Refresh the baseline deliberately with
#   scripts/bench_json.sh BENCH_solve.json   (then commit it)
set -eu

baseline="${1:-BENCH_solve.json}"
repo_root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo_root"

if [ ! -f "$baseline" ]; then
  echo "bench_trend: baseline $baseline missing (generate with scripts/bench_json.sh and commit it)" >&2
  exit 1
fi

mkdir -p artifacts/bench
current="artifacts/bench/BENCH_solve.current.json"
sh scripts/bench_json.sh "$current"

go run ./cmd/benchtrend -baseline "$baseline" -current "$current" \
  -max-ns-regress "${BENCHTREND_MAX_NS_REGRESS:-0.20}"
