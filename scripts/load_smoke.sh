#!/usr/bin/env sh
# Load smoke (`make load-smoke`): start one minupd with the Figure 2(a)
# static instance and fault admin enabled, then run cmd/minload's staged
# plan scaled down to CI size — a short ramp, storm, and chaos stage —
# writing per-stage JSON into artifacts/load/ for CI to upload. Then the
# negative check: rerun the ramp with an impossibly tight p99 gate and
# require a nonzero exit, proving the gates actually gate.
#
# Usage: scripts/load_smoke.sh [addr] [debug-addr]
#        (defaults 127.0.0.1:18091 and 127.0.0.1:16071)
set -eu

addr="${1:-127.0.0.1:18091}"
dbg="${2:-127.0.0.1:16071}"
repo_root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo_root"
out_dir="artifacts/load"
rm -rf "$out_dir"
mkdir -p "$out_dir"

go build -o /tmp/minupd ./cmd/minupd
go build -o /tmp/minload ./cmd/minload

/tmp/minupd \
  -lattice testdata/lattice_fig1b.txt \
  -constraints testdata/constraints_fig2.txt \
  -addr "$addr" -debug-addr "$dbg" \
  -fault-admin \
  -slo-interval 1s &
pid=$!
trap 'kill "$pid" 2>/dev/null || true' EXIT INT TERM

i=0
until curl -fsS "http://$addr/healthz" >/dev/null 2>&1; do
  i=$((i + 1))
  if [ "$i" -ge 50 ]; then
    echo "load-smoke: minupd did not become healthy at $addr" >&2
    exit 1
  fi
  sleep 0.1
done

# ~30s total: ramp + storm + chaos at 10s each. The chaos stage arms the
# fault injector over /debug/fault and must disarm it afterwards.
/tmp/minload \
  -addr "http://$addr" -debug-addr "http://$dbg" \
  -stages ramp,storm,chaos -stage-seconds 10 \
  -out "$out_dir"
echo "load-smoke: staged run passed"

# The stage JSON artifacts are machine-readable and complete.
for f in stage-00-ramp.json stage-01-storm.json stage-02-chaos.json summary.json; do
  if [ ! -s "$out_dir/$f" ]; then
    echo "load-smoke: missing result file $out_dir/$f" >&2
    ls -l "$out_dir" >&2 || true
    exit 1
  fi
done
grep -q '"gate_passed": true' "$out_dir/stage-00-ramp.json"
grep -q '"passed": true' "$out_dir/summary.json"
grep -q '"build_info"' "$out_dir/summary.json"
echo "load-smoke: per-stage JSON artifacts written to $out_dir"

# The chaos stage must leave the injector disarmed.
if ! curl -fsS "http://$dbg/debug/fault" | grep -q '"armed":[ ]*false'; then
  echo "load-smoke: fault injector still armed after the chaos stage" >&2
  exit 1
fi
echo "load-smoke: chaos stage disarmed the injector"

# Negative check: a deliberately impossible gate must fail the run with a
# nonzero exit. (0.0001ms p99 is below any real network round trip.)
cat > /tmp/load-smoke-tight.json <<'EOF'
{
  "seed": 1,
  "stages": [
    {
      "name": "tight", "kind": "soak", "seconds": 3, "clients": 4,
      "qps": 50,
      "mix": {"mutate": 0.2, "cached_solve": 0.6, "cold_solve": 0.15, "trace": 0.05},
      "gates": {"max_p99_ms": 0.0001}
    }
  ]
}
EOF
if /tmp/minload -addr "http://$addr" -debug-addr "http://$dbg" \
    -plan /tmp/load-smoke-tight.json -out "$out_dir/tight"; then
  echo "load-smoke: impossible p99 gate PASSED — gates are not gating" >&2
  exit 1
fi
grep -q '"gate_passed": false' "$out_dir/tight/stage-00-tight.json"
echo "load-smoke: tightened gate correctly failed the run"

kill -TERM "$pid"
wait "$pid" || true

echo "load-smoke: all checks passed"
