#!/usr/bin/env sh
# Cluster smoke (`make cluster-smoke`): boot a 3-node minupd replication
# cluster on loopback, write acked policies through the leader (following
# the follower's 307 redirect on the way), SIGKILL the leader mid-reign,
# and assert the partition drill's three promises: a new leader takes
# over, no acked mutation is lost (every policy answers 200 on every
# surviving node), and the survivors' catalog fingerprints converge. The
# killed node then restarts on its own data directory and must rejoin and
# converge to the same fingerprint via snapshot resync. Cluster status
# JSON snapshots land in artifacts/cluster/ for CI upload.
#
# Usage: scripts/cluster_smoke.sh
#        (HTTP on 127.0.0.1:19080..19082, replication on 127.0.0.1:19200..19202)
set -eu

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo_root"
out_dir="artifacts/cluster"
rm -rf "$out_dir"
mkdir -p "$out_dir"

go build -o /tmp/minupd ./cmd/minupd

http_port() { echo "$((19080 + $1))"; }
peers="0=127.0.0.1:19200,1=127.0.0.1:19201,2=127.0.0.1:19202"
body='{"lattice":"chain mil\nlevels U C S TS\n","constraints":"attrs salary rank\nsalary >= rank\nrank >= S\n"}'

start_node() {
  # start_node <id>: boot node <id> on its persistent data dir; echo pid.
  mkdir -p "$out_dir/node$1/data"
  /tmp/minupd \
    -addr "127.0.0.1:$(http_port "$1")" -debug-addr "" \
    -data-dir "$out_dir/node$1/data" -shards 2 \
    -cluster-node "$1" -cluster-peers "$peers" \
    -cluster-http "http://127.0.0.1:$(http_port "$1")" \
    -cluster-tick 20ms \
    >"$out_dir/node$1.log" 2>&1 &
  echo $!
}

pid0="$(start_node 0)"
pid1="$(start_node 1)"
pid2="$(start_node 2)"
trap 'kill "$pid0" "$pid1" "$pid2" 2>/dev/null || true' EXIT INT TERM

for id in 0 1 2; do
  i=0
  until curl -fsS "http://127.0.0.1:$(http_port "$id")/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -ge 50 ]; then
      echo "cluster-smoke: node $id never became healthy" >&2
      cat "$out_dir/node$id.log" >&2 || true
      exit 1
    fi
    sleep 0.1
  done
done
echo "cluster-smoke: 3 nodes healthy"

find_leader() {
  # Print the node id currently reporting role=leader, or nothing.
  for id in 0 1 2; do
    if curl -fsS "http://127.0.0.1:$(http_port "$id")/cluster" 2>/dev/null |
      grep -Eq '"role": ?"leader"'; then
      echo "$id"
      return 0
    fi
  done
  return 1
}

wait_leader() {
  # wait_leader [excluded-id]: poll until a leader (not the excluded node)
  # emerges; print its id.
  i=0
  while :; do
    lid="$(find_leader || true)"
    if [ -n "$lid" ] && [ "$lid" != "${1:-none}" ]; then
      echo "$lid"
      return 0
    fi
    i=$((i + 1))
    if [ "$i" -ge 100 ]; then
      echo "cluster-smoke: no leader emerged" >&2
      exit 1
    fi
    sleep 0.1
  done
}

fingerprint() {
  # fingerprint <id>: print the node's catalog fingerprint.
  curl -fsS "http://127.0.0.1:$(http_port "$1")/cluster" |
    sed -n 's/.*"fingerprint": *"\([0-9a-f]*\)".*/\1/p'
}

leader="$(wait_leader)"
echo "cluster-smoke: node $leader is leader"

# A write sent to a follower must come back as a 307 carrying the leader
# hint — the redirect contract minload and real clients rely on.
follower=$(( (leader + 1) % 3 ))
code="$(curl -sS -o /dev/null -w '%{http_code}' -X PUT -d "$body" \
  "http://127.0.0.1:$(http_port "$follower")/policies/drill-redirect")"
if [ "$code" != "307" ]; then
  echo "cluster-smoke: follower PUT answered $code, want 307" >&2
  exit 1
fi
echo "cluster-smoke: follower redirects writes (307)"

# Acked writes through the leader; curl -L follows the 307 preserving
# method and body, so routing every write via the follower also proves the
# redirect is followable end to end.
acked=""
for n in 1 2 3 4 5 6 7 8; do
  code="$(curl -sSL -o /dev/null -w '%{http_code}' -X PUT -d "$body" \
    "http://127.0.0.1:$(http_port "$follower")/policies/drill-a$n")"
  if [ "$code" != "201" ]; then
    echo "cluster-smoke: acked PUT drill-a$n answered $code" >&2
    exit 1
  fi
  acked="$acked drill-a$n"
done
echo "cluster-smoke: 8 mutations acked through the leader"

curl -fsS "http://127.0.0.1:$(http_port "$leader")/cluster" \
  >"$out_dir/status-before-kill.json"

# Kill the leader without ceremony: a crash, not a drain.
eval "kill -9 \"\$pid$leader\""
echo "cluster-smoke: killed leader node $leader (SIGKILL)"

leader2="$(wait_leader "$leader")"
echo "cluster-smoke: node $leader2 took over"

# More acked writes against the second reign.
for n in 1 2 3 4; do
  code="$(curl -sSL -o /dev/null -w '%{http_code}' -X PUT -d "$body" \
    "http://127.0.0.1:$(http_port "$leader2")/policies/drill-b$n")"
  if [ "$code" != "201" ]; then
    echo "cluster-smoke: post-failover PUT drill-b$n answered $code" >&2
    exit 1
  fi
  acked="$acked drill-b$n"
done
echo "cluster-smoke: 4 mutations acked after failover"

# Zero lost acked mutations: every acked policy answers 200 on every
# surviving node (replication may still be draining on the follower).
check_all() {
  # check_all <id>...: every acked policy reads back on every listed node.
  for id in "$@"; do
    for name in $acked; do
      i=0
      until [ "$(curl -sS -o /dev/null -w '%{http_code}' \
        "http://127.0.0.1:$(http_port "$id")/policies/$name")" = "200" ]; do
        i=$((i + 1))
        if [ "$i" -ge 50 ]; then
          echo "cluster-smoke: acked policy $name missing on node $id" >&2
          exit 1
        fi
        sleep 0.1
      done
    done
  done
}
survivor=$(( 3 - leader - leader2 ))
check_all "$leader2" "$survivor"
echo "cluster-smoke: zero acked mutations lost across failover"

wait_converged() {
  # wait_converged <id>...: poll until every listed node reports the same
  # non-empty fingerprint.
  i=0
  while :; do
    fps=""
    for id in "$@"; do
      fps="$fps $(fingerprint "$id")"
    done
    first="$(echo "$fps" | awk '{print $1}')"
    if [ -n "$first" ] && [ "$(echo "$fps" | tr ' ' '\n' | grep -c "^$first\$")" = "$#" ]; then
      return 0
    fi
    i=$((i + 1))
    if [ "$i" -ge 100 ]; then
      echo "cluster-smoke: fingerprints never converged:$fps" >&2
      exit 1
    fi
    sleep 0.1
  done
}
wait_converged "$leader2" "$survivor"
echo "cluster-smoke: surviving fingerprints converged"

# The crashed ex-leader restarts on its own data dir, rejoins, resyncs
# (its shards are dirty — it may have led uncommitted appends), and
# converges to the same fingerprint with every acked policy present.
pid_restart="$(start_node "$leader")"
eval "pid$leader=\"\$pid_restart\""
trap 'kill "$pid0" "$pid1" "$pid2" 2>/dev/null || true' EXIT INT TERM
i=0
until curl -fsS "http://127.0.0.1:$(http_port "$leader")/healthz" >/dev/null 2>&1; do
  i=$((i + 1))
  if [ "$i" -ge 50 ]; then
    echo "cluster-smoke: restarted node $leader never became healthy" >&2
    cat "$out_dir/node$leader.log" >&2 || true
    exit 1
  fi
  sleep 0.1
done
wait_converged 0 1 2
check_all "$leader"
echo "cluster-smoke: restarted ex-leader rejoined and converged"

for id in 0 1 2; do
  curl -fsS "http://127.0.0.1:$(http_port "$id")/cluster" \
    >"$out_dir/status-final-node$id.json"
done

echo "cluster-smoke: all checks passed"
