#!/usr/bin/env sh
# Focused smoke of the observability layer (`make slo-smoke`): start one
# chaos-configured minupd (20ms solve budget, every solver step delayed 30ms
# by fault injection, anomaly dumps under artifacts/anomalies), drive a mix
# of healthy-looking and forced-degraded traffic, then assert the whole
# flight-recorder/SLO chain end to end:
#
#   1. every request shows up in /debug/requests (JSON and HTML views);
#   2. the degraded requests are in the anomaly ring with dump file names;
#   3. the dumps exist on disk and are Perfetto-loadable trace JSON;
#   4. the route's availability burn-rate gauges moved in the Prometheus
#      exposition, alongside the runtime-collector series;
#   5. a SIGTERM drain writes the final-state dump.
#
# The dump directory is left in place (artifacts/ is gitignored) so CI can
# upload the anomaly dumps as a build artifact.
#
# Usage: scripts/slo_smoke.sh [addr] [debug-addr]
#        (defaults 127.0.0.1:18090 and 127.0.0.1:16070)
set -eu

addr="${1:-127.0.0.1:18090}"
dbg="${2:-127.0.0.1:16070}"
repo_root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo_root"
dump_dir="artifacts/anomalies"
rm -rf "$dump_dir"
mkdir -p "$dump_dir"

go build -o /tmp/minupd ./cmd/minupd

/tmp/minupd \
  -lattice testdata/lattice_fig1b.txt \
  -constraints testdata/constraints_fig2.txt \
  -addr "$addr" -debug-addr "$dbg" \
  -solve-timeout 20ms \
  -fault 'solve.step:delay:%1:30ms' \
  -flight-dump-dir "$dump_dir" -flight-dump-cap 1048576 \
  -slo 'solve:p99=10ms,avail=99.9' -slo-interval 1s &
pid=$!
trap 'kill "$pid" 2>/dev/null || true' EXIT INT TERM

i=0
until curl -fsS "http://$addr/healthz" >/dev/null 2>&1; do
  i=$((i + 1))
  if [ "$i" -ge 50 ]; then
    echo "slo-smoke: minupd did not become healthy at $addr" >&2
    exit 1
  fi
  sleep 0.1
done

fetch() {
  code="$(curl -sS -o "$2" -w '%{http_code}' "$1")"
  if [ "$code" != "200" ]; then
    echo "slo-smoke: GET $1 returned $code" >&2
    cat "$2" >&2 || true
    exit 1
  fi
}

# Every solve blows the 20ms budget through the 30ms step delay, so each one
# degrades to the baseline: five requests, five availability-budget burns.
n=0
while [ "$n" -lt 5 ]; do
  fetch "http://$addr/solve" /tmp/slo-smoke-solve.json
  grep -q '"degraded": true' /tmp/slo-smoke-solve.json
  n=$((n + 1))
done
echo "slo-smoke: 5 forced-degraded solves served"

# (1)+(2) The live view lists them, and they are anomalies with dumps.
fetch "http://$dbg/debug/requests?format=json" /tmp/slo-smoke-flight.json
grep -q '"route": "solve"' /tmp/slo-smoke-flight.json
grep -q '"degrade_reason": "deadline"' /tmp/slo-smoke-flight.json
grep -q '"dump": "anomaly-' /tmp/slo-smoke-flight.json
fetch "http://$dbg/debug/requests" /tmp/slo-smoke-flight.html
grep -q 'Recent anomalies' /tmp/slo-smoke-flight.html
echo "slo-smoke: /debug/requests lists the degraded anomalies"

# (3) The dumps are on disk and Perfetto-loadable.
count="$(ls "$dump_dir" | grep -c '^anomaly-' || true)"
if [ "$count" -lt 5 ]; then
  echo "slo-smoke: expected >=5 anomaly dumps, found $count" >&2
  ls -l "$dump_dir" >&2 || true
  exit 1
fi
for f in "$dump_dir"/anomaly-*.json; do
  grep -q '"traceEvents"' "$f"
done
echo "slo-smoke: $count Perfetto-loadable anomaly dumps in $dump_dir"

# (4) The burn gauges moved: 100% degraded traffic against a 99.9% target
# is a 1000x burn (1000000 milli); accept anything clearly non-zero.
fetch "http://$addr/metrics?format=prometheus" /tmp/slo-smoke-metrics.txt
burn="$(awk '/^slo_solve_avail_burn_5m_milli /{print $2}' /tmp/slo-smoke-metrics.txt)"
if [ -z "$burn" ] || [ "$burn" -le 1000 ]; then
  echo "slo-smoke: availability burn gauge did not move (got '${burn:-absent}')" >&2
  exit 1
fi
lat="$(awk '/^slo_solve_latency_burn_5m_milli /{print $2}' /tmp/slo-smoke-metrics.txt)"
if [ -z "$lat" ] || [ "$lat" -le 0 ]; then
  echo "slo-smoke: latency burn gauge did not move (got '${lat:-absent}')" >&2
  exit 1
fi
grep -q '^runtime_goroutines ' /tmp/slo-smoke-metrics.txt
grep -q '^runtime_heap_alloc_bytes ' /tmp/slo-smoke-metrics.txt
echo "slo-smoke: burn gauges moved (avail=$burn milli, latency=$lat milli)"

# (5) A graceful drain writes the final-state snapshot dump.
kill -TERM "$pid"
wait "$pid" || true
if ! ls "$dump_dir"/final-shutdown-*.json >/dev/null 2>&1; then
  echo "slo-smoke: no final-state dump after SIGTERM" >&2
  ls -l "$dump_dir" >&2 || true
  exit 1
fi
echo "slo-smoke: drain wrote the final-state dump"

echo "slo-smoke: all checks passed"
