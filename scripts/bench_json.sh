#!/usr/bin/env sh
# Run the solve-path benchmark family — the fresh/compiled split plus the
# policy catalog's memoized serve path — and write the measurements as
# machine-readable JSON (default BENCH_solve.json), seeding the perf
# trajectory CI keeps as an artifact.
#
# Usage: scripts/bench_json.sh [outfile]
set -eu

out="${1:-BENCH_solve.json}"
repo_root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo_root"

tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT INT TERM

go test -run '^$' \
  -bench '^(BenchmarkSolveFresh|BenchmarkSolveCompiled|BenchmarkSolveCompiledStats|BenchmarkCatalogServe|BenchmarkSolveSuppress|BenchmarkSolveDepinf)$' \
  -benchmem -count 1 . | tee "$tmp"

# One JSON object keyed by benchmark name (GOMAXPROCS suffix stripped);
# `go test -bench` lines are "Name-N  iters  ns/op  B/op  allocs/op".
awk '
BEGIN { print "{"; first = 1 }
/^Benchmark/ && $4 == "ns/op" {
  name = $1; sub(/-[0-9]+$/, "", name)
  if (!first) printf(",\n")
  first = 0
  printf("  \"%s\": {\"iterations\": %s, \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", \
         name, $2, $3, $5, $7)
}
END { print "\n}" }' "$tmp" > "$out"

# Guard against a silently empty run (e.g. a benchmark regex typo).
for want in BenchmarkSolveFresh BenchmarkSolveCompiled BenchmarkSolveCompiledStats BenchmarkCatalogServe \
            BenchmarkSolveSuppress BenchmarkSolveDepinf; do
  if ! grep -q "\"$want\"" "$out"; then
    echo "bench_json: $want missing from $out" >&2
    exit 1
  fi
done
echo "bench_json: wrote $out"
