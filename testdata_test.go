package minup_test

import (
	"os"
	"testing"

	"minup"
	"minup/internal/constraint"
)

// TestTestdataFigure2 checks the checked-in text fixtures used by
// cmd/minupd and the EXPERIMENTS.md profiling recipe stay in sync with
// the programmatic constraint.NewFigure2 fixture: parsing them and
// solving must reproduce the Figure 2(b) classification exactly.
func TestTestdataFigure2(t *testing.T) {
	lf, err := os.Open("testdata/lattice_fig1b.txt")
	if err != nil {
		t.Fatal(err)
	}
	defer lf.Close()
	lat, err := minup.ParseLattice(lf)
	if err != nil {
		t.Fatal(err)
	}
	set := minup.NewConstraintSet(lat)
	cf, err := os.Open("testdata/constraints_fig2.txt")
	if err != nil {
		t.Fatal(err)
	}
	defer cf.Close()
	if err := set.ParseInto(cf); err != nil {
		t.Fatal(err)
	}

	ref := constraint.NewFigure2()
	if got, want := set.NumAttrs(), ref.Set.NumAttrs(); got != want {
		t.Fatalf("parsed %d attrs, fixture has %d", got, want)
	}

	res, err := minup.Solve(set, minup.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for a := 0; a < set.NumAttrs(); a++ {
		name := set.AttrName(constraint.Attr(a))
		wantAttr, ok := ref.Set.AttrByName(name)
		if !ok {
			t.Fatalf("attribute %q not in programmatic fixture", name)
		}
		got := lat.FormatLevel(res.Assignment[a])
		want := ref.Lattice.FormatLevel(ref.Want[wantAttr])
		if got != want {
			t.Errorf("λ(%s) = %s, want %s (Figure 2(b))", name, got, want)
		}
	}
}
