package minup

// Benchmarks for the reproduction experiments of DESIGN.md, one family per
// table/figure claim; `go run ./cmd/benchtab` prints the same measurements
// as derived tables (with shape metrics like ns/S and search-node counts),
// and EXPERIMENTS.md records paper-claim versus measured results.
//
//	E1 BenchmarkFigure2                 Figure 2 worked example
//	E2 BenchmarkAcyclicScaling          Theorem 5.2 acyclic O(S·c)
//	E3 BenchmarkCyclicScaling           Theorem 5.2 cyclic worst case
//	E4 BenchmarkLatticeOps / Encoding   §5 lattice-operation cost
//	E5 BenchmarkVsQian                  minimal vs. overclassifying baseline
//	E6 BenchmarkVsBacktracking          §3.2 rejected alternative
//	E7 BenchmarkMinPoset                Theorem 6.1 NP-hardness contrast
//	E8 BenchmarkUpperBounds             §6 preprocessing
//	   BenchmarkMinlevelFastPath        footnote-4 ablation

import (
	"context"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"

	"minup/internal/baseline"
	"minup/internal/constraint"
	"minup/internal/core"
	"minup/internal/frontend/depinf"
	"minup/internal/frontend/suppress"
	"minup/internal/lattice"
	"minup/internal/poset"
	"minup/internal/workload"
)

// BenchmarkFigure2 (E1) solves the paper's worked example.
func BenchmarkFigure2(b *testing.B) {
	f := constraint.NewFigure2()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res := core.MustSolve(f.Set, core.Options{})
		if !res.Assignment.Equal(f.Want) {
			b.Fatal("wrong answer")
		}
	}
}

// BenchmarkAcyclicScaling (E2) solves acyclic sets of doubling size; the
// reported S metric lets ns/S be read off across sub-benchmarks.
func BenchmarkAcyclicScaling(b *testing.B) {
	lat := lattice.MustMLS("mls", []string{"U", "C", "S", "TS"},
		[]string{"a", "b", "c", "d", "e", "f", "g", "h"})
	for _, n := range []int{1000, 4000, 16000} {
		s := workload.MustConstraints(lat, workload.ConstraintSpec{
			Seed: 42, NumAttrs: n, NumConstraints: 3 * n, MaxLHS: 3,
			LevelRHSFraction: 0.3,
		})
		b.Run(fmt.Sprintf("S=%d", s.TotalSize()), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				core.MustSolve(s, core.Options{})
			}
			b.ReportMetric(float64(s.TotalSize()), "S")
		})
	}
}

// BenchmarkCyclicScaling (E3) solves the adversarial single-SCC ring whose
// Try calls traverse the entire component — the quadratic worst case.
func BenchmarkCyclicScaling(b *testing.B) {
	lat := lattice.FigureOneB()
	mid, _ := lat.ParseLevel("L3")
	for _, n := range []int{64, 256, 1024} {
		s := constraint.NewSet(lat)
		attrs := make([]constraint.Attr, n)
		for i := range attrs {
			attrs[i] = s.MustAttr(fmt.Sprintf("r%04d", i))
		}
		for i := range attrs {
			s.MustAdd([]constraint.Attr{attrs[i]}, constraint.AttrRHS(attrs[(i+1)%n]))
		}
		s.MustAdd([]constraint.Attr{attrs[0]}, constraint.LevelRHS(mid))
		b.Run(fmt.Sprintf("ring/N=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			var st core.Stats
			for i := 0; i < b.N; i++ {
				st = core.MustSolve(s, core.Options{}).Stats
			}
			b.ReportMetric(float64(st.TrySteps), "checks")
		})
	}
}

// BenchmarkLatticeOps (E4) measures single lattice operations across the
// encoded explicit lattice, the naive Hasse-walking wrapper, and the
// bit-vector MLS lattice.
func BenchmarkLatticeOps(b *testing.B) {
	base, err := workload.RandomSublattice(3, 9, 40)
	if err != nil {
		b.Fatal(err)
	}
	elems := base.Elements()
	a1 := elems[len(elems)/3]
	a2 := elems[2*len(elems)/3]
	run := func(name string, l lattice.Lattice, x, y lattice.Level) {
		b.Run(name+"/dominates", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				l.Dominates(x, y)
			}
		})
		b.Run(name+"/lub", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				l.Lub(x, y)
			}
		})
		b.Run(name+"/glb", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				l.Glb(x, y)
			}
		})
	}
	run("encoded", base, a1, a2)
	run("naive", lattice.NaiveOps{Explicit: base}, a1, a2)
	mls := lattice.MustMLS("m", []string{"U", "C", "S", "TS"},
		[]string{"a", "b", "c", "d", "e", "f", "g", "h"})
	m1, _ := mls.LevelFromParts(2, 0xa5)
	m2, _ := mls.LevelFromParts(1, 0x3c)
	run("mls", mls, m1, m2)
}

// BenchmarkEncodingEndToEnd (E4) solves the same instance with encoded and
// naive lattice operations.
func BenchmarkEncodingEndToEnd(b *testing.B) {
	base, err := workload.RandomSublattice(3, 8, 24)
	if err != nil {
		b.Fatal(err)
	}
	spec := workload.ConstraintSpec{
		Seed: 5, NumAttrs: 60, NumConstraints: 120, MaxLHS: 3,
		LevelRHSFraction: 0.3, Cyclic: true,
	}
	b.Run("encoded", func(b *testing.B) {
		s := workload.MustConstraints(base, spec)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			core.MustSolve(s, core.Options{})
		}
	})
	b.Run("naive", func(b *testing.B) {
		s := workload.MustConstraints(lattice.NaiveOps{Explicit: base}, spec)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			core.MustSolve(s, core.Options{})
		}
	})
}

// BenchmarkVsQian (E5) compares Algorithm 3.1 with the overclassifying
// polynomial propagation on the same instance.
func BenchmarkVsQian(b *testing.B) {
	lat := lattice.MustMLS("mls", []string{"U", "C", "S", "TS"},
		[]string{"a", "b", "c", "d", "e", "f"})
	s := workload.MustConstraints(lat, workload.ConstraintSpec{
		Seed: 11, NumAttrs: 800, NumConstraints: 1600, MaxLHS: 3,
		LevelRHSFraction: 0.35, Cyclic: true,
	})
	b.Run("alg3.1", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.MustSolve(s, core.Options{})
		}
	})
	b.Run("qian", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := baseline.Qian(s); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkVsBacktracking (E6) pits Algorithm 3.1 against the §3.2
// rejected alternative on entangled complex cycles.
func BenchmarkVsBacktracking(b *testing.B) {
	lat := lattice.MustChain("mil", "U", "C", "S", "TS")
	sLvl, _ := lat.ParseLevel("S")
	build := func(k, w int) *constraint.Set {
		s := constraint.NewSet(lat)
		n := k + w
		attrs := make([]constraint.Attr, n)
		for i := range attrs {
			attrs[i] = s.MustAttr(fmt.Sprintf("x%02d", i))
		}
		for i := range attrs {
			s.MustAdd([]constraint.Attr{attrs[i]}, constraint.AttrRHS(attrs[(i+1)%n]))
		}
		for i := 0; i < k; i++ {
			lhs := make([]constraint.Attr, w)
			for j := 0; j < w; j++ {
				lhs[j] = attrs[(i+j)%n]
			}
			s.MustAdd(lhs, constraint.LevelRHS(sLvl))
		}
		return s
	}
	for _, k := range []int{4, 8, 10} {
		s := build(k, 3)
		b.Run(fmt.Sprintf("alg3.1/k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.MustSolve(s, core.Options{})
			}
		})
		b.Run(fmt.Sprintf("backtracking/k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := baseline.Backtracking(s, 1<<30); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMinPoset (E7) solves Theorem 6.1 reduction instances of growing
// size; the lattice sub-benchmarks solve same-attribute-count lattice
// instances for contrast.
func BenchmarkMinPoset(b *testing.B) {
	lat := lattice.FigureOneB()
	for _, n := range []int{6, 10, 14} {
		inst, err := workload.RandomSAT3(int64(n), n, int(4.3*float64(n)))
		if err != nil {
			b.Fatal(err)
		}
		clauses := make([]poset.Clause, len(inst.Clauses))
		for i, c := range inst.Clauses {
			clauses[i] = poset.Clause{c[0], c[1], c[2]}
		}
		red, err := poset.Reduce(n, clauses)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("poset/vars=%d", n), func(b *testing.B) {
			var nodes int
			for i := 0; i < b.N; i++ {
				_, st, err := red.Instance.Solve(0)
				if err != nil {
					b.Fatal(err)
				}
				nodes = st.Nodes
			}
			b.ReportMetric(float64(nodes), "nodes")
		})
		attrs := len(red.Instance.AttrNames)
		ls := workload.MustConstraints(lat, workload.ConstraintSpec{
			Seed: int64(n), NumAttrs: attrs, NumConstraints: 2 * attrs,
			MaxLHS: 3, LevelRHSFraction: 0.3, Cyclic: true,
		})
		b.Run(fmt.Sprintf("lattice/attrs=%d", attrs), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.MustSolve(ls, core.Options{})
			}
		})
	}
}

// BenchmarkUpperBounds (E8) measures the §6 preprocessing pass and the
// full bounded solve.
func BenchmarkUpperBounds(b *testing.B) {
	lat := lattice.MustMLS("mls", []string{"U", "C", "S", "TS"},
		[]string{"a", "b", "c", "d", "e", "f"})
	s := workload.MustConstraints(lat, workload.ConstraintSpec{
		Seed: 9, NumAttrs: 4000, NumConstraints: 12000, MaxLHS: 3,
		LevelRHSFraction: 0.35,
	})
	sol := core.MustSolve(s, core.Options{}).Assignment
	for i, a := range s.Attrs() {
		if i%4 == 0 {
			s.MustAddUpper(a, sol[a])
		}
	}
	b.Run("preprocess", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.DeriveUpperBounds(s); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("solve", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.Solve(s, core.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkMinlevelFastPath (ablation) compares the footnote-4 closed form
// against the generic lattice descent on a compartmented lattice.
func BenchmarkMinlevelFastPath(b *testing.B) {
	lat := lattice.MustMLS("mls", []string{"U", "C", "S", "TS"},
		[]string{"a", "b", "c", "d", "e", "f", "g", "h"})
	s := workload.MustConstraints(lat, workload.ConstraintSpec{
		Seed: 3, NumAttrs: 1000, NumConstraints: 2500, MaxLHS: 4,
		LevelRHSFraction: 0.3, Cyclic: true,
	})
	b.Run("footnote4", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.MustSolve(s, core.Options{})
		}
	})
	b.Run("generic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.MustSolve(s, core.Options{DisableMinComplement: true})
		}
	})
}

// BenchmarkSimpleCycleCollapse (ablation) measures the §3.2 simple-cycle
// optimization on the ring worst case: collapse turns the quadratic
// forward-lowering into one linear pass.
func BenchmarkSimpleCycleCollapse(b *testing.B) {
	lat := lattice.FigureOneB()
	mid, _ := lat.ParseLevel("L3")
	for _, n := range []int{256, 1024} {
		s := constraint.NewSet(lat)
		attrs := make([]constraint.Attr, n)
		for i := range attrs {
			attrs[i] = s.MustAttr(fmt.Sprintf("r%04d", i))
		}
		for i := range attrs {
			s.MustAdd([]constraint.Attr{attrs[i]}, constraint.AttrRHS(attrs[(i+1)%n]))
		}
		s.MustAdd([]constraint.Attr{attrs[0]}, constraint.LevelRHS(mid))
		b.Run(fmt.Sprintf("general/N=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.MustSolve(s, core.Options{})
			}
		})
		b.Run(fmt.Sprintf("collapse/N=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.MustSolve(s, core.Options{CollapseSimpleCycles: true})
			}
		})
	}
}

// BenchmarkRepair measures incremental repair against a full re-solve in
// the scenario repair exists for: an instance with an expensive cyclic
// region that the added constraint does not touch. A policy change local
// to the acyclic tail must not pay to re-solve the ring. (On dense
// instances whose dependency closure covers most attributes, repair
// degrades to roughly a full solve plus a linear scan — see
// TestRepairRandom for the correctness side.)
func BenchmarkRepair(b *testing.B) {
	lat := lattice.FigureOneB()
	mid, _ := lat.ParseLevel("L3")
	s := constraint.NewSet(lat)
	// Expensive region: the E3 worst-case ring.
	const ringN = 1024
	ring := make([]constraint.Attr, ringN)
	for i := range ring {
		ring[i] = s.MustAttr(fmt.Sprintf("r%04d", i))
	}
	for i := range ring {
		s.MustAdd([]constraint.Attr{ring[i]}, constraint.AttrRHS(ring[(i+1)%ringN]))
	}
	s.MustAdd([]constraint.Attr{ring[0]}, constraint.LevelRHS(mid))
	// Independent acyclic tail of 100 attributes.
	tail := make([]constraint.Attr, 100)
	for i := range tail {
		tail[i] = s.MustAttr(fmt.Sprintf("t%03d", i))
		if i > 0 {
			s.MustAdd([]constraint.Attr{tail[i]}, constraint.AttrRHS(tail[i-1]))
		}
	}
	base := core.MustSolve(s, core.Options{}).Assignment
	n := len(s.Constraints())
	// The policy change touches only the tail.
	l4, _ := lat.ParseLevel("L4")
	s.MustAdd([]constraint.Attr{tail[0]}, constraint.LevelRHS(l4))
	if _, st, err := core.Repair(s, n, base, core.RepairOptions{}); err != nil ||
		st.ViolatedConstraints == 0 || st.Recomputed >= ringN {
		b.Fatalf("bench setup: repair shape wrong (%v, %+v)", err, st)
	}
	b.Run("repair", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := core.Repair(s, n, base, core.RepairOptions{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("full-resolve", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.MustSolve(s, core.Options{})
		}
	})
}

// BenchmarkLHSWidth sweeps complex-constraint width at fixed S, probing
// how association arity affects solve cost.
func BenchmarkLHSWidth(b *testing.B) {
	lat := lattice.MustMLS("mls", []string{"U", "C", "S", "TS"},
		[]string{"a", "b", "c", "d", "e", "f"})
	for _, w := range []int{1, 2, 4, 8} {
		s := workload.MustConstraints(lat, workload.ConstraintSpec{
			Seed: 17, NumAttrs: 1000, NumConstraints: 4000 / w, MaxLHS: w,
			LevelRHSFraction: 0.35, Cyclic: true,
		})
		b.Run(fmt.Sprintf("w=%d/S=%d", w, s.TotalSize()), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.MustSolve(s, core.Options{})
			}
		})
	}
}

// BenchmarkProbeMinimality measures the polynomial minimality certifier
// relative to the solve it certifies.
func BenchmarkProbeMinimality(b *testing.B) {
	lat := lattice.MustMLS("mls", []string{"U", "S", "TS"}, []string{"a", "b", "c", "d"})
	s := workload.MustConstraints(lat, workload.ConstraintSpec{
		Seed: 4, NumAttrs: 500, NumConstraints: 1200, MaxLHS: 3,
		LevelRHSFraction: 0.3, Cyclic: true,
	})
	sol := core.MustSolve(s, core.Options{}).Assignment
	b.Run("solve", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.MustSolve(s, core.Options{})
		}
	})
	b.Run("probe", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			minimal, _, err := core.ProbeMinimality(s, sol)
			if err != nil || !minimal {
				b.Fatalf("probe: %v %v", minimal, err)
			}
		}
	})
}

// BenchmarkSolveFacade exercises the public API end to end (parse +
// solve), the path a downstream user hits.
func BenchmarkSolveFacade(b *testing.B) {
	lat := MustChainLattice("mil", "U", "C", "S", "TS")
	text := `
salary >= C
lub(name, salary) >= TS
bonus >= salary
S >= rank
`
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		set := NewConstraintSet(lat)
		if err := set.ParseString(text); err != nil {
			b.Fatal(err)
		}
		if _, err := Solve(set, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// solveBenchSet builds the instance shared by BenchmarkSolveFresh and
// BenchmarkSolveCompiled: a mid-sized cyclic set, the shape where repeated
// solving of one policy is the realistic hot path.
func solveBenchSet(b *testing.B) *ConstraintSet {
	b.Helper()
	lat := MustChainLattice("mil", "U", "C", "S", "TS")
	set, err := workload.Constraints(lat, workload.ConstraintSpec{
		Seed: 11, NumAttrs: 50, NumConstraints: 150, MaxLHS: 3,
		LevelRHSFraction: 0.3, Cyclic: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	return set
}

// BenchmarkSolveFresh measures the one-shot path: every iteration pays for
// a throwaway compilation (graph, SCCs, priorities) before solving.
func BenchmarkSolveFresh(b *testing.B) {
	set := solveBenchSet(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(set, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSolveCompiled measures the compile/solve split: compilation is
// paid once outside the loop and each iteration runs a pooled session
// against the immutable snapshot. Its allocs/op is the zero-cost-telemetry
// guard: with no sink installed it must not move when the instrumentation
// changes.
func BenchmarkSolveCompiled(b *testing.B) {
	set := solveBenchSet(b)
	compiled := Compile(set)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SolveContext(ctx, compiled, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCatalogServe measures the policy catalog's serve path on the
// same instance as BenchmarkSolveCompiled: a warm (memoized) solve per
// iteration — the steady state of GET /policies/{name}/solve on an
// unchanged policy, which must perform zero compiles and zero full solves.
// The gap to BenchmarkSolveCompiled is the price of the catalog lookup
// plus formatting the assignment by name.
func BenchmarkCatalogServe(b *testing.B) {
	set := solveBenchSet(b)
	var text strings.Builder
	if _, err := set.WriteTo(&text); err != nil {
		b.Fatal(err)
	}
	cat, err := OpenCatalog(CatalogOptions{})
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	// A waited Put leaves the cache warm deterministically.
	if _, err := cat.Put(ctx, "bench", "chain mil\nlevels U C S TS\n", text.String(), PolicyUnconditional, PolicyMutateOptions{Wait: true}); err != nil {
		b.Fatal(err)
	}
	if _, err := cat.Solve(ctx, "bench"); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := cat.Solve(ctx, "bench")
		if err != nil {
			b.Fatal(err)
		}
		if !res.CacheHit {
			b.Fatal("catalog serve missed the cache")
		}
	}
}

// BenchmarkCatalogMutateParallel measures durable mutation throughput as
// the shard count grows: concurrent writers, each owning its own policy,
// append constraint lines (with a periodic Put reset to keep the texts
// bounded) against a WAL-backed catalog with fsync off. At one shard every
// writer contends on a single mutex and a single log; with the name-hashed
// shards the writers spread out, so throughput at 4 shards must beat the
// 1-shard number by at least 2x on a multicore machine. The solver refresh
// runs on the shard workers and is deliberately outside the measured
// mutation latency.
func BenchmarkCatalogMutateParallel(b *testing.B) {
	const (
		benchLat  = "chain mil\nlevels U C S TS\n"
		benchCons = "attrs salary rank\nsalary >= rank\nrank >= S\n"
	)
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			cat, err := OpenCatalog(CatalogOptions{
				Dir:           b.TempDir(),
				Sync:          WALSyncNever,
				Shards:        shards,
				SnapshotEvery: -1,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer cat.Close()
			ctx := context.Background()
			var ids atomic.Int64
			b.ReportAllocs()
			// Several writers per core: contention on the shard locks and
			// WAL files is the thing being measured, and GOMAXPROCS
			// goroutines alone would leave single-core machines with one
			// writer and nothing to contend.
			b.SetParallelism(4)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				name := fmt.Sprintf("w%03d", ids.Add(1))
				if _, err := cat.Put(ctx, name, benchLat, benchCons, PolicyUnconditional); err != nil {
					b.Fatal(err)
				}
				for i := 0; pb.Next(); i++ {
					if i%32 == 31 {
						if _, err := cat.Put(ctx, name, benchLat, benchCons, PolicyUnconditional); err != nil {
							b.Fatal(err)
						}
						continue
					}
					line := fmt.Sprintf("x%02d >= C\n", i%32)
					if _, err := cat.Append(ctx, name, line, PolicyUnconditional); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.StopTimer()
			if err := cat.Flush(ctx); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkSolveSuppress measures the compiled solve path on a
// cell-suppression frontend instance: a dense 12x12 cross-tab whose
// row/column lub constraints have the connectivity shape the paper-shaped
// random generator (solveBenchSet) never produces. Tracked next to
// BenchmarkSolveCompiled in BENCH_solve.json so a solver change that only
// hurts grid-shaped instances still trips the trend gate.
func BenchmarkSolveSuppress(b *testing.B) {
	tab, err := suppress.Generate(suppress.GenSpec{
		Seed: 7, Rows: 12, Cols: 12, Levels: 3, Density: 0.2,
	})
	if err != nil {
		b.Fatal(err)
	}
	c, err := suppress.Frontend{}.Compile(tab)
	if err != nil {
		b.Fatal(err)
	}
	compiled := Compile(c.Set)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SolveContext(ctx, compiled, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSolveDepinf measures the compiled solve path on a
// dependency-inference frontend instance: a deep layered DAG of denial
// dependencies, the long-chain propagation shape.
func BenchmarkSolveDepinf(b *testing.B) {
	rel, err := depinf.Generate(depinf.GenSpec{
		Seed: 7, Depth: 8, Width: 5, Fanout: 3, Levels: 4, Extra: 12,
	})
	if err != nil {
		b.Fatal(err)
	}
	c, err := depinf.Frontend{}.Compile(rel)
	if err != nil {
		b.Fatal(err)
	}
	compiled := Compile(c.Set)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SolveContext(ctx, compiled, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSolveCompiledStats measures the fully observed compiled path —
// lattice op counting, a counting event sink, and registry aggregation all
// enabled — the upper bound a telemetry-heavy deployment pays relative to
// BenchmarkSolveCompiled.
func BenchmarkSolveCompiledStats(b *testing.B) {
	set := solveBenchSet(b)
	compiled := Compile(set)
	reg := NewMetricsRegistry()
	opt := Options{
		Sink:              NewCountingSink(reg, "bench.events"),
		CollectLatticeOps: true,
		Metrics:           reg,
	}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SolveContext(ctx, compiled, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSolveCompiledTraced measures the span-instrumented path: a root
// span travels in the context, so every solver event becomes a leaf span
// under per-SCC children. The gap to BenchmarkSolveCompiled is the full
// price of request-scoped tracing; the untraced number itself must not
// move (see that benchmark's doc comment).
func BenchmarkSolveCompiledTraced(b *testing.B) {
	set := solveBenchSet(b)
	compiled := Compile(set)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		root := NewTracer().Start("request")
		ctx := ContextWithSpan(context.Background(), root)
		if _, err := SolveContext(ctx, compiled, Options{}); err != nil {
			b.Fatal(err)
		}
		root.End()
	}
}

// BenchmarkSolveCompiledTrace measures the delta-based trace: per-step
// deltas instead of full assignment clones keep tracing linear in the
// number of level changes.
func BenchmarkSolveCompiledTrace(b *testing.B) {
	set := solveBenchSet(b)
	compiled := Compile(set)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SolveContext(ctx, compiled, Options{RecordTrace: true}); err != nil {
			b.Fatal(err)
		}
	}
}
