// Package fault is a deterministic, seedable fault injector for chaos
// testing the solver and the serving layer. Production code exposes named
// fault points ("solve.step", "pool.get", "lattice.lub", ...) behind no-op
// hooks: with no injector installed the hook is a single nil check, so the
// hot path stays allocation-free and effectively cost-free. Tests install
// an Injector carrying rules that delay, cancel, or panic at chosen hits of
// chosen points, and the chaos suites assert the system degrades safely —
// typed errors, no deadlocks, no corrupted pooled state.
//
// Rules fire deterministically: one-shot on the Nth hit of a point, on
// every Nth hit, or probabilistically from a PRNG seeded at construction
// (so a given seed always injects the same schedule). Hit counting is
// global per point across all goroutines sharing the injector, which is
// exactly what concurrent chaos tests want: "the 40th lattice lub anywhere
// in the process panics".
package fault

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Action is what a rule does when it fires.
type Action uint8

const (
	// Delay sleeps for the rule's duration, simulating a slow dependency
	// (a slow lattice operation, a stalled pool). Valid at every point.
	Delay Action = iota
	// Cancel makes the fault point return an error wrapping ErrInjected,
	// simulating a mid-operation cancellation. Only meaningful at points
	// with an error path (solver steps); at value-returning points (the
	// lattice wrapper) a Cancel rule panics instead, which the solver's
	// recovery guard converts to a typed internal error.
	Cancel
	// Panic panics with a *PanicError, simulating a solver bug. The core
	// recovery guard is expected to catch it.
	Panic
)

// String names the action as it appears in specs.
func (a Action) String() string {
	switch a {
	case Delay:
		return "delay"
	case Cancel:
		return "cancel"
	case Panic:
		return "panic"
	}
	return fmt.Sprintf("action(%d)", a)
}

// ErrInjected is the sentinel all injected cancellations wrap. Detect with
// errors.Is.
var ErrInjected = errors.New("fault: injected cancellation")

// PanicError is the value thrown by Panic rules, so recovery guards (and
// tests) can tell an injected panic from a genuine bug.
type PanicError struct {
	Point string // fault point that fired
	Hit   uint64 // 1-based hit count at which it fired
	Msg   string // extra context (e.g. "cancel rule at value-returning point")
}

func (e *PanicError) Error() string {
	if e.Msg != "" {
		return fmt.Sprintf("fault: injected panic at %s (hit %d): %s", e.Point, e.Hit, e.Msg)
	}
	return fmt.Sprintf("fault: injected panic at %s (hit %d)", e.Point, e.Hit)
}

// Rule arms one fault at one point. Exactly one of Nth, Every, Prob selects
// when it fires: Nth > 0 fires once at the Nth hit (1-based); Every > 0
// fires at every multiple of Every; Prob > 0 fires each hit with that
// probability, drawn from the injector's seeded PRNG.
type Rule struct {
	Point string
	Act   Action
	Nth   uint64
	Every uint64
	Prob  float64
	Dur   time.Duration // Delay only
}

func (r Rule) validate() error {
	if r.Point == "" {
		return errors.New("fault: rule without a point")
	}
	selectors := 0
	if r.Nth > 0 {
		selectors++
	}
	if r.Every > 0 {
		selectors++
	}
	if r.Prob > 0 {
		selectors++
	}
	if selectors != 1 {
		return fmt.Errorf("fault: rule for %s must set exactly one of Nth, Every, Prob", r.Point)
	}
	if r.Prob < 0 || r.Prob > 1 {
		return fmt.Errorf("fault: rule for %s has probability %v outside [0,1]", r.Point, r.Prob)
	}
	if r.Act == Delay && r.Dur <= 0 {
		return fmt.Errorf("fault: delay rule for %s needs a positive duration", r.Point)
	}
	if r.Act != Delay && r.Dur != 0 {
		return fmt.Errorf("fault: %s rule for %s must not carry a duration", r.Act, r.Point)
	}
	return nil
}

// Injector holds armed rules and per-point hit counters. The zero value is
// unusable; construct with New. A nil *Injector is a valid no-op: every
// method short-circuits, which is what production hooks rely on. All
// methods are safe for concurrent use.
type Injector struct {
	// armed is a lock-free fast path: false while no rules are loaded, so a
	// permanently-installed injector (minupd -fault-admin, waiting for a
	// chaos stage to arm it over /debug/fault) costs one atomic load per
	// fault-point hit instead of a mutex acquisition per solver step. Hit
	// accounting only runs while armed.
	armed atomic.Bool

	mu    sync.Mutex
	rules map[string][]Rule
	hits  map[string]uint64
	rng   uint64 // xorshift64* state; deterministic per seed
}

// New returns an empty injector whose probabilistic rules draw from a PRNG
// seeded with seed (a zero seed is replaced so the generator never sticks).
func New(seed int64) *Injector {
	s := uint64(seed)
	if s == 0 {
		s = 0x9E3779B97F4A7C15
	}
	return &Injector{
		rules: make(map[string][]Rule),
		hits:  make(map[string]uint64),
		rng:   s,
	}
}

// Add arms one rule, validating it first.
func (i *Injector) Add(r Rule) error {
	if err := r.validate(); err != nil {
		return err
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	i.rules[r.Point] = append(i.rules[r.Point], r)
	i.armed.Store(true)
	return nil
}

// Rearm atomically replaces every armed rule with the ones parsed from
// spec (the ParseSpec grammar) and resets all hit counters, so a
// long-running server can have chaos turned on, retuned, or turned off
// between load-test stages without a restart. An empty spec disarms the
// injector, restoring the lock-free fast path. The seeded PRNG state is
// kept, so a rearm does not replay earlier probabilistic draws.
func (i *Injector) Rearm(spec string) error {
	parsed, err := ParseSpec(spec, 1)
	if err != nil {
		return err
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	i.rules = parsed.rules
	i.hits = make(map[string]uint64)
	i.armed.Store(len(i.rules) > 0)
	return nil
}

// Snapshot reports the injector's current armed state for introspection
// surfaces (minupd's /debug/fault): every rule grouped per point and the
// hit counts accumulated since the last Rearm.
type Snapshot struct {
	Armed bool              `json:"armed"`
	Rules map[string][]Rule `json:"rules,omitempty"`
	Hits  map[string]uint64 `json:"hits,omitempty"`
}

// Snapshot returns a copy of the injector's rules and hit counters. Safe
// on a nil receiver, which reports an unarmed injector.
func (i *Injector) Snapshot() Snapshot {
	if i == nil {
		return Snapshot{}
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	s := Snapshot{Armed: i.armed.Load()}
	if len(i.rules) > 0 {
		s.Rules = make(map[string][]Rule, len(i.rules))
		for p, rs := range i.rules {
			s.Rules[p] = append([]Rule(nil), rs...)
		}
	}
	if len(i.hits) > 0 {
		s.Hits = make(map[string]uint64, len(i.hits))
		for p, n := range i.hits {
			s.Hits[p] = n
		}
	}
	return s
}

// MustAdd is Add that panics on an invalid rule, for test setup.
func (i *Injector) MustAdd(r Rule) {
	if err := i.Add(r); err != nil {
		panic(err)
	}
}

// Hits reports how many times the point has been hit so far. Hits are
// only accounted while at least one rule is armed (the unarmed fast path
// skips the counter), and Rearm resets them.
func (i *Injector) Hits(point string) uint64 {
	if i == nil {
		return 0
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.hits[point]
}

// next draws from the xorshift64* generator. Caller holds the mutex.
func (i *Injector) next() uint64 {
	x := i.rng
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	i.rng = x
	return x * 0x2545F4914F6CDD1D
}

// Hit records one hit of the point and fires any rule whose schedule
// matches. A Delay rule sleeps and returns nil; a Cancel rule returns an
// error wrapping ErrInjected; a Panic rule panics with *PanicError. Safe on
// a nil receiver (no-op) — production hooks guard with one nil check and
// never reach here.
func (i *Injector) Hit(point string) error {
	if i == nil || !i.armed.Load() {
		return nil
	}
	act, n, dur, fired := i.match(point)
	if !fired {
		return nil
	}
	switch act {
	case Delay:
		time.Sleep(dur)
		return nil
	case Cancel:
		return fmt.Errorf("%w at %s (hit %d)", ErrInjected, point, n)
	default:
		panic(&PanicError{Point: point, Hit: n})
	}
}

// HitValue is Hit for value-returning call sites that have no error path
// (the lattice wrapper): Delay and Panic behave as in Hit, while a Cancel
// rule — impossible to honor without an error return — panics with an
// explanatory *PanicError, which the solver's recovery guard converts to a
// typed internal error.
func (i *Injector) HitValue(point string) {
	if i == nil || !i.armed.Load() {
		return
	}
	act, n, dur, fired := i.match(point)
	if !fired {
		return
	}
	switch act {
	case Delay:
		time.Sleep(dur)
	case Cancel:
		panic(&PanicError{Point: point, Hit: n, Msg: "cancel rule at value-returning point"})
	default:
		panic(&PanicError{Point: point, Hit: n})
	}
}

// match advances the point's hit counter and reports the first matching
// rule, if any.
func (i *Injector) match(point string) (act Action, hit uint64, dur time.Duration, fired bool) {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.hits[point]++
	n := i.hits[point]
	for _, r := range i.rules[point] {
		switch {
		case r.Nth > 0 && n == r.Nth:
			fired = true
		case r.Every > 0 && n%r.Every == 0:
			fired = true
		case r.Prob > 0 && float64(i.next()>>11)/(1<<53) < r.Prob:
			fired = true
		}
		if fired {
			return r.Act, n, r.Dur, true
		}
	}
	return 0, n, 0, false
}

// ParseSpec builds an injector from a textual rule list, the form taken by
// command-line flags (minupd -fault). Rules are separated by ';':
//
//	rule   := point ':' action ':' when [':' duration]
//	action := "delay" | "cancel" | "panic"
//	when   := N      exactly the Nth hit (1-based)
//	        | '%' N  every Nth hit
//	        | '~' F  each hit with probability F in (0,1], seeded
//
// Examples:
//
//	solve.step:delay:%1:5ms        every solver step sleeps 5ms
//	pool.get:panic:3               the 3rd session checkout panics
//	lattice.lub:delay:~0.01:1ms    1% of lubs sleep 1ms
//	solve.try:cancel:10            the 10th Try is canceled
//
// An empty spec yields an empty (armed-with-nothing) injector.
func ParseSpec(spec string, seed int64) (*Injector, error) {
	inj := New(seed)
	for _, raw := range strings.Split(spec, ";") {
		raw = strings.TrimSpace(raw)
		if raw == "" {
			continue
		}
		parts := strings.Split(raw, ":")
		if len(parts) < 3 {
			return nil, fmt.Errorf("fault: rule %q: want point:action:when[:duration]", raw)
		}
		r := Rule{Point: parts[0]}
		switch parts[1] {
		case "delay":
			r.Act = Delay
		case "cancel":
			r.Act = Cancel
		case "panic":
			r.Act = Panic
		default:
			return nil, fmt.Errorf("fault: rule %q: unknown action %q", raw, parts[1])
		}
		when := parts[2]
		var err error
		switch {
		case strings.HasPrefix(when, "%"):
			r.Every, err = strconv.ParseUint(when[1:], 10, 64)
		case strings.HasPrefix(when, "~"):
			r.Prob, err = strconv.ParseFloat(when[1:], 64)
		default:
			r.Nth, err = strconv.ParseUint(when, 10, 64)
		}
		if err != nil {
			return nil, fmt.Errorf("fault: rule %q: bad schedule %q: %v", raw, when, err)
		}
		if r.Act == Delay {
			if len(parts) != 4 {
				return nil, fmt.Errorf("fault: rule %q: delay needs a duration", raw)
			}
			r.Dur, err = time.ParseDuration(parts[3])
			if err != nil {
				return nil, fmt.Errorf("fault: rule %q: bad duration: %v", raw, err)
			}
		} else if len(parts) != 3 {
			return nil, fmt.Errorf("fault: rule %q: %s takes no duration", raw, parts[1])
		}
		if err := inj.Add(r); err != nil {
			return nil, err
		}
	}
	return inj, nil
}
