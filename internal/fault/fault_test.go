package fault

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func TestNilInjectorIsNoOp(t *testing.T) {
	var inj *Injector
	if err := inj.Hit("anything"); err != nil {
		t.Fatalf("nil injector Hit = %v", err)
	}
	inj.HitValue("anything")
	if inj.Hits("anything") != 0 {
		t.Fatal("nil injector counted hits")
	}
}

func TestNthFiresExactlyOnce(t *testing.T) {
	inj := New(1)
	inj.MustAdd(Rule{Point: "p", Act: Cancel, Nth: 3})
	for n := 1; n <= 10; n++ {
		err := inj.Hit("p")
		if n == 3 {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("hit %d: want ErrInjected, got %v", n, err)
			}
		} else if err != nil {
			t.Fatalf("hit %d: unexpected %v", n, err)
		}
	}
	if got := inj.Hits("p"); got != 10 {
		t.Fatalf("Hits = %d, want 10", got)
	}
}

func TestEveryFiresPeriodically(t *testing.T) {
	inj := New(1)
	inj.MustAdd(Rule{Point: "p", Act: Cancel, Every: 4})
	fired := 0
	for n := 1; n <= 12; n++ {
		if err := inj.Hit("p"); err != nil {
			fired++
			if n%4 != 0 {
				t.Fatalf("fired off-schedule at hit %d", n)
			}
		}
	}
	if fired != 3 {
		t.Fatalf("fired %d times in 12 hits, want 3", fired)
	}
}

func TestProbDeterministicPerSeed(t *testing.T) {
	run := func(seed int64) []int {
		inj := New(seed)
		inj.MustAdd(Rule{Point: "p", Act: Cancel, Prob: 0.3})
		var fired []int
		for n := 1; n <= 200; n++ {
			if inj.Hit("p") != nil {
				fired = append(fired, n)
			}
		}
		return fired
	}
	a, b := run(42), run(42)
	if len(a) == 0 || len(a) == 200 {
		t.Fatalf("p=0.3 fired %d/200 times; schedule degenerate", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at index %d: %d vs %d", i, a[i], b[i])
		}
	}
	if c := run(43); len(c) == len(a) {
		same := true
		for i := range c {
			if c[i] != a[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical schedules")
		}
	}
}

func TestPanicRule(t *testing.T) {
	inj := New(1)
	inj.MustAdd(Rule{Point: "p", Act: Panic, Nth: 1})
	defer func() {
		r := recover()
		pe, ok := r.(*PanicError)
		if !ok {
			t.Fatalf("recovered %T, want *PanicError", r)
		}
		if pe.Point != "p" || pe.Hit != 1 {
			t.Fatalf("panic carries %+v", pe)
		}
	}()
	inj.Hit("p")
	t.Fatal("panic rule did not panic")
}

func TestHitValueCancelPanics(t *testing.T) {
	inj := New(1)
	inj.MustAdd(Rule{Point: "lattice.lub", Act: Cancel, Nth: 1})
	defer func() {
		if _, ok := recover().(*PanicError); !ok {
			t.Fatal("HitValue on a cancel rule must panic with *PanicError")
		}
	}()
	inj.HitValue("lattice.lub")
}

func TestDelayRuleSleeps(t *testing.T) {
	inj := New(1)
	inj.MustAdd(Rule{Point: "p", Act: Delay, Nth: 1, Dur: 20 * time.Millisecond})
	start := time.Now()
	if err := inj.Hit("p"); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 15*time.Millisecond {
		t.Fatalf("delay rule slept only %v", d)
	}
}

func TestConcurrentHitsCountExactly(t *testing.T) {
	inj := New(1)
	inj.MustAdd(Rule{Point: "p", Act: Cancel, Every: 10})
	const goroutines, each = 8, 125
	var wg sync.WaitGroup
	var fired sync.Map
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			n := 0
			for i := 0; i < each; i++ {
				if inj.Hit("p") != nil {
					n++
				}
			}
			fired.Store(g, n)
		}(g)
	}
	wg.Wait()
	total := 0
	fired.Range(func(_, v any) bool { total += v.(int); return true })
	if want := goroutines * each / 10; total != want {
		t.Fatalf("every-10 rule fired %d times over %d hits, want %d", total, goroutines*each, want)
	}
}

func TestRuleValidation(t *testing.T) {
	inj := New(1)
	for _, r := range []Rule{
		{Point: "", Act: Cancel, Nth: 1},
		{Point: "p", Act: Cancel},                                // no schedule
		{Point: "p", Act: Cancel, Nth: 1, Every: 2},              // two schedules
		{Point: "p", Act: Delay, Nth: 1},                         // delay without duration
		{Point: "p", Act: Cancel, Nth: 1, Dur: time.Millisecond}, // duration on cancel
		{Point: "p", Act: Cancel, Prob: 1.5},                     // probability out of range
	} {
		if err := inj.Add(r); err == nil {
			t.Errorf("Add accepted invalid rule %+v", r)
		}
	}
}

func TestParseSpec(t *testing.T) {
	inj, err := ParseSpec("solve.step:delay:%2:5ms; pool.get:panic:3 ;lattice.lub:cancel:~0.5", 7)
	if err != nil {
		t.Fatal(err)
	}
	// delay every 2nd hit
	start := time.Now()
	inj.Hit("solve.step")
	inj.Hit("solve.step")
	if d := time.Since(start); d < 4*time.Millisecond {
		t.Fatalf("parsed delay rule slept %v", d)
	}
	// panic on 3rd hit
	inj.Hit("pool.get")
	inj.Hit("pool.get")
	func() {
		defer func() {
			if _, ok := recover().(*PanicError); !ok {
				t.Error("parsed panic rule did not fire on 3rd hit")
			}
		}()
		inj.Hit("pool.get")
	}()

	for _, bad := range []string{
		"p:delay:%1",     // delay without duration
		"p:cancel:1:5ms", // duration on cancel
		"p:explode:1",    // unknown action
		"p:cancel:x",     // bad schedule
		"nope",           // malformed
	} {
		if _, err := ParseSpec(bad, 1); err == nil {
			t.Errorf("ParseSpec accepted %q", bad)
		}
	}
	if inj, err := ParseSpec("", 1); err != nil || inj == nil {
		t.Fatalf("empty spec: %v", err)
	}
}

func TestUnarmedInjectorFastPath(t *testing.T) {
	inj := New(1)
	// No rules armed: hits pass through without firing or accounting.
	for n := 0; n < 5; n++ {
		if err := inj.Hit("p"); err != nil {
			t.Fatalf("unarmed Hit = %v", err)
		}
		inj.HitValue("p")
	}
	if got := inj.Hits("p"); got != 0 {
		t.Fatalf("unarmed injector accounted %d hits", got)
	}
	if s := inj.Snapshot(); s.Armed || len(s.Rules) != 0 {
		t.Fatalf("unarmed Snapshot = %+v", s)
	}
}

func TestRearmReplacesRulesAndResetsHits(t *testing.T) {
	inj := New(1)
	inj.MustAdd(Rule{Point: "a", Act: Cancel, Every: 1})
	if err := inj.Hit("a"); !errors.Is(err, ErrInjected) {
		t.Fatalf("armed Hit = %v, want ErrInjected", err)
	}

	// Rearm onto a different point: the old rule is gone, counters reset.
	if err := inj.Rearm("b:cancel:%1"); err != nil {
		t.Fatal(err)
	}
	if err := inj.Hit("a"); err != nil {
		t.Fatalf("Hit at replaced point = %v", err)
	}
	if err := inj.Hit("b"); !errors.Is(err, ErrInjected) {
		t.Fatalf("Hit at rearmed point = %v, want ErrInjected", err)
	}
	s := inj.Snapshot()
	if !s.Armed || len(s.Rules["b"]) != 1 || len(s.Rules["a"]) != 0 {
		t.Fatalf("Snapshot after rearm = %+v", s)
	}
	if s.Hits["b"] != 1 {
		t.Fatalf("hits after rearm = %v, want b:1", s.Hits)
	}

	// An empty spec disarms; hits flow freely again.
	if err := inj.Rearm(""); err != nil {
		t.Fatal(err)
	}
	for n := 0; n < 3; n++ {
		if err := inj.Hit("b"); err != nil {
			t.Fatalf("disarmed Hit = %v", err)
		}
	}
	if s := inj.Snapshot(); s.Armed || len(s.Hits) != 0 {
		t.Fatalf("disarmed Snapshot = %+v", s)
	}

	// A bad spec is rejected and leaves the current state untouched.
	if err := inj.Rearm("nonsense"); err == nil {
		t.Fatal("Rearm accepted a malformed spec")
	}
	if s := inj.Snapshot(); s.Armed {
		t.Fatalf("failed Rearm armed the injector: %+v", s)
	}
}

func TestRearmConcurrentWithHits(t *testing.T) {
	inj := New(1)
	done := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
					inj.Hit("solve.step")
					inj.HitValue("lattice.lub")
				}
			}
		}()
	}
	for n := 0; n < 200; n++ {
		spec := "solve.step:delay:%50:1us"
		if n%2 == 1 {
			spec = ""
		}
		if err := inj.Rearm(spec); err != nil {
			t.Errorf("Rearm: %v", err)
			break
		}
	}
	close(done)
	wg.Wait()
}
