// Package cluster replicates the policy catalog across a set of nodes: a
// term- and lease-based leader accepts mutations and streams each shard's
// WAL records — framed exactly as they sit on disk (internal/wal's
// length+CRC32 format) — to its followers over loopback TCP, acknowledging
// a mutation only once a majority of replicas have durably appended it.
// Followers apply the frames through the catalog's follower-apply surface
// (catalog.ApplyRecord), which feeds the existing refresh pipeline, so a
// replica serves the same memoized solve/read path as the leader. New or
// lagging followers catch up from a shipped shard snapshot (the same bytes
// as catalog-<i>.snap) plus the tail frames.
//
// # Leadership
//
// Leadership is CovenantSQL-blockproducer-shaped: one leader per term,
// kept alive by heartbeats every tick and a lease. A follower that hears
// nothing for its election timeout (lease plus a deterministic per-node
// jitter) campaigns with term+1; a voter grants at most one vote per term,
// refuses candidates while its own leader lease is still fresh, and
// refuses candidates whose log is behind its own (last-log term, then
// per-shard sequence numbers). A leader that cannot reach a majority of
// peers within its lease steps down rather than serve stale
// acknowledgements. Term, vote, and last-log term are persisted
// (cluster.state.json) so restarts cannot double-vote.
//
// A deposed or restarted leader may carry an unacknowledged log tail that
// the new leader never saw. Such a node marks every shard dirty: it
// answers replication with "need sync" until the leader ships a full shard
// snapshot, which overwrites the divergent tail. Acknowledged mutations
// are never lost this way: they reached a majority, and the election
// up-to-date rule means any electable leader holds them.
//
// # Fault points
//
// The transport consults the injector at "cluster.net.delay",
// "cluster.net.drop", "cluster.net.dup", and "cluster.net.reorder" on the
// send path, "cluster.net.recv.drop" on the receive path (a silent
// blackhole, the building block of partitions), and "cluster.snap.corrupt"
// / "cluster.snap.truncate" on shipped snapshots. The partition chaos
// suite drives all of them.
package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"minup/internal/catalog"
	"minup/internal/fault"
	"minup/internal/obs"
	"minup/internal/wal"
)

// Typed errors the HTTP layer maps onto the write path.
var (
	// ErrNotLeader reports a mutation sent to a follower; the caller should
	// redirect to the leader named alongside it.
	ErrNotLeader = errors.New("cluster: not the leader")
	// ErrNoLeader reports that no leader is known (an election is in
	// progress, or the node is partitioned from the leader).
	ErrNoLeader = errors.New("cluster: no leader")
	// ErrNoQuorum reports a mutation that was durably appended on the
	// leader but not acknowledged by a majority within the commit timeout.
	// The mutation is locally durable and will replicate when the
	// partition heals; it must not yet be treated as committed.
	ErrNoQuorum = errors.New("cluster: no quorum of acknowledgements")
	// ErrClosed reports an operation on a closed node.
	ErrClosed = errors.New("cluster: node closed")
)

// Role is a node's position in the current term.
type Role int32

const (
	RoleFollower Role = iota
	RoleCandidate
	RoleLeader
)

func (r Role) String() string {
	switch r {
	case RoleLeader:
		return "leader"
	case RoleCandidate:
		return "candidate"
	default:
		return "follower"
	}
}

// Options configures a Node.
type Options struct {
	// ID is this node's unique id; Addr the loopback TCP address its
	// replication listener binds ("127.0.0.1:0" picks a port).
	ID   int
	Addr string
	// Peers maps every other node's id to its replication address.
	Peers map[int]string
	// HTTPAddr is the externally usable base URL of this node's HTTP API
	// (e.g. "http://127.0.0.1:8080"); the leader advertises it in
	// heartbeats so followers can answer mutations with a 307 redirect.
	HTTPAddr string
	// Catalog is the local replica this node serves and replicates.
	Catalog *catalog.Catalog
	// Records is the ring the catalog's OnRecord hook feeds; it must be
	// the same RecordLog wired into the catalog's Options, or the node can
	// only catch followers up by snapshot.
	Records *RecordLog
	// Dir, when non-empty, persists term/vote state in cluster.state.json
	// so a restart cannot vote twice in one term. Empty keeps it in
	// memory (tests).
	Dir     string
	Metrics *obs.Registry
	Logger  *slog.Logger
	Fault   *fault.Injector
	// Tick is the heartbeat/replication cadence (default 50ms); Lease the
	// leader lease (default 8 ticks); CommitTimeout bounds the majority-
	// ack wait on the write path (default 2s); CallTimeout bounds one
	// peer RPC (default 4 ticks, min 100ms).
	Tick          time.Duration
	Lease         time.Duration
	CommitTimeout time.Duration
	CallTimeout   time.Duration
}

// stateFile is the persisted election state.
type stateFile struct {
	Term        uint64 `json:"term"`
	VotedFor    int    `json:"voted_for"`
	LastLogTerm uint64 `json:"last_log_term"`
	// WasLeader marks a node that went down while leading: its log tail
	// may be ahead of the acknowledged history, so every shard starts
	// dirty and resyncs by snapshot.
	WasLeader bool `json:"was_leader"`
}

// commitWaiter parks one Barrier call until its record is majority-acked.
type commitWaiter struct {
	shard int
	seq   uint64
	ch    chan error
}

// Node is one cluster member. Construct with Open; all methods are safe
// for concurrent use.
type Node struct {
	opt    Options
	cat    *catalog.Catalog
	logger *slog.Logger
	ln     net.Listener

	mu            sync.Mutex
	role          Role
	term          uint64
	votedFor      int
	lastLogTerm   uint64
	persistedLLT  uint64
	leaderID      int
	leaderHTTP    string
	lastHeartbeat time.Time
	leaseUntil    time.Time
	ownSeq        []uint64 // per-shard last durable seq, mirrored from the catalog
	leaderSeqs    []uint64 // follower: leader's seqs from the last heartbeat
	dirty         []bool   // per-shard: log may diverge, resync by snapshot
	commit        []uint64 // leader: per-shard majority-replicated seq
	peers         map[int]*peer
	waiters       []*commitWaiter
	elections     uint64

	connMu sync.Mutex
	conns  map[net.Conn]struct{}

	stopCh chan struct{}
	wg     sync.WaitGroup
	closed atomic.Bool
}

// Open starts a node: binds the replication listener, loads persisted
// election state, and launches the tick, accept, and per-peer replication
// loops. The node starts as a follower; with no peers it elects itself
// after one election timeout.
func Open(opt Options) (*Node, error) {
	if opt.Catalog == nil {
		return nil, fmt.Errorf("cluster: Options.Catalog is required")
	}
	if opt.Tick <= 0 {
		opt.Tick = 50 * time.Millisecond
	}
	if opt.Lease <= 0 {
		opt.Lease = 8 * opt.Tick
	}
	if opt.CommitTimeout <= 0 {
		opt.CommitTimeout = 2 * time.Second
	}
	if opt.CallTimeout <= 0 {
		opt.CallTimeout = 4 * opt.Tick
		if opt.CallTimeout < 100*time.Millisecond {
			opt.CallTimeout = 100 * time.Millisecond
		}
	}
	if opt.Logger == nil {
		opt.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	if opt.Records == nil {
		opt.Records = NewRecordLog(0)
	}
	n := &Node{
		opt:      opt,
		cat:      opt.Catalog,
		logger:   opt.Logger.With("component", "cluster", "node", opt.ID),
		votedFor: -1,
		leaderID: -1,
		ownSeq:   opt.Catalog.ShardSeqs(),
		dirty:    make([]bool, opt.Catalog.Shards()),
		commit:   make([]uint64, opt.Catalog.Shards()),
		peers:    make(map[int]*peer),
		conns:    make(map[net.Conn]struct{}),
		stopCh:   make(chan struct{}),
	}
	if err := n.loadState(); err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", opt.Addr)
	if err != nil {
		return nil, fmt.Errorf("cluster: listen %s: %w", opt.Addr, err)
	}
	n.ln = ln
	n.lastHeartbeat = time.Now()
	for id, addr := range opt.Peers {
		if id == opt.ID {
			continue
		}
		n.peers[id] = &peer{
			id:     id,
			addr:   addr,
			wake:   make(chan struct{}, 1),
			client: &rpcClient{addr: addr, fault: opt.Fault, timeout: opt.CallTimeout},
		}
	}
	opt.Records.setNotify(n.noteAppend)
	n.setRoleGauges()

	n.wg.Add(2)
	go n.acceptLoop()
	go n.run()
	for _, p := range n.peers {
		n.wg.Add(1)
		go n.peerLoop(p)
	}
	n.logger.Info("cluster node started", "addr", ln.Addr().String(), "peers", len(n.peers))
	return n, nil
}

// Addr returns the replication listener's bound address.
func (n *Node) Addr() string { return n.ln.Addr().String() }

// Close stops the node: listener, peer loops, and open connections. Safe to
// call twice. Pending Barrier waiters fail with ErrNotLeader.
func (n *Node) Close() error {
	if !n.closed.CompareAndSwap(false, true) {
		return nil
	}
	close(n.stopCh)
	n.ln.Close()
	n.connMu.Lock()
	for c := range n.conns {
		c.Close()
	}
	n.connMu.Unlock()
	n.mu.Lock()
	n.failWaitersLocked(ErrClosed)
	for _, p := range n.peers {
		p.client.closeConn()
	}
	n.mu.Unlock()
	n.wg.Wait()
	n.persist()
	return nil
}

// quorum is the majority size over the full membership (peers + self).
func (n *Node) quorum() int { return (len(n.peers)+1)/2 + 1 }

// electionTimeout staggers candidacies deterministically by node id so
// chaos runs reproduce: base lease plus 0–4 ticks of jitter.
func (n *Node) electionTimeout() time.Duration {
	return n.opt.Lease + time.Duration((n.opt.ID*3)%5)*n.opt.Tick
}

// ---------------------------------------------------------------------------
// State persistence.

func (n *Node) statePath() string { return filepath.Join(n.opt.Dir, "cluster.state.json") }

func (n *Node) loadState() error {
	if n.opt.Dir == "" {
		return nil
	}
	data, err := os.ReadFile(n.statePath())
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("cluster: reading state: %w", err)
	}
	var st stateFile
	if err := json.Unmarshal(data, &st); err != nil {
		return fmt.Errorf("cluster: decoding state %s: %w", n.statePath(), err)
	}
	n.term = st.Term
	n.votedFor = st.VotedFor
	n.lastLogTerm = st.LastLogTerm
	n.persistedLLT = st.LastLogTerm
	if st.WasLeader {
		for i := range n.dirty {
			n.dirty[i] = true
		}
	}
	return nil
}

// persist writes the election state durably and reports failure. Callers
// on the voting path must check the error: a vote or self-vote that is not
// durable before it is used can be re-cast after a restart, electing two
// leaders in one term. Callers persisting only bookkeeping (last-log term,
// shutdown) may log and carry on.
func (n *Node) persist() error {
	if n.opt.Dir == "" {
		return nil
	}
	n.mu.Lock()
	st := stateFile{
		Term:        n.term,
		VotedFor:    n.votedFor,
		LastLogTerm: n.lastLogTerm,
		WasLeader:   n.role == RoleLeader,
	}
	n.persistedLLT = n.lastLogTerm
	n.mu.Unlock()
	data, err := json.Marshal(st)
	if err == nil {
		err = wal.WriteAtomic(n.statePath(), append(data, '\n'), true)
	}
	if err != nil {
		n.logger.Warn("cluster state persist failed", "err", err)
		n.countMetric("cluster.persist_failures")
	}
	return err
}

// ---------------------------------------------------------------------------
// The tick loop: election timeouts for followers, lease upkeep for leaders.

func (n *Node) run() {
	defer n.wg.Done()
	t := time.NewTicker(n.opt.Tick)
	defer t.Stop()
	for {
		select {
		case <-n.stopCh:
			return
		case <-t.C:
		}
		var campaign, persistLLT bool
		n.mu.Lock()
		switch n.role {
		case RoleFollower:
			campaign = time.Since(n.lastHeartbeat) > n.electionTimeout()
		case RoleLeader:
			alive := 1
			now := time.Now()
			for _, p := range n.peers {
				if now.Sub(p.lastAck) <= n.opt.Lease {
					alive++
				}
			}
			if alive < n.quorum() {
				n.logger.Warn("leader lost quorum, stepping down", "term", n.term, "alive", alive)
				n.stepDownLocked(n.term, -1)
			} else {
				n.leaseUntil = now.Add(n.opt.Lease)
			}
		}
		persistLLT = n.lastLogTerm != n.persistedLLT
		n.mu.Unlock()
		if persistLLT {
			n.persist()
		}
		if campaign {
			n.campaign()
		}
	}
}

// campaign runs one candidacy: bump the term, vote for self, solicit votes
// from every peer in parallel, and either take leadership on a majority or
// fall back to follower and wait out another timeout.
func (n *Node) campaign() {
	seqs := n.cat.ShardSeqs()
	n.mu.Lock()
	if n.role == RoleLeader || n.closed.Load() {
		n.mu.Unlock()
		return
	}
	n.role = RoleCandidate
	n.term++
	n.votedFor = n.opt.ID
	n.leaderID = -1
	n.leaderHTTP = ""
	n.elections++
	term := n.term
	llt := n.lastLogTerm
	n.setRoleGauges()
	n.mu.Unlock()
	if err := n.persist(); err != nil {
		// The self-vote is not durable: soliciting votes now could let a
		// restart re-vote in this term. Abort the candidacy and retry after
		// another timeout.
		n.mu.Lock()
		if n.term == term && n.role == RoleCandidate {
			n.role = RoleFollower
			n.lastHeartbeat = time.Now()
			n.setRoleGauges()
		}
		n.mu.Unlock()
		return
	}
	n.countMetric("cluster.elections")
	n.logger.Info("campaigning", "term", term)

	msg := message{Kind: msgVote, From: n.opt.ID, Term: term, LastLogTerm: llt, Seqs: seqs}
	votes := int32(1)
	var wg sync.WaitGroup
	for _, p := range n.peers {
		wg.Add(1)
		go func(p *peer) {
			defer wg.Done()
			rep, err := p.client.call(msg)
			if err != nil {
				return
			}
			if rep.Term > term {
				n.observeTerm(rep.Term)
				return
			}
			if rep.Granted {
				atomic.AddInt32(&votes, 1)
			}
		}(p)
	}
	wg.Wait()

	n.mu.Lock()
	if n.term != term || n.role != RoleCandidate {
		n.mu.Unlock()
		return // superseded while collecting votes
	}
	won := int(atomic.LoadInt32(&votes)) >= n.quorum()
	if won {
		n.becomeLeaderLocked()
	} else {
		n.role = RoleFollower
		n.lastHeartbeat = time.Now() // back off a full timeout before retrying
		n.setRoleGauges()
	}
	n.mu.Unlock()
	if won {
		// Record WasLeader immediately: a crash before the next lazy persist
		// must still restart with every shard dirty.
		n.persist()
	}
}

// becomeLeaderLocked installs this node as leader of the current term.
// Caller holds n.mu.
func (n *Node) becomeLeaderLocked() {
	n.role = RoleLeader
	n.leaderID = n.opt.ID
	n.leaderHTTP = n.opt.HTTPAddr
	n.leaseUntil = time.Now().Add(n.opt.Lease)
	// The leader's log is canonical by definition of the election.
	for i := range n.dirty {
		n.dirty[i] = false
	}
	now := time.Now()
	for _, p := range n.peers {
		p.known = false
		// Replication proofs are per-term: nothing counts toward this term's
		// commit quorum until it is re-confirmed by an append or snapshot.
		p.confirmed = nil
		p.needSnap = nil
		p.lastAck = now // grace period before the lease check counts them dead
		select {
		case p.wake <- struct{}{}:
		default:
		}
	}
	n.recomputeCommitLocked(-1)
	n.setRoleGauges()
	n.countMetric("cluster.elections_won")
	n.logger.Info("became leader", "term", n.term)
}

// stepDownLocked demotes a leader/candidate to follower. A deposed leader
// marks every shard dirty — its tail may contain mutations the next leader
// never acknowledged — and fails pending commit waiters. Caller holds n.mu.
func (n *Node) stepDownLocked(term uint64, leaderID int) {
	if n.role == RoleLeader {
		for i := range n.dirty {
			n.dirty[i] = true
		}
		n.countMetric("cluster.stepdowns")
	}
	n.failWaitersLocked(ErrNotLeader)
	n.role = RoleFollower
	if term > n.term {
		n.term = term
		n.votedFor = -1
	}
	n.leaderID = leaderID
	n.leaderHTTP = ""
	n.lastHeartbeat = time.Now()
	n.setRoleGauges()
}

// observeTerm adopts a higher term seen in any reply.
func (n *Node) observeTerm(term uint64) {
	n.mu.Lock()
	changed := term > n.term
	if changed {
		n.stepDownLocked(term, -1)
	}
	n.mu.Unlock()
	if changed {
		n.persist()
	}
}

// noteAppend mirrors one durably appended record into the node's cached
// per-shard position. It is called from the catalog's OnRecord hook via the
// RecordLog — under the owning shard's write lock — so it must only touch
// node state, never call back into the catalog.
func (n *Node) noteAppend(shard int, seq uint64) {
	n.mu.Lock()
	if shard >= 0 && shard < len(n.ownSeq) {
		n.ownSeq[shard] = seq
	}
	n.lastLogTerm = n.term
	if n.role == RoleLeader {
		n.recomputeCommitLocked(shard)
		for _, p := range n.peers {
			select {
			case p.wake <- struct{}{}:
			default:
			}
		}
	}
	n.mu.Unlock()
}

// failWaitersLocked errors out every pending Barrier. Caller holds n.mu.
func (n *Node) failWaitersLocked(err error) {
	for _, w := range n.waiters {
		w.ch <- err
	}
	n.waiters = nil
}

// recomputeCommitLocked refreshes the majority-replicated sequence number
// for one shard (or all, shard < 0) and releases satisfied waiters. Only
// positions confirmed by a successful append or snapshot in the current
// term count (Raft's current-term commit rule): a follower's self-reported
// seqs may cover a divergent deposed-term tail, and a shard awaiting a
// snapshot resync counts as empty. The commit index never regresses.
// Caller holds n.mu.
func (n *Node) recomputeCommitLocked(shard int) {
	recompute := func(s int) {
		vals := make([]uint64, 0, len(n.peers)+1)
		vals = append(vals, n.ownSeq[s])
		for _, p := range n.peers {
			if p.known && s < len(p.confirmed) && !p.needSnap[s] {
				vals = append(vals, p.confirmed[s])
			} else {
				vals = append(vals, 0)
			}
		}
		// quorum-th highest value: sort descending by simple selection
		// (membership is small).
		for i := 0; i < len(vals); i++ {
			for j := i + 1; j < len(vals); j++ {
				if vals[j] > vals[i] {
					vals[i], vals[j] = vals[j], vals[i]
				}
			}
		}
		if v := vals[n.quorum()-1]; v > n.commit[s] {
			n.commit[s] = v
		}
	}
	if shard >= 0 {
		recompute(shard)
	} else {
		for s := range n.commit {
			recompute(s)
		}
	}
	kept := n.waiters[:0]
	for _, w := range n.waiters {
		if n.commit[w.shard] >= w.seq {
			w.ch <- nil
		} else {
			kept = append(kept, w)
		}
	}
	n.waiters = kept
}

// ---------------------------------------------------------------------------
// Write-path surface for the HTTP layer.

// WriteGate checks whether this node may accept a mutation. A leader
// returns (".."==self HTTP, nil); a follower with a fresh leader lease
// returns the leader's HTTP address and ErrNotLeader (redirect); otherwise
// ErrNoLeader (election window or partition).
func (n *Node) WriteGate() (leaderHTTP string, err error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	switch {
	case n.role == RoleLeader:
		return n.opt.HTTPAddr, nil
	case n.leaderID >= 0 && n.leaderHTTP != "" && time.Since(n.lastHeartbeat) <= n.opt.Lease:
		return n.leaderHTTP, ErrNotLeader
	default:
		return "", ErrNoLeader
	}
}

// Barrier blocks until the record (shard, seq) is replicated on a majority,
// the commit timeout elapses (ErrNoQuorum), the node loses leadership
// (ErrNotLeader), or ctx is done. A mutation is acknowledged to the client
// only after its Barrier returns nil.
func (n *Node) Barrier(ctx context.Context, shard int, seq uint64) error {
	n.mu.Lock()
	if n.role != RoleLeader {
		// The mutation slipped in around a deposition: its record is in the
		// local log but this node can no longer commit it. Mark the shard
		// dirty so the new leader overwrites the tail by snapshot.
		if shard >= 0 && shard < len(n.dirty) {
			n.dirty[shard] = true
		}
		n.mu.Unlock()
		return ErrNotLeader
	}
	if shard < 0 || shard >= len(n.commit) {
		n.mu.Unlock()
		return fmt.Errorf("cluster: barrier: no shard %d", shard)
	}
	if n.commit[shard] >= seq {
		n.mu.Unlock()
		n.countMetric("cluster.acks")
		return nil
	}
	w := &commitWaiter{shard: shard, seq: seq, ch: make(chan error, 1)}
	n.waiters = append(n.waiters, w)
	n.mu.Unlock()

	timer := time.NewTimer(n.opt.CommitTimeout)
	defer timer.Stop()
	select {
	case err := <-w.ch:
		if err == nil {
			n.countMetric("cluster.acks")
		}
		return err
	case <-ctx.Done():
		n.dropWaiter(w)
		return ctx.Err()
	case <-timer.C:
		n.dropWaiter(w)
		n.countMetric("cluster.ack_timeouts")
		return fmt.Errorf("%w: shard %d seq %d after %s", ErrNoQuorum, shard, seq, n.opt.CommitTimeout)
	case <-n.stopCh:
		return ErrClosed
	}
}

func (n *Node) dropWaiter(w *commitWaiter) {
	n.mu.Lock()
	kept := n.waiters[:0]
	for _, x := range n.waiters {
		if x != w {
			kept = append(kept, x)
		}
	}
	n.waiters = kept
	n.mu.Unlock()
}

// IsLeader reports whether this node currently leads.
func (n *Node) IsLeader() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.role == RoleLeader
}

// ReplicaLag returns how many frames this follower trails the leader,
// summed across shards, and whether the figure is known (a follower that
// has never heard a heartbeat cannot judge its own staleness; a leader is
// never lagging).
func (n *Node) ReplicaLag() (frames uint64, known bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.role == RoleLeader {
		return 0, true
	}
	if n.leaderSeqs == nil || time.Since(n.lastHeartbeat) > 2*n.opt.Lease {
		return 0, false
	}
	var lag uint64
	for i, ls := range n.leaderSeqs {
		if i < len(n.ownSeq) && ls > n.ownSeq[i] {
			lag += ls - n.ownSeq[i]
		}
	}
	return lag, true
}

// ---------------------------------------------------------------------------
// Metrics helpers.

func (n *Node) countMetric(name string) {
	if n.opt.Metrics != nil {
		n.opt.Metrics.Counter(name).Inc()
	}
}

// setRoleGauges refreshes the role/term/leader gauges; caller holds n.mu.
func (n *Node) setRoleGauges() {
	if n.opt.Metrics == nil {
		return
	}
	n.opt.Metrics.Gauge("cluster.term").Set(int64(n.term))
	n.opt.Metrics.Gauge("cluster.role").Set(int64(n.role))
	n.opt.Metrics.Gauge("cluster.leader").Set(int64(n.leaderID))
}
