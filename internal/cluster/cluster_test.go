package cluster

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"testing"
	"time"

	"minup/internal/catalog"
	"minup/internal/fault"
	"minup/internal/obs"
)

const (
	testLattice = "chain mil\nlevels U C S TS\n"
	testCons    = "attrs salary rank\nsalary >= rank\nrank >= S\n"
)

// Timings for the in-process clusters: fast enough that elections settle in
// tens of milliseconds, slow enough for -race on a single core.
const (
	testTick  = 10 * time.Millisecond
	testLease = 80 * time.Millisecond
)

// testNode is one cluster member plus everything needed to kill and
// restart it: the MemStores survive a catalog Close, the state dir
// survives a node Close.
type testNode struct {
	id     int
	addr   string
	dir    string
	stores []*catalog.MemStore
	inj    *fault.Injector
	reg    *obs.Registry
	ring   *RecordLog
	cat    *catalog.Catalog
	node   *Node
	down   bool
}

type testCluster struct {
	t        *testing.T
	shards   int
	ringSize int
	peers    map[int]string
	nodes    []*testNode
}

// reserveAddrs picks n distinct loopback ports by binding and releasing
// them, so every node can know the full peer map before any node starts.
func reserveAddrs(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	lns := make([]net.Listener, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("reserve port: %v", err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range lns {
		ln.Close()
	}
	return addrs
}

// newTestCluster boots n nodes with a pinned shard count and replication
// ring size, all started and racing to elect a leader.
func newTestCluster(t *testing.T, n, shards, ringSize int) *testCluster {
	t.Helper()
	tc := &testCluster{t: t, shards: shards, ringSize: ringSize, peers: map[int]string{}}
	addrs := reserveAddrs(t, n)
	for i, addr := range addrs {
		tc.peers[i] = addr
	}
	for i, addr := range addrs {
		tn := &testNode{id: i, addr: addr, dir: t.TempDir(), inj: fault.New(int64(i) + 1)}
		tn.stores = make([]*catalog.MemStore, shards)
		for j := range tn.stores {
			tn.stores[j] = catalog.NewMemStore()
		}
		tc.nodes = append(tc.nodes, tn)
		tc.start(tn)
	}
	t.Cleanup(func() {
		for _, tn := range tc.nodes {
			tc.stop(tn)
		}
	})
	return tc
}

// start (re)opens a node's catalog over its retained MemStores and boots
// the cluster node. Fresh registry and ring; injector and state dir are
// kept across restarts.
func (tc *testCluster) start(tn *testNode) {
	tc.t.Helper()
	tn.reg = obs.NewRegistry()
	tn.ring = NewRecordLog(tc.ringSize)
	stores := tn.stores
	cat, err := catalog.Open(catalog.Options{
		Shards:    tc.shards,
		OpenStore: func(shard int) (catalog.Store, error) { return stores[shard], nil },
		OnRecord:  tn.ring.Append,
		Metrics:   tn.reg,
	})
	if err != nil {
		tc.t.Fatalf("node %d: catalog open: %v", tn.id, err)
	}
	node, err := Open(Options{
		ID:            tn.id,
		Addr:          tn.addr,
		Peers:         tc.peers,
		HTTPAddr:      fmt.Sprintf("http://node-%d.test", tn.id),
		Catalog:       cat,
		Records:       tn.ring,
		Dir:           tn.dir,
		Metrics:       tn.reg,
		Fault:         tn.inj,
		Tick:          testTick,
		Lease:         testLease,
		CommitTimeout: 5 * time.Second,
	})
	if err != nil {
		cat.Close()
		tc.t.Fatalf("node %d: cluster open: %v", tn.id, err)
	}
	tn.cat = cat
	tn.node = node
	tn.down = false
}

// stop kills a node (cluster node first, then the catalog). Idempotent.
func (tc *testCluster) stop(tn *testNode) {
	if tn.down {
		return
	}
	tn.node.Close()
	tn.cat.Close()
	tn.down = true
}

// restart boots a previously stopped node from its retained stores and
// persisted cluster state.
func (tc *testCluster) restart(tn *testNode) {
	tc.t.Helper()
	if !tn.down {
		tc.t.Fatalf("node %d: restart while running", tn.id)
	}
	tc.start(tn)
}

// waitLeader polls until one live node leads and every other live node
// agrees, then returns it.
func (tc *testCluster) waitLeader(timeout time.Duration) *testNode {
	tc.t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		var leader *testNode
		for _, tn := range tc.nodes {
			if !tn.down && tn.node.IsLeader() {
				leader = tn
			}
		}
		if leader != nil {
			agreed := true
			for _, tn := range tc.nodes {
				if tn.down || tn == leader {
					continue
				}
				if tn.node.Status().LeaderID != leader.id {
					agreed = false
					break
				}
			}
			if agreed {
				return leader
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	tc.t.Fatalf("no agreed leader within %s", timeout)
	return nil
}

// waitConverged polls until every live node's catalog fingerprint matches
// the reference node's.
func (tc *testCluster) waitConverged(ref *testNode, timeout time.Duration) {
	tc.t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		want := ref.cat.Fingerprint()
		same := true
		for _, tn := range tc.nodes {
			if tn.down || tn == ref {
				continue
			}
			if !bytes.Equal(tn.cat.Fingerprint(), want) {
				same = false
				break
			}
		}
		if same {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	for _, tn := range tc.nodes {
		if !tn.down {
			st := tn.node.Status()
			tc.t.Logf("node %d: role=%s term=%d fp=%s seqs=%v dirty=%v",
				tn.id, st.Role, st.Term, st.Fingerprint, st.Shards, st.DirtyShards)
		}
	}
	tc.t.Fatalf("catalogs did not converge within %s", timeout)
}

// put creates a policy through tn and waits for the majority ack.
func (tn *testNode) put(ctx context.Context, name string) error {
	var seq uint64
	_, err := tn.cat.Put(ctx, name, testLattice, testCons, catalog.MustNotExist,
		catalog.MutateOptions{SeqOut: &seq})
	if err != nil {
		return err
	}
	return tn.node.Barrier(ctx, tn.cat.ShardOf(name), seq)
}

// ackedPut keeps retrying a put against whatever node currently leads until
// it is acknowledged, tolerating elections in progress. Used by the chaos
// suites, which deliberately destabilize leadership mid-write.
func (tc *testCluster) ackedPut(ctx context.Context, name string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	var last error
	for time.Now().Before(deadline) {
		var leader *testNode
		for _, tn := range tc.nodes {
			if !tn.down && tn.node.IsLeader() {
				leader = tn
				break
			}
		}
		if leader == nil {
			time.Sleep(testTick)
			continue
		}
		err := leader.put(ctx, name)
		if err == nil {
			return nil
		}
		last = err
		if errors.Is(err, catalog.ErrVersionMismatch) || errors.Is(err, catalog.ErrExists) {
			// The put itself landed on an earlier attempt whose ack was
			// interrupted; wait for it to commit via a fresh barrier.
			seq := leader.cat.ShardSeq(leader.cat.ShardOf(name))
			if berr := leader.node.Barrier(ctx, leader.cat.ShardOf(name), seq); berr == nil {
				return nil
			}
		}
		time.Sleep(testTick)
	}
	return fmt.Errorf("put %q never acknowledged: %v", name, last)
}

func TestSingleNodeElectsItself(t *testing.T) {
	ctx := context.Background()
	tc := newTestCluster(t, 1, 2, 0)
	n := tc.nodes[0]
	deadline := time.Now().Add(3 * time.Second)
	for !n.node.IsLeader() {
		if time.Now().After(deadline) {
			t.Fatalf("single node never elected itself")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := n.put(ctx, "solo"); err != nil {
		t.Fatalf("acked put on single-node cluster: %v", err)
	}
	http, err := n.node.WriteGate()
	if err != nil || http != "http://node-0.test" {
		t.Fatalf("WriteGate = (%q, %v), want self", http, err)
	}
	lag, known := n.node.ReplicaLag()
	if lag != 0 || !known {
		t.Fatalf("leader lag = (%d, %v), want (0, true)", lag, known)
	}
}

func TestThreeNodeReplication(t *testing.T) {
	ctx := context.Background()
	tc := newTestCluster(t, 3, 2, 0)
	leader := tc.waitLeader(5 * time.Second)

	for i := 0; i < 8; i++ {
		if err := leader.put(ctx, fmt.Sprintf("pol-%d", i)); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	var seq uint64
	if _, err := leader.cat.Append(ctx, "pol-0", "attrs bonus\nbonus >= C\n",
		catalog.Unconditional, catalog.MutateOptions{SeqOut: &seq}); err != nil {
		t.Fatalf("append: %v", err)
	}
	if err := leader.node.Barrier(ctx, leader.cat.ShardOf("pol-0"), seq); err != nil {
		t.Fatalf("append barrier: %v", err)
	}
	if err := leader.cat.Delete(ctx, "pol-7", catalog.Unconditional,
		catalog.MutateOptions{SeqOut: &seq}); err != nil {
		t.Fatalf("delete: %v", err)
	}
	if err := leader.node.Barrier(ctx, leader.cat.ShardOf("pol-7"), seq); err != nil {
		t.Fatalf("delete barrier: %v", err)
	}

	tc.waitConverged(leader, 5*time.Second)

	// A follower serves the replicated catalog from its own warmed caches.
	var follower *testNode
	for _, tn := range tc.nodes {
		if tn != leader {
			follower = tn
			break
		}
	}
	if err := follower.cat.Flush(ctx); err != nil {
		t.Fatalf("follower flush: %v", err)
	}
	res, err := follower.cat.Solve(ctx, "pol-0")
	if err != nil {
		t.Fatalf("follower solve: %v", err)
	}
	if !res.CacheHit {
		t.Fatalf("follower solve missed the warmed cache")
	}
	if res.Info.Version != 2 {
		t.Fatalf("follower pol-0 at version %d, want 2", res.Info.Version)
	}
	if follower.cat.Len() != 7 {
		t.Fatalf("follower has %d policies, want 7", follower.cat.Len())
	}

	// Writes on a follower are fenced and redirected at the leader.
	http, err := follower.node.WriteGate()
	if !errors.Is(err, ErrNotLeader) {
		t.Fatalf("follower WriteGate err = %v, want ErrNotLeader", err)
	}
	if http != fmt.Sprintf("http://node-%d.test", leader.id) {
		t.Fatalf("follower WriteGate hint = %q", http)
	}
	if err := follower.node.Barrier(ctx, 0, 1); !errors.Is(err, ErrNotLeader) {
		t.Fatalf("follower Barrier err = %v, want ErrNotLeader", err)
	}

	// Replica lag is known and zero once the stream is drained.
	deadline := time.Now().Add(3 * time.Second)
	for {
		lag, known := follower.node.ReplicaLag()
		if known && lag == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower lag = (%d, %v), want (0, true)", lag, known)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestStatusShape(t *testing.T) {
	ctx := context.Background()
	tc := newTestCluster(t, 3, 2, 0)
	leader := tc.waitLeader(5 * time.Second)
	if err := leader.put(ctx, "status-pol"); err != nil {
		t.Fatalf("put: %v", err)
	}
	tc.waitConverged(leader, 5*time.Second)

	st := leader.node.Status()
	if st.Role != "leader" || st.LeaderID != leader.id {
		t.Fatalf("leader status: role=%s leader_id=%d", st.Role, st.LeaderID)
	}
	if len(st.Shards) != 2 || len(st.Commit) != 2 {
		t.Fatalf("leader status shards=%v commit=%v, want 2 each", st.Shards, st.Commit)
	}
	if len(st.Peers) != 2 {
		t.Fatalf("leader status has %d peers, want 2", len(st.Peers))
	}
	if st.Fingerprint == "" || st.LeaseExpiry.IsZero() {
		t.Fatalf("leader status missing fingerprint or lease expiry")
	}
	deadline := time.Now().Add(3 * time.Second)
	for {
		st = leader.node.Status()
		lagged := false
		for _, p := range st.Peers {
			if !p.Known || p.LagFrames != 0 || !p.Connected {
				lagged = true
			}
		}
		if !lagged {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("peers never drained: %+v", st.Peers)
		}
		time.Sleep(5 * time.Millisecond)
	}

	for _, tn := range tc.nodes {
		if tn == leader {
			continue
		}
		fst := tn.node.Status()
		if fst.Role != "follower" || fst.LeaderID != leader.id {
			t.Fatalf("follower status: role=%s leader_id=%d", fst.Role, fst.LeaderID)
		}
		if fst.Fingerprint != st.Fingerprint {
			t.Fatalf("follower fingerprint %s != leader %s", fst.Fingerprint, st.Fingerprint)
		}
		if fst.LeaderHTTP != fmt.Sprintf("http://node-%d.test", leader.id) {
			t.Fatalf("follower leader_http = %q", fst.LeaderHTTP)
		}
	}
}

// TestBarrierNoQuorum: a leader that cannot replicate must refuse to ack.
func TestBarrierNoQuorum(t *testing.T) {
	ctx := context.Background()
	tc := newTestCluster(t, 3, 1, 0)
	leader := tc.waitLeader(5 * time.Second)

	// Isolate the leader's outbound traffic, then write: the record lands in
	// the local log but can never reach a majority.
	if err := leader.inj.Rearm("cluster.net.drop:cancel:%1"); err != nil {
		t.Fatalf("rearm: %v", err)
	}
	var seq uint64
	if _, err := leader.cat.Put(ctx, "lost", testLattice, testCons, catalog.MustNotExist,
		catalog.MutateOptions{SeqOut: &seq}); err != nil {
		t.Fatalf("put: %v", err)
	}
	bctx, cancel := context.WithTimeout(ctx, 2*time.Second)
	defer cancel()
	err := leader.node.Barrier(bctx, leader.cat.ShardOf("lost"), seq)
	if err == nil {
		t.Fatalf("barrier acked without a reachable majority")
	}
	if !errors.Is(err, ErrNoQuorum) && !errors.Is(err, ErrNotLeader) && !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("barrier err = %v, want no-quorum/not-leader/deadline", err)
	}
	if err := leader.inj.Rearm(""); err != nil {
		t.Fatalf("heal: %v", err)
	}
	// After the heal the cluster converges again — including the unacked
	// write, which was locally durable and is allowed to commit late.
	newLeader := tc.waitLeader(5 * time.Second)
	tc.waitConverged(newLeader, 10*time.Second)
}
