package cluster

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

// assertAckedEverywhere checks property (a): every mutation whose Barrier
// returned nil exists on every live node.
func (tc *testCluster) assertAckedEverywhere(ctx context.Context, acked []string) {
	tc.t.Helper()
	for _, tn := range tc.nodes {
		if tn.down {
			continue
		}
		if err := tn.cat.Flush(ctx); err != nil {
			tc.t.Fatalf("node %d: flush: %v", tn.id, err)
		}
		for _, name := range acked {
			if _, err := tn.cat.Solve(ctx, name); err != nil {
				tc.t.Fatalf("node %d lost acked mutation %q: %v", tn.id, name, err)
			}
		}
	}
}

// TestChaosFrameStorm drives the replication stream through a storm of
// dropped, delayed, duplicated, and reordered frames, then heals and
// asserts no acked mutation was lost and all replicas converge.
func TestChaosFrameStorm(t *testing.T) {
	ctx := context.Background()
	tc := newTestCluster(t, 3, 2, 16)
	leader := tc.waitLeader(5 * time.Second)

	// Every ~5th-7th frame misbehaves on the leader's send path; every
	// ~9th inbound frame on one follower is blackholed.
	spec := "cluster.net.drop:cancel:%7;cluster.net.dup:cancel:%5;" +
		"cluster.net.reorder:cancel:%6;cluster.net.delay:delay:%4:2ms"
	if err := leader.inj.Rearm(spec); err != nil {
		t.Fatalf("rearm leader: %v", err)
	}
	var blackholed *testNode
	for _, tn := range tc.nodes {
		if tn != leader {
			blackholed = tn
			break
		}
	}
	if err := blackholed.inj.Rearm("cluster.net.recv.drop:cancel:%9"); err != nil {
		t.Fatalf("rearm follower: %v", err)
	}

	var acked []string
	for i := 0; i < 30; i++ {
		name := fmt.Sprintf("storm-%d", i)
		if err := tc.ackedPut(ctx, name, 10*time.Second); err != nil {
			t.Fatalf("storm write %d: %v", i, err)
		}
		acked = append(acked, name)
	}

	// Heal and converge.
	for _, tn := range tc.nodes {
		if err := tn.inj.Rearm(""); err != nil {
			t.Fatalf("heal node %d: %v", tn.id, err)
		}
	}
	final := tc.waitLeader(10 * time.Second)
	tc.waitConverged(final, 15*time.Second)
	tc.assertAckedEverywhere(ctx, acked)

	// The storm actually exercised the fault paths.
	var dup, gap uint64
	for _, tn := range tc.nodes {
		dup += tn.reg.Counter("cluster.frames_duplicate").Value()
		gap += tn.reg.Counter("cluster.frames_gap").Value()
	}
	if dup == 0 {
		t.Logf("note: storm produced no duplicate deliveries")
	}
	_ = gap
}

// TestChaosLeaderKillRestart kills the leader mid-stream, requires a
// failover, keeps writing, restarts the dead node, and asserts every acked
// mutation from both reigns survives on all three replicas.
func TestChaosLeaderKillRestart(t *testing.T) {
	ctx := context.Background()
	tc := newTestCluster(t, 3, 2, 0)
	first := tc.waitLeader(5 * time.Second)

	var acked []string
	for i := 0; i < 10; i++ {
		name := fmt.Sprintf("reign1-%d", i)
		if err := tc.ackedPut(ctx, name, 5*time.Second); err != nil {
			t.Fatalf("reign-1 write %d: %v", i, err)
		}
		acked = append(acked, name)
	}

	tc.stop(first)
	second := tc.waitLeader(5 * time.Second)
	if second.id == first.id {
		t.Fatalf("failover elected the dead node")
	}
	for i := 0; i < 10; i++ {
		name := fmt.Sprintf("reign2-%d", i)
		if err := tc.ackedPut(ctx, name, 5*time.Second); err != nil {
			t.Fatalf("reign-2 write %d: %v", i, err)
		}
		acked = append(acked, name)
	}

	tc.restart(first)
	final := tc.waitLeader(5 * time.Second)
	tc.waitConverged(final, 10*time.Second)
	tc.assertAckedEverywhere(ctx, acked)

	for _, tn := range tc.nodes {
		st := tn.node.Status()
		if st.LeaderID != final.id {
			t.Fatalf("node %d disagrees on leadership: %d != %d", tn.id, st.LeaderID, final.id)
		}
	}
}

// TestChaosMinorityPartition cuts the leader off (both directions), lets
// the majority elect a replacement and keep writing, verifies the isolated
// minority node still serves its cached solves and refuses writes, then
// heals and asserts full convergence.
func TestChaosMinorityPartition(t *testing.T) {
	ctx := context.Background()
	tc := newTestCluster(t, 3, 2, 0)
	leader := tc.waitLeader(5 * time.Second)

	var acked []string
	for i := 0; i < 6; i++ {
		name := fmt.Sprintf("pre-%d", i)
		if err := leader.put(ctx, name); err != nil {
			t.Fatalf("pre-partition put %d: %v", i, err)
		}
		acked = append(acked, name)
	}
	tc.waitConverged(leader, 5*time.Second)
	// Warm every replica's solve caches before the cut.
	for _, tn := range tc.nodes {
		if err := tn.cat.Flush(ctx); err != nil {
			t.Fatalf("node %d flush: %v", tn.id, err)
		}
		for _, name := range acked {
			if _, err := tn.cat.Solve(ctx, name); err != nil {
				t.Fatalf("node %d warm solve %q: %v", tn.id, name, err)
			}
		}
	}

	// Full bidirectional isolation of the leader: every outbound frame
	// dropped, every inbound frame blackholed.
	isolated := leader
	if err := isolated.inj.Rearm("cluster.net.drop:cancel:%1;cluster.net.recv.drop:cancel:%1"); err != nil {
		t.Fatalf("isolate: %v", err)
	}

	// The majority side elects a replacement and keeps accepting writes.
	var majority []*testNode
	for _, tn := range tc.nodes {
		if tn != isolated {
			majority = append(majority, tn)
		}
	}
	var second *testNode
	deadline := time.Now().Add(5 * time.Second)
	for second == nil {
		if time.Now().After(deadline) {
			t.Fatalf("majority never elected a replacement leader")
		}
		for _, tn := range majority {
			if tn.node.IsLeader() {
				second = tn
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	for i := 0; i < 4; i++ {
		name := fmt.Sprintf("during-%d", i)
		if err := second.put(ctx, name); err != nil {
			t.Fatalf("majority-side put %d: %v", i, err)
		}
		acked = append(acked, name)
	}

	// Property (c): the isolated minority node keeps serving cached solves.
	deadline = time.Now().Add(3 * time.Second)
	for isolated.node.IsLeader() {
		if time.Now().After(deadline) {
			t.Fatalf("isolated leader never stepped down")
		}
		time.Sleep(2 * time.Millisecond)
	}
	for _, name := range acked[:6] {
		res, err := isolated.cat.Solve(ctx, name)
		if err != nil {
			t.Fatalf("isolated node dropped cached solve %q: %v", name, err)
		}
		if !res.CacheHit {
			t.Fatalf("isolated node re-solved %q instead of serving the cache", name)
		}
	}
	// ... while refusing writes rather than serving stale acks.
	if _, err := isolated.node.WriteGate(); !errors.Is(err, ErrNoLeader) && !errors.Is(err, ErrNotLeader) {
		t.Fatalf("isolated WriteGate err = %v, want no-leader/not-leader", err)
	}
	lag, known := isolated.node.ReplicaLag()
	if known && lag == 0 {
		// Staleness must be visible: either the lag is unknown (no leader
		// contact) or non-zero.
		st := isolated.node.Status()
		if time.Since(st.LeaseExpiry) < 0 {
			t.Fatalf("isolated node claims fresh zero lag during partition")
		}
	}

	// Heal; the divergent-term minority node rejoins and converges.
	if err := isolated.inj.Rearm(""); err != nil {
		t.Fatalf("heal: %v", err)
	}
	final := tc.waitLeader(10 * time.Second)
	tc.waitConverged(final, 15*time.Second)
	tc.assertAckedEverywhere(ctx, acked)

	if !bytes.Equal(isolated.cat.Fingerprint(), final.cat.Fingerprint()) {
		t.Fatalf("isolated node never converged after heal")
	}
}
