package cluster

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"minup/internal/catalog"
)

// TestRecordLogGap: a ring holding non-contiguous seqs (the state a
// snapshot install used to leave behind) must refuse gapped reads instead
// of indexing out of range and crashing the process.
func TestRecordLogGap(t *testing.T) {
	r := NewRecordLog(8)
	r.Append(catalog.RecordEvent{Shard: 0, Seq: 1, Payload: []byte("a")})
	r.Append(catalog.RecordEvent{Shard: 0, Seq: 5, Payload: []byte("e")})
	// seq 3 is inside [first, last] but past the slice end: the old direct
	// index entries[3-1] panicked here.
	if _, ok := r.get(0, 3); ok {
		t.Fatalf("get across a ring gap returned ok")
	}
	if _, ok := r.get(0, 5); ok {
		t.Fatalf("get of a gapped tail entry returned ok; gapped rings must force snapshot catch-up")
	}
	if got, ok := r.get(0, 1); !ok || string(got) != "a" {
		t.Fatalf("get(0,1) = (%q, %v), want (a, true)", got, ok)
	}
}

// TestRecordLogResetAfterSnapshot: installing a snapshot resets the shard's
// ring, so appends resume contiguously from the post-snapshot seq.
func TestRecordLogResetAfterSnapshot(t *testing.T) {
	r := NewRecordLog(8)
	r.Append(catalog.RecordEvent{Shard: 0, Seq: 1, Payload: []byte("a")})
	r.Append(catalog.RecordEvent{Shard: 0, Seq: 2, Payload: []byte("b")})
	r.reset(0) // snapshot install jumped the shard to seq 10
	r.Append(catalog.RecordEvent{Shard: 0, Seq: 11, Payload: []byte("k")})
	if _, ok := r.get(0, 2); ok {
		t.Fatalf("pre-snapshot record survived the reset")
	}
	if got, ok := r.get(0, 11); !ok || string(got) != "k" {
		t.Fatalf("get(0,11) = (%q, %v), want (k, true)", got, ok)
	}
}

// TestCommitCountsOnlyConfirmed: the commit quorum must ignore positions a
// follower merely reported in a heartbeat — a dirty/divergent node (a
// deposed leader's unacknowledged tail) reports same-numbered records that
// differ from the acknowledged history. Only append/snapshot-confirmed
// positions count, and a shard awaiting a snapshot resync counts as empty.
func TestCommitCountsOnlyConfirmed(t *testing.T) {
	n := &Node{
		ownSeq: []uint64{7},
		commit: make([]uint64, 1),
		peers: map[int]*peer{
			1: {known: true, match: []uint64{7}},
			2: {known: true, match: []uint64{0}},
		},
	}
	n.recomputeCommitLocked(-1)
	if n.commit[0] != 0 {
		t.Fatalf("commit = %d counting heartbeat-reported seqs, want 0", n.commit[0])
	}
	// A confirmed position on a shard still awaiting a snapshot must not
	// count either.
	n.peers[1].confirmed = []uint64{7}
	n.peers[1].needSnap = map[int]bool{0: true}
	n.recomputeCommitLocked(-1)
	if n.commit[0] != 0 {
		t.Fatalf("commit = %d counting a needSnap shard, want 0", n.commit[0])
	}
	n.peers[1].needSnap = nil
	n.recomputeCommitLocked(-1)
	if n.commit[0] != 7 {
		t.Fatalf("commit = %d with one confirmed peer, want 7", n.commit[0])
	}
	// The commit index never regresses, even if confirmations reset.
	n.peers[1].confirmed = nil
	n.recomputeCommitLocked(-1)
	if n.commit[0] != 7 {
		t.Fatalf("commit regressed to %d, want 7", n.commit[0])
	}
}

// TestNewLeaderCommitsPreviousTermRecords: after a failover with no new
// mutations, a Barrier on a record from the previous reign must still
// commit — the new leader's empty-append probes confirm caught-up
// followers for the current term (the stand-in for Raft's no-op entry).
func TestNewLeaderCommitsPreviousTermRecords(t *testing.T) {
	ctx := context.Background()
	tc := newTestCluster(t, 3, 1, 0)
	first := tc.waitLeader(5 * time.Second)
	for i := 0; i < 4; i++ {
		if err := first.put(ctx, fmt.Sprintf("prev-%d", i)); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	tc.waitConverged(first, 5*time.Second)

	tc.stop(first)
	second := tc.waitLeader(5 * time.Second)
	if second.id == first.id {
		t.Fatalf("failover elected the dead node")
	}
	// No new writes: the barrier seq predates second's term.
	bctx, cancel := context.WithTimeout(ctx, 4*time.Second)
	defer cancel()
	if err := second.node.Barrier(bctx, 0, second.cat.ShardSeq(0)); err != nil {
		t.Fatalf("barrier on previous-term record never committed: %v", err)
	}
}

// TestVoteRefusedWhenPersistFails: a vote that cannot be made durable must
// not be granted — an unpersisted vote can be re-cast after a restart,
// electing two leaders in one term.
func TestVoteRefusedWhenPersistFails(t *testing.T) {
	dir := t.TempDir()
	cat, err := catalog.Open(catalog.Options{
		Shards:    1,
		OpenStore: func(int) (catalog.Store, error) { return catalog.NewMemStore(), nil },
	})
	if err != nil {
		t.Fatalf("catalog open: %v", err)
	}
	defer cat.Close()
	n, err := Open(Options{
		ID:      0,
		Addr:    "127.0.0.1:0",
		Peers:   map[int]string{1: "127.0.0.1:1"},
		Catalog: cat,
		Dir:     dir,
		Lease:   time.Hour, // no campaigns during the test
	})
	if err != nil {
		t.Fatalf("cluster open: %v", err)
	}
	defer n.Close()

	// Block persistence: WriteAtomic cannot rename over a directory.
	blocker := filepath.Join(dir, "cluster.state.json")
	if err := os.Mkdir(blocker, 0o755); err != nil {
		t.Fatalf("mkdir blocker: %v", err)
	}
	msg := message{Kind: msgVote, From: 1, Term: 5, LastLogTerm: 0, Seqs: []uint64{0}}
	if rep := n.handleVote(msg); rep.Granted {
		t.Fatalf("vote granted without durable state")
	}
	// Same candidate retries once persistence works again: the in-memory
	// vote (already for it) grants and now persists.
	if err := os.Remove(blocker); err != nil {
		t.Fatalf("remove blocker: %v", err)
	}
	if rep := n.handleVote(msg); !rep.Granted {
		t.Fatalf("retry after persistence recovered was refused")
	}
	data, err := os.ReadFile(blocker)
	if err != nil {
		t.Fatalf("state file missing after granted vote: %v", err)
	}
	if len(data) == 0 {
		t.Fatalf("state file empty after granted vote")
	}
}

// TestCampaignAbortsWhenPersistFails: an unpersisted self-vote must not be
// used to solicit votes.
func TestCampaignAbortsWhenPersistFails(t *testing.T) {
	dir := t.TempDir()
	cat, err := catalog.Open(catalog.Options{
		Shards:    1,
		OpenStore: func(int) (catalog.Store, error) { return catalog.NewMemStore(), nil },
	})
	if err != nil {
		t.Fatalf("catalog open: %v", err)
	}
	defer cat.Close()
	n, err := Open(Options{
		ID:      0,
		Addr:    "127.0.0.1:0",
		Peers:   map[int]string{1: "127.0.0.1:1"},
		Catalog: cat,
		Dir:     dir,
		Lease:   time.Hour,
	})
	if err != nil {
		t.Fatalf("cluster open: %v", err)
	}
	defer n.Close()
	blocker := filepath.Join(dir, "cluster.state.json")
	if err := os.Mkdir(blocker, 0o755); err != nil {
		t.Fatalf("mkdir blocker: %v", err)
	}
	n.campaign()
	n.mu.Lock()
	role := n.role
	n.mu.Unlock()
	if role != RoleFollower {
		t.Fatalf("campaign with failed persist left role %s, want follower", role)
	}
	if n.IsLeader() {
		t.Fatalf("campaign with failed persist won leadership")
	}
}

// TestSnapshotDeadlineScales: snapshot RPCs get a payload-scaled deadline
// instead of the tick-scaled CallTimeout, so multi-MB catch-ups are not
// re-shipped forever on timeout.
func TestSnapshotDeadlineScales(t *testing.T) {
	c := &rpcClient{timeout: 200 * time.Millisecond}
	if d := c.deadlineFor(message{Kind: msgHeartbeat}); d != 200*time.Millisecond {
		t.Fatalf("heartbeat deadline = %s, want CallTimeout", d)
	}
	if d := c.deadlineFor(message{Kind: msgSnapshot}); d != 2*time.Second {
		t.Fatalf("small snapshot deadline = %s, want the 2s floor", d)
	}
	big := message{Kind: msgSnapshot, Payload: make([]byte, 8<<20)}
	if d := c.deadlineFor(big); d != 10*time.Second {
		t.Fatalf("8MiB snapshot deadline = %s, want 10s", d)
	}
	slow := &rpcClient{timeout: time.Minute}
	if d := slow.deadlineFor(message{Kind: msgSnapshot}); d != time.Minute {
		t.Fatalf("snapshot deadline = %s, must never undercut CallTimeout", d)
	}
}

// TestBarrierUnconfirmedDirtyPeer: the review's headline scenario, in
// miniature — a leader whose only live peer keeps answering appends with
// NeedSync (divergent tail) but reporting matching seqs must NOT ack.
// Constructed white-box: the peer's match says "caught up", nothing is
// confirmed.
func TestBarrierUnconfirmedDirtyPeer(t *testing.T) {
	n := &Node{
		ownSeq: []uint64{3, 9},
		commit: make([]uint64, 2),
		peers: map[int]*peer{
			1: {known: true, match: []uint64{3, 9}, needSnap: map[int]bool{0: true, 1: true}},
		},
	}
	n.recomputeCommitLocked(-1)
	if n.commit[0] != 0 || n.commit[1] != 0 {
		t.Fatalf("commit = %v counting a dirty peer's reported seqs, want zeros", n.commit)
	}
	// Snapshot confirmation repairs it.
	n.peers[1].needSnap = nil
	n.peers[1].confirm(2, 0, 3)
	n.peers[1].confirm(2, 1, 9)
	n.recomputeCommitLocked(-1)
	if n.commit[0] != 3 || n.commit[1] != 9 {
		t.Fatalf("commit = %v after snapshot confirmation, want [3 9]", n.commit)
	}
	w := &commitWaiter{shard: 1, seq: 9, ch: make(chan error, 1)}
	n.waiters = append(n.waiters, w)
	n.recomputeCommitLocked(1)
	select {
	case err := <-w.ch:
		if err != nil {
			t.Fatalf("waiter released with %v", err)
		}
	default:
		t.Fatalf("waiter not released at confirmed commit")
	}
}
