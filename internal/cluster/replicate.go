package cluster

import (
	"fmt"
	"hash/crc32"
	"sync"
	"time"

	"minup/internal/catalog"
)

// maxBurst bounds how many frames one syncPeer pass ships before yielding,
// so a deeply lagging peer cannot monopolize the loop.
const maxBurst = 256

// defaultRingSize is the per-shard replication window: a follower that
// trails by more than this many records catches up by snapshot instead.
const defaultRingSize = 1024

// RecordLog is the in-memory tail of each shard's WAL, fed by the
// catalog's OnRecord hook (wire it as catalog.Options.OnRecord =
// log.Append). The leader replays it to followers frame by frame; records
// that have already fallen out of the ring force a snapshot catch-up.
type RecordLog struct {
	mu     sync.Mutex
	size   int
	shards map[int][]ringEntry
	notify func(shard int, seq uint64)
}

type ringEntry struct {
	seq     uint64
	payload []byte
}

// NewRecordLog creates a ring keeping up to size records per shard
// (0 or negative uses the default of 1024).
func NewRecordLog(size int) *RecordLog {
	if size <= 0 {
		size = defaultRingSize
	}
	return &RecordLog{size: size, shards: make(map[int][]ringEntry)}
}

// Append retains one durably appended record. It is called under the
// owning shard's write lock (the OnRecord contract), so it must stay
// cheap; the notify callback runs after the ring's own lock is released.
func (r *RecordLog) Append(ev catalog.RecordEvent) {
	r.mu.Lock()
	entries := append(r.shards[ev.Shard], ringEntry{seq: ev.Seq, payload: ev.Payload})
	if len(entries) > r.size {
		entries = entries[len(entries)-r.size:]
	}
	r.shards[ev.Shard] = entries
	fn := r.notify
	r.mu.Unlock()
	if fn != nil {
		fn(ev.Shard, ev.Seq)
	}
}

// get returns the record at exactly seq on shard, if the ring still holds
// it.
func (r *RecordLog) get(shard int, seq uint64) ([]byte, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	entries := r.shards[shard]
	if len(entries) == 0 {
		return nil, false
	}
	first := entries[0].seq
	if seq < first || seq > entries[len(entries)-1].seq {
		return nil, false
	}
	idx := int(seq - first)
	if idx >= len(entries) {
		// The ring has a gap (e.g. a snapshot install advanced the shard
		// past the buffered tail); the direct index would run off the end.
		return nil, false
	}
	e := entries[idx]
	if e.seq != seq {
		// Sequence numbers are contiguous per shard; a mismatch means the
		// ring has a gap or was fed out of order and must not serve it.
		return nil, false
	}
	return e.payload, true
}

// reset drops every buffered record for shard. Called after a snapshot
// install: the shard's sequence jumped past the buffered tail, and keeping
// the stale entries would leave a gap in the ring.
func (r *RecordLog) reset(shard int) {
	r.mu.Lock()
	delete(r.shards, shard)
	r.mu.Unlock()
}

// pendingBytes sums the payload bytes still in the ring past seq `after`
// on shard — the per-peer replication lag in bytes, exact while the peer
// is inside the ring window.
func (r *RecordLog) pendingBytes(shard int, after uint64) int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	var total int64
	for _, e := range r.shards[shard] {
		if e.seq > after {
			total += int64(len(e.payload))
		}
	}
	return total
}

func (r *RecordLog) setNotify(fn func(shard int, seq uint64)) {
	r.mu.Lock()
	r.notify = fn
	r.mu.Unlock()
}

// ---------------------------------------------------------------------------
// Per-peer replication.

// peer is the leader's view of one other node. Mutable fields are guarded
// by the owning Node's mu; the client serializes its own calls.
type peer struct {
	id     int
	addr   string
	client *rpcClient
	wake   chan struct{}

	known     bool // a reply has reported the peer's positions
	connected bool
	match     []uint64 // per-shard reported seq on the peer (replication cursor)
	// confirmed is the per-shard position proven by a successful append or
	// snapshot reply in the leader's current term. Only these positions
	// count toward the commit quorum: match comes from the follower's own
	// heartbeat reports, which a dirty/divergent node (a deposed leader's
	// unacknowledged tail) can populate with same-numbered records that
	// differ from the acknowledged history.
	confirmed []uint64
	needSnap  map[int]bool
	lastAck   time.Time
	lastSent  time.Time
}

// confirm records a replication-proven position for one shard. Caller holds
// the owning Node's mu.
func (p *peer) confirm(shards, shard int, seq uint64) {
	if p.confirmed == nil {
		p.confirmed = make([]uint64, shards)
	}
	if shard >= 0 && shard < len(p.confirmed) && seq > p.confirmed[shard] {
		p.confirmed[shard] = seq
	}
}

// unconfirm voids a shard's replication proof (the peer reported it dirty
// or gapped). Caller holds the owning Node's mu.
func (p *peer) unconfirm(shard int) {
	if shard >= 0 && shard < len(p.confirmed) {
		p.confirmed[shard] = 0
	}
}

// peerLoop drives one peer: every tick (or sooner, when a fresh record
// wakes it) it ships whatever the peer is missing — heartbeats when
// nothing, appends from the ring, snapshots past the ring window.
func (n *Node) peerLoop(p *peer) {
	defer n.wg.Done()
	t := time.NewTicker(n.opt.Tick)
	defer t.Stop()
	for {
		select {
		case <-n.stopCh:
			return
		case <-t.C:
		case <-p.wake:
		}
		n.syncPeer(p)
	}
}

// syncPeer performs one bounded replication pass against p.
func (n *Node) syncPeer(p *peer) {
	n.mu.Lock()
	if n.role != RoleLeader {
		n.mu.Unlock()
		return
	}
	term := n.term
	known := p.known
	connected := p.connected
	n.mu.Unlock()

	if !known || !connected {
		// (Re)establish contact and learn the peer's positions before
		// shipping payloads: serializing whole-shard snapshots into a dead
		// connection every tick wastes work and, in chaos runs, burns
		// one-shot fault-point hits on frames nobody ever receives.
		n.sendHeartbeat(p, term)
		return
	}

	sent := 0
	for shard := 0; shard < n.cat.Shards() && sent < maxBurst; shard++ {
		for sent < maxBurst {
			n.mu.Lock()
			if n.role != RoleLeader || n.term != term {
				n.mu.Unlock()
				return
			}
			var match, confirmed uint64
			if shard < len(p.match) {
				match = p.match[shard]
			}
			if shard < len(p.confirmed) {
				confirmed = p.confirmed[shard]
			}
			own := n.ownSeq[shard]
			needSnap := p.needSnap[shard]
			delete(p.needSnap, shard)
			n.mu.Unlock()

			// A peer ahead of the leader carries a divergent tail from a
			// deposed term; a dirty peer asked for a resync outright. Both
			// are overwritten by snapshot.
			if needSnap || match > own {
				if !n.sendSnapshot(p, term, shard) {
					return
				}
				sent++
				continue
			}
			if match >= own {
				// Fully caught up. If nothing has been appended this term the
				// peer's position is only heartbeat-reported, which the commit
				// quorum must not trust; probe with an empty append so a clean
				// peer confirms it (a dirty one answers NeedSync instead) and
				// previous-term records can commit — Raft's current-term
				// commit rule, with the probe standing in for the no-op entry.
				if match > confirmed {
					if !n.sendAppend(p, term, shard, match, nil) {
						return
					}
					sent++
				}
				break
			}
			payload, ok := n.opt.Records.get(shard, match+1)
			if !ok {
				// Fell out of the ring window: snapshot catch-up.
				if !n.sendSnapshot(p, term, shard) {
					return
				}
				sent++
				continue
			}
			if !n.sendAppend(p, term, shard, match+1, payload) {
				return
			}
			sent++
		}
	}
	if sent == 0 {
		n.mu.Lock()
		due := time.Since(p.lastSent) >= n.opt.Tick
		n.mu.Unlock()
		if due {
			n.sendHeartbeat(p, term)
		}
	}
}

// markSent stamps the last transmission attempt.
func (n *Node) markSent(p *peer) {
	n.mu.Lock()
	p.lastSent = time.Now()
	n.mu.Unlock()
}

// noteReply folds one successful reply into the peer's state: liveness,
// positions (the follower's own reports, used only as the replication
// cursor), dirty-shard requests, and the commit index. confirmShard/
// confirmSeq, when confirmShard >= 0, record a position proven by a
// successful append or snapshot in the current term — the only positions
// the commit quorum counts.
func (n *Node) noteReply(p *peer, rep reply, confirmShard int, confirmSeq uint64) {
	n.mu.Lock()
	p.lastAck = time.Now()
	p.connected = true
	if rep.Seqs != nil {
		p.known = true
		p.match = append(p.match[:0], rep.Seqs...)
	}
	if confirmShard >= 0 {
		p.confirm(n.cat.Shards(), confirmShard, confirmSeq)
	}
	for _, shard := range rep.Dirty {
		if p.needSnap == nil {
			p.needSnap = make(map[int]bool)
		}
		p.needSnap[shard] = true
		p.unconfirm(shard)
	}
	if n.role == RoleLeader {
		n.recomputeCommitLocked(-1)
	}
	if n.opt.Metrics != nil {
		var lagFrames uint64
		var lagBytes int64
		for s := range n.ownSeq {
			var match uint64
			if s < len(p.match) {
				match = p.match[s]
			}
			if n.ownSeq[s] > match {
				lagFrames += n.ownSeq[s] - match
				lagBytes += n.opt.Records.pendingBytes(s, match)
			}
		}
		n.opt.Metrics.Gauge(fmt.Sprintf("cluster.peer.%d.lag_frames", p.id)).Set(int64(lagFrames))
		n.opt.Metrics.Gauge(fmt.Sprintf("cluster.peer.%d.lag_bytes", p.id)).Set(lagBytes)
	}
	n.mu.Unlock()
}

// markDisconnected records a failed call.
func (n *Node) markDisconnected(p *peer) {
	n.mu.Lock()
	p.connected = false
	n.mu.Unlock()
}

// sendHeartbeat announces leadership and learns the peer's positions.
func (n *Node) sendHeartbeat(p *peer, term uint64) bool {
	n.markSent(p)
	msg := message{
		Kind: msgHeartbeat, From: n.opt.ID, Term: term,
		LeaderHTTP: n.opt.HTTPAddr, Shards: n.cat.Shards(), Seqs: n.cat.ShardSeqs(),
	}
	rep, err := p.client.call(msg)
	if err != nil {
		n.markDisconnected(p)
		return false
	}
	n.countMetric("cluster.heartbeats_sent")
	if rep.Term > term {
		n.observeTerm(rep.Term)
		return false
	}
	n.noteReply(p, rep, -1, 0)
	return rep.OK
}

// sendAppend ships one WAL record frame (or, with an empty payload, probes
// a position the peer already reports, to confirm it for the commit
// quorum). A successful apply — or a clean duplicate acknowledgement —
// confirms the peer at seq for this term.
func (n *Node) sendAppend(p *peer, term uint64, shard int, seq uint64, payload []byte) bool {
	n.markSent(p)
	msg := message{
		Kind: msgAppend, From: n.opt.ID, Term: term, LeaderHTTP: n.opt.HTTPAddr,
		Shard: shard, Seq: seq, Payload: payload,
	}
	rep, err := p.client.call(msg)
	if err != nil {
		n.markDisconnected(p)
		return false
	}
	n.countMetric("cluster.appends_sent")
	if rep.Term > term {
		n.observeTerm(rep.Term)
		return false
	}
	confirmShard := -1
	if rep.OK && !rep.NeedSync {
		confirmShard = shard
	}
	n.noteReply(p, rep, confirmShard, seq)
	if rep.NeedSync {
		n.mu.Lock()
		p.unconfirm(shard)
		n.mu.Unlock()
		return n.sendSnapshot(p, term, shard)
	}
	return rep.OK
}

// sendSnapshot ships one whole-shard snapshot (the catalog-<i>.snap bytes
// plus the seq it covers). The "cluster.snap.corrupt" and
// "cluster.snap.truncate" fault points mangle the payload after the
// checksum is taken, so the follower detects and rejects the damage and
// the next pass retries with clean bytes.
func (n *Node) sendSnapshot(p *peer, term uint64, shard int) bool {
	data, seq, err := n.cat.ShardSnapshot(shard)
	if err != nil {
		return false
	}
	sum := crc32.ChecksumIEEE(data)
	payload := data
	if n.opt.Fault.Hit("cluster.snap.corrupt") != nil {
		payload = append([]byte(nil), data...)
		payload[len(payload)/2] ^= 0xFF
	}
	if n.opt.Fault.Hit("cluster.snap.truncate") != nil {
		payload = payload[:len(payload)/2]
	}
	n.markSent(p)
	msg := message{
		Kind: msgSnapshot, From: n.opt.ID, Term: term, LeaderHTTP: n.opt.HTTPAddr,
		Shard: shard, Seq: seq, Payload: payload, CRC: sum,
	}
	rep, err := p.client.call(msg)
	if err != nil {
		n.markDisconnected(p)
		return false
	}
	n.countMetric("cluster.catchups_sent")
	if rep.Term > term {
		n.observeTerm(rep.Term)
		return false
	}
	confirmShard := -1
	if rep.OK {
		// An installed snapshot is the leader's own state verbatim: it
		// confirms the shard at the seq it covers.
		confirmShard = shard
	}
	n.noteReply(p, rep, confirmShard, seq)
	if !rep.OK {
		n.countMetric("cluster.catchup_retries")
		return false
	}
	return true
}
