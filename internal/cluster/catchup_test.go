package cluster

import (
	"context"
	"fmt"
	"testing"
	"time"
)

// TestSnapshotCatchup: a node that was down while the ring window rolled
// past it must catch up by shipped shard snapshot, not frame replay.
func TestSnapshotCatchup(t *testing.T) {
	ctx := context.Background()
	// Ring of 4: the 24 writes below far outrun it.
	tc := newTestCluster(t, 3, 2, 4)
	leader := tc.waitLeader(5 * time.Second)

	var straggler *testNode
	for _, tn := range tc.nodes {
		if tn != leader {
			straggler = tn
			break
		}
	}
	tc.stop(straggler)

	for i := 0; i < 24; i++ {
		if err := leader.put(ctx, fmt.Sprintf("snap-%d", i)); err != nil {
			t.Fatalf("put %d (majority of 2/3 live): %v", i, err)
		}
	}

	tc.restart(straggler)
	tc.waitConverged(leader, 10*time.Second)

	if got := straggler.reg.Counter("cluster.catchups_installed").Value(); got == 0 {
		t.Fatalf("straggler caught up without installing a snapshot")
	}
	if got := leader.reg.Counter("cluster.catchups_sent").Value(); got == 0 {
		t.Fatalf("leader reports no catch-up snapshots sent")
	}
	res, err := straggler.cat.Solve(ctx, "snap-0")
	if err != nil {
		t.Fatalf("straggler solve after catch-up: %v", err)
	}
	_ = res
}

// TestSnapshotCatchupCorrupt: a corrupted or truncated shipped snapshot is
// detected by the follower, rejected, retried with clean bytes, and still
// converges — the network-level half of the ErrSnapshotCorrupt matrix.
func TestSnapshotCatchupCorrupt(t *testing.T) {
	ctx := context.Background()
	tc := newTestCluster(t, 3, 1, 4)
	leader := tc.waitLeader(5 * time.Second)

	var straggler *testNode
	for _, tn := range tc.nodes {
		if tn != leader {
			straggler = tn
			break
		}
	}
	tc.stop(straggler)
	for i := 0; i < 16; i++ {
		if err := leader.put(ctx, fmt.Sprintf("cpt-%d", i)); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}

	// First snapshot send is bit-flipped, second truncated; the third goes
	// out clean. The follower's checksum verification must reject both
	// damaged copies and the retry loop must still converge.
	if err := leader.inj.Rearm("cluster.snap.corrupt:cancel:1;cluster.snap.truncate:cancel:2"); err != nil {
		t.Fatalf("rearm: %v", err)
	}
	tc.restart(straggler)
	tc.waitConverged(leader, 10*time.Second)

	if got := leader.reg.Counter("cluster.catchup_retries").Value(); got < 2 {
		t.Fatalf("leader retried %d damaged snapshots, want >= 2", got)
	}
	if got := straggler.reg.Counter("cluster.catchup_rejected").Value(); got < 2 {
		t.Fatalf("straggler rejected %d damaged snapshots, want >= 2", got)
	}
	if got := straggler.reg.Counter("cluster.catchups_installed").Value(); got == 0 {
		t.Fatalf("straggler never installed the clean retry")
	}
	if err := leader.inj.Rearm(""); err != nil {
		t.Fatalf("disarm: %v", err)
	}
	// The recovered replica serves reads.
	if err := straggler.cat.Flush(ctx); err != nil {
		t.Fatalf("flush: %v", err)
	}
	if _, err := straggler.cat.Solve(ctx, "cpt-3"); err != nil {
		t.Fatalf("straggler solve: %v", err)
	}
}

// TestRestartedLeaderResyncsDirty: a node that goes down while leading
// restarts with every shard marked dirty and is resynced by snapshot even
// if its log looks aligned — its tail may contain unacknowledged records
// the new leader never saw.
func TestRestartedLeaderResyncsDirty(t *testing.T) {
	ctx := context.Background()
	tc := newTestCluster(t, 3, 2, 0)
	leader := tc.waitLeader(5 * time.Second)
	for i := 0; i < 6; i++ {
		if err := leader.put(ctx, fmt.Sprintf("dl-%d", i)); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	tc.waitConverged(leader, 5*time.Second)

	old := leader
	tc.stop(old)
	next := tc.waitLeader(5 * time.Second)
	if next.id == old.id {
		t.Fatalf("dead node still counted as leader")
	}
	if err := tc.ackedPut(ctx, "dl-after", 5*time.Second); err != nil {
		t.Fatalf("post-failover put: %v", err)
	}

	tc.restart(old)
	tc.waitConverged(next, 10*time.Second)
	// The restarted ex-leader must have been brought back via snapshot: its
	// persisted WasLeader flag marks every shard dirty on boot.
	if got := old.reg.Counter("cluster.catchups_installed").Value(); got == 0 {
		t.Fatalf("restarted ex-leader converged without a dirty-shard snapshot resync")
	}
	if _, err := old.cat.Solve(ctx, "dl-after"); err != nil {
		t.Fatalf("ex-leader missing post-failover write: %v", err)
	}
}
