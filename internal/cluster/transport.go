package cluster

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"net"
	"sync"
	"time"

	"minup/internal/catalog"
	"minup/internal/fault"
	"minup/internal/wal"
)

// The wire protocol: JSON messages wrapped in the WAL's length+CRC32 frame
// format (wal.WriteFrame / wal.ReadFrame) over a persistent TCP connection,
// one synchronous request/reply per frame pair. Replicated records travel
// as the leader's exact WAL payload bytes, so a follower's log ends up
// byte-identical to the leader's.

const (
	msgHeartbeat = "heartbeat"
	msgAppend    = "append"
	msgSnapshot  = "snapshot"
	msgVote      = "vote"
)

// message is one request frame.
type message struct {
	Kind string `json:"kind"`
	From int    `json:"from"`
	Term uint64 `json:"term"`
	// Heartbeat: the leader's HTTP address (for redirects), shard count
	// (membership sanity check), and per-shard positions (for follower lag).
	LeaderHTTP string   `json:"leader_http,omitempty"`
	Shards     int      `json:"shards,omitempty"`
	Seqs       []uint64 `json:"seqs,omitempty"`
	// Append/snapshot: the shard, the sequence number the payload carries
	// the shard to, and the payload (one WAL record, or a whole shard
	// snapshot with its checksum).
	Shard   int    `json:"shard,omitempty"`
	Seq     uint64 `json:"seq,omitempty"`
	Payload []byte `json:"payload,omitempty"`
	CRC     uint32 `json:"crc,omitempty"`
	// Vote: the candidate's last-log term (Seqs carries its positions).
	LastLogTerm uint64 `json:"last_log_term,omitempty"`
}

// reply is one response frame.
type reply struct {
	OK   bool   `json:"ok"`
	Term uint64 `json:"term"`
	// Seqs is the responder's per-shard durable position.
	Seqs []uint64 `json:"seqs,omitempty"`
	// NeedSync asks the leader to ship a shard snapshot: the responder has
	// a gap at msg.Shard, or Dirty lists shards whose local tail may
	// diverge from the acknowledged history.
	NeedSync bool   `json:"need_sync,omitempty"`
	Dirty    []int  `json:"dirty,omitempty"`
	Granted  bool   `json:"granted,omitempty"`
	Err      string `json:"err,omitempty"`
}

// errInjected marks a send the fault injector swallowed.
var errInjected = errors.New("cluster: injected network fault")

// rpcClient is one node's persistent connection to one peer. Calls are
// serialized; any error closes the connection so the next call redials.
// The injector hooks live here: "cluster.net.delay" sleeps (delay rules),
// "cluster.net.drop" loses the send, "cluster.net.dup" sends the frame
// twice (the receiver must tolerate duplicates), and "cluster.net.reorder"
// holds the frame back and delivers it after the next one (the receiver
// sees genuinely reordered frames).
type rpcClient struct {
	mu      sync.Mutex
	addr    string
	fault   *fault.Injector
	timeout time.Duration
	conn    net.Conn
	br      *bufio.Reader
	stash   []byte // a reorder-deferred frame, sent after the next one
}

func (c *rpcClient) closeConn() {
	c.mu.Lock()
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
		c.br = nil
	}
	c.mu.Unlock()
}

// call sends one message and waits for its reply.
func (c *rpcClient) call(msg message) (reply, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.fault.Hit("cluster.net.delay") // delay rules sleep inside Hit
	if err := c.fault.Hit("cluster.net.drop"); err != nil {
		c.resetLocked()
		return reply{}, fmt.Errorf("%w: drop", errInjected)
	}
	out, err := json.Marshal(msg)
	if err != nil {
		return reply{}, err
	}
	if err := c.fault.Hit("cluster.net.reorder"); err != nil && c.stash == nil {
		// Hold this frame back; it goes out *after* the next call's frame,
		// arriving out of order (and the caller retries, so the receiver
		// may also see it twice).
		c.stash = out
		return reply{}, fmt.Errorf("%w: reorder (deferred)", errInjected)
	}
	if c.conn == nil {
		conn, err := net.DialTimeout("tcp", c.addr, c.timeout)
		if err != nil {
			return reply{}, err
		}
		c.conn = conn
		c.br = bufio.NewReader(conn)
	}
	c.conn.SetDeadline(time.Now().Add(c.deadlineFor(msg)))

	frames := 1
	if err := wal.WriteFrame(c.conn, out); err != nil {
		c.resetLocked()
		return reply{}, err
	}
	if c.stash != nil {
		stash := c.stash
		c.stash = nil
		if err := wal.WriteFrame(c.conn, stash); err != nil {
			c.resetLocked()
			return reply{}, err
		}
		frames++
	}
	if err := c.fault.Hit("cluster.net.dup"); err != nil {
		if err := wal.WriteFrame(c.conn, out); err != nil {
			c.resetLocked()
			return reply{}, err
		}
		frames++
	}
	// The server answers every frame in order; the first reply is ours,
	// the rest (stash, duplicate) are drained and discarded.
	var rep reply
	for i := 0; i < frames; i++ {
		payload, err := wal.ReadFrame(c.br)
		if err != nil {
			c.resetLocked()
			return reply{}, err
		}
		if i == 0 {
			if err := json.Unmarshal(payload, &rep); err != nil {
				c.resetLocked()
				return reply{}, err
			}
		}
	}
	return rep, nil
}

// deadlineFor sizes the RPC deadline to the message. Heartbeats, appends,
// and votes finish within the tick-scaled CallTimeout, but a snapshot reply
// only arrives after the follower has decoded and rebuilt every policy in
// the shard, which scales with the payload; holding multi-MB transfers to
// the heartbeat deadline would time out and re-ship them forever even
// though every server-side install succeeds.
func (c *rpcClient) deadlineFor(msg message) time.Duration {
	if msg.Kind != msgSnapshot {
		return c.timeout
	}
	// 2s floor plus ~1s per MiB of payload, never below CallTimeout.
	d := 2*time.Second + time.Duration(len(msg.Payload)>>20)*time.Second
	if d < c.timeout {
		d = c.timeout
	}
	return d
}

func (c *rpcClient) resetLocked() {
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
		c.br = nil
	}
}

// ---------------------------------------------------------------------------
// Server side.

func (n *Node) acceptLoop() {
	defer n.wg.Done()
	for {
		conn, err := n.ln.Accept()
		if err != nil {
			return // listener closed
		}
		n.connMu.Lock()
		n.conns[conn] = struct{}{}
		n.connMu.Unlock()
		n.wg.Add(1)
		go n.handleConn(conn)
	}
}

func (n *Node) handleConn(conn net.Conn) {
	defer n.wg.Done()
	defer func() {
		conn.Close()
		n.connMu.Lock()
		delete(n.conns, conn)
		n.connMu.Unlock()
	}()
	br := bufio.NewReader(conn)
	for {
		payload, err := wal.ReadFrame(br)
		if err != nil {
			return
		}
		if err := n.opt.Fault.Hit("cluster.net.recv.drop"); err != nil {
			// Blackhole: swallow the request without replying. The caller's
			// deadline expires — exactly what a partition looks like.
			n.countMetric("cluster.frames_blackholed")
			continue
		}
		var msg message
		if err := json.Unmarshal(payload, &msg); err != nil {
			return
		}
		rep := n.handleMessage(msg)
		out, err := json.Marshal(rep)
		if err != nil {
			return
		}
		conn.SetWriteDeadline(time.Now().Add(n.opt.CallTimeout))
		if err := wal.WriteFrame(conn, out); err != nil {
			return
		}
	}
}

// handleMessage dispatches one request. It must not hold n.mu across
// catalog calls (the catalog's OnRecord hook takes n.mu under the shard
// lock, so the lock order is always shard → node).
func (n *Node) handleMessage(msg message) reply {
	n.countMetric("cluster.frames_recv")
	switch msg.Kind {
	case msgHeartbeat:
		return n.handleHeartbeat(msg)
	case msgAppend:
		return n.handleAppend(msg)
	case msgSnapshot:
		return n.handleSnapshot(msg)
	case msgVote:
		return n.handleVote(msg)
	default:
		return reply{OK: false, Err: fmt.Sprintf("unknown message kind %q", msg.Kind)}
	}
}

// adoptLeader processes the term/leader claims common to heartbeat, append,
// and snapshot messages. It returns (currentTerm, ok); !ok means the sender
// is stale and must be rejected.
func (n *Node) adoptLeader(msg message) (uint64, bool) {
	n.mu.Lock()
	if msg.Term < n.term {
		term := n.term
		n.mu.Unlock()
		return term, false
	}
	persistNeeded := msg.Term > n.term
	if msg.Term > n.term || n.role != RoleFollower || n.leaderID != msg.From {
		n.stepDownLocked(msg.Term, msg.From)
	}
	n.leaderID = msg.From
	if msg.LeaderHTTP != "" {
		n.leaderHTTP = msg.LeaderHTTP
	}
	n.lastHeartbeat = time.Now()
	if msg.Kind == msgHeartbeat && msg.Seqs != nil {
		n.leaderSeqs = msg.Seqs
		if n.opt.Metrics != nil {
			var lag uint64
			for i, ls := range msg.Seqs {
				if i < len(n.ownSeq) && ls > n.ownSeq[i] {
					lag += ls - n.ownSeq[i]
				}
			}
			n.opt.Metrics.Gauge("cluster.replica.lag_frames").Set(int64(lag))
		}
	}
	term := n.term
	n.mu.Unlock()
	if persistNeeded {
		n.persist()
	}
	return term, true
}

func (n *Node) handleHeartbeat(msg message) reply {
	if msg.Shards != 0 && msg.Shards != n.cat.Shards() {
		return reply{OK: false, Err: fmt.Sprintf("shard count mismatch: leader %d, local %d", msg.Shards, n.cat.Shards())}
	}
	term, ok := n.adoptLeader(msg)
	if !ok {
		return reply{OK: false, Term: term}
	}
	rep := reply{OK: true, Term: term, Seqs: n.cat.ShardSeqs()}
	n.mu.Lock()
	for i, d := range n.dirty {
		if d {
			rep.Dirty = append(rep.Dirty, i)
		}
	}
	n.mu.Unlock()
	return rep
}

func (n *Node) handleAppend(msg message) reply {
	term, ok := n.adoptLeader(msg)
	if !ok {
		return reply{OK: false, Term: term}
	}
	if msg.Shard < 0 || msg.Shard >= n.cat.Shards() {
		return reply{OK: false, Term: term, Err: fmt.Sprintf("no shard %d", msg.Shard)}
	}
	n.mu.Lock()
	dirty := msg.Shard >= 0 && msg.Shard < len(n.dirty) && n.dirty[msg.Shard]
	n.mu.Unlock()
	if dirty {
		return reply{OK: false, Term: term, NeedSync: true, Seqs: n.cat.ShardSeqs()}
	}
	local := n.cat.ShardSeq(msg.Shard)
	switch {
	case msg.Seq <= local:
		// Duplicate delivery (retry, dup fault, reorder); already applied.
		n.countMetric("cluster.frames_duplicate")
		return reply{OK: true, Term: term, Seqs: n.cat.ShardSeqs()}
	case msg.Seq > local+1:
		n.countMetric("cluster.frames_gap")
		return reply{OK: false, Term: term, NeedSync: true, Seqs: n.cat.ShardSeqs()}
	case len(msg.Payload) == 0:
		// A position probe for a record this node turns out not to have
		// (its reported seq went stale, e.g. across a restart). Not a gap —
		// just report the real position so the leader resumes real appends.
		return reply{OK: false, Term: term, Seqs: n.cat.ShardSeqs()}
	}
	if _, err := n.cat.ApplyRecord(msg.Shard, msg.Payload); err != nil {
		if errors.Is(err, catalog.ErrOutOfOrder) {
			return reply{OK: false, Term: term, NeedSync: true, Seqs: n.cat.ShardSeqs()}
		}
		return reply{OK: false, Term: term, Err: err.Error(), Seqs: n.cat.ShardSeqs()}
	}
	n.mu.Lock()
	n.lastLogTerm = msg.Term
	n.mu.Unlock()
	n.countMetric("cluster.frames_applied")
	return reply{OK: true, Term: term, Seqs: n.cat.ShardSeqs()}
}

func (n *Node) handleSnapshot(msg message) reply {
	term, ok := n.adoptLeader(msg)
	if !ok {
		return reply{OK: false, Term: term}
	}
	if crc32.ChecksumIEEE(msg.Payload) != msg.CRC {
		n.countMetric("cluster.catchup_rejected")
		return reply{OK: false, Term: term, Err: "snapshot checksum mismatch", Seqs: n.cat.ShardSeqs()}
	}
	if err := n.cat.InstallShardSnapshot(msg.Shard, msg.Payload); err != nil {
		n.countMetric("cluster.catchup_rejected")
		return reply{OK: false, Term: term, Err: err.Error(), Seqs: n.cat.ShardSeqs()}
	}
	// The install jumped the shard past anything buffered in the record
	// ring; drop the stale tail so the ring never holds a seq gap (get()
	// refuses gapped reads, but a contiguous ring keeps frame replay
	// available if this node is later elected).
	n.opt.Records.reset(msg.Shard)
	n.mu.Lock()
	if msg.Shard >= 0 && msg.Shard < len(n.ownSeq) {
		n.ownSeq[msg.Shard] = msg.Seq
		n.dirty[msg.Shard] = false
	}
	n.lastLogTerm = msg.Term
	n.mu.Unlock()
	n.countMetric("cluster.catchups_installed")
	n.logger.Info("installed shard snapshot", "shard", msg.Shard, "seq", msg.Seq)
	return reply{OK: true, Term: term, Seqs: n.cat.ShardSeqs()}
}

// handleVote grants at most one vote per term, refuses candidates while the
// local leader lease is fresh, and refuses candidates whose log is behind:
// lower last-log term, or any shard position behind the voter's. This is
// the rule that keeps acknowledged mutations electable-leader-only.
func (n *Node) handleVote(msg message) reply {
	local := n.cat.ShardSeqs()
	n.mu.Lock()
	if msg.Term < n.term {
		rep := reply{Term: n.term}
		n.mu.Unlock()
		return rep
	}
	// Lease check against the leadership state *before* adopting the higher
	// term: a fresh lease from a live leader refuses disruptive candidates.
	leaseFresh := n.role == RoleFollower && n.leaderID >= 0 &&
		time.Since(n.lastHeartbeat) <= n.opt.Lease
	prevHeartbeat := n.lastHeartbeat
	persistNeeded := msg.Term > n.term
	if msg.Term > n.term {
		n.stepDownLocked(msg.Term, -1)
	}
	upToDate := msg.LastLogTerm > n.lastLogTerm
	if msg.LastLogTerm == n.lastLogTerm {
		upToDate = true
		for i, s := range local {
			if i >= len(msg.Seqs) || msg.Seqs[i] < s {
				upToDate = false
				break
			}
		}
	}
	grant := (n.votedFor == -1 || n.votedFor == msg.From) && !leaseFresh && upToDate
	if grant {
		n.votedFor = msg.From
		n.lastHeartbeat = time.Now() // give the candidate a full timeout
		persistNeeded = true
	} else {
		// Raft resets election timers only on granted votes: a refused
		// candidate (stale log, inflated term after a partition) must not be
		// able to suppress healthy nodes' own candidacies by spamming votes.
		n.lastHeartbeat = prevHeartbeat
	}
	term := n.term
	n.mu.Unlock()
	if persistNeeded {
		if err := n.persist(); err != nil && grant {
			// The vote must be durable before the reply: a restart would
			// reload the old votedFor and could vote again in this term,
			// electing two leaders. Refuse the grant instead — the in-memory
			// vote stands, so this node still votes for no one else this
			// term, which costs availability but never safety.
			grant = false
		}
	}
	rep := reply{OK: true, Term: term, Granted: grant}
	if grant {
		n.countMetric("cluster.votes_granted")
	}
	return rep
}
