package cluster

import (
	"crypto/sha256"
	"encoding/hex"
	"sort"
	"time"
)

// Status is the GET /cluster payload: this node's view of the cluster.
type Status struct {
	ID         int    `json:"id"`
	Role       string `json:"role"`
	Term       uint64 `json:"term"`
	LeaderID   int    `json:"leader_id"`
	LeaderHTTP string `json:"leader_http,omitempty"`
	// LeaseExpiry: for a leader, when its quorum lease runs out unless
	// renewed; for a follower, when the current leader's claim goes stale.
	LeaseExpiry time.Time `json:"lease_expiry"`
	// Shards is the local last-applied sequence number per shard; Commit
	// the majority-replicated sequence per shard (leader view).
	Shards []uint64 `json:"shards"`
	Commit []uint64 `json:"commit,omitempty"`
	// ReplicaLag is the follower's total frame lag behind the leader
	// (unknown when no heartbeat has been heard); dirty shards await a
	// snapshot resync.
	ReplicaLag      uint64 `json:"replica_lag_frames"`
	ReplicaLagKnown bool   `json:"replica_lag_known"`
	DirtyShards     []int  `json:"dirty_shards,omitempty"`
	Elections       uint64 `json:"elections"`
	// Fingerprint is a short SHA-256 of the catalog's deterministic state
	// serialization — equal fingerprints mean converged replicas.
	Fingerprint string       `json:"fingerprint"`
	Peers       []PeerStatus `json:"peers,omitempty"`
}

// PeerStatus is the leader's replication view of one peer.
type PeerStatus struct {
	ID        int    `json:"id"`
	Addr      string `json:"addr"`
	Connected bool   `json:"connected"`
	// Known reports that the peer has answered at least once this term;
	// MatchSeqs is its per-shard self-reported position, ConfirmedSeqs the
	// per-shard position proven by append/snapshot replication this term
	// (only these count toward the commit quorum), LagFrames/LagBytes how
	// far it trails the leader (bytes counted over the ring window).
	Known         bool     `json:"known"`
	MatchSeqs     []uint64 `json:"match_seqs,omitempty"`
	ConfirmedSeqs []uint64 `json:"confirmed_seqs,omitempty"`
	LagFrames     uint64   `json:"lag_frames"`
	LagBytes      int64    `json:"lag_bytes"`
	// LastAckMS is milliseconds since the last successful reply (-1 when
	// never).
	LastAckMS int64 `json:"last_ack_ms"`
}

// Status snapshots the node's cluster state.
func (n *Node) Status() Status {
	fp := sha256.Sum256(n.cat.Fingerprint())
	seqs := n.cat.ShardSeqs()

	n.mu.Lock()
	defer n.mu.Unlock()
	st := Status{
		ID:          n.opt.ID,
		Role:        n.role.String(),
		Term:        n.term,
		LeaderID:    n.leaderID,
		LeaderHTTP:  n.leaderHTTP,
		Shards:      seqs,
		Elections:   n.elections,
		Fingerprint: hex.EncodeToString(fp[:8]),
	}
	if n.role == RoleLeader {
		st.LeaderHTTP = n.opt.HTTPAddr
		st.LeaseExpiry = n.leaseUntil
		st.Commit = append([]uint64(nil), n.commit...)
		st.ReplicaLagKnown = true
	} else {
		st.LeaseExpiry = n.lastHeartbeat.Add(n.opt.Lease)
		if n.leaderSeqs != nil && time.Since(n.lastHeartbeat) <= 2*n.opt.Lease {
			st.ReplicaLagKnown = true
			for i, ls := range n.leaderSeqs {
				if i < len(seqs) && ls > seqs[i] {
					st.ReplicaLag += ls - seqs[i]
				}
			}
		}
	}
	for i, d := range n.dirty {
		if d {
			st.DirtyShards = append(st.DirtyShards, i)
		}
	}
	for _, p := range n.peers {
		ps := PeerStatus{
			ID:        p.id,
			Addr:      p.addr,
			Connected: p.connected,
			Known:     p.known,
			LastAckMS: -1,
		}
		if !p.lastAck.IsZero() {
			ps.LastAckMS = time.Since(p.lastAck).Milliseconds()
		}
		if p.known {
			ps.MatchSeqs = append([]uint64(nil), p.match...)
			ps.ConfirmedSeqs = append([]uint64(nil), p.confirmed...)
			for s := range seqs {
				var match uint64
				if s < len(p.match) {
					match = p.match[s]
				}
				if seqs[s] > match {
					ps.LagFrames += seqs[s] - match
					ps.LagBytes += n.opt.Records.pendingBytes(s, match)
				}
			}
		}
		st.Peers = append(st.Peers, ps)
	}
	sort.Slice(st.Peers, func(i, j int) bool { return st.Peers[i].ID < st.Peers[j].ID })
	return st
}
