package mlsdb

import (
	"testing"

	"minup/internal/baseline"
	"minup/internal/constraint"
	"minup/internal/core"
	"minup/internal/lattice"
)

// viewSetup builds the hospital-style base schema with a secret diagnosis
// and a joined view over patient and doctor.
func viewSetup(t *testing.T) (*Schema, *lattice.Chain, []View, lattice.Level) {
	t.Helper()
	lat := lattice.MustChain("c", "Public", "Staff", "Secret")
	s := NewSchema(lat)
	s.MustAddRelation("patient", []string{"patient_id", "doctor", "diagnosis"}, []string{"patient_id"})
	s.MustAddRelation("doctor", []string{"doctor_id", "name"}, []string{"doctor_id"})
	if err := s.AddForeignKey("patient", []string{"doctor"}, "doctor"); err != nil {
		t.Fatal(err)
	}
	secret, _ := lat.ParseLevel("Secret")
	views := []View{{
		Name: "caseload",
		Columns: []ViewColumn{
			{Name: "doc_name", Rel: "doctor", Attr: "name"},
			{Name: "diag", Rel: "patient", Attr: "diagnosis"},
		},
		Joins: []ViewJoin{{
			LeftRel: "patient", LeftAttr: "doctor",
			RightRel: "doctor", RightAttr: "doctor_id",
		}},
	}}
	return s, lat, views, secret
}

func TestViewConstraints(t *testing.T) {
	s, lat, views, secret := viewSetup(t)
	set, err := s.Constraints([]Requirement{
		{Rel: "patient", Attr: "diagnosis", Level: secret},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.GenerateViewConstraints(set, views); err != nil {
		t.Fatal(err)
	}
	res := core.MustSolve(set, core.Options{})

	cols, err := ViewLabeling(set, res.Assignment, views[0])
	if err != nil {
		t.Fatal(err)
	}
	// The diag column must inherit Secret from its source.
	if got := res.Assignment[cols["diag"]]; got != secret {
		t.Errorf("caseload.diag = %s, want Secret", lat.FormatLevel(got))
	}
	// doc_name's source is Public, but the view column must dominate the
	// join attributes on the doctor side (doctor_id).
	docID, _ := set.AttrByName("doctor.doctor_id")
	if !lat.Dominates(res.Assignment[cols["doc_name"]], res.Assignment[docID]) {
		t.Error("doc_name does not dominate its join key")
	}
	// Minimality of the combined labeling.
	min, err := baseline.IsMinimal(set, res.Assignment)
	if err != nil {
		t.Fatal(err)
	}
	if !min {
		t.Errorf("view labeling not minimal: %s", set.FormatAssignment(res.Assignment))
	}

	// The view column dominates the base: the view cannot under-classify.
	diagBase, _ := set.AttrByName("patient.diagnosis")
	if !lat.Dominates(res.Assignment[cols["diag"]], res.Assignment[diagBase]) {
		t.Error("view column below its source")
	}
}

func TestViewJoinAssociationRaises(t *testing.T) {
	// If the join key itself is sensitive, every view column must rise to
	// cover it — the association effect of a join.
	s, lat, views, _ := viewSetup(t)
	staff, _ := lat.ParseLevel("Staff")
	set, err := s.Constraints([]Requirement{
		{Rel: "patient", Attr: "doctor", Level: staff}, // sensitive link
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.GenerateViewConstraints(set, views); err != nil {
		t.Fatal(err)
	}
	res := core.MustSolve(set, core.Options{})
	cols, _ := ViewLabeling(set, res.Assignment, views[0])
	for name, a := range cols {
		if name == "diag" { // patient-side column: join attr patient.doctor is Staff
			if !lat.Dominates(res.Assignment[a], staff) {
				t.Errorf("column %s = %s, must cover the Staff join key",
					name, lat.FormatLevel(res.Assignment[a]))
			}
		}
	}
}

func TestViewValidation(t *testing.T) {
	s, _, _, _ := viewSetup(t)
	set, err := s.Constraints(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, bad := range []View{
		{Name: "", Columns: []ViewColumn{{Name: "x", Rel: "patient", Attr: "doctor"}}},
		{Name: "v"},
		{Name: "v", Columns: []ViewColumn{{Name: "", Rel: "patient", Attr: "doctor"}}},
		{Name: "v", Columns: []ViewColumn{
			{Name: "x", Rel: "patient", Attr: "doctor"},
			{Name: "x", Rel: "patient", Attr: "doctor"}}},
		{Name: "v", Columns: []ViewColumn{{Name: "x", Rel: "zz", Attr: "doctor"}}},
		{Name: "v", Columns: []ViewColumn{{Name: "x", Rel: "patient", Attr: "zz"}}},
		{Name: "v", Columns: []ViewColumn{{Name: "x", Rel: "patient", Attr: "doctor"}},
			Joins: []ViewJoin{{LeftRel: "zz", LeftAttr: "a", RightRel: "doctor", RightAttr: "doctor_id"}}},
		{Name: "v", Columns: []ViewColumn{{Name: "x", Rel: "patient", Attr: "doctor"}},
			Joins: []ViewJoin{{LeftRel: "patient", LeftAttr: "zz", RightRel: "doctor", RightAttr: "doctor_id"}}},
	} {
		if err := s.GenerateViewConstraints(set, []View{bad}); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}

	// Base attributes must pre-exist in the set: a fresh set lacking the
	// schema's attributes is rejected.
	freshSet := constraint.NewSet(s.Lattice())
	if err := s.GenerateViewConstraints(freshSet, []View{{
		Name:    "v",
		Columns: []ViewColumn{{Name: "x", Rel: "patient", Attr: "doctor"}},
	}}); err == nil {
		t.Error("missing base attributes accepted")
	}
}

func TestViewLabelingMissingColumn(t *testing.T) {
	s, _, views, _ := viewSetup(t)
	set, err := s.Constraints(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Not generated: lookup must fail.
	res := core.MustSolve(set, core.Options{})
	if _, err := ViewLabeling(set, res.Assignment, views[0]); err == nil {
		t.Error("missing view columns accepted")
	}
}
