// Package mlsdb is the multilevel relational database substrate the paper
// frames its problem in (§1–2): relational schemas with primary keys,
// foreign keys, and data dependencies; automatic generation of the
// classification constraints those structures induce (the paper's
// integrity constraints plus FD-based inference channels and association
// constraints); application of a computed classification to the schema;
// and a small labeled storage engine with read-down query filtering and
// polyinstantiation, used to demonstrate end to end that a minimal
// labeling closes the inference channels (experiment E10).
package mlsdb

import (
	"fmt"

	"minup/internal/constraint"
	"minup/internal/lattice"
)

// Schema is a relational schema: a set of relations over a single security
// lattice. Build with NewSchema and the Add* methods, then call
// Constraints to derive the classification-constraint instance.
type Schema struct {
	lat       lattice.Lattice
	relations []*Relation
	byName    map[string]*Relation
}

// Relation is one relation schema.
type Relation struct {
	Name       string
	Attrs      []string
	Key        []string     // primary key attribute names
	FDs        []FD         // functional dependencies X → Y
	MVDs       []MVD        // multivalued dependencies X ↠ Y
	ForeignKey []ForeignKey // references to other relations

	attrSet map[string]bool
}

// FD is a functional dependency: the determinant attributes functionally
// determine the dependents. Knowing the determinant values reveals the
// dependent values, so the combined classification of the determinant must
// dominate each dependent's classification (the inference-channel
// constraints of Su–Ozsoyoglu style analyses).
type FD struct {
	Determinant []string
	Dependent   []string
}

// MVD is a multivalued dependency X ↠ Y: within each X-group the Y values
// appear in all combinations with the remaining attributes, so seeing X
// and the rest of the tuple reveals the association with Y. We encode the
// induced requirement conservatively like an FD from X to Y.
type MVD struct {
	Determinant []string
	Dependent   []string
}

// ForeignKey declares that Attrs (in this relation) reference the primary
// key of Ref.
type ForeignKey struct {
	Attrs []string
	Ref   string
}

// NewSchema returns an empty schema over the lattice.
func NewSchema(lat lattice.Lattice) *Schema {
	return &Schema{lat: lat, byName: make(map[string]*Relation)}
}

// Lattice returns the schema's security lattice.
func (s *Schema) Lattice() lattice.Lattice { return s.lat }

// Relations returns the relations in declaration order.
func (s *Schema) Relations() []*Relation { return s.relations }

// Relation looks a relation up by name.
func (s *Schema) Relation(name string) (*Relation, bool) {
	r, ok := s.byName[name]
	return r, ok
}

// AddRelation declares a relation with its attributes and primary key.
func (s *Schema) AddRelation(name string, attrs []string, key []string) (*Relation, error) {
	if name == "" {
		return nil, fmt.Errorf("mlsdb: empty relation name")
	}
	if _, dup := s.byName[name]; dup {
		return nil, fmt.Errorf("mlsdb: duplicate relation %q", name)
	}
	if len(attrs) == 0 {
		return nil, fmt.Errorf("mlsdb: relation %q has no attributes", name)
	}
	r := &Relation{Name: name, attrSet: make(map[string]bool, len(attrs))}
	for _, a := range attrs {
		if a == "" {
			return nil, fmt.Errorf("mlsdb: relation %q has an empty attribute name", name)
		}
		if r.attrSet[a] {
			return nil, fmt.Errorf("mlsdb: relation %q duplicates attribute %q", name, a)
		}
		r.attrSet[a] = true
		r.Attrs = append(r.Attrs, a)
	}
	if len(key) == 0 {
		return nil, fmt.Errorf("mlsdb: relation %q needs a primary key", name)
	}
	for _, k := range key {
		if !r.attrSet[k] {
			return nil, fmt.Errorf("mlsdb: relation %q key attribute %q not declared", name, k)
		}
	}
	r.Key = append(r.Key, key...)
	s.relations = append(s.relations, r)
	s.byName[name] = r
	return r, nil
}

// MustAddRelation is AddRelation that panics on error, for fixtures.
func (s *Schema) MustAddRelation(name string, attrs []string, key []string) *Relation {
	r, err := s.AddRelation(name, attrs, key)
	if err != nil {
		panic(err)
	}
	return r
}

// AddFD declares a functional dependency on a relation.
func (s *Schema) AddFD(rel string, determinant, dependent []string) error {
	r, ok := s.byName[rel]
	if !ok {
		return fmt.Errorf("mlsdb: %w %q", ErrUnknownRelation, rel)
	}
	if len(determinant) == 0 || len(dependent) == 0 {
		return fmt.Errorf("mlsdb: FD on %q needs both sides", rel)
	}
	for _, a := range append(append([]string(nil), determinant...), dependent...) {
		if !r.attrSet[a] {
			return fmt.Errorf("mlsdb: FD on %q mentions %w %q", rel, ErrUnknownAttr, a)
		}
	}
	r.FDs = append(r.FDs, FD{Determinant: determinant, Dependent: dependent})
	return nil
}

// AddMVD declares a multivalued dependency on a relation.
func (s *Schema) AddMVD(rel string, determinant, dependent []string) error {
	r, ok := s.byName[rel]
	if !ok {
		return fmt.Errorf("mlsdb: %w %q", ErrUnknownRelation, rel)
	}
	if len(determinant) == 0 || len(dependent) == 0 {
		return fmt.Errorf("mlsdb: MVD on %q needs both sides", rel)
	}
	for _, a := range append(append([]string(nil), determinant...), dependent...) {
		if !r.attrSet[a] {
			return fmt.Errorf("mlsdb: MVD on %q mentions %w %q", rel, ErrUnknownAttr, a)
		}
	}
	r.MVDs = append(r.MVDs, MVD{Determinant: determinant, Dependent: dependent})
	return nil
}

// AddForeignKey declares that rel.attrs references the primary key of ref.
// The attribute counts must match ref's key.
func (s *Schema) AddForeignKey(rel string, attrs []string, ref string) error {
	r, ok := s.byName[rel]
	if !ok {
		return fmt.Errorf("mlsdb: %w %q", ErrUnknownRelation, rel)
	}
	target, ok := s.byName[ref]
	if !ok {
		return fmt.Errorf("mlsdb: foreign key on %q references %w %q", rel, ErrUnknownRelation, ref)
	}
	if len(attrs) != len(target.Key) {
		return fmt.Errorf("mlsdb: foreign key on %q has %d attributes; %q's key has %d",
			rel, len(attrs), ref, len(target.Key))
	}
	for _, a := range attrs {
		if !r.attrSet[a] {
			return fmt.Errorf("mlsdb: foreign key on %q mentions %w %q", rel, ErrUnknownAttr, a)
		}
	}
	r.ForeignKey = append(r.ForeignKey, ForeignKey{Attrs: attrs, Ref: ref})
	return nil
}

// QualifiedName returns the constraint-attribute name for rel.attr.
func QualifiedName(rel, attr string) string { return rel + "." + attr }

// Requirement is an explicit classification requirement: a basic
// constraint λ(rel.attr) ≽ Level, or with Upper set, Level ≽ λ(rel.attr).
type Requirement struct {
	Rel, Attr string
	Level     lattice.Level
	Upper     bool
}

// Association is an explicit association constraint: the combined
// classification of the listed attributes must dominate Level (e.g. names
// and salaries may each be public while the pair is Secret).
type Association struct {
	Rel   string
	Attrs []string
	Level lattice.Level
}

// Constraints derives the full classification-constraint instance for the
// schema: one constraint attribute per relation attribute (named
// "rel.attr"), plus
//
//   - primary-key uniformity: all key attributes of a relation mutually
//     dominate each other (forcing equal classification), and every
//     non-key attribute dominates the key (the paper's primary key
//     integrity constraint);
//   - referential integrity: each foreign-key attribute dominates the
//     referenced key attribute;
//   - inference channels: for every FD and MVD X→Y, lub{λ(X)} ≽ λ(A) for
//     each dependent A;
//   - the caller's explicit requirements and associations.
func (s *Schema) Constraints(reqs []Requirement, assocs []Association) (*constraint.Set, error) {
	set := constraint.NewSet(s.lat)
	attr := func(rel, a string) (constraint.Attr, error) {
		return set.AddAttr(QualifiedName(rel, a))
	}
	// Declare all attributes first, in schema order.
	for _, r := range s.relations {
		for _, a := range r.Attrs {
			if _, err := attr(r.Name, a); err != nil {
				return nil, err
			}
		}
	}
	for _, r := range s.relations {
		// Primary-key uniformity: a cycle k1 ≽ k2 ≽ … ≽ kn ≽ k1.
		if len(r.Key) > 1 {
			for i := range r.Key {
				ki, _ := attr(r.Name, r.Key[i])
				kj, _ := attr(r.Name, r.Key[(i+1)%len(r.Key)])
				if err := set.Add([]constraint.Attr{ki}, constraint.AttrRHS(kj)); err != nil {
					return nil, err
				}
			}
		}
		// Non-key attributes dominate the key.
		key0, _ := attr(r.Name, r.Key[0])
		for _, a := range r.Attrs {
			if a == r.Key[0] {
				continue
			}
			isKey := false
			for _, k := range r.Key {
				if a == k {
					isKey = true
					break
				}
			}
			if isKey {
				continue
			}
			av, _ := attr(r.Name, a)
			if err := set.Add([]constraint.Attr{av}, constraint.AttrRHS(key0)); err != nil {
				return nil, err
			}
		}
		// Referential integrity.
		for _, fk := range r.ForeignKey {
			target := s.byName[fk.Ref]
			for i, a := range fk.Attrs {
				from, _ := attr(r.Name, a)
				to, _ := attr(target.Name, target.Key[i])
				if _, err := set.AddIgnoreTrivial([]constraint.Attr{from}, constraint.AttrRHS(to)); err != nil {
					return nil, err
				}
			}
		}
		// Inference channels from FDs and MVDs.
		addDep := func(det, dep []string) error {
			lhs := make([]constraint.Attr, 0, len(det))
			for _, d := range det {
				dv, _ := attr(r.Name, d)
				lhs = append(lhs, dv)
			}
			for _, d := range dep {
				dv, _ := attr(r.Name, d)
				if _, err := set.AddIgnoreTrivial(lhs, constraint.AttrRHS(dv)); err != nil {
					return err
				}
			}
			return nil
		}
		for _, fd := range r.FDs {
			if err := addDep(fd.Determinant, fd.Dependent); err != nil {
				return nil, err
			}
		}
		for _, mvd := range r.MVDs {
			if err := addDep(mvd.Determinant, mvd.Dependent); err != nil {
				return nil, err
			}
		}
	}
	// Explicit requirements and associations.
	for _, rq := range reqs {
		r, ok := s.byName[rq.Rel]
		if !ok || !r.attrSet[rq.Attr] {
			return nil, fmt.Errorf("mlsdb: requirement on %w %s.%s", ErrUnknownAttr, rq.Rel, rq.Attr)
		}
		av, _ := attr(rq.Rel, rq.Attr)
		if rq.Upper {
			if err := set.AddUpper(av, rq.Level); err != nil {
				return nil, err
			}
		} else if err := set.Add([]constraint.Attr{av}, constraint.LevelRHS(rq.Level)); err != nil {
			return nil, err
		}
	}
	for _, as := range assocs {
		r, ok := s.byName[as.Rel]
		if !ok {
			return nil, fmt.Errorf("mlsdb: association on %w %q", ErrUnknownRelation, as.Rel)
		}
		lhs := make([]constraint.Attr, 0, len(as.Attrs))
		for _, a := range as.Attrs {
			if !r.attrSet[a] {
				return nil, fmt.Errorf("mlsdb: association on %w %s.%s", ErrUnknownAttr, as.Rel, a)
			}
			av, _ := attr(as.Rel, a)
			lhs = append(lhs, av)
		}
		if err := set.Add(lhs, constraint.LevelRHS(as.Level)); err != nil {
			return nil, err
		}
	}
	return set, nil
}

// Labeling maps each relation attribute to its computed security level.
type Labeling struct {
	lat    lattice.Lattice
	levels map[string]lattice.Level // key: QualifiedName
}

// ApplyAssignment converts a solved constraint assignment into a schema
// labeling.
func (s *Schema) ApplyAssignment(set *constraint.Set, m constraint.Assignment) (*Labeling, error) {
	lab := &Labeling{lat: s.lat, levels: make(map[string]lattice.Level)}
	for _, r := range s.relations {
		for _, a := range r.Attrs {
			name := QualifiedName(r.Name, a)
			ca, ok := set.AttrByName(name)
			if !ok {
				return nil, fmt.Errorf("mlsdb: constraint set lacks attribute %s", name)
			}
			lab.levels[name] = m[ca]
		}
	}
	return lab, nil
}

// Level returns the classification of rel.attr.
func (l *Labeling) Level(rel, attr string) (lattice.Level, bool) {
	lvl, ok := l.levels[QualifiedName(rel, attr)]
	return lvl, ok
}

// CheckInferenceClosed audits a labeling against the schema's dependencies:
// for every FD/MVD X→A, a subject cleared for all of X must be cleared for
// A, i.e. lub{λ(X)} ≽ λ(A). It returns descriptions of any open channels.
func (s *Schema) CheckInferenceClosed(l *Labeling) []string {
	var open []string
	for _, r := range s.relations {
		check := func(kind string, det, dep []string) {
			lub := s.lat.Bottom()
			for _, d := range det {
				lvl, _ := l.Level(r.Name, d)
				lub = s.lat.Lub(lub, lvl)
			}
			for _, d := range dep {
				lvl, _ := l.Level(r.Name, d)
				if !s.lat.Dominates(lub, lvl) {
					open = append(open, fmt.Sprintf("%s %v->%s on %s leaks %s",
						kind, det, d, r.Name, s.lat.FormatLevel(lvl)))
				}
			}
		}
		for _, fd := range r.FDs {
			check("FD", fd.Determinant, fd.Dependent)
		}
		for _, mvd := range r.MVDs {
			check("MVD", mvd.Determinant, mvd.Dependent)
		}
	}
	return open
}
