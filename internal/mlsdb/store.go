package mlsdb

import (
	"fmt"
	"sort"
	"strings"

	"minup/internal/lattice"
)

// Store is a small in-memory multilevel storage engine over a labeled
// schema. Every cell carries the classification of its attribute (from the
// Labeling); a tuple's classification is the lub of its cells. Reads are
// mandatory-access-controlled: a subject sees a cell only if cleared for
// it (read down), and sees a tuple at all only if cleared for its key.
// Inserts at distinct access classes with the same key polyinstantiate:
// both tuples coexist, distinguished by their tuple classification, as in
// the SeaView/Jajodia–Sandhu multilevel relational models the paper builds
// on.
type Store struct {
	schema   *Schema
	labeling *Labeling
	tables   map[string][]Tuple
}

// Tuple is one stored row: attribute values plus the access class the
// writer held at insert time (which, by the ⋆-property, must dominate
// every cell it writes).
type Tuple struct {
	Values map[string]string
	Class  lattice.Level // the writer's access class
}

// NewStore creates an empty store over a schema and a labeling computed
// for it.
func NewStore(schema *Schema, labeling *Labeling) *Store {
	return &Store{schema: schema, labeling: labeling, tables: make(map[string][]Tuple)}
}

// Insert writes a tuple into rel on behalf of a subject at the given
// access class. Mandatory write control requires the subject's class to
// dominate the classification of every attribute it supplies (no write
// down of high data into low fields — and no blind writes above the
// subject either, keeping the example engine simple). Re-inserting an
// existing key at an incomparable or different class polyinstantiates;
// re-inserting at the same class replaces.
func (st *Store) Insert(rel string, subject lattice.Level, values map[string]string) error {
	r, ok := st.schema.Relation(rel)
	if !ok {
		return fmt.Errorf("mlsdb: %w %q", ErrUnknownRelation, rel)
	}
	lat := st.schema.Lattice()
	for _, k := range r.Key {
		if _, ok := values[k]; !ok {
			return fmt.Errorf("mlsdb: insert into %q missing key attribute %q", rel, k)
		}
	}
	copied := make(map[string]string, len(values))
	for a, v := range values {
		if !r.attrSet[a] {
			return fmt.Errorf("mlsdb: insert into %q mentions %w %q", rel, ErrUnknownAttr, a)
		}
		lvl, _ := st.labeling.Level(rel, a)
		if !lat.Dominates(subject, lvl) {
			return fmt.Errorf("mlsdb: subject %s cannot write %s.%s classified %s",
				lat.FormatLevel(subject), rel, a, lat.FormatLevel(lvl))
		}
		copied[a] = v
	}
	rows := st.tables[rel]
	for i, t := range rows {
		if t.Class == subject && sameKey(r, t.Values, copied) {
			rows[i] = Tuple{Values: copied, Class: subject}
			return nil
		}
	}
	st.tables[rel] = append(rows, Tuple{Values: copied, Class: subject})
	return nil
}

func sameKey(r *Relation, a, b map[string]string) bool {
	for _, k := range r.Key {
		if a[k] != b[k] {
			return false
		}
	}
	return true
}

// Row is one query result: visible attribute values (masked cells are
// absent from the map).
type Row map[string]string

// Select returns the tuples of rel visible to a subject, applying
// read-down filtering cell by cell: a cell is visible iff the subject's
// class dominates both the attribute's classification and the writing
// tuple's class; a tuple is visible at all iff its key cells are. attrs
// selects the projection (nil means all attributes).
func (st *Store) Select(rel string, subject lattice.Level, attrs []string) ([]Row, error) {
	r, ok := st.schema.Relation(rel)
	if !ok {
		return nil, fmt.Errorf("mlsdb: %w %q", ErrUnknownRelation, rel)
	}
	if attrs == nil {
		attrs = r.Attrs
	}
	for _, a := range attrs {
		if !r.attrSet[a] {
			return nil, fmt.Errorf("mlsdb: select on %q mentions %w %q", rel, ErrUnknownAttr, a)
		}
	}
	lat := st.schema.Lattice()
	visible := func(a string, t Tuple) bool {
		lvl, _ := st.labeling.Level(rel, a)
		return lat.Dominates(subject, lvl) && lat.Dominates(subject, t.Class)
	}
	var out []Row
	for _, t := range st.tables[rel] {
		keyVisible := true
		for _, k := range r.Key {
			if !visible(k, t) {
				keyVisible = false
				break
			}
		}
		if !keyVisible {
			continue
		}
		row := make(Row)
		for _, a := range attrs {
			if v, ok := t.Values[a]; ok && visible(a, t) {
				row[a] = v
			}
		}
		out = append(out, row)
	}
	return out, nil
}

// Polyinstantiated returns the keys of rel that exist at more than one
// access class.
func (st *Store) Polyinstantiated(rel string) ([]string, error) {
	r, ok := st.schema.Relation(rel)
	if !ok {
		return nil, fmt.Errorf("mlsdb: %w %q", ErrUnknownRelation, rel)
	}
	count := make(map[string]int)
	for _, t := range st.tables[rel] {
		count[keyString(r, t.Values)]++
	}
	var out []string
	for k, c := range count {
		if c > 1 {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out, nil
}

func keyString(r *Relation, values map[string]string) string {
	parts := make([]string, len(r.Key))
	for i, k := range r.Key {
		parts[i] = values[k]
	}
	return strings.Join(parts, "\x00")
}

// TupleCount returns the number of stored tuples in rel (including
// polyinstantiated variants).
func (st *Store) TupleCount(rel string) int { return len(st.tables[rel]) }

// Delete removes the tuple of rel with the given key values written at
// exactly the subject's access class. Mandatory integrity forbids deleting
// across classes: a subject can neither destroy higher data (integrity)
// nor lower data (that act would signal downward — the classic covert
// channel). Deleting a key that exists only at other classes reports
// found=false, indistinguishable from the key not existing at all.
func (st *Store) Delete(rel string, subject lattice.Level, key map[string]string) (found bool, err error) {
	r, ok := st.schema.Relation(rel)
	if !ok {
		return false, fmt.Errorf("mlsdb: %w %q", ErrUnknownRelation, rel)
	}
	for _, k := range r.Key {
		if _, ok := key[k]; !ok {
			return false, fmt.Errorf("mlsdb: delete from %q missing key attribute %q", rel, k)
		}
	}
	rows := st.tables[rel]
	for i, t := range rows {
		if t.Class == subject && sameKey(r, t.Values, key) {
			st.tables[rel] = append(rows[:i], rows[i+1:]...)
			return true, nil
		}
	}
	return false, nil
}
