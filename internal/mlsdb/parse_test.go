package mlsdb

import (
	"strings"
	"testing"

	"minup/internal/core"
	"minup/internal/lattice"
)

const hospitalSchemaText = `
# hospital schema
relation patient(patient_id, name, ward, doctor, treatment, diagnosis) key(patient_id)
relation doctor(doctor_id, name, specialty) key(doctor_id)

fk patient(doctor) -> doctor

fd  patient: treatment -> diagnosis
fd  patient: ward, doctor -> diagnosis
mvd patient: treatment -> ward

require patient.diagnosis >= Confidential
require patient.name >= Staff
require Staff >= patient.ward
assoc patient(name, diagnosis) >= Restricted
`

func TestParseSchema(t *testing.T) {
	lat := lattice.MustChain("hospital", "Public", "Staff", "Confidential", "Restricted")
	s, reqs, assocs, err := ParseSchema(lat, strings.NewReader(hospitalSchemaText))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Relations()) != 2 {
		t.Fatalf("relations = %d", len(s.Relations()))
	}
	pat, ok := s.Relation("patient")
	if !ok || len(pat.Attrs) != 6 || len(pat.Key) != 1 {
		t.Fatalf("patient shape: %+v", pat)
	}
	if len(pat.FDs) != 2 || len(pat.MVDs) != 1 || len(pat.ForeignKey) != 1 {
		t.Fatalf("dependency counts: %d fd, %d mvd, %d fk",
			len(pat.FDs), len(pat.MVDs), len(pat.ForeignKey))
	}
	if len(pat.FDs[1].Determinant) != 2 {
		t.Fatalf("second FD determinant: %v", pat.FDs[1].Determinant)
	}
	if len(reqs) != 3 || len(assocs) != 1 {
		t.Fatalf("reqs=%d assocs=%d", len(reqs), len(assocs))
	}
	var uppers int
	for _, r := range reqs {
		if r.Upper {
			uppers++
			if r.Attr != "ward" {
				t.Errorf("upper bound on %s", r.Attr)
			}
		}
	}
	if uppers != 1 {
		t.Fatalf("uppers = %d", uppers)
	}

	// The parsed schema solves end to end with channels closed.
	set, err := s.Constraints(reqs, assocs)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Solve(set, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	lab, err := s.ApplyAssignment(set, res.Assignment)
	if err != nil {
		t.Fatal(err)
	}
	if open := s.CheckInferenceClosed(lab); open != nil {
		t.Fatalf("open channels: %v", open)
	}
	// The visibility ceiling was respected.
	staff, _ := lat.ParseLevel("Staff")
	ward, _ := lab.Level("patient", "ward")
	if !lat.Dominates(staff, ward) {
		t.Errorf("ward above its ceiling: %s", lat.FormatLevel(ward))
	}
}

func TestParseSchemaMLSLevels(t *testing.T) {
	lat := lattice.MustMLS("m", []string{"U", "S"}, []string{"Army"})
	src := `
relation ship(id, cargo) key(id)
require ship.cargo >= <S,{Army}>
assoc ship(id, cargo) >= <S,{Army}>
`
	_, reqs, assocs, err := ParseSchema(lat, strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	want := lat.MustLevel("S", "Army")
	if reqs[0].Level != want || assocs[0].Level != want {
		t.Fatal("MLS level literals parsed wrong")
	}
}

func TestParseSchemaErrors(t *testing.T) {
	lat := lattice.MustChain("c", "lo", "hi")
	for _, bad := range []string{
		"bogus x",
		"relation r",                              // no attr list
		"relation r(a",                            // no close paren
		"relation r(a)",                           // no key
		"relation r(a) key(zz)",                   // unknown key
		"fd r: a -> b",                            // unknown relation
		"relation r(a, b) key(a)\nfd r: a b",      // missing ->
		"relation r(a, b) key(a)\nfd : a -> b",    // empty relation
		"fk r(a) b",                               // missing ->
		"fk r a -> b",                             // missing parens
		"require r.a hi",                          // missing >=
		"require hi >= hi",                        // no rel.attr
		"require zz >= lo",                        // left neither attr nor... zz unparsable level
		"relation r(a) key(a)\nrequire r.a >= zz", // unknown level
		"assoc r(a) hi",                           // missing >=
		"assoc r a >= hi",                         // missing parens
		"relation r(a) key(a)\nassoc r(a) >= zz",
	} {
		if _, _, _, err := ParseSchema(lat, strings.NewReader(bad)); err == nil {
			t.Errorf("ParseSchema accepted %q", bad)
		}
	}
}

func TestParseSchemaRoundTripWithFixture(t *testing.T) {
	// The parsed hospital text must generate the same constraint count as
	// the programmatic fixture modulo the doctor FD the fixture adds.
	lat := lattice.MustChain("hospital", "Public", "Staff", "Confidential", "Restricted")
	s, reqs, assocs, err := ParseSchema(lat, strings.NewReader(hospitalSchemaText))
	if err != nil {
		t.Fatal(err)
	}
	set, err := s.Constraints(reqs, assocs)
	if err != nil {
		t.Fatal(err)
	}
	if len(set.Constraints()) == 0 || len(set.UpperBounds()) != 1 {
		t.Fatalf("constraints=%d uppers=%d", len(set.Constraints()), len(set.UpperBounds()))
	}
}
