package mlsdb

import (
	"strings"
	"testing"

	"minup/internal/baseline"
	"minup/internal/core"
	"minup/internal/lattice"
)

func TestSchemaValidation(t *testing.T) {
	lat := lattice.MustChain("c", "lo", "hi")
	s := NewSchema(lat)
	if _, err := s.AddRelation("", []string{"a"}, []string{"a"}); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := s.AddRelation("r", nil, nil); err == nil {
		t.Error("no attributes accepted")
	}
	if _, err := s.AddRelation("r", []string{"a", "a"}, []string{"a"}); err == nil {
		t.Error("duplicate attribute accepted")
	}
	if _, err := s.AddRelation("r", []string{"a"}, nil); err == nil {
		t.Error("missing key accepted")
	}
	if _, err := s.AddRelation("r", []string{"a"}, []string{"z"}); err == nil {
		t.Error("unknown key accepted")
	}
	s.MustAddRelation("r", []string{"a", "b"}, []string{"a"})
	if _, err := s.AddRelation("r", []string{"a"}, []string{"a"}); err == nil {
		t.Error("duplicate relation accepted")
	}
	if err := s.AddFD("nope", []string{"a"}, []string{"b"}); err == nil {
		t.Error("FD on unknown relation accepted")
	}
	if err := s.AddFD("r", []string{"a"}, []string{"zz"}); err == nil {
		t.Error("FD on unknown attribute accepted")
	}
	if err := s.AddFD("r", nil, []string{"b"}); err == nil {
		t.Error("one-sided FD accepted")
	}
	if err := s.AddMVD("r", []string{"a"}, []string{"zz"}); err == nil {
		t.Error("bad MVD accepted")
	}
	if err := s.AddForeignKey("r", []string{"b"}, "nope"); err == nil {
		t.Error("FK to unknown relation accepted")
	}
	s.MustAddRelation("r2", []string{"x", "y"}, []string{"x", "y"})
	if err := s.AddForeignKey("r", []string{"b"}, "r2"); err == nil {
		t.Error("FK arity mismatch accepted")
	}
}

func TestConstraintGeneration(t *testing.T) {
	lat := lattice.MustChain("c", "Public", "Secret")
	s := NewSchema(lat)
	s.MustAddRelation("emp", []string{"id", "dept", "name", "salary"}, []string{"id", "dept"})
	if err := s.AddFD("emp", []string{"name"}, []string{"salary"}); err != nil {
		t.Fatal(err)
	}
	secret, _ := lat.ParseLevel("Secret")
	set, err := s.Constraints(
		[]Requirement{{Rel: "emp", Attr: "salary", Level: secret}},
		[]Association{{Rel: "emp", Attrs: []string{"name", "dept"}, Level: secret}})
	if err != nil {
		t.Fatal(err)
	}
	// Expected constraints: key cycle id≥dept≥id (2), non-key name,salary
	// ≥ id (2), FD name≥salary (1), requirement (1), association (1).
	if got := len(set.Constraints()); got != 7 {
		for _, c := range set.Constraints() {
			t.Log(set.Format(c))
		}
		t.Fatalf("generated %d constraints, want 7", got)
	}

	res := core.MustSolve(set, core.Options{})
	lab, err := s.ApplyAssignment(set, res.Assignment)
	if err != nil {
		t.Fatal(err)
	}
	// The FD pulls name up to salary's Secret; keys uniform and below all.
	for _, tc := range []struct {
		attr, want string
	}{
		{"salary", "Secret"}, {"name", "Secret"},
		{"id", "Public"}, {"dept", "Public"},
	} {
		lvl, ok := lab.Level("emp", tc.attr)
		if !ok {
			t.Fatalf("no level for %s", tc.attr)
		}
		if got := lat.FormatLevel(lvl); got != tc.want {
			t.Errorf("emp.%s = %s, want %s", tc.attr, got, tc.want)
		}
	}
	if open := s.CheckInferenceClosed(lab); open != nil {
		t.Errorf("open channels: %v", open)
	}
	// Minimality of the schema labeling.
	min, err := baseline.IsMinimal(set, res.Assignment)
	if err != nil {
		t.Fatal(err)
	}
	if !min {
		t.Error("schema labeling not minimal")
	}
}

func TestKeyUniformity(t *testing.T) {
	lat := lattice.MustChain("c", "lo", "mid", "hi")
	s := NewSchema(lat)
	s.MustAddRelation("r", []string{"k1", "k2", "v"}, []string{"k1", "k2"})
	mid, _ := lat.ParseLevel("mid")
	set, err := s.Constraints([]Requirement{{Rel: "r", Attr: "k1", Level: mid}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	res := core.MustSolve(set, core.Options{})
	lab, _ := s.ApplyAssignment(set, res.Assignment)
	l1, _ := lab.Level("r", "k1")
	l2, _ := lab.Level("r", "k2")
	lv, _ := lab.Level("r", "v")
	if l1 != l2 {
		t.Errorf("key not uniform: %s vs %s", lat.FormatLevel(l1), lat.FormatLevel(l2))
	}
	if !lat.Dominates(lv, l1) {
		t.Errorf("non-key %s below key %s", lat.FormatLevel(lv), lat.FormatLevel(l1))
	}
}

func TestReferentialIntegrityConstraint(t *testing.T) {
	lat := lattice.MustChain("c", "lo", "hi")
	s := NewSchema(lat)
	s.MustAddRelation("dept", []string{"dept_id", "name"}, []string{"dept_id"})
	s.MustAddRelation("emp", []string{"emp_id", "dept"}, []string{"emp_id"})
	if err := s.AddForeignKey("emp", []string{"dept"}, "dept"); err != nil {
		t.Fatal(err)
	}
	hi, _ := lat.ParseLevel("hi")
	set, err := s.Constraints([]Requirement{{Rel: "dept", Attr: "dept_id", Level: hi}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	res := core.MustSolve(set, core.Options{})
	lab, _ := s.ApplyAssignment(set, res.Assignment)
	fk, _ := lab.Level("emp", "dept")
	ref, _ := lab.Level("dept", "dept_id")
	if !lat.Dominates(fk, ref) {
		t.Errorf("foreign key %s does not dominate referenced key %s",
			lat.FormatLevel(fk), lat.FormatLevel(ref))
	}
}

func TestRequirementValidation(t *testing.T) {
	lat := lattice.MustChain("c", "lo", "hi")
	s := NewSchema(lat)
	s.MustAddRelation("r", []string{"a"}, []string{"a"})
	if _, err := s.Constraints([]Requirement{{Rel: "zz", Attr: "a", Level: lat.Top()}}, nil); err == nil {
		t.Error("requirement on unknown relation accepted")
	}
	if _, err := s.Constraints(nil, []Association{{Rel: "r", Attrs: []string{"zz"}, Level: lat.Top()}}); err == nil {
		t.Error("association on unknown attribute accepted")
	}
}

func TestHospitalEndToEnd(t *testing.T) {
	fx, err := Hospital()
	if err != nil {
		t.Fatal(err)
	}
	set, err := fx.Schema.Constraints(fx.Reqs, fx.Assocs)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Solve(set, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if v := set.Violations(res.Assignment); v != nil {
		t.Fatalf("violations: %v", v)
	}
	lab, err := fx.Schema.ApplyAssignment(set, res.Assignment)
	if err != nil {
		t.Fatal(err)
	}
	if open := fx.Schema.CheckInferenceClosed(lab); open != nil {
		t.Fatalf("open inference channels: %v", open)
	}
	lat := fx.Lattice
	conf, _ := lat.ParseLevel("Confidential")
	diag, _ := lab.Level("patient", "diagnosis")
	if !lat.Dominates(diag, conf) {
		t.Errorf("diagnosis = %s, want ≥ Confidential", lat.FormatLevel(diag))
	}
	// The FD treatment→diagnosis must have pulled treatment up.
	treat, _ := lab.Level("patient", "treatment")
	if !lat.Dominates(treat, diag) {
		t.Errorf("treatment %s does not cover diagnosis %s",
			lat.FormatLevel(treat), lat.FormatLevel(diag))
	}
	// The visibility guarantee on ward held.
	staff, _ := lat.ParseLevel("Staff")
	ward, _ := lab.Level("patient", "ward")
	if !lat.Dominates(staff, ward) {
		t.Errorf("ward = %s exceeds its Staff ceiling", lat.FormatLevel(ward))
	}

	// Storage engine: a Staff subject must not see diagnoses.
	store := NewStore(fx.Schema, lab)
	restricted, _ := lat.ParseLevel("Restricted")
	if err := store.Insert("patient", restricted, map[string]string{
		"patient_id": "p1", "name": "Ada", "ward": "W3",
		"doctor": "d1", "treatment": "chemo", "diagnosis": "leukemia",
	}); err != nil {
		t.Fatal(err)
	}
	rows, err := store.Select("patient", staff, nil)
	if err != nil {
		t.Fatal(err)
	}
	// The key patient_id is labeled at the key level; tuple class is
	// Restricted (the writer), so a Staff subject cannot even see the row.
	if len(rows) != 0 {
		t.Fatalf("staff subject sees %d restricted rows: %v", len(rows), rows)
	}
	rows, err = store.Select("patient", restricted, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0]["diagnosis"] != "leukemia" {
		t.Fatalf("restricted subject rows: %v", rows)
	}
}

func TestLogisticsEndToEnd(t *testing.T) {
	fx, err := Logistics()
	if err != nil {
		t.Fatal(err)
	}
	set, err := fx.Schema.Constraints(fx.Reqs, fx.Assocs)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Solve(set, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if v := set.Violations(res.Assignment); v != nil {
		t.Fatalf("violations: %v", v)
	}
	lab, _ := fx.Schema.ApplyAssignment(set, res.Assignment)
	if open := fx.Schema.CheckInferenceClosed(lab); open != nil {
		t.Fatalf("open channels: %v", open)
	}
	lat := fx.Lattice
	// Association cargo+schedule ≥ <TS,{Nuclear}>.
	cargo, _ := lab.Level("shipment", "cargo")
	sched, _ := lab.Level("shipment", "schedule")
	if !lat.Dominates(lat.Lub(cargo, sched), lat.MustLevel("TS", "Nuclear")) {
		t.Errorf("cargo+schedule = %s, below TS Nuclear",
			lat.FormatLevel(lat.Lub(cargo, sched)))
	}
}

func TestStoreWriteControl(t *testing.T) {
	lat := lattice.MustChain("c", "lo", "hi")
	s := NewSchema(lat)
	s.MustAddRelation("r", []string{"k", "v"}, []string{"k"})
	hi, _ := lat.ParseLevel("hi")
	lo, _ := lat.ParseLevel("lo")
	set, _ := s.Constraints([]Requirement{{Rel: "r", Attr: "v", Level: hi}}, nil)
	res := core.MustSolve(set, core.Options{})
	lab, _ := s.ApplyAssignment(set, res.Assignment)
	st := NewStore(s, lab)

	// A low subject cannot write the high attribute.
	if err := st.Insert("r", lo, map[string]string{"k": "1", "v": "x"}); err == nil {
		t.Error("low write of high cell accepted")
	}
	// But may write the key alone.
	if err := st.Insert("r", lo, map[string]string{"k": "1"}); err != nil {
		t.Errorf("key-only low insert rejected: %v", err)
	}
	if err := st.Insert("r", hi, map[string]string{"k": "1", "v": "x"}); err != nil {
		t.Fatal(err)
	}
	// Polyinstantiation: same key at two classes.
	poly, err := st.Polyinstantiated("r")
	if err != nil {
		t.Fatal(err)
	}
	if len(poly) != 1 {
		t.Fatalf("polyinstantiated keys = %v", poly)
	}
	// Same-class reinsert replaces.
	if err := st.Insert("r", hi, map[string]string{"k": "1", "v": "y"}); err != nil {
		t.Fatal(err)
	}
	if st.TupleCount("r") != 2 {
		t.Errorf("tuples = %d, want 2", st.TupleCount("r"))
	}
	rows, _ := st.Select("r", hi, []string{"v"})
	found := false
	for _, row := range rows {
		if row["v"] == "y" {
			found = true
		}
		if row["v"] == "x" {
			t.Error("replaced tuple still visible")
		}
	}
	if !found {
		t.Error("replacement not visible")
	}
	// Low subject sees only the low variant, with v masked.
	rows, _ = st.Select("r", lo, nil)
	if len(rows) != 1 {
		t.Fatalf("low subject rows: %v", rows)
	}
	if _, ok := rows[0]["v"]; ok {
		t.Error("low subject sees high cell")
	}

	// Unknown relation / attribute errors.
	if err := st.Insert("zz", hi, map[string]string{"k": "1"}); err == nil {
		t.Error("unknown relation insert accepted")
	}
	if err := st.Insert("r", hi, map[string]string{"k": "1", "zz": "1"}); err == nil {
		t.Error("unknown attribute insert accepted")
	}
	if err := st.Insert("r", hi, map[string]string{"v": "1"}); err == nil {
		t.Error("missing key insert accepted")
	}
	if _, err := st.Select("zz", hi, nil); err == nil {
		t.Error("unknown relation select accepted")
	}
	if _, err := st.Select("r", hi, []string{"zz"}); err == nil {
		t.Error("unknown attribute select accepted")
	}
	if _, err := st.Polyinstantiated("zz"); err == nil {
		t.Error("unknown relation poly check accepted")
	}
}

func TestOpenChannelDetection(t *testing.T) {
	// A deliberately bad labeling must be flagged.
	lat := lattice.MustChain("c", "lo", "hi")
	s := NewSchema(lat)
	s.MustAddRelation("r", []string{"k", "x", "y"}, []string{"k"})
	if err := s.AddFD("r", []string{"x"}, []string{"y"}); err != nil {
		t.Fatal(err)
	}
	lo, _ := lat.ParseLevel("lo")
	hi, _ := lat.ParseLevel("hi")
	bad := &Labeling{lat: lat, levels: map[string]lattice.Level{
		"r.k": lo, "r.x": lo, "r.y": hi,
	}}
	open := s.CheckInferenceClosed(bad)
	if len(open) != 1 || !strings.Contains(open[0], "FD") {
		t.Fatalf("open = %v", open)
	}
}

func TestConstraintAttrCollision(t *testing.T) {
	// Qualified names must not collide with lattice level names.
	lat := lattice.MustChain("c", "lo", "hi")
	s := NewSchema(lat)
	s.MustAddRelation("r", []string{"a"}, []string{"a"})
	set, err := s.Constraints(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := set.AttrByName("r.a"); !ok {
		t.Error("qualified attribute missing")
	}
	// The generated set with no requirements solves to all-bottom.
	res := core.MustSolve(set, core.Options{})
	if res.Assignment[0] != lat.Bottom() {
		t.Error("unconstrained schema should label at bottom")
	}
}
