package mlsdb

import (
	"math/rand"
	"reflect"
	"testing"

	"minup/internal/core"
	"minup/internal/lattice"
)

func TestAttributeClosure(t *testing.T) {
	lat := lattice.MustChain("c", "lo", "hi")
	s := NewSchema(lat)
	s.MustAddRelation("r", []string{"a", "b", "c", "d", "e"}, []string{"a"})
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(s.AddFD("r", []string{"a"}, []string{"b"}))
	must(s.AddFD("r", []string{"b"}, []string{"c"}))
	must(s.AddFD("r", []string{"c", "d"}, []string{"e"}))
	r, _ := s.Relation("r")

	if got := r.AttributeClosure([]string{"a"}); !reflect.DeepEqual(got, []string{"a", "b", "c"}) {
		t.Errorf("a+ = %v", got)
	}
	if got := r.AttributeClosure([]string{"a", "d"}); !reflect.DeepEqual(got, []string{"a", "b", "c", "d", "e"}) {
		t.Errorf("(a,d)+ = %v", got)
	}
	if got := r.AttributeClosure([]string{"d"}); !reflect.DeepEqual(got, []string{"d"}) {
		t.Errorf("d+ = %v", got)
	}
}

func TestImpliedFDs(t *testing.T) {
	lat := lattice.MustChain("c", "lo", "hi")
	s := NewSchema(lat)
	s.MustAddRelation("r", []string{"a", "b", "c", "d", "e"}, []string{"a"})
	_ = s.AddFD("r", []string{"a"}, []string{"b"})
	_ = s.AddFD("r", []string{"b"}, []string{"c"})
	_ = s.AddFD("r", []string{"c", "d"}, []string{"e"})
	r, _ := s.Relation("r")
	implied := r.ImpliedFDs()
	// Expect a → {b,c} (transitive) among them, and a,d (pairwise union
	// a+cd... union of {a} and {c,d}) → e.
	foundTransitive, foundChained := false, false
	for _, fd := range implied {
		if reflect.DeepEqual(fd.Determinant, []string{"a"}) &&
			reflect.DeepEqual(fd.Dependent, []string{"b", "c"}) {
			foundTransitive = true
		}
		if reflect.DeepEqual(fd.Determinant, []string{"a", "c", "d"}) {
			for _, d := range fd.Dependent {
				if d == "e" {
					foundChained = true
				}
			}
		}
	}
	if !foundTransitive {
		t.Errorf("transitive FD a→{b,c} missing from %v", implied)
	}
	if !foundChained {
		t.Errorf("chained FD {a,c,d}→e missing from %v", implied)
	}
}

// TestClosureAuditTheorem verifies empirically that labelings computed by
// the solver from the *declared* FDs also close every *implied* channel —
// the compositionality of lub constraints.
func TestClosureAuditTheorem(t *testing.T) {
	lat := lattice.MustMLS("m", []string{"U", "S", "TS"}, []string{"x", "y", "z"})
	rng := rand.New(rand.NewSource(5))
	attrs := []string{"a", "b", "c", "d", "e", "f"}
	for trial := 0; trial < 40; trial++ {
		s := NewSchema(lat)
		s.MustAddRelation("r", append([]string{"k"}, attrs...), []string{"k"})
		// Random FDs.
		for i := 0; i < 4; i++ {
			perm := rng.Perm(len(attrs))
			det := []string{attrs[perm[0]]}
			if rng.Intn(2) == 1 {
				det = append(det, attrs[perm[1]])
			}
			dep := []string{attrs[perm[2]]}
			if err := s.AddFD("r", det, dep); err != nil {
				t.Fatal(err)
			}
		}
		// Random requirements.
		var reqs []Requirement
		for i := 0; i < 3; i++ {
			mask := uint64(rng.Intn(8))
			lvl, err := lat.LevelFromParts(rng.Intn(3), mask)
			if err != nil {
				t.Fatal(err)
			}
			reqs = append(reqs, Requirement{Rel: "r", Attr: attrs[rng.Intn(len(attrs))], Level: lvl})
		}
		set, err := s.Constraints(reqs, nil)
		if err != nil {
			t.Fatal(err)
		}
		res := core.MustSolve(set, core.Options{})
		lab, err := s.ApplyAssignment(set, res.Assignment)
		if err != nil {
			t.Fatal(err)
		}
		if open := s.CheckInferenceClosedTransitive(lab); open != nil {
			t.Fatalf("trial %d: implied channels open: %v", trial, open)
		}
	}
}

// TestClosureAuditCatchesBadLabeling shows the audit detecting a
// transitively open channel that the declared-FD audit misses.
func TestClosureAuditCatchesBadLabeling(t *testing.T) {
	lat := lattice.MustChain("c", "lo", "mid", "hi")
	s := NewSchema(lat)
	s.MustAddRelation("r", []string{"k", "a", "b", "c"}, []string{"k"})
	_ = s.AddFD("r", []string{"a"}, []string{"b"})
	_ = s.AddFD("r", []string{"b"}, []string{"c"})
	lo, _ := lat.ParseLevel("lo")
	mid, _ := lat.ParseLevel("mid")
	hi, _ := lat.ParseLevel("hi")
	// When every declared hop holds, the implied chain holds too (that is
	// the compositionality theorem), so an implied-only violation cannot
	// be constructed. Corrupt one hop instead and check that the
	// transitive audit reports at least as much as the declared one,
	// including the longer chain.
	bad := &Labeling{lat: lat, levels: map[string]lattice.Level{
		"r.k": lo, "r.a": lo, "r.b": hi, "r.c": mid,
	}}
	declared := s.CheckInferenceClosed(bad)
	transitive := s.CheckInferenceClosedTransitive(bad)
	if len(declared) == 0 {
		t.Fatal("declared audit missed the broken hop")
	}
	if len(transitive) < len(declared) {
		t.Fatalf("transitive audit (%d) reported less than declared (%d)",
			len(transitive), len(declared))
	}
}
