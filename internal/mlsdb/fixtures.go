package mlsdb

import (
	"fmt"

	"minup/internal/lattice"
)

// This file provides the two worked schemas used by the E10 experiment and
// the runnable examples: a hospital database whose functional dependencies
// open inference channels into patient diagnoses, and a military logistics
// database over a compartmented lattice with association constraints.

// HospitalFixture bundles the hospital scenario.
type HospitalFixture struct {
	Lattice *lattice.Chain
	Schema  *Schema
	Reqs    []Requirement
	Assocs  []Association
}

// Hospital builds the hospital scenario: patients, their ward and treating
// doctor, and diagnoses. Diagnosis is Confidential; the paper's §1 example
// of inference — a functional dependency from observable attributes to a
// protected one — appears as treatment → diagnosis and
// (ward, doctor) → diagnosis: anyone who can read a patient's ward and
// doctor could infer the diagnosis unless the labeling closes the channel.
func Hospital() (*HospitalFixture, error) {
	lat, err := lattice.NewChain("hospital", "Public", "Staff", "Confidential", "Restricted")
	if err != nil {
		return nil, err
	}
	s := NewSchema(lat)
	if _, err := s.AddRelation("patient",
		[]string{"patient_id", "name", "ward", "doctor", "treatment", "diagnosis"},
		[]string{"patient_id"}); err != nil {
		return nil, err
	}
	if _, err := s.AddRelation("doctor",
		[]string{"doctor_id", "name", "specialty"},
		[]string{"doctor_id"}); err != nil {
		return nil, err
	}
	if err := s.AddForeignKey("patient", []string{"doctor"}, "doctor"); err != nil {
		return nil, err
	}
	// Inference channels: the treatment determines the diagnosis, and so
	// does the (ward, doctor) pair in this small hospital.
	if err := s.AddFD("patient", []string{"treatment"}, []string{"diagnosis"}); err != nil {
		return nil, err
	}
	if err := s.AddFD("patient", []string{"ward", "doctor"}, []string{"diagnosis"}); err != nil {
		return nil, err
	}
	// A doctor's specialty reveals the kind of conditions they treat.
	if err := s.AddFD("doctor", []string{"specialty"}, []string{"name"}); err != nil {
		return nil, err
	}
	lv := func(n string) lattice.Level {
		l, err := lat.ParseLevel(n)
		if err != nil {
			panic(fmt.Sprintf("mlsdb: hospital fixture: %v", err))
		}
		return l
	}
	reqs := []Requirement{
		{Rel: "patient", Attr: "diagnosis", Level: lv("Confidential")},
		{Rel: "patient", Attr: "name", Level: lv("Staff")},
		{Rel: "doctor", Attr: "name", Level: lv("Public")},
		// The ward list is published on every floor: visibility guarantee.
		{Rel: "patient", Attr: "ward", Level: lv("Staff"), Upper: true},
	}
	assocs := []Association{
		// Name and diagnosis together are more sensitive than either alone.
		{Rel: "patient", Attrs: []string{"name", "diagnosis"}, Level: lv("Restricted")},
	}
	return &HospitalFixture{Lattice: lat, Schema: s, Reqs: reqs, Assocs: assocs}, nil
}

// LogisticsFixture bundles the military logistics scenario.
type LogisticsFixture struct {
	Lattice *lattice.MLS
	Schema  *Schema
	Reqs    []Requirement
	Assocs  []Association
}

// Logistics builds a compartmented military logistics scenario over the
// lattice shape of Figure 1(a): shipments of materiel between depots, with
// Army and Nuclear compartments. Individually unclassified fields become
// sensitive in association (route + cargo), the motivating pattern for
// association constraints.
func Logistics() (*LogisticsFixture, error) {
	lat, err := lattice.NewMLS("logistics",
		[]string{"U", "S", "TS"},
		[]string{"Army", "Nuclear"})
	if err != nil {
		return nil, err
	}
	s := NewSchema(lat)
	if _, err := s.AddRelation("depot",
		[]string{"depot_id", "location", "commander"},
		[]string{"depot_id"}); err != nil {
		return nil, err
	}
	if _, err := s.AddRelation("shipment",
		[]string{"shipment_id", "origin", "destination", "cargo", "schedule"},
		[]string{"shipment_id"}); err != nil {
		return nil, err
	}
	if err := s.AddForeignKey("shipment", []string{"origin"}, "depot"); err != nil {
		return nil, err
	}
	if err := s.AddForeignKey("shipment", []string{"destination"}, "depot"); err != nil {
		return nil, err
	}
	// The schedule determines the cargo type in this fleet.
	if err := s.AddFD("shipment", []string{"schedule"}, []string{"cargo"}); err != nil {
		return nil, err
	}
	reqs := []Requirement{
		{Rel: "shipment", Attr: "cargo", Level: lat.MustLevel("S", "Nuclear")},
		{Rel: "depot", Attr: "commander", Level: lat.MustLevel("S", "Army")},
	}
	assocs := []Association{
		// Origin and destination together reveal the route.
		{Rel: "shipment", Attrs: []string{"origin", "destination"},
			Level: lat.MustLevel("S", "Army")},
		// Cargo plus schedule together are top secret nuclear.
		{Rel: "shipment", Attrs: []string{"cargo", "schedule"},
			Level: lat.MustLevel("TS", "Nuclear")},
	}
	return &LogisticsFixture{Lattice: lat, Schema: s, Reqs: reqs, Assocs: assocs}, nil
}
