package mlsdb

import (
	"fmt"

	"minup/internal/constraint"
)

// Views: the setting of Qian's view-based access control [13], which the
// paper positions itself against. A view is a derived relation
// (projection over a join of base relations); exposing a view column
// exposes the base columns it is computed from, so every view column's
// classification must dominate its sources — and, because a join row
// associates its join columns, a joined view's columns must additionally
// dominate the join attributes that link them. GenerateViewConstraints
// appends these constraints to a Set already populated by
// Schema.Constraints, after which one Solve labels base attributes and
// view columns together, minimally.

// ViewColumn is one output column of a view, drawn from a base relation.
type ViewColumn struct {
	// Name is the column's name in the view.
	Name string
	// Rel and Attr identify the base attribute the column exposes.
	Rel, Attr string
}

// ViewJoin is an equi-join condition between two base relations of a view.
type ViewJoin struct {
	LeftRel, LeftAttr   string
	RightRel, RightAttr string
}

// View is a derived relation: a projection (Columns) over one or more
// base relations related by equi-joins.
type View struct {
	Name    string
	Columns []ViewColumn
	Joins   []ViewJoin
}

// GenerateViewConstraints declares one constraint attribute per view
// column (named "view.column") in set and adds:
//
//   - source dominance: λ(view.col) ≽ λ(rel.attr) for the exposed base
//     attribute;
//   - join association: for each join condition touching a column's base
//     relation, λ(view.col) ≽ λ(join attr) on that side — a visible view
//     row reveals that its join keys matched.
//
// The set must already contain the base schema's attributes (call
// Schema.Constraints first).
func (s *Schema) GenerateViewConstraints(set *constraint.Set, views []View) error {
	for _, v := range views {
		if v.Name == "" {
			return fmt.Errorf("mlsdb: view with empty name")
		}
		if len(v.Columns) == 0 {
			return fmt.Errorf("mlsdb: view %q has no columns", v.Name)
		}
		// Validate joins and index them by relation.
		joinAttrs := make(map[string][]string) // rel -> join attrs on that side
		for _, j := range v.Joins {
			for _, side := range []struct{ rel, attr string }{
				{j.LeftRel, j.LeftAttr}, {j.RightRel, j.RightAttr},
			} {
				r, ok := s.Relation(side.rel)
				if !ok {
					return fmt.Errorf("mlsdb: view %q joins %w %q", v.Name, ErrUnknownRelation, side.rel)
				}
				if !r.attrSet[side.attr] {
					return fmt.Errorf("mlsdb: view %q joins %w %s.%s", v.Name, ErrUnknownAttr, side.rel, side.attr)
				}
				joinAttrs[side.rel] = append(joinAttrs[side.rel], side.attr)
			}
		}
		seen := make(map[string]bool, len(v.Columns))
		for _, col := range v.Columns {
			if col.Name == "" {
				return fmt.Errorf("mlsdb: view %q has a column with no name", v.Name)
			}
			if seen[col.Name] {
				return fmt.Errorf("mlsdb: view %q duplicates column %q", v.Name, col.Name)
			}
			seen[col.Name] = true
			r, ok := s.Relation(col.Rel)
			if !ok {
				return fmt.Errorf("mlsdb: view %q column %q references %w %q", v.Name, col.Name, ErrUnknownRelation, col.Rel)
			}
			if !r.attrSet[col.Attr] {
				return fmt.Errorf("mlsdb: view %q column %q references %w %s.%s", v.Name, col.Name, ErrUnknownAttr, col.Rel, col.Attr)
			}
			colAttr, err := set.AddAttr(QualifiedName(v.Name, col.Name))
			if err != nil {
				return err
			}
			src, ok := set.AttrByName(QualifiedName(col.Rel, col.Attr))
			if !ok {
				return fmt.Errorf("mlsdb: constraint set lacks base attribute %s.%s (generate schema constraints first)", col.Rel, col.Attr)
			}
			if err := set.Add([]constraint.Attr{colAttr}, constraint.AttrRHS(src)); err != nil {
				return err
			}
			for _, ja := range joinAttrs[col.Rel] {
				jAttr, ok := set.AttrByName(QualifiedName(col.Rel, ja))
				if !ok {
					return fmt.Errorf("mlsdb: constraint set lacks join attribute %s.%s", col.Rel, ja)
				}
				if _, err := set.AddIgnoreTrivial([]constraint.Attr{colAttr}, constraint.AttrRHS(jAttr)); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// ViewLabeling extracts the computed levels of a view's columns from a
// solved assignment.
func ViewLabeling(set *constraint.Set, m constraint.Assignment, v View) (map[string]constraint.Attr, error) {
	out := make(map[string]constraint.Attr, len(v.Columns))
	for _, col := range v.Columns {
		a, ok := set.AttrByName(QualifiedName(v.Name, col.Name))
		if !ok {
			return nil, fmt.Errorf("mlsdb: view column %s.%s not in constraint set", v.Name, col.Name)
		}
		out[col.Name] = a
	}
	return out, nil
}
