package mlsdb

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"minup/internal/lattice"
)

// ParseSchema reads a schema description plus explicit requirements in a
// line-oriented text format. Blank lines and '#' comments are ignored.
// Directives:
//
//	relation patient(patient_id, name, ward, doctor, diagnosis) key(patient_id)
//	fd  patient: treatment -> diagnosis
//	fd  patient: ward, doctor -> diagnosis
//	mvd patient: ward -> doctor
//	fk  patient(doctor) -> doctor
//	require patient.diagnosis >= Confidential
//	require Staff >= patient.ward            # upper bound
//	assoc patient(name, diagnosis) >= Restricted
//
// Level literals use the lattice's own syntax. The parse returns the
// schema together with the requirement and association lists ready for
// Schema.Constraints.
func ParseSchema(lat lattice.Lattice, r io.Reader) (*Schema, []Requirement, []Association, error) {
	s := NewSchema(lat)
	var reqs []Requirement
	var assocs []Association
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	lineno := 0
	fail := func(format string, args ...any) error {
		return fmt.Errorf("line %d: %s", lineno, fmt.Sprintf(format, args...))
	}
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		directive, rest, _ := strings.Cut(line, " ")
		rest = strings.TrimSpace(rest)
		switch directive {
		case "relation":
			name, attrs, key, err := parseRelationDecl(rest)
			if err != nil {
				return nil, nil, nil, fail("%v", err)
			}
			if _, err := s.AddRelation(name, attrs, key); err != nil {
				return nil, nil, nil, fail("%v", err)
			}
		case "fd", "mvd":
			rel, det, dep, err := parseDependency(rest)
			if err != nil {
				return nil, nil, nil, fail("%v", err)
			}
			if directive == "fd" {
				err = s.AddFD(rel, det, dep)
			} else {
				err = s.AddMVD(rel, det, dep)
			}
			if err != nil {
				return nil, nil, nil, fail("%v", err)
			}
		case "fk":
			rel, attrs, ref, err := parseForeignKey(rest)
			if err != nil {
				return nil, nil, nil, fail("%v", err)
			}
			if err := s.AddForeignKey(rel, attrs, ref); err != nil {
				return nil, nil, nil, fail("%v", err)
			}
		case "require":
			req, err := parseRequirement(lat, rest)
			if err != nil {
				return nil, nil, nil, fail("%v", err)
			}
			reqs = append(reqs, req)
		case "assoc":
			as, err := parseAssociation(lat, rest)
			if err != nil {
				return nil, nil, nil, fail("%v", err)
			}
			assocs = append(assocs, as)
		default:
			return nil, nil, nil, fail("unknown directive %q", directive)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, nil, nil, err
	}
	return s, reqs, assocs, nil
}

// parseRelationDecl parses `name(a, b, c) key(a, b)`.
func parseRelationDecl(text string) (name string, attrs, key []string, err error) {
	open := strings.Index(text, "(")
	if open < 0 {
		return "", nil, nil, fmt.Errorf("relation declaration %q missing attribute list", text)
	}
	name = strings.TrimSpace(text[:open])
	closeIdx := strings.Index(text, ")")
	if closeIdx < open {
		return "", nil, nil, fmt.Errorf("relation declaration %q missing ')'", text)
	}
	attrs = splitList(text[open+1 : closeIdx])
	rest := strings.TrimSpace(text[closeIdx+1:])
	if !strings.HasPrefix(rest, "key(") || !strings.HasSuffix(rest, ")") {
		return "", nil, nil, fmt.Errorf("relation declaration %q missing key(...)", text)
	}
	key = splitList(rest[len("key(") : len(rest)-1])
	return name, attrs, key, nil
}

// parseDependency parses `rel: a, b -> c, d`.
func parseDependency(text string) (rel string, det, dep []string, err error) {
	relPart, rest, ok := strings.Cut(text, ":")
	if !ok {
		return "", nil, nil, fmt.Errorf("dependency %q missing relation prefix", text)
	}
	left, right, ok := strings.Cut(rest, "->")
	if !ok {
		return "", nil, nil, fmt.Errorf("dependency %q missing '->'", text)
	}
	return strings.TrimSpace(relPart), splitList(left), splitList(right), nil
}

// parseForeignKey parses `rel(a, b) -> ref`.
func parseForeignKey(text string) (rel string, attrs []string, ref string, err error) {
	left, right, ok := strings.Cut(text, "->")
	if !ok {
		return "", nil, "", fmt.Errorf("foreign key %q missing '->'", text)
	}
	left = strings.TrimSpace(left)
	open := strings.Index(left, "(")
	if open < 0 || !strings.HasSuffix(left, ")") {
		return "", nil, "", fmt.Errorf("foreign key %q missing attribute list", text)
	}
	return strings.TrimSpace(left[:open]), splitList(left[open+1 : len(left)-1]),
		strings.TrimSpace(right), nil
}

// parseRequirement parses `rel.attr >= LEVEL` or `LEVEL >= rel.attr`.
func parseRequirement(lat lattice.Lattice, text string) (Requirement, error) {
	left, right, ok := strings.Cut(text, ">=")
	if !ok {
		return Requirement{}, fmt.Errorf("requirement %q missing '>='", text)
	}
	left, right = strings.TrimSpace(left), strings.TrimSpace(right)
	if rel, attr, ok := cutQualified(left); ok {
		lvl, err := lat.ParseLevel(right)
		if err != nil {
			return Requirement{}, fmt.Errorf("requirement %q: %v", text, err)
		}
		return Requirement{Rel: rel, Attr: attr, Level: lvl}, nil
	}
	// Upper bound: LEVEL >= rel.attr.
	lvl, err := lat.ParseLevel(left)
	if err != nil {
		return Requirement{}, fmt.Errorf("requirement %q: left side is neither rel.attr nor a level (%v)", text, err)
	}
	rel, attr, ok := cutQualified(right)
	if !ok {
		return Requirement{}, fmt.Errorf("requirement %q: right side must be rel.attr", text)
	}
	return Requirement{Rel: rel, Attr: attr, Level: lvl, Upper: true}, nil
}

// parseAssociation parses `rel(a, b, c) >= LEVEL`.
func parseAssociation(lat lattice.Lattice, text string) (Association, error) {
	left, right, ok := strings.Cut(text, ">=")
	if !ok {
		return Association{}, fmt.Errorf("association %q missing '>='", text)
	}
	left = strings.TrimSpace(left)
	open := strings.Index(left, "(")
	if open < 0 || !strings.HasSuffix(left, ")") {
		return Association{}, fmt.Errorf("association %q missing attribute list", text)
	}
	lvl, err := lat.ParseLevel(strings.TrimSpace(right))
	if err != nil {
		return Association{}, fmt.Errorf("association %q: %v", text, err)
	}
	return Association{
		Rel:   strings.TrimSpace(left[:open]),
		Attrs: splitList(left[open+1 : len(left)-1]),
		Level: lvl,
	}, nil
}

// cutQualified splits "rel.attr"; level literals containing dots are
// disambiguated by requiring both halves to be non-empty identifiers
// without lattice syntax characters.
func cutQualified(s string) (rel, attr string, ok bool) {
	rel, attr, found := strings.Cut(s, ".")
	if !found || rel == "" || attr == "" {
		return "", "", false
	}
	if strings.ContainsAny(rel, "<>{},( ") || strings.ContainsAny(attr, "<>{},( ") {
		return "", "", false
	}
	return rel, attr, true
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}
