package mlsdb

import (
	"testing"

	"minup/internal/core"
	"minup/internal/lattice"
)

// querySetup builds a two-relation labeled store: departments (public) and
// employees with a Secret salary.
func querySetup(t *testing.T) (*Store, *lattice.Chain) {
	t.Helper()
	lat := lattice.MustChain("c", "Public", "Secret")
	s := NewSchema(lat)
	s.MustAddRelation("dept", []string{"dept_id", "name"}, []string{"dept_id"})
	s.MustAddRelation("emp", []string{"emp_id", "dept", "salary"}, []string{"emp_id"})
	if err := s.AddForeignKey("emp", []string{"dept"}, "dept"); err != nil {
		t.Fatal(err)
	}
	secret, _ := lat.ParseLevel("Secret")
	set, err := s.Constraints([]Requirement{{Rel: "emp", Attr: "salary", Level: secret}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	res := core.MustSolve(set, core.Options{})
	lab, err := s.ApplyAssignment(set, res.Assignment)
	if err != nil {
		t.Fatal(err)
	}
	st := NewStore(s, lab)
	pub, _ := lat.ParseLevel("Public")
	mustInsert := func(rel string, subj lattice.Level, vals map[string]string) {
		t.Helper()
		if err := st.Insert(rel, subj, vals); err != nil {
			t.Fatal(err)
		}
	}
	mustInsert("dept", pub, map[string]string{"dept_id": "d1", "name": "eng"})
	mustInsert("dept", pub, map[string]string{"dept_id": "d2", "name": "ops"})
	mustInsert("emp", secret, map[string]string{"emp_id": "e1", "dept": "d1", "salary": "100"})
	mustInsert("emp", secret, map[string]string{"emp_id": "e2", "dept": "d2", "salary": "200"})
	return st, lat
}

func TestSelectWhere(t *testing.T) {
	st, lat := querySetup(t)
	secret, _ := lat.ParseLevel("Secret")
	pub, _ := lat.ParseLevel("Public")

	rows, err := st.SelectWhere("emp", secret, nil, func(r Row) bool {
		return r["salary"] == "100"
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0]["emp_id"] != "e1" {
		t.Fatalf("rows = %v", rows)
	}

	// The covert-channel property: a public subject's predicate never
	// observes the salary cell, so salary-based filtering cannot leak.
	sawSalary := false
	rows, err = st.SelectWhere("emp", pub, nil, func(r Row) bool {
		if _, ok := r["salary"]; ok {
			sawSalary = true
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if sawSalary {
		t.Fatal("predicate observed a cell above the subject's level")
	}
	// The emp tuples were written at Secret, so a public subject sees no
	// rows at all here.
	if len(rows) != 0 {
		t.Fatalf("public subject sees %d secret-written rows", len(rows))
	}

	// nil predicate = plain select.
	rows, err = st.SelectWhere("dept", pub, nil, nil)
	if err != nil || len(rows) != 2 {
		t.Fatalf("dept rows = %v err=%v", rows, err)
	}

	if _, err := st.SelectWhere("zz", pub, nil, nil); err == nil {
		t.Error("unknown relation accepted")
	}
}

func TestJoin(t *testing.T) {
	st, lat := querySetup(t)
	secret, _ := lat.ParseLevel("Secret")
	pub, _ := lat.ParseLevel("Public")

	joined, err := st.Join("emp", "dept", "dept", "dept_id", secret)
	if err != nil {
		t.Fatal(err)
	}
	if len(joined) != 2 {
		t.Fatalf("join rows = %d, want 2", len(joined))
	}
	for _, j := range joined {
		if j.Left["dept"] != j.Right["dept_id"] {
			t.Errorf("join key mismatch: %v vs %v", j.Left, j.Right)
		}
		// The combined class is the lub of a Secret emp tuple and a
		// Public dept tuple: Secret.
		if j.Class != secret {
			t.Errorf("join class = %s", lat.FormatLevel(j.Class))
		}
	}

	// A public subject cannot produce any join pairs (emp side hidden).
	joined, err = st.Join("emp", "dept", "dept", "dept_id", pub)
	if err != nil {
		t.Fatal(err)
	}
	if len(joined) != 0 {
		t.Fatalf("public join rows = %d", len(joined))
	}

	for _, bad := range [][4]string{
		{"zz", "dept", "dept", "dept_id"},
		{"emp", "dept", "zz", "dept_id"},
		{"emp", "zz", "dept", "dept_id"},
		{"emp", "dept", "dept", "zz"},
	} {
		if _, err := st.Join(bad[0], bad[1], bad[2], bad[3], secret); err == nil {
			t.Errorf("bad join %v accepted", bad)
		}
	}
}

func TestDelete(t *testing.T) {
	st, lat := querySetup(t)
	secret, _ := lat.ParseLevel("Secret")
	pub, _ := lat.ParseLevel("Public")

	// A public subject cannot delete (or even detect) the secret tuple.
	found, err := st.Delete("emp", pub, map[string]string{"emp_id": "e1"})
	if err != nil {
		t.Fatal(err)
	}
	if found {
		t.Fatal("cross-class delete succeeded")
	}
	if st.TupleCount("emp") != 2 {
		t.Fatal("tuple count changed")
	}

	// The owning class deletes normally.
	found, err = st.Delete("emp", secret, map[string]string{"emp_id": "e1"})
	if err != nil || !found {
		t.Fatalf("same-class delete: found=%v err=%v", found, err)
	}
	if st.TupleCount("emp") != 1 {
		t.Fatalf("tuples = %d", st.TupleCount("emp"))
	}
	// Idempotence: a second delete reports not found.
	found, _ = st.Delete("emp", secret, map[string]string{"emp_id": "e1"})
	if found {
		t.Fatal("double delete reported found")
	}

	// Validation.
	if _, err := st.Delete("zz", secret, map[string]string{"emp_id": "x"}); err == nil {
		t.Error("unknown relation accepted")
	}
	if _, err := st.Delete("emp", secret, map[string]string{}); err == nil {
		t.Error("missing key accepted")
	}
}

func TestLevels(t *testing.T) {
	st, lat := querySetup(t)
	levels, err := st.Levels("emp")
	if err != nil {
		t.Fatal(err)
	}
	secret, _ := lat.ParseLevel("Secret")
	if len(levels) != 1 || levels[0] != secret {
		t.Fatalf("levels = %v", levels)
	}
	if _, err := st.Levels("zz"); err == nil {
		t.Error("unknown relation accepted")
	}
}
