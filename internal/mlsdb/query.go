package mlsdb

import (
	"fmt"
	"sort"

	"minup/internal/lattice"
)

// This file extends the store with the two query forms the multilevel
// literature discusses beyond plain selection: predicated selection and
// equi-joins, both under read-down semantics. The security-relevant
// subtlety of each is covered by tests: a predicate must only be able to
// observe cells the subject is cleared for (otherwise the predicate's
// outcome itself becomes a covert channel), and a join must label each
// output row with the lub of its inputs.

// Predicate restricts SelectWhere rows. It receives only the cells visible
// to the querying subject; invisible attributes are absent from the map.
type Predicate func(Row) bool

// SelectWhere returns the rows of rel visible to the subject, filtered by
// the predicate after read-down masking — the predicate can never observe
// data above the subject's level.
func (st *Store) SelectWhere(rel string, subject lattice.Level, attrs []string, where Predicate) ([]Row, error) {
	rows, err := st.Select(rel, subject, attrs)
	if err != nil {
		return nil, err
	}
	if where == nil {
		return rows, nil
	}
	out := rows[:0]
	for _, r := range rows {
		if where(r) {
			out = append(out, r)
		}
	}
	return out, nil
}

// JoinedRow is one equi-join result: left and right rows plus the class of
// the combined information (the lub of the two tuple classes), which by
// the association principle may exceed either side alone.
type JoinedRow struct {
	Left  Row
	Right Row
	Class lattice.Level
}

// Join computes the equi-join of two relations on leftAttr = rightAttr for
// a subject, under read-down semantics: a pair participates only if the
// subject can see both join cells, and the combined row's class is the lub
// of the two tuple classes. The result is deterministic (left-major
// insertion order).
func (st *Store) Join(leftRel, leftAttr, rightRel, rightAttr string, subject lattice.Level) ([]JoinedRow, error) {
	lr, ok := st.schema.Relation(leftRel)
	if !ok {
		return nil, fmt.Errorf("mlsdb: %w %q", ErrUnknownRelation, leftRel)
	}
	rr, ok := st.schema.Relation(rightRel)
	if !ok {
		return nil, fmt.Errorf("mlsdb: %w %q", ErrUnknownRelation, rightRel)
	}
	if !lr.attrSet[leftAttr] {
		return nil, fmt.Errorf("mlsdb: %q has no attribute %q: %w", leftRel, leftAttr, ErrUnknownAttr)
	}
	if !rr.attrSet[rightAttr] {
		return nil, fmt.Errorf("mlsdb: %q has no attribute %q: %w", rightRel, rightAttr, ErrUnknownAttr)
	}
	lat := st.schema.Lattice()
	leftRows, err := st.selectTuples(leftRel, subject)
	if err != nil {
		return nil, err
	}
	rightRows, err := st.selectTuples(rightRel, subject)
	if err != nil {
		return nil, err
	}
	var out []JoinedRow
	for _, lt := range leftRows {
		lv, ok := lt.row[leftAttr]
		if !ok {
			continue // join cell invisible or absent: tuple cannot pair
		}
		for _, rt := range rightRows {
			rv, ok := rt.row[rightAttr]
			if !ok || lv != rv {
				continue
			}
			out = append(out, JoinedRow{
				Left:  lt.row,
				Right: rt.row,
				Class: lat.Lub(lt.class, rt.class),
			})
		}
	}
	return out, nil
}

// visibleTuple pairs a masked row with its writing tuple's class.
type visibleTuple struct {
	row   Row
	class lattice.Level
}

// selectTuples is Select plus the tuple classes, shared by Join.
func (st *Store) selectTuples(rel string, subject lattice.Level) ([]visibleTuple, error) {
	r, _ := st.schema.Relation(rel)
	lat := st.schema.Lattice()
	visible := func(a string, t Tuple) bool {
		lvl, _ := st.labeling.Level(rel, a)
		return lat.Dominates(subject, lvl) && lat.Dominates(subject, t.Class)
	}
	var out []visibleTuple
	for _, t := range st.tables[rel] {
		keyVisible := true
		for _, k := range r.Key {
			if !visible(k, t) {
				keyVisible = false
				break
			}
		}
		if !keyVisible {
			continue
		}
		row := make(Row)
		for _, a := range r.Attrs {
			if v, ok := t.Values[a]; ok && visible(a, t) {
				row[a] = v
			}
		}
		out = append(out, visibleTuple{row: row, class: t.Class})
	}
	return out, nil
}

// Levels returns the distinct access classes present among rel's stored
// tuples, sorted by their formatted names — useful for audits.
func (st *Store) Levels(rel string) ([]lattice.Level, error) {
	if _, ok := st.schema.Relation(rel); !ok {
		return nil, fmt.Errorf("mlsdb: %w %q", ErrUnknownRelation, rel)
	}
	lat := st.schema.Lattice()
	seen := make(map[lattice.Level]bool)
	var out []lattice.Level
	for _, t := range st.tables[rel] {
		if !seen[t.Class] {
			seen[t.Class] = true
			out = append(out, t.Class)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		return lat.FormatLevel(out[i]) < lat.FormatLevel(out[j])
	})
	return out, nil
}
