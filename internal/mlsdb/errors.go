package mlsdb

import "errors"

// Typed schema-resolution errors, matchable with errors.Is. Name-lookup
// failures across the schema, labeling, query, and store layers wrap these
// so callers can distinguish "no such relation/attribute" from structural
// schema errors without parsing message text.
var (
	// ErrUnknownRelation reports a reference to a relation the schema does
	// not declare.
	ErrUnknownRelation = errors.New("unknown relation")
	// ErrUnknownAttr reports a reference to an attribute its relation does
	// not declare.
	ErrUnknownAttr = errors.New("unknown attribute")
)
