package wal

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
)

// readFile reads a file or fails the test.
func readFile(t *testing.T, path string) []byte {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	return data
}

// TestFrameStreamRoundTrip writes frames with WriteFrame and reads them back
// with a FrameReader, including an empty payload and a large one.
func TestFrameStreamRoundTrip(t *testing.T) {
	want := [][]byte{[]byte("one"), []byte(""), bytes.Repeat([]byte{0xCD}, 9000)}
	var buf bytes.Buffer
	for _, p := range want {
		if err := WriteFrame(&buf, p); err != nil {
			t.Fatalf("WriteFrame: %v", err)
		}
	}
	fr := NewFrameReader(&buf)
	for i, p := range want {
		got, err := fr.Next()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !bytes.Equal(got, p) {
			t.Fatalf("frame %d: got %q want %q", i, got, p)
		}
	}
	if _, err := fr.Next(); !errors.Is(err, io.EOF) {
		t.Fatalf("end of stream: got %v, want io.EOF", err)
	}
}

// TestFrameStreamMatchesLogBytes asserts the streamed encoding is
// byte-identical to what Log.Append writes — the property that lets the
// cluster ship a shard's WAL frames verbatim.
func TestFrameStreamMatchesLogBytes(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, _, _ := openCollect(t, path, Options{Sync: SyncNever})
	payloads := [][]byte{[]byte(`{"seq":1}`), []byte(`{"seq":2,"op":"x"}`)}
	var stream bytes.Buffer
	for _, p := range payloads {
		if err := l.Append(p); err != nil {
			t.Fatalf("Append: %v", err)
		}
		if err := WriteFrame(&stream, p); err != nil {
			t.Fatalf("WriteFrame: %v", err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	onDisk := readFile(t, path)
	if !bytes.Equal(onDisk, stream.Bytes()) {
		t.Fatalf("frame stream differs from log file: %d vs %d bytes", len(stream.Bytes()), len(onDisk))
	}
}

// TestReadFrameErrors covers the three failure shapes: torn header, torn
// payload, and a CRC mismatch.
func TestReadFrameErrors(t *testing.T) {
	full := EncodeFrame([]byte("payload"))

	if _, err := ReadFrame(bytes.NewReader(full[:5])); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("torn header: got %v", err)
	}
	if _, err := ReadFrame(bytes.NewReader(full[:len(full)-2])); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("torn payload: got %v", err)
	}
	bad := append([]byte(nil), full...)
	bad[len(bad)-1] ^= 0xFF
	if _, err := ReadFrame(bytes.NewReader(bad)); !errors.Is(err, ErrFrameCorrupt) {
		t.Fatalf("flipped byte: got %v, want ErrFrameCorrupt", err)
	}
	huge := EncodeFrame([]byte("x"))
	huge[0], huge[1], huge[2], huge[3] = 0xFF, 0xFF, 0xFF, 0x7F
	if _, err := ReadFrame(bytes.NewReader(huge)); !errors.Is(err, ErrFrameCorrupt) {
		t.Fatalf("implausible length: got %v, want ErrFrameCorrupt", err)
	}
}

// TestCloseSyncsAndIsIdempotent: Close under SyncNever must flush the
// buffered tail (the record stays replayable), a second Close is a no-op,
// and appends after Close report ErrClosed.
func TestCloseSyncsAndIsIdempotent(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, _, _ := openCollect(t, path, Options{Sync: SyncNever})
	if err := l.Append([]byte("tail")); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if err := l.Append([]byte("after")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Append after Close: got %v, want ErrClosed", err)
	}
	if err := l.Sync(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Sync after Close: got %v, want ErrClosed", err)
	}
	if err := l.Reset(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Reset after Close: got %v, want ErrClosed", err)
	}
	_, recs, _ := openCollect(t, path, Options{Sync: SyncNever})
	if len(recs) != 1 || string(recs[0]) != "tail" {
		t.Fatalf("reopen after Close: got %d records %q", len(recs), recs)
	}
}
