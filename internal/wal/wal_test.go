package wal

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"minup/internal/fault"
	"minup/internal/obs"
)

// openCollect opens the log collecting replayed records.
func openCollect(t *testing.T, path string, opt Options) (*Log, [][]byte, RecoveryStats) {
	t.Helper()
	var recs [][]byte
	l, rs, err := Open(path, opt, func(rec []byte) error {
		recs = append(recs, append([]byte(nil), rec...))
		return nil
	})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return l, recs, rs
}

func TestAppendReplayRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, recs, rs := openCollect(t, path, Options{Sync: SyncNever})
	if len(recs) != 0 || rs.Records != 0 {
		t.Fatalf("fresh log replayed %d records", len(recs))
	}
	want := [][]byte{[]byte("one"), []byte(""), []byte("three-3"), bytes.Repeat([]byte{0xAB}, 4096)}
	for _, r := range want {
		if err := l.Append(r); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, got, rs2 := openCollect(t, path, Options{Sync: SyncNever})
	defer l2.Close()
	if rs2.Records != len(want) || rs2.Truncated {
		t.Fatalf("recovery stats %+v, want %d records untruncated", rs2, len(want))
	}
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("record %d = %q, want %q", i, got[i], want[i])
		}
	}
}

// TestTornTailEveryPrefix is the crash-recovery property at the framing
// layer: for EVERY byte-length prefix of a valid log, recovery yields
// exactly the records whose frames fully fit in the prefix, and the file is
// truncated back to that record boundary.
func TestTornTailEveryPrefix(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.log")
	l, _, _ := openCollect(t, path, Options{Sync: SyncNever})
	var want [][]byte
	var bounds []int64 // end offset of each frame
	off := int64(0)
	for i := 0; i < 5; i++ {
		rec := []byte(fmt.Sprintf("record-%d-%s", i, bytes.Repeat([]byte{'x'}, i*7)))
		if err := l.Append(rec); err != nil {
			t.Fatal(err)
		}
		want = append(want, rec)
		off += headerSize + int64(len(rec))
		bounds = append(bounds, off)
	}
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	l.Close()

	for cut := 0; cut <= len(full); cut++ {
		p := filepath.Join(dir, fmt.Sprintf("cut-%d.log", cut))
		if err := os.WriteFile(p, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		wantN := 0
		for _, b := range bounds {
			if int64(cut) >= b {
				wantN++
			}
		}
		l2, got, rs := openCollect(t, p, Options{Sync: SyncNever})
		if len(got) != wantN {
			t.Fatalf("cut %d: recovered %d records, want %d", cut, len(got), wantN)
		}
		for i := 0; i < wantN; i++ {
			if !bytes.Equal(got[i], want[i]) {
				t.Fatalf("cut %d: record %d mismatch", cut, i)
			}
		}
		wantTrunc := wantN < len(bounds) && int64(cut) != boundsOrZero(bounds, wantN)
		if rs.Truncated != wantTrunc {
			t.Fatalf("cut %d: Truncated = %v, want %v (stats %+v)", cut, rs.Truncated, wantTrunc, rs)
		}
		if fi, _ := os.Stat(p); fi.Size() != boundsOrZero(bounds, wantN) {
			t.Fatalf("cut %d: file size %d after recovery, want %d", cut, fi.Size(), boundsOrZero(bounds, wantN))
		}
		l2.Close()
	}
}

func boundsOrZero(bounds []int64, n int) int64 {
	if n == 0 {
		return 0
	}
	return bounds[n-1]
}

func TestCorruptPayloadTruncates(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, _, _ := openCollect(t, path, Options{Sync: SyncNever})
	l.Append([]byte("good-1"))
	l.Append([]byte("good-2"))
	l.Append([]byte("doomed"))
	l.Close()
	data, _ := os.ReadFile(path)
	data[len(data)-1] ^= 0xFF // flip one payload byte of the last frame
	os.WriteFile(path, data, 0o644)

	l2, got, rs := openCollect(t, path, Options{Sync: SyncNever})
	defer l2.Close()
	if len(got) != 2 || !rs.Truncated {
		t.Fatalf("recovered %d records (stats %+v), want 2 with truncation", len(got), rs)
	}
	// The log must be appendable again after the cut.
	if err := l2.Append([]byte("after")); err != nil {
		t.Fatal(err)
	}
}

func TestImplausibleLengthTruncates(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, _, _ := openCollect(t, path, Options{Sync: SyncNever})
	l.Append([]byte("keep"))
	l.Close()
	data, _ := os.ReadFile(path)
	var hdr [headerSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], MaxRecord+1)
	data = append(data, hdr[:]...)
	os.WriteFile(path, data, 0o644)
	l2, got, rs := openCollect(t, path, Options{Sync: SyncNever})
	defer l2.Close()
	if len(got) != 1 || !rs.Truncated {
		t.Fatalf("recovered %d records (stats %+v)", len(got), rs)
	}
}

func TestApplyErrorAbortsOpen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, _, _ := openCollect(t, path, Options{Sync: SyncNever})
	l.Append([]byte("rec"))
	l.Close()
	boom := errors.New("boom")
	_, _, err := Open(path, Options{Sync: SyncNever}, func([]byte) error { return boom })
	if !errors.Is(err, boom) {
		t.Fatalf("Open with failing apply: err = %v, want wrapped boom", err)
	}
}

func TestResetEmptiesLog(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, _, _ := openCollect(t, path, Options{Sync: SyncAlways})
	l.Append([]byte("a"))
	l.Append([]byte("b"))
	if err := l.Reset(); err != nil {
		t.Fatal(err)
	}
	if l.Size() != 0 {
		t.Fatalf("Size after Reset = %d", l.Size())
	}
	l.Append([]byte("c"))
	l.Close()
	l2, got, _ := openCollect(t, path, Options{})
	defer l2.Close()
	if len(got) != 1 || string(got[0]) != "c" {
		t.Fatalf("after reset replayed %q", got)
	}
}

func TestFaultPointsFire(t *testing.T) {
	inj := fault.New(1)
	inj.MustAdd(fault.Rule{Point: "wal.append", Act: fault.Cancel, Nth: 2})
	path := filepath.Join(t.TempDir(), "wal.log")
	reg := obs.NewRegistry()
	l, _, _ := openCollect(t, path, Options{Sync: SyncNever, Fault: inj, Metrics: reg})
	if err := l.Append([]byte("ok")); err != nil {
		t.Fatal(err)
	}
	err := l.Append([]byte("canceled"))
	if !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("2nd append err = %v, want injected", err)
	}
	l.Close()
	// The canceled record must not be on disk.
	l2, got, _ := openCollect(t, path, Options{})
	defer l2.Close()
	if len(got) != 1 {
		t.Fatalf("replayed %d records after injected cancel, want 1", len(got))
	}
	snap := reg.Snapshot()
	if snap.Counters["wal.records"] != 1 {
		t.Fatalf("wal.records = %d, want 1", snap.Counters["wal.records"])
	}
	if _, ok := snap.Histograms["wal.append.duration_us"]; !ok {
		t.Fatal("missing wal.append.duration_us histogram")
	}
}

func TestFsyncPanicLeavesRecordOnDisk(t *testing.T) {
	// A crash at the fsync point happens AFTER the frame was written: the
	// record is (likely) on disk and recovery replays it — the asymmetric
	// twin of the wal.append case, pinned here so the catalog chaos test's
	// shadow-model accounting rests on tested ground.
	inj := fault.New(1)
	inj.MustAdd(fault.Rule{Point: "wal.fsync", Act: fault.Panic, Nth: 2})
	path := filepath.Join(t.TempDir(), "wal.log")
	l, _, _ := openCollect(t, path, Options{Sync: SyncAlways, Fault: inj})
	if err := l.Append([]byte("one")); err != nil {
		t.Fatal(err)
	}
	func() {
		defer func() {
			pe := &fault.PanicError{}
			if rec := recover(); !errors.As(toErr(rec), &pe) {
				t.Fatalf("recovered %v, want *fault.PanicError", rec)
			}
		}()
		l.Append([]byte("two"))
		t.Fatal("append did not panic")
	}()
	l.Close()
	l2, got, _ := openCollect(t, path, Options{})
	defer l2.Close()
	if len(got) != 2 {
		t.Fatalf("replayed %d records, want 2 (frame written before fsync)", len(got))
	}
}

func toErr(rec any) error {
	if err, ok := rec.(error); ok {
		return err
	}
	return fmt.Errorf("%v", rec)
}

func TestWriteAtomic(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snap.json")
	if err := WriteAtomic(path, []byte("v1"), true); err != nil {
		t.Fatal(err)
	}
	if err := WriteAtomic(path, []byte("v2-longer"), true); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "v2-longer" {
		t.Fatalf("ReadFile = %q, %v", got, err)
	}
	// No temp debris left behind.
	entries, _ := os.ReadDir(filepath.Dir(path))
	if len(entries) != 1 {
		t.Fatalf("directory has %d entries, want 1", len(entries))
	}
}
