// Package wal is a stdlib-only append-only write-ahead log for the policy
// catalog: every catalog mutation is framed, checksummed, and written (and,
// per the sync policy, fsynced) to a single log file *before* it is applied
// in memory, so a crash at any instant loses at most the tail mutation that
// had not finished reaching the disk.
//
// # Frame format
//
// Each record is one frame:
//
//	offset  size  field
//	0       4     payload length N, little-endian uint32
//	4       4     IEEE CRC32 of the payload, little-endian uint32
//	8       N     payload (opaque bytes; the catalog stores JSON)
//
// Frames are written with a single Write call, so an interrupted write can
// only produce a truncated tail — never a hole in the middle of the log.
//
// # Recovery
//
// Open scans the existing file frame by frame, handing every intact payload
// to the caller's apply function. The scan stops at the first bad frame — a
// header or payload cut short by a torn write, an implausible length, or a
// CRC mismatch — and truncates the file there, because (by the single-write
// invariant above) everything past the first bad frame is the debris of one
// interrupted append, not valid data. Recovery is therefore exactly: the
// state produced by applying every mutation that fully reached the disk, in
// order.
//
// # Fault points
//
// "wal.append" fires before a frame is written and "wal.fsync" before the
// file is synced; panic rules at either simulate a crash between the
// mutation's validation and its durability, the window the crash-recovery
// chaos tests exercise.
package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"time"

	"minup/internal/fault"
	"minup/internal/obs"
)

const (
	headerSize = 8
	// MaxRecord bounds a single payload; a length field above it marks the
	// frame (and everything after it) as a torn tail. Generous compared to
	// any real policy mutation, tight compared to a corrupt length field.
	MaxRecord = 16 << 20
)

// ErrFrameCorrupt reports a frame whose header or payload failed
// validation while reading a frame stream (ReadFrame). It is distinct from
// a clean io.EOF, which marks the end of a well-formed stream.
var ErrFrameCorrupt = errors.New("wal: corrupt frame")

// EncodeFrame wraps payload in the WAL frame format (length + CRC32 header
// followed by the payload) and returns the framed bytes. The same encoding
// backs Log.Append and the cluster replication stream, so a frame produced
// here is byte-identical to one on disk.
func EncodeFrame(payload []byte) []byte {
	buf := make([]byte, headerSize+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(payload))
	copy(buf[headerSize:], payload)
	return buf
}

// WriteFrame frames payload and writes it to w in a single Write call,
// preserving the torn-tail invariant when w is a file or socket.
func WriteFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxRecord {
		return fmt.Errorf("wal: frame of %d bytes exceeds MaxRecord", len(payload))
	}
	_, err := w.Write(EncodeFrame(payload))
	return err
}

// ReadFrame reads one frame from r and returns its payload. A clean end of
// stream returns io.EOF; a frame cut mid-header or mid-payload returns
// io.ErrUnexpectedEOF; an implausible length or CRC mismatch returns
// ErrFrameCorrupt. The reader should be buffered (bufio) for frame streams;
// ReadFrame issues exactly the reads it needs and never over-reads.
func ReadFrame(r io.Reader) ([]byte, error) {
	var hdr [headerSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return nil, io.EOF
		}
		return nil, io.ErrUnexpectedEOF
	}
	n := binary.LittleEndian.Uint32(hdr[0:4])
	sum := binary.LittleEndian.Uint32(hdr[4:8])
	if n > MaxRecord {
		return nil, fmt.Errorf("%w: implausible length %d", ErrFrameCorrupt, n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, io.ErrUnexpectedEOF
	}
	if crc32.ChecksumIEEE(payload) != sum {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrFrameCorrupt)
	}
	return payload, nil
}

// A FrameReader decodes a stream of WAL frames from r, buffering reads.
type FrameReader struct {
	br *bufio.Reader
}

// NewFrameReader wraps r in a buffered frame decoder.
func NewFrameReader(r io.Reader) *FrameReader { return &FrameReader{br: bufio.NewReader(r)} }

// Next returns the next frame's payload, with ReadFrame's error contract.
func (fr *FrameReader) Next() ([]byte, error) { return ReadFrame(fr.br) }

// SyncPolicy says when the log fsyncs.
type SyncPolicy uint8

const (
	// SyncAlways fsyncs after every append: a returned Append survives an
	// immediate power cut. The default, and the policy the crash-recovery
	// guarantees are stated for.
	SyncAlways SyncPolicy = iota
	// SyncNever leaves durability to the OS page cache: appends survive a
	// process crash but not necessarily a machine crash. For tests and
	// throwaway instances.
	SyncNever
)

// Options tunes a Log. The zero value is ready to use (SyncAlways, no
// metrics, no faults).
type Options struct {
	Sync SyncPolicy
	// Metrics, when non-nil, records wal.append.duration_us,
	// wal.fsync.duration_us, and wal.recovery.duration_us histograms plus
	// the wal.records / wal.recovered_records / wal.torn_tails counters.
	Metrics *obs.Registry
	// Fault, when non-nil, arms the "wal.append" and "wal.fsync" fault
	// points for chaos testing. Nil is the production value.
	Fault *fault.Injector
}

// RecoveryStats reports what Open found in an existing log file.
type RecoveryStats struct {
	// Records is the number of intact frames replayed.
	Records int
	// Bytes is the valid prefix length the log was (re)opened at.
	Bytes int64
	// Truncated reports that a torn tail was found and cut off.
	Truncated bool
	// DroppedBytes is the length of the torn tail that was discarded.
	DroppedBytes int64
	// Duration is the wall time of the scan.
	Duration time.Duration
}

// Log is an append-only frame log. It is single-writer and not safe for
// concurrent use on its own; the catalog serializes every access under its
// mutex, which is the intended usage.
type Log struct {
	f    *os.File
	path string
	opt  Options
	size int64 // current valid end offset
}

// Open opens (creating if absent) the log at path, replays every intact
// record through apply in write order, truncates any torn tail, and leaves
// the log positioned for appending. A non-nil error from apply aborts the
// open: an intact frame whose payload the application cannot absorb is
// corruption above the framing layer, not a torn tail, and must not be
// silently dropped.
func Open(path string, opt Options, apply func(rec []byte) error) (*Log, RecoveryStats, error) {
	start := time.Now()
	var rs RecoveryStats
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, rs, err
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, rs, err
	}
	data, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return nil, rs, err
	}
	valid := int64(0)
	for {
		rest := data[valid:]
		if len(rest) == 0 {
			break
		}
		if len(rest) < headerSize {
			break // torn header
		}
		n := binary.LittleEndian.Uint32(rest[0:4])
		sum := binary.LittleEndian.Uint32(rest[4:8])
		if n > MaxRecord || int64(headerSize)+int64(n) > int64(len(rest)) {
			break // implausible length or torn payload
		}
		payload := rest[headerSize : headerSize+int(n)]
		if crc32.ChecksumIEEE(payload) != sum {
			break // corrupt frame
		}
		if err := apply(payload); err != nil {
			f.Close()
			return nil, rs, fmt.Errorf("wal: replaying record %d: %w", rs.Records, err)
		}
		rs.Records++
		valid += headerSize + int64(n)
	}
	if valid < fi.Size() {
		rs.Truncated = true
		rs.DroppedBytes = fi.Size() - valid
		if err := f.Truncate(valid); err != nil {
			f.Close()
			return nil, rs, fmt.Errorf("wal: truncating torn tail: %w", err)
		}
	}
	if _, err := f.Seek(valid, io.SeekStart); err != nil {
		f.Close()
		return nil, rs, err
	}
	rs.Bytes = valid
	rs.Duration = time.Since(start)
	if m := opt.Metrics; m != nil {
		m.Histogram("wal.recovery.duration_us", obs.DurationBucketsUS).
			Observe(uint64(rs.Duration.Microseconds()))
		m.Counter("wal.recovered_records").Add(uint64(rs.Records))
		if rs.Truncated {
			m.Counter("wal.torn_tails").Inc()
		}
	}
	return &Log{f: f, path: path, opt: opt, size: valid}, rs, nil
}

// Append frames rec, writes it, and fsyncs per the sync policy. When Append
// returns nil the record will be replayed by every future Open (under
// SyncAlways, even across a power cut). On a write error the log truncates
// itself back to the last good frame so the in-process view stays
// consistent with the file.
func (l *Log) Append(rec []byte) error {
	if l.f == nil {
		return ErrClosed
	}
	if len(rec) > MaxRecord {
		return fmt.Errorf("wal: record of %d bytes exceeds MaxRecord", len(rec))
	}
	if err := l.opt.Fault.Hit("wal.append"); err != nil {
		return fmt.Errorf("wal: append: %w", err)
	}
	start := time.Now()
	buf := EncodeFrame(rec)
	if _, err := l.f.Write(buf); err != nil {
		// Best effort: cut back to the last known-good frame so a partial
		// write does not poison later appends.
		l.f.Truncate(l.size)
		l.f.Seek(l.size, io.SeekStart)
		return fmt.Errorf("wal: append: %w", err)
	}
	l.size += int64(len(buf))
	if m := l.opt.Metrics; m != nil {
		m.Counter("wal.records").Inc()
		m.Histogram("wal.append.duration_us", obs.DurationBucketsUS).
			Observe(uint64(time.Since(start).Microseconds()))
	}
	if l.opt.Sync == SyncAlways {
		return l.Sync()
	}
	return nil
}

// Sync forces the log to stable storage (a no-op policy knob bypass for
// callers that batch under SyncNever and sync at their own barriers).
func (l *Log) Sync() error {
	if l.f == nil {
		return ErrClosed
	}
	if err := l.opt.Fault.Hit("wal.fsync"); err != nil {
		return fmt.Errorf("wal: fsync: %w", err)
	}
	start := time.Now()
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: fsync: %w", err)
	}
	if m := l.opt.Metrics; m != nil {
		m.Histogram("wal.fsync.duration_us", obs.DurationBucketsUS).
			Observe(uint64(time.Since(start).Microseconds()))
	}
	return nil
}

// Reset empties the log. The caller must already have made the state the
// log described durable elsewhere (the catalog's snapshot file) — Reset is
// the second half of snapshot compaction.
func (l *Log) Reset() error {
	if l.f == nil {
		return ErrClosed
	}
	if err := l.f.Truncate(0); err != nil {
		return fmt.Errorf("wal: reset: %w", err)
	}
	if _, err := l.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	l.size = 0
	if l.opt.Sync == SyncAlways {
		if err := l.f.Sync(); err != nil {
			return fmt.Errorf("wal: reset: %w", err)
		}
	}
	return nil
}

// Size returns the current valid length of the log in bytes.
func (l *Log) Size() int64 { return l.size }

// Close syncs and closes the underlying file. Under SyncNever the appends
// since the last sync are still sitting in the kernel page cache, so Close
// fsyncs first — a clean shutdown must not lose the buffered tail (under
// SyncAlways every append already synced, and the extra fsync is skipped).
// Idempotent: the first call wins, later calls return nil; Append, Sync,
// and Reset on a closed log return ErrClosed.
func (l *Log) Close() error {
	if l.f == nil {
		return nil
	}
	f := l.f
	l.f = nil
	var syncErr error
	if l.opt.Sync == SyncNever {
		syncErr = f.Sync()
	}
	closeErr := f.Close()
	if syncErr != nil {
		return fmt.Errorf("wal: close: %w", syncErr)
	}
	return closeErr
}

// ErrClosed reports an operation against a closed log.
var ErrClosed = errors.New("wal: log is closed")

// WriteAtomic durably replaces path with data: write to a temp file in the
// same directory, fsync it (when sync is true), rename over the target, and
// best-effort fsync the directory so the rename itself survives a crash.
// Readers see either the old contents or the new, never a mix — the
// property snapshot compaction needs.
func WriteAtomic(path string, data []byte, sync bool) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	cleanup := func() {
		tmp.Close()
		os.Remove(tmpName)
	}
	if _, err := tmp.Write(data); err != nil {
		cleanup()
		return err
	}
	if sync {
		if err := tmp.Sync(); err != nil {
			cleanup()
			return err
		}
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	if sync {
		if d, err := os.Open(dir); err == nil {
			d.Sync()
			d.Close()
		}
	}
	return nil
}
