// Package mac implements the mandatory access-control policy the paper's
// introduction builds on: subjects hold clearances from the security
// lattice, sessions run at a level dominated by the clearance, and a
// reference monitor enforces the Bell–LaPadula rules —
//
//	simple security (no read up):  a session may read an object only if
//	                               its level dominates the object's;
//	⋆-property (no write down):    a session may write an object only if
//	                               the object's level dominates the
//	                               session's.
//
// Together with a classification computed by the solver, these rules are
// what actually prevents the leakage the constraints describe; the flow
// simulation in this package's tests demonstrates that end to end.
package mac

import (
	"fmt"
	"sync"

	"minup/internal/lattice"
)

// Subject is a cleared principal.
type Subject struct {
	Name      string
	Clearance lattice.Level
}

// Session is a login of a subject at a working level dominated by the
// subject's clearance. Running below clearance is how trusted users
// produce low output without contaminating it (the reason BLP separates
// the two).
type Session struct {
	Subject *Subject
	Level   lattice.Level
}

// Decision is the outcome of one reference-monitor check.
type Decision struct {
	Allowed bool
	Rule    string // which rule decided
}

// Monitor is a reference monitor over one security lattice. It is safe
// for concurrent use; the audit log is guarded internally.
type Monitor struct {
	lat lattice.Lattice

	mu    sync.Mutex
	audit []AuditEntry
}

// AuditEntry records one mediated access.
type AuditEntry struct {
	Session string
	Op      string // "read" or "write"
	Object  string
	Level   lattice.Level // the object's level
	Allowed bool
}

// NewMonitor creates a reference monitor for the lattice.
func NewMonitor(lat lattice.Lattice) *Monitor {
	return &Monitor{lat: lat}
}

// NewSubject registers a subject with a clearance.
func (m *Monitor) NewSubject(name string, clearance lattice.Level) (*Subject, error) {
	if !m.lat.Contains(clearance) {
		return nil, fmt.Errorf("mac: clearance outside lattice %q", m.lat.Name())
	}
	return &Subject{Name: name, Clearance: clearance}, nil
}

// Login opens a session for the subject at the requested level, which the
// clearance must dominate.
func (m *Monitor) Login(s *Subject, level lattice.Level) (*Session, error) {
	if !m.lat.Contains(level) {
		return nil, fmt.Errorf("mac: session level outside lattice %q", m.lat.Name())
	}
	if !m.lat.Dominates(s.Clearance, level) {
		return nil, fmt.Errorf("mac: %s (cleared %s) may not run at %s",
			s.Name, m.lat.FormatLevel(s.Clearance), m.lat.FormatLevel(level))
	}
	return &Session{Subject: s, Level: level}, nil
}

// CheckRead applies simple security: read allowed iff the session level
// dominates the object level.
func (m *Monitor) CheckRead(sess *Session, object string, objLevel lattice.Level) Decision {
	allowed := m.lat.Dominates(sess.Level, objLevel)
	m.record(sess, "read", object, objLevel, allowed)
	return Decision{Allowed: allowed, Rule: "simple-security (no read up)"}
}

// CheckWrite applies the ⋆-property: write allowed iff the object level
// dominates the session level.
func (m *Monitor) CheckWrite(sess *Session, object string, objLevel lattice.Level) Decision {
	allowed := m.lat.Dominates(objLevel, sess.Level)
	m.record(sess, "write", object, objLevel, allowed)
	return Decision{Allowed: allowed, Rule: "star-property (no write down)"}
}

func (m *Monitor) record(sess *Session, op, object string, lvl lattice.Level, allowed bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.audit = append(m.audit, AuditEntry{
		Session: sess.Subject.Name,
		Op:      op,
		Object:  object,
		Level:   lvl,
		Allowed: allowed,
	})
}

// Audit returns a copy of the audit log.
func (m *Monitor) Audit() []AuditEntry {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]AuditEntry(nil), m.audit...)
}

// Denials returns the denied entries of the audit log.
func (m *Monitor) Denials() []AuditEntry {
	var out []AuditEntry
	for _, e := range m.Audit() {
		if !e.Allowed {
			out = append(out, e)
		}
	}
	return out
}
