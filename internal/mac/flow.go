package mac

import (
	"fmt"
	"math/rand"
	"sort"

	"minup/internal/lattice"
)

// Information-flow simulation: the executable argument that a labeling
// plus the BLP rules prevents leakage. Objects carry taint sets — the set
// of source objects whose data may have influenced their contents.
// Sessions accumulate taint from every object they read and deposit their
// accumulated taint into every object they write. After any interleaving
// of permitted operations, an object's taint may only contain sources
// whose level is dominated by... precisely: every tainted object must
// dominate the levels of all its taint sources; hence a low reader can
// never observe high data. FlowSim.Check verifies that invariant.
type FlowSim struct {
	mon    *Monitor
	lat    lattice.Lattice
	levels map[string]lattice.Level
	taint  map[string]map[string]bool // object -> source objects
}

// NewFlowSim builds a simulation over labeled objects.
func NewFlowSim(mon *Monitor, levels map[string]lattice.Level) *FlowSim {
	f := &FlowSim{
		mon:    mon,
		lat:    mon.lat,
		levels: levels,
		taint:  make(map[string]map[string]bool, len(levels)),
	}
	for name := range levels {
		f.taint[name] = map[string]bool{name: true}
	}
	return f
}

// Actor is a session plus its accumulated read taint.
type Actor struct {
	sess   *Session
	seen   map[string]bool
	denied int
}

// Denied returns how many of the actor's attempts the monitor refused.
func (a *Actor) Denied() int { return a.denied }

// NewActor wraps a session for the simulation.
func (f *FlowSim) NewActor(sess *Session) *Actor {
	return &Actor{sess: sess, seen: make(map[string]bool)}
}

// Read attempts to read an object through the monitor; on success the
// actor absorbs the object's taint.
func (f *FlowSim) Read(a *Actor, object string) bool {
	lvl, ok := f.levels[object]
	if !ok {
		panic(fmt.Sprintf("mac: unknown object %q", object))
	}
	if !f.mon.CheckRead(a.sess, object, lvl).Allowed {
		a.denied++
		return false
	}
	for src := range f.taint[object] {
		a.seen[src] = true
	}
	return true
}

// Write attempts to write an object through the monitor; on success the
// object absorbs the actor's taint.
func (f *FlowSim) Write(a *Actor, object string) bool {
	lvl, ok := f.levels[object]
	if !ok {
		panic(fmt.Sprintf("mac: unknown object %q", object))
	}
	if !f.mon.CheckWrite(a.sess, object, lvl).Allowed {
		a.denied++
		return false
	}
	for src := range a.seen {
		f.taint[object][src] = true
	}
	return true
}

// Taint records that object's contents reveal src's data irrespective of
// access control — a real-world dependency such as a functional
// dependency, a derivation, or an out-of-band correlation. Check then
// treats src as one of object's sources.
func (f *FlowSim) Taint(object, src string) {
	if _, ok := f.levels[object]; !ok {
		panic(fmt.Sprintf("mac: unknown object %q", object))
	}
	if _, ok := f.levels[src]; !ok {
		panic(fmt.Sprintf("mac: unknown object %q", src))
	}
	f.taint[object][src] = true
}

// Check verifies the no-leak invariant: every object's level dominates the
// level of every source in its taint set. It returns descriptions of any
// violations (always empty when all accesses went through the monitor).
func (f *FlowSim) Check() []string {
	var out []string
	for obj, sources := range f.taint {
		for src := range sources {
			if !f.lat.Dominates(f.levels[obj], f.levels[src]) {
				out = append(out, fmt.Sprintf("object %s (%s) tainted by %s (%s)",
					obj, f.lat.FormatLevel(f.levels[obj]),
					src, f.lat.FormatLevel(f.levels[src])))
			}
		}
	}
	return out
}

// Run drives a random interleaving: each step a random actor reads or
// writes a random object (denials are fine — they are the policy working).
// Returns the number of permitted operations.
func (f *FlowSim) Run(rng *rand.Rand, actors []*Actor, steps int) int {
	names := make([]string, 0, len(f.levels))
	for n := range f.levels {
		names = append(names, n)
	}
	sort.Strings(names) // deterministic object order for reproducibility
	allowed := 0
	for i := 0; i < steps; i++ {
		a := actors[rng.Intn(len(actors))]
		obj := names[rng.Intn(len(names))]
		var ok bool
		if rng.Intn(2) == 0 {
			ok = f.Read(a, obj)
		} else {
			ok = f.Write(a, obj)
		}
		if ok {
			allowed++
		}
	}
	return allowed
}
