package mac

import (
	"math/rand"
	"sort"
	"testing"

	"minup/internal/constraint"
	"minup/internal/core"
	"minup/internal/lattice"
	"minup/internal/workload"
)

func chain(t *testing.T) *lattice.Chain {
	t.Helper()
	return lattice.MustChain("mil", "U", "C", "S", "TS")
}

func lv(t *testing.T, l lattice.Lattice, n string) lattice.Level {
	t.Helper()
	x, err := l.ParseLevel(n)
	if err != nil {
		t.Fatal(err)
	}
	return x
}

func TestMonitorBasics(t *testing.T) {
	l := chain(t)
	m := NewMonitor(l)
	alice, err := m.NewSubject("alice", lv(t, l, "S"))
	if err != nil {
		t.Fatal(err)
	}
	// Sessions at or below clearance only.
	if _, err := m.Login(alice, lv(t, l, "TS")); err == nil {
		t.Error("login above clearance accepted")
	}
	sess, err := m.Login(alice, lv(t, l, "C"))
	if err != nil {
		t.Fatal(err)
	}

	// Simple security: read down yes, read up no.
	if !m.CheckRead(sess, "memo", lv(t, l, "U")).Allowed {
		t.Error("read down denied")
	}
	if m.CheckRead(sess, "warplan", lv(t, l, "S")).Allowed {
		t.Error("read up allowed")
	}
	// ⋆-property: write up yes, write down no.
	if !m.CheckWrite(sess, "report", lv(t, l, "S")).Allowed {
		t.Error("write up denied")
	}
	if m.CheckWrite(sess, "bulletin", lv(t, l, "U")).Allowed {
		t.Error("write down allowed")
	}

	audit := m.Audit()
	if len(audit) != 4 {
		t.Fatalf("audit = %d entries", len(audit))
	}
	if d := m.Denials(); len(d) != 2 {
		t.Fatalf("denials = %d", len(d))
	}

	if _, err := m.NewSubject("x", lattice.Level(999999)); err == nil {
		t.Error("foreign clearance accepted")
	}
}

// TestFlowSimNoLeak is the end-to-end leakage argument: label a random
// constraint instance minimally, run thousands of random monitored
// reads/writes by subjects at every level, and verify no object's taint
// ever contains a source above its level.
func TestFlowSimNoLeak(t *testing.T) {
	lats := map[string]lattice.Lattice{
		"chain":    chain(t),
		"figure1a": lattice.FigureOneA(),
	}
	for name, l := range lats {
		for seed := int64(0); seed < 10; seed++ {
			s := workload.MustConstraints(l, workload.ConstraintSpec{
				Seed: seed, NumAttrs: 12, NumConstraints: 24, MaxLHS: 3,
				LevelRHSFraction: 0.4, Cyclic: true,
			})
			res := core.MustSolve(s, core.Options{})
			levels := make(map[string]lattice.Level, s.NumAttrs())
			for _, a := range s.Attrs() {
				levels[s.AttrName(a)] = res.Assignment[a]
			}

			mon := NewMonitor(l)
			sim := NewFlowSim(mon, levels)
			// One actor per distinct level in use plus top and bottom.
			distinct := map[lattice.Level]bool{l.Top(): true, l.Bottom(): true}
			for _, lvl := range levels {
				distinct[lvl] = true
			}
			var actorLevels []lattice.Level
			for lvl := range distinct {
				actorLevels = append(actorLevels, lvl)
			}
			sort.Slice(actorLevels, func(i, j int) bool { return actorLevels[i] < actorLevels[j] })
			var actors []*Actor
			for i, lvl := range actorLevels {
				sub, err := mon.NewSubject(string(rune('a'+i)), lvl)
				if err != nil {
					t.Fatal(err)
				}
				sess, err := mon.Login(sub, lvl)
				if err != nil {
					t.Fatal(err)
				}
				actors = append(actors, sim.NewActor(sess))
			}
			rng := rand.New(rand.NewSource(seed))
			allowed := sim.Run(rng, actors, 4000)
			if allowed == 0 {
				t.Fatalf("%s seed=%d: simulation permitted nothing", name, seed)
			}
			if leaks := sim.Check(); leaks != nil {
				t.Fatalf("%s seed=%d: leaks: %v", name, seed, leaks)
			}
		}
	}
}

// TestFlowSimDetectsBypass shows the invariant checker works: writing
// around the monitor (simulated by mislabeling) is caught.
func TestFlowSimDetectsBypass(t *testing.T) {
	l := chain(t)
	mon := NewMonitor(l)
	levels := map[string]lattice.Level{
		"high": lv(t, l, "TS"),
		"low":  lv(t, l, "U"),
	}
	sim := NewFlowSim(mon, levels)
	// Bypass: directly taint the low object with the high one.
	sim.taint["low"]["high"] = true
	leaks := sim.Check()
	if len(leaks) != 1 {
		t.Fatalf("leaks = %v", leaks)
	}
}

// TestFlowSimUnknownObjectPanics pins the programming-error behavior.
func TestFlowSimUnknownObjectPanics(t *testing.T) {
	l := chain(t)
	mon := NewMonitor(l)
	sim := NewFlowSim(mon, map[string]lattice.Level{"x": l.Bottom()})
	sub, _ := mon.NewSubject("s", l.Top())
	sess, _ := mon.Login(sub, l.Top())
	a := sim.NewActor(sess)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	sim.Read(a, "nope")
}

// TestOpenChannelLeaksWithoutConstraint is the punchline test: with the
// FD-induced inference constraint omitted, the "inference" (modeled as a
// permitted derived write by a cleared subject) contaminates a low object;
// with the constraint enforced by the solver, the channel disappears
// because the deriving object is labeled high enough.
func TestOpenChannelLeaksWithoutConstraint(t *testing.T) {
	l := chain(t)
	secret := lv(t, l, "S")

	build := func(withInference bool) map[string]lattice.Level {
		s := constraint.NewSet(l)
		diag := s.MustAttr("diagnosis")
		treat := s.MustAttr("treatment")
		s.MustAdd([]constraint.Attr{diag}, constraint.LevelRHS(secret))
		if withInference {
			// treatment reveals diagnosis.
			s.MustAdd([]constraint.Attr{treat}, constraint.AttrRHS(diag))
		}
		res := core.MustSolve(s, core.Options{})
		return map[string]lattice.Level{
			"diagnosis": res.Assignment[diag],
			"treatment": res.Assignment[treat],
		}
	}

	// Without the constraint, treatment is labeled U: a cleared insider
	// session at U... cannot read diagnosis. The leak happens *outside*
	// the monitor: domain knowledge lets anyone who reads treatment infer
	// diagnosis. Model: the dependency taints treatment with diagnosis at
	// setup (the data is correlated by the world, not by an access).
	check := func(levels map[string]lattice.Level) []string {
		mon := NewMonitor(l)
		sim := NewFlowSim(mon, levels)
		sim.taint["treatment"]["diagnosis"] = true // the real-world FD
		return sim.Check()
	}
	if leaks := check(build(false)); len(leaks) == 0 {
		t.Fatal("missing inference constraint should leave an open channel")
	}
	if leaks := check(build(true)); leaks != nil {
		t.Fatalf("solver labeling left the channel open: %v", leaks)
	}
}
