// Package graph provides generic directed-graph utilities shared by the
// constraint and poset machinery: adjacency storage, depth-first search,
// strongly connected component computation (both the two-pass Kosaraju
// variant the paper's Main procedure uses and Tarjan's one-pass algorithm as
// a differential-testing oracle), topological sorting, and reachability.
//
// Nodes are dense non-negative integers assigned by the caller; this keeps
// the hot paths allocation-free and lets higher layers map attributes and
// security levels onto node indices however they like.
package graph

import (
	"fmt"
	"sort"
)

// Digraph is a directed graph over nodes 0..N-1 with adjacency lists.
// Parallel edges are permitted (callers that care deduplicate); self-loops
// are permitted and place their node in a singleton cyclic component.
type Digraph struct {
	succ [][]int // succ[u] = nodes v with an edge u -> v
	pred [][]int // pred[v] = nodes u with an edge u -> v
	m    int     // edge count
}

// New returns an empty digraph with n nodes and no edges.
func New(n int) *Digraph {
	if n < 0 {
		panic(fmt.Sprintf("graph: negative node count %d", n))
	}
	return &Digraph{
		succ: make([][]int, n),
		pred: make([][]int, n),
	}
}

// N returns the number of nodes.
func (g *Digraph) N() int { return len(g.succ) }

// M returns the number of edges.
func (g *Digraph) M() int { return g.m }

// AddEdge inserts the directed edge u -> v.
func (g *Digraph) AddEdge(u, v int) {
	g.check(u)
	g.check(v)
	g.succ[u] = append(g.succ[u], v)
	g.pred[v] = append(g.pred[v], u)
	g.m++
}

// Succ returns the successor list of u. The returned slice is owned by the
// graph and must not be modified.
func (g *Digraph) Succ(u int) []int { g.check(u); return g.succ[u] }

// Pred returns the predecessor list of v. The returned slice is owned by the
// graph and must not be modified.
func (g *Digraph) Pred(v int) []int { g.check(v); return g.pred[v] }

func (g *Digraph) check(u int) {
	if u < 0 || u >= len(g.succ) {
		panic(fmt.Sprintf("graph: node %d out of range [0,%d)", u, len(g.succ)))
	}
}

// HasEdge reports whether an edge u -> v exists. Linear in out-degree of u;
// intended for tests and validation, not hot paths.
func (g *Digraph) HasEdge(u, v int) bool {
	for _, w := range g.Succ(u) {
		if w == v {
			return true
		}
	}
	return false
}

// Reverse returns a new graph with every edge direction flipped.
func (g *Digraph) Reverse() *Digraph {
	r := New(g.N())
	for u := range g.succ {
		for _, v := range g.succ[u] {
			r.AddEdge(v, u)
		}
	}
	return r
}

// PostOrder returns the nodes in DFS finish order (earliest-finished first),
// visiting roots in increasing node order and successors in adjacency-list
// order. This is the order the paper's dfs_visit records on its Stack
// (Stack pops therefore consume the reverse of this slice).
func (g *Digraph) PostOrder() []int {
	n := g.N()
	order := make([]int, 0, n)
	seen := make([]bool, n)
	// Iterative DFS with an explicit stack of (node, next-successor-index)
	// frames so deep graphs cannot overflow the goroutine stack.
	type frame struct {
		u int
		i int
	}
	stack := make([]frame, 0, 64)
	for root := 0; root < n; root++ {
		if seen[root] {
			continue
		}
		seen[root] = true
		stack = append(stack, frame{root, 0})
		for len(stack) > 0 {
			top := &stack[len(stack)-1]
			adv := false
			for top.i < len(g.succ[top.u]) {
				v := g.succ[top.u][top.i]
				top.i++
				if !seen[v] {
					seen[v] = true
					stack = append(stack, frame{v, 0})
					adv = true
					break
				}
			}
			if !adv && top.i >= len(g.succ[stack[len(stack)-1].u]) {
				order = append(order, stack[len(stack)-1].u)
				stack = stack[:len(stack)-1]
			}
		}
	}
	return order
}

// SCCResult describes a partition of the nodes into strongly connected
// components.
type SCCResult struct {
	// Comp maps each node to its component index.
	Comp []int
	// Components lists the members of each component, each sorted ascending.
	Components [][]int
}

// NumComponents returns the number of strongly connected components.
func (r *SCCResult) NumComponents() int { return len(r.Components) }

// SameComponent reports whether u and v are mutually reachable.
func (r *SCCResult) SameComponent(u, v int) bool { return r.Comp[u] == r.Comp[v] }

// KosarajuSCC computes strongly connected components with the two-pass DFS
// scheme the paper adapts in Main (dfs_visit / dfs_back_visit): a forward
// DFS recording finish order, then a backward flood over nodes in decreasing
// finish time. Components are discovered in topological order of the
// condensation (source components first), so if component a can reach
// component b (a != b) then a's index is smaller than b's.
func KosarajuSCC(g *Digraph) *SCCResult {
	n := g.N()
	post := g.PostOrder()
	comp := make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	var components [][]int
	// Walk nodes in decreasing finish time; flood backward.
	stack := make([]int, 0, 64)
	for i := n - 1; i >= 0; i-- {
		root := post[i]
		if comp[root] != -1 {
			continue
		}
		id := len(components)
		comp[root] = id
		members := []int{root}
		stack = append(stack[:0], root)
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, v := range g.pred[u] {
				if comp[v] == -1 {
					comp[v] = id
					members = append(members, v)
					stack = append(stack, v)
				}
			}
		}
		sort.Ints(members)
		components = append(components, members)
	}
	return &SCCResult{Comp: comp, Components: components}
}

// PrioritySCC computes SCCs together with the paper's priority numbering
// (§4): priority 1..P with the properties that (1) every node has exactly
// one priority, (2) two nodes share a priority iff they are mutually
// reachable, and (3) each node's priority is no greater than that of every
// node reachable from it. BigLoop then consumes priority sets in decreasing
// order. Priorities are 1-based as in the paper; Priority[u] gives node u's
// priority and Sets[p] lists the nodes with priority p (Sets[0] is unused).
func PrioritySCC(g *Digraph) *PriorityResult {
	scc := KosarajuSCC(g)
	// Kosaraju discovers components in topological order (sources first), so
	// priority = discovery index + 1 makes every node's priority no greater
	// than that of the nodes reachable from it (its dependencies), which is
	// property (3). BigLoop then counts priorities downward, labeling sink
	// components (which depend on nothing unlabeled) first — exactly the
	// back-propagation order.
	p := &PriorityResult{
		SCC:      scc,
		Priority: make([]int, g.N()),
		Sets:     make([][]int, scc.NumComponents()+1),
	}
	for id, members := range scc.Components {
		pr := id + 1
		p.Sets[pr] = members
		for _, u := range members {
			p.Priority[u] = pr
		}
	}
	p.Max = scc.NumComponents()
	return p
}

// PriorityResult carries SCCs plus the paper's 1-based priority numbering.
type PriorityResult struct {
	SCC      *SCCResult
	Priority []int   // Priority[u] in 1..Max
	Sets     [][]int // Sets[p] = nodes with priority p; Sets[0] unused
	Max      int     // highest priority assigned
}

// TarjanSCC computes strongly connected components with Tarjan's one-pass
// algorithm. Component indices are assigned in order of component
// completion, which for Tarjan is reverse topological order of the
// condensation (sinks first). It is used as a differential-testing oracle
// for KosarajuSCC.
func TarjanSCC(g *Digraph) *SCCResult {
	n := g.N()
	const unvisited = -1
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	comp := make([]int, n)
	for i := range index {
		index[i] = unvisited
		comp[i] = -1
	}
	var components [][]int
	var stack []int
	next := 0

	type frame struct {
		u int
		i int
	}
	var frames []frame
	for root := 0; root < n; root++ {
		if index[root] != unvisited {
			continue
		}
		frames = append(frames[:0], frame{root, 0})
		index[root] = next
		low[root] = next
		next++
		stack = append(stack, root)
		onStack[root] = true
		for len(frames) > 0 {
			top := &frames[len(frames)-1]
			u := top.u
			if top.i < len(g.succ[u]) {
				v := g.succ[u][top.i]
				top.i++
				if index[v] == unvisited {
					index[v] = next
					low[v] = next
					next++
					stack = append(stack, v)
					onStack[v] = true
					frames = append(frames, frame{v, 0})
				} else if onStack[v] && index[v] < low[u] {
					low[u] = index[v]
				}
				continue
			}
			// u finished.
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				p := frames[len(frames)-1].u
				if low[u] < low[p] {
					low[p] = low[u]
				}
			}
			if low[u] == index[u] {
				id := len(components)
				var members []int
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = id
					members = append(members, w)
					if w == u {
						break
					}
				}
				sort.Ints(members)
				components = append(components, members)
			}
		}
	}
	return &SCCResult{Comp: comp, Components: components}
}

// TopoSort returns a topological order of an acyclic graph (edges point from
// earlier to later nodes in the returned slice). It reports ok=false when
// the graph contains a cycle.
func TopoSort(g *Digraph) (order []int, ok bool) {
	n := g.N()
	indeg := make([]int, n)
	for u := 0; u < n; u++ {
		for _, v := range g.succ[u] {
			indeg[v]++
		}
	}
	queue := make([]int, 0, n)
	for u := 0; u < n; u++ {
		if indeg[u] == 0 {
			queue = append(queue, u)
		}
	}
	order = make([]int, 0, n)
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		order = append(order, u)
		for _, v := range g.succ[u] {
			indeg[v]--
			if indeg[v] == 0 {
				queue = append(queue, v)
			}
		}
	}
	return order, len(order) == n
}

// IsAcyclic reports whether the graph has no directed cycle.
func IsAcyclic(g *Digraph) bool {
	_, ok := TopoSort(g)
	return ok
}

// Reachable returns the set of nodes reachable from start (including start)
// as a boolean slice.
func Reachable(g *Digraph, start int) []bool {
	g.check(start)
	seen := make([]bool, g.N())
	seen[start] = true
	stack := []int{start}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, v := range g.succ[u] {
			if !seen[v] {
				seen[v] = true
				stack = append(stack, v)
			}
		}
	}
	return seen
}

// CondensationEdges returns the edge set of the condensation (one node per
// SCC), deduplicated and with self-loops removed, as pairs of component
// indices.
func CondensationEdges(g *Digraph, scc *SCCResult) [][2]int {
	seen := make(map[[2]int]bool)
	var edges [][2]int
	for u := 0; u < g.N(); u++ {
		cu := scc.Comp[u]
		for _, v := range g.succ[u] {
			cv := scc.Comp[v]
			if cu == cv {
				continue
			}
			e := [2]int{cu, cv}
			if !seen[e] {
				seen[e] = true
				edges = append(edges, e)
			}
		}
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i][0] != edges[j][0] {
			return edges[i][0] < edges[j][0]
		}
		return edges[i][1] < edges[j][1]
	})
	return edges
}
