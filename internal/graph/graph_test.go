package graph

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

// buildGraph constructs a digraph from an edge list over n nodes.
func buildGraph(n int, edges [][2]int) *Digraph {
	g := New(n)
	for _, e := range edges {
		g.AddEdge(e[0], e[1])
	}
	return g
}

func TestNewEmpty(t *testing.T) {
	g := New(0)
	if g.N() != 0 || g.M() != 0 {
		t.Fatalf("empty graph reports N=%d M=%d", g.N(), g.M())
	}
	if got := g.PostOrder(); len(got) != 0 {
		t.Fatalf("PostOrder on empty graph = %v", got)
	}
}

func TestAddEdgeAndAccessors(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(1, 2)
	if g.M() != 3 {
		t.Fatalf("M = %d, want 3", g.M())
	}
	if !reflect.DeepEqual(g.Succ(0), []int{1, 2}) {
		t.Errorf("Succ(0) = %v", g.Succ(0))
	}
	if !reflect.DeepEqual(g.Pred(2), []int{0, 1}) {
		t.Errorf("Pred(2) = %v", g.Pred(2))
	}
	if !g.HasEdge(0, 1) || g.HasEdge(1, 0) {
		t.Errorf("HasEdge wrong: 0->1 %v, 1->0 %v", g.HasEdge(0, 1), g.HasEdge(1, 0))
	}
}

func TestOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range node")
		}
	}()
	g := New(2)
	g.AddEdge(0, 5)
}

func TestReverse(t *testing.T) {
	g := buildGraph(4, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}})
	r := g.Reverse()
	if r.M() != g.M() {
		t.Fatalf("reverse edge count %d != %d", r.M(), g.M())
	}
	for u := 0; u < 4; u++ {
		for _, v := range g.Succ(u) {
			if !r.HasEdge(v, u) {
				t.Errorf("edge %d->%d missing from reverse", v, u)
			}
		}
	}
}

func TestPostOrderLine(t *testing.T) {
	// 0 -> 1 -> 2: finish order must be 2, 1, 0.
	g := buildGraph(3, [][2]int{{0, 1}, {1, 2}})
	got := g.PostOrder()
	want := []int{2, 1, 0}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("PostOrder = %v, want %v", got, want)
	}
}

func TestPostOrderVisitsAll(t *testing.T) {
	g := buildGraph(6, [][2]int{{0, 1}, {2, 3}, {4, 4}})
	got := g.PostOrder()
	if len(got) != 6 {
		t.Fatalf("PostOrder covers %d of 6 nodes: %v", len(got), got)
	}
	seen := map[int]bool{}
	for _, u := range got {
		if seen[u] {
			t.Fatalf("node %d appears twice in %v", u, got)
		}
		seen[u] = true
	}
}

func TestTopoSortDAG(t *testing.T) {
	g := buildGraph(5, [][2]int{{0, 1}, {0, 2}, {1, 3}, {2, 3}, {3, 4}})
	order, ok := TopoSort(g)
	if !ok {
		t.Fatal("TopoSort reported cycle on a DAG")
	}
	pos := make([]int, 5)
	for i, u := range order {
		pos[u] = i
	}
	for u := 0; u < 5; u++ {
		for _, v := range g.Succ(u) {
			if pos[u] >= pos[v] {
				t.Errorf("edge %d->%d violates topo order %v", u, v, order)
			}
		}
	}
}

func TestTopoSortCycle(t *testing.T) {
	g := buildGraph(3, [][2]int{{0, 1}, {1, 2}, {2, 0}})
	if _, ok := TopoSort(g); ok {
		t.Fatal("TopoSort accepted a cyclic graph")
	}
	if IsAcyclic(g) {
		t.Fatal("IsAcyclic true for a 3-cycle")
	}
}

func TestIsAcyclicSelfLoop(t *testing.T) {
	g := buildGraph(2, [][2]int{{0, 0}})
	if IsAcyclic(g) {
		t.Fatal("self-loop not detected as cycle")
	}
}

func TestReachable(t *testing.T) {
	g := buildGraph(5, [][2]int{{0, 1}, {1, 2}, {3, 4}})
	r := Reachable(g, 0)
	want := []bool{true, true, true, false, false}
	if !reflect.DeepEqual(r, want) {
		t.Fatalf("Reachable(0) = %v, want %v", r, want)
	}
}

func sccCanonical(r *SCCResult) [][]int {
	comps := make([][]int, len(r.Components))
	for i, c := range r.Components {
		cc := append([]int(nil), c...)
		sort.Ints(cc)
		comps[i] = cc
	}
	sort.Slice(comps, func(i, j int) bool { return comps[i][0] < comps[j][0] })
	return comps
}

func TestSCCSimpleCycle(t *testing.T) {
	g := buildGraph(4, [][2]int{{0, 1}, {1, 2}, {2, 0}, {2, 3}})
	for name, r := range map[string]*SCCResult{
		"kosaraju": KosarajuSCC(g),
		"tarjan":   TarjanSCC(g),
	} {
		want := [][]int{{0, 1, 2}, {3}}
		if got := sccCanonical(r); !reflect.DeepEqual(got, want) {
			t.Errorf("%s: components = %v, want %v", name, got, want)
		}
		if !r.SameComponent(0, 2) || r.SameComponent(0, 3) {
			t.Errorf("%s: SameComponent wrong", name)
		}
	}
}

func TestSCCDisconnected(t *testing.T) {
	g := buildGraph(4, nil)
	r := KosarajuSCC(g)
	if r.NumComponents() != 4 {
		t.Fatalf("4 isolated nodes give %d components", r.NumComponents())
	}
}

// TestPaperFigure2Priorities reproduces the SCC structure of the paper's
// Figure 2(a) constraint graph, using only attribute-to-attribute edges
// (edges into level constants do not affect SCCs). Node numbering:
// P=0 B=1 C=2 D=3 E=4 F=5 G=6 M=7 I=8 O=9 N=10.
func TestPaperFigure2Priorities(t *testing.T) {
	const (
		P, B, C, D, E, F, G, M, I, O, N = 0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10
	)
	// Constraints with attribute rhs: ({E,F},M) (M,G)? -- in the paper M->G
	// is constraint (M,G) meaning λ(M) ≽ λ(G): edge M->G.
	edges := [][2]int{
		{E, M}, {F, M}, // ({E,F},M)
		{M, G},         // (M,G)
		{D, C}, {G, C}, // ({D,G},C)
		{C, E},         // (C,E)
		{C, F},         // (C,F)
		{F, B}, {I, B}, // ({F,I},B)
		{B, M}, // (B,M)
		{I, O}, // (I,O)
		{O, N}, // (O,N)
		{N, I}, // (N,I)
	}
	g := buildGraph(11, edges)
	pr := PrioritySCC(g)

	members := func(p int) []int { return pr.Sets[p] }
	// Expected component partition (priorities may permute among
	// incomparable components, so check the partition and property (3)).
	wantComps := map[int][]int{
		P: {P},
		D: {D},
		I: {I, O, N}, // ascending node order: 8, 9, 10
		B: {B, C, E, F, G, M},
	}
	for rep, want := range wantComps {
		got := members(pr.Priority[rep])
		if !reflect.DeepEqual(got, want) {
			t.Errorf("component of node %d = %v, want %v", rep, got, want)
		}
	}
	if pr.Max != 4 {
		t.Errorf("Max priority = %d, want 4", pr.Max)
	}
	// Property (3): priority(u) <= priority(v) for every reachable v.
	for u := 0; u < g.N(); u++ {
		reach := Reachable(g, u)
		for v, ok := range reach {
			if ok && pr.Priority[u] > pr.Priority[v] {
				t.Errorf("priority(%d)=%d > priority(%d)=%d but %d reaches %d",
					u, pr.Priority[u], v, pr.Priority[v], u, v)
			}
		}
	}
	// Dependency chains from the paper: D reaches C (via {D,G}->C) and I
	// reaches B (via {F,I}->B), so priority(D) < priority(C) and
	// priority(I) < priority(B); the paper's numbering [1]={D} [2]={I,O,N}
	// [3]={B,..,M} [4]={P} satisfies the same inequalities.
	if !(pr.Priority[D] < pr.Priority[C] && pr.Priority[I] < pr.Priority[B]) {
		t.Errorf("priorities D=%d C=%d I=%d B=%d violate dependency order",
			pr.Priority[D], pr.Priority[C], pr.Priority[I], pr.Priority[B])
	}
}

func randomGraph(rng *rand.Rand, n, m int) *Digraph {
	g := New(n)
	for i := 0; i < m; i++ {
		g.AddEdge(rng.Intn(n), rng.Intn(n))
	}
	return g
}

// TestKosarajuVsTarjan differentially tests the two SCC implementations on
// random graphs: same partition, and Kosaraju's discovery order is a
// topological order of the condensation.
func TestKosarajuVsTarjan(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(30)
		m := rng.Intn(3 * n)
		g := randomGraph(rng, n, m)
		k := KosarajuSCC(g)
		tr := TarjanSCC(g)
		if !reflect.DeepEqual(sccCanonical(k), sccCanonical(tr)) {
			t.Fatalf("trial %d: partitions differ\nkosaraju %v\ntarjan %v",
				trial, k.Components, tr.Components)
		}
		for _, e := range CondensationEdges(g, k) {
			if e[0] >= e[1] {
				t.Fatalf("trial %d: condensation edge %v not in discovery order", trial, e)
			}
		}
	}
}

// TestPriorityProperties property-tests the three priority-set properties
// claimed in §4 of the paper on random graphs.
func TestPriorityProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 150; trial++ {
		n := 1 + rng.Intn(25)
		g := randomGraph(rng, n, rng.Intn(3*n))
		pr := PrioritySCC(g)
		// (1) every node has exactly one priority in 1..Max.
		counts := make([]int, n)
		for p := 1; p <= pr.Max; p++ {
			for _, u := range pr.Sets[p] {
				counts[u]++
				if pr.Priority[u] != p {
					t.Fatalf("trial %d: Sets/Priority disagree for node %d", trial, u)
				}
			}
		}
		for u, c := range counts {
			if c != 1 {
				t.Fatalf("trial %d: node %d in %d priority sets", trial, u, c)
			}
		}
		// (2) same priority iff mutually reachable.
		reach := make([][]bool, n)
		for u := 0; u < n; u++ {
			reach[u] = Reachable(g, u)
		}
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				mutual := reach[u][v] && reach[v][u]
				same := pr.Priority[u] == pr.Priority[v]
				if mutual != same {
					t.Fatalf("trial %d: nodes %d,%d mutual=%v same-priority=%v",
						trial, u, v, mutual, same)
				}
				// (3) priority no greater than that of reachable nodes.
				if reach[u][v] && pr.Priority[u] > pr.Priority[v] {
					t.Fatalf("trial %d: property (3) violated for %d->%d", trial, u, v)
				}
			}
		}
	}
}

// TestPostOrderProperty checks via testing/quick that on random DAGs the
// post-order is a reverse topological order.
func TestPostOrderProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(20)
		g := New(n)
		// Random DAG: edges only from lower to higher node index.
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if rng.Intn(4) == 0 {
					g.AddEdge(u, v)
				}
			}
		}
		pos := make([]int, n)
		for i, u := range g.PostOrder() {
			pos[u] = i
		}
		for u := 0; u < n; u++ {
			for _, v := range g.Succ(u) {
				if pos[v] >= pos[u] {
					return false // successor must finish before u
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCondensationEdgesDedup(t *testing.T) {
	g := buildGraph(4, [][2]int{{0, 1}, {1, 0}, {0, 2}, {1, 2}, {2, 3}, {2, 3}})
	scc := KosarajuSCC(g)
	edges := CondensationEdges(g, scc)
	if len(edges) != 2 {
		t.Fatalf("condensation edges = %v, want 2 deduped edges", edges)
	}
}

func BenchmarkKosarajuSCC(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := randomGraph(rng, 10000, 30000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		KosarajuSCC(g)
	}
}

func BenchmarkTarjanSCC(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := randomGraph(rng, 10000, 30000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		TarjanSCC(g)
	}
}
