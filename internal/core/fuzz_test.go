package core

import (
	"context"
	"errors"
	"testing"

	"minup/internal/constraint"
	"minup/internal/lattice"
)

const fuzzChain = "chain mil\nlevels U C S TS\n"

const fuzzExplicit = `explicit fig1b
elements 1 L1 L2 L3 L4 L5 L6
cover L6 L5 L4
cover L5 L3
cover L4 L2 L3
cover L3 L1
cover L2 L1
cover L1 1
`

// FuzzSolve drives arbitrary lattice and constraint text through the whole
// pipeline — parse, compile, solve — and holds the solver to its
// robustness contract: it never panics (a panic converted to ErrInternal
// is still a failure here), rejects unsolvable instances with a typed
// error, and any assignment it does return satisfies every constraint.
// Inputs are size-bounded so the fuzzer explores shapes, not scale.
func FuzzSolve(f *testing.F) {
	f.Add(fuzzChain, "a >= S\nlub(a, b) >= TS\nc >= a")
	f.Add(fuzzChain, "a >= b\nb >= c\nc >= a\nlub(a, c) >= S")
	f.Add(fuzzChain, "attrs x y z\nx >= y\nupper y C\nlub(x, z) >= TS")
	f.Add(fuzzExplicit, "a >= L3\nlub(a, b, c) >= L6\nb >= c")
	f.Add("mls m\nlevels S TS\ncategories army nuke\n", "a >= S\nlub(a, b) >= TS:army,nuke")
	f.Add("semilattice s\nelements A B C\ncover A B\ncover A C\n", "x >= B\nlub(x, y) >= A")
	f.Add("chain c\nlevels one\n", "a >= one")
	f.Add(fuzzChain, "")
	f.Add("", "a >= S")
	f.Fuzz(func(t *testing.T, latText, consText string) {
		if len(latText) > 2048 || len(consText) > 4096 {
			return
		}
		lat, err := lattice.ParseString(latText)
		if err != nil {
			return
		}
		// Keep the search in interesting territory: tiny lattices, small
		// constraint sets. An MLS lattice's element count is exponential in
		// its categories, so bound by height before enumerating anything.
		if lat.Height() > 16 {
			return
		}
		if en, ok := lat.(lattice.Enumerable); ok && len(en.Elements()) > 64 {
			return
		}
		s := constraint.NewSet(lat)
		if err := s.ParseString(consText); err != nil {
			return
		}
		if s.NumAttrs() > 64 || len(s.Constraints()) > 128 {
			return
		}
		c := s.Compile()
		res, err := SolveContext(context.Background(), c, Options{})
		if err != nil {
			if errors.Is(err, ErrInternal) {
				t.Fatalf("solver panicked on lat=%q cons=%q: %v", latText, consText, err)
			}
			if !errors.Is(err, ErrUnsolvable) {
				t.Fatalf("untyped solve error on lat=%q cons=%q: %v", latText, consText, err)
			}
			return
		}
		if verr := Verify(s, res.Assignment); verr != nil {
			t.Fatalf("solve of lat=%q cons=%q returned a non-satisfying assignment: %v", latText, consText, verr)
		}
	})
}
