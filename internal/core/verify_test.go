package core

import (
	"strings"
	"testing"

	"minup/internal/baseline"
	"minup/internal/constraint"
	"minup/internal/lattice"
	"minup/internal/workload"
)

// TestProbeMinimalityAgreesWithOracle differentially tests the polynomial
// probe against the exhaustive oracle on many random small instances.
func TestProbeMinimalityAgreesWithOracle(t *testing.T) {
	lats := map[string]lattice.Lattice{
		"figure1b": lattice.FigureOneB(),
		"chain4":   lattice.MustChain("mil", "U", "C", "S", "TS"),
	}
	for name, lat := range lats {
		for seed := int64(0); seed < 50; seed++ {
			s := workload.MustConstraints(lat, workload.ConstraintSpec{
				Seed: seed, NumAttrs: 5, NumConstraints: 8, MaxLHS: 3,
				LevelRHSFraction: 0.4, Cyclic: seed%2 == 0,
			})
			// Probe the solver's own answer (must be minimal)...
			res := MustSolve(s, Options{})
			minProbe, w, err := ProbeMinimality(s, res.Assignment)
			if err != nil {
				t.Fatal(err)
			}
			minOracle, err := baseline.IsMinimal(s, res.Assignment)
			if err != nil {
				t.Fatal(err)
			}
			if minProbe != minOracle {
				t.Fatalf("%s seed=%d: probe=%v oracle=%v on solver output (witness %+v)",
					name, seed, minProbe, minOracle, w)
			}
			if !minProbe {
				t.Fatalf("%s seed=%d: solver output not minimal", name, seed)
			}
			// ...and a deliberately inflated non-minimal solution.
			inflated := res.Assignment.Clone()
			bumped := false
			for i := range inflated {
				if up := lat.CoveredBy(inflated[i]); len(up) > 0 {
					inflated[i] = up[0]
					bumped = true
					break
				}
			}
			if !bumped || !s.Satisfies(inflated) {
				continue // inflation violated nothing to probe, or all at top
			}
			minProbe, w, err = ProbeMinimality(s, inflated)
			if err != nil {
				t.Fatal(err)
			}
			minOracle, err = baseline.IsMinimal(s, inflated)
			if err != nil {
				t.Fatal(err)
			}
			if minProbe != minOracle {
				t.Fatalf("%s seed=%d: inflated: probe=%v oracle=%v", name, seed, minProbe, minOracle)
			}
			if !minProbe {
				if w == nil || !inflated.Dominates(lat, w.Assignment) {
					t.Fatalf("%s seed=%d: witness not below inflated", name, seed)
				}
				if w.Assignment.Equal(inflated) {
					t.Fatalf("%s seed=%d: witness equals input", name, seed)
				}
				if !s.Satisfies(w.Assignment) {
					t.Fatalf("%s seed=%d: witness not a solution", name, seed)
				}
			}
		}
	}
}

// TestProbeMinimalityRejectsNonSolutions checks the input validation.
func TestProbeMinimalityRejectsNonSolutions(t *testing.T) {
	lat := lattice.MustChain("c", "lo", "hi")
	s := constraint.NewSet(lat)
	a := s.MustAttr("a")
	s.MustAdd([]constraint.Attr{a}, constraint.LevelRHS(lat.Top()))
	if _, _, err := ProbeMinimality(s, constraint.Assignment{lat.Bottom()}); err == nil {
		t.Fatal("non-solution accepted")
	}
}

// TestProbeMinimalityLarge runs the probe on an instance far beyond the
// exhaustive oracle's reach.
func TestProbeMinimalityLarge(t *testing.T) {
	lat := lattice.MustMLS("mls", []string{"U", "S", "TS"}, []string{"a", "b", "c", "d"})
	s := workload.MustConstraints(lat, workload.ConstraintSpec{
		Seed: 4, NumAttrs: 300, NumConstraints: 700, MaxLHS: 3,
		LevelRHSFraction: 0.3, Cyclic: true,
	})
	res := MustSolve(s, Options{})
	min, w, err := ProbeMinimality(s, res.Assignment)
	if err != nil {
		t.Fatal(err)
	}
	if !min {
		t.Fatalf("solver output not minimal: witness %+v", w)
	}
}

// TestExplain checks binding-constraint reporting on the Figure 2
// instance.
func TestExplain(t *testing.T) {
	f := constraint.NewFigure2()
	res := MustSolve(f.Set, Options{})

	// B sits at L5 because of its constant constraint (B, L5).
	ex, err := Explain(f.Set, res.Assignment, f.B)
	if err != nil {
		t.Fatal(err)
	}
	if len(ex.Bindings) == 0 {
		t.Fatal("no bindings for B")
	}
	found := false
	for _, b := range ex.Bindings {
		if strings.Contains(b.Text, "B >= L5") {
			found = true
		}
		if b.Constraint < 0 {
			t.Errorf("binding without constraint index: %+v", b)
		}
	}
	if !found {
		t.Errorf("B's constant bound not among bindings: %+v", ex.Bindings)
	}

	// P at L1 is pinned by (P, L1).
	ex, err = Explain(f.Set, res.Assignment, f.P)
	if err != nil {
		t.Fatal(err)
	}
	if len(ex.Bindings) != 1 || !strings.Contains(ex.Bindings[0].Text, "P >= L1") {
		t.Errorf("P bindings = %+v", ex.Bindings)
	}

	// Formatting.
	out := FormatExplanation(f.Set, ex)
	if !strings.Contains(out, "P = L1") || !strings.Contains(out, "cannot lower") {
		t.Errorf("format = %q", out)
	}

	// An attribute at bottom explains trivially.
	lat := lattice.MustChain("c", "lo", "hi")
	s2 := constraint.NewSet(lat)
	x := s2.MustAttr("x")
	r2 := MustSolve(s2, Options{})
	ex2, err := Explain(s2, r2.Assignment, x)
	if err != nil {
		t.Fatal(err)
	}
	if len(ex2.Bindings) != 0 {
		t.Errorf("bottom attribute has bindings: %+v", ex2.Bindings)
	}
	if !strings.Contains(FormatExplanation(s2, ex2), "bottom") {
		t.Error("bottom formatting missing")
	}
}

// TestExplainNonMinimal checks that Explain flags lowerable directions.
func TestExplainNonMinimal(t *testing.T) {
	lat := lattice.MustChain("c", "lo", "mid", "hi")
	s := constraint.NewSet(lat)
	a := s.MustAttr("a")
	midLvl, _ := lat.ParseLevel("mid")
	s.MustAdd([]constraint.Attr{a}, constraint.LevelRHS(midLvl))
	if _, err := Explain(s, constraint.Assignment{lat.Top()}, a); err == nil {
		t.Fatal("non-minimal assignment accepted")
	}
}
