package core

import (
	"strconv"
	"time"

	"minup/internal/constraint"
	"minup/internal/lattice"
	"minup/internal/obs"
)

// spanSink reconstructs a span tree from the solver's event stream. Solver
// events report work *after* it happened, so every span is opened
// retroactively at the previous event's timestamp and closed at the current
// one: consecutive events partition the solve's wall time into leaf spans.
//
// The tree mirrors the paper's cost model (Theorem 5.2 is a product of
// per-SCC work and lattice-op cost): one child of the solve span per
// priority set ("scc <p>", in condensation order — BigLoop visits priority
// sets in strictly descending order and Try propagation never leaves the
// current set, so SCC event runs are contiguous), with the per-step leaves
// nested inside. Each EventTryStep becomes a "descent" span, so the number
// of descent spans in the tree equals Stats.TrySteps.
//
// A spanSink is used by one solve session at a time and needs no locking of
// its own.
type spanSink struct {
	root *obs.Span // the solve span
	set  *constraint.Set
	lat  lattice.Lattice

	scc     *obs.Span // open per-SCC span, nil before the first event
	sccID   int32
	last    time.Time // timestamp of the previous event
	current *obs.Span // parent for leaf spans (scc, or root when SCC unknown)
}

func newSpanSink(root *obs.Span, c *constraint.Compiled) *spanSink {
	return &spanSink{
		root: root,
		set:  c.Set(),
		lat:  c.Lattice(),
		last: root.StartTime(),
	}
}

// Event turns one solver event into a leaf span [previous event, now].
func (s *spanSink) Event(e obs.Event) {
	now := s.root.Tracer().Now
	var t time.Time
	if now != nil {
		t = now()
	} else {
		t = time.Now()
	}
	parent := s.root
	if e.SCC >= 0 {
		if s.scc == nil || e.SCC != s.sccID {
			if s.scc != nil {
				s.scc.EndAt(s.last)
			}
			s.scc = s.root.ChildAt(sccName(e.SCC), s.last)
			s.sccID = e.SCC
		}
		parent = s.scc
	}
	leaf := parent.ChildAt(s.leafName(e), s.last)
	if e.Attr >= 0 {
		leaf.SetAttrStr("attr", s.set.AttrName(constraint.Attr(e.Attr)))
	}
	leaf.SetAttrStr("level", s.lat.FormatLevel(lattice.Level(e.Level)))
	leaf.EndAt(t)
	s.last = t
}

// close ends the open SCC span at the last event's timestamp. The solve
// span itself is ended by SolveContext.
func (s *spanSink) close() {
	if s.scc != nil {
		s.scc.EndAt(s.last)
		s.scc = nil
	}
}

func (s *spanSink) leafName(e obs.Event) string {
	if e.Kind == obs.EventTryStep {
		// The per-minlevel-descent unit: one constraint check inside Try.
		return "descent"
	}
	return e.Kind.String()
}

func sccName(p int32) string {
	return "scc " + strconv.Itoa(int(p))
}

// annotate records the solve's headline stats on the solve span.
func (s *spanSink) annotate(st *Stats, err error) {
	s.root.SetAttr("tries", int64(st.Tries))
	s.root.SetAttr("failed_tries", int64(st.FailedTries))
	s.root.SetAttr("try_steps", int64(st.TrySteps))
	s.root.SetAttr("minlevel_calls", int64(st.MinlevelCalls))
	s.root.SetAttr("attrs_processed", int64(st.AttrsProcessed))
	s.root.SetAttr("collapses", int64(st.Collapses))
	if err != nil {
		s.root.SetAttrStr("error", err.Error())
	}
}
