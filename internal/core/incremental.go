package core

import (
	"context"
	"fmt"
	"time"

	"minup/internal/constraint"
	"minup/internal/obs"
)

// Incremental repair: classification constraints evolve as policies are
// refined, and re-solving a large instance from scratch for every added
// constraint is wasteful. Repair takes a minimal solution of a prefix of
// the constraint set and the full (extended) set, and recomputes only the
// attributes whose levels can be forced upward by the new constraints —
// the ancestors, in the constraint graph, of the violated constraints'
// left-hand sides. Unaffected attributes keep their levels.
//
// Guarantees: the result satisfies the extended set, and equals the base
// solution when the additions are already satisfied (in that case the base
// remains minimal: shrinking the solution space cannot create lower
// solutions). When additions are violated, the recomputed region is
// labeled minimally *given* the frozen complement; in rare entangled cases
// a globally lower choice may exist, so callers needing certified global
// minimality set VerifyMinimal, which probes the result and falls back to
// a full solve if a witness is found.
//
// Repair inherently works on a mutable Set (its whole point is absorbing
// mutation), so it takes the Set, compiles a fresh snapshot per call, and
// runs in a pooled session.

// RepairOptions tunes Repair.
type RepairOptions struct {
	// VerifyMinimal probes the repaired solution for global minimality and
	// falls back to a full Solve when the probe finds a strictly lower
	// solution.
	VerifyMinimal bool
}

// RepairStats reports how much work the repair did.
type RepairStats struct {
	// ViolatedConstraints counts the added constraints the base solution
	// violated.
	ViolatedConstraints int
	// Recomputed counts the attributes whose levels were recomputed.
	Recomputed int
	// FellBack reports that a full solve was performed (verification
	// found a lower solution, or the instance has upper bounds).
	FellBack bool
	// Solve carries the operation counts of the solving work the repair
	// performed: the partial solve over the affected region, or the full
	// solve when the repair fell back.
	Solve Stats
	// Duration is the wall time of the whole repair, including snapshot
	// compilation, violation scanning, and any fallback solve.
	Duration time.Duration
}

// Repair extends a minimal solution after constraints were appended to the
// set. base must be a satisfying assignment for the first baseCount
// constraints of s (typically the Result.Assignment of a previous Solve);
// everything after baseCount is treated as new. Sets with §6 upper bounds
// always fall back to a full solve (the preprocessing pass must see every
// constraint).
func Repair(s *constraint.Set, baseCount int, base constraint.Assignment, opt RepairOptions) (constraint.Assignment, *RepairStats, error) {
	return RepairContext(context.Background(), s, baseCount, base, opt)
}

// RepairContext is Repair with cancellation: the context is polled during
// the partial solve and any fallback full solve, and a canceled context
// yields an error satisfying errors.Is(err, ErrCanceled).
func RepairContext(ctx context.Context, s *constraint.Set, baseCount int, base constraint.Assignment, opt RepairOptions) (constraint.Assignment, *RepairStats, error) {
	stats := &RepairStats{}
	start := time.Now()
	defer func() { stats.Duration = time.Since(start) }()
	// Tracing: wrap the whole repair (violation scan, reachability, partial
	// solve, fallback) in a "repair" span; inner solves nest under it.
	if parent := obs.SpanFromContext(ctx); parent != nil {
		sp := parent.Child("repair")
		ctx = obs.ContextWithSpan(ctx, sp)
		defer func() {
			sp.SetAttr("violated_constraints", int64(stats.ViolatedConstraints))
			sp.SetAttr("recomputed", int64(stats.Recomputed))
			if stats.FellBack {
				sp.SetAttrStr("fell_back", "true")
			}
			sp.End()
		}()
	}
	if ctx.Err() != nil {
		return nil, stats, canceled(ctx)
	}
	cons := s.Constraints()
	if baseCount < 0 || baseCount > len(cons) {
		return nil, stats, fmt.Errorf("core: baseCount %d out of range [0,%d]", baseCount, len(cons))
	}
	if len(base) != s.NumAttrs() {
		return nil, stats, fmt.Errorf("core: base assignment covers %d of %d attributes", len(base), s.NumAttrs())
	}
	c := s.Snapshot()
	if c.HasUpperBounds() {
		stats.FellBack = true
		res, err := SolveContext(ctx, c, Options{})
		if err != nil {
			return nil, stats, err
		}
		stats.Solve = res.Stats
		return res.Assignment, stats, nil
	}
	for _, cn := range cons[:baseCount] {
		if !s.SatisfiedBy(base, cn) {
			return nil, stats, fmt.Errorf("core: base assignment violates prefix constraint %s", s.Format(cn))
		}
	}

	// Seed: left-hand sides of violated new constraints.
	lat := s.Lattice()
	seed := make(map[constraint.Attr]bool)
	for _, cn := range cons[baseCount:] {
		if s.SatisfiedBy(base, cn) {
			continue
		}
		stats.ViolatedConstraints++
		for _, a := range cn.LHS {
			seed[a] = true
		}
	}
	if stats.ViolatedConstraints == 0 {
		return base.Clone(), stats, nil
	}

	// Affected = attributes that reach a seed attribute in the constraint
	// graph (raising a seed can violate constraints whose rhs it is,
	// pushing the raise to their lhs — i.e. backward along edges).
	g := c.Graph()
	affected := make([]bool, s.NumAttrs())
	stack := make([]int, 0, len(seed))
	for a := range seed {
		affected[a] = true
		stack = append(stack, int(a))
	}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, u := range g.Pred(v) {
			if !affected[u] {
				affected[u] = true
				stack = append(stack, u)
			}
		}
	}
	for _, isAff := range affected {
		if isAff {
			stats.Recomputed++
		}
	}

	// Partial solve: unaffected attributes are frozen done at their base
	// levels; affected ones restart at ⊤ and run through BigLoop in
	// (restricted) priority order. The compiled priority structure is
	// reused — restricted to the affected attributes it is a valid
	// evaluation order for the sub-instance.
	popt := Options{}
	var psink *spanSink
	if sp := obs.SpanFromContext(ctx); sp != nil {
		psink = newSpanSink(sp.Child("partial-solve"), c)
		popt.Sink = psink
	}
	sv := acquireSession(ctx, c, popt)
	defer sv.release()
	defer func() {
		if psink != nil {
			psink.close()
			psink.root.End()
		}
	}()
	sv.lambda = base.Clone()
	for a := 0; a < s.NumAttrs(); a++ {
		if affected[a] {
			sv.lambda[a] = lat.Top()
		} else {
			sv.done[a] = true
		}
	}
	for ci, cn := range cons {
		if cn.Simple() {
			continue
		}
		n := 0
		for _, a := range cn.LHS {
			if affected[a] {
				n++
			}
		}
		sv.unlabeled[ci] = n
	}
	for p := sv.pr.Max; p >= 1; p-- {
		if sv.ctx.Err() != nil {
			return nil, stats, canceled(sv.ctx)
		}
		for _, node := range sv.pr.Sets[p] {
			if affected[node] {
				if err := sv.processAttr(constraint.Attr(node)); err != nil {
					return nil, stats, err
				}
			}
		}
	}

	stats.Solve = sv.stats
	if psink != nil {
		psink.annotate(&sv.stats, nil)
	}
	if v := s.Violations(sv.lambda); v != nil {
		return nil, stats, fmt.Errorf("core: internal error: repair produced violations (%s)", v[0])
	}
	if opt.VerifyMinimal {
		minimal, _, err := ProbeMinimalityContext(ctx, c, sv.lambda)
		if err != nil {
			return nil, stats, err
		}
		if !minimal {
			stats.FellBack = true
			res, err := SolveContext(ctx, c, Options{})
			if err != nil {
				return nil, stats, err
			}
			stats.Solve = res.Stats
			return res.Assignment, stats, nil
		}
	}
	return sv.lambda, stats, nil
}
