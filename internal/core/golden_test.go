package core

import (
	"testing"

	"minup/internal/constraint"
)

// figure2Golden is the full reproduced Figure 2(b) table, pinned verbatim
// so any behavioral drift in the solver, priority computation, lattice
// descent order, or trace rendering fails loudly. It matches the paper's
// table cell for cell, with two documented additions: explicit
// "assign"/"done" rows for every attribute and the forced failing
// try(O,L3) the paper's illustrative table omits.
const figure2Golden = `step         P   B   C   E   F   G   M   I   O   N   D
-----------  --  --  --  --  --  --  --  --  --  --  --
initial      L6  L6  L6  L6  L6  L6  L6  L6  L6  L6  L6
P assign     L1  L6  L6  L6  L6  L6  L6  L6  L6  L6  L6
try(B,L5)    L1  L5  L6  L6  L6  L5  L5  L6  L6  L6  L6
B done       L1  L5  L6  L6  L6  L5  L5  L6  L6  L6  L6
try(C,L4)    L1  L5  L4  L4  L4  L3  L3  L6  L6  L6  L6
C done       L1  L5  L4  L4  L4  L3  L3  L6  L6  L6  L6
try(E,L2)    L1  L5  L4  L2  L4  L3  L3  L6  L6  L6  L6
try(E,L1)    L1  L5  L4  L1  L4  L3  L3  L6  L6  L6  L6
E done       L1  L5  L4  L1  L4  L3  L3  L6  L6  L6  L6
try(F,L2) F  L1  L5  L4  L1  L4  L3  L3  L6  L6  L6  L6
F done       L1  L5  L4  L1  L4  L3  L3  L6  L6  L6  L6
G assign     L1  L5  L4  L1  L4  L1  L3  L6  L6  L6  L6
M assign     L1  L5  L4  L1  L4  L1  L3  L6  L6  L6  L6
try(I,L5)    L1  L5  L4  L1  L4  L1  L3  L5  L5  L5  L6
I done       L1  L5  L4  L1  L4  L1  L3  L5  L5  L5  L6
try(O,L3) F  L1  L5  L4  L1  L4  L1  L3  L5  L5  L5  L6
O done       L1  L5  L4  L1  L4  L1  L3  L5  L5  L5  L6
N assign     L1  L5  L4  L1  L4  L1  L3  L5  L5  L5  L6
D assign     L1  L5  L4  L1  L4  L1  L3  L5  L5  L5  L4
`

// TestFigure2GoldenTrace pins the complete reproduced trace table.
func TestFigure2GoldenTrace(t *testing.T) {
	f := constraint.NewFigure2()
	res := MustSolve(f.Set, Options{RecordTrace: true})
	got := res.Trace.Table()
	if got != figure2Golden {
		t.Errorf("Figure 2(b) trace drifted.\n--- got ---\n%s--- want ---\n%s", got, figure2Golden)
	}
}
