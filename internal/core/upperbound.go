package core

import (
	"fmt"
	"strings"

	"minup/internal/constraint"
	"minup/internal/lattice"
)

// InconsistencyError reports that a constraint set mixing §6 upper-bound
// constraints with lower-bound constraints admits no solution. Conflicts
// lists human-readable descriptions of the constraints that clash.
type InconsistencyError struct {
	Conflicts []string
}

func (e *InconsistencyError) Error() string {
	return fmt.Sprintf("core: constraints are inconsistent: %s", strings.Join(e.Conflicts, "; "))
}

// deriveUpperBounds performs the §6 preprocessing phase: every attribute
// starts at ⊤; explicit upper bounds are glb-merged onto their attributes
// and pushed forward through the constraint graph (a complex constraint
// propagates the lub of its left-hand side). An inconsistency is detected
// when the bound arriving at a level constant fails to dominate it. On
// success the returned assignment labels each attribute at its maximum
// allowed level, and that assignment satisfies every lower-bound
// constraint — the starting point for the modified BigLoop.
//
// The fixpoint is computed with a worklist over constraints; each
// attribute's bound strictly decreases on every update, so the pass
// terminates after at most H updates per attribute, O(S·H·c) in the worst
// case and O(S·c) when bounds settle in one pass as the paper assumes.
func deriveUpperBounds(s *constraint.Set) (constraint.Assignment, error) {
	lat := s.Lattice()
	n := s.NumAttrs()
	ub := make(constraint.Assignment, n)
	for i := range ub {
		ub[i] = lat.Top()
	}
	for _, u := range s.UpperBounds() {
		ub[u.Attr] = lat.Glb(ub[u.Attr], u.Level)
	}

	cons := s.Constraints()
	onLHS := s.ConstraintsOn()

	// Worklist of constraint indices whose lhs bound may have tightened.
	inQueue := make([]bool, len(cons))
	queue := make([]int, 0, len(cons))
	push := func(ci int) {
		if !inQueue[ci] {
			inQueue[ci] = true
			queue = append(queue, ci)
		}
	}
	for ci := range cons {
		push(ci)
	}

	var conflicts []string
	for len(queue) > 0 {
		ci := queue[0]
		queue = queue[1:]
		inQueue[ci] = false
		c := cons[ci]
		bound := lat.Bottom()
		for _, a := range c.LHS {
			bound = lat.Lub(bound, ub[a])
		}
		if c.RHS.IsLevel {
			if !lat.Dominates(bound, c.RHS.Level) {
				conflicts = append(conflicts, fmt.Sprintf(
					"upper bounds cap lub of lhs at %s, below required %s in %q",
					lat.FormatLevel(bound), lat.FormatLevel(c.RHS.Level), s.Format(c)))
			}
			continue
		}
		rhs := c.RHS.Attr
		merged := lat.Glb(ub[rhs], bound)
		if merged != ub[rhs] {
			ub[rhs] = merged
			for _, dep := range onLHS[rhs] {
				push(dep)
			}
		}
	}
	if conflicts != nil {
		return nil, &InconsistencyError{Conflicts: conflicts}
	}
	return ub, nil
}

// DeriveUpperBounds exposes the §6 preprocessing pass for inspection and
// testing: the firm maximum level of every attribute, or an
// *InconsistencyError.
func DeriveUpperBounds(s *constraint.Set) (constraint.Assignment, error) {
	return deriveUpperBounds(s)
}

// CheckSolvable reports nil when the constraint set has a solution.
// Lower-bound-only sets are always solvable; mixed sets are solvable iff
// the §6 preprocessing pass finds no inconsistency.
func CheckSolvable(s *constraint.Set) error {
	if len(s.UpperBounds()) == 0 {
		return nil
	}
	_, err := deriveUpperBounds(s)
	return err
}

// SemiLatticeDiagnosis interprets a solve over a lattice completed from a
// semi-lattice by lattice.CompleteToLattice (§6): attributes pinned at the
// injected dummy ⊤ have unsatisfiable requirements (no real level is high
// enough), and attributes resting at the injected dummy ⊥ were effectively
// unconstrained (which the paper suggests flagging as input
// incompleteness).
type SemiLatticeDiagnosis struct {
	// Unsatisfiable lists attributes stuck at the dummy top.
	Unsatisfiable []constraint.Attr
	// Unconstrained lists attributes resting at the dummy bottom.
	Unconstrained []constraint.Attr
}

// OK reports whether the solution uses no dummy level, i.e. is a genuine
// classification into the original semi-lattice.
func (d *SemiLatticeDiagnosis) OK() bool {
	return len(d.Unsatisfiable) == 0 && len(d.Unconstrained) == 0
}

// DiagnoseSemiLattice inspects a result computed over a completed
// semi-lattice. The lattice of the constraint set must be an
// *lattice.Explicit produced by lattice.CompleteToLattice.
func DiagnoseSemiLattice(s *constraint.Set, res *Result) (*SemiLatticeDiagnosis, error) {
	e, ok := s.Lattice().(*lattice.Explicit)
	if !ok {
		return nil, fmt.Errorf("core: semi-lattice diagnosis requires an explicit lattice, have %T", s.Lattice())
	}
	d := &SemiLatticeDiagnosis{}
	for _, a := range s.Attrs() {
		lvl := res.Assignment[a]
		if !lattice.IsDummy(e, lvl) {
			continue
		}
		if lvl == e.Top() {
			d.Unsatisfiable = append(d.Unsatisfiable, a)
		} else {
			d.Unconstrained = append(d.Unconstrained, a)
		}
	}
	return d, nil
}
