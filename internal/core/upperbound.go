package core

import (
	"context"
	"fmt"
	"strings"

	"minup/internal/constraint"
	"minup/internal/lattice"
)

// The §6 preprocessing pass itself (the firm-bound fixpoint) runs at
// compile time — see constraint.Compiled and upperBoundFixpoint in the
// constraint package — so that repeated solves of one compiled set never
// repeat it. This file exposes the result and layers the inconsistency
// diagnosis on top.

// InconsistencyError reports that a constraint set mixing §6 upper-bound
// constraints with lower-bound constraints admits no solution. Conflicts
// lists human-readable descriptions of the constraints that clash. It
// satisfies errors.Is(err, ErrUnsolvable).
type InconsistencyError struct {
	Conflicts []string
}

func (e *InconsistencyError) Error() string {
	return fmt.Sprintf("core: constraints are inconsistent: %s", strings.Join(e.Conflicts, "; "))
}

// Unwrap ties the diagnosis into the typed error taxonomy.
func (e *InconsistencyError) Unwrap() error { return ErrUnsolvable }

// DeriveUpperBoundsContext returns the §6 preprocessing result for a
// compiled set: the firm maximum level of every attribute, or an
// *InconsistencyError. Sets without upper bounds report every attribute
// bounded by ⊤. The fixpoint itself was computed at compile time; the
// context is only consulted for prompt cancellation.
func DeriveUpperBoundsContext(ctx context.Context, c *constraint.Compiled) (constraint.Assignment, error) {
	if c == nil {
		return nil, ErrNotCompiled
	}
	if err := ctx.Err(); err != nil {
		return nil, canceled(ctx)
	}
	ub, conflicts := c.UpperBoundFixpoint()
	if conflicts != nil {
		return nil, &InconsistencyError{Conflicts: conflicts}
	}
	if ub == nil {
		// No upper bounds: every attribute may sit at ⊤.
		lat := c.Lattice()
		ub = make(constraint.Assignment, c.NumAttrs())
		for i := range ub {
			ub[i] = lat.Top()
		}
	}
	return ub, nil
}

// DeriveUpperBounds exposes the §6 preprocessing pass for inspection and
// testing: the firm maximum level of every attribute, or an
// *InconsistencyError. One-shot compatibility path; compiles a snapshot
// per call.
func DeriveUpperBounds(s *constraint.Set) (constraint.Assignment, error) {
	return DeriveUpperBoundsContext(context.Background(), s.Snapshot())
}

// CheckSolvable reports nil when the constraint set has a solution.
// Lower-bound-only sets are always solvable; mixed sets are solvable iff
// the §6 preprocessing pass finds no inconsistency.
func CheckSolvable(s *constraint.Set) error {
	if len(s.UpperBounds()) == 0 {
		return nil
	}
	_, err := DeriveUpperBounds(s)
	return err
}

// CheckSolvableCompiled is CheckSolvable against a compiled snapshot; it
// performs no work beyond reading the compile-time fixpoint.
func CheckSolvableCompiled(c *constraint.Compiled) error {
	if c == nil {
		return ErrNotCompiled
	}
	if _, conflicts := c.UpperBoundFixpoint(); conflicts != nil {
		return &InconsistencyError{Conflicts: conflicts}
	}
	return nil
}

// SemiLatticeDiagnosis interprets a solve over a lattice completed from a
// semi-lattice by lattice.CompleteToLattice (§6): attributes pinned at the
// injected dummy ⊤ have unsatisfiable requirements (no real level is high
// enough), and attributes resting at the injected dummy ⊥ were effectively
// unconstrained (which the paper suggests flagging as input
// incompleteness).
type SemiLatticeDiagnosis struct {
	// Unsatisfiable lists attributes stuck at the dummy top.
	Unsatisfiable []constraint.Attr
	// Unconstrained lists attributes resting at the dummy bottom.
	Unconstrained []constraint.Attr
}

// OK reports whether the solution uses no dummy level, i.e. is a genuine
// classification into the original semi-lattice.
func (d *SemiLatticeDiagnosis) OK() bool {
	return len(d.Unsatisfiable) == 0 && len(d.Unconstrained) == 0
}

// DiagnoseSemiLattice inspects a result computed over a completed
// semi-lattice. The lattice of the constraint set must be an
// *lattice.Explicit produced by lattice.CompleteToLattice.
func DiagnoseSemiLattice(s *constraint.Set, res *Result) (*SemiLatticeDiagnosis, error) {
	e, ok := s.Lattice().(*lattice.Explicit)
	if !ok {
		return nil, fmt.Errorf("core: semi-lattice diagnosis requires an explicit lattice, have %T", s.Lattice())
	}
	d := &SemiLatticeDiagnosis{}
	for _, a := range s.Attrs() {
		lvl := res.Assignment[a]
		if !lattice.IsDummy(e, lvl) {
			continue
		}
		if lvl == e.Top() {
			d.Unsatisfiable = append(d.Unsatisfiable, a)
		} else {
			d.Unconstrained = append(d.Unconstrained, a)
		}
	}
	return d, nil
}
