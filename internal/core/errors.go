package core

import (
	"context"
	"errors"
	"fmt"
)

// Typed error taxonomy of the solver layer. All errors returned by the
// context-aware entry points (SolveContext, RepairContext,
// DeriveUpperBoundsContext, ...) wrap one of these sentinels, so callers
// dispatch with errors.Is instead of matching message strings.
var (
	// ErrUnsolvable reports that the constraint set admits no solution.
	// *InconsistencyError (the §6 diagnosis carrying the conflicting
	// constraints) unwraps to it.
	ErrUnsolvable = errors.New("core: constraints are unsolvable")

	// ErrCanceled reports that a solve was abandoned because its context
	// was canceled or timed out. Errors wrapping it also wrap the
	// context's own error, so errors.Is(err, context.Canceled) (or
	// DeadlineExceeded) works too.
	ErrCanceled = errors.New("core: solve canceled")

	// ErrNotCompiled reports that a context-aware entry point was handed a
	// nil *constraint.Compiled.
	ErrNotCompiled = errors.New("core: constraint set not compiled")

	// ErrInternal reports that the solver panicked mid-solve and the panic
	// was converted into an error by SolveContext's recovery guard. The
	// concrete error is an *InternalError carrying the recovered value and
	// the stack; the panicking session is discarded instead of returning to
	// the pool, so later solves are unaffected.
	ErrInternal = errors.New("core: internal solver failure")
)

// InternalError is a solver panic converted to an error: the recovered
// value plus the goroutine stack captured at recovery. It unwraps to
// ErrInternal. Serving layers should log the stack and return an opaque
// 5xx; the stack is diagnostic detail, not client material.
type InternalError struct {
	// Recovered is the value the solver panicked with.
	Recovered any
	// Stack is the panicking goroutine's stack, as captured by
	// runtime/debug.Stack at the recovery point.
	Stack []byte
}

func (e *InternalError) Error() string {
	return fmt.Sprintf("core: solver panic: %v", e.Recovered)
}

// Unwrap makes errors.Is(err, ErrInternal) hold.
func (e *InternalError) Unwrap() error { return ErrInternal }

// canceled wraps the context's cause into the taxonomy.
func canceled(ctx context.Context) error {
	return fmt.Errorf("%w: %w", ErrCanceled, context.Cause(ctx))
}
