package core

import (
	"context"
	"errors"
	"fmt"
)

// Typed error taxonomy of the solver layer. All errors returned by the
// context-aware entry points (SolveContext, RepairContext,
// DeriveUpperBoundsContext, ...) wrap one of these sentinels, so callers
// dispatch with errors.Is instead of matching message strings.
var (
	// ErrUnsolvable reports that the constraint set admits no solution.
	// *InconsistencyError (the §6 diagnosis carrying the conflicting
	// constraints) unwraps to it.
	ErrUnsolvable = errors.New("core: constraints are unsolvable")

	// ErrCanceled reports that a solve was abandoned because its context
	// was canceled or timed out. Errors wrapping it also wrap the
	// context's own error, so errors.Is(err, context.Canceled) (or
	// DeadlineExceeded) works too.
	ErrCanceled = errors.New("core: solve canceled")

	// ErrNotCompiled reports that a context-aware entry point was handed a
	// nil *constraint.Compiled.
	ErrNotCompiled = errors.New("core: constraint set not compiled")
)

// canceled wraps the context's cause into the taxonomy.
func canceled(ctx context.Context) error {
	return fmt.Errorf("%w: %w", ErrCanceled, context.Cause(ctx))
}
