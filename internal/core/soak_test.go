package core

import (
	"errors"
	"testing"

	"minup/internal/constraint"
	"minup/internal/lattice"
	"minup/internal/workload"
)

// TestSoak is a wide randomized campaign across every lattice family and
// constraint shape: thousands of instances, each checked for satisfaction,
// a sample checked for probe-minimality, and the collapse and fast-path
// options checked for result equality. Skipped in -short mode.
func TestSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test; skipped in -short mode")
	}
	sub, err := workload.RandomSublattice(13, 8, 20)
	if err != nil {
		t.Fatal(err)
	}
	lats := map[string]lattice.Lattice{
		"figure1b": lattice.FigureOneB(),
		"figure1a": lattice.FigureOneA(),
		"chain8": lattice.MustChain("c8",
			"l0", "l1", "l2", "l3", "l4", "l5", "l6", "l7"),
		"powerset4":  lattice.MustPowerset("p4", "a", "b", "c", "d"),
		"mls":        lattice.MustMLS("m", []string{"U", "C", "S", "TS"}, []string{"a", "b", "c", "d", "e"}),
		"sublattice": sub,
		"product": lattice.MustProduct("prod",
			lattice.MustChain("pc", "lo", "hi"),
			lattice.MustPowerset("pp", "x", "y")),
	}
	shapes := []workload.ConstraintSpec{
		{NumAttrs: 12, NumConstraints: 20, MaxLHS: 1, LevelRHSFraction: 0.4},
		{NumAttrs: 12, NumConstraints: 24, MaxLHS: 4, LevelRHSFraction: 0.35},
		{NumAttrs: 12, NumConstraints: 24, MaxLHS: 4, LevelRHSFraction: 0.3, Cyclic: true},
		{NumAttrs: 16, NumConstraints: 36, MaxLHS: 3, LevelRHSFraction: 0.25, Cyclic: true, SingleSCC: true},
		{NumAttrs: 10, NumConstraints: 18, MaxLHS: 3, LevelRHSFraction: 0.4, Cyclic: true, UpperBoundFraction: 0.3},
	}
	instances, probed := 0, 0
	for name, lat := range lats {
		for si, shape := range shapes {
			for seed := int64(0); seed < 60; seed++ {
				spec := shape
				spec.Seed = seed*1000 + int64(si)
				s := workload.MustConstraints(lat, spec)
				res, err := Solve(s, Options{})
				if err != nil {
					var ie *InconsistencyError
					if spec.UpperBoundFraction > 0 && errors.As(err, &ie) {
						continue // legitimately inconsistent
					}
					t.Fatalf("%s shape=%d seed=%d: %v", name, si, seed, err)
				}
				instances++
				if v := s.Violations(res.Assignment); v != nil {
					t.Fatalf("%s shape=%d seed=%d: violations %v", name, si, seed, v)
				}
				// Option equivalences on a deterministic sample.
				if seed%5 == 0 {
					fast := MustSolve(s, Options{CollapseSimpleCycles: true})
					if !fast.Assignment.Equal(res.Assignment) {
						t.Fatalf("%s shape=%d seed=%d: collapse diverged", name, si, seed)
					}
					slow := MustSolve(s, Options{DisableMinComplement: true})
					if !slow.Assignment.Equal(res.Assignment) {
						t.Fatalf("%s shape=%d seed=%d: fast path diverged", name, si, seed)
					}
				}
				// Probe minimality on a sample (probe is solver-priced).
				if seed%5 == 0 && spec.UpperBoundFraction == 0 {
					probed++
					minimal, w, err := ProbeMinimality(s, res.Assignment)
					if err != nil {
						t.Fatal(err)
					}
					if !minimal {
						t.Fatalf("%s shape=%d seed=%d: non-minimal, witness lowers %s to %s",
							name, si, seed, s.AttrName(w.Attr), lat.FormatLevel(w.To))
					}
				}
			}
		}
	}
	if instances < 600 {
		t.Fatalf("soak covered only %d instances", instances)
	}
	t.Logf("soak: %d instances solved, %d probed minimal", instances, probed)
}

// TestSoakRepairChains exercises repeated incremental evolution: solve,
// append, repair, verify — ten generations per instance.
func TestSoakRepairChains(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test; skipped in -short mode")
	}
	lat := lattice.MustMLS("m", []string{"U", "S", "TS"}, []string{"x", "y", "z"})
	for seed := int64(0); seed < 10; seed++ {
		sizes := []int{10, 12, 14, 16, 18, 20, 22, 24, 26, 28}
		var base constraint.Assignment
		var prevCount int
		for gen, size := range sizes {
			s := workload.MustConstraints(lat, workload.ConstraintSpec{
				Seed: seed, NumAttrs: 9, NumConstraints: size, MaxLHS: 3,
				LevelRHSFraction: 0.35, Cyclic: true,
			})
			if gen == 0 {
				base = MustSolve(s, Options{}).Assignment
				prevCount = len(s.Constraints())
				continue
			}
			repaired, _, err := Repair(s, prevCount, base, RepairOptions{VerifyMinimal: true})
			if err != nil {
				t.Fatalf("seed=%d gen=%d: %v", seed, gen, err)
			}
			if v := s.Violations(repaired); v != nil {
				t.Fatalf("seed=%d gen=%d: violations %v", seed, gen, v)
			}
			minimal, _, err := ProbeMinimality(s, repaired)
			if err != nil {
				t.Fatal(err)
			}
			if !minimal {
				t.Fatalf("seed=%d gen=%d: repair chain lost minimality", seed, gen)
			}
			base = repaired
			prevCount = len(s.Constraints())
		}
	}
}
