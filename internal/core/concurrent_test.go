package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"minup/internal/constraint"
	"minup/internal/lattice"
	"minup/internal/workload"
)

// These tests exercise the tentpole guarantee of the compile/solve split:
// one *constraint.Compiled may serve any number of concurrent solver
// sessions, and every concurrent solve returns exactly the assignment the
// sequential path computes. Run with -race.

func concurrentSpec(seed int64, cyclic bool) workload.ConstraintSpec {
	return workload.ConstraintSpec{
		Seed:             seed,
		NumAttrs:         40,
		NumConstraints:   120,
		MaxLHS:           3,
		LevelRHSFraction: 0.3,
		Cyclic:           cyclic,
		SingleSCC:        cyclic,
	}
}

func TestConcurrentSolveSharedCompiled(t *testing.T) {
	lat := lattice.MustChain("c", "U", "C", "S", "TS")
	for _, cyclic := range []bool{false, true} {
		s := workload.MustConstraints(lat, concurrentSpec(7, cyclic))
		c := s.Compile()
		want, err := SolveContext(context.Background(), c, Options{})
		if err != nil {
			t.Fatal(err)
		}

		const goroutines = 16
		const solvesEach = 8
		var wg sync.WaitGroup
		errs := make(chan error, goroutines)
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < solvesEach; i++ {
					res, err := SolveContext(context.Background(), c, Options{})
					if err != nil {
						errs <- err
						return
					}
					if !res.Assignment.Equal(want.Assignment) {
						errs <- fmt.Errorf("cyclic=%v: concurrent solve diverged from sequential:\nwant %s\ngot  %s",
							cyclic, s.FormatAssignment(want.Assignment), s.FormatAssignment(res.Assignment))
						return
					}
				}
			}()
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatal(err)
		}
	}
}

func TestConcurrentSolveDistinctSets(t *testing.T) {
	// Goroutines each compile and solve their own set, sharing only the
	// session pool; results must match each set's sequential solve.
	lat := lattice.MustChain("c", "U", "C", "S", "TS")
	const goroutines = 12
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			s := workload.MustConstraints(lat, concurrentSpec(seed, seed%2 == 0))
			c := s.Compile()
			want, err := SolveContext(context.Background(), c, Options{})
			if err != nil {
				errs <- err
				return
			}
			for i := 0; i < 4; i++ {
				res, err := SolveContext(context.Background(), c, Options{})
				if err != nil {
					errs <- err
					return
				}
				if !res.Assignment.Equal(want.Assignment) {
					errs <- fmt.Errorf("seed %d: repeat solve diverged", seed)
					return
				}
			}
		}(int64(100 + g))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// ringSet builds one big simple-constraint ring (a single SCC), the §3.2
// worst case, large enough that a full solve performs many thousands of
// operations.
func ringSet(t *testing.T, n int) *constraint.Set {
	t.Helper()
	lat := lattice.MustChain("c", "U", "C", "S", "TS")
	s := constraint.NewSet(lat)
	attrs := make([]constraint.Attr, n)
	for i := range attrs {
		attrs[i] = s.MustAttr(fmt.Sprintf("a%05d", i))
	}
	for i := range attrs {
		s.MustAdd([]constraint.Attr{attrs[i]}, constraint.AttrRHS(attrs[(i+1)%n]))
	}
	ts, err := lat.ParseLevel("TS")
	if err != nil {
		t.Fatal(err)
	}
	s.MustAdd([]constraint.Attr{attrs[0]}, constraint.LevelRHS(ts))
	return s
}

func TestSolveContextAlreadyCanceled(t *testing.T) {
	c := ringSet(t, 5000).Compile()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	_, err := SolveContext(ctx, c, Options{})
	elapsed := time.Since(start)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want wrapped context.Canceled, got %v", err)
	}
	if elapsed > time.Second {
		t.Fatalf("canceled solve took %v; want prompt return", elapsed)
	}
}

// countdownCtx is a context whose Err() starts returning context.Canceled
// after a fixed number of Err() calls, giving a deterministic mid-solve
// cancellation point independent of wall-clock timing.
type countdownCtx struct {
	context.Context
	remaining atomic.Int64
}

func (c *countdownCtx) Err() error {
	if c.remaining.Add(-1) < 0 {
		return context.Canceled
	}
	return nil
}

func TestSolveContextMidSolveCancel(t *testing.T) {
	c := ringSet(t, 5000).Compile()
	// The entry check spends one Err() call; the countdown then trips on a
	// later in-solve poll, well before the ring's O(n²)-ish worklist runs dry.
	ctx := &countdownCtx{Context: context.Background()}
	ctx.remaining.Store(3)
	_, err := SolveContext(ctx, c, Options{})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("want ErrCanceled from mid-solve poll, got %v", err)
	}
}

func TestRepairContextCanceled(t *testing.T) {
	s := ringSet(t, 2000)
	base := MustSolve(s, Options{}).Assignment
	n := len(s.Constraints())
	lat := s.Lattice()
	ts, _ := lat.ParseLevel("TS")
	a, _ := s.AttrByName("a01000")
	s.MustAdd([]constraint.Attr{a}, constraint.LevelRHS(ts))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := RepairContext(ctx, s, n, base, RepairOptions{})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
}

func TestProbeMinimalityContextCanceled(t *testing.T) {
	s := ringSet(t, 2000)
	c := s.Snapshot()
	m := MustSolve(s, Options{}).Assignment
	ctx := &countdownCtx{Context: context.Background()}
	ctx.remaining.Store(2)
	_, _, err := ProbeMinimalityContext(ctx, c, m)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
}
