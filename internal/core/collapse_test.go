package core

import (
	"fmt"
	"testing"

	"minup/internal/constraint"
	"minup/internal/lattice"
	"minup/internal/workload"
)

// TestCollapseRing checks the §3.2 simple-cycle optimization on the
// canonical ring: identical result, no Try calls.
func TestCollapseRing(t *testing.T) {
	lat := lattice.FigureOneB()
	mid, _ := lat.ParseLevel("L3")
	s := constraint.NewSet(lat)
	const n = 50
	attrs := make([]constraint.Attr, n)
	for i := range attrs {
		attrs[i] = s.MustAttr(fmt.Sprintf("r%03d", i))
	}
	for i := range attrs {
		s.MustAdd([]constraint.Attr{attrs[i]}, constraint.AttrRHS(attrs[(i+1)%n]))
	}
	s.MustAdd([]constraint.Attr{attrs[0]}, constraint.LevelRHS(mid))

	plain := MustSolve(s, Options{})
	fast := MustSolve(s, Options{CollapseSimpleCycles: true})
	if !plain.Assignment.Equal(fast.Assignment) {
		t.Fatalf("collapse changed the result:\nplain %s\nfast  %s",
			s.FormatAssignment(plain.Assignment), s.FormatAssignment(fast.Assignment))
	}
	if fast.Stats.Tries != 0 {
		t.Errorf("collapse still made %d Try calls", fast.Stats.Tries)
	}
	if plain.Stats.Tries == 0 {
		t.Errorf("plain path made no Try calls; ring not exercising the cycle machinery")
	}
	for _, a := range attrs {
		if fast.Assignment[a] != mid {
			t.Fatalf("collapsed ring level = %s", lat.FormatLevel(fast.Assignment[a]))
		}
	}
}

// TestCollapseIneligible checks that components touching complex
// constraints are left to the general machinery (Figure 2's big SCC).
func TestCollapseIneligible(t *testing.T) {
	f := constraint.NewFigure2()
	plain := MustSolve(f.Set, Options{})
	fast := MustSolve(f.Set, Options{CollapseSimpleCycles: true})
	if !plain.Assignment.Equal(fast.Assignment) {
		t.Fatal("collapse changed Figure 2's result")
	}
	if !fast.Assignment.Equal(f.Want) {
		t.Fatal("collapse broke the Figure 2 reproduction")
	}
	// Nothing in Figure 2 is eligible: the big SCC has complex
	// constraints, and even the simple cycle {I,O,N} contains I, which
	// sits on the complex left-hand side {F,I} — its level comes from
	// Minlevel, not from the cycle alone. The optimization must leave the
	// instance entirely to the general machinery.
	if fast.Stats.Tries != plain.Stats.Tries {
		t.Errorf("collapse altered Try behavior on an ineligible instance: %d vs %d",
			fast.Stats.Tries, plain.Stats.Tries)
	}
}

// TestCollapseEquivalenceRandom checks result equality with and without
// the optimization across random cyclic workloads.
func TestCollapseEquivalenceRandom(t *testing.T) {
	for _, lat := range []lattice.Lattice{
		lattice.FigureOneB(),
		lattice.MustMLS("m", []string{"U", "S", "TS"}, []string{"a", "b", "c"}),
	} {
		for seed := int64(0); seed < 40; seed++ {
			for _, maxLHS := range []int{1, 3} {
				s := workload.MustConstraints(lat, workload.ConstraintSpec{
					Seed: seed, NumAttrs: 12, NumConstraints: 24, MaxLHS: maxLHS,
					LevelRHSFraction: 0.35, Cyclic: true,
				})
				plain := MustSolve(s, Options{})
				fast := MustSolve(s, Options{CollapseSimpleCycles: true})
				if !plain.Assignment.Equal(fast.Assignment) {
					t.Fatalf("%s seed=%d lhs=%d: collapse diverged\nplain %s\nfast  %s",
						lat.Name(), seed, maxLHS,
						s.FormatAssignment(plain.Assignment),
						s.FormatAssignment(fast.Assignment))
				}
			}
		}
	}
}

// TestCollapseSkippedWithUpperBounds ensures the optimization stays off in
// §6 eager mode, where the all-equal argument does not apply.
func TestCollapseSkippedWithUpperBounds(t *testing.T) {
	lat := lattice.MustChain("c", "lo", "mid", "hi")
	s := constraint.NewSet(lat)
	a, b := s.MustAttr("a"), s.MustAttr("b")
	s.MustAdd([]constraint.Attr{a}, constraint.AttrRHS(b))
	s.MustAdd([]constraint.Attr{b}, constraint.AttrRHS(a))
	midLvl, _ := lat.ParseLevel("mid")
	s.MustAdd([]constraint.Attr{a}, constraint.LevelRHS(midLvl))
	s.MustAddUpper(b, lat.Top())
	res, err := Solve(s, Options{CollapseSimpleCycles: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Assignment[a] != midLvl || res.Assignment[b] != midLvl {
		t.Fatalf("cycle with bounds solved to %s", s.FormatAssignment(res.Assignment))
	}
}
