package core

import (
	"context"
	"strconv"
	"strings"
	"testing"
	"time"

	"minup/internal/constraint"
	"minup/internal/obs"
)

// fakeClock advances one microsecond per call from a fixed epoch.
func fakeClock() func() time.Time {
	t := time.Unix(1_000_000, 0)
	return func() time.Time {
		t = t.Add(time.Microsecond)
		return t
	}
}

// solveFig2Traced runs one instrumented solve of the Figure 2(a) fixture
// and returns the root request span and the solve result.
func solveFig2Traced(t *testing.T, opt Options) (*obs.Span, *Result) {
	t.Helper()
	f := constraint.NewFigure2()
	c := f.Set.Compile()
	tr := &obs.Tracer{Now: fakeClock()}
	root := tr.Start("request")
	ctx := obs.ContextWithSpan(context.Background(), root)
	res, err := SolveContext(ctx, c, opt)
	if err != nil {
		t.Fatal(err)
	}
	root.End()
	return root, res
}

func TestSolveSpanTreeFigure2(t *testing.T) {
	root, res := solveFig2Traced(t, Options{})

	// One root request span with exactly one solve child.
	kids := root.Children()
	if len(kids) != 1 || kids[0].Name() != "solve" {
		names := make([]string, len(kids))
		for i, k := range kids {
			names[i] = k.Name()
		}
		t.Fatalf("request children = %v, want [solve]", names)
	}
	solve := kids[0]
	if solve.Duration() <= 0 {
		t.Fatalf("solve span not ended: duration %v", solve.Duration())
	}

	// One child per SCC, in condensation order: BigLoop walks priorities
	// from Max down to 1, so the SCC spans must carry strictly descending
	// priority numbers covering every priority set.
	sccs := solve.Children()
	if len(sccs) != res.Priorities.Max {
		t.Fatalf("got %d SCC spans, want %d (one per priority set)", len(sccs), res.Priorities.Max)
	}
	prev := res.Priorities.Max + 1
	for _, sp := range sccs {
		name := sp.Name()
		if !strings.HasPrefix(name, "scc ") {
			t.Fatalf("solve child %q is not an SCC span", name)
		}
		p, err := strconv.Atoi(strings.TrimPrefix(name, "scc "))
		if err != nil {
			t.Fatalf("SCC span name %q: %v", name, err)
		}
		if p >= prev {
			t.Fatalf("SCC spans out of condensation order: %d after %d", p, prev)
		}
		prev = p
		if sp.EndTime().IsZero() {
			t.Fatalf("SCC span %q left open", name)
		}
	}
	if prev != 1 {
		t.Fatalf("lowest SCC span is scc %d, want scc 1", prev)
	}

	// Nested descent spans: one per Try constraint check.
	descents := 0
	solve.Walk(func(s *obs.Span) {
		if s.Name() == "descent" {
			descents++
			if s.ParentID() == solve.ID() {
				t.Fatal("descent span attached directly to solve span, want nested under an SCC span")
			}
		}
	})
	if descents != res.Stats.TrySteps {
		t.Fatalf("got %d descent spans, want Stats.TrySteps = %d", descents, res.Stats.TrySteps)
	}
	if descents == 0 {
		t.Fatal("Figure 2 is cyclic; expected at least one descent span")
	}

	// The solve span carries the headline stats as attributes.
	attrs := make(map[string]string)
	for _, a := range solve.Attrs() {
		attrs[a.Key] = a.Value
	}
	if attrs["try_steps"] != strconv.Itoa(res.Stats.TrySteps) {
		t.Fatalf("solve span try_steps attr %q, want %d", attrs["try_steps"], res.Stats.TrySteps)
	}
	if attrs["tries"] != strconv.Itoa(res.Stats.Tries) {
		t.Fatalf("solve span tries attr %q, want %d", attrs["tries"], res.Stats.Tries)
	}

	// Leaf spans carry attribute names from the fixture.
	sawAttr := false
	solve.Walk(func(s *obs.Span) {
		for _, a := range s.Attrs() {
			if a.Key == "attr" && a.Value == "B" {
				sawAttr = true
			}
		}
	})
	if !sawAttr {
		t.Fatal("no leaf span carries attr=B")
	}
}

// TestSolveSpanTreeMatchesEventStream cross-checks the span reconstruction
// against a raw event count: every event becomes exactly one leaf span.
func TestSolveSpanTreeMatchesEventStream(t *testing.T) {
	events := 0
	f := constraint.NewFigure2()
	c := f.Set.Compile()
	tr := &obs.Tracer{Now: fakeClock()}
	root := tr.Start("request")
	ctx := obs.ContextWithSpan(context.Background(), root)
	_, err := SolveContext(ctx, c, Options{
		Sink: obs.SinkFunc(func(obs.Event) { events++ }),
	})
	if err != nil {
		t.Fatal(err)
	}
	root.End()

	leaves := 0
	root.Walk(func(s *obs.Span) {
		if len(s.Children()) == 0 && s.Name() != "request" {
			leaves++
		}
	})
	if leaves != events {
		t.Fatalf("span tree has %d leaves, event stream had %d events", leaves, events)
	}
}

// TestUntracedContextAddsNoSpans pins the zero-cost contract at the API
// level: solving with a plain context must not install the span sink.
func TestUntracedContextAddsNoSpans(t *testing.T) {
	f := constraint.NewFigure2()
	c := f.Set.Compile()
	res, err := SolveContext(context.Background(), c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !f.Want.Equal(res.Assignment) {
		t.Fatalf("assignment drifted: %s", f.Set.FormatAssignment(res.Assignment))
	}
}

// TestRepairSpanTree verifies RepairContext nests its partial solve under a
// repair span.
func TestRepairSpanTree(t *testing.T) {
	f := constraint.NewFigure2()
	base := MustSolve(f.Set, Options{})

	// Append a violated constraint: P is at L1, force it to B's level.
	s2 := constraint.NewFigure2()
	baseCount := len(s2.Set.Constraints())
	lv, err := s2.Lattice.ParseLevel("L5")
	if err != nil {
		t.Fatal(err)
	}
	s2.Set.MustAdd([]constraint.Attr{s2.P}, constraint.LevelRHS(lv))

	tr := &obs.Tracer{Now: fakeClock()}
	root := tr.Start("request")
	ctx := obs.ContextWithSpan(context.Background(), root)
	if _, _, err := RepairContext(ctx, s2.Set, baseCount, base.Assignment, RepairOptions{}); err != nil {
		t.Fatal(err)
	}
	root.End()

	kids := root.Children()
	if len(kids) != 1 || kids[0].Name() != "repair" {
		t.Fatalf("request children = %v, want one repair span", kids)
	}
	repair := kids[0]
	if repair.EndTime().IsZero() {
		t.Fatal("repair span left open")
	}
	var sawPartial bool
	for _, c := range repair.Children() {
		if c.Name() == "partial-solve" {
			sawPartial = true
		}
	}
	if !sawPartial {
		names := make([]string, 0, len(repair.Children()))
		for _, c := range repair.Children() {
			names = append(names, c.Name())
		}
		t.Fatalf("repair children %v missing partial-solve", names)
	}
	attrs := make(map[string]string)
	for _, a := range repair.Attrs() {
		attrs[a.Key] = a.Value
	}
	if attrs["violated_constraints"] != "1" {
		t.Fatalf("repair attrs %v, want violated_constraints=1", attrs)
	}
}

// TestTryStepEventCountMatchesStats checks the new event kind against the
// per-solve counter it mirrors.
func TestTryStepEventCountMatchesStats(t *testing.T) {
	f := constraint.NewFigure2()
	c := f.Set.Compile()
	steps := 0
	res, err := SolveContext(context.Background(), c, Options{
		Sink: obs.SinkFunc(func(e obs.Event) {
			if e.Kind == obs.EventTryStep {
				steps++
			}
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if steps != res.Stats.TrySteps {
		t.Fatalf("saw %d try_step events, Stats.TrySteps = %d", steps, res.Stats.TrySteps)
	}
}
