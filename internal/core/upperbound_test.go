package core

import (
	"errors"
	"strings"
	"testing"

	"minup/internal/baseline"
	"minup/internal/constraint"
	"minup/internal/lattice"
	"minup/internal/workload"
)

// TestUpperBoundPropagation checks the §6 preprocessing pass: explicit
// bounds glb-merge and flow through simple and complex constraints.
func TestUpperBoundPropagation(t *testing.T) {
	lat := lattice.MustChain("mil", "U", "C", "S", "TS")
	lv := func(n string) lattice.Level { x, _ := lat.ParseLevel(n); return x }
	s := constraint.NewSet(lat)
	a, b, c := s.MustAttr("a"), s.MustAttr("b"), s.MustAttr("c")
	// a ≤ S; constraint a ≽ b propagates the bound to b; lub(b,c) ≽ d... use
	// a chain: a >= b, b >= c.
	s.MustAdd([]constraint.Attr{a}, constraint.AttrRHS(b))
	s.MustAdd([]constraint.Attr{b}, constraint.AttrRHS(c))
	s.MustAddUpper(a, lv("S"))
	ub, err := DeriveUpperBounds(s)
	if err != nil {
		t.Fatal(err)
	}
	if ub[a] != lv("S") {
		t.Errorf("ub[a] = %s", lat.FormatLevel(ub[a]))
	}
	// b and c are only bounded through a... no: constraint a ≽ b means b's
	// level must stay BELOW a's, so the bound propagates forward: b ≤ S.
	if ub[b] != lv("S") || ub[c] != lv("S") {
		t.Errorf("propagated bounds: b=%s c=%s, want S S",
			lat.FormatLevel(ub[b]), lat.FormatLevel(ub[c]))
	}
}

// TestUpperBoundComplexPropagation checks that a complex constraint
// propagates the lub of its lhs bounds.
func TestUpperBoundComplexPropagation(t *testing.T) {
	lat := lattice.MustPowerset("cats", "x", "y", "z")
	s := constraint.NewSet(lat)
	a, b, c := s.MustAttr("a"), s.MustAttr("b"), s.MustAttr("c")
	s.MustAdd([]constraint.Attr{a, b}, constraint.AttrRHS(c))
	xy, _ := lat.LevelOf("x", "y")
	yz, _ := lat.LevelOf("y", "z")
	x, _ := lat.LevelOf("x")
	s.MustAddUpper(a, x)
	s.MustAddUpper(b, yz)
	ub, err := DeriveUpperBounds(s)
	if err != nil {
		t.Fatal(err)
	}
	// c is bounded by lub(x, yz) = {x,y,z} = ⊤: no effective bound.
	if ub[c] != lat.Top() {
		t.Errorf("ub[c] = %s", lat.FormatLevel(ub[c]))
	}
	// Tighten b and the bound on c tightens too.
	s.MustAddUpper(b, lat.Glb(yz, xy)) // {y}
	ub, err = DeriveUpperBounds(s)
	if err != nil {
		t.Fatal(err)
	}
	if want, _ := lat.LevelOf("x", "y"); ub[c] != want {
		t.Errorf("ub[c] = %s, want {x,y}", lat.FormatLevel(ub[c]))
	}
}

// TestUpperBoundInconsistency checks detection of the paper's trivial
// inconsistency pattern and transitively induced ones.
func TestUpperBoundInconsistency(t *testing.T) {
	lat := lattice.MustChain("mil", "U", "C", "S", "TS")
	lv := func(n string) lattice.Level { x, _ := lat.ParseLevel(n); return x }

	// {A ≽ ⊤, ⊥ ≽ A}.
	s := constraint.NewSet(lat)
	a := s.MustAttr("a")
	s.MustAdd([]constraint.Attr{a}, constraint.LevelRHS(lat.Top()))
	s.MustAddUpper(a, lat.Bottom())
	if _, err := Solve(s, Options{}); err == nil {
		t.Fatal("trivial inconsistency not detected")
	} else {
		var ie *InconsistencyError
		if !errors.As(err, &ie) || len(ie.Conflicts) == 0 {
			t.Fatalf("wrong error: %v", err)
		}
		if !strings.Contains(ie.Error(), "inconsistent") {
			t.Errorf("error text: %v", ie)
		}
	}
	if err := CheckSolvable(s); err == nil {
		t.Error("CheckSolvable missed inconsistency")
	}

	// Transitive: c ≤ C, but b ≽ S flows through b ≽ c? No: a chain
	// a ≽ b ≽ S with a ≤ C.
	s2 := constraint.NewSet(lat)
	x, y := s2.MustAttr("x"), s2.MustAttr("y")
	s2.MustAdd([]constraint.Attr{x}, constraint.AttrRHS(y))
	s2.MustAdd([]constraint.Attr{y}, constraint.LevelRHS(lv("S")))
	s2.MustAddUpper(x, lv("C"))
	if _, err := Solve(s2, Options{}); err == nil {
		t.Fatal("transitive inconsistency not detected")
	}

	// Consistent version solves.
	s3 := constraint.NewSet(lat)
	p, q := s3.MustAttr("p"), s3.MustAttr("q")
	s3.MustAdd([]constraint.Attr{p}, constraint.AttrRHS(q))
	s3.MustAdd([]constraint.Attr{q}, constraint.LevelRHS(lv("C")))
	s3.MustAddUpper(p, lv("S"))
	res, err := Solve(s3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if v := s3.Violations(res.Assignment); v != nil {
		t.Fatalf("violations: %v", v)
	}
	if res.UpperBounds == nil {
		t.Error("result should carry derived upper bounds")
	}
}

// TestUpperBoundSolveRandom property-tests the §6 solver: on random mixed
// instances that are consistent, the result satisfies everything including
// the bounds, and is minimal per the exhaustive oracle.
func TestUpperBoundSolveRandom(t *testing.T) {
	lats := map[string]lattice.Lattice{
		"figure1b": lattice.FigureOneB(),
		"chain4":   lattice.MustChain("mil", "U", "C", "S", "TS"),
	}
	solved := 0
	for name, lat := range lats {
		for seed := int64(0); seed < 80; seed++ {
			s := workload.MustConstraints(lat, workload.ConstraintSpec{
				Seed: seed, NumAttrs: 5, NumConstraints: 7, MaxLHS: 3,
				LevelRHSFraction: 0.4, Cyclic: seed%2 == 0,
				UpperBoundFraction: 0.5,
			})
			res, err := Solve(s, Options{})
			if err != nil {
				var ie *InconsistencyError
				if !errors.As(err, &ie) {
					t.Fatalf("%s seed=%d: unexpected error %v", name, seed, err)
				}
				continue // legitimately inconsistent instance
			}
			solved++
			if v := s.Violations(res.Assignment); v != nil {
				t.Fatalf("%s seed=%d: violations %v", name, seed, v)
			}
			min, err := baseline.IsMinimal(s, res.Assignment)
			if err != nil {
				t.Fatal(err)
			}
			if !min {
				t.Fatalf("%s seed=%d: non-minimal %s", name, seed,
					s.FormatAssignment(res.Assignment))
			}
		}
	}
	if solved < 20 {
		t.Fatalf("only %d consistent instances solved; generator too aggressive", solved)
	}
}

// TestUpperBoundRespected checks that solutions never exceed their bounds
// even when lower-bound constraints pull upward elsewhere.
func TestUpperBoundRespected(t *testing.T) {
	lat := lattice.FigureOneA() // MLS of Figure 1(a)
	s := constraint.NewSet(lat)
	a, b := s.MustAttr("a"), s.MustAttr("b")
	tsArmy := lat.MustLevel("TS", "Army")
	sArmy := lat.MustLevel("S", "Army")
	s.MustAdd([]constraint.Attr{a, b}, constraint.LevelRHS(tsArmy))
	s.MustAddUpper(b, sArmy)
	res, err := Solve(s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !lat.Dominates(sArmy, res.Assignment[b]) {
		t.Errorf("b exceeds its bound: %s", lat.FormatLevel(res.Assignment[b]))
	}
	if v := s.Violations(res.Assignment); v != nil {
		t.Fatalf("violations: %v", v)
	}
}

// TestSemiLatticeUnsatisfiable exercises §6's dummy-top diagnosis: two
// incomparable maximal levels and a constraint requiring an attribute to
// dominate both.
func TestSemiLatticeUnsatisfiable(t *testing.T) {
	l, comp, err := lattice.CompleteToLattice("semi",
		[]string{"hi1", "hi2", "lo"},
		map[string][]string{"hi1": {"lo"}, "hi2": {"lo"}})
	if err != nil {
		t.Fatal(err)
	}
	if !comp.AddedTop {
		t.Fatal("expected dummy top")
	}
	s := constraint.NewSet(l)
	a := s.MustAttr("a")
	h1, _ := l.ParseLevel("hi1")
	h2, _ := l.ParseLevel("hi2")
	s.MustAdd([]constraint.Attr{a}, constraint.LevelRHS(h1))
	s.MustAdd([]constraint.Attr{a}, constraint.LevelRHS(h2))
	res := MustSolve(s, Options{})
	d, err := DiagnoseSemiLattice(s, res)
	if err != nil {
		t.Fatal(err)
	}
	if d.OK() || len(d.Unsatisfiable) != 1 || d.Unsatisfiable[0] != a {
		t.Fatalf("diagnosis = %+v", d)
	}
}

// TestSemiLatticeUnconstrained exercises the dummy-bottom diagnosis.
func TestSemiLatticeUnconstrained(t *testing.T) {
	l, comp, err := lattice.CompleteToLattice("semi",
		[]string{"top", "m1", "m2"},
		map[string][]string{"top": {"m1", "m2"}})
	if err != nil {
		t.Fatal(err)
	}
	if !comp.AddedBottom {
		t.Fatal("expected dummy bottom")
	}
	s := constraint.NewSet(l)
	a := s.MustAttr("a")
	free := s.MustAttr("free")
	m1, _ := l.ParseLevel("m1")
	s.MustAdd([]constraint.Attr{a}, constraint.LevelRHS(m1))
	res := MustSolve(s, Options{})
	d, err := DiagnoseSemiLattice(s, res)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Unconstrained) != 1 || d.Unconstrained[0] != free {
		t.Fatalf("diagnosis = %+v", d)
	}
	if len(d.Unsatisfiable) != 0 {
		t.Fatalf("false unsatisfiable: %+v", d)
	}
	// Constrained attribute got a real level.
	if res.Assignment[a] != m1 {
		t.Errorf("a = %s", l.FormatLevel(res.Assignment[a]))
	}

	// Diagnosis requires an explicit lattice.
	s2 := constraint.NewSet(lattice.MustChain("c", "a", "b"))
	s2.MustAttr("x")
	if _, err := DiagnoseSemiLattice(s2, MustSolve(s2, Options{})); err == nil {
		t.Error("diagnosis accepted non-explicit lattice")
	}
}

// TestEagerMinlevelMinimality: with upper bounds the modified BigLoop calls
// Minlevel eagerly; check on a hand-built associative case that the result
// is still minimal.
func TestEagerMinlevelMinimality(t *testing.T) {
	lat := lattice.MustPowerset("cats", "x", "y")
	s := constraint.NewSet(lat)
	a, b := s.MustAttr("a"), s.MustAttr("b")
	s.MustAdd([]constraint.Attr{a, b}, constraint.LevelRHS(lat.Top()))
	x, _ := lat.LevelOf("x")
	s.MustAddUpper(a, x) // a can carry at most {x}; b must carry {y}.
	res, err := Solve(s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if v := s.Violations(res.Assignment); v != nil {
		t.Fatalf("violations: %v", v)
	}
	min, err := baseline.IsMinimal(s, res.Assignment)
	if err != nil {
		t.Fatal(err)
	}
	if !min {
		t.Fatalf("non-minimal: %s", s.FormatAssignment(res.Assignment))
	}
	y, _ := lat.LevelOf("y")
	if !lat.Dominates(res.Assignment[b], y) {
		t.Errorf("b must carry y: %s", s.FormatAssignment(res.Assignment))
	}
}
