// Package core implements Algorithm 3.1 of the paper: generation of a
// minimal classification λ : A → L satisfying a set of classification
// constraints over a security lattice.
//
// The solver combines the two techniques of §3 exactly as the paper's
// pseudocode (Figure 3) prescribes:
//
//   - Back-propagation for acyclic constraints: attributes are considered
//     in decreasing priority (reverse topological order of the strongly
//     connected components of the constraint graph); an attribute all of
//     whose constraints have definitively labeled right-hand sides is
//     assigned the lub of the levels those constraints force on it, each
//     complex constraint contributing through Minlevel.
//   - Forward lowering for cyclic constraints: attributes in a cycle start
//     at ⊤ and are lowered one lattice step at a time; Try propagates a
//     candidate lowering through the cycle, accumulating the induced
//     lowerings (Tolower) or failing if a constraint with a definitively
//     labeled right-hand side would break.
//
// Section 6's upper-bound constraints are handled at compile time
// (constraint.Compiled derives a firm upper bound for every attribute and
// detects inconsistencies); BigLoop then starts from those bounds instead
// of ⊤ and solves every complex constraint eagerly.
//
// # Compile/solve split
//
// The graph, SCC condensation, priority numbering, and adjacency indexes
// are the one-time cost the complexity argument of Theorem 5.2 amortizes
// over solving. They live in an immutable constraint.Compiled produced by
// Set.Compile; SolveContext runs Algorithm 3.1 against such a snapshot.
// All per-solve mutable state (the assignment, done flags, worklists, and
// Try scratch maps) lives in a session recycled through a sync.Pool, so
// repeated solves of the same compiled set are allocation-light and any
// number of goroutines may solve the same snapshot concurrently. The
// one-shot Solve(set, opt) remains as a compatibility shim that compiles a
// snapshot and solves it.
//
// # Observability
//
// Every step of the algorithm can be observed without changing its
// behavior. Result.Stats always carries the per-solve operation counts
// (they are plain field increments, always on). Richer telemetry is
// strictly opt-in and zero-cost when off: an obs.EventSink — installed via
// Options.Sink, Options.RecordTrace, or Compiled.WithSink — receives one
// value-typed event per step (a single nil check on the hot path when no
// sink is installed); Options.CollectLatticeOps wraps the lattice in a
// counting forwarder (no wrapper at all otherwise); Options.Metrics
// aggregates each solve's Stats into a shared obs.Registry after the run.
package core

import (
	"context"
	"log/slog"
	"runtime/debug"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"minup/internal/constraint"
	"minup/internal/fault"
	"minup/internal/graph"
	"minup/internal/lattice"
	"minup/internal/obs"
)

// Options tunes the solver. The zero value is ready to use.
type Options struct {
	// RecordTrace captures a step-by-step execution trace (the Figure 2(b)
	// table). The trace stores per-step deltas, so its memory cost is
	// linear in the number of level changes, not steps×attributes.
	RecordTrace bool

	// DisableMinComplement turns off the footnote-4 closed form for
	// Minlevel even when the lattice supports it, forcing the generic
	// lattice descent. Used by the ablation benchmarks.
	DisableMinComplement bool

	// CollapseSimpleCycles enables the §3.2 simple-cycle optimization:
	// a strongly connected component all of whose members appear only in
	// simple constraints forces every member to the same level, so the
	// component is labeled in one step (the lub of its external needs)
	// instead of per-attribute forward lowering. Purely an optimization —
	// results are identical — but it turns pathological simple-cycle
	// components from quadratic to linear (ablation benchmark
	// BenchmarkSimpleCycleCollapse).
	CollapseSimpleCycles bool

	// Sink receives the solver's event stream (assign / try / try-failed /
	// lower / collapse / done). It is combined with the trace and with any
	// sink attached to the compiled snapshot by WithSink. When no sink is
	// installed from any source, event emission costs one nil check per
	// step.
	Sink obs.EventSink

	// CollectLatticeOps counts the primitive lattice operations (lub, glb,
	// dominance, covers) performed by the solve into Result.Stats.
	// LatticeOps. Off by default: counting routes every operation through
	// a forwarding wrapper.
	CollectLatticeOps bool

	// Metrics, when non-nil, aggregates the solve's Stats (and its
	// success/failure) into the registry after the run under the
	// "solve.*" metric names. The registry may be shared by any number of
	// concurrent solves.
	Metrics *obs.Registry

	// Fault, when non-nil, arms the solver's named fault points
	// ("pool.get", "solve.step", "solve.try", and the lattice wrapper's
	// "lattice.*" points) for chaos testing: the injector may delay,
	// cancel, or panic at scheduled hits. Nil — the production value —
	// keeps every fault point a single nil check, preserving the
	// allocation-free hot path guarded by BenchmarkSolveCompiled.
	Fault *fault.Injector
}

// Stats reports operation counts from one solve, used by the complexity
// experiments (E2/E3) to confirm the bounds of Theorem 5.2 and surfaced by
// the telemetry layer (cmd/minclass -stats, cmd/benchtab -stats,
// cmd/minupd).
type Stats struct {
	Tries          int // invocations of Try
	FailedTries    int // Try invocations that returned failure
	MinlevelCalls  int // invocations of Minlevel
	TrySteps       int // constraint checks performed inside Try
	DescentSteps   int // lattice covers expansions in Minlevel/BigLoop
	Collapses      int // attributes pinned by the §3.2 simple-cycle collapse
	AttrsProcessed int // attributes labeled (assign, forward lowering, or collapse)

	// LatticeOps counts primitive lattice operations; populated only when
	// Options.CollectLatticeOps is set.
	LatticeOps lattice.OpCounts

	// PoolHit reports whether the solve reused a pooled session (true) or
	// paid the first-use session allocation (false).
	PoolHit bool

	// Duration is the wall time of the solve, excluding compilation.
	Duration time.Duration
}

// Result is the outcome of a solve.
type Result struct {
	// Assignment is the computed minimal classification λ. It is owned by
	// the caller.
	Assignment constraint.Assignment
	// Priorities is the §4 priority structure used for the evaluation
	// order (one set per strongly connected component). It is shared with
	// the compiled set and must be treated as read-only.
	Priorities *graph.PriorityResult
	// UpperBounds is the firm per-attribute bound derived by the §6
	// preprocessing pass; nil when the instance has no upper-bound
	// constraints. Shared with the compiled set; read-only.
	UpperBounds constraint.Assignment
	// Trace is the recorded execution trace, nil unless requested.
	Trace *Trace
	// Stats counts solver operations.
	Stats Stats
}

// Solve computes a minimal classification for the constraint set. Instances
// consisting solely of lower-bound constraints (Definition 2.1) are always
// consistent and never yield an error; instances with §6 upper-bound
// constraints may be inconsistent, in which case an *InconsistencyError is
// returned.
//
// Solve is the one-shot compatibility path: it compiles a snapshot of the
// set and solves it, paying the graph/SCC construction on every call.
// Callers solving the same constraints repeatedly (or concurrently) should
// use Set.Compile once and SolveContext per request.
func Solve(s *constraint.Set, opt Options) (*Result, error) {
	return SolveContext(context.Background(), s.Snapshot(), opt)
}

// SolveContext computes a minimal classification for a compiled constraint
// set. The compiled snapshot is read-only and may be shared by any number
// of concurrent SolveContext calls. The context is polled periodically
// (including inside the forward-lowering loops of large cyclic instances);
// on cancellation the solve stops promptly with an error satisfying
// errors.Is(err, ErrCanceled). Inconsistent §6 instances return an
// *InconsistencyError, which satisfies errors.Is(err, ErrUnsolvable).
func SolveContext(ctx context.Context, c *constraint.Compiled, opt Options) (res *Result, err error) {
	if c == nil {
		return nil, ErrNotCompiled
	}
	if err := ctx.Err(); err != nil {
		return nil, canceled(ctx)
	}
	// Panic isolation: a panicking solve must not take the process (or the
	// session pool) down with it. The guard converts the panic into a
	// typed *InternalError and drops the session on the floor — its
	// invariants are unknown, so returning it to the pool could corrupt a
	// later solve. Non-panic exits release the session normally.
	var sv *session
	var ssink *spanSink
	defer func() {
		r := recover()
		if r == nil {
			if sv != nil {
				sv.release()
			}
			return
		}
		ie := &InternalError{Recovered: r, Stack: debug.Stack()}
		logPanic(ie)
		panicsRecovered.Add(1)
		if opt.Metrics != nil {
			opt.Metrics.Counter(MetricSolvePanics).Inc()
		}
		if ssink != nil {
			ssink.root.End()
		}
		res, err = nil, ie
	}()
	if ferr := opt.Fault.Hit("pool.get"); ferr != nil {
		return nil, ferr
	}
	// Tracing: when the context carries a span, reconstruct a solve span
	// tree from the event stream. Uninstrumented contexts take the nil
	// branch and pay nothing further.
	if parent := obs.SpanFromContext(ctx); parent != nil {
		ssink = newSpanSink(parent.Child("solve"), c)
		opt.Sink = combineSinks(ssink, opt.Sink)
	}
	start := time.Now()
	sv = acquireSession(ctx, c, opt)
	if c.HasUpperBounds() {
		ub, conflicts := c.UpperBoundFixpoint()
		if conflicts != nil {
			err = &InconsistencyError{Conflicts: conflicts}
		} else {
			sv.start = ub
			sv.eagerMinlevel = true
		}
	}
	if err == nil {
		err = sv.run()
	}
	sv.stats.Duration = time.Since(start)
	if ssink != nil {
		ssink.close()
		ssink.annotate(&sv.stats, err)
		ssink.root.End()
	}
	if opt.Metrics != nil {
		sv.stats.Record(opt.Metrics, err)
	}
	if err != nil {
		return nil, err
	}
	return &Result{
		Assignment:  sv.lambda,
		Priorities:  sv.pr,
		UpperBounds: sv.start,
		Trace:       sv.trace,
		Stats:       sv.stats,
	}, nil
}

// MustSolve is Solve that panics on error, for fixtures built from
// lower-bound-only constraint sets (which cannot fail).
func MustSolve(s *constraint.Set, opt Options) *Result {
	r, err := Solve(s, opt)
	if err != nil {
		panic(err)
	}
	return r
}

// session carries the mutable state of one run of Algorithm 3.1 against a
// compiled constraint set. Sessions are recycled through sessionPool:
// scratch buffers (done flags, unlabeled counters, Try worklists and maps)
// keep their capacity across solves, so a hot server solving the same
// compiled set allocates little more than the result assignment per
// request. A session is used by one goroutine at a time; concurrency comes
// from acquiring one session per in-flight solve.
type session struct {
	c   *constraint.Compiled
	set *constraint.Set // read-only view, for formatting and traces
	lat lattice.Lattice
	opt Options
	ctx context.Context

	cons    []constraint.Constraint
	constr  [][]int // Constr[A]: constraint indices with A on the lhs
	pr      *graph.PriorityResult
	minComp lattice.ComplementMinimizer // non-nil when the fast path applies

	lambda    constraint.Assignment // λ; freshly allocated, handed to the Result
	done      []bool
	unlabeled []int                 // per complex constraint
	start     constraint.Assignment // initial levels (nil = all ⊤)
	// eagerMinlevel makes BigLoop solve complex constraints for every lhs
	// attribute, not only the last-labeled one — required when attributes
	// may start below ⊤ (§6 upper bounds).
	eagerMinlevel bool

	trace *Trace
	// sink is the combined event sink (trace, compiled-set sink, and
	// Options.Sink); nil when no observer is installed, which is the
	// zero-cost path.
	sink obs.EventSink
	// counted is the lattice op-counting wrapper, embedded in the session
	// so enabling CollectLatticeOps performs no per-solve allocation.
	counted lattice.Counted
	stats   Stats
	// reused distinguishes a recycled session (pool hit) from one freshly
	// allocated by the pool's New.
	reused bool
	// fault is the armed injector, nil in production. Hooks fire behind
	// sv.fault != nil checks so the zero-value path pays one comparison.
	fault *fault.Injector
	// lastFailure is the index of the constraint whose violation made the
	// most recent try call fail, or -1. Used by Explain.
	lastFailure int
	// ops counts units of work since the session started, for periodic
	// cancellation polling.
	ops int

	// Scratch buffers reused across Try calls and across solves.
	tocheck map[constraint.Attr]lattice.Level
	tolower map[constraint.Attr]lattice.Level
	queue   []constraint.Attr
	inSet   map[constraint.Attr]bool // collapseSet scratch
	emitBuf []constraint.Attr        // sorted-lower-event scratch (sink path only)
}

var sessionPool = sync.Pool{
	New: func() any {
		sessionsAllocated.Add(1)
		return &session{
			tocheck: make(map[constraint.Attr]lattice.Level),
			tolower: make(map[constraint.Attr]lattice.Level),
			inSet:   make(map[constraint.Attr]bool),
		}
	},
}

// sessionsAllocated counts sessions ever created by the pool (the GC may
// have collected some since). Servers export it as a pool-size gauge.
var sessionsAllocated atomic.Int64

// SessionsAllocated reports how many solver sessions the process has
// allocated through the pool — an upper bound on the pool's current size
// and a proxy for peak solve concurrency.
func SessionsAllocated() int64 { return sessionsAllocated.Load() }

// panicsRecovered counts solver panics converted to *InternalError by the
// SolveContext recovery guard. Each one also discarded a pooled session.
var panicsRecovered atomic.Int64

// PanicsRecovered reports how many solver panics the process has recovered
// from. Servers export it as a gauge next to the pool size.
func PanicsRecovered() int64 { return panicsRecovered.Load() }

// panicLogOnce gates the full-stack log line: the first recovered panic
// logs its stack (the actionable diagnostic), later ones log one line
// without the stack so a crash-looping fault cannot flood the log.
var panicLogOnce sync.Once

// logPanic reports a recovered solver panic through the process logger.
func logPanic(ie *InternalError) {
	logged := false
	panicLogOnce.Do(func() {
		logged = true
		slog.Error("solver panic recovered; session discarded",
			"panic", ie.Recovered, "stack", string(ie.Stack))
	})
	if !logged {
		slog.Error("solver panic recovered; session discarded (stack suppressed, logged once per process)",
			"panic", ie.Recovered)
	}
}

// combineSinks fans two optional sinks into one, avoiding the tee wrapper
// unless both are present.
func combineSinks(a, b obs.EventSink) obs.EventSink {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	if t, ok := a.(obs.TeeSink); ok {
		return append(t, b)
	}
	return obs.TeeSink{a, b}
}

// acquireSession checks a session out of the pool and points it at the
// compiled set, resizing (not reallocating, when capacity allows) its
// scratch buffers.
func acquireSession(ctx context.Context, c *constraint.Compiled, opt Options) *session {
	sv := sessionPool.Get().(*session)
	hit := sv.reused
	sv.reused = true
	sv.c = c
	sv.set = c.Set()
	sv.lat = c.Lattice()
	sv.opt = opt
	sv.ctx = ctx
	sv.cons = c.Constraints()
	sv.constr = c.ConstraintsOn()
	sv.pr = c.Priorities()
	sv.minComp = nil
	if !opt.DisableMinComplement {
		if mc, ok := sv.lat.(lattice.ComplementMinimizer); ok {
			sv.minComp = mc
		}
	}
	sv.stats = Stats{PoolHit: hit}
	sv.fault = opt.Fault
	if opt.CollectLatticeOps || opt.Fault != nil {
		// The closed-form minimizer is resolved from the base lattice
		// above, so wrapping here counts descent operations without hiding
		// the fast path. An armed injector also wraps, so its "lattice.*"
		// fault points see every primitive operation.
		sv.counted = lattice.Counted{L: sv.lat, C: &sv.stats.LatticeOps, F: opt.Fault}
		sv.lat = &sv.counted
	}
	sv.lambda = nil
	sv.start = nil
	sv.eagerMinlevel = false
	sv.trace = nil
	sv.sink = nil
	if opt.RecordTrace {
		sv.trace = &Trace{set: sv.set}
		sv.sink = sv.trace
	}
	sv.sink = combineSinks(sv.sink, c.EventSink())
	sv.sink = combineSinks(sv.sink, opt.Sink)
	sv.lastFailure = -1
	sv.ops = 0
	sv.done = resizeBools(sv.done, c.NumAttrs())
	sv.unlabeled = resizeInts(sv.unlabeled, len(sv.cons))
	clear(sv.tocheck)
	clear(sv.tolower)
	sv.queue = sv.queue[:0]
	clear(sv.inSet)
	return sv
}

// release drops the session's references to the compiled set (so the pool
// does not pin it) and returns the session to the pool.
func (sv *session) release() {
	sv.c = nil
	sv.set = nil
	sv.lat = nil
	sv.ctx = nil
	sv.opt = Options{}
	sv.cons = nil
	sv.constr = nil
	sv.pr = nil
	sv.minComp = nil
	sv.lambda = nil
	sv.start = nil
	sv.trace = nil
	sv.sink = nil
	sv.fault = nil
	sv.counted = lattice.Counted{}
	sessionPool.Put(sv)
}

func resizeBools(b []bool, n int) []bool {
	if cap(b) < n {
		return make([]bool, n)
	}
	b = b[:n]
	clear(b)
	return b
}

func resizeInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	s = s[:n]
	clear(s)
	return s
}

// pollInterval is how many units of work pass between cancellation checks.
// Small enough that even the quadratic cyclic worst case notices a cancel
// within microseconds, large enough to keep ctx.Err off the hot path.
const pollInterval = 1024

// poll checks for cancellation every pollInterval units of work.
func (sv *session) poll() error {
	sv.ops++
	if sv.ops%pollInterval != 0 {
		return nil
	}
	if sv.ctx.Err() != nil {
		return canceled(sv.ctx)
	}
	return nil
}

// emit streams one event to the installed sink. Callers guard with a
// sv.sink != nil check so the uninstrumented path pays only that check.
func (sv *session) emit(kind obs.EventKind, a constraint.Attr, l lattice.Level) {
	scc := int32(-1)
	if a >= 0 {
		scc = int32(sv.pr.Priority[a])
	}
	sv.sink.Event(obs.Event{Kind: kind, Attr: int32(a), Level: uint64(l), SCC: scc})
}

// run executes Main's initialization plus BigLoop.
func (sv *session) run() error {
	n := sv.c.NumAttrs()
	sv.lambda = make(constraint.Assignment, n)
	for i := range sv.lambda {
		if sv.start != nil {
			sv.lambda[i] = sv.start[i]
		} else {
			sv.lambda[i] = sv.lat.Top()
		}
	}
	for i, c := range sv.cons {
		if !c.Simple() {
			sv.unlabeled[i] = len(c.LHS)
		}
	}
	if sv.trace != nil {
		sv.trace.begin(sv.lambda)
	}
	return sv.bigloop()
}

// bigloop is the BigLoop procedure of Figure 3.
func (sv *session) bigloop() error {
	for p := sv.pr.Max; p >= 1; p-- {
		if sv.ctx.Err() != nil {
			return canceled(sv.ctx)
		}
		if sv.opt.CollapseSimpleCycles {
			handled, err := sv.collapseSet(sv.pr.Sets[p])
			if err != nil {
				return err
			}
			if handled {
				continue
			}
		}
		for _, node := range sv.pr.Sets[p] {
			if err := sv.processAttr(constraint.Attr(node)); err != nil {
				return err
			}
		}
	}
	return nil
}

// collapseSet applies the §3.2 simple-cycle optimization to one priority
// set when eligible: the set has several members (a real cycle), no
// member appears in a complex constraint, and attributes may start only
// at ⊤ (upper bounds could break the all-equal argument, so eager mode is
// excluded). All members are then pinned to the lub of the set's external
// needs. Reports whether the set was handled.
func (sv *session) collapseSet(nodes []int) (bool, error) {
	if len(nodes) < 2 || sv.eagerMinlevel {
		return false, nil
	}
	for _, node := range nodes {
		if err := sv.poll(); err != nil {
			return false, err
		}
		for _, ci := range sv.constr[constraint.Attr(node)] {
			if !sv.cons[ci].Simple() {
				return false, nil
			}
		}
	}
	// Mutual reachability through simple constraints forces equality, so
	// the minimal common level is the lub of every member's external
	// requirements (internal right-hand sides contribute the same level
	// and are skipped).
	inSet := sv.inSet
	clear(inSet)
	for _, node := range nodes {
		inSet[constraint.Attr(node)] = true
	}
	l := sv.lat.Bottom()
	for _, node := range nodes {
		for _, ci := range sv.constr[constraint.Attr(node)] {
			c := sv.cons[ci]
			if !c.RHS.IsLevel && inSet[c.RHS.Attr] {
				continue
			}
			l = sv.lat.Lub(l, sv.set.RHSLevel(sv.lambda, c.RHS))
		}
	}
	for _, node := range nodes {
		a := constraint.Attr(node)
		sv.lambda[a] = l
		sv.done[a] = true
		sv.stats.Collapses++
		sv.stats.AttrsProcessed++
		// No unlabeled counters to maintain: eligibility guarantees no
		// member sits on a complex left-hand side.
		if sv.sink != nil {
			sv.emit(obs.EventCollapse, a, l)
		}
	}
	return true, nil
}

// processAttr labels one attribute: the body of BigLoop's second-level
// loop.
func (sv *session) processAttr(a constraint.Attr) error {
	if sv.fault != nil {
		if err := sv.fault.Hit("solve.step"); err != nil {
			return err
		}
	}
	sv.stats.AttrsProcessed++
	aDone := true
	l := sv.lat.Bottom()
	for _, ci := range sv.constr[a] {
		c := sv.cons[ci]
		if !c.Simple() {
			sv.unlabeled[ci]--
		}
		if sv.rhsDone(c) {
			if c.Simple() {
				l = sv.lat.Lub(l, sv.set.RHSLevel(sv.lambda, c.RHS))
			} else if sv.unlabeled[ci] == 0 || sv.eagerMinlevel {
				l = sv.lat.Lub(l, sv.minlevel(a, c))
			} else if !sv.othersCover(a, c) {
				// A complex constraint with unlabeled siblings may be
				// deferred to the sibling that is labeled last — but only
				// while it holds no matter how low a goes. Outside cycles
				// that is automatic (unlabeled siblings still sit at ⊤);
				// inside an SCC, Try may already have lowered a sibling, in
				// which case a must go through forward lowering so the
				// constraint is re-checked at every step.
				aDone = false
			}
		} else {
			aDone = false
		}
	}
	if aDone {
		sv.lambda[a] = l
		sv.done[a] = true
		if sv.sink != nil {
			sv.emit(obs.EventAssign, a, l)
		}
		return nil
	}
	// Forward lowering through the cycle: try each maximal level between
	// the lower bound l and the current level.
	dset := lattice.CoversAbove(sv.lat, sv.lambda[a], l)
	sv.stats.DescentSteps += len(dset)
	for len(dset) > 0 {
		cand := dset[0]
		dset = dset[1:]
		lower, ok, err := sv.try(a, cand)
		if err != nil {
			return err
		}
		sv.stats.Tries++
		if !ok {
			sv.stats.FailedTries++
			if sv.sink != nil {
				sv.emit(obs.EventTryFailed, a, cand)
			}
			continue
		}
		if sv.sink == nil {
			for attr, lvl := range lower {
				sv.lambda[attr] = lvl
			}
		} else {
			// The try row first, then one lower event per propagated
			// change (including a itself) so sinks see the deltas that
			// belong to it. The map is iterated in sorted attribute order
			// so instrumented runs (traces, goldens) are deterministic.
			sv.emit(obs.EventTry, a, cand)
			sv.emitBuf = sv.emitBuf[:0]
			for attr := range lower {
				sv.emitBuf = append(sv.emitBuf, attr)
			}
			slices.Sort(sv.emitBuf)
			for _, attr := range sv.emitBuf {
				lvl := lower[attr]
				sv.lambda[attr] = lvl
				sv.emit(obs.EventLower, attr, lvl)
			}
		}
		dset = lattice.CoversAbove(sv.lat, sv.lambda[a], l)
		sv.stats.DescentSteps += len(dset)
	}
	sv.done[a] = true
	if sv.sink != nil {
		sv.emit(obs.EventDone, a, sv.lambda[a])
	}
	return nil
}

// othersCover reports whether the lub of the left-hand-side attributes
// other than a already dominates the right-hand side, i.e. the constraint
// holds regardless of the level assigned to a.
func (sv *session) othersCover(a constraint.Attr, c constraint.Constraint) bool {
	lubothers := sv.lat.Bottom()
	for _, o := range c.LHS {
		if o != a {
			lubothers = sv.lat.Lub(lubothers, sv.lambda[o])
		}
	}
	return sv.lat.Dominates(lubothers, sv.set.RHSLevel(sv.lambda, c.RHS))
}

// rhsDone reports whether a constraint's right-hand side is definitively
// labeled (level constants always are).
func (sv *session) rhsDone(c constraint.Constraint) bool {
	return c.RHS.IsLevel || sv.done[c.RHS.Attr]
}

// minlevel is the Minlevel procedure of Figure 3: a minimal level that a
// may assume without violating the complex constraint c, given the current
// levels of the other left-hand-side attributes. When the lattice provides
// the footnote-4 closed form (compartmented lattices) it is used directly;
// otherwise the procedure descends the lattice from a's current level,
// stopping at the lowest level all of whose immediate descendants would
// violate the constraint.
func (sv *session) minlevel(a constraint.Attr, c constraint.Constraint) lattice.Level {
	sv.stats.MinlevelCalls++
	lubothers := sv.lat.Bottom()
	for _, o := range c.LHS {
		if o != a {
			lubothers = sv.lat.Lub(lubothers, sv.lambda[o])
		}
	}
	rhs := sv.set.RHSLevel(sv.lambda, c.RHS)
	if sv.minComp != nil {
		return sv.minComp.MinComplement(lubothers, rhs)
	}
	if sv.lat.Dominates(lubothers, rhs) {
		return sv.lat.Bottom()
	}
	last := sv.lambda[a]
	trylevels := sv.lat.Covers(last)
	sv.stats.DescentSteps += len(trylevels)
	for len(trylevels) > 0 {
		l := trylevels[0]
		trylevels = trylevels[1:]
		if sv.lat.Dominates(sv.lat.Lub(l, lubothers), rhs) {
			last = l
			trylevels = sv.lat.Covers(last)
			sv.stats.DescentSteps += len(trylevels)
		}
	}
	return last
}

// try is the Try procedure of Figure 3. It returns the set of lowerings
// (including a→l itself) that together with the current λ still satisfy
// all constraints, or ok=false if lowering a to l transitively violates a
// constraint whose right-hand side is already definitively labeled. λ is
// not modified. A non-nil error reports cancellation.
func (sv *session) try(a constraint.Attr, l lattice.Level) (map[constraint.Attr]lattice.Level, bool, error) {
	if sv.fault != nil {
		if err := sv.fault.Hit("solve.try"); err != nil {
			return nil, false, err
		}
	}
	sv.lastFailure = -1
	tocheck := sv.tocheck
	tolower := sv.tolower
	clear(tocheck)
	clear(tolower)
	queue := sv.queue[:0]

	tocheck[a] = l
	queue = append(queue, a)

	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		curLvl, pending := tocheck[cur]
		if !pending {
			continue // superseded entry
		}
		delete(tocheck, cur)
		tolower[cur] = curLvl

		for _, ci := range sv.constr[cur] {
			c := sv.cons[ci]
			sv.stats.TrySteps++
			if sv.sink != nil {
				// One try_step event per constraint check — the unit the
				// span sink turns into a "descent" leaf, so a traced
				// solve's descent-span count equals Stats.TrySteps.
				sv.emit(obs.EventTryStep, cur, curLvl)
			}
			if err := sv.poll(); err != nil {
				sv.queue = queue[:0]
				return nil, false, err
			}
			// Level of the lhs under the tentative lowerings: Tolower
			// entries override λ.
			level := sv.lat.Bottom()
			for _, m := range c.LHS {
				if lv, ok := tolower[m]; ok {
					level = sv.lat.Lub(level, lv)
				} else {
					level = sv.lat.Lub(level, sv.lambda[m])
				}
			}
			rhsLvl := sv.set.RHSLevel(sv.lambda, c.RHS)
			if sv.rhsDone(c) {
				if !sv.lat.Dominates(level, rhsLvl) {
					sv.lastFailure = ci
					sv.queue = queue[:0]
					return nil, false, nil
				}
				continue
			}
			if sv.lat.Dominates(level, rhsLvl) {
				continue
			}
			rhs := c.RHS.Attr
			newlevel := sv.lat.Glb(rhsLvl, level)
			if old, ok := tolower[rhs]; ok {
				if sv.lat.Dominates(newlevel, old) {
					continue // existing lowering already suffices
				}
				newlevel = sv.lat.Glb(old, newlevel)
				delete(tolower, rhs)
				tocheck[rhs] = newlevel
				queue = append(queue, rhs)
			} else if old, ok := tocheck[rhs]; ok {
				if sv.lat.Dominates(newlevel, old) {
					continue
				}
				tocheck[rhs] = sv.lat.Glb(old, newlevel) // already queued
			} else {
				tocheck[rhs] = newlevel
				queue = append(queue, rhs)
			}
		}
	}
	sv.queue = queue[:0]
	// Copy the result out: the scratch map is reused by the next call.
	out := make(map[constraint.Attr]lattice.Level, len(tolower))
	for k, v := range tolower {
		out[k] = v
	}
	return out, true, nil
}
