// Package core implements Algorithm 3.1 of the paper: generation of a
// minimal classification λ : A → L satisfying a set of classification
// constraints over a security lattice.
//
// The solver combines the two techniques of §3 exactly as the paper's
// pseudocode (Figure 3) prescribes:
//
//   - Back-propagation for acyclic constraints: attributes are considered
//     in decreasing priority (reverse topological order of the strongly
//     connected components of the constraint graph); an attribute all of
//     whose constraints have definitively labeled right-hand sides is
//     assigned the lub of the levels those constraints force on it, each
//     complex constraint contributing through Minlevel.
//   - Forward lowering for cyclic constraints: attributes in a cycle start
//     at ⊤ and are lowered one lattice step at a time; Try propagates a
//     candidate lowering through the cycle, accumulating the induced
//     lowerings (Tolower) or failing if a constraint with a definitively
//     labeled right-hand side would break.
//
// Section 6's upper-bound constraints are handled by the preprocessing
// pass in upperbound.go, which derives a firm upper bound for every
// attribute and detects inconsistencies; BigLoop then starts from those
// bounds instead of ⊤ and solves every complex constraint eagerly.
package core

import (
	"fmt"

	"minup/internal/constraint"
	"minup/internal/graph"
	"minup/internal/lattice"
)

// Options tunes the solver. The zero value is ready to use.
type Options struct {
	// RecordTrace captures a step-by-step execution trace (the Figure 2(b)
	// table). Tracing snapshots the full assignment at every step, so it
	// should be off for large instances.
	RecordTrace bool

	// DisableMinComplement turns off the footnote-4 closed form for
	// Minlevel even when the lattice supports it, forcing the generic
	// lattice descent. Used by the ablation benchmarks.
	DisableMinComplement bool

	// CollapseSimpleCycles enables the §3.2 simple-cycle optimization:
	// a strongly connected component all of whose members appear only in
	// simple constraints forces every member to the same level, so the
	// component is labeled in one step (the lub of its external needs)
	// instead of per-attribute forward lowering. Purely an optimization —
	// results are identical — but it turns pathological simple-cycle
	// components from quadratic to linear (ablation benchmark
	// BenchmarkSimpleCycleCollapse).
	CollapseSimpleCycles bool
}

// Stats reports operation counts from one solve, used by the complexity
// experiments (E2/E3) to confirm the bounds of Theorem 5.2.
type Stats struct {
	TryCalls      int // invocations of Try
	TryFailures   int // Try invocations that returned failure
	MinlevelCalls int // invocations of Minlevel
	TrySteps      int // constraint checks performed inside Try
	DescentSteps  int // lattice covers expansions in Minlevel/BigLoop
}

// Result is the outcome of a solve.
type Result struct {
	// Assignment is the computed minimal classification λ.
	Assignment constraint.Assignment
	// Priorities is the §4 priority structure used for the evaluation
	// order (one set per strongly connected component).
	Priorities *graph.PriorityResult
	// UpperBounds is the firm per-attribute bound derived by the §6
	// preprocessing pass; nil when the instance has no upper-bound
	// constraints.
	UpperBounds constraint.Assignment
	// Trace is the recorded execution trace, nil unless requested.
	Trace *Trace
	// Stats counts solver operations.
	Stats Stats
}

// Solve computes a minimal classification for the constraint set. Instances
// consisting solely of lower-bound constraints (Definition 2.1) are always
// consistent and never yield an error; instances with §6 upper-bound
// constraints may be inconsistent, in which case an *InconsistencyError is
// returned.
func Solve(s *constraint.Set, opt Options) (*Result, error) {
	sv := newSolver(s, opt)
	if len(s.UpperBounds()) > 0 {
		ub, err := deriveUpperBounds(s)
		if err != nil {
			return nil, err
		}
		sv.start = ub
		sv.eagerMinlevel = true
	}
	sv.run()
	res := &Result{
		Assignment:  sv.lambda,
		Priorities:  sv.pr,
		UpperBounds: sv.start,
		Trace:       sv.trace,
		Stats:       sv.stats,
	}
	return res, nil
}

// MustSolve is Solve that panics on error, for fixtures built from
// lower-bound-only constraint sets (which cannot fail).
func MustSolve(s *constraint.Set, opt Options) *Result {
	r, err := Solve(s, opt)
	if err != nil {
		panic(err)
	}
	return r
}

// solver carries the mutable state of one run of Algorithm 3.1.
type solver struct {
	set *constraint.Set
	lat lattice.Lattice
	opt Options

	cons    []constraint.Constraint
	constr  [][]int // Constr[A]: constraint indices with A on the lhs
	pr      *graph.PriorityResult
	minComp lattice.ComplementMinimizer // non-nil when the fast path applies

	lambda    constraint.Assignment // λ
	done      []bool
	unlabeled []int                 // per complex constraint
	start     constraint.Assignment // initial levels (nil = all ⊤)
	// eagerMinlevel makes BigLoop solve complex constraints for every lhs
	// attribute, not only the last-labeled one — required when attributes
	// may start below ⊤ (§6 upper bounds).
	eagerMinlevel bool

	trace *Trace
	stats Stats
	// lastFailure is the index of the constraint whose violation made the
	// most recent try call fail, or -1. Used by Explain.
	lastFailure int

	// Scratch buffers reused across Try calls.
	tocheck map[constraint.Attr]lattice.Level
	tolower map[constraint.Attr]lattice.Level
	queue   []constraint.Attr
}

func newSolver(s *constraint.Set, opt Options) *solver {
	sv := &solver{
		set:     s,
		lat:     s.Lattice(),
		opt:     opt,
		cons:    s.Constraints(),
		constr:  s.ConstraintsOn(),
		pr:      s.Priorities(),
		tocheck: make(map[constraint.Attr]lattice.Level),
		tolower: make(map[constraint.Attr]lattice.Level),
	}
	if !opt.DisableMinComplement {
		if mc, ok := sv.lat.(lattice.ComplementMinimizer); ok {
			sv.minComp = mc
		}
	}
	if opt.RecordTrace {
		sv.trace = &Trace{set: s}
	}
	return sv
}

// run executes Main's initialization plus BigLoop.
func (sv *solver) run() {
	n := sv.set.NumAttrs()
	sv.lambda = make(constraint.Assignment, n)
	for i := range sv.lambda {
		if sv.start != nil {
			sv.lambda[i] = sv.start[i]
		} else {
			sv.lambda[i] = sv.lat.Top()
		}
	}
	sv.done = make([]bool, n)
	sv.unlabeled = make([]int, len(sv.cons))
	for i, c := range sv.cons {
		if !c.Simple() {
			sv.unlabeled[i] = len(c.LHS)
		}
	}
	if sv.trace != nil {
		sv.trace.record(-1, "initial", false, sv.lambda)
	}
	sv.bigloop()
}

// bigloop is the BigLoop procedure of Figure 3.
func (sv *solver) bigloop() {
	for p := sv.pr.Max; p >= 1; p-- {
		if sv.opt.CollapseSimpleCycles && sv.collapseSet(sv.pr.Sets[p]) {
			continue
		}
		for _, node := range sv.pr.Sets[p] {
			sv.processAttr(constraint.Attr(node))
		}
	}
}

// collapseSet applies the §3.2 simple-cycle optimization to one priority
// set when eligible: the set has several members (a real cycle), no
// member appears in a complex constraint, and attributes may start only
// at ⊤ (upper bounds could break the all-equal argument, so eager mode is
// excluded). All members are then pinned to the lub of the set's external
// needs. Reports whether the set was handled.
func (sv *solver) collapseSet(nodes []int) bool {
	if len(nodes) < 2 || sv.eagerMinlevel {
		return false
	}
	for _, node := range nodes {
		for _, ci := range sv.constr[constraint.Attr(node)] {
			if !sv.cons[ci].Simple() {
				return false
			}
		}
	}
	// Mutual reachability through simple constraints forces equality, so
	// the minimal common level is the lub of every member's external
	// requirements (internal right-hand sides contribute the same level
	// and are skipped).
	inSet := make(map[constraint.Attr]bool, len(nodes))
	for _, node := range nodes {
		inSet[constraint.Attr(node)] = true
	}
	l := sv.lat.Bottom()
	for _, node := range nodes {
		for _, ci := range sv.constr[constraint.Attr(node)] {
			c := sv.cons[ci]
			if !c.RHS.IsLevel && inSet[c.RHS.Attr] {
				continue
			}
			l = sv.lat.Lub(l, sv.set.RHSLevel(sv.lambda, c.RHS))
		}
	}
	for _, node := range nodes {
		a := constraint.Attr(node)
		sv.lambda[a] = l
		sv.done[a] = true
		// No unlabeled counters to maintain: eligibility guarantees no
		// member sits on a complex left-hand side.
		if sv.trace != nil {
			sv.trace.record(a, "collapse", false, sv.lambda)
		}
	}
	return true
}

// processAttr labels one attribute: the body of BigLoop's second-level
// loop.
func (sv *solver) processAttr(a constraint.Attr) {
	aDone := true
	l := sv.lat.Bottom()
	for _, ci := range sv.constr[a] {
		c := sv.cons[ci]
		if !c.Simple() {
			sv.unlabeled[ci]--
		}
		if sv.rhsDone(c) {
			if c.Simple() {
				l = sv.lat.Lub(l, sv.set.RHSLevel(sv.lambda, c.RHS))
			} else if sv.unlabeled[ci] == 0 || sv.eagerMinlevel {
				l = sv.lat.Lub(l, sv.minlevel(a, c))
			} else if !sv.othersCover(a, c) {
				// A complex constraint with unlabeled siblings may be
				// deferred to the sibling that is labeled last — but only
				// while it holds no matter how low a goes. Outside cycles
				// that is automatic (unlabeled siblings still sit at ⊤);
				// inside an SCC, Try may already have lowered a sibling, in
				// which case a must go through forward lowering so the
				// constraint is re-checked at every step.
				aDone = false
			}
		} else {
			aDone = false
		}
	}
	if aDone {
		sv.lambda[a] = l
		sv.done[a] = true
		if sv.trace != nil {
			sv.trace.record(a, "assign", false, sv.lambda)
		}
		return
	}
	// Forward lowering through the cycle: try each maximal level between
	// the lower bound l and the current level.
	dset := lattice.CoversAbove(sv.lat, sv.lambda[a], l)
	sv.stats.DescentSteps += len(dset)
	for len(dset) > 0 {
		cand := dset[0]
		dset = dset[1:]
		lower, ok := sv.try(a, cand)
		sv.stats.TryCalls++
		if !ok {
			sv.stats.TryFailures++
			if sv.trace != nil {
				sv.trace.record(a, fmt.Sprintf("try(%s,%s)", sv.set.AttrName(a), sv.lat.FormatLevel(cand)), true, sv.lambda)
			}
			continue
		}
		for attr, lvl := range lower {
			sv.lambda[attr] = lvl
		}
		if sv.trace != nil {
			sv.trace.record(a, fmt.Sprintf("try(%s,%s)", sv.set.AttrName(a), sv.lat.FormatLevel(cand)), false, sv.lambda)
		}
		dset = lattice.CoversAbove(sv.lat, sv.lambda[a], l)
		sv.stats.DescentSteps += len(dset)
	}
	sv.done[a] = true
	if sv.trace != nil {
		sv.trace.record(a, "done", false, sv.lambda)
	}
}

// othersCover reports whether the lub of the left-hand-side attributes
// other than a already dominates the right-hand side, i.e. the constraint
// holds regardless of the level assigned to a.
func (sv *solver) othersCover(a constraint.Attr, c constraint.Constraint) bool {
	lubothers := sv.lat.Bottom()
	for _, o := range c.LHS {
		if o != a {
			lubothers = sv.lat.Lub(lubothers, sv.lambda[o])
		}
	}
	return sv.lat.Dominates(lubothers, sv.set.RHSLevel(sv.lambda, c.RHS))
}

// rhsDone reports whether a constraint's right-hand side is definitively
// labeled (level constants always are).
func (sv *solver) rhsDone(c constraint.Constraint) bool {
	return c.RHS.IsLevel || sv.done[c.RHS.Attr]
}

// minlevel is the Minlevel procedure of Figure 3: a minimal level that a
// may assume without violating the complex constraint c, given the current
// levels of the other left-hand-side attributes. When the lattice provides
// the footnote-4 closed form (compartmented lattices) it is used directly;
// otherwise the procedure descends the lattice from a's current level,
// stopping at the lowest level all of whose immediate descendants would
// violate the constraint.
func (sv *solver) minlevel(a constraint.Attr, c constraint.Constraint) lattice.Level {
	sv.stats.MinlevelCalls++
	lubothers := sv.lat.Bottom()
	for _, o := range c.LHS {
		if o != a {
			lubothers = sv.lat.Lub(lubothers, sv.lambda[o])
		}
	}
	rhs := sv.set.RHSLevel(sv.lambda, c.RHS)
	if sv.minComp != nil {
		return sv.minComp.MinComplement(lubothers, rhs)
	}
	if sv.lat.Dominates(lubothers, rhs) {
		return sv.lat.Bottom()
	}
	last := sv.lambda[a]
	trylevels := sv.lat.Covers(last)
	sv.stats.DescentSteps += len(trylevels)
	for len(trylevels) > 0 {
		l := trylevels[0]
		trylevels = trylevels[1:]
		if sv.lat.Dominates(sv.lat.Lub(l, lubothers), rhs) {
			last = l
			trylevels = sv.lat.Covers(last)
			sv.stats.DescentSteps += len(trylevels)
		}
	}
	return last
}

// try is the Try procedure of Figure 3. It returns the set of lowerings
// (including a→l itself) that together with the current λ still satisfy
// all constraints, or ok=false if lowering a to l transitively violates a
// constraint whose right-hand side is already definitively labeled. λ is
// not modified.
func (sv *solver) try(a constraint.Attr, l lattice.Level) (map[constraint.Attr]lattice.Level, bool) {
	sv.lastFailure = -1
	tocheck := sv.tocheck
	tolower := sv.tolower
	clear(tocheck)
	clear(tolower)
	queue := sv.queue[:0]

	tocheck[a] = l
	queue = append(queue, a)

	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		curLvl, pending := tocheck[cur]
		if !pending {
			continue // superseded entry
		}
		delete(tocheck, cur)
		tolower[cur] = curLvl

		for _, ci := range sv.constr[cur] {
			c := sv.cons[ci]
			sv.stats.TrySteps++
			// Level of the lhs under the tentative lowerings: Tolower
			// entries override λ.
			level := sv.lat.Bottom()
			for _, m := range c.LHS {
				if lv, ok := tolower[m]; ok {
					level = sv.lat.Lub(level, lv)
				} else {
					level = sv.lat.Lub(level, sv.lambda[m])
				}
			}
			rhsLvl := sv.set.RHSLevel(sv.lambda, c.RHS)
			if sv.rhsDone(c) {
				if !sv.lat.Dominates(level, rhsLvl) {
					sv.lastFailure = ci
					sv.queue = queue[:0]
					return nil, false
				}
				continue
			}
			if sv.lat.Dominates(level, rhsLvl) {
				continue
			}
			rhs := c.RHS.Attr
			newlevel := sv.lat.Glb(rhsLvl, level)
			if old, ok := tolower[rhs]; ok {
				if sv.lat.Dominates(newlevel, old) {
					continue // existing lowering already suffices
				}
				newlevel = sv.lat.Glb(old, newlevel)
				delete(tolower, rhs)
				tocheck[rhs] = newlevel
				queue = append(queue, rhs)
			} else if old, ok := tocheck[rhs]; ok {
				if sv.lat.Dominates(newlevel, old) {
					continue
				}
				tocheck[rhs] = sv.lat.Glb(old, newlevel) // already queued
			} else {
				tocheck[rhs] = newlevel
				queue = append(queue, rhs)
			}
		}
	}
	sv.queue = queue[:0]
	// Copy the result out: the scratch map is reused by the next call.
	out := make(map[constraint.Attr]lattice.Level, len(tolower))
	for k, v := range tolower {
		out[k] = v
	}
	return out, true
}
