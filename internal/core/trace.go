package core

import (
	"fmt"
	"strings"

	"minup/internal/constraint"
)

// Trace records the solver's execution step by step, enough to reprint the
// classification-process table of Figure 2(b): one row per action (direct
// assignment, Try call, completion), with the full assignment after the
// action and a failure marker for failed Try calls.
type Trace struct {
	set   *constraint.Set
	Steps []Step
}

// Step is one recorded solver action.
type Step struct {
	// Attr is the attribute being processed (-1 for the initial snapshot).
	Attr constraint.Attr
	// Action describes the step: "initial", "assign", "done", or
	// "try(A,l)".
	Action string
	// Failed marks a Try call that returned failure (the paper's "F").
	Failed bool
	// After is the assignment after the step.
	After constraint.Assignment
}

func (t *Trace) record(a constraint.Attr, action string, failed bool, after constraint.Assignment) {
	t.Steps = append(t.Steps, Step{Attr: a, Action: action, Failed: failed, After: after.Clone()})
}

// Tries returns the Try-call steps in order, formatted as in the paper,
// e.g. "try(B,L5)" and "try(F,L2) F".
func (t *Trace) Tries() []string {
	var out []string
	for _, s := range t.Steps {
		if !strings.HasPrefix(s.Action, "try(") {
			continue
		}
		if s.Failed {
			out = append(out, s.Action+" F")
		} else {
			out = append(out, s.Action)
		}
	}
	return out
}

// Table renders the trace as a text table in the style of Figure 2(b):
// one column per attribute (in declaration order), one row per step, the
// level of every attribute after each step, and "F" marking failed tries.
func (t *Trace) Table() string {
	s := t.set
	lat := s.Lattice()
	attrs := s.Attrs()

	header := make([]string, 0, len(attrs)+1)
	header = append(header, "step")
	for _, a := range attrs {
		header = append(header, s.AttrName(a))
	}
	rows := [][]string{header}
	for _, st := range t.Steps {
		label := st.Action
		if st.Attr >= 0 && !strings.HasPrefix(st.Action, "try(") {
			label = s.AttrName(st.Attr) + " " + st.Action
		}
		if st.Failed {
			label += " F"
		}
		row := make([]string, 0, len(attrs)+1)
		row = append(row, label)
		for _, a := range attrs {
			row = append(row, lat.FormatLevel(st.After[a]))
		}
		rows = append(rows, row)
	}

	// Column widths.
	width := make([]int, len(header))
	for _, row := range rows {
		for i, cell := range row {
			if len(cell) > width[i] {
				width[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	for ri, row := range rows {
		var line strings.Builder
		for i, cell := range row {
			if i > 0 {
				line.WriteString("  ")
			}
			fmt.Fprintf(&line, "%-*s", width[i], cell)
		}
		b.WriteString(strings.TrimRight(line.String(), " "))
		b.WriteString("\n")
		if ri == 0 {
			for i, w := range width {
				if i > 0 {
					b.WriteString("  ")
				}
				b.WriteString(strings.Repeat("-", w))
			}
			b.WriteString("\n")
		}
	}
	return b.String()
}

// Final returns the assignment after the last step.
func (t *Trace) Final() constraint.Assignment {
	if len(t.Steps) == 0 {
		return nil
	}
	return t.Steps[len(t.Steps)-1].After
}
