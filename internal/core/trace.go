package core

import (
	"fmt"
	"strings"

	"minup/internal/constraint"
	"minup/internal/lattice"
	"minup/internal/obs"
)

// Trace records the solver's execution step by step, enough to reprint the
// classification-process table of Figure 2(b): one row per action (direct
// assignment, Try call, completion), with the full assignment after the
// action and a failure marker for failed Try calls.
//
// Trace is an obs.EventSink: the solver streams its step events into it and
// the trace stores only the per-step deltas (attribute, old level, new
// level) plus one clone of the initial assignment, so memory is linear in
// the number of level changes instead of the steps×attributes quadratic
// cost of snapshotting the assignment at every step. The full per-step
// assignments of Table(), Final(), and Steps() are reconstructed lazily by
// replaying the deltas.
type Trace struct {
	set     *constraint.Set
	initial constraint.Assignment // clone of the assignment before step one
	current constraint.Assignment // running assignment, advanced per delta
	steps   []traceStep
}

// traceKindInitial marks the synthetic first row; it never appears in the
// solver's event stream.
const traceKindInitial = obs.EventKind(0xff)

// traceStep is one recorded row: its kind, the attribute acted on, the
// level named by the action (the tried/assigned level), and the level
// changes the action caused.
type traceStep struct {
	kind   obs.EventKind
	attr   constraint.Attr
	level  lattice.Level
	deltas []traceDelta
}

// traceDelta is one attribute level change within a step.
type traceDelta struct {
	attr     constraint.Attr
	old, new lattice.Level
}

// Step is one materialized solver action, as produced by Steps.
type Step struct {
	// Attr is the attribute being processed (-1 for the initial snapshot).
	Attr constraint.Attr
	// Action describes the step: "initial", "assign", "collapse", "done",
	// or "try(A,l)".
	Action string
	// Failed marks a Try call that returned failure (the paper's "F").
	Failed bool
	// After is the assignment after the step.
	After constraint.Assignment
}

// begin records the initial assignment (one clone) and the "initial" row.
func (t *Trace) begin(m constraint.Assignment) {
	t.initial = m.Clone()
	t.current = m.Clone()
	t.steps = append(t.steps, traceStep{kind: traceKindInitial, attr: -1})
}

// Event implements obs.EventSink: assign/try/try-failed/collapse/done
// events open a new row; lower events append their delta to the row of the
// try that caused them.
func (t *Trace) Event(e obs.Event) {
	a := constraint.Attr(e.Attr)
	l := lattice.Level(e.Level)
	switch e.Kind {
	case obs.EventLower:
		if len(t.steps) == 0 {
			return // defensive: lower outside any step
		}
		t.applyDelta(&t.steps[len(t.steps)-1], a, l)
	case obs.EventAssign, obs.EventCollapse:
		t.steps = append(t.steps, traceStep{kind: e.Kind, attr: a, level: l})
		t.applyDelta(&t.steps[len(t.steps)-1], a, l)
	case obs.EventTry, obs.EventTryFailed, obs.EventDone:
		t.steps = append(t.steps, traceStep{kind: e.Kind, attr: a, level: l})
	}
}

func (t *Trace) applyDelta(st *traceStep, a constraint.Attr, l lattice.Level) {
	st.deltas = append(st.deltas, traceDelta{attr: a, old: t.current[a], new: l})
	t.current[a] = l
}

// label renders a step's row label in the style of Figure 2(b).
func (t *Trace) label(st traceStep) string {
	switch st.kind {
	case traceKindInitial:
		return "initial"
	case obs.EventAssign:
		return t.set.AttrName(st.attr) + " assign"
	case obs.EventCollapse:
		return t.set.AttrName(st.attr) + " collapse"
	case obs.EventDone:
		return t.set.AttrName(st.attr) + " done"
	case obs.EventTry:
		return fmt.Sprintf("try(%s,%s)", t.set.AttrName(st.attr), t.set.Lattice().FormatLevel(st.level))
	case obs.EventTryFailed:
		return fmt.Sprintf("try(%s,%s) F", t.set.AttrName(st.attr), t.set.Lattice().FormatLevel(st.level))
	}
	return "unknown"
}

// Len returns the number of recorded steps, including the initial row.
func (t *Trace) Len() int { return len(t.steps) }

// Steps materializes the trace as one Step per row, each carrying a full
// assignment clone — the eager representation earlier versions stored.
// Cost is steps×attributes; prefer Table()/Tries()/Final() on large runs.
func (t *Trace) Steps() []Step {
	out := make([]Step, 0, len(t.steps))
	cur := t.initial.Clone()
	for _, st := range t.steps {
		for _, d := range st.deltas {
			cur[d.attr] = d.new
		}
		action := t.label(st)
		failed := st.kind == obs.EventTryFailed
		if failed {
			action = strings.TrimSuffix(action, " F")
		} else if st.kind != traceKindInitial && st.kind != obs.EventTry {
			// Match the historical Action strings: bare verbs for
			// assign/collapse/done, the full "try(A,l)" for tries.
			action = strings.TrimPrefix(action, t.set.AttrName(st.attr)+" ")
		}
		out = append(out, Step{Attr: st.attr, Action: action, Failed: failed, After: cur.Clone()})
	}
	return out
}

// Tries returns the Try-call steps in order, formatted as in the paper,
// e.g. "try(B,L5)" and "try(F,L2) F".
func (t *Trace) Tries() []string {
	var out []string
	for _, st := range t.steps {
		if st.kind == obs.EventTry || st.kind == obs.EventTryFailed {
			out = append(out, t.label(st))
		}
	}
	return out
}

// Table renders the trace as a text table in the style of Figure 2(b):
// one column per attribute (in declaration order), one row per step, the
// level of every attribute after each step, and "F" marking failed tries.
// The per-step assignments are reconstructed by replaying the deltas.
func (t *Trace) Table() string {
	s := t.set
	lat := s.Lattice()
	attrs := s.Attrs()

	header := make([]string, 0, len(attrs)+1)
	header = append(header, "step")
	for _, a := range attrs {
		header = append(header, s.AttrName(a))
	}
	rows := [][]string{header}
	cur := t.initial.Clone()
	for _, st := range t.steps {
		for _, d := range st.deltas {
			cur[d.attr] = d.new
		}
		row := make([]string, 0, len(attrs)+1)
		row = append(row, t.label(st))
		for _, a := range attrs {
			row = append(row, lat.FormatLevel(cur[a]))
		}
		rows = append(rows, row)
	}

	// Column widths.
	width := make([]int, len(header))
	for _, row := range rows {
		for i, cell := range row {
			if len(cell) > width[i] {
				width[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	for ri, row := range rows {
		var line strings.Builder
		for i, cell := range row {
			if i > 0 {
				line.WriteString("  ")
			}
			fmt.Fprintf(&line, "%-*s", width[i], cell)
		}
		b.WriteString(strings.TrimRight(line.String(), " "))
		b.WriteString("\n")
		if ri == 0 {
			for i, w := range width {
				if i > 0 {
					b.WriteString("  ")
				}
				b.WriteString(strings.Repeat("-", w))
			}
			b.WriteString("\n")
		}
	}
	return b.String()
}

// Final returns the assignment after the last step.
func (t *Trace) Final() constraint.Assignment {
	if len(t.steps) == 0 {
		return nil
	}
	return t.current.Clone()
}
