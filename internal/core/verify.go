package core

import (
	"context"
	"fmt"

	"minup/internal/constraint"
	"minup/internal/lattice"
)

// This file provides verification and explanation tools layered on the
// solver's Try machinery:
//
//   - ProbeMinimality checks an arbitrary solution for pointwise
//     minimality by attempting, for every attribute, every one-cover
//     lowering together with the forward propagation it induces — the
//     exact criterion the paper's minimality proof (Theorem 5.1) is built
//     on, usable on instances far beyond the reach of the exhaustive
//     oracle.
//   - Explain reports, for one attribute of a solved instance, which
//     constraints pin it at its level: for each immediate descendant of
//     its level, the constraint that breaks when the attribute is lowered
//     there (with propagation).
//
// Both run in pooled sessions against a compiled snapshot; the Context
// variants poll for cancellation between probes.

// Verify checks that an assignment satisfies every constraint of the set,
// returning nil on success and an error naming the violations otherwise.
// It is the cheap (one pass over the constraints) guard the serving layer
// runs before returning any assignment it did not obtain from the minimal
// solver — in particular the Qian-baseline answers served under overload
// degradation, which are over-classified by construction but must still be
// constraint-clean.
func Verify(s *constraint.Set, m constraint.Assignment) error {
	if len(m) != s.NumAttrs() {
		return fmt.Errorf("core: assignment has %d levels for %d attributes", len(m), s.NumAttrs())
	}
	if v := s.Violations(m); v != nil {
		return fmt.Errorf("core: assignment violates %d constraint(s), first: %s", len(v), v[0])
	}
	return nil
}

// Witness is a strictly lower satisfying assignment found by
// ProbeMinimality, as evidence of non-minimality.
type Witness struct {
	// Attr is the attribute whose lowering initiated the witness.
	Attr constraint.Attr
	// To is the level Attr was lowered to.
	To lattice.Level
	// Assignment is the full strictly-lower satisfying assignment.
	Assignment constraint.Assignment
}

// ProbeMinimality reports whether the assignment is pointwise minimal for
// the constraint set, in the sense that no single-attribute lowering —
// together with the transitive lowerings it forces on other attributes —
// yields a satisfying assignment strictly below m. This is the fixpoint
// condition Algorithm 3.1 terminates on; for solutions produced by the
// solver it holds by construction, and for foreign assignments it is a
// strong (and, on lattices, exact for propagation-reachable witnesses)
// minimality check that runs in polynomial time.
//
// The assignment must satisfy the constraint set; otherwise an error is
// returned.
func ProbeMinimality(s *constraint.Set, m constraint.Assignment) (minimal bool, w *Witness, err error) {
	return ProbeMinimalityContext(context.Background(), s.Snapshot(), m)
}

// ProbeMinimalityContext is ProbeMinimality against a compiled snapshot,
// with periodic cancellation checks.
func ProbeMinimalityContext(ctx context.Context, c *constraint.Compiled, m constraint.Assignment) (minimal bool, w *Witness, err error) {
	if c == nil {
		return false, nil, ErrNotCompiled
	}
	s := c.Set()
	if v := s.Violations(m); v != nil {
		return false, nil, fmt.Errorf("core: assignment does not satisfy the constraints: %s", v[0])
	}
	sv := acquireProbe(ctx, c, m)
	defer sv.release()
	for _, a := range s.Attrs() {
		for _, cand := range sv.lat.Covers(m[a]) {
			lower, ok, err := sv.try(a, cand)
			if err != nil {
				return false, nil, err
			}
			if !ok {
				continue
			}
			witness := m.Clone()
			for attr, lvl := range lower {
				witness[attr] = lvl
			}
			if viol := s.Violations(witness); viol != nil {
				return false, nil, fmt.Errorf("core: internal error: probe produced a non-solution (%s)", viol[0])
			}
			return false, &Witness{Attr: a, To: cand, Assignment: witness}, nil
		}
	}
	return true, nil, nil
}

// acquireProbe builds a session positioned at an arbitrary assignment with
// every attribute un-done, so Try propagates lowerings freely and fails
// only against level constants.
func acquireProbe(ctx context.Context, c *constraint.Compiled, m constraint.Assignment) *session {
	sv := acquireSession(ctx, c, Options{})
	sv.lambda = m.Clone()
	return sv
}

// Binding describes why an attribute cannot be lowered to one immediate
// descendant of its level.
type Binding struct {
	// To is the rejected lower level.
	To lattice.Level
	// Constraint is the index (into Set.Constraints()) of the constraint
	// whose violation rejects the lowering, or -1 when an upper bound or
	// the propagation budget rejected it.
	Constraint int
	// Text is the human-readable form of the rejecting constraint.
	Text string
}

// Explanation reports why one attribute of a solved instance sits at its
// level.
type Explanation struct {
	Attr  constraint.Attr
	Level lattice.Level
	// Bindings has one entry per immediate descendant of Level, naming a
	// constraint that breaks if the attribute is lowered there (with
	// propagation). Empty means Level is the lattice bottom.
	Bindings []Binding
}

// Explain reports, for each immediate descendant of m[attr], one
// constraint that pins the attribute above it. The assignment must be a
// minimal solution (as produced by Solve); on non-minimal assignments some
// descendants may have no binding constraint, which is reported as an
// error identifying the lowerable direction.
func Explain(s *constraint.Set, m constraint.Assignment, attr constraint.Attr) (*Explanation, error) {
	return ExplainContext(context.Background(), s.Snapshot(), m, attr)
}

// ExplainContext is Explain against a compiled snapshot.
func ExplainContext(ctx context.Context, c *constraint.Compiled, m constraint.Assignment, attr constraint.Attr) (*Explanation, error) {
	if c == nil {
		return nil, ErrNotCompiled
	}
	s := c.Set()
	if v := s.Violations(m); v != nil {
		return nil, fmt.Errorf("core: assignment does not satisfy the constraints: %s", v[0])
	}
	sv := acquireProbe(ctx, c, m)
	defer sv.release()
	ex := &Explanation{Attr: attr, Level: m[attr]}
	for _, cand := range sv.lat.Covers(m[attr]) {
		_, ok, err := sv.try(attr, cand)
		if err != nil {
			return nil, err
		}
		if ok {
			return nil, fmt.Errorf("core: %s can be lowered to %s — assignment is not minimal",
				s.AttrName(attr), sv.lat.FormatLevel(cand))
		}
		ci := sv.lastFailure
		b := Binding{To: cand, Constraint: ci}
		if ci >= 0 {
			b.Text = s.Format(s.Constraints()[ci])
		}
		ex.Bindings = append(ex.Bindings, b)
	}
	return ex, nil
}

// FormatExplanation renders an explanation for humans.
func FormatExplanation(s *constraint.Set, ex *Explanation) string {
	lat := s.Lattice()
	out := fmt.Sprintf("%s = %s", s.AttrName(ex.Attr), lat.FormatLevel(ex.Level))
	if len(ex.Bindings) == 0 {
		return out + " (lattice bottom; no lower level exists)"
	}
	for _, b := range ex.Bindings {
		out += fmt.Sprintf("\n  cannot lower to %s: would violate %s",
			lat.FormatLevel(b.To), b.Text)
	}
	return out
}
