package core

import (
	"context"
	"strings"
	"sync"
	"testing"

	"minup/internal/constraint"
	"minup/internal/obs"
)

// TestStatsMatchTrace cross-checks the telemetry counters against the
// trace on the paper's Figure 2 instance: Stats.Tries and
// Stats.FailedTries must equal the counts derived from Trace.Tries().
func TestStatsMatchTrace(t *testing.T) {
	f := constraint.NewFigure2()
	res := MustSolve(f.Set, Options{RecordTrace: true})
	tries := res.Trace.Tries()
	failed := 0
	for _, s := range tries {
		if strings.HasSuffix(s, " F") {
			failed++
		}
	}
	if res.Stats.Tries != len(tries) {
		t.Errorf("Stats.Tries = %d, trace has %d try rows", res.Stats.Tries, len(tries))
	}
	if res.Stats.FailedTries != failed {
		t.Errorf("Stats.FailedTries = %d, trace has %d failed rows", res.Stats.FailedTries, failed)
	}
	if res.Stats.AttrsProcessed != f.Set.NumAttrs() {
		t.Errorf("AttrsProcessed = %d, want %d", res.Stats.AttrsProcessed, f.Set.NumAttrs())
	}
}

// TestEventStreamMatchesStats feeds the event stream into a counting sink
// and checks it is consistent with the per-solve stats block.
func TestEventStreamMatchesStats(t *testing.T) {
	f := constraint.NewFigure2()
	reg := obs.NewRegistry()
	sink := obs.NewCountingSink(reg, "ev")
	res := MustSolve(f.Set, Options{Sink: sink})

	try := reg.Counter("ev.try").Value()
	tryFailed := reg.Counter("ev.try_failed").Value()
	if int(try+tryFailed) != res.Stats.Tries {
		t.Errorf("try events %d + failed %d != Stats.Tries %d", try, tryFailed, res.Stats.Tries)
	}
	if int(tryFailed) != res.Stats.FailedTries {
		t.Errorf("try_failed events = %d, Stats.FailedTries = %d", tryFailed, res.Stats.FailedTries)
	}
	assign := reg.Counter("ev.assign").Value()
	done := reg.Counter("ev.done").Value()
	collapse := reg.Counter("ev.collapse").Value()
	if int(assign+done+collapse) != res.Stats.AttrsProcessed {
		t.Errorf("assign %d + done %d + collapse %d != AttrsProcessed %d",
			assign, done, collapse, res.Stats.AttrsProcessed)
	}
	// Every successful try lowers at least the tried attribute.
	lower := reg.Counter("ev.lower").Value()
	if lower < try {
		t.Errorf("lower events %d < successful tries %d", lower, try)
	}
}

// TestEventCarriesSCC checks events carry the §4 priority (SCC id) of
// their attribute.
func TestEventCarriesSCC(t *testing.T) {
	f := constraint.NewFigure2()
	compiled := f.Set.Compile()
	pr := compiled.Priorities()
	bad := 0
	sink := obs.SinkFunc(func(e obs.Event) {
		if e.Attr < 0 || int(e.SCC) != pr.Priority[e.Attr] {
			bad++
		}
	})
	if _, err := SolveContext(context.Background(), compiled, Options{Sink: sink}); err != nil {
		t.Fatal(err)
	}
	if bad != 0 {
		t.Errorf("%d events carried a wrong SCC id", bad)
	}
}

// TestCompiledWithSink checks the snapshot-attached default sink: solves of
// the WithSink view stream events, solves of the base snapshot do not, and
// the view shares the compiled data.
func TestCompiledWithSink(t *testing.T) {
	f := constraint.NewFigure2()
	base := f.Set.Compile()
	var events int
	view := base.WithSink(obs.SinkFunc(func(obs.Event) { events++ }))
	if view.Priorities() != base.Priorities() {
		t.Error("WithSink view does not share compiled data")
	}

	if _, err := SolveContext(context.Background(), base, Options{}); err != nil {
		t.Fatal(err)
	}
	if events != 0 {
		t.Fatalf("solve of base snapshot emitted %d events", events)
	}
	res, err := SolveContext(context.Background(), view, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if events == 0 {
		t.Error("solve of WithSink view emitted no events")
	}
	if events < res.Stats.Tries+res.Stats.AttrsProcessed {
		t.Errorf("only %d events for %d tries + %d attrs", events, res.Stats.Tries, res.Stats.AttrsProcessed)
	}
}

// TestCollectLatticeOps checks the op counters are populated exactly when
// requested.
func TestCollectLatticeOps(t *testing.T) {
	f := constraint.NewFigure2()
	plain := MustSolve(f.Set, Options{})
	if plain.Stats.LatticeOps.Total() != 0 {
		t.Errorf("lattice ops counted without CollectLatticeOps: %+v", plain.Stats.LatticeOps)
	}
	counted := MustSolve(f.Set, Options{CollectLatticeOps: true})
	if counted.Stats.LatticeOps.Lub == 0 || counted.Stats.LatticeOps.Dominates == 0 {
		t.Errorf("lattice ops not counted: %+v", counted.Stats.LatticeOps)
	}
	// Instrumentation must not change the result.
	if !plain.Assignment.Equal(counted.Assignment) {
		t.Error("CollectLatticeOps changed the solution")
	}
}

// TestSolveDurationAndPool sanity-checks the wall-time and pool fields.
func TestSolveDurationAndPool(t *testing.T) {
	f := constraint.NewFigure2()
	compiled := f.Set.Compile()
	// Prime the pool, then a same-goroutine re-solve must hit it.
	if _, err := SolveContext(context.Background(), compiled, Options{}); err != nil {
		t.Fatal(err)
	}
	res, err := SolveContext(context.Background(), compiled, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats.PoolHit {
		t.Error("second sequential solve did not reuse a pooled session")
	}
	if res.Stats.Duration <= 0 {
		t.Errorf("Duration = %v, want > 0", res.Stats.Duration)
	}
}

// TestConcurrentMetricsAggregate runs many concurrent solves of one
// compiled snapshot recording into a shared registry and checks the
// aggregate counters are exact: the solve is deterministic, so every
// counter must equal solves × the single-solve value. Run under -race this
// also proves the registry path is data-race free.
func TestConcurrentMetricsAggregate(t *testing.T) {
	f := constraint.NewFigure2()
	compiled := f.Set.Compile()
	one, err := SolveContext(context.Background(), compiled, Options{})
	if err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	const workers, per = 8, 25
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if _, err := SolveContext(context.Background(), compiled, Options{Metrics: reg}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()

	const total = workers * per
	checks := map[string]uint64{
		MetricSolveCount:          total,
		MetricSolveErrors:         0,
		MetricSolveTries:          uint64(total * one.Stats.Tries),
		MetricSolveFailedTries:    uint64(total * one.Stats.FailedTries),
		MetricSolveAttrsProcessed: uint64(total * one.Stats.AttrsProcessed),
		MetricSolveMinlevelCalls:  uint64(total * one.Stats.MinlevelCalls),
		MetricSolveTrySteps:       uint64(total * one.Stats.TrySteps),
	}
	for name, want := range checks {
		if got := reg.Counter(name).Value(); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	hit := reg.Counter(MetricSolvePoolHit).Value()
	miss := reg.Counter(MetricSolvePoolMiss).Value()
	if hit+miss != total {
		t.Errorf("pool hit %d + miss %d != %d solves", hit, miss, total)
	}
	if got := reg.Histogram(MetricSolveDurationUS, obs.DurationBucketsUS).Count(); got != total {
		t.Errorf("duration histogram count = %d, want %d", got, total)
	}
}

// TestTraceStepsReconstruction checks the lazily materialized Steps agree
// with Table/Final on the Figure 2 instance.
func TestTraceStepsReconstruction(t *testing.T) {
	f := constraint.NewFigure2()
	res := MustSolve(f.Set, Options{RecordTrace: true})
	steps := res.Trace.Steps()
	if len(steps) != res.Trace.Len() {
		t.Fatalf("Steps() returned %d rows, Len() = %d", len(steps), res.Trace.Len())
	}
	if steps[0].Action != "initial" || steps[0].Attr != -1 {
		t.Errorf("first step = %+v, want the initial row", steps[0])
	}
	last := steps[len(steps)-1]
	if !last.After.Equal(res.Trace.Final()) {
		t.Error("last step's After differs from Final()")
	}
	if !last.After.Equal(res.Assignment) {
		t.Error("last step's After differs from the result assignment")
	}
	failed := 0
	for _, s := range steps {
		if s.Failed {
			failed++
			if !strings.HasPrefix(s.Action, "try(") {
				t.Errorf("failed step with action %q", s.Action)
			}
		}
	}
	if failed != res.Stats.FailedTries {
		t.Errorf("%d failed steps, Stats.FailedTries = %d", failed, res.Stats.FailedTries)
	}
}
