package core

import "minup/internal/obs"

// Canonical registry metric names recorded by Stats.Record. Exported as
// constants so the serve layer and tests refer to one spelling.
const (
	MetricSolveCount          = "solve.count"
	MetricSolveErrors         = "solve.errors"
	MetricSolveTries          = "solve.tries"
	MetricSolveFailedTries    = "solve.failed_tries"
	MetricSolveCollapses      = "solve.collapses"
	MetricSolveAttrsProcessed = "solve.attrs_processed"
	MetricSolveMinlevelCalls  = "solve.minlevel_calls"
	MetricSolveTrySteps       = "solve.try_steps"
	MetricSolveDescentSteps   = "solve.descent_steps"
	MetricSolveLatticeLub     = "solve.lattice.lub"
	MetricSolveLatticeGlb     = "solve.lattice.glb"
	MetricSolveLatticeDom     = "solve.lattice.dominates"
	MetricSolveLatticeCovers  = "solve.lattice.covers"
	MetricSolvePoolHit        = "solve.pool.hit"
	MetricSolvePoolMiss       = "solve.pool.miss"
	MetricSolveDurationUS     = "solve.duration_us"
	MetricSolveTriesPerSolve  = "solve.tries_per_solve"
	// MetricSolvePanics counts solver panics recovered by SolveContext's
	// guard (each also discarded a pooled session). Incremented by the
	// guard itself, not by Stats.Record: a panicking solve has no
	// trustworthy stats to record.
	MetricSolvePanics = "solve.panics"
)

// Record aggregates one solve's stats into the registry under the
// canonical "solve.*" names: cumulative counters for the operation counts,
// a duration histogram in microseconds, and a per-solve tries histogram.
// err is the solve's outcome (non-nil bumps solve.errors). Safe for
// concurrent use — the registry's metrics are atomics.
func (s *Stats) Record(r *obs.Registry, err error) {
	if r == nil {
		return
	}
	r.Counter(MetricSolveCount).Inc()
	if err != nil {
		r.Counter(MetricSolveErrors).Inc()
	}
	r.Counter(MetricSolveTries).Add(uint64(s.Tries))
	r.Counter(MetricSolveFailedTries).Add(uint64(s.FailedTries))
	r.Counter(MetricSolveCollapses).Add(uint64(s.Collapses))
	r.Counter(MetricSolveAttrsProcessed).Add(uint64(s.AttrsProcessed))
	r.Counter(MetricSolveMinlevelCalls).Add(uint64(s.MinlevelCalls))
	r.Counter(MetricSolveTrySteps).Add(uint64(s.TrySteps))
	r.Counter(MetricSolveDescentSteps).Add(uint64(s.DescentSteps))
	r.Counter(MetricSolveLatticeLub).Add(s.LatticeOps.Lub)
	r.Counter(MetricSolveLatticeGlb).Add(s.LatticeOps.Glb)
	r.Counter(MetricSolveLatticeDom).Add(s.LatticeOps.Dominates)
	r.Counter(MetricSolveLatticeCovers).Add(s.LatticeOps.Covers)
	if s.PoolHit {
		r.Counter(MetricSolvePoolHit).Inc()
	} else {
		r.Counter(MetricSolvePoolMiss).Inc()
	}
	r.Histogram(MetricSolveDurationUS, obs.DurationBucketsUS).Observe(uint64(s.Duration.Microseconds()))
	r.Histogram(MetricSolveTriesPerSolve, obs.SizeBuckets).Observe(uint64(s.Tries))
}
