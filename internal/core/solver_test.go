package core

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"minup/internal/baseline"
	"minup/internal/constraint"
	"minup/internal/lattice"
	"minup/internal/workload"
)

// TestFigure2 reproduces the paper's worked example end to end (experiment
// E1): the priority sets, the exact sequence of Try calls of Figure 2(b),
// and the final minimal classification.
func TestFigure2(t *testing.T) {
	f := constraint.NewFigure2()
	res := MustSolve(f.Set, Options{RecordTrace: true})

	if !f.Set.Satisfies(res.Assignment) {
		t.Fatalf("solution violates constraints: %v", f.Set.Violations(res.Assignment))
	}
	if !res.Assignment.Equal(f.Want) {
		t.Fatalf("final classification differs from Figure 2(b):\n got %s\nwant %s",
			f.Set.FormatAssignment(res.Assignment), f.Set.FormatAssignment(f.Want))
	}

	// Priority numbering matches the paper exactly:
	// [1]={D} [2]={I,O,N} [3]={B,C,E,F,G,M} [4]={P}.
	pr := res.Priorities
	wantSets := map[int][]constraint.Attr{
		1: {f.D},
		2: {f.I, f.O, f.N},
		3: {f.B, f.C, f.E, f.F, f.G, f.M},
		4: {f.P},
	}
	if pr.Max != 4 {
		t.Fatalf("max priority = %d, want 4", pr.Max)
	}
	for p, want := range wantSets {
		got := make([]constraint.Attr, 0, len(pr.Sets[p]))
		for _, n := range pr.Sets[p] {
			got = append(got, constraint.Attr(n))
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("priority[%d] = %v, want %v", p, got, want)
		}
	}

	// Try-call sequence. The paper's table shows the same calls except
	// that it omits O's failing descent try(O,L3); the text defines the
	// table as illustrative, and the failing try is forced by the
	// pseudocode (O's DSet={L3} and lowering O below the simple cycle
	// I,O,N contradicts done[I]).
	wantTries := []string{
		"try(B,L5)", "try(C,L4)", "try(E,L2)", "try(E,L1)",
		"try(F,L2) F", "try(I,L5)", "try(O,L3) F",
	}
	if got := res.Trace.Tries(); !reflect.DeepEqual(got, wantTries) {
		t.Errorf("try sequence = %v\nwant %v", got, wantTries)
	}

	// Trace table renders every attribute and the failure marker.
	table := res.Trace.Table()
	for _, needle := range []string{"P", "try(F,L2) F", "L5"} {
		if !strings.Contains(table, needle) {
			t.Errorf("trace table missing %q:\n%s", needle, table)
		}
	}
	if !res.Trace.Final().Equal(res.Assignment) {
		t.Error("trace final snapshot differs from result")
	}

	// Minimality, verified exhaustively against the down-set of the
	// solution.
	min, err := baseline.IsMinimal(f.Set, res.Assignment)
	if err != nil {
		t.Fatal(err)
	}
	if !min {
		t.Error("Figure 2 solution is not minimal")
	}
}

// fixtureLattices returns the small lattices used by randomized solver
// tests.
func fixtureLattices() map[string]lattice.Lattice {
	return map[string]lattice.Lattice{
		"figure1b": lattice.FigureOneB(),
		"chain4":   lattice.MustChain("mil", "U", "C", "S", "TS"),
		"powerset": lattice.MustPowerset("cats", "x", "y", "z"),
		"mls":      lattice.MustMLS("mls", []string{"U", "S", "TS"}, []string{"a", "b", "c", "d"}),
	}
}

// TestSolveSatisfiesRandom checks the solver's primary postcondition — the
// result satisfies the constraints — across random shapes and lattices.
func TestSolveSatisfiesRandom(t *testing.T) {
	for name, lat := range fixtureLattices() {
		for seed := int64(0); seed < 40; seed++ {
			for _, spec := range []workload.ConstraintSpec{
				{Seed: seed, NumAttrs: 8, NumConstraints: 12, MaxLHS: 1, LevelRHSFraction: 0.4, Cyclic: false},
				{Seed: seed, NumAttrs: 8, NumConstraints: 14, MaxLHS: 3, LevelRHSFraction: 0.4, Cyclic: false},
				{Seed: seed, NumAttrs: 8, NumConstraints: 16, MaxLHS: 3, LevelRHSFraction: 0.3, Cyclic: true},
				{Seed: seed, NumAttrs: 10, NumConstraints: 20, MaxLHS: 4, LevelRHSFraction: 0.3, Cyclic: true, SingleSCC: true},
			} {
				s := workload.MustConstraints(lat, spec)
				res := MustSolve(s, Options{})
				if v := s.Violations(res.Assignment); v != nil {
					t.Fatalf("%s seed=%d spec=%+v: violations %v", name, seed, spec, v)
				}
			}
		}
	}
}

// TestSolveMinimalRandom checks exact pointwise minimality against the
// exhaustive oracle on small instances over small enumerable lattices,
// covering acyclic, cyclic, simple, and complex shapes.
func TestSolveMinimalRandom(t *testing.T) {
	sub, err := workload.RandomSublattice(19, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	lats := map[string]lattice.Lattice{
		"figure1b":   lattice.FigureOneB(),
		"chain4":     lattice.MustChain("mil", "U", "C", "S", "TS"),
		"sublattice": sub,
		"diamond": func() lattice.Lattice {
			e, err := lattice.NewExplicit("diamond",
				[]string{"bot", "a", "b", "top"},
				map[string][]string{"top": {"a", "b"}, "a": {"bot"}, "b": {"bot"}})
			if err != nil {
				t.Fatal(err)
			}
			return e
		}(),
	}
	for name, lat := range lats {
		for seed := int64(0); seed < 60; seed++ {
			for _, spec := range []workload.ConstraintSpec{
				{Seed: seed, NumAttrs: 5, NumConstraints: 7, MaxLHS: 1, LevelRHSFraction: 0.5, Cyclic: false},
				{Seed: seed, NumAttrs: 5, NumConstraints: 8, MaxLHS: 3, LevelRHSFraction: 0.4, Cyclic: true},
				{Seed: seed, NumAttrs: 6, NumConstraints: 10, MaxLHS: 3, LevelRHSFraction: 0.4, Cyclic: true, SingleSCC: true},
			} {
				s := workload.MustConstraints(lat, spec)
				res := MustSolve(s, Options{})
				min, err := baseline.IsMinimal(s, res.Assignment)
				if err != nil {
					t.Fatal(err)
				}
				if !min {
					t.Fatalf("%s seed=%d spec=%+v: non-minimal solution %s",
						name, seed, spec, s.FormatAssignment(res.Assignment))
				}
			}
		}
	}
}

// TestAcyclicSimpleUnique checks that on acyclic simple-only constraints —
// where §3.1 proves the minimal solution unique — the solver agrees with
// the brute-force oracle exactly.
func TestAcyclicSimpleUnique(t *testing.T) {
	lat := lattice.FigureOneB()
	for seed := int64(0); seed < 40; seed++ {
		s := workload.MustConstraints(lat, workload.ConstraintSpec{
			Seed: seed, NumAttrs: 5, NumConstraints: 8, MaxLHS: 1,
			LevelRHSFraction: 0.5,
		})
		res := MustSolve(s, Options{})
		minimal, err := baseline.BruteForce(s)
		if err != nil {
			t.Fatal(err)
		}
		if len(minimal) != 1 {
			t.Fatalf("seed=%d: %d minimal solutions for acyclic simple constraints, want 1", seed, len(minimal))
		}
		if !res.Assignment.Equal(minimal[0]) {
			t.Fatalf("seed=%d: solver %s != unique minimal %s",
				seed, s.FormatAssignment(res.Assignment), s.FormatAssignment(minimal[0]))
		}
	}
}

// TestSimpleOnlyMatchesQian checks that with only simple constraints the
// overclassifying baseline coincides with the minimal solution (both reduce
// to plain least-fixpoint propagation), anchoring the E5 comparison.
func TestSimpleOnlyMatchesQian(t *testing.T) {
	lat := lattice.MustChain("mil", "U", "C", "S", "TS")
	for seed := int64(0); seed < 30; seed++ {
		s := workload.MustConstraints(lat, workload.ConstraintSpec{
			Seed: seed, NumAttrs: 8, NumConstraints: 14, MaxLHS: 1,
			LevelRHSFraction: 0.4, Cyclic: true,
		})
		res := MustSolve(s, Options{})
		q, err := baseline.Qian(s)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Assignment.Equal(q) {
			t.Fatalf("seed=%d: simple-only disagreement\nsolver %s\nqian   %s",
				seed, s.FormatAssignment(res.Assignment), s.FormatAssignment(q))
		}
	}
}

// TestQianNeverBelow checks that the overclassifying baseline never
// classifies any attribute strictly below Algorithm 3.1's choice on
// instances without complex constraints... and on complex instances checks
// both satisfy and that Qian's total elevation is at least the solver's.
func TestQianDominatesInTotal(t *testing.T) {
	lat := lattice.MustChain("mil", "U", "C", "S", "TS")
	rank := func(l lattice.Level) int { return int(l) } // chain levels are ranks
	for seed := int64(0); seed < 40; seed++ {
		s := workload.MustConstraints(lat, workload.ConstraintSpec{
			Seed: seed, NumAttrs: 8, NumConstraints: 14, MaxLHS: 3,
			LevelRHSFraction: 0.4, Cyclic: true,
		})
		res := MustSolve(s, Options{})
		q, err := baseline.Qian(s)
		if err != nil {
			t.Fatal(err)
		}
		if !s.Satisfies(q) {
			t.Fatalf("seed=%d: Qian result violates constraints", seed)
		}
		sumOurs, sumQian := 0, 0
		for i := range res.Assignment {
			sumOurs += rank(res.Assignment[i])
			sumQian += rank(q[i])
		}
		if sumQian < sumOurs {
			t.Fatalf("seed=%d: Qian total rank %d below minimal solver %d", seed, sumQian, sumOurs)
		}
	}
}

// TestJIOpsSolveAgrees checks that solving entirely on the Aït-Kaci
// join-irreducible encoding reproduces the closure-table results.
func TestJIOpsSolveAgrees(t *testing.T) {
	base := lattice.FigureOneB()
	ji, err := lattice.NewJIOps(base)
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 25; seed++ {
		spec := workload.ConstraintSpec{
			Seed: seed, NumAttrs: 10, NumConstraints: 20, MaxLHS: 3,
			LevelRHSFraction: 0.3, Cyclic: true,
		}
		plain := MustSolve(workload.MustConstraints(base, spec), Options{})
		encoded := MustSolve(workload.MustConstraints(ji, spec), Options{})
		if !plain.Assignment.Equal(encoded.Assignment) {
			t.Fatalf("seed=%d: JI-encoded solve diverged", seed)
		}
	}
}

// TestMinComplementAblation checks that the footnote-4 closed form and the
// generic lattice descent produce identical classifications on
// compartmented lattices.
func TestMinComplementAblation(t *testing.T) {
	lat := lattice.MustMLS("mls", []string{"U", "S", "TS"}, []string{"a", "b", "c", "d"})
	for seed := int64(0); seed < 40; seed++ {
		s := workload.MustConstraints(lat, workload.ConstraintSpec{
			Seed: seed, NumAttrs: 9, NumConstraints: 16, MaxLHS: 3,
			LevelRHSFraction: 0.35, Cyclic: true,
		})
		fast := MustSolve(s, Options{})
		slow := MustSolve(s, Options{DisableMinComplement: true})
		if !fast.Assignment.Equal(slow.Assignment) {
			t.Fatalf("seed=%d: fast path diverges\nfast %s\nslow %s",
				seed, s.FormatAssignment(fast.Assignment), s.FormatAssignment(slow.Assignment))
		}
		if slow.Stats.MinlevelCalls != fast.Stats.MinlevelCalls {
			t.Errorf("seed=%d: minlevel call counts differ (%d vs %d)",
				seed, fast.Stats.MinlevelCalls, slow.Stats.MinlevelCalls)
		}
	}
}

// TestMinComplementAblationOtherLattices extends the footnote-4 ablation
// to the other ComplementMinimizer implementations (chains and powersets).
func TestMinComplementAblationOtherLattices(t *testing.T) {
	for name, lat := range map[string]lattice.Lattice{
		"chain":    lattice.MustChain("mil", "U", "C", "S", "TS"),
		"powerset": lattice.MustPowerset("p", "x", "y", "z", "w"),
	} {
		if _, ok := lat.(lattice.ComplementMinimizer); !ok {
			t.Fatalf("%s no longer implements ComplementMinimizer", name)
		}
		for seed := int64(0); seed < 25; seed++ {
			s := workload.MustConstraints(lat, workload.ConstraintSpec{
				Seed: seed, NumAttrs: 9, NumConstraints: 16, MaxLHS: 3,
				LevelRHSFraction: 0.35, Cyclic: true,
			})
			fast := MustSolve(s, Options{})
			slow := MustSolve(s, Options{DisableMinComplement: true})
			if !fast.Assignment.Equal(slow.Assignment) {
				t.Fatalf("%s seed=%d: fast path diverges", name, seed)
			}
		}
	}
}

// TestSolveIdempotentAndDeterministic checks that repeated solves of the
// same set yield identical assignments and traces.
func TestSolveDeterministic(t *testing.T) {
	s := workload.MustConstraints(lattice.FigureOneB(), workload.ConstraintSpec{
		Seed: 3, NumAttrs: 10, NumConstraints: 20, MaxLHS: 3,
		LevelRHSFraction: 0.3, Cyclic: true,
	})
	a := MustSolve(s, Options{RecordTrace: true})
	b := MustSolve(s, Options{RecordTrace: true})
	if !a.Assignment.Equal(b.Assignment) {
		t.Fatal("nondeterministic assignment")
	}
	if !reflect.DeepEqual(a.Trace.Tries(), b.Trace.Tries()) {
		t.Fatal("nondeterministic trace")
	}
}

// TestEmptyAndTrivialSets covers degenerate inputs.
func TestEmptyAndTrivialSets(t *testing.T) {
	lat := lattice.MustChain("c", "lo", "hi")
	s := constraint.NewSet(lat)
	a := s.MustAttr("a")
	res := MustSolve(s, Options{})
	if res.Assignment[a] != lat.Bottom() {
		t.Errorf("unconstrained attribute should rest at ⊥, got %s",
			lat.FormatLevel(res.Assignment[a]))
	}

	s2 := constraint.NewSet(lat)
	x := s2.MustAttr("x")
	s2.MustAdd([]constraint.Attr{x}, constraint.LevelRHS(lat.Top()))
	res2 := MustSolve(s2, Options{})
	if res2.Assignment[x] != lat.Top() {
		t.Error("forced top not applied")
	}
}

// TestSelfLoopSCC exercises an attribute alone in a cycle with itself via
// a two-node cycle a->b->a plus constants.
func TestTwoNodeCycle(t *testing.T) {
	lat := lattice.MustChain("c", "U", "S", "TS")
	s := constraint.NewSet(lat)
	a, b := s.MustAttr("a"), s.MustAttr("b")
	s.MustAdd([]constraint.Attr{a}, constraint.AttrRHS(b))
	s.MustAdd([]constraint.Attr{b}, constraint.AttrRHS(a))
	sLvl, _ := lat.ParseLevel("S")
	s.MustAdd([]constraint.Attr{a}, constraint.LevelRHS(sLvl))
	res := MustSolve(s, Options{})
	if res.Assignment[a] != sLvl || res.Assignment[b] != sLvl {
		t.Fatalf("cycle must pin both at S: %s", s.FormatAssignment(res.Assignment))
	}
}

// TestComplexCycleNondisjoint reproduces the §3.2 discussion of
// intersecting left-hand sides entangled in a cycle: three constraints
// whose lhs pairs {A,B},{B,C},{A,C} all must reach Secret.
func TestComplexIntersectingLHS(t *testing.T) {
	lat := lattice.MustChain("c", "U", "S", "TS")
	s := constraint.NewSet(lat)
	a, b, c := s.MustAttr("a"), s.MustAttr("b"), s.MustAttr("c")
	sLvl, _ := lat.ParseLevel("S")
	s.MustAdd([]constraint.Attr{a, b}, constraint.LevelRHS(sLvl))
	s.MustAdd([]constraint.Attr{b, c}, constraint.LevelRHS(sLvl))
	s.MustAdd([]constraint.Attr{a, c}, constraint.LevelRHS(sLvl))
	res := MustSolve(s, Options{})
	if v := s.Violations(res.Assignment); v != nil {
		t.Fatalf("violations: %v", v)
	}
	min, err := baseline.IsMinimal(s, res.Assignment)
	if err != nil {
		t.Fatal(err)
	}
	if !min {
		t.Fatalf("non-minimal: %s", s.FormatAssignment(res.Assignment))
	}
	// As the paper notes, one constraint necessarily has both attributes
	// upgraded: at least two of the three attributes are at S.
	atS := 0
	for _, l := range res.Assignment {
		if l == sLvl {
			atS++
		}
	}
	if atS < 2 {
		t.Errorf("expected at least two attributes at S, got %s", s.FormatAssignment(res.Assignment))
	}
}

// TestStats sanity-checks operation counting.
func TestStats(t *testing.T) {
	f := constraint.NewFigure2()
	res := MustSolve(f.Set, Options{})
	if res.Stats.Tries != 7 || res.Stats.FailedTries != 2 {
		t.Errorf("stats = %+v, want 7 tries / 2 failures", res.Stats)
	}
	if res.Stats.MinlevelCalls != 2 { // I and D
		t.Errorf("minlevel calls = %d, want 2", res.Stats.MinlevelCalls)
	}
}

// TestFigure2Table prints the reproduced Figure 2(b) table when -v is set,
// as living documentation.
func TestFigure2Table(t *testing.T) {
	f := constraint.NewFigure2()
	res := MustSolve(f.Set, Options{RecordTrace: true})
	table := res.Trace.Table()
	rows := strings.Count(table, "\n")
	if rows < 14 { // initial + 11 attributes' worth of steps + header
		t.Errorf("table suspiciously short (%d rows):\n%s", rows, table)
	}
	t.Logf("Figure 2(b) reproduction:\n%s", table)
}

// TestLargeAcyclicSmoke solves a larger instance to exercise the scaling
// path under `go test` (full scaling curves live in the benchmarks).
func TestLargeAcyclicSmoke(t *testing.T) {
	lat := lattice.MustMLS("mls", []string{"U", "C", "S", "TS"},
		[]string{"a", "b", "c", "d", "e", "f", "g", "h"})
	s := workload.MustConstraints(lat, workload.ConstraintSpec{
		Seed: 1, NumAttrs: 2000, NumConstraints: 6000, MaxLHS: 3,
		LevelRHSFraction: 0.3,
	})
	res := MustSolve(s, Options{})
	if v := s.Violations(res.Assignment); v != nil {
		t.Fatalf("violations on large instance: %v", v[:min(3, len(v))])
	}
}

// TestTraceOffByDefault ensures no trace is recorded unless requested.
func TestTraceOffByDefault(t *testing.T) {
	f := constraint.NewFigure2()
	if res := MustSolve(f.Set, Options{}); res.Trace != nil {
		t.Error("trace recorded without RecordTrace")
	}
}

func ExampleSolve() {
	lat := lattice.MustChain("mil", "U", "C", "S", "TS")
	set := constraint.NewSet(lat)
	if err := set.ParseString(`
salary >= C
lub(name, salary) >= TS
rank >= salary
`); err != nil {
		panic(err)
	}
	res, err := Solve(set, Options{})
	if err != nil {
		panic(err)
	}
	fmt.Println(set.FormatAssignment(res.Assignment))
	// Output: name=TS rank=C salary=C
}
