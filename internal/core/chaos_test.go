package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"minup/internal/fault"
	"minup/internal/lattice"
	"minup/internal/workload"
)

// Chaos tests: concurrent solves against one compiled set while fault
// injectors delay, cancel, and panic at the solver's named fault points.
// The contract under fire is strict — every solve either returns exactly
// the clean minimal assignment or a typed error; no deadlocks, no
// corrupted pooled sessions, and clean solves afterwards are unaffected.
// Run with -race.

// chaosInjectors returns the fault mixes the storm cycles through, one per
// goroutine. Hit counting is global per injector, so an "every Nth"
// schedule fires across the goroutine's whole solve sequence.
func chaosInjectors(t *testing.T) []*fault.Injector {
	t.Helper()
	specs := []string{
		"solve.step:cancel:%7",
		"solve.try:panic:%13",
		"pool.get:cancel:%5",
		"lattice.lub:delay:%50:100us;lattice.glb:panic:%97",
		"lattice.dominates:delay:~0.02:50us",
		"solve.step:delay:%11:100us;solve.try:cancel:%29",
	}
	inj := make([]*fault.Injector, len(specs))
	for i, s := range specs {
		var err error
		inj[i], err = fault.ParseSpec(s, int64(i)+1)
		if err != nil {
			t.Fatal(err)
		}
	}
	return inj
}

func TestChaosConcurrentSolves(t *testing.T) {
	lat := lattice.MustChain("c", "U", "C", "S", "TS")
	s := workload.MustConstraints(lat, concurrentSpec(11, true))
	c := s.Compile()
	want, err := SolveContext(context.Background(), c, Options{})
	if err != nil {
		t.Fatal(err)
	}

	injectors := chaosInjectors(t)
	const goroutines = 12
	const solvesEach = 20
	var wg sync.WaitGroup
	var okCount, errCount int64
	var mu sync.Mutex
	fail := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		inj := injectors[g%len(injectors)]
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < solvesEach; i++ {
				res, err := SolveContext(context.Background(), c, Options{Fault: inj})
				if err != nil {
					// A faulted solve must fail with a typed error, never
					// an untyped one and never a propagated panic.
					if !errors.Is(err, ErrInternal) && !errors.Is(err, fault.ErrInjected) && !errors.Is(err, ErrCanceled) {
						fail <- fmt.Errorf("untyped chaos error: %v", err)
						return
					}
					mu.Lock()
					errCount++
					mu.Unlock()
					continue
				}
				// A solve that dodged every fault must be exactly minimal.
				if !res.Assignment.Equal(want.Assignment) {
					fail <- fmt.Errorf("chaos solve diverged:\nwant %s\ngot  %s",
						s.FormatAssignment(want.Assignment), s.FormatAssignment(res.Assignment))
					return
				}
				if verr := Verify(s, res.Assignment); verr != nil {
					fail <- fmt.Errorf("chaos solve does not verify: %v", verr)
					return
				}
				mu.Lock()
				okCount++
				mu.Unlock()
			}
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case err := <-fail:
		t.Fatal(err)
	case <-time.After(60 * time.Second):
		t.Fatal("chaos storm deadlocked")
	}
	select {
	case err := <-fail:
		t.Fatal(err)
	default:
	}
	if errCount == 0 {
		t.Fatal("no fault ever fired — the storm tested nothing")
	}
	if okCount == 0 {
		t.Fatal("no solve ever succeeded under chaos")
	}
	t.Logf("chaos storm: %d ok, %d typed errors", okCount, errCount)

	// The pool took panics and cancellations; it must still hand out
	// working sessions.
	for i := 0; i < 8; i++ {
		res, err := SolveContext(context.Background(), c, Options{})
		if err != nil {
			t.Fatalf("clean solve %d after chaos: %v", i, err)
		}
		if !res.Assignment.Equal(want.Assignment) {
			t.Fatalf("clean solve %d after chaos diverged", i)
		}
	}
}

func TestPanicIsolation(t *testing.T) {
	lat := lattice.MustChain("c", "U", "C", "S", "TS")
	s := workload.MustConstraints(lat, concurrentSpec(3, false))
	c := s.Compile()

	before := PanicsRecovered()
	inj := fault.New(1)
	inj.MustAdd(fault.Rule{Point: "solve.step", Act: fault.Panic, Nth: 1})
	res, err := SolveContext(context.Background(), c, Options{Fault: inj})
	if err == nil {
		t.Fatalf("injected panic produced a result: %v", res)
	}
	if !errors.Is(err, ErrInternal) {
		t.Fatalf("panic surfaced as %v, want ErrInternal", err)
	}
	var ie *InternalError
	if !errors.As(err, &ie) {
		t.Fatalf("error %T does not unwrap to *InternalError", err)
	}
	if len(ie.Stack) == 0 {
		t.Fatal("InternalError carries no stack")
	}
	if _, ok := ie.Recovered.(*fault.PanicError); !ok {
		t.Fatalf("recovered value %T is not the injected *fault.PanicError", ie.Recovered)
	}
	if got := PanicsRecovered(); got != before+1 {
		t.Fatalf("PanicsRecovered = %d, want %d", got, before+1)
	}

	// The panicking session was discarded, not pooled: the next solve gets
	// clean state.
	if _, err := SolveContext(context.Background(), c, Options{}); err != nil {
		t.Fatalf("solve after panic: %v", err)
	}
}

func TestLatticePanicConvertsToInternal(t *testing.T) {
	// A Cancel rule at a value-returning lattice point has no error path:
	// it panics, and the recovery guard must convert that to ErrInternal.
	lat := lattice.MustChain("c", "U", "C", "S", "TS")
	s := workload.MustConstraints(lat, concurrentSpec(5, false))
	c := s.Compile()
	inj := fault.New(1)
	inj.MustAdd(fault.Rule{Point: "lattice.lub", Act: fault.Cancel, Nth: 1})
	_, err := SolveContext(context.Background(), c, Options{Fault: inj})
	if !errors.Is(err, ErrInternal) {
		t.Fatalf("lattice cancel surfaced as %v, want ErrInternal", err)
	}
	if _, err := SolveContext(context.Background(), c, Options{}); err != nil {
		t.Fatalf("solve after lattice panic: %v", err)
	}
}

func TestInjectedCancelIsTyped(t *testing.T) {
	lat := lattice.MustChain("c", "U", "C", "S", "TS")
	s := workload.MustConstraints(lat, concurrentSpec(9, false))
	c := s.Compile()
	inj := fault.New(1)
	inj.MustAdd(fault.Rule{Point: "solve.step", Act: fault.Cancel, Nth: 2})
	_, err := SolveContext(context.Background(), c, Options{Fault: inj})
	if !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("injected cancel surfaced as %v, want fault.ErrInjected", err)
	}
}
