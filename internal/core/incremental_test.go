package core

import (
	"testing"

	"minup/internal/baseline"
	"minup/internal/constraint"
	"minup/internal/lattice"
	"minup/internal/workload"
)

func TestRepairNoViolation(t *testing.T) {
	lat := lattice.MustChain("c", "U", "S", "TS")
	s := constraint.NewSet(lat)
	a, b := s.MustAttr("a"), s.MustAttr("b")
	sLvl, _ := lat.ParseLevel("S")
	s.MustAdd([]constraint.Attr{a}, constraint.LevelRHS(sLvl))
	base := MustSolve(s, Options{}).Assignment
	n := len(s.Constraints())
	// Add a constraint the base already satisfies.
	s.MustAdd([]constraint.Attr{a}, constraint.AttrRHS(b))
	got, stats, err := Repair(s, n, base, RepairOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.ViolatedConstraints != 0 || stats.Recomputed != 0 {
		t.Errorf("stats = %+v, want no work", stats)
	}
	if !got.Equal(base) {
		t.Error("satisfied addition changed the solution")
	}
}

func TestRepairSimpleRaise(t *testing.T) {
	lat := lattice.MustChain("c", "U", "S", "TS")
	s := constraint.NewSet(lat)
	a, b, c := s.MustAttr("a"), s.MustAttr("b"), s.MustAttr("c")
	s.MustAdd([]constraint.Attr{a}, constraint.AttrRHS(b))
	base := MustSolve(s, Options{}).Assignment
	n := len(s.Constraints())
	// Force b up; a must follow; c stays put.
	sLvl, _ := lat.ParseLevel("S")
	s.MustAdd([]constraint.Attr{b}, constraint.LevelRHS(sLvl))
	got, stats, err := Repair(s, n, base, RepairOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got[a] != sLvl || got[b] != sLvl || got[c] != lat.Bottom() {
		t.Fatalf("repair = %s", s.FormatAssignment(got))
	}
	if stats.Recomputed != 2 {
		t.Errorf("recomputed = %d, want 2 (a and b)", stats.Recomputed)
	}
	full := MustSolve(s, Options{}).Assignment
	if !got.Equal(full) {
		t.Errorf("repair %s != full solve %s",
			s.FormatAssignment(got), s.FormatAssignment(full))
	}
}

// TestRepairRandom compares incremental repair against a full re-solve on
// random evolutions: the repaired solution must satisfy everything and be
// exactly minimal (validated by the probe and, on these small instances,
// by the exhaustive oracle).
func TestRepairRandom(t *testing.T) {
	for _, latName := range []string{"figure1b", "mls"} {
		var lat lattice.Lattice
		if latName == "figure1b" {
			lat = lattice.FigureOneB()
		} else {
			lat = lattice.MustMLS("m", []string{"U", "S", "TS"}, []string{"x", "y"})
		}
		for seed := int64(0); seed < 40; seed++ {
			s := workload.MustConstraints(lat, workload.ConstraintSpec{
				Seed: seed, NumAttrs: 8, NumConstraints: 12, MaxLHS: 3,
				LevelRHSFraction: 0.4, Cyclic: seed%2 == 0,
			})
			base := MustSolve(s, Options{}).Assignment
			n := len(s.Constraints())
			// Append a few more random constraints deterministically by
			// regenerating with a larger budget and same seed.
			bigger := workload.MustConstraints(lat, workload.ConstraintSpec{
				Seed: seed, NumAttrs: 8, NumConstraints: 16, MaxLHS: 3,
				LevelRHSFraction: 0.4, Cyclic: seed%2 == 0,
			})
			// The first n constraints coincide (same seed and generator
			// stream), so base satisfies the prefix.
			got, stats, err := Repair(bigger, n, base, RepairOptions{VerifyMinimal: true})
			if err != nil {
				t.Fatalf("%s seed=%d: %v", latName, seed, err)
			}
			if v := bigger.Violations(got); v != nil {
				t.Fatalf("%s seed=%d: repair violates %v", latName, seed, v)
			}
			minimal, _, err := ProbeMinimality(bigger, got)
			if err != nil {
				t.Fatal(err)
			}
			if !minimal {
				t.Fatalf("%s seed=%d: repair non-minimal (stats %+v)", latName, seed, stats)
			}
		}
	}
}

// TestRepairRandomOracle cross-checks repair minimality against the
// exhaustive oracle on the enumerable lattice.
func TestRepairRandomOracle(t *testing.T) {
	lat := lattice.FigureOneB()
	for seed := int64(0); seed < 25; seed++ {
		s := workload.MustConstraints(lat, workload.ConstraintSpec{
			Seed: seed, NumAttrs: 5, NumConstraints: 6, MaxLHS: 2,
			LevelRHSFraction: 0.5, Cyclic: true,
		})
		base := MustSolve(s, Options{}).Assignment
		n := len(s.Constraints())
		bigger := workload.MustConstraints(lat, workload.ConstraintSpec{
			Seed: seed, NumAttrs: 5, NumConstraints: 9, MaxLHS: 2,
			LevelRHSFraction: 0.5, Cyclic: true,
		})
		got, _, err := Repair(bigger, n, base, RepairOptions{VerifyMinimal: true})
		if err != nil {
			t.Fatal(err)
		}
		minimal, err := baseline.IsMinimal(bigger, got)
		if err != nil {
			t.Fatal(err)
		}
		if !minimal {
			t.Fatalf("seed=%d: repaired solution not minimal: %s",
				seed, bigger.FormatAssignment(got))
		}
	}
}

func TestRepairValidation(t *testing.T) {
	lat := lattice.MustChain("c", "lo", "hi")
	s := constraint.NewSet(lat)
	a := s.MustAttr("a")
	s.MustAdd([]constraint.Attr{a}, constraint.LevelRHS(lat.Top()))
	good := constraint.Assignment{lat.Top()}

	if _, _, err := Repair(s, 5, good, RepairOptions{}); err == nil {
		t.Error("out-of-range baseCount accepted")
	}
	if _, _, err := Repair(s, 1, constraint.Assignment{}, RepairOptions{}); err == nil {
		t.Error("short base accepted")
	}
	if _, _, err := Repair(s, 1, constraint.Assignment{lat.Bottom()}, RepairOptions{}); err == nil {
		t.Error("base violating the prefix accepted")
	}

	// Upper bounds: always a full solve.
	s.MustAddUpper(a, lat.Top())
	got, stats, err := Repair(s, 1, good, RepairOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !stats.FellBack {
		t.Error("upper-bound set did not fall back")
	}
	if got[a] != lat.Top() {
		t.Errorf("fallback result = %s", s.FormatAssignment(got))
	}
}
