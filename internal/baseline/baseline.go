// Package baseline implements the comparison algorithms the paper
// positions Algorithm 3.1 against, plus exact oracles used to validate the
// solver in tests:
//
//   - BruteForce: exhaustive enumeration of all satisfying assignments over
//     an enumerable lattice, yielding the exact set of minimal solutions —
//     the "examine all possible solutions" approach of the optimal-
//     upgrading literature ([4,17] in the paper) and the ground truth for
//     minimality tests.
//   - IsMinimal: a focused exact check that a given solution admits no
//     satisfying assignment strictly below it.
//   - Qian: the polynomial view-based propagation of [13], which satisfies
//     the constraints by upgrading every left-hand-side attribute of each
//     violated constraint and therefore tends to overclassify (experiment
//     E5).
//   - Backtracking: the rejected alternative (1) of §3.2 — back-propagation
//     with backtracking over the choice of which left-hand-side attribute
//     carries each complex constraint; worst-case cost proportional to the
//     product of the left-hand-side sizes (experiment E6).
//   - CheapestUpgrade: cost-optimal upgrading in the style of Stickel [16],
//     selecting among the brute-force minimal solutions the one with the
//     fewest upgraded attributes (exponential; small instances only).
package baseline

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"minup/internal/constraint"
	"minup/internal/lattice"
	"minup/internal/obs"
)

// Stats reports the work performed by one baseline run, the counterpart of
// the solver's core.Stats for the comparison algorithms (experiments E5/E6
// and cmd/benchtab's stats matrix).
type Stats struct {
	// Steps counts the algorithm's basic iterations: worklist pops for
	// Qian, fixpoint sweeps for Backtracking, satisfiability checks for
	// the enumeration oracles.
	Steps int
	// Upgrades counts attribute level raises performed.
	Upgrades int
	// Vectors counts complete assignments or choice vectors examined by
	// the exponential oracles.
	Vectors int
	// Duration is the wall time of the run.
	Duration time.Duration
}

// timed starts the run's clock and returns the stop function to defer.
func (st *Stats) timed() func() {
	start := time.Now()
	return func() { st.Duration = time.Since(start) }
}

// EnumLimit guards the exponential oracles: enumerating more than this many
// assignments returns an error instead of running forever.
const EnumLimit = 20_000_000

// ErrLimit reports that an exponential oracle refused to run because its
// enumeration would exceed EnumLimit (or the caller-supplied vector
// budget). Detect it with errors.Is.
var (
	ErrLimit = errors.New("baseline: enumeration limit exceeded")

	// ErrCanceled reports that a Context variant stopped because its
	// context was canceled; the wrapped cause also satisfies
	// errors.Is(err, context.Canceled) / context.DeadlineExceeded.
	ErrCanceled = errors.New("baseline: canceled")

	// ErrUnsatisfiable reports that exhaustive search proved the
	// constraints admit no solution.
	ErrUnsatisfiable = errors.New("baseline: no satisfying assignment")
)

// cancelStride is how many enumeration steps pass between context polls in
// the exponential oracles.
const cancelStride = 8192

// BruteForce enumerates every assignment over the (enumerable) lattice and
// returns all pointwise-minimal satisfying assignments. The search space is
// |L|^|A|; callers must keep instances tiny.
func BruteForce(s *constraint.Set) ([]constraint.Assignment, error) {
	return BruteForceContext(context.Background(), s)
}

// BruteForceContext is BruteForce with cancellation: the walk polls the
// context periodically and aborts with an error satisfying
// errors.Is(err, ErrCanceled).
func BruteForceContext(ctx context.Context, s *constraint.Set) ([]constraint.Assignment, error) {
	return BruteForceWithStats(ctx, s, &Stats{})
}

// BruteForceWithStats is BruteForceContext recording its work into st:
// Vectors counts assignments enumerated, Steps counts satisfiability
// checks (equal here), and Duration the wall time.
func BruteForceWithStats(ctx context.Context, s *constraint.Set, st *Stats) ([]constraint.Assignment, error) {
	defer st.timed()()
	lat, ok := s.Lattice().(lattice.Enumerable)
	if !ok {
		return nil, fmt.Errorf("baseline: brute force requires an enumerable lattice, have %T", s.Lattice())
	}
	elems := lat.Elements()
	n := s.NumAttrs()
	if total := math.Pow(float64(len(elems)), float64(n)); total > EnumLimit {
		return nil, fmt.Errorf("baseline: %d^%d assignments: %w", len(elems), n, ErrLimit)
	}

	var sols []constraint.Assignment
	cur := make(constraint.Assignment, n)
	steps := 0
	var walkErr error
	var walk func(i int)
	walk = func(i int) {
		if walkErr != nil {
			return
		}
		if i == n {
			steps++
			st.Vectors++
			st.Steps++
			if steps%cancelStride == 0 && ctx.Err() != nil {
				walkErr = fmt.Errorf("baseline: %w: %w", ErrCanceled, context.Cause(ctx))
				return
			}
			if s.Satisfies(cur) {
				sols = append(sols, cur.Clone())
			}
			return
		}
		for _, e := range elems {
			cur[i] = e
			walk(i + 1)
		}
	}
	walk(0)
	if walkErr != nil {
		return nil, walkErr
	}

	// Keep the minimal ones.
	var minimal []constraint.Assignment
	for i, m := range sols {
		isMin := true
		for j, o := range sols {
			if i != j && m.Dominates(s.Lattice(), o) && !m.Equal(o) {
				isMin = false
				break
			}
		}
		if isMin {
			minimal = append(minimal, m)
		}
	}
	return minimal, nil
}

// IsMinimal reports whether m is a minimal solution: it satisfies the set
// and no satisfying assignment lies strictly below it. It enumerates the
// pointwise down-set of m (product of per-attribute down-sets), so it is
// exponential but far cheaper than full brute force and usable on slightly
// larger instances.
func IsMinimal(s *constraint.Set, m constraint.Assignment) (bool, error) {
	return IsMinimalContext(context.Background(), s, m)
}

// IsMinimalContext is IsMinimal with cancellation.
func IsMinimalContext(ctx context.Context, s *constraint.Set, m constraint.Assignment) (bool, error) {
	return IsMinimalWithStats(ctx, s, m, &Stats{})
}

// IsMinimalWithStats is IsMinimalContext recording its down-set enumeration
// into st.
func IsMinimalWithStats(ctx context.Context, s *constraint.Set, m constraint.Assignment, st *Stats) (bool, error) {
	defer st.timed()()
	if !s.Satisfies(m) {
		return false, nil
	}
	lat, ok := s.Lattice().(lattice.Enumerable)
	if !ok {
		return false, fmt.Errorf("baseline: minimality check requires an enumerable lattice, have %T", s.Lattice())
	}
	n := s.NumAttrs()
	down := make([][]lattice.Level, n)
	total := 1.0
	for i := range down {
		for _, e := range lat.Elements() {
			if lat.Dominates(m[i], e) {
				down[i] = append(down[i], e)
			}
		}
		total *= float64(len(down[i]))
		if total > EnumLimit {
			return false, fmt.Errorf("baseline: down-set enumeration: %w", ErrLimit)
		}
	}
	cur := make(constraint.Assignment, n)
	var found bool
	steps := 0
	var walkErr error
	var walk func(i int)
	walk = func(i int) {
		if found || walkErr != nil {
			return
		}
		if i == n {
			steps++
			st.Vectors++
			st.Steps++
			if steps%cancelStride == 0 && ctx.Err() != nil {
				walkErr = fmt.Errorf("baseline: %w: %w", ErrCanceled, context.Cause(ctx))
				return
			}
			if !cur.Equal(m) && s.Satisfies(cur) {
				found = true
			}
			return
		}
		for _, e := range down[i] {
			cur[i] = e
			walk(i + 1)
		}
	}
	walk(0)
	if walkErr != nil {
		return false, walkErr
	}
	return !found, nil
}

// Qian computes a satisfying (generally non-minimal) classification with
// the overclassifying polynomial propagation attributed to [13]: starting
// from ⊥ everywhere, every violated constraint upgrades *all* of its
// left-hand-side attributes with the right-hand-side level, iterated to a
// fixpoint. The result always satisfies lower-bound constraint sets but
// upgrades every member of each association, so it typically classifies
// strictly above Algorithm 3.1's answer; experiment E5 measures by how
// much. Upper-bound constraints are not supported.
func Qian(s *constraint.Set) (constraint.Assignment, error) {
	return QianContext(context.Background(), s)
}

// QianContext is Qian with cancellation: the worklist polls the context
// periodically.
func QianContext(ctx context.Context, s *constraint.Set) (constraint.Assignment, error) {
	return QianWithStats(ctx, s, &Stats{})
}

// QianWithStats is QianContext recording its work into st: Steps counts
// worklist pops and Upgrades counts attribute raises.
func QianWithStats(ctx context.Context, s *constraint.Set, st *Stats) (constraint.Assignment, error) {
	defer st.timed()()
	// Tracing: the baseline is instrumented like SolveContext so E5-style
	// comparisons can be profiled side by side in one trace.
	if parent := obs.SpanFromContext(ctx); parent != nil {
		sp := parent.Child("qian")
		defer func() {
			sp.SetAttr("steps", int64(st.Steps))
			sp.SetAttr("upgrades", int64(st.Upgrades))
			sp.End()
		}()
	}
	if len(s.UpperBounds()) > 0 {
		return nil, fmt.Errorf("baseline: Qian propagation does not support upper bounds")
	}
	lat := s.Lattice()
	n := s.NumAttrs()
	m := make(constraint.Assignment, n)
	for i := range m {
		m[i] = lat.Bottom()
	}
	cons := s.Constraints()
	onLHS := s.ConstraintsOn()
	into := s.ConstraintsInto()

	inQueue := make([]bool, len(cons))
	queue := make([]int, 0, len(cons))
	push := func(ci int) {
		if !inQueue[ci] {
			inQueue[ci] = true
			queue = append(queue, ci)
		}
	}
	for ci := range cons {
		push(ci)
	}
	steps := 0
	for len(queue) > 0 {
		steps++
		st.Steps++
		if steps%cancelStride == 0 && ctx.Err() != nil {
			return nil, fmt.Errorf("baseline: %w: %w", ErrCanceled, context.Cause(ctx))
		}
		ci := queue[0]
		queue = queue[1:]
		inQueue[ci] = false
		c := cons[ci]
		rhs := s.RHSLevel(m, c.RHS)
		if lat.Dominates(s.LubLHS(m, c.LHS), rhs) {
			continue
		}
		for _, a := range c.LHS {
			up := lat.Lub(m[a], rhs)
			if up == m[a] {
				continue
			}
			m[a] = up
			st.Upgrades++
			// Re-examine constraints where a appears on either side.
			for _, dep := range onLHS[a] {
				push(dep)
			}
			for _, dep := range into[a] {
				push(dep)
			}
		}
	}
	return m, nil
}

// Backtracking computes a minimal classification by the method the paper
// rejects in §3.2: back-propagation augmented with backtracking over which
// left-hand-side attribute is upgraded to carry each complex constraint.
// For every choice vector it computes the least fixpoint in which only the
// chosen attribute of each complex constraint is upgraded (with the full
// right-hand-side level), then returns a pointwise-minimal result across
// all vectors. The number of vectors is the product of the left-hand-side
// sizes — the exponential cost the paper cites as the reason to reject the
// approach. MaxVectors bounds the search.
//
// On distributive category lattices the carrier receives the whole
// right-hand side rather than the complement of its peers, so the result
// can overclassify relative to Algorithm 3.1; on total orders it is exact.
func Backtracking(s *constraint.Set, maxVectors int) (constraint.Assignment, int, error) {
	return BacktrackingContext(context.Background(), s, maxVectors)
}

// BacktrackingContext is Backtracking with cancellation: the context is
// polled once per choice vector.
func BacktrackingContext(ctx context.Context, s *constraint.Set, maxVectors int) (constraint.Assignment, int, error) {
	return BacktrackingWithStats(ctx, s, maxVectors, &Stats{})
}

// BacktrackingWithStats is BacktrackingContext recording its work into st:
// Vectors counts choice vectors explored, Steps counts fixpoint sweeps,
// and Upgrades counts attribute raises across all fixpoints.
func BacktrackingWithStats(ctx context.Context, s *constraint.Set, maxVectors int, st *Stats) (constraint.Assignment, int, error) {
	defer st.timed()()
	if len(s.UpperBounds()) > 0 {
		return nil, 0, fmt.Errorf("baseline: backtracking solver does not support upper bounds")
	}
	lat := s.Lattice()
	var complex []int
	for ci, c := range s.Constraints() {
		if !c.Simple() {
			complex = append(complex, ci)
		}
	}
	vectors := 1
	for _, ci := range complex {
		vectors *= len(s.Constraints()[ci].LHS)
		if vectors > maxVectors {
			return nil, vectors, fmt.Errorf("baseline: %d choice vectors exceeds limit %d: %w", vectors, maxVectors, ErrLimit)
		}
	}

	choice := make([]int, len(complex))
	var best constraint.Assignment
	explored := 0
	for {
		if explored%64 == 0 && ctx.Err() != nil {
			return nil, explored, fmt.Errorf("baseline: %w: %w", ErrCanceled, context.Cause(ctx))
		}
		explored++
		st.Vectors++
		m := leastFixpoint(s, complex, choice, st)
		if best == nil || (best.Dominates(lat, m) && !best.Equal(m)) {
			best = m
		}
		// Advance the mixed-radix choice vector.
		i := 0
		for ; i < len(choice); i++ {
			choice[i]++
			if choice[i] < len(s.Constraints()[complex[i]].LHS) {
				break
			}
			choice[i] = 0
		}
		if i == len(choice) {
			break
		}
	}
	return best, explored, nil
}

// leastFixpoint computes the least assignment in which every simple
// constraint is satisfied by upgrading its lhs attribute and every complex
// constraint by upgrading its chosen carrier.
func leastFixpoint(s *constraint.Set, complex []int, choice []int, st *Stats) constraint.Assignment {
	lat := s.Lattice()
	carrier := make(map[int]constraint.Attr, len(complex))
	for i, ci := range complex {
		carrier[ci] = s.Constraints()[ci].LHS[choice[i]]
	}
	n := s.NumAttrs()
	m := make(constraint.Assignment, n)
	for i := range m {
		m[i] = lat.Bottom()
	}
	for changed := true; changed; {
		changed = false
		st.Steps++
		for ci, c := range s.Constraints() {
			rhs := s.RHSLevel(m, c.RHS)
			if lat.Dominates(s.LubLHS(m, c.LHS), rhs) {
				continue
			}
			target := c.LHS[0]
			if !c.Simple() {
				target = carrier[ci]
			}
			up := lat.Lub(m[target], rhs)
			if up != m[target] {
				m[target] = up
				st.Upgrades++
				changed = true
			}
		}
	}
	return m
}

// CostFunc scores an assignment; lower is better. Used by CheapestUpgrade.
type CostFunc func(s *constraint.Set, m constraint.Assignment) int

// CountUpgraded returns the number of attributes classified strictly above
// the lattice bottom — the "number of upgraded attributes" cost of the
// optimal-upgrading literature.
func CountUpgraded(s *constraint.Set, m constraint.Assignment) int {
	lat := s.Lattice()
	n := 0
	for _, l := range m {
		if l != lat.Bottom() {
			n++
		}
	}
	return n
}

// CheapestUpgrade returns a minimal solution with the smallest cost,
// determined by exhaustive enumeration (the NP-hard optimal-upgrading
// problem of [16,17]; tiny instances only).
func CheapestUpgrade(s *constraint.Set, cost CostFunc) (constraint.Assignment, error) {
	return CheapestUpgradeContext(context.Background(), s, cost)
}

// CheapestUpgradeContext is CheapestUpgrade with cancellation.
func CheapestUpgradeContext(ctx context.Context, s *constraint.Set, cost CostFunc) (constraint.Assignment, error) {
	return CheapestUpgradeWithStats(ctx, s, cost, &Stats{})
}

// CheapestUpgradeWithStats is CheapestUpgradeContext recording the
// underlying brute-force enumeration into st.
func CheapestUpgradeWithStats(ctx context.Context, s *constraint.Set, cost CostFunc, st *Stats) (constraint.Assignment, error) {
	defer st.timed()()
	inner := &Stats{}
	minimal, err := BruteForceWithStats(ctx, s, inner)
	st.Steps += inner.Steps
	st.Vectors += inner.Vectors
	if err != nil {
		return nil, err
	}
	if len(minimal) == 0 {
		return nil, fmt.Errorf("baseline: %w", ErrUnsatisfiable)
	}
	best := minimal[0]
	bestCost := cost(s, best)
	for _, m := range minimal[1:] {
		if c := cost(s, m); c < bestCost {
			best, bestCost = m, c
		}
	}
	return best, nil
}
