package baseline

import (
	"testing"

	"minup/internal/constraint"
	"minup/internal/lattice"
	"minup/internal/workload"
)

func chain3(t *testing.T) *lattice.Chain {
	t.Helper()
	return lattice.MustChain("c", "U", "S", "TS")
}

func TestBruteForceSimple(t *testing.T) {
	lat := chain3(t)
	s := constraint.NewSet(lat)
	a, b := s.MustAttr("a"), s.MustAttr("b")
	sLvl, _ := lat.ParseLevel("S")
	s.MustAdd([]constraint.Attr{a}, constraint.LevelRHS(sLvl))
	s.MustAdd([]constraint.Attr{b}, constraint.AttrRHS(a))
	minimal, err := BruteForce(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(minimal) != 1 {
		t.Fatalf("minimal solutions = %d, want 1", len(minimal))
	}
	if minimal[0][a] != sLvl || minimal[0][b] != sLvl {
		t.Errorf("minimal = %s", s.FormatAssignment(minimal[0]))
	}
}

func TestBruteForceComplexMultipleMinimal(t *testing.T) {
	lat := chain3(t)
	s := constraint.NewSet(lat)
	a, b := s.MustAttr("a"), s.MustAttr("b")
	s.MustAdd([]constraint.Attr{a, b}, constraint.LevelRHS(lat.Top()))
	minimal, err := BruteForce(s)
	if err != nil {
		t.Fatal(err)
	}
	// Either a or b at TS, the other at U: exactly two minimal solutions.
	if len(minimal) != 2 {
		t.Fatalf("minimal solutions = %d, want 2", len(minimal))
	}
	for _, m := range minimal {
		if !s.Satisfies(m) {
			t.Errorf("non-solution reported minimal: %s", s.FormatAssignment(m))
		}
	}
}

func TestBruteForceLimits(t *testing.T) {
	lat := lattice.MustPowerset("big", "a", "b", "c", "d", "e", "f", "g", "h")
	s := constraint.NewSet(lat)
	for i := 0; i < 12; i++ {
		s.MustAttr(string(rune('p' + i)))
	}
	if _, err := BruteForce(s); err == nil {
		t.Error("oversized enumeration accepted")
	}
	mls := lattice.MustMLS("m", []string{"U"}, []string{"x"})
	s2 := constraint.NewSet(mls)
	s2.MustAttr("a")
	if _, err := BruteForce(s2); err == nil {
		t.Error("non-enumerable lattice accepted")
	}
	if _, err := IsMinimal(s2, constraint.Assignment{mls.Top()}); err == nil {
		t.Error("IsMinimal accepted non-enumerable lattice")
	}
}

func TestIsMinimal(t *testing.T) {
	lat := chain3(t)
	s := constraint.NewSet(lat)
	a := s.MustAttr("a")
	sLvl, _ := lat.ParseLevel("S")
	s.MustAdd([]constraint.Attr{a}, constraint.LevelRHS(sLvl))

	min, err := IsMinimal(s, constraint.Assignment{sLvl})
	if err != nil || !min {
		t.Errorf("exact solution not minimal: %v %v", min, err)
	}
	min, err = IsMinimal(s, constraint.Assignment{lat.Top()})
	if err != nil || min {
		t.Errorf("overclassified solution reported minimal: %v %v", min, err)
	}
	min, err = IsMinimal(s, constraint.Assignment{lat.Bottom()})
	if err != nil || min {
		t.Errorf("non-solution reported minimal: %v %v", min, err)
	}
}

func TestQianOverclassifies(t *testing.T) {
	lat := chain3(t)
	s := constraint.NewSet(lat)
	a, b := s.MustAttr("a"), s.MustAttr("b")
	s.MustAdd([]constraint.Attr{a, b}, constraint.LevelRHS(lat.Top()))
	q, err := Qian(s)
	if err != nil {
		t.Fatal(err)
	}
	// Qian upgrades both members of the association.
	if q[a] != lat.Top() || q[b] != lat.Top() {
		t.Errorf("qian = %s, want both TS", s.FormatAssignment(q))
	}
	if min, _ := IsMinimal(s, q); min {
		t.Error("Qian's answer should not be minimal here")
	}
	// But it always satisfies.
	if !s.Satisfies(q) {
		t.Error("Qian result violates constraints")
	}

	s.MustAddUpper(a, lat.Bottom())
	if _, err := Qian(s); err == nil {
		t.Error("Qian accepted upper bounds")
	}
}

func TestQianSatisfiesRandom(t *testing.T) {
	lat := lattice.FigureOneB()
	for seed := int64(0); seed < 40; seed++ {
		s := workload.MustConstraints(lat, workload.ConstraintSpec{
			Seed: seed, NumAttrs: 8, NumConstraints: 16, MaxLHS: 3,
			LevelRHSFraction: 0.3, Cyclic: true,
		})
		q, err := Qian(s)
		if err != nil {
			t.Fatal(err)
		}
		if v := s.Violations(q); v != nil {
			t.Fatalf("seed=%d: %v", seed, v)
		}
	}
}

func TestBacktracking(t *testing.T) {
	lat := chain3(t)
	s := constraint.NewSet(lat)
	a, b := s.MustAttr("a"), s.MustAttr("b")
	sLvl, _ := lat.ParseLevel("S")
	s.MustAdd([]constraint.Attr{a, b}, constraint.LevelRHS(lat.Top()))
	s.MustAdd([]constraint.Attr{a}, constraint.LevelRHS(sLvl))
	m, explored, err := Backtracking(s, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if explored != 2 {
		t.Errorf("explored = %d, want 2", explored)
	}
	if !s.Satisfies(m) {
		t.Fatalf("backtracking result violates: %s", s.FormatAssignment(m))
	}
	if min, _ := IsMinimal(s, m); !min {
		t.Errorf("backtracking result not minimal on a chain: %s", s.FormatAssignment(m))
	}

	// Vector limit.
	s2 := constraint.NewSet(lat)
	var attrs []constraint.Attr
	for i := 0; i < 12; i++ {
		attrs = append(attrs, s2.MustAttr(string(rune('a'+i))))
	}
	for i := 0; i+3 < len(attrs); i += 2 {
		s2.MustAdd(attrs[i:i+3], constraint.LevelRHS(lat.Top()))
	}
	if _, _, err := Backtracking(s2, 10); err == nil {
		t.Error("vector explosion not bounded")
	}

	s3 := constraint.NewSet(lat)
	x := s3.MustAttr("x")
	s3.MustAddUpper(x, lat.Top())
	if _, _, err := Backtracking(s3, 10); err == nil {
		t.Error("upper bounds accepted")
	}
}

// TestBacktrackingSatisfiesRandom: on chains the baseline must always find
// a satisfying, minimal assignment.
func TestBacktrackingMinimalOnChainsRandom(t *testing.T) {
	lat := chain3(t)
	for seed := int64(0); seed < 30; seed++ {
		s := workload.MustConstraints(lat, workload.ConstraintSpec{
			Seed: seed, NumAttrs: 5, NumConstraints: 7, MaxLHS: 3,
			LevelRHSFraction: 0.5, Cyclic: true,
		})
		m, _, err := Backtracking(s, 100000)
		if err != nil {
			t.Fatal(err)
		}
		if v := s.Violations(m); v != nil {
			t.Fatalf("seed=%d: %v", seed, v)
		}
		min, err := IsMinimal(s, m)
		if err != nil {
			t.Fatal(err)
		}
		if !min {
			t.Fatalf("seed=%d: backtracking non-minimal on a chain: %s",
				seed, s.FormatAssignment(m))
		}
	}
}

func TestCheapestUpgrade(t *testing.T) {
	lat := chain3(t)
	s := constraint.NewSet(lat)
	a, b, c := s.MustAttr("a"), s.MustAttr("b"), s.MustAttr("c")
	sLvl, _ := lat.ParseLevel("S")
	// Two associations sharing b: carrying both on b upgrades one attribute
	// instead of two.
	s.MustAdd([]constraint.Attr{a, b}, constraint.LevelRHS(sLvl))
	s.MustAdd([]constraint.Attr{b, c}, constraint.LevelRHS(sLvl))
	m, err := CheapestUpgrade(s, CountUpgraded)
	if err != nil {
		t.Fatal(err)
	}
	if got := CountUpgraded(s, m); got != 1 {
		t.Fatalf("cheapest upgrade touches %d attributes (%s), want 1",
			got, s.FormatAssignment(m))
	}
	if m[b] != sLvl || m[a] != lat.Bottom() || m[c] != lat.Bottom() {
		t.Errorf("cheapest = %s", s.FormatAssignment(m))
	}
}
