package frontend_test

import (
	"sort"
	"strings"
	"testing"

	"minup/internal/constraint"
	"minup/internal/frontend"
	_ "minup/internal/frontend/depinf"
	_ "minup/internal/frontend/suppress"
	"minup/internal/lattice"
	"minup/internal/workload"
)

func TestRegistryFamilies(t *testing.T) {
	fams := frontend.Families()
	if !sort.StringsAreSorted(fams) {
		t.Fatalf("Families() not sorted: %v", fams)
	}
	for _, want := range []string{"depinf", "suppress"} {
		fe, ok := frontend.Lookup(want)
		if !ok {
			t.Fatalf("family %q not registered (have %v)", want, fams)
		}
		if fe.Family() != want {
			t.Fatalf("Lookup(%q) returned family %q", want, fe.Family())
		}
		if fe.Describe() == "" {
			t.Fatalf("family %q has an empty description", want)
		}
		if _, ok := workload.LookupFamily(want); !ok {
			t.Fatalf("family %q not mirrored into the workload registry", want)
		}
	}
	if _, ok := frontend.Lookup("no-such-family"); ok {
		t.Fatal("Lookup of an unknown family succeeded")
	}
}

// stubFrontend exists to provoke registration panics; its methods are
// never called.
type stubFrontend struct{ family string }

func (s stubFrontend) Family() string   { return s.family }
func (s stubFrontend) Describe() string { return "stub" }
func (s stubFrontend) Parse([]byte) (frontend.Instance, error) {
	return nil, nil
}
func (s stubFrontend) Generate(int64, int) (frontend.Instance, error) {
	return nil, nil
}
func (s stubFrontend) Compile(frontend.Instance) (*frontend.Compiled, error) {
	return nil, nil
}
func (s stubFrontend) Oracle(*frontend.Compiled, constraint.Assignment) error {
	return nil
}

func TestRegisterPanicsOnDuplicate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Register of a duplicate family did not panic")
		}
	}()
	frontend.Register(stubFrontend{family: "suppress"})
}

func TestRegisterPanicsOnInvalidName(t *testing.T) {
	for _, bad := range []string{"", "two words", "a/b"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Register of family %q did not panic", bad)
				}
			}()
			frontend.Register(stubFrontend{family: bad})
		}()
	}
}

// TestWorkloadMirrorMatchesFrontend pins the adapter Register installs in
// the workload family registry to the frontend's own Generate → Compile →
// Marshal pipeline, and checks the emitted JSON round-trips through Parse
// into an instance that compiles to the same policy texts.
func TestWorkloadMirrorMatchesFrontend(t *testing.T) {
	for _, name := range frontend.Families() {
		fe, ok := frontend.Lookup(name)
		if !ok {
			t.Fatalf("Lookup(%q) failed", name)
		}
		fi, err := workload.GenerateFamily(name, 11, 3)
		if err != nil {
			t.Fatalf("GenerateFamily(%q): %v", name, err)
		}
		inst, err := fe.Generate(11, 3)
		if err != nil {
			t.Fatalf("%s.Generate: %v", name, err)
		}
		c, err := fe.Compile(inst)
		if err != nil {
			t.Fatalf("%s.Compile: %v", name, err)
		}
		if fi.Name != inst.InstanceName() {
			t.Errorf("%s: mirror name %q, frontend name %q", name, fi.Name, inst.InstanceName())
		}
		if fi.Lattice != c.LatticeText {
			t.Errorf("%s: mirror lattice text differs from compiled text", name)
		}
		if fi.Constraints != c.ConstraintText {
			t.Errorf("%s: mirror constraint text differs from compiled text", name)
		}
		if len(fi.JSON) == 0 {
			t.Fatalf("%s: mirror emitted no instance JSON", name)
		}
		inst2, err := fe.Parse(fi.JSON)
		if err != nil {
			t.Fatalf("%s: reparsing mirror JSON: %v", name, err)
		}
		c2, err := fe.Compile(inst2)
		if err != nil {
			t.Fatalf("%s: recompiling reparsed instance: %v", name, err)
		}
		if c2.ConstraintText != c.ConstraintText || c2.LatticeText != c.LatticeText {
			t.Errorf("%s: reparsed instance compiles to different texts", name)
		}
	}
}

// TestCompiledTextsAreValidPolicySource checks every frontend's emitted
// lattice and constraint texts parse through the same path the catalog
// uses for stored policies.
func TestCompiledTextsAreValidPolicySource(t *testing.T) {
	for _, name := range frontend.Families() {
		fe, _ := frontend.Lookup(name)
		inst, err := fe.Generate(7, 4)
		if err != nil {
			t.Fatalf("%s.Generate: %v", name, err)
		}
		c, err := fe.Compile(inst)
		if err != nil {
			t.Fatalf("%s.Compile: %v", name, err)
		}
		lat, err := lattice.Parse(strings.NewReader(c.LatticeText))
		if err != nil {
			t.Fatalf("%s: lattice text does not reparse: %v", name, err)
		}
		set := constraint.NewSet(lat)
		if err := set.ParseString(c.ConstraintText); err != nil {
			t.Fatalf("%s: constraint text does not reparse: %v", name, err)
		}
		if set.NumAttrs() != c.Set.NumAttrs() {
			t.Fatalf("%s: reparsed set has %d attrs, compiled has %d", name, set.NumAttrs(), c.Set.NumAttrs())
		}
	}
}

func TestLatticeStringParses(t *testing.T) {
	text := frontend.LatticeString("demo", []string{"low", "mid", "high"})
	lat, err := lattice.Parse(strings.NewReader(text))
	if err != nil {
		t.Fatalf("LatticeString output does not parse: %v\n%s", err, text)
	}
	lo, err := lat.ParseLevel("low")
	if err != nil {
		t.Fatal(err)
	}
	hi, err := lat.ParseLevel("high")
	if err != nil {
		t.Fatal(err)
	}
	if !lat.Dominates(hi, lo) || lat.Dominates(lo, hi) {
		t.Fatal("LatticeString chain order is wrong")
	}
}
