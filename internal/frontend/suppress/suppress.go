// Package suppress compiles two-dimensional cross-tabulated cell
// suppression into the constraint engine, after Kao's "Data Security
// Equals Graph Connectivity".
//
// The source problem: a rows×cols table of counts whose row and column
// marginal totals are always published. Some cells are sensitive, each
// with a required protection level drawn from a chain of security levels
// (bottom = public). A classification assigns every cell a level; a viewer
// cleared to level l sees exactly the cells classified ≼ l, plus all
// marginals. The attacker model is single-equation marginal inference —
// Kao's weakest security level: a hidden cell's value is inferable when it
// is the only hidden cell in its row or in its column, because one
// published marginal minus the visible cells then determines it. (Kao's
// stronger levels — iterated peeling, which protects exactly the 2-core of
// the suppressed bipartite graph, and full linear-algebra attackers, which
// need 2-edge-connectivity — are diagnostics for future work; the oracle
// here enforces precisely the model the compiler targets.)
//
// The reduction views the table as Kao does: rows and columns are the two
// vertex classes of a bipartite graph and each hidden cell is an edge, so
// "not the only hidden cell in its row/column" says every sensitive edge
// shares each endpoint with another suppressed edge — the connectivity
// degree condition. In the constraint language that becomes, for each
// sensitive cell s = (i,j):
//
//	s >= L                       (required protection floor)
//	lub(row i \ {s}) >= λ(s)     (complementary suppression in the row)
//	lub(col j \ {s}) >= λ(s)     (complementary suppression in the column)
//
// The complementary constraints are exact, not approximate: for any
// lattice, lub over the row-mates dominates λ(s) iff at every clearance
// from which s is hidden some row-mate is hidden too (take l = lub of the
// row-mates for the only-if direction). So the engine's satisfying
// assignments are exactly the source-secure classifications, and the
// engine's pointwise-minimal solution is pointwise-minimal suppression —
// which the Oracle re-derives from the source definition alone.
package suppress

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"strings"

	"minup/internal/constraint"
	"minup/internal/frontend"
	"minup/internal/lattice"
)

// FamilyName is the registry key and URL path element for this frontend.
const FamilyName = "suppress"

// Size caps keep parsed (and fuzzed) instances bounded: the compiled
// constraint set is O(sensitive × (rows+cols)) and the oracle sweep is
// polynomial in cells × levels.
const (
	maxDim    = 64
	maxCells  = 4096
	maxLevels = 16
)

// Cell marks one sensitive cell and its required protection level.
type Cell struct {
	Row   int    `json:"row"`
	Col   int    `json:"col"`
	Level string `json:"level"`
}

// Table is the round-trippable JSON instance format: grid dimensions, the
// chain of levels (bottom-up; the bottom level is "published"), and the
// sensitive cells. Non-sensitive cells carry no requirement — the solver
// may still have to upgrade them as complementary suppressions.
type Table struct {
	Name string `json:"name"`
	// Levels is the security chain bottom-up, e.g. ["public","secret"].
	Levels    []string `json:"levels"`
	Rows      int      `json:"rows"`
	Cols      int      `json:"cols"`
	Sensitive []Cell   `json:"sensitive"`
}

// Family implements frontend.Instance.
func (t *Table) Family() string { return FamilyName }

// InstanceName implements frontend.Instance.
func (t *Table) InstanceName() string { return t.Name }

// Validate implements frontend.Instance: structural well-formedness plus
// the size caps. A sensitive cell needs at least one row-mate and one
// column-mate to have any complementary suppression available, so tables
// must be at least 2×2.
func (t *Table) Validate() error {
	if t.Name == "" {
		return fmt.Errorf("suppress: instance has no name")
	}
	if t.Rows < 2 || t.Cols < 2 {
		return fmt.Errorf("suppress: table must be at least 2x2, have %dx%d", t.Rows, t.Cols)
	}
	if t.Rows > maxDim || t.Cols > maxDim || t.Rows*t.Cols > maxCells {
		return fmt.Errorf("suppress: table %dx%d exceeds the %dx%d/%d-cell cap", t.Rows, t.Cols, maxDim, maxDim, maxCells)
	}
	if len(t.Levels) < 2 || len(t.Levels) > maxLevels {
		return fmt.Errorf("suppress: need 2..%d levels, have %d", maxLevels, len(t.Levels))
	}
	seenLevel := make(map[string]bool, len(t.Levels))
	for _, l := range t.Levels {
		if l == "" || strings.ContainsAny(l, "(), \t\n") {
			return fmt.Errorf("suppress: invalid level name %q", l)
		}
		if seenLevel[l] {
			return fmt.Errorf("suppress: duplicate level %q", l)
		}
		seenLevel[l] = true
	}
	if len(t.Sensitive) == 0 {
		return fmt.Errorf("suppress: no sensitive cells")
	}
	seenCell := make(map[[2]int]bool, len(t.Sensitive))
	for _, c := range t.Sensitive {
		if c.Row < 0 || c.Row >= t.Rows || c.Col < 0 || c.Col >= t.Cols {
			return fmt.Errorf("suppress: sensitive cell (%d,%d) outside the %dx%d table", c.Row, c.Col, t.Rows, t.Cols)
		}
		if seenCell[[2]int{c.Row, c.Col}] {
			return fmt.Errorf("suppress: sensitive cell (%d,%d) listed twice", c.Row, c.Col)
		}
		seenCell[[2]int{c.Row, c.Col}] = true
		if c.Level == t.Levels[0] {
			return fmt.Errorf("suppress: sensitive cell (%d,%d) at the bottom (published) level %q", c.Row, c.Col, c.Level)
		}
		if !seenLevel[c.Level] {
			return fmt.Errorf("suppress: sensitive cell (%d,%d) has unknown level %q", c.Row, c.Col, c.Level)
		}
	}
	return nil
}

// cellName is the attribute name of cell (i,j) in the compiled set.
func cellName(i, j int) string { return fmt.Sprintf("r%dc%d", i, j) }

// GenSpec shapes a seeded random table. Zero fields take defaults.
type GenSpec struct {
	Seed int64
	Rows int // default 5
	Cols int // default 6
	// Levels is the chain height (default 3).
	Levels int
	// Density is the fraction of cells that are sensitive (default 0.15);
	// at least one sensitive cell is always emitted.
	Density float64
}

// genLevelNames are the default level names generators draw from,
// bottom-up. The bottom level is the published one.
var genLevelNames = []string{"open", "guarded", "secret", "topsecret", "l4", "l5", "l6", "l7"}

// Generate builds a seeded random instance. Deterministic in the spec:
// the generator owns a private rand.Rand derived from Seed alone, per the
// workload family registry's independence contract.
func Generate(spec GenSpec) (*Table, error) {
	if spec.Rows == 0 {
		spec.Rows = 5
	}
	if spec.Cols == 0 {
		spec.Cols = 6
	}
	if spec.Levels == 0 {
		spec.Levels = 3
	}
	if spec.Density == 0 {
		spec.Density = 0.15
	}
	if spec.Levels < 2 || spec.Levels > len(genLevelNames) {
		return nil, fmt.Errorf("suppress: generator levels must be 2..%d, have %d", len(genLevelNames), spec.Levels)
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	t := &Table{
		Name:   fmt.Sprintf("suppress-s%d-%dx%d", spec.Seed, spec.Rows, spec.Cols),
		Levels: append([]string(nil), genLevelNames[:spec.Levels]...),
		Rows:   spec.Rows,
		Cols:   spec.Cols,
	}
	for i := 0; i < t.Rows; i++ {
		for j := 0; j < t.Cols; j++ {
			if rng.Float64() < spec.Density {
				t.Sensitive = append(t.Sensitive, Cell{Row: i, Col: j, Level: t.Levels[1+rng.Intn(len(t.Levels)-1)]})
			}
		}
	}
	if len(t.Sensitive) == 0 {
		t.Sensitive = append(t.Sensitive, Cell{
			Row: rng.Intn(t.Rows), Col: rng.Intn(t.Cols),
			Level: t.Levels[1+rng.Intn(len(t.Levels)-1)],
		})
	}
	return t, t.Validate()
}

// Frontend is the suppress implementation of frontend.Frontend.
type Frontend struct{}

// Family implements frontend.Frontend.
func (Frontend) Family() string { return FamilyName }

// Describe implements frontend.Frontend.
func (Frontend) Describe() string {
	return "2-D cross-tab cell suppression with published marginals (Kao): complementary suppression as connectivity constraints"
}

// Parse implements frontend.Frontend.
func (Frontend) Parse(data []byte) (frontend.Instance, error) {
	var t Table
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&t); err != nil {
		return nil, fmt.Errorf("suppress: decoding instance: %w", err)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return &t, nil
}

// Generate implements frontend.Frontend: size scales the grid (size×size+1
// cells at the default density).
func (Frontend) Generate(seed int64, size int) (frontend.Instance, error) {
	if size < 2 {
		size = 2
	}
	if size > maxDim-1 {
		size = maxDim - 1
	}
	return Generate(GenSpec{Seed: seed, Rows: size, Cols: size + 1})
}

// Compile implements frontend.Frontend: one attribute per cell, a floor
// constraint per sensitive cell, and the two complementary-suppression
// constraints tying each sensitive cell to its row and column.
func (Frontend) Compile(inst frontend.Instance) (*frontend.Compiled, error) {
	t, ok := inst.(*Table)
	if !ok {
		return nil, fmt.Errorf("suppress: cannot compile %T", inst)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	lat, err := lattice.NewChain("suppress", t.Levels...)
	if err != nil {
		return nil, fmt.Errorf("suppress: building level chain: %w", err)
	}
	set := constraint.NewSet(lat)
	attrs := make([][]constraint.Attr, t.Rows)
	for i := range attrs {
		attrs[i] = make([]constraint.Attr, t.Cols)
		for j := range attrs[i] {
			a, err := set.AddAttr(cellName(i, j))
			if err != nil {
				return nil, fmt.Errorf("suppress: cell (%d,%d): %w", i, j, err)
			}
			attrs[i][j] = a
		}
	}
	for _, c := range t.Sensitive {
		lvl, err := lat.ParseLevel(c.Level)
		if err != nil {
			return nil, fmt.Errorf("suppress: cell (%d,%d): %w", c.Row, c.Col, err)
		}
		cell := attrs[c.Row][c.Col]
		if err := set.Add([]constraint.Attr{cell}, constraint.LevelRHS(lvl)); err != nil {
			return nil, err
		}
		rowMates := make([]constraint.Attr, 0, t.Cols-1)
		for j := 0; j < t.Cols; j++ {
			if j != c.Col {
				rowMates = append(rowMates, attrs[c.Row][j])
			}
		}
		if err := set.Add(rowMates, constraint.AttrRHS(cell)); err != nil {
			return nil, err
		}
		colMates := make([]constraint.Attr, 0, t.Rows-1)
		for i := 0; i < t.Rows; i++ {
			if i != c.Row {
				colMates = append(colMates, attrs[i][c.Col])
			}
		}
		if err := set.Add(colMates, constraint.AttrRHS(cell)); err != nil {
			return nil, err
		}
	}
	consText, err := frontend.ConstraintString(set)
	if err != nil {
		return nil, err
	}
	return &frontend.Compiled{
		Family:         FamilyName,
		Name:           t.Name,
		Instance:       t,
		Lattice:        lat,
		Set:            set,
		LatticeText:    frontend.LatticeString("suppress", t.Levels),
		ConstraintText: consText,
	}, nil
}

// secure checks the source-level security condition of an assignment:
// every sensitive cell meets its required floor, and from every clearance
// from which a sensitive cell is hidden, both its row and its column
// contain at least one other hidden cell — so no single published marginal
// determines it. Returns a descriptive error for the first violation.
func secure(t *Table, lat lattice.Lattice, level func(i, j int) lattice.Level) error {
	enum, ok := lat.(lattice.Enumerable)
	if !ok {
		return fmt.Errorf("suppress: oracle needs an enumerable lattice")
	}
	for _, c := range t.Sensitive {
		req, err := lat.ParseLevel(c.Level)
		if err != nil {
			return err
		}
		own := level(c.Row, c.Col)
		if !lat.Dominates(own, req) {
			return fmt.Errorf("suppress: sensitive cell (%d,%d) classified %s below its required %s",
				c.Row, c.Col, lat.FormatLevel(own), c.Level)
		}
		for _, viewer := range enum.Elements() {
			if lat.Dominates(viewer, own) {
				continue // cleared for the cell: sees it legitimately
			}
			rowHidden, colHidden := false, false
			for j := 0; j < t.Cols && !rowHidden; j++ {
				if j != c.Col && !lat.Dominates(viewer, level(c.Row, j)) {
					rowHidden = true
				}
			}
			for i := 0; i < t.Rows && !colHidden; i++ {
				if i != c.Row && !lat.Dominates(viewer, level(i, c.Col)) {
					colHidden = true
				}
			}
			if !rowHidden {
				return fmt.Errorf("suppress: cell (%d,%d) inferable from its row marginal by a %s viewer (only hidden cell in row %d)",
					c.Row, c.Col, lat.FormatLevel(viewer), c.Row)
			}
			if !colHidden {
				return fmt.Errorf("suppress: cell (%d,%d) inferable from its column marginal by a %s viewer (only hidden cell in column %d)",
					c.Row, c.Col, lat.FormatLevel(viewer), c.Col)
			}
		}
	}
	return nil
}

// Oracle implements frontend.Frontend: re-derives security and minimality
// from the source-problem definition only (no reference to the compiled
// constraints). Security is the marginal-inference condition above;
// minimality demands that lowering any single cell to any strictly lower
// level breaks security — i.e. every upgrade the solver kept is load-
// bearing as a complementary suppression or a required floor.
func (Frontend) Oracle(c *frontend.Compiled, m constraint.Assignment) error {
	t, ok := c.Instance.(*Table)
	if !ok {
		return fmt.Errorf("suppress: oracle on %T", c.Instance)
	}
	lat := c.Lattice
	if len(m) != c.Set.NumAttrs() {
		return fmt.Errorf("suppress: assignment covers %d of %d cells", len(m), c.Set.NumAttrs())
	}
	attrOf := func(i, j int) constraint.Attr {
		a, ok := c.Set.AttrByName(cellName(i, j))
		if !ok {
			panic(fmt.Sprintf("suppress: compiled set missing cell (%d,%d)", i, j))
		}
		return a
	}
	level := func(i, j int) lattice.Level { return m[attrOf(i, j)] }
	if err := secure(t, lat, level); err != nil {
		return err
	}
	// Minimality sweep: try every one-step (and deeper) declassification of
	// every cell; each must break the security condition.
	enum := lat.(lattice.Enumerable)
	lowered := m.Clone()
	for i := 0; i < t.Rows; i++ {
		for j := 0; j < t.Cols; j++ {
			a := attrOf(i, j)
			own := m[a]
			for _, lower := range enum.Elements() {
				if lower == own || !lat.Dominates(own, lower) {
					continue
				}
				lowered[a] = lower
				err := secure(t, lat, func(ri, rj int) lattice.Level { return lowered[attrOf(ri, rj)] })
				lowered[a] = own
				if err == nil {
					return fmt.Errorf("suppress: not minimal: cell (%d,%d) can be lowered %s -> %s without exposing any sensitive cell",
						i, j, lat.FormatLevel(own), lat.FormatLevel(lower))
				}
			}
		}
	}
	return nil
}

func init() { frontend.Register(Frontend{}) }
