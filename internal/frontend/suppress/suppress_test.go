package suppress_test

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"minup/internal/constraint"
	"minup/internal/core"
	"minup/internal/frontend"
	"minup/internal/frontend/suppress"
	"minup/internal/lattice"
)

func TestSuppressRoundTrip(t *testing.T) {
	fe := suppress.Frontend{}
	for seed := int64(0); seed < 20; seed++ {
		tab, err := suppress.Generate(suppress.GenSpec{Seed: seed})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		raw, err := frontend.Marshal(tab)
		if err != nil {
			t.Fatalf("seed %d: marshal: %v", seed, err)
		}
		got, err := fe.Parse(raw)
		if err != nil {
			t.Fatalf("seed %d: parse: %v", seed, err)
		}
		if !reflect.DeepEqual(got, tab) {
			t.Fatalf("seed %d: round trip changed the instance:\n%s", seed, raw)
		}
	}
}

func TestSuppressGenerateDeterministic(t *testing.T) {
	a, err := suppress.Generate(suppress.GenSpec{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	b, err := suppress.Generate(suppress.GenSpec{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("Generate is not deterministic in the seed")
	}
	ca, err := suppress.Frontend{}.Compile(a)
	if err != nil {
		t.Fatal(err)
	}
	cb, err := suppress.Frontend{}.Compile(b)
	if err != nil {
		t.Fatal(err)
	}
	if ca.ConstraintText != cb.ConstraintText || ca.LatticeText != cb.LatticeText {
		t.Fatal("Compile is not deterministic")
	}
}

func TestSuppressValidateRejects(t *testing.T) {
	base := func() *suppress.Table {
		return &suppress.Table{
			Name:      "t",
			Levels:    []string{"open", "secret"},
			Rows:      3,
			Cols:      3,
			Sensitive: []suppress.Cell{{Row: 1, Col: 1, Level: "secret"}},
		}
	}
	cases := []struct {
		name   string
		break_ func(*suppress.Table)
	}{
		{"no name", func(t *suppress.Table) { t.Name = "" }},
		{"too small", func(t *suppress.Table) { t.Rows = 1 }},
		{"too wide", func(t *suppress.Table) { t.Cols = 1000 }},
		{"one level", func(t *suppress.Table) { t.Levels = []string{"open"} }},
		{"dup level", func(t *suppress.Table) { t.Levels = []string{"open", "open"} }},
		{"level with space", func(t *suppress.Table) { t.Levels = []string{"open", "top secret"} }},
		{"no sensitive", func(t *suppress.Table) { t.Sensitive = nil }},
		{"cell out of bounds", func(t *suppress.Table) { t.Sensitive[0].Row = 9 }},
		{"negative cell", func(t *suppress.Table) { t.Sensitive[0].Col = -1 }},
		{"dup cell", func(t *suppress.Table) { t.Sensitive = append(t.Sensitive, t.Sensitive[0]) }},
		{"unknown level", func(t *suppress.Table) { t.Sensitive[0].Level = "mystery" }},
		{"bottom-level sensitive", func(t *suppress.Table) { t.Sensitive[0].Level = "open" }},
	}
	for _, tc := range cases {
		tab := base()
		tc.break_(tab)
		if err := tab.Validate(); err == nil {
			t.Errorf("%s: Validate accepted an invalid table", tc.name)
		}
	}
	if err := base().Validate(); err != nil {
		t.Fatalf("base table should be valid: %v", err)
	}
}

// TestSuppressOracleSweep is the property test the issue demands: across a
// seeded sweep of generated tables, the solver's minimal assignment must
// pass the frontend's source-level oracle — no sensitive cell inferable
// from published marginals, and every retained upgrade load-bearing.
func TestSuppressOracleSweep(t *testing.T) {
	fe := suppress.Frontend{}
	const instances = 220
	for seed := int64(0); seed < instances; seed++ {
		spec := suppress.GenSpec{
			Seed:    seed,
			Rows:    3 + int(seed%7),
			Cols:    3 + int(seed%5),
			Levels:  2 + int(seed%4),
			Density: 0.08 + 0.04*float64(seed%8),
		}
		tab, err := suppress.Generate(spec)
		if err != nil {
			t.Fatalf("seed %d: generate: %v", seed, err)
		}
		c, err := fe.Compile(tab)
		if err != nil {
			t.Fatalf("seed %d: compile: %v", seed, err)
		}
		res, err := core.Solve(c.Set, core.Options{})
		if err != nil {
			t.Fatalf("seed %d: solve: %v", seed, err)
		}
		if err := core.Verify(c.Set, res.Assignment); err != nil {
			t.Fatalf("seed %d: engine verify: %v", seed, err)
		}
		if err := fe.Oracle(c, res.Assignment); err != nil {
			t.Fatalf("seed %d: source oracle rejected the solved table: %v", seed, err)
		}
	}
}

// TestSuppressOracleRejectsTampered proves the oracle has teeth: a floor
// violation and a gratuitous upgrade are both caught.
func TestSuppressOracleRejectsTampered(t *testing.T) {
	fe := suppress.Frontend{}
	tab, err := suppress.Generate(suppress.GenSpec{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	c, err := fe.Compile(tab)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Solve(c.Set, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	attrOf := func(i, j int) constraint.Attr {
		a, ok := c.Set.AttrByName(fmt.Sprintf("r%dc%d", i, j))
		if !ok {
			t.Fatalf("missing cell (%d,%d)", i, j)
		}
		return a
	}

	// Dropping a sensitive cell to the published level violates its floor.
	low := res.Assignment.Clone()
	s0 := tab.Sensitive[0]
	low[attrOf(s0.Row, s0.Col)] = c.Lattice.Bottom()
	if err := fe.Oracle(c, low); err == nil {
		t.Fatal("oracle accepted a sensitive cell at the published level")
	}

	// Raising a non-sensitive published cell is secure but not minimal.
	top, err := c.Lattice.ParseLevel(tab.Levels[len(tab.Levels)-1])
	if err != nil {
		t.Fatal(err)
	}
	sens := make(map[[2]int]bool)
	for _, s := range tab.Sensitive {
		sens[[2]int{s.Row, s.Col}] = true
	}
	raised := res.Assignment.Clone()
	found := false
	for i := 0; i < tab.Rows && !found; i++ {
		for j := 0; j < tab.Cols && !found; j++ {
			if !sens[[2]int{i, j}] && raised[attrOf(i, j)] == c.Lattice.Bottom() {
				raised[attrOf(i, j)] = top
				found = true
			}
		}
	}
	if !found {
		t.Fatal("no published non-sensitive cell to tamper with")
	}
	err = fe.Oracle(c, raised)
	if err == nil {
		t.Fatal("oracle accepted a gratuitous upgrade")
	}
	if !strings.Contains(err.Error(), "not minimal") {
		t.Fatalf("expected a minimality complaint, got: %v", err)
	}
}

// TestSuppressComplementaryCount spot-checks the reduction on the classic
// single-sensitive-cell table: protecting one cell forces exactly three
// suppressions (the cell plus one row-mate plus one column-mate... the
// row/column complements themselves then being each other's cover).
func TestSuppressComplementaryCount(t *testing.T) {
	tab := &suppress.Table{
		Name:      "corner",
		Levels:    []string{"open", "secret"},
		Rows:      3,
		Cols:      3,
		Sensitive: []suppress.Cell{{Row: 0, Col: 0, Level: "secret"}},
	}
	fe := suppress.Frontend{}
	c, err := fe.Compile(tab)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Solve(c.Set, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := fe.Oracle(c, res.Assignment); err != nil {
		t.Fatalf("oracle: %v", err)
	}
	hidden := 0
	for _, l := range res.Assignment {
		if l != c.Lattice.Bottom() {
			hidden++
		}
	}
	// The sensitive cell, one row complement, one column complement, and
	// (since those complements are themselves hidden and must not be the
	// only hidden cells in their own lines at the attacked clearance —
	// which they are not, the sensitive cell covers them) nothing more is
	// strictly required by the single-equation model than 3; the solver may
	// legitimately settle on 4 (closing the rectangle) only if 3 is not
	// achievable, so accept the minimal pattern sizes.
	if hidden < 3 || hidden > 4 {
		t.Fatalf("expected 3-4 suppressed cells for one sensitive corner cell, got %d", hidden)
	}
	lat, err := lattice.Parse(strings.NewReader(c.LatticeText))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := lat.Name(), c.Lattice.Name(); got != want {
		t.Fatalf("lattice text names %q, compiled lattice is %q", got, want)
	}
}
