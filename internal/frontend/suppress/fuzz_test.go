package suppress_test

import (
	"strings"
	"testing"

	"minup/internal/constraint"
	"minup/internal/core"
	"minup/internal/frontend"
	"minup/internal/frontend/suppress"
	"minup/internal/lattice"
)

// FuzzSuppressCompile drives arbitrary bytes through parse → compile →
// solve → verify. Parsing may reject, but a parsed instance must compile,
// a compiled instance must solve (valid suppress instances always have a
// solution: classify everything at the top of the chain), the result must
// pass the engine verifier, and the emitted policy texts must reparse.
func FuzzSuppressCompile(f *testing.F) {
	for seed := int64(0); seed < 8; seed++ {
		tab, err := suppress.Generate(suppress.GenSpec{Seed: seed, Rows: 3 + int(seed%4), Cols: 3 + int(seed%3)})
		if err != nil {
			f.Fatal(err)
		}
		raw, err := frontend.Marshal(tab)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(raw)
	}
	f.Add([]byte(`{"name":"x","levels":["a","b"],"rows":2,"cols":2,"sensitive":[{"row":0,"col":0,"level":"b"}]}`))
	f.Add([]byte(`{"rows":-1}`))
	f.Add([]byte(`not json`))
	fe := suppress.Frontend{}
	f.Fuzz(func(t *testing.T, data []byte) {
		inst, err := fe.Parse(data)
		if err != nil {
			return
		}
		c, err := fe.Compile(inst)
		if err != nil {
			t.Fatalf("parsed instance failed to compile: %v", err)
		}
		res, err := core.Solve(c.Set, core.Options{})
		if err != nil {
			t.Fatalf("compiled instance failed to solve: %v", err)
		}
		if err := core.Verify(c.Set, res.Assignment); err != nil {
			t.Fatalf("solved assignment failed engine verify: %v", err)
		}
		lat, err := lattice.Parse(strings.NewReader(c.LatticeText))
		if err != nil {
			t.Fatalf("lattice text does not reparse: %v", err)
		}
		set := constraint.NewSet(lat)
		if err := set.ParseString(c.ConstraintText); err != nil {
			t.Fatalf("constraint text does not reparse: %v", err)
		}
	})
}
