// Package frontend compiles adjacent problem classes from the related
// literature into the engine's constraint language, so the solver, the
// policy catalog, and the whole serving stack run unchanged on instance
// shapes the paper-shaped workload generator never produces.
//
// A Frontend owns one source-problem family. It parses a round-trippable
// JSON instance format, compiles an instance into a security lattice plus
// a constraint.Set (ready for Compile/Solve or for the catalog as policy
// source text), generates seeded random instances, and — the part that
// keeps the reductions honest — checks a solved assignment against a
// source-level oracle: security and minimality stated in the vocabulary of
// the source problem, not of the constraint engine. Property tests sweep
// seeded instances through compile → solve → oracle, so a bug in a
// reduction cannot hide behind the engine's own (constraint-level)
// minimality guarantee.
//
// Two frontends register themselves here:
//
//   - suppress (frontend/suppress): two-dimensional cross-tab tables with
//     sensitive cells and published marginals, after Kao's "Data Security
//     Equals Graph Connectivity". Complementary suppression becomes
//     connectivity-shaped complex constraints on the cell grid.
//   - depinf (frontend/depinf): relation schemas with denial-style data
//     dependencies over sensitive attributes, after Pappachan et al.,
//     "Preventing Inferences through Data Dependencies on Sensitive
//     Data". The dependency closure becomes inference constraints the way
//     mlsdb association/inference requirements do.
//
// Registration also installs each frontend as an instance family in
// internal/workload's family registry, so benches and the load harness
// draw frontend instances through the same seeded-generator surface as
// paper-shaped ones.
package frontend

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"

	"minup/internal/constraint"
	"minup/internal/lattice"
	"minup/internal/workload"
)

// Instance is one parsed source-problem instance. Concrete types are
// plain JSON-taggable structs; Marshal re-serializes them into the same
// round-trippable format Parse accepts.
type Instance interface {
	// Family names the frontend the instance belongs to.
	Family() string
	// InstanceName is the instance's own name, used as the default policy
	// name when the instance is stored in the catalog.
	InstanceName() string
	// Validate checks structural well-formedness and the size caps that
	// keep fuzzed instances bounded.
	Validate() error
}

// Compiled is the engine-ready form of a source instance: the lattice and
// constraint set Algorithm 3.1 runs on, plus their textual forms in the
// catalog's policy source grammar, so a compiled instance can be stored
// with an ordinary catalog Put and inherit sharding, replication, memoized
// solves, flight records, and SLO gates unchanged.
type Compiled struct {
	Family   string
	Name     string
	Instance Instance
	Lattice  lattice.Lattice
	Set      *constraint.Set
	// LatticeText and ConstraintText round-trip through lattice.Parse and
	// constraint.ParseInto into an equivalent instance (identical attribute
	// ids), which is exactly what POST /problems/{family} hands to the
	// catalog.
	LatticeText    string
	ConstraintText string
}

// Frontend compiles one source-problem family into the constraint engine.
// Implementations must be stateless (safe for concurrent use) and
// deterministic: Compile of equal instances yields equal texts, and
// Generate is a pure function of (seed, size).
type Frontend interface {
	// Family is the registry key and the {family} path element of
	// POST /problems/{family}.
	Family() string
	// Describe is a one-line human description for listings.
	Describe() string
	// Parse decodes the family's JSON instance format and validates it.
	Parse(data []byte) (Instance, error)
	// Generate builds a seeded random instance; size scales the instance
	// roughly linearly in each dimension (frontends expose richer spec
	// types for fine control).
	Generate(seed int64, size int) (Instance, error)
	// Compile maps a source instance onto the engine: a lattice, a
	// constraint set, and their catalog source texts.
	Compile(inst Instance) (*Compiled, error)
	// Oracle checks a solved assignment in source-problem terms: the
	// instance's security condition holds, required levels are met, and no
	// single element can be declassified one step without breaking either
	// — minimality stated without reference to the compiled constraints.
	Oracle(c *Compiled, m constraint.Assignment) error
}

var (
	regMu    sync.RWMutex
	registry = make(map[string]Frontend)
)

// Register installs a frontend under its family name and mirrors it into
// internal/workload's instance-family registry. It panics on a duplicate
// or empty family — registration happens from package init, where a
// conflict is a programming error.
func Register(f Frontend) {
	family := f.Family()
	if family == "" || strings.ContainsAny(family, "/ \t\n") {
		panic(fmt.Sprintf("frontend: invalid family name %q", family))
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[family]; dup {
		panic(fmt.Sprintf("frontend: family %q registered twice", family))
	}
	registry[family] = f
	workload.MustRegisterFamily(workload.Family{
		Name:     family,
		Describe: f.Describe(),
		Generate: func(seed int64, size int) (workload.FamilyInstance, error) {
			inst, err := f.Generate(seed, size)
			if err != nil {
				return workload.FamilyInstance{}, err
			}
			c, err := f.Compile(inst)
			if err != nil {
				return workload.FamilyInstance{}, err
			}
			raw, err := Marshal(inst)
			if err != nil {
				return workload.FamilyInstance{}, err
			}
			return workload.FamilyInstance{
				Name:        inst.InstanceName(),
				JSON:        raw,
				Lattice:     c.LatticeText,
				Constraints: c.ConstraintText,
			}, nil
		},
	})
}

// Lookup returns the frontend registered for a family.
func Lookup(family string) (Frontend, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	f, ok := registry[family]
	return f, ok
}

// Families returns the registered family names, sorted.
func Families() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Marshal serializes an instance into the JSON format its frontend's
// Parse accepts (indented, stable field order per encoding/json).
func Marshal(inst Instance) ([]byte, error) {
	return json.MarshalIndent(inst, "", "  ")
}

// LatticeString renders a lattice's textual form for the compiled policy
// source. Only chains need synthesizing today (the depinf format carries
// its lattice text verbatim); other kinds would extend this.
func LatticeString(name string, bottomUp []string) string {
	var b strings.Builder
	b.WriteString("chain ")
	b.WriteString(name)
	b.WriteString("\nlevels")
	for _, l := range bottomUp {
		b.WriteString(" ")
		b.WriteString(l)
	}
	b.WriteString("\n")
	return b.String()
}

// ConstraintString renders a constraint set in the catalog's policy
// source grammar via its WriteTo round-trip form.
func ConstraintString(s *constraint.Set) (string, error) {
	var b strings.Builder
	if _, err := s.WriteTo(&b); err != nil {
		return "", err
	}
	return b.String(), nil
}
