package depinf_test

import (
	"strings"
	"testing"

	"minup/internal/constraint"
	"minup/internal/core"
	"minup/internal/frontend"
	"minup/internal/frontend/depinf"
	"minup/internal/lattice"
)

// FuzzDepinfCompile drives arbitrary bytes through parse → compile →
// solve → verify. Parsing may reject, but a parsed instance must compile,
// a compiled instance must solve (classifying every attribute at the
// lattice top satisfies every floor and inference constraint), the result
// must pass the engine verifier, and the emitted policy texts must
// reparse.
func FuzzDepinfCompile(f *testing.F) {
	for seed := int64(0); seed < 8; seed++ {
		rel, err := depinf.Generate(depinf.GenSpec{Seed: seed, Depth: 2 + int(seed%4)})
		if err != nil {
			f.Fatal(err)
		}
		raw, err := frontend.Marshal(rel)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(raw)
	}
	f.Add([]byte(`{"name":"x","lattice":"chain c\nlevels a b\n","attrs":["p","q"],"sensitive":{"q":"b"},"deps":[{"from":["p"],"to":"q"}]}`))
	f.Add([]byte(`{"attrs":[]}`))
	f.Add([]byte(`not json`))
	fe := depinf.Frontend{}
	f.Fuzz(func(t *testing.T, data []byte) {
		inst, err := fe.Parse(data)
		if err != nil {
			return
		}
		c, err := fe.Compile(inst)
		if err != nil {
			t.Fatalf("parsed instance failed to compile: %v", err)
		}
		res, err := core.Solve(c.Set, core.Options{})
		if err != nil {
			t.Fatalf("compiled instance failed to solve: %v", err)
		}
		if err := core.Verify(c.Set, res.Assignment); err != nil {
			t.Fatalf("solved assignment failed engine verify: %v", err)
		}
		lat, err := lattice.Parse(strings.NewReader(c.LatticeText))
		if err != nil {
			t.Fatalf("lattice text does not reparse: %v", err)
		}
		set := constraint.NewSet(lat)
		if err := set.ParseString(c.ConstraintText); err != nil {
			t.Fatalf("constraint text does not reparse: %v", err)
		}
	})
}
