package depinf_test

import (
	"reflect"
	"strings"
	"testing"

	"minup/internal/constraint"
	"minup/internal/core"
	"minup/internal/frontend"
	"minup/internal/frontend/depinf"
	"minup/internal/lattice"
)

func TestDepinfRoundTrip(t *testing.T) {
	fe := depinf.Frontend{}
	for seed := int64(0); seed < 20; seed++ {
		rel, err := depinf.Generate(depinf.GenSpec{Seed: seed})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		raw, err := frontend.Marshal(rel)
		if err != nil {
			t.Fatalf("seed %d: marshal: %v", seed, err)
		}
		got, err := fe.Parse(raw)
		if err != nil {
			t.Fatalf("seed %d: parse: %v", seed, err)
		}
		if !reflect.DeepEqual(got, rel) {
			t.Fatalf("seed %d: round trip changed the instance:\n%s", seed, raw)
		}
	}
}

func TestDepinfGenerateDeterministic(t *testing.T) {
	a, err := depinf.Generate(depinf.GenSpec{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	b, err := depinf.Generate(depinf.GenSpec{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("Generate is not deterministic in the seed")
	}
	ca, err := depinf.Frontend{}.Compile(a)
	if err != nil {
		t.Fatal(err)
	}
	cb, err := depinf.Frontend{}.Compile(b)
	if err != nil {
		t.Fatal(err)
	}
	if ca.ConstraintText != cb.ConstraintText || ca.LatticeText != cb.LatticeText {
		t.Fatal("Compile is not deterministic")
	}
}

func TestDepinfValidateRejects(t *testing.T) {
	base := func() *depinf.Relation {
		return &depinf.Relation{
			Name:      "r",
			Lattice:   "chain mil\nlevels U C S\n",
			Attrs:     []string{"a", "b", "c"},
			Sensitive: map[string]string{"c": "S"},
			Deps:      []depinf.Dependency{{From: []string{"a", "b"}, To: "c"}},
		}
	}
	cases := []struct {
		name   string
		break_ func(*depinf.Relation)
	}{
		{"no name", func(r *depinf.Relation) { r.Name = "" }},
		{"one attr", func(r *depinf.Relation) { r.Attrs = []string{"a"} }},
		{"dup attr", func(r *depinf.Relation) { r.Attrs = []string{"a", "a", "c"} }},
		{"attr with space", func(r *depinf.Relation) { r.Attrs = []string{"a b", "c", "d"} }},
		{"attr shadows level", func(r *depinf.Relation) { r.Attrs = []string{"U", "b", "c"} }},
		{"bad lattice", func(r *depinf.Relation) { r.Lattice = "nonsense" }},
		{"no sensitive", func(r *depinf.Relation) { r.Sensitive = nil }},
		{"unknown sensitive", func(r *depinf.Relation) { r.Sensitive = map[string]string{"z": "S"} }},
		{"unknown level", func(r *depinf.Relation) { r.Sensitive = map[string]string{"c": "Z"} }},
		{"bottom-level sensitive", func(r *depinf.Relation) { r.Sensitive = map[string]string{"c": "U"} }},
		{"empty premises", func(r *depinf.Relation) { r.Deps = []depinf.Dependency{{From: nil, To: "c"}} }},
		{"unknown premise", func(r *depinf.Relation) { r.Deps = []depinf.Dependency{{From: []string{"z"}, To: "c"}} }},
		{"unknown consequent", func(r *depinf.Relation) { r.Deps = []depinf.Dependency{{From: []string{"a"}, To: "z"}} }},
	}
	for _, tc := range cases {
		rel := base()
		tc.break_(rel)
		if err := rel.Validate(); err == nil {
			t.Errorf("%s: Validate accepted an invalid relation", tc.name)
		}
	}
	if err := base().Validate(); err != nil {
		t.Fatalf("base relation should be valid: %v", err)
	}
}

// TestDepinfOracleSweep is the property test the issue demands: across a
// seeded sweep of generated relations, the solver's minimal assignment
// must pass the source-level oracle — no dependency chain reaches a
// sensitive attribute below its assigned level, and every retained
// upgrade is load-bearing for some inference path.
func TestDepinfOracleSweep(t *testing.T) {
	fe := depinf.Frontend{}
	const instances = 220
	for seed := int64(0); seed < instances; seed++ {
		spec := depinf.GenSpec{
			Seed:   seed,
			Depth:  2 + int(seed%6),
			Width:  2 + int(seed%4),
			Levels: 2 + int(seed%4),
			Extra:  1 + int(seed%5),
		}
		rel, err := depinf.Generate(spec)
		if err != nil {
			t.Fatalf("seed %d: generate: %v", seed, err)
		}
		c, err := fe.Compile(rel)
		if err != nil {
			t.Fatalf("seed %d: compile: %v", seed, err)
		}
		res, err := core.Solve(c.Set, core.Options{})
		if err != nil {
			t.Fatalf("seed %d: solve: %v", seed, err)
		}
		if err := core.Verify(c.Set, res.Assignment); err != nil {
			t.Fatalf("seed %d: engine verify: %v", seed, err)
		}
		if err := fe.Oracle(c, res.Assignment); err != nil {
			t.Fatalf("seed %d: source oracle rejected the solved relation: %v", seed, err)
		}
	}
}

// TestDepinfOracleRejectsTampered proves the oracle has teeth.
func TestDepinfOracleRejectsTampered(t *testing.T) {
	fe := depinf.Frontend{}
	rel, err := depinf.Generate(depinf.GenSpec{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	c, err := fe.Compile(rel)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Solve(c.Set, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	attrOf := func(name string) constraint.Attr {
		a, ok := c.Set.AttrByName(name)
		if !ok {
			t.Fatalf("missing attribute %q", name)
		}
		return a
	}

	// Dropping a sensitive attribute to bottom violates its floor.
	var sensAttr string
	for a := range rel.Sensitive {
		sensAttr = a
		break
	}
	low := res.Assignment.Clone()
	low[attrOf(sensAttr)] = c.Lattice.Bottom()
	if err := fe.Oracle(c, low); err == nil {
		t.Fatal("oracle accepted a sensitive attribute below its floor")
	}

	// Raising a layer-0 attribute (never a dependency consequent, so never
	// derivable) keeps the relation secure but is not minimal.
	enum := c.Lattice.(lattice.Enumerable)
	top := enum.Elements()[0]
	for _, l := range enum.Elements() {
		if c.Lattice.Dominates(l, top) {
			top = l
		}
	}
	isConsequent := make(map[string]bool)
	for _, d := range rel.Deps {
		isConsequent[d.To] = true
	}
	raised := res.Assignment.Clone()
	found := false
	for _, name := range rel.Attrs {
		if _, sensitive := rel.Sensitive[name]; sensitive || isConsequent[name] {
			continue
		}
		if a := attrOf(name); raised[a] != top {
			raised[a] = top
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no non-consequent attribute below top to tamper with")
	}
	err = fe.Oracle(c, raised)
	if err == nil {
		t.Fatal("oracle accepted a gratuitous upgrade")
	}
	if !strings.Contains(err.Error(), "not minimal") {
		t.Fatalf("expected a minimality complaint, got: %v", err)
	}
}

// TestDepinfChainPropagation pins the core of the reduction: protection
// propagates backward through a dependency chain, so hiding the sensitive
// end forces enough of the chain's premises up to cut every derivation.
func TestDepinfChainPropagation(t *testing.T) {
	rel := &depinf.Relation{
		Name:      "chain3",
		Lattice:   "chain mil\nlevels U S\n",
		Attrs:     []string{"a", "b", "c"},
		Sensitive: map[string]string{"c": "S"},
		Deps: []depinf.Dependency{
			{From: []string{"a"}, To: "b"},
			{From: []string{"b"}, To: "c"},
		},
	}
	fe := depinf.Frontend{}
	c, err := fe.Compile(rel)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Solve(c.Set, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := fe.Oracle(c, res.Assignment); err != nil {
		t.Fatalf("oracle: %v", err)
	}
	// a derives b derives c, so all three must be secret: a U-cleared
	// viewer seeing a would close the whole chain.
	s, err := c.Lattice.ParseLevel("S")
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range rel.Attrs {
		a, ok := c.Set.AttrByName(name)
		if !ok {
			t.Fatalf("missing attribute %q", name)
		}
		if res.Assignment[a] != s {
			t.Fatalf("attribute %q should be S, is %s", name, c.Lattice.FormatLevel(res.Assignment[a]))
		}
	}
}
