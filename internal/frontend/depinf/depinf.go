// Package depinf compiles dependency-based inference control into the
// constraint engine, after Pappachan et al., "Preventing Inferences
// through Data Dependencies on Sensitive Data".
//
// The source problem: a relation schema with attributes, some of them
// sensitive with a required protection level, plus denial-style data
// dependencies X → y ("whoever knows all of X can derive y"). A
// classification assigns every attribute a level of a security lattice; a
// viewer cleared to l sees the attributes classified ≼ l and then closes
// that set under the dependencies. The classification is secure when the
// closure reveals nothing hidden: for every clearance l, no attribute
// classified above l is derivable from the attributes visible at l —
// in particular no dependency chain reaches a sensitive attribute from
// below its level.
//
// The reduction emits one inference constraint per dependency, the way
// mlsdb schemas turn functional dependencies into inference requirements:
//
//	a >= L          for each sensitive attribute a with requirement L
//	lub(X) >= y     for each dependency X → y
//
// The per-dependency constraints are exactly equivalent to closure
// security on any lattice — soundness is induction along a derivation
// chain, and for the converse take the clearance l = lub(λ(X)): every
// premise is visible at l, so security forces λ(y) ≼ l. Transitive chains
// need no explicit closure computation at compile time; the solver
// propagates levels through the attribute right-hand sides. The Oracle
// recomputes closures from the source definition alone and also sweeps
// one-step declassifications, certifying the engine's minimal assignment
// as minimal inference protection.
package depinf

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"minup/internal/constraint"
	"minup/internal/frontend"
	"minup/internal/lattice"
)

// FamilyName is the registry key and URL path element for this frontend.
const FamilyName = "depinf"

// Size caps bound parsed (and fuzzed) instances; the oracle sweep is
// O(attrs × levels × closure), with closure O(deps × fanout) per level.
const (
	maxAttrs       = 512
	maxDeps        = 2048
	maxFanout      = 16
	maxLevels      = 64
	maxLatticeText = 64 << 10
)

// Dependency is one denial-style data dependency: knowing every attribute
// in From derives To.
type Dependency struct {
	From []string `json:"from"`
	To   string   `json:"to"`
}

// Relation is the round-trippable JSON instance format. Lattice carries a
// full lattice description in the lattice.Parse grammar (chain, mls,
// explicit, semilattice), so instances can be stated over richer level
// structures than a chain; the oracle requires it to be enumerable.
type Relation struct {
	Name    string `json:"name"`
	Lattice string `json:"lattice"`
	// Attrs is the attribute universe in declaration order.
	Attrs []string `json:"attrs"`
	// Sensitive maps attribute names to required protection levels.
	Sensitive map[string]string `json:"sensitive"`
	Deps      []Dependency      `json:"deps"`
}

// Family implements frontend.Instance.
func (r *Relation) Family() string { return FamilyName }

// InstanceName implements frontend.Instance.
func (r *Relation) InstanceName() string { return r.Name }

// lat parses the instance's lattice text, enforcing the enumerability and
// size caps the oracle depends on.
func (r *Relation) lat() (lattice.Lattice, error) {
	if len(r.Lattice) > maxLatticeText {
		return nil, fmt.Errorf("depinf: lattice text exceeds %d bytes", maxLatticeText)
	}
	lat, err := lattice.Parse(strings.NewReader(r.Lattice))
	if err != nil {
		return nil, fmt.Errorf("depinf: parsing lattice: %w", err)
	}
	enum, ok := lat.(lattice.Enumerable)
	if !ok {
		return nil, fmt.Errorf("depinf: oracle needs an enumerable lattice, %q is not", lat.Name())
	}
	if n := len(enum.Elements()); n > maxLevels {
		return nil, fmt.Errorf("depinf: lattice has %d levels, cap is %d", n, maxLevels)
	}
	return lat, nil
}

// Validate implements frontend.Instance.
func (r *Relation) Validate() error {
	if r.Name == "" {
		return fmt.Errorf("depinf: instance has no name")
	}
	if len(r.Attrs) < 2 || len(r.Attrs) > maxAttrs {
		return fmt.Errorf("depinf: need 2..%d attributes, have %d", maxAttrs, len(r.Attrs))
	}
	lat, err := r.lat()
	if err != nil {
		return err
	}
	index := make(map[string]bool, len(r.Attrs))
	for _, a := range r.Attrs {
		if a == "" || strings.ContainsAny(a, "(), \t\n") {
			return fmt.Errorf("depinf: invalid attribute name %q", a)
		}
		if index[a] {
			return fmt.Errorf("depinf: duplicate attribute %q", a)
		}
		if _, err := lat.ParseLevel(a); err == nil {
			return fmt.Errorf("depinf: attribute %q collides with a level of the lattice", a)
		}
		index[a] = true
	}
	if len(r.Sensitive) == 0 {
		return fmt.Errorf("depinf: no sensitive attributes")
	}
	for a, l := range r.Sensitive {
		if !index[a] {
			return fmt.Errorf("depinf: sensitive attribute %q not declared", a)
		}
		lvl, err := lat.ParseLevel(l)
		if err != nil {
			return fmt.Errorf("depinf: sensitive attribute %q: %w", a, err)
		}
		if lvl == lat.Bottom() {
			return fmt.Errorf("depinf: sensitive attribute %q required at the bottom level %q (no protection demanded)", a, l)
		}
	}
	if len(r.Deps) > maxDeps {
		return fmt.Errorf("depinf: %d dependencies exceed the %d cap", len(r.Deps), maxDeps)
	}
	for i, d := range r.Deps {
		if len(d.From) == 0 || len(d.From) > maxFanout {
			return fmt.Errorf("depinf: dependency %d: need 1..%d premises, have %d", i, maxFanout, len(d.From))
		}
		if !index[d.To] {
			return fmt.Errorf("depinf: dependency %d: unknown consequent %q", i, d.To)
		}
		for _, f := range d.From {
			if !index[f] {
				return fmt.Errorf("depinf: dependency %d: unknown premise %q", i, f)
			}
		}
	}
	return nil
}

// GenSpec shapes a seeded random relation. Zero fields take defaults. The
// generator lays attributes out in Depth layers of Width and draws each
// layer-(i+1) attribute's dependency premises from layer i, producing the
// deep derivation chains the paper-shaped workload never emits; Extra
// forward dependencies cross layers.
type GenSpec struct {
	Seed  int64
	Depth int // dependency chain depth (layers), default 4
	Width int // attributes per layer, default 4
	// Fanout is the premises per dependency (default 2).
	Fanout int
	// Levels is the chain height (default 4, max 6).
	Levels int
	// Extra adds that many random cross-layer dependencies (default Depth).
	Extra int
}

// genLevelNames are the chain levels generated relations use, bottom-up.
var genLevelNames = []string{"U", "C", "S", "TS", "X5", "X6"}

// Generate builds a seeded random instance; deterministic in the spec
// (private RNG derived from Seed alone, per the workload family
// registry's independence contract).
func Generate(spec GenSpec) (*Relation, error) {
	if spec.Depth == 0 {
		spec.Depth = 4
	}
	if spec.Width == 0 {
		spec.Width = 4
	}
	if spec.Fanout == 0 {
		spec.Fanout = 2
	}
	if spec.Levels == 0 {
		spec.Levels = 4
	}
	if spec.Extra == 0 {
		spec.Extra = spec.Depth
	}
	if spec.Depth < 2 || spec.Width < 1 || spec.Depth*spec.Width > maxAttrs {
		return nil, fmt.Errorf("depinf: generator shape %dx%d out of range", spec.Depth, spec.Width)
	}
	if spec.Levels < 2 || spec.Levels > len(genLevelNames) {
		return nil, fmt.Errorf("depinf: generator levels must be 2..%d, have %d", len(genLevelNames), spec.Levels)
	}
	if spec.Fanout > spec.Width || spec.Fanout > maxFanout {
		return nil, fmt.Errorf("depinf: fanout %d exceeds layer width %d", spec.Fanout, spec.Width)
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	levels := genLevelNames[:spec.Levels]
	r := &Relation{
		Name:      fmt.Sprintf("depinf-s%d-d%dw%d", spec.Seed, spec.Depth, spec.Width),
		Lattice:   frontend.LatticeString("mil", levels),
		Sensitive: make(map[string]string),
	}
	attrAt := func(layer, k int) string { return fmt.Sprintf("f%02d_%02d", layer, k) }
	for layer := 0; layer < spec.Depth; layer++ {
		for k := 0; k < spec.Width; k++ {
			r.Attrs = append(r.Attrs, attrAt(layer, k))
		}
	}
	// Layered chains: each deeper attribute is derivable from Fanout
	// attributes of the previous layer.
	for layer := 1; layer < spec.Depth; layer++ {
		for k := 0; k < spec.Width; k++ {
			perm := rng.Perm(spec.Width)
			from := make([]string, spec.Fanout)
			for f := 0; f < spec.Fanout; f++ {
				from[f] = attrAt(layer-1, perm[f])
			}
			r.Deps = append(r.Deps, Dependency{From: from, To: attrAt(layer, k)})
		}
	}
	// Extra forward cross-layer dependencies keep the graph from being a
	// clean tree.
	for i := 0; i < spec.Extra; i++ {
		toLayer := 1 + rng.Intn(spec.Depth-1)
		fromLayer := rng.Intn(toLayer)
		perm := rng.Perm(spec.Width)
		n := 1 + rng.Intn(spec.Fanout)
		from := make([]string, n)
		for f := 0; f < n; f++ {
			from[f] = attrAt(fromLayer, perm[f])
		}
		r.Deps = append(r.Deps, Dependency{From: from, To: attrAt(toLayer, rng.Intn(spec.Width))})
	}
	// Sensitive attributes live at the deep end of the chains, so
	// protection must propagate back through every derivation path.
	for k := 0; k < spec.Width; k++ {
		if rng.Float64() < 0.5 {
			r.Sensitive[attrAt(spec.Depth-1, k)] = levels[1+rng.Intn(len(levels)-1)]
		}
	}
	if len(r.Sensitive) == 0 {
		r.Sensitive[attrAt(spec.Depth-1, rng.Intn(spec.Width))] = levels[1+rng.Intn(len(levels)-1)]
	}
	return r, r.Validate()
}

// Frontend is the depinf implementation of frontend.Frontend.
type Frontend struct{}

// Family implements frontend.Frontend.
func (Frontend) Family() string { return FamilyName }

// Describe implements frontend.Frontend.
func (Frontend) Describe() string {
	return "relation with denial-style data dependencies over sensitive attributes (Pappachan et al.): dependency closure as inference constraints"
}

// Parse implements frontend.Frontend.
func (Frontend) Parse(data []byte) (frontend.Instance, error) {
	var r Relation
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&r); err != nil {
		return nil, fmt.Errorf("depinf: decoding instance: %w", err)
	}
	if err := r.Validate(); err != nil {
		return nil, err
	}
	return &r, nil
}

// Generate implements frontend.Frontend: size scales the chain depth.
func (Frontend) Generate(seed int64, size int) (frontend.Instance, error) {
	depth := size
	if depth < 2 {
		depth = 2
	}
	if depth > 24 {
		depth = 24
	}
	return Generate(GenSpec{Seed: seed, Depth: depth})
}

// Compile implements frontend.Frontend: floors for sensitive attributes
// (in sorted order, so compilation is deterministic despite the map) and
// one inference constraint per dependency. Self-dependencies (To among
// From) are trivially satisfied and dropped, as mlsdb does.
func (Frontend) Compile(inst frontend.Instance) (*frontend.Compiled, error) {
	r, ok := inst.(*Relation)
	if !ok {
		return nil, fmt.Errorf("depinf: cannot compile %T", inst)
	}
	if err := r.Validate(); err != nil {
		return nil, err
	}
	lat, err := r.lat()
	if err != nil {
		return nil, err
	}
	set := constraint.NewSet(lat)
	attrs := make(map[string]constraint.Attr, len(r.Attrs))
	for _, name := range r.Attrs {
		a, err := set.AddAttr(name)
		if err != nil {
			return nil, err
		}
		attrs[name] = a
	}
	sens := make([]string, 0, len(r.Sensitive))
	for a := range r.Sensitive {
		sens = append(sens, a)
	}
	sort.Strings(sens)
	for _, name := range sens {
		lvl, err := lat.ParseLevel(r.Sensitive[name])
		if err != nil {
			return nil, err
		}
		if err := set.Add([]constraint.Attr{attrs[name]}, constraint.LevelRHS(lvl)); err != nil {
			return nil, err
		}
	}
	for _, d := range r.Deps {
		from := make([]constraint.Attr, len(d.From))
		for i, f := range d.From {
			from[i] = attrs[f]
		}
		if _, err := set.AddIgnoreTrivial(from, constraint.AttrRHS(attrs[d.To])); err != nil {
			return nil, err
		}
	}
	consText, err := frontend.ConstraintString(set)
	if err != nil {
		return nil, err
	}
	return &frontend.Compiled{
		Family:         FamilyName,
		Name:           r.Name,
		Instance:       r,
		Lattice:        lat,
		Set:            set,
		LatticeText:    r.Lattice,
		ConstraintText: consText,
	}, nil
}

// secure checks the source-level security condition: sensitive floors
// hold, and for every clearance the dependency closure of the visible
// attributes contains nothing classified above that clearance.
func secure(r *Relation, lat lattice.Lattice, level func(name string) lattice.Level) error {
	for _, pair := range sortedSensitive(r) {
		req, err := lat.ParseLevel(pair[1])
		if err != nil {
			return err
		}
		if own := level(pair[0]); !lat.Dominates(own, req) {
			return fmt.Errorf("depinf: sensitive attribute %q classified %s below its required %s",
				pair[0], lat.FormatLevel(own), pair[1])
		}
	}
	enum := lat.(lattice.Enumerable)
	visible := make(map[string]bool, len(r.Attrs))
	for _, viewer := range enum.Elements() {
		clear(visible)
		for _, a := range r.Attrs {
			if lat.Dominates(viewer, level(a)) {
				visible[a] = true
			}
		}
		// Dependency closure to fixpoint: anything derivable from visible
		// attributes becomes visible.
		for changed := true; changed; {
			changed = false
			for _, d := range r.Deps {
				if visible[d.To] {
					continue
				}
				all := true
				for _, f := range d.From {
					if !visible[f] {
						all = false
						break
					}
				}
				if all {
					if !lat.Dominates(viewer, level(d.To)) {
						return fmt.Errorf("depinf: %q (classified %s) is derivable by a %s viewer via dependency chains",
							d.To, lat.FormatLevel(level(d.To)), lat.FormatLevel(viewer))
					}
					visible[d.To] = true
					changed = true
				}
			}
		}
	}
	return nil
}

// sortedSensitive returns (attr, requiredLevel) pairs in attr order for
// deterministic error reporting.
func sortedSensitive(r *Relation) [][2]string {
	out := make([][2]string, 0, len(r.Sensitive))
	for a, l := range r.Sensitive {
		out = append(out, [2]string{a, l})
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}

// Oracle implements frontend.Frontend: source-level security (no
// dependency chain reaches anything hidden, in particular no sensitive
// attribute below its level) plus the one-step declassification sweep for
// minimality, all stated without reference to the compiled constraints.
func (Frontend) Oracle(c *frontend.Compiled, m constraint.Assignment) error {
	r, ok := c.Instance.(*Relation)
	if !ok {
		return fmt.Errorf("depinf: oracle on %T", c.Instance)
	}
	lat := c.Lattice
	if len(m) != c.Set.NumAttrs() {
		return fmt.Errorf("depinf: assignment covers %d of %d attributes", len(m), c.Set.NumAttrs())
	}
	attrOf := func(name string) constraint.Attr {
		a, ok := c.Set.AttrByName(name)
		if !ok {
			panic(fmt.Sprintf("depinf: compiled set missing attribute %q", name))
		}
		return a
	}
	level := func(name string) lattice.Level { return m[attrOf(name)] }
	if err := secure(r, lat, level); err != nil {
		return err
	}
	enum := lat.(lattice.Enumerable)
	lowered := m.Clone()
	for _, name := range r.Attrs {
		a := attrOf(name)
		own := m[a]
		for _, lower := range enum.Elements() {
			if lower == own || !lat.Dominates(own, lower) {
				continue
			}
			lowered[a] = lower
			err := secure(r, lat, func(n string) lattice.Level { return lowered[attrOf(n)] })
			lowered[a] = own
			if err == nil {
				return fmt.Errorf("depinf: not minimal: attribute %q can be lowered %s -> %s without enabling any inference",
					name, lat.FormatLevel(own), lat.FormatLevel(lower))
			}
		}
	}
	return nil
}

func init() { frontend.Register(Frontend{}) }
