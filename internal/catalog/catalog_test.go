package catalog

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"strconv"
	"testing"
	"time"

	"minup/internal/obs"
	"minup/internal/wal"
)

const (
	testLattice = "chain mil\nlevels U C S TS\n"
	testCons    = "attrs salary rank\nsalary >= rank\nrank >= S\n"
)

func mustOpen(t *testing.T, opt Options) *Catalog {
	t.Helper()
	if opt.Shards == 0 {
		// CI runs the suite across a shard matrix: tests that don't pin a
		// count (and so assert shard-count-independent behavior) pick it
		// up from the environment instead of GOMAXPROCS.
		if env := os.Getenv("CATALOG_TEST_SHARDS"); env != "" {
			n, err := strconv.Atoi(env)
			if err != nil || n < 1 {
				t.Fatalf("bad CATALOG_TEST_SHARDS %q", env)
			}
			opt.Shards = n
		}
	}
	c, err := Open(opt)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// mustFlush drains the refresh pipeline so async mutations become
// deterministic for the assertions that follow. The timeout is far beyond
// any real drain (the heaviest soak flushes in well under a second even
// with -race): its job is turning a pending-count accounting bug into an
// immediate failure with a message, not a silent test-binary timeout.
func mustFlush(t *testing.T, c *Catalog) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := c.Flush(ctx); err != nil {
		t.Fatalf("Flush: %v (a timeout here means the pipeline leaked a pending refresh)", err)
	}
}

func TestPutGetSolveLifecycle(t *testing.T) {
	reg := obs.NewRegistry()
	c := mustOpen(t, Options{Metrics: reg})
	ctx := context.Background()

	info, err := c.Put(ctx, "hr", testLattice, testCons, MustNotExist)
	if err != nil {
		t.Fatalf("Put: %v", err)
	}
	if info.Version != 1 || info.Attrs != 2 || info.Constraints != 2 {
		t.Fatalf("Put info = %+v", info)
	}
	// The mutation is visible immediately; the memoized artifacts arrive
	// asynchronously, so drain the pipeline before asserting on them.
	mustFlush(t, c)
	got, err := c.Get("hr")
	if err != nil || got.Version != 1 || got.Lattice != testLattice {
		t.Fatalf("Get = %+v, %v", got, err)
	}
	if !got.Compiled || !got.Solved {
		t.Fatalf("refresh pipeline left the cache cold after Flush: %+v", got)
	}

	// The refresh worker warmed the cache, so every solve is a hit: zero
	// compiles and zero solves on the read path.
	res, err := c.Solve(ctx, "hr")
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if !res.CacheHit {
		t.Fatal("solve after Flush was not served from the refreshed cache")
	}
	want := map[string]string{"salary": "S", "rank": "S"}
	for a, l := range want {
		if res.Assignment[a] != l {
			t.Fatalf("Assignment[%s] = %q, want %q (full %v)", a, res.Assignment[a], l, res.Assignment)
		}
	}
	res2, err := c.Solve(ctx, "hr")
	if err != nil || !res2.CacheHit {
		t.Fatalf("second Solve: hit=%v err=%v", res2.CacheHit, err)
	}
	if res2.Assignment["salary"] != "S" {
		t.Fatalf("cached Assignment = %v", res2.Assignment)
	}
	snap := reg.Snapshot()
	for name, want := range map[string]uint64{
		"catalog.compiles":          1,
		"catalog.cache_misses":      0,
		"catalog.cache_hits":        2,
		"solve.cold":                0,
		"catalog.refresh.enqueued":  1,
		"catalog.refresh.completed": 1,
		"catalog.refresh.solves":    1,
	} {
		if snap.Counters[name] != want {
			t.Errorf("counter %s = %d, want %d", name, snap.Counters[name], want)
		}
	}
	if g := snap.Gauges["catalog.policies"]; g != 1 {
		t.Errorf("catalog.policies gauge = %d, want 1", g)
	}

	if list := c.List(); len(list) != 1 || list[0].Name != "hr" || list[0].Lattice != "" {
		t.Fatalf("List = %+v", list)
	}
}

func TestVersionPreconditions(t *testing.T) {
	c := mustOpen(t, Options{})
	ctx := context.Background()

	if _, err := c.Put(ctx, "p", testLattice, testCons, MustNotExist); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Put(ctx, "p", testLattice, testCons, MustNotExist); !errors.Is(err, ErrExists) {
		t.Fatalf("create-only Put over existing: err = %v, want ErrExists", err)
	}
	info, err := c.Put(ctx, "p", testLattice, testCons, 1)
	if err != nil || info.Version != 2 {
		t.Fatalf("conditional replace: %+v, %v", info, err)
	}
	if _, err := c.Put(ctx, "p", testLattice, testCons, 1); !errors.Is(err, ErrVersionMismatch) {
		t.Fatalf("stale Put: err = %v, want ErrVersionMismatch", err)
	}
	if _, err := c.Append(ctx, "p", "rank >= TS\n", 1); !errors.Is(err, ErrVersionMismatch) {
		t.Fatalf("stale Append: err = %v, want ErrVersionMismatch", err)
	}
	if _, err := c.Append(ctx, "ghost", "rank >= TS\n", Unconditional); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Append to missing: err = %v, want ErrNotFound", err)
	}
	if err := c.Delete(ctx, "p", 1); !errors.Is(err, ErrVersionMismatch) {
		t.Fatalf("stale Delete: err = %v, want ErrVersionMismatch", err)
	}
	if err := c.Delete(ctx, "p", 2); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if _, err := c.Get("p"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get after delete: err = %v, want ErrNotFound", err)
	}
	if err := c.Delete(ctx, "p", Unconditional); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Delete missing: err = %v, want ErrNotFound", err)
	}

	if _, err := c.Put(ctx, "bad/name", testLattice, testCons, Unconditional); err == nil {
		t.Fatal("Put accepted a name with '/'")
	}
	if _, err := c.Put(ctx, "q", testLattice, "salary >=\n", Unconditional); err == nil {
		t.Fatal("Put accepted unparseable constraints")
	}
	if _, err := c.Put(ctx, "q", testLattice, "U >= salary\nsalary >= S\n", Unconditional); err == nil {
		t.Fatal("Put accepted an unsolvable policy")
	}
}

func TestAppendRepairsAndMemoizes(t *testing.T) {
	reg := obs.NewRegistry()
	c := mustOpen(t, Options{Metrics: reg})
	ctx := context.Background()

	// Wait-mode Put: the refresh runs before the call returns, so the
	// cache is warm without any reader.
	pinfo, err := c.Put(ctx, "hr", testLattice, testCons, MustNotExist, MutateOptions{Wait: true})
	if err != nil {
		t.Fatal(err)
	}
	if !pinfo.Solved || !pinfo.Compiled {
		t.Fatalf("wait-mode Put returned a cold policy: %+v", pinfo)
	}

	// Warm wait-mode append: must take the incremental-repair path, not a
	// cold solve, and must leave the repaired answer memoized.
	ar, err := c.Append(ctx, "hr", "rank >= TS\n", 1, MutateOptions{Wait: true})
	if err != nil {
		t.Fatalf("Append: %v", err)
	}
	if !ar.Repaired || ar.Pending || ar.Info.Version != 2 {
		t.Fatalf("AppendResult = %+v, want repaired (not pending) at version 2", ar)
	}
	if !ar.Info.Solved || !ar.Info.Compiled {
		t.Fatalf("wait-mode repaired append left cache flags cold: %+v", ar.Info)
	}
	res, err := c.Solve(ctx, "hr")
	if err != nil || !res.CacheHit {
		t.Fatalf("Solve after append: hit=%v err=%v", res.CacheHit, err)
	}
	if res.Assignment["rank"] != "TS" || res.Assignment["salary"] != "TS" {
		t.Fatalf("repaired Assignment = %v, want both TS", res.Assignment)
	}
	snap := reg.Snapshot()
	if snap.Counters["solve.cold"] != 0 {
		t.Fatalf("solve.cold = %d after warm append, want 0 (repair must not cold-solve)", snap.Counters["solve.cold"])
	}
	if snap.Counters["catalog.repairs"] != 1 {
		t.Fatalf("catalog.repairs = %d, want 1", snap.Counters["catalog.repairs"])
	}

	// Append introducing a brand-new attribute: the repair extends the
	// solution to it.
	if _, err := c.Append(ctx, "hr", "bonus >= salary\n", 2, MutateOptions{Wait: true}); err != nil {
		t.Fatal(err)
	}
	res, err = c.Solve(ctx, "hr")
	if err != nil || !res.CacheHit || res.Assignment["bonus"] != "TS" {
		t.Fatalf("Solve with new attr: hit=%v res=%v err=%v", res.CacheHit, res.Assignment, err)
	}

	// A failed append (parse error, then unsolvable §6 bound) must leave
	// the policy byte-identical and the cache warm.
	before := c.Fingerprint()
	if _, err := c.Append(ctx, "hr", "lub( >= oops\n", Unconditional); err == nil {
		t.Fatal("Append accepted garbage")
	}
	if _, err := c.Append(ctx, "hr", "U >= rank\n", Unconditional); err == nil {
		t.Fatal("Append accepted an unsolvable upper bound")
	}
	if !bytes.Equal(before, c.Fingerprint()) {
		t.Fatal("failed append mutated the policy")
	}
	if res, err := c.Solve(ctx, "hr"); err != nil || !res.CacheHit {
		t.Fatalf("cache lost after failed append: hit=%v err=%v", res.CacheHit, err)
	}

	// Async append: returns immediately with Pending set, no repair stats;
	// the shard worker repairs in the background (the cache was warm, so
	// the refresh goes through RepairContext, not a cold solve).
	ar, err = c.Append(ctx, "hr", "salary >= TS\n", Unconditional)
	if err != nil || ar.Repaired || !ar.Pending {
		t.Fatalf("async Append = %+v, %v (want pending, unrepaired)", ar, err)
	}
	mustFlush(t, c)
	res, err = c.Solve(ctx, "hr")
	if err != nil || !res.CacheHit || res.Assignment["salary"] != "TS" {
		t.Fatalf("solve after flushed async append: hit=%v res=%v err=%v", res.CacheHit, res.Assignment, err)
	}
	snap = reg.Snapshot()
	if snap.Counters["catalog.repairs"] != 3 {
		t.Fatalf("catalog.repairs = %d, want 3 (async refresh must repair, not cold-solve)", snap.Counters["catalog.repairs"])
	}
	if snap.Counters["solve.cold"] != 0 {
		t.Fatalf("solve.cold = %d, want 0", snap.Counters["solve.cold"])
	}
}

func TestDurabilityRoundTrip(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	c := mustOpen(t, Options{Dir: dir, Sync: wal.SyncAlways})
	if _, err := c.Put(ctx, "a", testLattice, testCons, MustNotExist); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Put(ctx, "b", testLattice, testCons, MustNotExist); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Append(ctx, "a", "rank >= TS\n", Unconditional); err != nil {
		t.Fatal(err)
	}
	if err := c.Delete(ctx, "b", Unconditional); err != nil {
		t.Fatal(err)
	}
	want := c.Fingerprint()
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	c2 := mustOpen(t, Options{Dir: dir, Sync: wal.SyncAlways})
	if got := c2.Fingerprint(); !bytes.Equal(got, want) {
		t.Fatalf("reopened state differs:\n%s\nwant:\n%s", got, want)
	}
	ri := c2.RecoveryInfo()
	if ri.WALRecords != 4 || ri.TornTail {
		t.Fatalf("RecoveryInfo = %+v, want 4 WAL records, no torn tail", ri)
	}
	info, err := c2.Get("a")
	if err != nil || info.Version != 2 {
		t.Fatalf("recovered policy a = %+v, %v (want version 2)", info, err)
	}
	// Versions keep climbing from the recovered point.
	if inf, err := c2.Put(ctx, "a", testLattice, testCons, 2); err != nil || inf.Version != 3 {
		t.Fatalf("post-recovery Put = %+v, %v", inf, err)
	}
}

func TestSnapshotCompaction(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	c := mustOpen(t, Options{Dir: dir, Sync: wal.SyncAlways, SnapshotEvery: 4, Shards: 1})
	for _, name := range []string{"a", "b", "c"} {
		if _, err := c.Put(ctx, name, testLattice, testCons, MustNotExist); err != nil {
			t.Fatal(err)
		}
	}
	// Save the pre-compaction WAL (records 1..3): restoring it later
	// simulates a crash in the window between "snapshot written" and "WAL
	// reset".
	oldWAL, err := os.ReadFile(filepath.Join(dir, "catalog-0.wal"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Append(ctx, "a", "rank >= TS\n", Unconditional); err != nil { // 4th record: compacts
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "catalog-0.snap")); err != nil {
		t.Fatalf("no snapshot after compaction threshold: %v", err)
	}
	if fi, _ := os.Stat(filepath.Join(dir, "catalog-0.wal")); fi.Size() != 0 {
		t.Fatalf("WAL not reset after compaction: %d bytes", fi.Size())
	}
	want := c.Fingerprint()
	c.Close()

	// Clean reopen from snapshot only.
	c2 := mustOpen(t, Options{Dir: dir, Sync: wal.SyncAlways, SnapshotEvery: 4, Shards: 1})
	if got := c2.Fingerprint(); !bytes.Equal(got, want) {
		t.Fatalf("snapshot-only recovery differs:\n%s\nwant:\n%s", got, want)
	}
	if ri := c2.RecoveryInfo(); ri.SnapshotPolicies != 3 || ri.WALRecords != 0 {
		t.Fatalf("RecoveryInfo = %+v", ri)
	}
	c2.Close()

	// Crash-window replay: stale WAL records whose mutations the snapshot
	// already contains must be skipped by sequence number, not re-applied.
	if err := os.WriteFile(filepath.Join(dir, "catalog-0.wal"), oldWAL, 0o644); err != nil {
		t.Fatal(err)
	}
	c3 := mustOpen(t, Options{Dir: dir, Sync: wal.SyncAlways, SnapshotEvery: 4, Shards: 1})
	if got := c3.Fingerprint(); !bytes.Equal(got, want) {
		t.Fatalf("crash-window recovery differs:\n%s\nwant:\n%s", got, want)
	}
	if ri := c3.RecoveryInfo(); ri.WALRecords != 0 {
		t.Fatalf("stale records were replayed: %+v", ri)
	}
	// And the catalog must still append correctly past the stale tail.
	if inf, err := c3.Put(ctx, "d", testLattice, testCons, MustNotExist); err != nil || inf.Version != 1 {
		t.Fatalf("post-crash-window Put = %+v, %v", inf, err)
	}
}
