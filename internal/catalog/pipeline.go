package catalog

import (
	"context"
	"fmt"
	"sync"
	"time"

	"minup/internal/constraint"
	"minup/internal/core"
	"minup/internal/lattice"
	"minup/internal/obs"
)

// Bus topics the catalog publishes on. Subscribe via Catalog.Bus().
const (
	// TopicMutations carries one MutationEvent per durable mutation, after
	// the WAL append and the in-memory install. The future WAL-shipping
	// replicator (ROADMAP item 1) subscribes here.
	TopicMutations = "catalog.mutations"
	// TopicRefreshed carries one RefreshEvent per refresh-pipeline
	// completion or failure.
	TopicRefreshed = "catalog.refreshed"
)

// refreshTopic is shard i's private feed from mutations to its refresh
// worker.
func refreshTopic(i int) string { return fmt.Sprintf("catalog.shard.%d.refresh", i) }

// refreshBuffer is each shard worker's event buffer. A full buffer drops
// the refresh (counted "catalog.refresh.dropped") rather than stalling the
// mutation; the cache merely stays cold until the next read fills it.
const refreshBuffer = 256

// MutationEvent is the TopicMutations payload.
type MutationEvent struct {
	Op      string // "put" | "append" | "delete"
	Name    string
	Version uint64 // 0 for deletes
	Shard   int
	Seq     uint64 // the shard-local WAL sequence number
}

// RefreshEvent is the TopicRefreshed payload.
type RefreshEvent struct {
	Name    string
	Version uint64
	Shard   int
	// Repaired reports the refresh extended a memoized solution
	// incrementally instead of solving cold.
	Repaired bool
	// Err is non-empty when the refresh failed (the cache stays cold).
	Err string
}

// MutateOptions tunes one mutation.
type MutateOptions struct {
	// Wait makes the mutation fully synchronous: instead of handing the
	// compile/solve refresh to the shard's background worker, it runs
	// before the call returns — a Put comes back with its cache warm, an
	// Append with its repair performed (and reported in AppendResult).
	// This is the pre-pipeline behavior; tests and the HTTP ?wait=1 knob
	// use it for determinism.
	Wait bool
	// SeqOut, when non-nil, receives the shard-local WAL sequence number
	// the mutation was logged at, assigned under the shard's write lock.
	// The cluster layer uses it to wait for quorum replication of exactly
	// this record before acknowledging the mutation.
	SeqOut *uint64
}

func mutateOpts(opts []MutateOptions) MutateOptions {
	if len(opts) == 0 {
		return MutateOptions{}
	}
	return opts[0]
}

// refreshJob is the unit of work flowing from a mutation to its shard's
// refresh worker: everything needed to rebuild the version's memoized
// artifacts without touching the shard (set and base are immutable once
// captured — mutations clone-and-swap).
type refreshJob struct {
	shard *shard
	// pol is the *policy the mutation installed (or mutated in place). The
	// install guard requires pointer identity in addition to the version:
	// versions restart at 1 after delete+recreate, so (name, version) alone
	// could match a different policy's lifetime and install artifacts built
	// from the old constraint set onto the new policy.
	pol     *policy
	name    string
	version uint64
	lat     lattice.Lattice
	set     *constraint.Set
	// base, when non-nil, is the previous version's memoized solution:
	// the worker repairs it incrementally (core.RepairContext) instead of
	// solving cold. baseCount is the constraint count the base satisfied.
	base      constraint.Assignment
	baseCount int
}

// ---------------------------------------------------------------------------
// Mutations.

// Put creates or replaces a policy from lattice and constraint text,
// validating both (including §6 solvability) before anything is persisted.
// ifVersion carries the optimistic-concurrency precondition (Unconditional,
// MustNotExist, or an exact current version). A created policy starts at
// version 1; a replaced one continues its predecessor's version sequence,
// so ETags never repeat within a name's lifetime.
//
// Put returns once the mutation is durable and visible; compiling and
// solving the new version happens on the shard's refresh worker unless
// MutateOptions.Wait is set (see MutateOptions).
func (c *Catalog) Put(ctx context.Context, name, latticeText, constraintsText string, ifVersion int64, opts ...MutateOptions) (PolicyInfo, error) {
	opt := mutateOpts(opts)
	staged, err := buildPolicy(name, latticeText, constraintsText)
	if err != nil {
		return PolicyInfo{}, err
	}
	if err := core.CheckSolvable(staged.set); err != nil {
		return PolicyInfo{}, fmt.Errorf("catalog: policy %q is unsolvable: %w", name, err)
	}
	if err := ctx.Err(); err != nil {
		return PolicyInfo{}, err
	}

	s := c.shardFor(name)
	var info PolicyInfo
	var seq uint64
	// The locked section runs in a closure with a deferred unlock so that
	// an injected panic (chaos tests crash mid-append) never leaves the
	// shard mutex held.
	err = func() error {
		s.mu.Lock()
		defer s.mu.Unlock()
		if s.closed {
			return ErrClosed
		}
		if err := checkVersion(s, name, ifVersion, false); err != nil {
			return err
		}
		if err := c.logRecord(s, walRecord{Op: "put", Name: name, Lattice: latticeText, Constraints: constraintsText}); err != nil {
			return err
		}
		staged.shard = s.id
		if old := s.pol[name]; old != nil {
			staged.version = old.version + 1
		} else {
			staged.version = 1
			c.policies.Add(1)
		}
		s.pol[name] = staged
		info = staged.info()
		seq = s.seq
		if opt.SeqOut != nil {
			*opt.SeqOut = seq
		}
		c.count("catalog.puts")
		c.shardGauge(s)
		c.maybeCompact(s)
		return nil
	}()
	if err != nil {
		return PolicyInfo{}, err
	}

	c.bus.Publish(TopicMutations, MutationEvent{Op: "put", Name: name, Version: info.Version, Shard: s.id, Seq: seq})
	job := refreshJob{shard: s, pol: staged, name: name, version: info.Version, lat: staged.lat, set: staged.set}
	if opt.Wait {
		c.runRefresh(ctx, job)
		if cur, err := c.Get(name); err == nil && cur.Version == info.Version {
			info = cur
		}
	} else {
		c.enqueueRefresh(job)
	}
	return info, nil
}

// AppendResult reports what an Append did beyond the new PolicyInfo.
type AppendResult struct {
	Info PolicyInfo
	// Repaired is true when the memoized solution was extended
	// incrementally via core.RepairContext before the call returned (i.e.
	// a Wait append against a warm cache); the new solution is memoized
	// either way it was computed.
	Repaired bool
	// Repair carries the repair's work counts when Repaired.
	Repair core.RepairStats
	// Pending is true when the refresh (compile + repair/solve) was handed
	// to the shard's background worker: the mutation is durable and
	// visible, but the memoized answer is not warm yet. Call Flush — or
	// just Solve — to force it.
	Pending bool
}

// Append parses additional constraint text into the policy. The appended
// set is validated (§6 solvability) and made durable synchronously — a
// failed append leaves the policy untouched — while recomputing the
// memoized answer is handed to the shard's refresh worker, which goes
// through core.RepairContext instead of a cold solve whenever the previous
// version's solution was memoized. With MutateOptions.Wait the repair runs
// inline under the shard lock and its stats are returned (the
// pre-pipeline behavior). ifVersion as in Put (MustNotExist is an error
// here).
func (c *Catalog) Append(ctx context.Context, name, constraintsText string, ifVersion int64, opts ...MutateOptions) (AppendResult, error) {
	opt := mutateOpts(opts)
	s := c.shardFor(name)
	res := AppendResult{}
	var (
		ns        *constraint.Set
		baseCount int
		base      constraint.Assignment
		pol       *policy
		lat       lattice.Lattice
		seq       uint64
		solved    constraint.Assignment
	)
	// Locked section in a closure with a deferred unlock: an injected panic
	// (chaos tests crash mid-append) must not leave the shard mutex held.
	err := func() error {
		s.mu.Lock()
		defer s.mu.Unlock()
		if s.closed {
			return ErrClosed
		}
		if ifVersion == MustNotExist {
			return fmt.Errorf("%w: append requires an existing policy", ErrVersionMismatch)
		}
		if err := checkVersion(s, name, ifVersion, true); err != nil {
			return err
		}
		p := s.pol[name]
		ns = p.set.Clone()
		baseCount = len(ns.Constraints())
		if err := ns.ParseString(constraintsText); err != nil {
			return fmt.Errorf("catalog: policy %q append: %w", name, err)
		}

		var solvedStats core.Stats
		base = p.solved
		switch {
		case opt.Wait && base != nil:
			// Synchronous incremental path: extend the memoized solution
			// under the lock, rejecting the append outright if the repair
			// fails. Attributes the appended text introduced start at ⊥ —
			// they carry no history, and the repair raises them exactly as
			// far as the new constraints force.
			seeded := base.Clone()
			for len(seeded) < ns.NumAttrs() {
				seeded = append(seeded, p.lat.Bottom())
			}
			repaired, rstats, err := core.RepairContext(ctx, ns, baseCount, seeded, core.RepairOptions{VerifyMinimal: true})
			if err != nil {
				return fmt.Errorf("catalog: policy %q append rejected: %w", name, err)
			}
			res.Repaired = true
			res.Repair = *rstats
			solved = repaired
			solvedStats = rstats.Solve
			c.countRepair(rstats)
		default:
			// Async (or cold) path: the append must still be rejected
			// synchronously if it makes the policy unsolvable — once the
			// WAL record is durable there is no caller left to refuse.
			if err := core.CheckSolvable(ns); err != nil {
				return fmt.Errorf("catalog: policy %q append rejected: %w", name, err)
			}
		}

		if err := c.logRecord(s, walRecord{Op: "append", Name: name, Constraints: constraintsText}); err != nil {
			return err
		}
		p.set = ns
		p.consTexts = append(p.consTexts, constraintsText)
		p.version++
		p.compiled = nil
		p.solved = solved
		p.solvedStats = solvedStats
		if res.Repaired {
			// The repair already warmed the solution inline; rebuild the
			// compiled snapshot too, so the version doesn't report
			// compiled:false forever (a solved cache never triggers the
			// lazy compile on reads). Same fault point as the pipeline's
			// compile; on injected failure the snapshot just stays cold.
			if c.opt.Fault.Hit("catalog.compile") == nil {
				p.compiled = ns.Snapshot()
				c.count("catalog.compiles")
			}
		}
		res.Info = p.info()
		pol = p
		seq = s.seq
		if opt.SeqOut != nil {
			*opt.SeqOut = seq
		}
		lat = p.lat
		c.count("catalog.appends")
		c.maybeCompact(s)
		return nil
	}()
	if err != nil {
		return AppendResult{}, err
	}

	c.bus.Publish(TopicMutations, MutationEvent{Op: "append", Name: name, Version: res.Info.Version, Shard: s.id, Seq: seq})
	job := refreshJob{shard: s, pol: pol, name: name, version: res.Info.Version, lat: lat, set: ns, base: base, baseCount: baseCount}
	switch {
	case opt.Wait && solved == nil:
		// Wait append against a cold cache: warm it before returning.
		c.runRefresh(ctx, job)
		if cur, err := c.Get(name); err == nil && cur.Version == res.Info.Version {
			res.Info = cur
		}
	case !opt.Wait:
		res.Pending = true
		c.enqueueRefresh(job)
	}
	return res, nil
}

// countRepair records one incremental repair's counters and histogram.
func (c *Catalog) countRepair(rstats *core.RepairStats) {
	c.count("catalog.repairs")
	if rstats.FellBack {
		c.count("catalog.repair_fallbacks")
	}
	if c.opt.Metrics != nil {
		c.opt.Metrics.Histogram("catalog.repair.duration_us", obs.DurationBucketsUS).
			Observe(uint64(rstats.Duration.Microseconds()))
	}
}

// Delete removes a policy. Always synchronous — there is nothing to
// refresh. ifVersion as in Put (MustNotExist is an error). Of the
// MutateOptions only SeqOut applies; Wait is meaningless here.
func (c *Catalog) Delete(ctx context.Context, name string, ifVersion int64, opts ...MutateOptions) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	opt := mutateOpts(opts)
	s := c.shardFor(name)
	var seq uint64
	err := func() error {
		s.mu.Lock()
		defer s.mu.Unlock()
		if s.closed {
			return ErrClosed
		}
		if ifVersion == MustNotExist {
			return fmt.Errorf("%w: delete requires an existing policy", ErrVersionMismatch)
		}
		if err := checkVersion(s, name, ifVersion, true); err != nil {
			return err
		}
		if err := c.logRecord(s, walRecord{Op: "delete", Name: name}); err != nil {
			return err
		}
		delete(s.pol, name)
		c.policies.Add(-1)
		seq = s.seq
		if opt.SeqOut != nil {
			*opt.SeqOut = seq
		}
		c.count("catalog.deletes")
		c.shardGauge(s)
		c.maybeCompact(s)
		return nil
	}()
	if err != nil {
		return err
	}

	c.bus.Publish(TopicMutations, MutationEvent{Op: "delete", Name: name, Shard: s.id, Seq: seq})
	return nil
}

// ---------------------------------------------------------------------------
// The refresh pipeline: per-shard background workers that rebuild a
// version's memoized artifacts after an async mutation.

// enqueueRefresh hands a job to its shard's worker over the bus. A dropped
// publish (full buffer, or the pipeline already shut down) just leaves the
// cache cold for the next read to fill.
func (c *Catalog) enqueueRefresh(job refreshJob) {
	c.pendingAdd(1)
	c.count("catalog.refresh.enqueued")
	if c.bus.Publish(refreshTopic(job.shard.id), job) == 0 {
		c.count("catalog.refresh.dropped")
		c.pendingAdd(-1)
	}
}

// refreshWorker drains one shard's refresh feed until the subscription
// closes (catalog Close). Buffered jobs are still processed after close —
// bus subscriptions drain before their channel reports closed.
func (c *Catalog) refreshWorker(s *shard) {
	defer c.workers.Done()
	for ev := range s.sub.C {
		if job, ok := ev.Payload.(refreshJob); ok {
			c.safeRefresh(job)
			c.pendingAdd(-1)
		}
	}
}

// safeRefresh shields the worker goroutine from injected panics (fault
// points fire inside compile and solve): a crashed refresh is recorded and
// the worker lives on — the policy's cache simply stays cold. Wait-mode
// callers invoke runRefresh directly so a panic propagates to them, exactly
// like the pre-pipeline synchronous path did.
func (c *Catalog) safeRefresh(job refreshJob) {
	start := time.Now()
	defer func() {
		if r := recover(); r != nil {
			c.count("catalog.refresh.panics")
			c.recordRefresh(job, start, "panic", fmt.Sprintf("panic: %v", r))
			c.bus.Publish(TopicRefreshed, RefreshEvent{
				Name: job.name, Version: job.version, Shard: job.shard.id,
				Err: fmt.Sprintf("panic: %v", r),
			})
		}
	}()
	c.runRefresh(context.Background(), job)
}

// runRefresh rebuilds one version's compiled snapshot and memoized
// solution, then installs them iff the policy is still the very *policy
// the mutation touched, at that version — pointer identity guards against
// delete+recreate, which restarts the version sequence at 1 and would
// otherwise let a stale job install artifacts built from the old
// constraint set onto the new policy. All solver work happens outside the
// shard lock; only the install takes it. Also the synchronous body of
// MutateOptions.Wait, which passes the caller's ctx so the inline
// repair/solve honors cancellation and the HTTP solve budget; workers
// pass context.Background().
func (c *Catalog) runRefresh(ctx context.Context, job refreshJob) {
	start := time.Now()
	outcome, errText := c.doRefresh(ctx, job)
	c.recordRefresh(job, start, outcome, errText)
}

// recordRefresh files one refresh job's flight record. A failed or
// panicking refresh is an anomaly to the recorder, so it also lands in the
// dump directory (record-only: the solver event stream of a background job
// is not captured).
func (c *Catalog) recordRefresh(job refreshJob, start time.Time, outcome, errText string) {
	if c.opt.Flight == nil {
		return
	}
	c.opt.Flight.Record(obs.FlightRecord{
		Kind:       "refresh",
		Route:      "catalog.refresh",
		Policy:     job.name,
		Shard:      job.shard.id,
		Version:    job.version,
		Outcome:    outcome,
		Err:        errText,
		Start:      start,
		DurationUS: time.Since(start).Microseconds(),
	})
}

// doRefresh is runRefresh's body; it reports how the job ended for the
// flight record ("stale", "failed", "completed", or "repaired").
func (c *Catalog) doRefresh(ctx context.Context, job refreshJob) (outcome, errText string) {
	s := job.shard
	// Bail before doing any solver work if the policy already moved past
	// this job's version — under a rapid mutation stream most queued
	// refreshes are stale by the time a worker picks them up, and
	// compiling them first would burn the cores the mutators need.
	s.mu.RLock()
	cur := s.pol[job.name]
	stale := cur != job.pol || cur.version != job.version
	s.mu.RUnlock()
	if stale {
		c.count("catalog.refresh.stale")
		return "stale", ""
	}
	if err := c.opt.Fault.Hit("catalog.compile"); err != nil {
		c.count("catalog.refresh.failures")
		c.bus.Publish(TopicRefreshed, RefreshEvent{Name: job.name, Version: job.version, Shard: s.id, Err: err.Error()})
		return "failed", err.Error()
	}
	compiled := job.set.Snapshot()
	c.count("catalog.compiles")

	var solved constraint.Assignment
	var stats core.Stats
	repaired := false
	if job.base != nil {
		seeded := job.base.Clone()
		for len(seeded) < job.set.NumAttrs() {
			seeded = append(seeded, job.lat.Bottom())
		}
		fixed, rstats, err := core.RepairContext(ctx, job.set, job.baseCount, seeded, core.RepairOptions{VerifyMinimal: true})
		if err == nil {
			repaired = true
			solved = fixed
			stats = rstats.Solve
			c.countRepair(rstats)
		}
		// A failed repair falls through to the cold solve: the mutation
		// was already validated solvable, so the answer exists.
	}
	if solved == nil {
		res, err := core.SolveContext(ctx, compiled, core.Options{
			Metrics: c.opt.Metrics,
			Fault:   c.opt.Fault,
		})
		if err != nil {
			c.count("catalog.refresh.failures")
			c.bus.Publish(TopicRefreshed, RefreshEvent{Name: job.name, Version: job.version, Shard: s.id, Err: err.Error()})
			return "failed", err.Error()
		}
		c.count("catalog.refresh.solves")
		solved = res.Assignment
		stats = res.Stats
	}

	s.mu.Lock()
	p := s.pol[job.name]
	if p != job.pol || p.version != job.version {
		s.mu.Unlock()
		c.count("catalog.refresh.stale")
		return "stale", ""
	}
	p.compiled = compiled
	p.solved = solved
	p.solvedStats = stats
	s.mu.Unlock()
	c.count("catalog.refresh.completed")
	c.bus.Publish(TopicRefreshed, RefreshEvent{Name: job.name, Version: job.version, Shard: s.id, Repaired: repaired})
	if repaired {
		return "repaired", ""
	}
	return "completed", ""
}

// Flush blocks until every refresh enqueued before the call has completed
// (or been dropped). Mutations racing the flush may enqueue more work; the
// returned state is "the pipeline was empty at some point after every
// prior mutation". Used by tests for determinism and by shutdown to drain.
func (c *Catalog) Flush(ctx context.Context) error {
	return c.pending.wait(ctx)
}

// pendingAdd moves the in-flight refresh count and its gauge.
func (c *Catalog) pendingAdd(d int) {
	n := c.pending.add(d)
	if c.opt.Metrics != nil {
		c.opt.Metrics.Gauge("catalog.refresh.pending").Set(int64(n))
	}
}

// pendingTracker counts in-flight refreshes and lets Flush wait for zero.
// Not a sync.WaitGroup: Add after Wait-at-zero is racy there, while here
// concurrent inc/dec/wait in any order are all well-defined.
type pendingTracker struct {
	mu      sync.Mutex
	n       int
	waiters []chan struct{}
}

func (t *pendingTracker) add(d int) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.n += d
	if t.n == 0 {
		for _, w := range t.waiters {
			close(w)
		}
		t.waiters = nil
	}
	return t.n
}

func (t *pendingTracker) wait(ctx context.Context) error {
	t.mu.Lock()
	if t.n == 0 {
		t.mu.Unlock()
		return nil
	}
	w := make(chan struct{})
	t.waiters = append(t.waiters, w)
	t.mu.Unlock()
	select {
	case <-w:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
