package catalog

import (
	"encoding/json"
	"errors"
	"fmt"

	"minup/internal/core"
)

// This file is the catalog's follower-apply surface: what the cluster
// replication layer (internal/cluster) needs to mirror a leader's per-shard
// WAL onto a replica. A follower applies each replicated record exactly the
// way the live mutation path does — durable store append first, in-memory
// install second, refresh pipeline warm-up third — so two catalogs that
// applied the same record sequence hold byte-identical WALs and equal
// Fingerprints. Lagging or new followers skip the record stream entirely
// and install a whole-shard snapshot (InstallShardSnapshot), the same bytes
// compaction writes to catalog-<i>.snap.

// ErrOutOfOrder reports a replicated record whose sequence number is not
// exactly the shard's next: a gap means the follower missed frames and must
// snapshot-resync; a duplicate means the frame was already applied.
var ErrOutOfOrder = errors.New("catalog: record out of sequence")

// Shards returns the catalog's shard count (pinned by the data directory's
// meta file for durable catalogs). Replication streams are per shard, so
// leader and follower counts must match.
func (c *Catalog) Shards() int { return len(c.shards) }

// ShardOf returns the shard index policy name hashes to.
func (c *Catalog) ShardOf(name string) int { return c.shardFor(name).id }

// ShardSeq returns shard i's last durably logged (or applied) sequence
// number.
func (c *Catalog) ShardSeq(i int) uint64 {
	s := c.shards[i]
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.seq
}

// ShardSeqs returns every shard's last sequence number, indexed by shard.
func (c *Catalog) ShardSeqs() []uint64 {
	out := make([]uint64, len(c.shards))
	for i := range c.shards {
		out[i] = c.ShardSeq(i)
	}
	return out
}

// ApplyRecord applies one replicated WAL record payload to shard shardID,
// returning the shard's sequence number afterwards. The payload must be the
// leader's exact record bytes (seq and all); it is validated, appended
// durably to the shard's own store, applied in memory, and handed to the
// refresh pipeline — the same WAL-first ordering as a live mutation, minus
// the precondition checks the leader already enforced. A record that is not
// exactly the shard's next sequence number returns ErrOutOfOrder and
// changes nothing.
func (c *Catalog) ApplyRecord(shardID int, payload []byte) (uint64, error) {
	if shardID < 0 || shardID >= len(c.shards) {
		return 0, fmt.Errorf("catalog: apply: no shard %d", shardID)
	}
	var rec walRecord
	if err := json.Unmarshal(payload, &rec); err != nil {
		return 0, fmt.Errorf("catalog: apply: decoding record: %w", err)
	}
	s := c.shards[shardID]

	var job refreshJob
	var ev MutationEvent
	var seq uint64
	err := func() error {
		s.mu.Lock()
		defer s.mu.Unlock()
		if s.closed {
			return ErrClosed
		}
		seq = s.seq
		if rec.Seq != s.seq+1 {
			return fmt.Errorf("%w: shard %d at seq %d got record seq %d", ErrOutOfOrder, shardID, s.seq, rec.Seq)
		}
		switch rec.Op {
		case "put":
			staged, err := buildPolicy(rec.Name, rec.Lattice, rec.Constraints)
			if err != nil {
				return fmt.Errorf("catalog: replicated put: %w", err)
			}
			if err := c.appendReplicated(s, rec.Seq, payload); err != nil {
				return err
			}
			staged.shard = s.id
			if old := s.pol[rec.Name]; old != nil {
				staged.version = old.version + 1
			} else {
				staged.version = 1
				c.policies.Add(1)
			}
			s.pol[rec.Name] = staged
			job = refreshJob{shard: s, pol: staged, name: rec.Name, version: staged.version, lat: staged.lat, set: staged.set}
			ev = MutationEvent{Op: "put", Name: rec.Name, Version: staged.version, Shard: s.id, Seq: rec.Seq}
		case "append":
			p := s.pol[rec.Name]
			if p == nil {
				return fmt.Errorf("catalog: replicated append: %w: %q", ErrNotFound, rec.Name)
			}
			ns := p.set.Clone()
			if err := ns.ParseString(rec.Constraints); err != nil {
				return fmt.Errorf("catalog: replicated append %q: %w", rec.Name, err)
			}
			base, baseCount := p.solved, len(p.set.Constraints())
			if err := c.appendReplicated(s, rec.Seq, payload); err != nil {
				return err
			}
			p.set = ns
			p.consTexts = append(p.consTexts, rec.Constraints)
			p.version++
			p.compiled = nil
			p.solved = nil
			p.solvedStats = core.Stats{}
			job = refreshJob{shard: s, pol: p, name: rec.Name, version: p.version, lat: p.lat, set: ns, base: base, baseCount: baseCount}
			ev = MutationEvent{Op: "append", Name: rec.Name, Version: p.version, Shard: s.id, Seq: rec.Seq}
		case "delete":
			if s.pol[rec.Name] == nil {
				return fmt.Errorf("catalog: replicated delete: %w: %q", ErrNotFound, rec.Name)
			}
			if err := c.appendReplicated(s, rec.Seq, payload); err != nil {
				return err
			}
			delete(s.pol, rec.Name)
			c.policies.Add(-1)
			ev = MutationEvent{Op: "delete", Name: rec.Name, Shard: s.id, Seq: rec.Seq}
		default:
			return fmt.Errorf("catalog: replicated record: unknown op %q", rec.Op)
		}
		seq = s.seq
		c.count("catalog.replica.applied")
		c.shardGauge(s)
		c.maybeCompact(s)
		return nil
	}()
	if err != nil {
		return seq, err
	}

	c.bus.Publish(TopicMutations, ev)
	if job.pol != nil {
		c.enqueueRefresh(job)
	}
	return seq, nil
}

// appendReplicated durably appends a replicated record and advances the
// shard's bookkeeping; called under the shard's write lock with the seq
// contiguity already checked.
func (c *Catalog) appendReplicated(s *shard, seq uint64, payload []byte) error {
	if err := s.store.Append(payload); err != nil {
		return fmt.Errorf("%w: %w", ErrStorage, err)
	}
	s.seq = seq
	s.sinceSnap++
	if c.opt.OnRecord != nil {
		c.opt.OnRecord(RecordEvent{Shard: s.id, Seq: seq, Payload: payload})
	}
	return nil
}

// ShardSnapshot serializes shard i's live state in the exact format of its
// compacted snapshot file (catalog-<i>.snap), plus the sequence number it
// covers — what a leader ships to a lagging or new follower.
func (c *Catalog) ShardSnapshot(i int) (data []byte, seq uint64, err error) {
	if i < 0 || i >= len(c.shards) {
		return nil, 0, fmt.Errorf("catalog: snapshot: no shard %d", i)
	}
	s := c.shards[i]
	s.mu.RLock()
	pols := make([]snapshotPolicy, 0, len(s.pol))
	for _, p := range s.pol {
		pols = append(pols, snapshotPolicyOf(p))
	}
	seq = s.seq
	s.mu.RUnlock()
	data, err = encodeSnapshot(seq, pols)
	return data, seq, err
}

// InstallShardSnapshot replaces shard i's entire state with a shipped
// snapshot: the data is fully decoded and validated first (a failure —
// ErrSnapshotCorrupt — leaves the shard untouched), then durably compacted
// into the shard's store and swapped into memory. Every installed policy is
// handed to the refresh pipeline so the replica's memoized solves re-warm.
func (c *Catalog) InstallShardSnapshot(i int, data []byte) error {
	if i < 0 || i >= len(c.shards) {
		return fmt.Errorf("catalog: install: no shard %d", i)
	}
	// Stage into a scratch shard: loadSnapshot validates and builds every
	// policy before the live shard is touched.
	tmp := &shard{id: i, pol: make(map[string]*policy)}
	if err := tmp.loadSnapshot(data); err != nil {
		c.count("catalog.snapshot_corrupt")
		return err
	}
	s := c.shards[i]
	var jobs []refreshJob
	err := func() error {
		s.mu.Lock()
		defer s.mu.Unlock()
		if s.closed {
			return ErrClosed
		}
		if err := s.store.Compact(data); err != nil {
			return fmt.Errorf("%w: %w", ErrStorage, err)
		}
		c.policies.Add(int64(len(tmp.pol) - len(s.pol)))
		s.pol = tmp.pol
		s.seq = tmp.seq
		s.snapSeq = tmp.snapSeq
		s.sinceSnap = 0
		for _, p := range s.pol {
			jobs = append(jobs, refreshJob{shard: s, pol: p, name: p.name, version: p.version, lat: p.lat, set: p.set})
		}
		c.count("catalog.snapshot_installs")
		c.shardGauge(s)
		return nil
	}()
	if err != nil {
		return err
	}
	for _, job := range jobs {
		c.enqueueRefresh(job)
	}
	return nil
}
