package catalog

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"minup/internal/fault"
	"minup/internal/wal"
	"minup/internal/workload"
)

// chaosStream is the fixed mutation sequence every crash-recovery scenario
// replays: long enough to mix puts, appends (with fresh attributes), and
// deletes, short enough that the quadratic "crash at every step" sweep
// stays cheap.
func chaosStream(t *testing.T) []workload.Mutation {
	t.Helper()
	muts, err := workload.MutationStream(workload.MutationSpec{
		Seed:             31,
		NumPolicies:      4,
		NumMutations:     12,
		PutFraction:      0.3,
		DeleteFraction:   0.15,
		AttrsPerPolicy:   6,
		ConsPerPut:       6,
		ConsPerAppend:    2,
		LevelRHSFraction: 0.4,
		NewAttrFraction:  0.2,
	})
	if err != nil {
		t.Fatal(err)
	}
	return muts
}

// applyMutation maps one generated mutation onto the catalog API.
func applyMutation(ctx context.Context, c *Catalog, m workload.Mutation) error {
	switch m.Op {
	case workload.OpPut:
		_, err := c.Put(ctx, m.Name, m.Lattice, m.Constraints, Unconditional)
		return err
	case workload.OpAppend:
		_, err := c.Append(ctx, m.Name, m.Constraints, Unconditional)
		return err
	case workload.OpDelete:
		return c.Delete(ctx, m.Name, Unconditional)
	}
	return fmt.Errorf("unknown op %v", m.Op)
}

// shadowFingerprint is the ground truth: the state of a memory-only
// catalog that applied exactly the first n mutations.
func shadowFingerprint(t *testing.T, muts []workload.Mutation, n int) []byte {
	t.Helper()
	ctx := context.Background()
	shadow := mustOpen(t, Options{})
	for _, m := range muts[:n] {
		if err := applyMutation(ctx, shadow, m); err != nil {
			t.Fatalf("shadow mutation failed: %v", err)
		}
	}
	return shadow.Fingerprint()
}

// TestCrashRecoveryProperty is the acceptance-criteria chaos test: for
// every mutation index k and both crash windows (before the WAL write,
// after the write but before the fsync), kill the catalog mid-mutation
// with a panic injection, reopen the directory, and assert the recovered
// state is byte-exactly the state of the mutations that reached the disk —
// k-1 of them when the crash preceded the write ("wal.append"), k when it
// followed it ("wal.fsync").
func TestCrashRecoveryProperty(t *testing.T) {
	muts := chaosStream(t)
	ctx := context.Background()
	for _, point := range []string{"wal.append", "wal.fsync"} {
		for k := 1; k <= len(muts); k++ {
			t.Run(fmt.Sprintf("%s/k=%d", point, k), func(t *testing.T) {
				dir := t.TempDir()
				inj := fault.New(1)
				inj.MustAdd(fault.Rule{Point: point, Act: fault.Panic, Nth: uint64(k)})
				c, err := Open(Options{Dir: dir, Sync: wal.SyncAlways, Fault: inj, SnapshotEvery: -1, Shards: 3})
				if err != nil {
					t.Fatal(err)
				}
				applied, crashed := 0, false
				for _, m := range muts {
					func() {
						defer func() {
							if r := recover(); r != nil {
								crashed = true
							}
						}()
						if err := applyMutation(ctx, c, m); err != nil {
							t.Fatalf("mutation %d failed without a crash: %v", applied, err)
						}
					}()
					if crashed {
						break
					}
					applied++
				}
				if !crashed {
					t.Fatalf("fault at %s #%d never fired (%d mutations)", point, k, applied)
				}
				c.Close() // the crashed process's handle; state is on disk

				// wal.append fires before the frame is written: the dying
				// mutation is lost. wal.fsync fires after: it survives.
				wantN := applied
				if point == "wal.fsync" {
					wantN = applied + 1
				}
				re, err := Open(Options{Dir: dir, Sync: wal.SyncAlways, SnapshotEvery: -1, Shards: 3})
				if err != nil {
					t.Fatalf("reopen after crash: %v", err)
				}
				defer re.Close()
				if ri := re.RecoveryInfo(); ri.WALRecords != wantN {
					t.Fatalf("recovered %d WAL records, want %d (%+v)", ri.WALRecords, wantN, ri)
				}
				want := shadowFingerprint(t, muts, wantN)
				if got := re.Fingerprint(); !bytes.Equal(got, want) {
					t.Fatalf("recovered state after crash at %s #%d differs from %d applied mutations:\n%s\nwant:\n%s",
						point, k, wantN, got, want)
				}
			})
		}
	}
}

// TestTornTailRecovery cuts the WAL at arbitrary byte offsets — torn final
// frame included — and asserts recovery always lands on the exact state of
// the fully persisted mutation prefix.
func TestTornTailRecovery(t *testing.T) {
	muts := chaosStream(t)
	ctx := context.Background()
	dir := t.TempDir()
	c, err := Open(Options{Dir: dir, Sync: wal.SyncNever, SnapshotEvery: -1, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i, m := range muts {
		if err := applyMutation(ctx, c, m); err != nil {
			t.Fatalf("mutation %d: %v", i, err)
		}
	}
	c.Close()
	full, err := os.ReadFile(filepath.Join(dir, "catalog-0.wal"))
	if err != nil {
		t.Fatal(err)
	}

	step := len(full)/17 + 1 // a spread of cut points incl. mid-frame ones
	for cut := 0; cut <= len(full); cut += step {
		t.Run(fmt.Sprintf("cut=%d", cut), func(t *testing.T) {
			cdir := t.TempDir()
			if err := os.WriteFile(filepath.Join(cdir, "catalog-0.wal"), full[:cut], 0o644); err != nil {
				t.Fatal(err)
			}
			re, err := Open(Options{Dir: cdir, Sync: wal.SyncNever, SnapshotEvery: -1, Shards: 1})
			if err != nil {
				t.Fatalf("reopen with cut WAL: %v", err)
			}
			defer re.Close()
			k := re.RecoveryInfo().WALRecords
			if cut > 0 && cut < len(full) && k > len(muts) {
				t.Fatalf("recovered %d records from a %d-mutation log", k, len(muts))
			}
			want := shadowFingerprint(t, muts, k)
			if got := re.Fingerprint(); !bytes.Equal(got, want) {
				t.Fatalf("cut %d: recovered state differs from %d-mutation prefix:\n%s\nwant:\n%s", cut, k, got, want)
			}
			// The reopened catalog must remain writable past the cut.
			if _, err := re.Put(ctx, "after-cut", testLattice, testCons, Unconditional); err != nil {
				t.Fatalf("cut %d: post-recovery Put: %v", cut, err)
			}
		})
	}
}

// TestShardCrashIsolation arms a panic fault on exactly one shard's store
// and asserts the blast radius stays inside that shard: sibling shards keep
// accepting mutations after the crash, the crashed shard itself recovers
// its lock and continues, and a reopen of the directory recovers every
// mutation that reached a store.
func TestShardCrashIsolation(t *testing.T) {
	const shards = 4
	ctx := context.Background()
	dir := t.TempDir()
	inj := fault.New(1)
	inj.MustAdd(fault.Rule{Point: "wal.append", Act: fault.Panic, Nth: 1})

	const poisoned = 0
	c, err := Open(Options{
		Shards:        shards,
		SnapshotEvery: -1,
		OpenStore: func(i int) (Store, error) {
			opt := wal.Options{Sync: wal.SyncAlways}
			if i == poisoned {
				opt.Fault = inj // only this shard's store can crash
			}
			return openWALStore(dir, i, opt), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Find one policy name per shard so the test can aim mutations.
	nameOn := make(map[int]string, shards)
	for i := 0; len(nameOn) < shards; i++ {
		n := fmt.Sprintf("n%03d", i)
		if s := c.shardFor(n); nameOn[s.id] == "" {
			nameOn[s.id] = n
		}
	}

	// The poisoned shard's first append panics mid-mutation.
	crashed := false
	func() {
		defer func() {
			if r := recover(); r != nil {
				crashed = true
			}
		}()
		c.Put(ctx, nameOn[poisoned], testLattice, testCons, MustNotExist)
	}()
	if !crashed {
		t.Fatal("fault on the poisoned shard never fired")
	}

	// Sibling shards are untouched: every mutation still lands.
	for id := 1; id < shards; id++ {
		if _, err := c.Put(ctx, nameOn[id], testLattice, testCons, MustNotExist, MutateOptions{Wait: true}); err != nil {
			t.Fatalf("sibling shard %d rejected a Put after the crash: %v", id, err)
		}
		if _, err := c.Append(ctx, nameOn[id], "rank >= TS\n", 1); err != nil {
			t.Fatalf("sibling shard %d rejected an Append after the crash: %v", id, err)
		}
	}
	// The poisoned shard released its lock on the way down (the fault was
	// one-shot), so it keeps working too.
	if _, err := c.Put(ctx, nameOn[poisoned], testLattice, testCons, Unconditional); err != nil {
		t.Fatalf("poisoned shard did not recover after its crash: %v", err)
	}
	mustFlush(t, c)
	want := c.Fingerprint()
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	// A reopen (default stores, no faults) recovers exactly the mutations
	// that reached a store: 3 sibling puts + 3 appends + the post-crash
	// put; the crashed put died before its frame was written.
	re, err := Open(Options{Dir: dir, SnapshotEvery: -1, Shards: shards})
	if err != nil {
		t.Fatalf("reopen after shard crash: %v", err)
	}
	defer re.Close()
	if ri := re.RecoveryInfo(); ri.WALRecords != 7 || ri.Shards != shards {
		t.Fatalf("RecoveryInfo = %+v, want 7 WAL records across %d shards", ri, shards)
	}
	if got := re.Fingerprint(); !bytes.Equal(got, want) {
		t.Fatalf("recovered state differs:\n%s\nwant:\n%s", got, want)
	}
	for id := 1; id < shards; id++ {
		info, err := re.Get(nameOn[id])
		if err != nil || info.Version != 2 {
			t.Fatalf("sibling policy %s = %+v, %v (want version 2)", nameOn[id], info, err)
		}
	}
}
