package catalog

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"minup/internal/wal"
)

// Store is the per-shard storage contract the catalog runs on: an opaque
// snapshot blob plus an ordered log of mutation records layered on top of
// it. The catalog owns all encoding (JSON records, deterministic snapshot
// bytes, sequence numbers); a Store only moves bytes.
//
// The contract, in the order the catalog exercises it:
//
//   - Load runs once, before any Append or Compact: it hands the caller the
//     most recent snapshot (if one exists) and then replays every log
//     record written after that snapshot, in append order. An error from
//     either callback aborts the load — a record the application cannot
//     absorb is corruption above the framing layer and must not be
//     silently dropped.
//   - Append durably adds one record to the log. When Append returns nil
//     the record will be seen by every future Load.
//   - Compact atomically replaces the snapshot with data and truncates the
//     log: afterwards Load yields exactly (data, no records). Readers must
//     never observe a half-written snapshot.
//   - Close releases the store's resources; only Load may revive it.
//
// walStore is the durable reference implementation (WAL + snapshot file);
// MemStore is the in-memory implementation for tests and memory-only
// catalogs. Implementations do not need to be safe for concurrent use: the
// owning shard serializes every call under its lock.
type Store interface {
	Load(snapshot func(data []byte) error, record func(rec []byte) error) (LoadStats, error)
	Append(rec []byte) error
	Compact(snapshot []byte) error
	Close() error
}

// LoadStats reports what Store.Load found.
type LoadStats struct {
	// HadSnapshot reports that a snapshot existed and was handed to the
	// snapshot callback; Records is the number of log records replayed.
	HadSnapshot bool
	Records     int
	// TornTail reports that the log ended in a torn frame that was cut.
	TornTail bool
}

// ---------------------------------------------------------------------------
// walStore: the durable WAL+snapshot implementation.

// walStore stores one shard's state as a snapshot file plus an append-only
// internal/wal log beside it. All durability machinery (CRC frames,
// torn-tail truncation, fsync policy, atomic snapshot replacement) lives in
// internal/wal; nothing above this type touches a file.
type walStore struct {
	walPath, snapPath string
	opt               wal.Options
	log               *wal.Log // nil until Load, and again after Close
}

// shardWALName / shardSnapName name shard i's files inside the data
// directory. The shard count itself is pinned by the directory's meta file,
// so these names are stable across restarts.
func shardWALName(i int) string  { return fmt.Sprintf("catalog-%d.wal", i) }
func shardSnapName(i int) string { return fmt.Sprintf("catalog-%d.snap", i) }

// openWALStore builds (but does not yet load) shard i's durable store under
// dir.
func openWALStore(dir string, i int, opt wal.Options) *walStore {
	return &walStore{
		walPath:  filepath.Join(dir, shardWALName(i)),
		snapPath: filepath.Join(dir, shardSnapName(i)),
		opt:      opt,
	}
}

func (w *walStore) Load(snapshot func([]byte) error, record func([]byte) error) (LoadStats, error) {
	var ls LoadStats
	data, err := os.ReadFile(w.snapPath)
	switch {
	case errors.Is(err, os.ErrNotExist):
	case err != nil:
		return ls, fmt.Errorf("catalog: reading snapshot %s: %w", w.snapPath, err)
	default:
		ls.HadSnapshot = true
		if err := snapshot(data); err != nil {
			return ls, err
		}
	}
	log, rs, err := wal.Open(w.walPath, w.opt, record)
	if err != nil {
		return ls, err
	}
	w.log = log
	ls.Records = rs.Records
	ls.TornTail = rs.Truncated
	return ls, nil
}

func (w *walStore) Append(rec []byte) error {
	if w.log == nil {
		return fmt.Errorf("wal store %s: %w", w.walPath, wal.ErrClosed)
	}
	return w.log.Append(rec)
}

func (w *walStore) Compact(snapshot []byte) error {
	if w.log == nil {
		return fmt.Errorf("wal store %s: %w", w.walPath, wal.ErrClosed)
	}
	if err := wal.WriteAtomic(w.snapPath, snapshot, w.opt.Sync == wal.SyncAlways); err != nil {
		return fmt.Errorf("catalog: writing snapshot: %w", err)
	}
	return w.log.Reset()
}

func (w *walStore) Close() error {
	if w.log == nil {
		return nil
	}
	err := w.log.Close()
	w.log = nil
	return err
}

// ---------------------------------------------------------------------------
// MemStore: the in-memory implementation.

// MemStore is an in-memory Store: the exact snapshot+log contract of the
// durable walStore with no files behind it. It backs memory-only catalogs
// (every shard gets its own) and lets tests exercise recovery, compaction,
// and crash-window logic without a disk: a MemStore survives Close, so
// handing the same instance to a reopened catalog replays its retained
// snapshot and records just as a data directory would.
//
// Unlike walStore it is internally locked, because tests legitimately share
// one instance between a "crashed" catalog and its successor.
type MemStore struct {
	mu       sync.Mutex
	snapshot []byte
	records  [][]byte
}

// NewMemStore creates an empty in-memory store.
func NewMemStore() *MemStore { return &MemStore{} }

func (m *MemStore) Load(snapshot func([]byte) error, record func([]byte) error) (LoadStats, error) {
	m.mu.Lock()
	snap := m.snapshot
	recs := append([][]byte(nil), m.records...)
	m.mu.Unlock()
	var ls LoadStats
	if snap != nil {
		ls.HadSnapshot = true
		if err := snapshot(snap); err != nil {
			return ls, err
		}
	}
	for _, rec := range recs {
		if err := record(rec); err != nil {
			return ls, fmt.Errorf("memstore: replaying record %d: %w", ls.Records, err)
		}
		ls.Records++
	}
	return ls, nil
}

func (m *MemStore) Append(rec []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.records = append(m.records, append([]byte(nil), rec...))
	return nil
}

func (m *MemStore) Compact(snapshot []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.snapshot = append([]byte(nil), snapshot...)
	m.records = nil
	return nil
}

// Close is a no-op: the retained state stays readable so a later Load can
// simulate a restart.
func (m *MemStore) Close() error { return nil }

// Records returns the number of log records currently retained (post the
// last compaction), for tests.
func (m *MemStore) Records() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.records)
}
