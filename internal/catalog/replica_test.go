package catalog

import (
	"bytes"
	"context"
	"errors"
	"testing"
)

// replicaPair opens a "leader" and a "follower" with the same pinned shard
// count, the leader's records captured through OnRecord.
func replicaPair(t *testing.T, shards int) (leader, follower *Catalog, records *[][2]interface{}) {
	t.Helper()
	recs := &[][2]interface{}{}
	leader = mustOpen(t, Options{Shards: shards, OnRecord: func(ev RecordEvent) {
		p := append([]byte(nil), ev.Payload...)
		*recs = append(*recs, [2]interface{}{ev.Shard, p})
	}})
	follower = mustOpen(t, Options{Shards: shards})
	return leader, follower, recs
}

// replay applies every captured leader record to the follower in order.
func replay(t *testing.T, follower *Catalog, recs [][2]interface{}) {
	t.Helper()
	for i, r := range recs {
		if _, err := follower.ApplyRecord(r[0].(int), r[1].([]byte)); err != nil {
			t.Fatalf("ApplyRecord %d: %v", i, err)
		}
	}
}

// TestApplyRecordConverges replays a leader's record stream (puts, appends,
// deletes) onto a follower and asserts fingerprint equality plus a warm,
// servable solve path on the follower.
func TestApplyRecordConverges(t *testing.T) {
	ctx := context.Background()
	leader, follower, recs := replicaPair(t, 2)

	if _, err := leader.Put(ctx, "hr", testLattice, testCons, MustNotExist); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if _, err := leader.Put(ctx, "eng", testLattice, testCons, MustNotExist); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if _, err := leader.Append(ctx, "hr", "attrs bonus\nbonus >= C\n", Unconditional); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if _, err := leader.Put(ctx, "tmp", testLattice, testCons, MustNotExist); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if err := leader.Delete(ctx, "tmp", Unconditional); err != nil {
		t.Fatalf("Delete: %v", err)
	}

	replay(t, follower, *recs)
	mustFlush(t, follower)

	if !bytes.Equal(leader.Fingerprint(), follower.Fingerprint()) {
		t.Fatalf("fingerprints diverge after replay")
	}
	if follower.Len() != 2 {
		t.Fatalf("follower has %d policies, want 2", follower.Len())
	}
	res, err := follower.Solve(ctx, "hr")
	if err != nil {
		t.Fatalf("follower Solve: %v", err)
	}
	if !res.CacheHit {
		t.Fatalf("follower solve was not served from the warmed cache")
	}
	if res.Info.Version != 2 {
		t.Fatalf("follower hr at version %d, want 2", res.Info.Version)
	}
}

// TestApplyRecordOutOfOrder: a gap or duplicate must change nothing and
// report ErrOutOfOrder.
func TestApplyRecordOutOfOrder(t *testing.T) {
	ctx := context.Background()
	leader, follower, recs := replicaPair(t, 1)
	for _, name := range []string{"a", "b", "c"} {
		if _, err := leader.Put(ctx, name, testLattice, testCons, MustNotExist); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	all := *recs
	// Gap: skip the first record.
	if _, err := follower.ApplyRecord(all[1][0].(int), all[1][1].([]byte)); !errors.Is(err, ErrOutOfOrder) {
		t.Fatalf("gap apply: got %v, want ErrOutOfOrder", err)
	}
	replay(t, follower, all)
	// Duplicate: replay the last record again.
	last := all[len(all)-1]
	if _, err := follower.ApplyRecord(last[0].(int), last[1].([]byte)); !errors.Is(err, ErrOutOfOrder) {
		t.Fatalf("duplicate apply: got %v, want ErrOutOfOrder", err)
	}
	if !bytes.Equal(leader.Fingerprint(), follower.Fingerprint()) {
		t.Fatalf("fingerprints diverge")
	}
}

// TestShardSnapshotInstall ships a live-shard snapshot to an empty follower
// and asserts the follower converges with the right seq and warm caches.
func TestShardSnapshotInstall(t *testing.T) {
	ctx := context.Background()
	leader := mustOpen(t, Options{Shards: 1})
	follower := mustOpen(t, Options{Shards: 1})
	for _, name := range []string{"a", "b"} {
		if _, err := leader.Put(ctx, name, testLattice, testCons, MustNotExist); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	data, seq, err := leader.ShardSnapshot(0)
	if err != nil {
		t.Fatalf("ShardSnapshot: %v", err)
	}
	if seq != 2 {
		t.Fatalf("snapshot covers seq %d, want 2", seq)
	}
	if err := follower.InstallShardSnapshot(0, data); err != nil {
		t.Fatalf("InstallShardSnapshot: %v", err)
	}
	mustFlush(t, follower)
	if got := follower.ShardSeq(0); got != seq {
		t.Fatalf("follower seq %d, want %d", got, seq)
	}
	if !bytes.Equal(leader.Fingerprint(), follower.Fingerprint()) {
		t.Fatalf("fingerprints diverge after snapshot install")
	}
	res, err := follower.Solve(ctx, "a")
	if err != nil || !res.CacheHit {
		t.Fatalf("follower solve after install: err=%v hit=%v", err, res.CacheHit)
	}
	// Replacing a populated shard must adjust the policy count, not leak it.
	empty, _, err := mustOpen(t, Options{Shards: 1}).ShardSnapshot(0)
	if err != nil {
		t.Fatalf("empty ShardSnapshot: %v", err)
	}
	if err := follower.InstallShardSnapshot(0, empty); err != nil {
		t.Fatalf("install empty snapshot: %v", err)
	}
	if follower.Len() != 0 {
		t.Fatalf("follower has %d policies after empty install, want 0", follower.Len())
	}
}

// TestInstallShardSnapshotCorrupt extends the ErrSnapshotCorrupt matrix to
// shipped snapshots: undecodable JSON, truncated bytes, and a semantically
// broken policy must all refuse the install and leave the shard untouched.
func TestInstallShardSnapshotCorrupt(t *testing.T) {
	ctx := context.Background()
	leader := mustOpen(t, Options{Shards: 1})
	follower := mustOpen(t, Options{Shards: 1})
	if _, err := leader.Put(ctx, "keep", testLattice, testCons, MustNotExist); err != nil {
		t.Fatalf("Put: %v", err)
	}
	good, _, err := leader.ShardSnapshot(0)
	if err != nil {
		t.Fatalf("ShardSnapshot: %v", err)
	}
	if err := follower.InstallShardSnapshot(0, good); err != nil {
		t.Fatalf("install good snapshot: %v", err)
	}
	before := follower.Fingerprint()

	cases := map[string][]byte{
		"not json":      []byte("{{{"),
		"truncated":     good[:len(good)/2],
		"empty cons":    []byte(`{"last_seq":9,"policies":[{"name":"x","version":1,"lattice":"chain m\nlevels A B\n","constraints":[]}]}`),
		"bad lattice":   []byte(`{"last_seq":9,"policies":[{"name":"x","version":1,"lattice":"nonsense","constraints":["attrs a\na >= a\n"]}]}`),
		"bad constrain": []byte(`{"last_seq":9,"policies":[{"name":"x","version":1,"lattice":"chain m\nlevels A B\n","constraints":["@@@"]}]}`),
	}
	for label, data := range cases {
		if err := follower.InstallShardSnapshot(0, data); !errors.Is(err, ErrSnapshotCorrupt) {
			t.Fatalf("%s: got %v, want ErrSnapshotCorrupt", label, err)
		}
		if !bytes.Equal(follower.Fingerprint(), before) {
			t.Fatalf("%s: corrupt install mutated the shard", label)
		}
		if got := follower.ShardSeq(0); got != 1 {
			t.Fatalf("%s: shard seq moved to %d", label, got)
		}
	}
}

// TestSeqOutReportsSequence: SeqOut must receive the shard-local sequence
// number for put, append, and delete.
func TestSeqOutReportsSequence(t *testing.T) {
	ctx := context.Background()
	c := mustOpen(t, Options{Shards: 1})
	var seq uint64
	if _, err := c.Put(ctx, "p", testLattice, testCons, MustNotExist, MutateOptions{SeqOut: &seq}); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if seq != 1 {
		t.Fatalf("put seq %d, want 1", seq)
	}
	if _, err := c.Append(ctx, "p", "attrs extra\nextra >= C\n", Unconditional, MutateOptions{SeqOut: &seq}); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if seq != 2 {
		t.Fatalf("append seq %d, want 2", seq)
	}
	if err := c.Delete(ctx, "p", Unconditional, MutateOptions{SeqOut: &seq}); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if seq != 3 {
		t.Fatalf("delete seq %d, want 3", seq)
	}
	if got := c.ShardSeq(0); got != 3 {
		t.Fatalf("ShardSeq %d, want 3", got)
	}
}
