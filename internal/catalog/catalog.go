// Package catalog is the durable multi-tenant policy store behind minupd's
// /policies API: named, monotonically versioned policies (a security
// lattice plus a classification-constraint set), compiled once per version
// into the existing constraint.Compiled snapshot and served from a
// memoized solve cache.
//
// The catalog converts the stack from stateless to stateful, so its two
// jobs are caching and durability:
//
//   - Caching. Every policy lazily compiles one constraint.Compiled
//     snapshot per version and memoizes the minimal solution computed
//     against it. Serving an unchanged policy performs zero compiles and
//     zero solves ("catalog.cache_hits"); the first solve of a version is
//     the only cold one ("solve.cold"). Appending constraints goes through
//     core.RepairContext seeded with the memoized solution, so the new
//     version's answer is recomputed incrementally rather than from
//     scratch — and is itself memoized, keeping the cache warm across
//     policy refinement.
//
//   - Durability. With a data directory configured, every mutation is
//     written to an append-only WAL (internal/wal: length+CRC32 frames,
//     fsync policy knob) *before* it is applied in memory, and the WAL is
//     periodically compacted into an atomically replaced snapshot file.
//     Reopening the directory replays snapshot + WAL and yields exactly
//     the state produced by the mutations that reached the disk; a torn
//     final frame is truncated, losing at most the one mutation whose
//     append was interrupted. Sequence numbers make snapshot + WAL replay
//     immune to the crash window between "snapshot written" and "WAL
//     reset".
//
// Concurrency: one catalog-wide mutex serializes mutations and cache
// fills, which is what gives optimistic concurrency its linear version
// history (every successful mutation observes the version its If-Match
// precondition named). Cache-hit reads still take the same mutex; they
// hold it only long enough to copy the memoized answer.
package catalog

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"sync"

	"minup/internal/constraint"
	"minup/internal/core"
	"minup/internal/fault"
	"minup/internal/lattice"
	"minup/internal/obs"
	"minup/internal/wal"
)

// Typed errors. Match with errors.Is; the HTTP layer maps them to 404, 409,
// and 412.
var (
	// ErrNotFound reports a name with no policy behind it.
	ErrNotFound = errors.New("catalog: policy not found")
	// ErrExists reports a create-only Put (If-None-Match: *) against an
	// existing policy.
	ErrExists = errors.New("catalog: policy already exists")
	// ErrVersionMismatch reports a failed optimistic-concurrency
	// precondition: the caller's expected version is not the current one.
	ErrVersionMismatch = errors.New("catalog: version precondition failed")
	// ErrStorage marks a WAL write failure: the mutation was valid but
	// could not be made durable, and was therefore not applied. The HTTP
	// layer maps it to 500 instead of the 4xx a validation failure gets.
	ErrStorage = errors.New("catalog: storage failure")
)

// Unconditional is the ifVersion value for mutations without an
// optimistic-concurrency precondition.
const Unconditional int64 = -1

// MustNotExist is the ifVersion value for create-only Puts.
const MustNotExist int64 = 0

// Options configures a catalog.
type Options struct {
	// Dir is the data directory for the WAL and snapshot files. Empty
	// means memory-only: no durability, everything else identical.
	Dir string
	// Sync is the WAL fsync policy (wal.SyncAlways by default).
	Sync wal.SyncPolicy
	// Metrics, when non-nil, receives the catalog.* and wal.* series.
	Metrics *obs.Registry
	// Fault, when non-nil, arms the "catalog.compile", "wal.append", and
	// "wal.fsync" fault points for chaos testing.
	Fault *fault.Injector
	// SnapshotEvery compacts the WAL into a snapshot after this many
	// records (0 uses the default of 256; negative disables compaction).
	SnapshotEvery int
}

const defaultSnapshotEvery = 256

// RecoveryInfo reports what Open reconstructed from the data directory.
type RecoveryInfo struct {
	// SnapshotPolicies is the number of policies loaded from the snapshot
	// file; WALRecords the number of live WAL records replayed on top.
	SnapshotPolicies, WALRecords int
	// TornTail reports that the WAL ended in a torn frame that was cut.
	TornTail bool
	// Duration is the wall time of the whole recovery.
	Duration time.Duration
}

// policy is one named catalog entry. All fields are guarded by the
// catalog's mutex.
type policy struct {
	name        string
	version     uint64
	latticeText string
	consTexts   []string // the Put text followed by each appended batch
	lat         lattice.Lattice
	set         *constraint.Set
	// compiled is the one snapshot of the current version, built lazily;
	// solved memoizes the minimal solution (and its stats) for the current
	// version. Both are dropped on every mutation.
	compiled    *constraint.Compiled
	solved      constraint.Assignment
	solvedStats core.Stats
}

// Catalog is the policy store. Construct with Open; safe for concurrent
// use.
type Catalog struct {
	mu        sync.Mutex
	opt       Options
	log       *wal.Log // nil when memory-only
	pol       map[string]*policy
	seq       uint64 // last sequence number written to (or restored from) disk
	snapSeq   uint64 // sequence number the snapshot file covers
	sinceSnap int
	recovery  RecoveryInfo
}

// walRecord is the JSON payload of one WAL frame.
type walRecord struct {
	Seq         uint64 `json:"seq"`
	Op          string `json:"op"` // "put" | "append" | "delete"
	Name        string `json:"name"`
	Lattice     string `json:"lattice,omitempty"`
	Constraints string `json:"constraints,omitempty"`
}

// snapshotFile is the JSON shape of the compacted snapshot.
type snapshotFile struct {
	LastSeq  uint64           `json:"last_seq"`
	Policies []snapshotPolicy `json:"policies"`
}

type snapshotPolicy struct {
	Name        string   `json:"name"`
	Version     uint64   `json:"version"`
	Lattice     string   `json:"lattice"`
	Constraints []string `json:"constraints"`
}

// Open creates a catalog. With Options.Dir set it recovers the persisted
// state: the snapshot file (if any) is loaded, then every WAL record past
// the snapshot's sequence number is replayed, and a torn final frame is
// truncated. Reopening a directory therefore always yields exactly the
// state of the mutations that reached the disk.
func Open(opt Options) (*Catalog, error) {
	if opt.SnapshotEvery == 0 {
		opt.SnapshotEvery = defaultSnapshotEvery
	}
	c := &Catalog{opt: opt, pol: make(map[string]*policy)}
	if opt.Dir == "" {
		return c, nil
	}
	start := time.Now()
	if err := os.MkdirAll(opt.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("catalog: %w", err)
	}
	if err := c.loadSnapshot(); err != nil {
		return nil, err
	}
	log, rs, err := wal.Open(filepath.Join(opt.Dir, "catalog.wal"), wal.Options{
		Sync:    opt.Sync,
		Metrics: opt.Metrics,
		Fault:   opt.Fault,
	}, c.replayRecord)
	if err != nil {
		return nil, err
	}
	c.log = log
	c.recovery.TornTail = rs.Truncated
	c.recovery.Duration = time.Since(start)
	c.sinceSnap = c.recovery.WALRecords
	c.setGauges()
	if opt.SnapshotEvery > 0 && c.sinceSnap >= opt.SnapshotEvery {
		if err := c.compactLocked(); err != nil {
			c.log.Close()
			return nil, err
		}
	}
	return c, nil
}

func (c *Catalog) loadSnapshot() error {
	data, err := os.ReadFile(filepath.Join(c.opt.Dir, "catalog.snap"))
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("catalog: reading snapshot: %w", err)
	}
	var snap snapshotFile
	if err := json.Unmarshal(data, &snap); err != nil {
		return fmt.Errorf("catalog: decoding snapshot: %w", err)
	}
	for _, sp := range snap.Policies {
		if len(sp.Constraints) == 0 {
			return fmt.Errorf("catalog: snapshot policy %q has no constraint text", sp.Name)
		}
		if err := c.applyPut(sp.Name, sp.Lattice, sp.Constraints[0]); err != nil {
			return fmt.Errorf("catalog: snapshot policy %q: %w", sp.Name, err)
		}
		for _, batch := range sp.Constraints[1:] {
			if err := c.applyAppend(sp.Name, batch); err != nil {
				return fmt.Errorf("catalog: snapshot policy %q: %w", sp.Name, err)
			}
		}
		c.pol[sp.Name].version = sp.Version
	}
	c.seq = snap.LastSeq
	c.snapSeq = snap.LastSeq
	c.recovery.SnapshotPolicies = len(snap.Policies)
	return nil
}

// replayRecord applies one WAL frame during Open. Records at or below the
// snapshot's sequence number are the crash window between "snapshot
// written" and "WAL reset"; they are already reflected in the snapshot and
// are skipped.
func (c *Catalog) replayRecord(payload []byte) error {
	var rec walRecord
	if err := json.Unmarshal(payload, &rec); err != nil {
		return fmt.Errorf("catalog: decoding WAL record: %w", err)
	}
	if rec.Seq <= c.snapSeq {
		return nil
	}
	var err error
	switch rec.Op {
	case "put":
		err = c.applyPut(rec.Name, rec.Lattice, rec.Constraints)
	case "append":
		err = c.applyAppend(rec.Name, rec.Constraints)
	case "delete":
		err = c.applyDelete(rec.Name)
	default:
		err = fmt.Errorf("unknown op %q", rec.Op)
	}
	if err != nil {
		return fmt.Errorf("catalog: WAL record seq %d (%s %q): %w", rec.Seq, rec.Op, rec.Name, err)
	}
	c.seq = rec.Seq
	c.recovery.WALRecords++
	return nil
}

// RecoveryInfo reports what Open reconstructed. Zero for memory-only
// catalogs.
func (c *Catalog) RecoveryInfo() RecoveryInfo { return c.recovery }

// Close releases the WAL file handle. In-flight state is already durable
// (every mutation is WAL-first), so Close has nothing to flush.
func (c *Catalog) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.log == nil {
		return nil
	}
	err := c.log.Close()
	c.log = nil
	return err
}

// ---------------------------------------------------------------------------
// In-memory apply functions: the side of a mutation shared by the live path
// and recovery replay. They validate, parse, and swap state, but never
// touch the WAL, never solve, and never check preconditions (a record in
// the WAL already passed them).

func validName(name string) error {
	if name == "" || len(name) > 128 {
		return fmt.Errorf("catalog: policy name must be 1..128 characters")
	}
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '_', r == '-':
		default:
			return fmt.Errorf("catalog: policy name %q may only contain [A-Za-z0-9._-]", name)
		}
	}
	if name == "." || name == ".." {
		return fmt.Errorf("catalog: policy name %q is reserved", name)
	}
	return nil
}

// buildPolicy parses lattice and constraint text into a fresh policy value
// (version unset).
func buildPolicy(name, latticeText, constraintsText string) (*policy, error) {
	if err := validName(name); err != nil {
		return nil, err
	}
	lat, err := lattice.Parse(strings.NewReader(latticeText))
	if err != nil {
		return nil, fmt.Errorf("catalog: policy %q lattice: %w", name, err)
	}
	set := constraint.NewSet(lat)
	if err := set.ParseString(constraintsText); err != nil {
		return nil, fmt.Errorf("catalog: policy %q constraints: %w", name, err)
	}
	return &policy{
		name:        name,
		latticeText: latticeText,
		consTexts:   []string{constraintsText},
		lat:         lat,
		set:         set,
	}, nil
}

func (c *Catalog) applyPut(name, latticeText, constraintsText string) error {
	p, err := buildPolicy(name, latticeText, constraintsText)
	if err != nil {
		return err
	}
	if old := c.pol[name]; old != nil {
		p.version = old.version + 1
	} else {
		p.version = 1
	}
	c.pol[name] = p
	return nil
}

func (c *Catalog) applyAppend(name, constraintsText string) error {
	p := c.pol[name]
	if p == nil {
		return ErrNotFound
	}
	ns := p.set.Clone()
	if err := ns.ParseString(constraintsText); err != nil {
		return fmt.Errorf("catalog: policy %q append: %w", name, err)
	}
	p.set = ns
	p.consTexts = append(p.consTexts, constraintsText)
	p.version++
	p.compiled = nil
	p.solved = nil
	p.solvedStats = core.Stats{}
	return nil
}

func (c *Catalog) applyDelete(name string) error {
	if c.pol[name] == nil {
		return ErrNotFound
	}
	delete(c.pol, name)
	return nil
}

// ---------------------------------------------------------------------------
// Durability helpers.

// logRecord writes one WAL frame (no-op when memory-only). Write-ahead
// ordering: the caller applies the mutation in memory only after logRecord
// returns nil, so a crash at any point leaves memory ⊆ disk, never ahead
// of it.
func (c *Catalog) logRecord(rec walRecord) error {
	if c.log == nil {
		return nil
	}
	rec.Seq = c.seq + 1
	payload, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("catalog: encoding WAL record: %w", err)
	}
	if err := c.log.Append(payload); err != nil {
		return fmt.Errorf("%w: %w", ErrStorage, err)
	}
	c.seq = rec.Seq
	c.sinceSnap++
	return nil
}

// maybeCompact snapshots and resets the WAL when it has grown past the
// compaction threshold. Compaction failures are counted but do not fail
// the mutation that triggered them — the WAL alone is still a complete,
// durable history, and the next mutation retries the compaction.
func (c *Catalog) maybeCompact() {
	if c.log == nil || c.opt.SnapshotEvery <= 0 || c.sinceSnap < c.opt.SnapshotEvery {
		return
	}
	if err := c.compactLocked(); err != nil {
		c.count("catalog.compaction_errors")
	}
}

// compactLocked writes the full catalog state to the snapshot file
// (atomically: temp file + rename) and then resets the WAL. The snapshot
// records the sequence number it covers, so a crash between the two steps
// merely replays WAL records the snapshot already contains — replay skips
// them by sequence number.
func (c *Catalog) compactLocked() error {
	data, err := c.encodeSnapshot()
	if err != nil {
		return err
	}
	if err := wal.WriteAtomic(filepath.Join(c.opt.Dir, "catalog.snap"), data, c.opt.Sync == wal.SyncAlways); err != nil {
		return fmt.Errorf("catalog: writing snapshot: %w", err)
	}
	c.snapSeq = c.seq
	if err := c.log.Reset(); err != nil {
		return err
	}
	c.sinceSnap = 0
	c.count("catalog.snapshots")
	return nil
}

// encodeSnapshot serializes the catalog state deterministically: policies
// sorted by name, stable JSON field order, trailing newline.
func (c *Catalog) encodeSnapshot() ([]byte, error) {
	snap := snapshotFile{LastSeq: c.seq, Policies: make([]snapshotPolicy, 0, len(c.pol))}
	names := make([]string, 0, len(c.pol))
	for name := range c.pol {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		p := c.pol[name]
		snap.Policies = append(snap.Policies, snapshotPolicy{
			Name:        p.name,
			Version:     p.version,
			Lattice:     p.latticeText,
			Constraints: append([]string(nil), p.consTexts...),
		})
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("catalog: encoding snapshot: %w", err)
	}
	return append(data, '\n'), nil
}

// Fingerprint returns a deterministic serialization of the full catalog
// state (names, versions, lattice and constraint text, sorted). Two
// catalogs with equal fingerprints hold byte-identical policy state — the
// equality the crash-recovery chaos tests assert. The WAL sequence number
// is deliberately excluded: it describes the history's framing, not the
// state.
func (c *Catalog) Fingerprint() []byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	seq := c.seq
	c.seq = 0
	data, err := c.encodeSnapshot()
	c.seq = seq
	if err != nil {
		panic(err) // marshal of plain strings cannot fail
	}
	return data
}

// ---------------------------------------------------------------------------
// Metrics helpers.

func (c *Catalog) count(name string) {
	if c.opt.Metrics != nil {
		c.opt.Metrics.Counter(name).Inc()
	}
}

func (c *Catalog) setGauges() {
	if c.opt.Metrics != nil {
		c.opt.Metrics.Gauge("catalog.policies").Set(int64(len(c.pol)))
	}
}

// ---------------------------------------------------------------------------
// Public mutation and query API.

// PolicyInfo is the externally visible description of one policy version.
type PolicyInfo struct {
	Name        string `json:"name"`
	Version     uint64 `json:"version"`
	Attrs       int    `json:"attrs"`
	Constraints int    `json:"constraints"`
	UpperBounds int    `json:"upper_bounds"`
	// Lattice and ConstraintText are the policy's source texts; the
	// constraint text is the Put batch followed by every appended batch.
	Lattice        string `json:"lattice,omitempty"`
	ConstraintText string `json:"constraints_text,omitempty"`
}

func (p *policy) info() PolicyInfo {
	return PolicyInfo{
		Name:           p.name,
		Version:        p.version,
		Attrs:          p.set.NumAttrs(),
		Constraints:    len(p.set.Constraints()),
		UpperBounds:    len(p.set.UpperBounds()),
		Lattice:        p.latticeText,
		ConstraintText: strings.Join(p.consTexts, "\n"),
	}
}

// checkVersion enforces the optimistic-concurrency precondition against
// the current state of name. ifVersion: Unconditional (-1) accepts any
// state; MustNotExist (0) requires absence; a positive value requires the
// policy to exist at exactly that version.
func (c *Catalog) checkVersion(name string, ifVersion int64, mustExist bool) error {
	p := c.pol[name]
	switch {
	case ifVersion == Unconditional:
		if p == nil && mustExist {
			return fmt.Errorf("%w: %q", ErrNotFound, name)
		}
	case ifVersion == MustNotExist:
		if p != nil {
			return fmt.Errorf("%w: %q is at version %d", ErrExists, name, p.version)
		}
	default:
		if p == nil {
			return fmt.Errorf("%w: %q", ErrNotFound, name)
		}
		if p.version != uint64(ifVersion) {
			return fmt.Errorf("%w: %q is at version %d, precondition %d",
				ErrVersionMismatch, name, p.version, ifVersion)
		}
	}
	return nil
}

// Put creates or replaces a policy from lattice and constraint text,
// validating both (including §6 solvability) before anything is persisted.
// ifVersion carries the optimistic-concurrency precondition (Unconditional,
// MustNotExist, or an exact current version). A created policy starts at
// version 1; a replaced one continues its predecessor's version sequence,
// so ETags never repeat within a name's lifetime.
func (c *Catalog) Put(ctx context.Context, name, latticeText, constraintsText string, ifVersion int64) (PolicyInfo, error) {
	staged, err := buildPolicy(name, latticeText, constraintsText)
	if err != nil {
		return PolicyInfo{}, err
	}
	if err := core.CheckSolvable(staged.set); err != nil {
		return PolicyInfo{}, fmt.Errorf("catalog: policy %q is unsolvable: %w", name, err)
	}
	if err := ctx.Err(); err != nil {
		return PolicyInfo{}, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.checkVersion(name, ifVersion, false); err != nil {
		return PolicyInfo{}, err
	}
	if err := c.logRecord(walRecord{Op: "put", Name: name, Lattice: latticeText, Constraints: constraintsText}); err != nil {
		return PolicyInfo{}, err
	}
	if old := c.pol[name]; old != nil {
		staged.version = old.version + 1
	} else {
		staged.version = 1
	}
	c.pol[name] = staged
	c.count("catalog.puts")
	c.setGauges()
	c.maybeCompact()
	return staged.info(), nil
}

// AppendResult reports what an Append did beyond the new PolicyInfo.
type AppendResult struct {
	Info PolicyInfo
	// Repaired is true when the memoized solution was extended
	// incrementally via core.RepairContext (i.e. the cache was warm); the
	// new solution is memoized either way it was computed.
	Repaired bool
	// Repair carries the repair's work counts when Repaired.
	Repair core.RepairStats
}

// Append parses additional constraint text into the policy, going through
// core.RepairContext instead of a cold solve whenever a memoized solution
// exists: only the attributes the new constraints can force upward are
// recomputed, and the repaired solution becomes the new version's memoized
// answer. The staged set is swapped in only after the parse, the
// solvability check, and the repair all succeed — a failed append leaves
// the policy untouched. ifVersion as in Put (MustNotExist is an error
// here).
func (c *Catalog) Append(ctx context.Context, name, constraintsText string, ifVersion int64) (AppendResult, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if ifVersion == MustNotExist {
		return AppendResult{}, fmt.Errorf("%w: append requires an existing policy", ErrVersionMismatch)
	}
	if err := c.checkVersion(name, ifVersion, true); err != nil {
		return AppendResult{}, err
	}
	p := c.pol[name]
	ns := p.set.Clone()
	baseCount := len(ns.Constraints())
	if err := ns.ParseString(constraintsText); err != nil {
		return AppendResult{}, fmt.Errorf("catalog: policy %q append: %w", name, err)
	}

	res := AppendResult{}
	var solved constraint.Assignment
	var solvedStats core.Stats
	if p.solved != nil {
		// Incremental path: extend the memoized solution. Attributes the
		// appended text introduced start at ⊥ — they carry no history, and
		// the repair raises them exactly as far as the new constraints
		// force.
		base := p.solved.Clone()
		for len(base) < ns.NumAttrs() {
			base = append(base, p.lat.Bottom())
		}
		repaired, rstats, err := core.RepairContext(ctx, ns, baseCount, base, core.RepairOptions{VerifyMinimal: true})
		if err != nil {
			return AppendResult{}, fmt.Errorf("catalog: policy %q append rejected: %w", name, err)
		}
		res.Repaired = true
		res.Repair = *rstats
		solved = repaired
		solvedStats = rstats.Solve
		c.count("catalog.repairs")
		if rstats.FellBack {
			c.count("catalog.repair_fallbacks")
		}
		if c.opt.Metrics != nil {
			c.opt.Metrics.Histogram("catalog.repair.duration_us", obs.DurationBucketsUS).
				Observe(uint64(rstats.Duration.Microseconds()))
		}
	} else if err := core.CheckSolvable(ns); err != nil {
		// Cold cache: no base to repair from, but the append must still be
		// rejected if it makes the policy unsolvable.
		return AppendResult{}, fmt.Errorf("catalog: policy %q append rejected: %w", name, err)
	}

	if err := c.logRecord(walRecord{Op: "append", Name: name, Constraints: constraintsText}); err != nil {
		return AppendResult{}, err
	}
	p.set = ns
	p.consTexts = append(p.consTexts, constraintsText)
	p.version++
	p.compiled = nil
	p.solved = solved
	p.solvedStats = solvedStats
	res.Info = p.info()
	c.maybeCompact()
	return res, nil
}

// Delete removes a policy. ifVersion as in Put (MustNotExist is an error).
func (c *Catalog) Delete(ctx context.Context, name string, ifVersion int64) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if ifVersion == MustNotExist {
		return fmt.Errorf("%w: delete requires an existing policy", ErrVersionMismatch)
	}
	if err := c.checkVersion(name, ifVersion, true); err != nil {
		return err
	}
	if err := c.logRecord(walRecord{Op: "delete", Name: name}); err != nil {
		return err
	}
	delete(c.pol, name)
	c.count("catalog.deletes")
	c.setGauges()
	c.maybeCompact()
	return nil
}

// Get returns the policy's current description, or ErrNotFound.
func (c *Catalog) Get(name string) (PolicyInfo, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	p := c.pol[name]
	if p == nil {
		return PolicyInfo{}, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	return p.info(), nil
}

// List returns every policy's description (without the source texts),
// sorted by name.
func (c *Catalog) List() []PolicyInfo {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]PolicyInfo, 0, len(c.pol))
	for _, p := range c.pol {
		info := p.info()
		info.Lattice, info.ConstraintText = "", ""
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Len returns the number of policies.
func (c *Catalog) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.pol)
}

// SolveResult is the answer of Catalog.Solve.
type SolveResult struct {
	Info PolicyInfo
	// Assignment maps attribute names to formatted level names.
	Assignment map[string]string
	// Stats are the operation counts of the solve that produced the
	// memoized answer (a cache hit returns the original solve's stats).
	Stats core.Stats
	// CacheHit reports that the answer came from the memoized cache: zero
	// compiles and zero solves were performed by this call.
	CacheHit bool
}

// Solve returns the minimal classification for the policy's current
// version. Unchanged policies are served from the memoized cache
// ("catalog.cache_hits") with no compile and no solve; the first solve of
// a version compiles the snapshot (at most once per version,
// "catalog.compiles", fault point "catalog.compile") and runs one cold
// solve ("solve.cold", "catalog.cache_misses"), then memoizes.
func (c *Catalog) Solve(ctx context.Context, name string) (SolveResult, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	p := c.pol[name]
	if p == nil {
		return SolveResult{}, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	if p.solved != nil {
		c.count("catalog.cache_hits")
		return c.solveResult(p, true), nil
	}
	c.count("catalog.cache_misses")
	if p.compiled == nil {
		if err := c.opt.Fault.Hit("catalog.compile"); err != nil {
			return SolveResult{}, fmt.Errorf("catalog: compiling %q: %w", name, err)
		}
		p.compiled = p.set.Snapshot()
		c.count("catalog.compiles")
	}
	c.count("solve.cold")
	res, err := core.SolveContext(ctx, p.compiled, core.Options{
		Metrics: c.opt.Metrics,
		Fault:   c.opt.Fault,
	})
	if err != nil {
		return SolveResult{}, err
	}
	p.solved = res.Assignment
	p.solvedStats = res.Stats
	return c.solveResult(p, false), nil
}

func (c *Catalog) solveResult(p *policy, hit bool) SolveResult {
	out := SolveResult{
		Info:       p.info(),
		Assignment: make(map[string]string, p.set.NumAttrs()),
		Stats:      p.solvedStats,
		CacheHit:   hit,
	}
	for _, a := range p.set.Attrs() {
		out.Assignment[p.set.AttrName(a)] = p.lat.FormatLevel(p.solved[a])
	}
	return out
}
