// Package catalog is the durable multi-tenant policy store behind minupd's
// /policies API: named, monotonically versioned policies (a security
// lattice plus a classification-constraint set), compiled once per version
// into the existing constraint.Compiled snapshot and served from a
// memoized solve cache.
//
// The catalog is built as three layers:
//
//   - Storage (store.go). Each shard persists through the Store interface —
//     append a mutation record, load snapshot+replay, compact, close. The
//     durable implementation (walStore) is the existing WAL+snapshot
//     machinery: every mutation is written to an append-only log
//     (internal/wal: length+CRC32 frames, fsync policy knob) *before* it is
//     applied in memory, and the log is periodically compacted into an
//     atomically replaced snapshot file. Reopening yields exactly the state
//     of the mutations that reached the disk; a torn final frame is
//     truncated, losing at most the one interrupted mutation, and sequence
//     numbers make replay immune to the crash window between "snapshot
//     written" and "log reset". MemStore is the in-memory implementation
//     behind memory-only catalogs and tests.
//
//   - Sharding (this file). Policies are partitioned across N shards by an
//     FNV-1a hash of the policy name. Each shard owns its own Store (its
//     own WAL file, snapshot, and compaction counter) and its own RWMutex,
//     so mutations and cache fills on unrelated policies never contend; a
//     cache-hit read takes only a read lock. Recovery runs concurrently,
//     one goroutine per shard. The shard count is pinned by a meta file in
//     the data directory — membership depends on N, so an existing
//     directory's count always wins over the Options value.
//
//   - Mutation pipeline (pipeline.go). Ingest is decoupled from
//     compile/solve: a mutation returns once its WAL append is durable and
//     the in-memory maps are updated, and a per-shard background worker —
//     fed through internal/bus — recompiles and refreshes the memoized
//     solve (incrementally via core.RepairContext when the cache was
//     warm). MutateOptions.Wait restores fully synchronous semantics, and
//     Flush drains the pipeline for deterministic tests and shutdown.
//
// Serving an unchanged policy performs zero compiles and zero solves
// ("catalog.cache_hits"); optimistic concurrency (If-Match versions) keeps
// its linear history per name because each name lives on exactly one shard
// and every mutation holds that shard's write lock.
package catalog

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"minup/internal/bus"
	"minup/internal/constraint"
	"minup/internal/core"
	"minup/internal/fault"
	"minup/internal/lattice"
	"minup/internal/obs"
	"minup/internal/wal"
)

// Typed errors. Match with errors.Is; the HTTP layer maps them to 404, 409,
// 412, and 503.
var (
	// ErrNotFound reports a name with no policy behind it.
	ErrNotFound = errors.New("catalog: policy not found")
	// ErrExists reports a create-only Put (If-None-Match: *) against an
	// existing policy.
	ErrExists = errors.New("catalog: policy already exists")
	// ErrVersionMismatch reports a failed optimistic-concurrency
	// precondition: the caller's expected version is not the current one.
	ErrVersionMismatch = errors.New("catalog: version precondition failed")
	// ErrStorage marks a WAL write failure: the mutation was valid but
	// could not be made durable, and was therefore not applied. The HTTP
	// layer maps it to 500 instead of the 4xx a validation failure gets.
	ErrStorage = errors.New("catalog: storage failure")
	// ErrSnapshotCorrupt reports that a shard's snapshot file could not be
	// decoded or applied during Open — bit rot, truncation, or manual
	// editing. Counted under "catalog.snapshot_corrupt". Recovery refuses
	// to guess: the operator decides whether to restore or delete the file.
	ErrSnapshotCorrupt = errors.New("catalog: snapshot corrupt")
	// ErrClosed reports a mutation against a closed catalog.
	ErrClosed = errors.New("catalog: closed")
)

// Unconditional is the ifVersion value for mutations without an
// optimistic-concurrency precondition.
const Unconditional int64 = -1

// MustNotExist is the ifVersion value for create-only Puts.
const MustNotExist int64 = 0

// Options configures a catalog.
type Options struct {
	// Dir is the data directory for the per-shard WAL and snapshot files.
	// Empty means memory-only: no durability, everything else identical.
	Dir string
	// Sync is the WAL fsync policy (wal.SyncAlways by default).
	Sync wal.SyncPolicy
	// Metrics, when non-nil, receives the catalog.*, bus.*, and wal.*
	// series.
	Metrics *obs.Registry
	// Flight, when non-nil, receives one FlightRecord per refresh-pipeline
	// job (outcome, duration, policy identity), so stalled or crashing
	// refreshes are visible in /debug/requests next to the HTTP traffic
	// that caused them.
	Flight *obs.FlightRecorder
	// Logger, when non-nil, is handed to the internal bus for rate-limited
	// dropped-event warnings.
	Logger *slog.Logger
	// Fault, when non-nil, arms the "catalog.compile", "wal.append", and
	// "wal.fsync" fault points for chaos testing.
	Fault *fault.Injector
	// SnapshotEvery compacts a shard's WAL into its snapshot after this
	// many records on that shard (0 uses the default of 256; negative
	// disables compaction).
	SnapshotEvery int
	// Shards is the number of independent shards policies are hashed
	// across (0 or negative uses GOMAXPROCS). For a durable catalog the
	// value is only honored when the data directory is new: an existing
	// directory's meta file pins the count it was created with, because
	// shard membership depends on it.
	Shards int
	// OpenStore, when non-nil, supplies shard i's Store instead of the
	// default (a walStore under Dir, or a fresh MemStore when Dir is
	// empty). Tests use it to inject per-shard faults or to hand a
	// reopened catalog the MemStores of a "crashed" one.
	OpenStore func(shard int) (Store, error)
	// OnRecord, when non-nil, is called once per record durably appended to
	// a shard's store — live mutations and replicated applies alike, but
	// not recovery replay — under that shard's write lock, in sequence
	// order. The cluster replication layer hangs its per-shard frame ring
	// off this hook; it must be fast and must not call back into the
	// catalog. The payload is the exact bytes written to the store and must
	// not be mutated.
	OnRecord func(RecordEvent)
}

// RecordEvent describes one durably appended store record for OnRecord.
type RecordEvent struct {
	Shard   int
	Seq     uint64
	Payload []byte
}

const defaultSnapshotEvery = 256

// metaFile pins directory-level invariants, today just the shard count.
type metaFile struct {
	Version int `json:"version"`
	Shards  int `json:"shards"`
}

// RecoveryInfo reports what Open reconstructed from the data directory.
type RecoveryInfo struct {
	// SnapshotPolicies is the number of policies loaded from shard
	// snapshots; WALRecords the number of live WAL records replayed on
	// top, summed across shards.
	SnapshotPolicies, WALRecords int
	// TornTail reports that at least one shard's WAL ended in a torn frame
	// that was cut.
	TornTail bool
	// Shards is the shard count the catalog opened with.
	Shards int
	// Duration is the wall time of the whole (concurrent) recovery.
	Duration time.Duration
}

// policy is one named catalog entry. All fields are guarded by the owning
// shard's lock. The set and compiled values are immutable once installed —
// mutations clone-and-swap — so the refresh pipeline may read them outside
// the lock.
type policy struct {
	name        string
	shard       int
	version     uint64
	latticeText string
	consTexts   []string // the Put text followed by each appended batch
	lat         lattice.Lattice
	set         *constraint.Set
	// compiled is the one snapshot of the current version, built lazily or
	// by the refresh worker; solved memoizes the minimal solution (and its
	// stats) for the current version. Both are dropped on every mutation.
	compiled    *constraint.Compiled
	solved      constraint.Assignment
	solvedStats core.Stats
}

// shard is one hash partition: its own policies, its own Store, its own
// lock, its own compaction counter.
type shard struct {
	id        int
	mu        sync.RWMutex
	store     Store
	pol       map[string]*policy
	seq       uint64 // last sequence number written to (or restored from) the store
	snapSeq   uint64 // sequence number the shard's snapshot covers
	sinceSnap int
	closed    bool
	sub       *bus.Subscription // the refresh worker's feed

	// Recovery bookkeeping, written only during Open.
	snapPolicies, walRecords int
	tornTail                 bool
}

// Catalog is the policy store. Construct with Open; safe for concurrent
// use.
type Catalog struct {
	opt      Options
	shards   []*shard
	bus      *bus.Bus
	pending  pendingTracker
	workers  sync.WaitGroup
	closed   atomic.Bool
	policies atomic.Int64 // live policy count across shards
	recovery RecoveryInfo
}

// walRecord is the JSON payload of one store record.
type walRecord struct {
	Seq         uint64 `json:"seq"`
	Op          string `json:"op"` // "put" | "append" | "delete"
	Name        string `json:"name"`
	Lattice     string `json:"lattice,omitempty"`
	Constraints string `json:"constraints,omitempty"`
}

// snapshotFile is the JSON shape of one shard's compacted snapshot (and,
// with LastSeq zeroed, of the catalog-wide Fingerprint).
type snapshotFile struct {
	LastSeq  uint64           `json:"last_seq"`
	Policies []snapshotPolicy `json:"policies"`
}

type snapshotPolicy struct {
	Name        string   `json:"name"`
	Version     uint64   `json:"version"`
	Lattice     string   `json:"lattice"`
	Constraints []string `json:"constraints"`
}

// shardFor routes a policy name to its shard: inline FNV-1a (no
// allocation, keeps the read path at its alloc budget).
func (c *Catalog) shardFor(name string) *shard {
	h := uint32(2166136261)
	for i := 0; i < len(name); i++ {
		h ^= uint32(name[i])
		h *= 16777619
	}
	return c.shards[h%uint32(len(c.shards))]
}

// Open creates a catalog. With Options.Dir set it recovers the persisted
// state, all shards concurrently: each shard's snapshot (if any) is loaded,
// then every WAL record past the snapshot's sequence number is replayed,
// and a torn final frame is truncated. Reopening a directory therefore
// always yields exactly the state of the mutations that reached the disk.
func Open(opt Options) (*Catalog, error) {
	if opt.SnapshotEvery == 0 {
		opt.SnapshotEvery = defaultSnapshotEvery
	}
	if opt.Shards <= 0 {
		opt.Shards = runtime.GOMAXPROCS(0)
	}
	start := time.Now()
	if opt.Dir != "" {
		if err := os.MkdirAll(opt.Dir, 0o755); err != nil {
			return nil, fmt.Errorf("catalog: %w", err)
		}
		n, err := loadOrInitMeta(opt.Dir, opt.Shards, opt.Sync == wal.SyncAlways)
		if err != nil {
			return nil, err
		}
		opt.Shards = n
	}
	c := &Catalog{
		opt: opt,
		bus: bus.New(bus.Options{Metrics: opt.Metrics, Logger: opt.Logger}),
	}
	c.recovery.Shards = opt.Shards
	for i := 0; i < opt.Shards; i++ {
		s := &shard{id: i, pol: make(map[string]*policy)}
		var err error
		switch {
		case opt.OpenStore != nil:
			s.store, err = opt.OpenStore(i)
		case opt.Dir != "":
			s.store = openWALStore(opt.Dir, i, wal.Options{
				Sync:    opt.Sync,
				Metrics: opt.Metrics,
				Fault:   opt.Fault,
			})
		default:
			s.store = NewMemStore()
		}
		if err != nil {
			c.closeStores()
			return nil, fmt.Errorf("catalog: opening shard %d store: %w", i, err)
		}
		c.shards = append(c.shards, s)
	}

	// Recover every shard concurrently; the first failure aborts the open.
	errs := make([]error, len(c.shards))
	var wg sync.WaitGroup
	for i, s := range c.shards {
		wg.Add(1)
		go func(i int, s *shard) {
			defer wg.Done()
			errs[i] = c.recoverShard(s)
		}(i, s)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			c.closeStores()
			return nil, err
		}
	}
	for _, s := range c.shards {
		c.recovery.SnapshotPolicies += s.snapPolicies
		c.recovery.WALRecords += s.walRecords
		c.recovery.TornTail = c.recovery.TornTail || s.tornTail
		c.policies.Add(int64(len(s.pol)))
		if opt.SnapshotEvery > 0 && s.sinceSnap >= opt.SnapshotEvery {
			if err := c.compactShard(s); err != nil {
				c.closeStores()
				return nil, err
			}
		}
	}
	c.recovery.Duration = time.Since(start)
	c.setGauges()

	// Start the refresh pipeline: one worker per shard, fed over the bus.
	for _, s := range c.shards {
		s.sub = c.bus.Subscribe(refreshTopic(s.id), refreshBuffer)
		c.workers.Add(1)
		go c.refreshWorker(s)
	}
	return c, nil
}

// loadOrInitMeta reads the data directory's meta file, creating it with
// shards when absent. An existing file wins: shard membership is a function
// of the count, so changing it on a populated directory would orphan
// policies.
func loadOrInitMeta(dir string, shards int, sync bool) (int, error) {
	path := filepath.Join(dir, "catalog.meta.json")
	data, err := os.ReadFile(path)
	switch {
	case errors.Is(err, os.ErrNotExist):
		out, err := json.MarshalIndent(metaFile{Version: 1, Shards: shards}, "", "  ")
		if err != nil {
			return 0, fmt.Errorf("catalog: encoding meta: %w", err)
		}
		if err := wal.WriteAtomic(path, append(out, '\n'), sync); err != nil {
			return 0, fmt.Errorf("catalog: writing meta: %w", err)
		}
		return shards, nil
	case err != nil:
		return 0, fmt.Errorf("catalog: reading meta: %w", err)
	}
	var meta metaFile
	if err := json.Unmarshal(data, &meta); err != nil {
		return 0, fmt.Errorf("catalog: decoding meta %s: %w", path, err)
	}
	if meta.Shards < 1 {
		return 0, fmt.Errorf("catalog: meta %s declares %d shards", path, meta.Shards)
	}
	return meta.Shards, nil
}

// recoverShard loads one shard's snapshot and replays its log. Snapshot
// decode/apply failures are surfaced as ErrSnapshotCorrupt — the snapshot
// is a file the catalog wrote itself, so any undecodable state means
// corruption, not version skew.
func (s *shard) loadSnapshot(data []byte) error {
	var snap snapshotFile
	if err := json.Unmarshal(data, &snap); err != nil {
		return fmt.Errorf("%w: shard %d: decoding: %w", ErrSnapshotCorrupt, s.id, err)
	}
	for _, sp := range snap.Policies {
		if len(sp.Constraints) == 0 {
			return fmt.Errorf("%w: shard %d: policy %q has no constraint text", ErrSnapshotCorrupt, s.id, sp.Name)
		}
		if err := s.applyPut(sp.Name, sp.Lattice, sp.Constraints[0]); err != nil {
			return fmt.Errorf("%w: shard %d: policy %q: %w", ErrSnapshotCorrupt, s.id, sp.Name, err)
		}
		for _, batch := range sp.Constraints[1:] {
			if err := s.applyAppend(sp.Name, batch); err != nil {
				return fmt.Errorf("%w: shard %d: policy %q: %w", ErrSnapshotCorrupt, s.id, sp.Name, err)
			}
		}
		s.pol[sp.Name].version = sp.Version
	}
	s.seq = snap.LastSeq
	s.snapSeq = snap.LastSeq
	s.snapPolicies = len(snap.Policies)
	return nil
}

func (c *Catalog) recoverShard(s *shard) error {
	ls, err := s.store.Load(
		func(data []byte) error {
			if err := s.loadSnapshot(data); err != nil {
				c.count("catalog.snapshot_corrupt")
				return err
			}
			return nil
		},
		s.replayRecord,
	)
	if err != nil {
		return err
	}
	s.tornTail = ls.TornTail
	s.sinceSnap = s.walRecords
	return nil
}

// replayRecord applies one log record during Open. Records at or below the
// snapshot's sequence number are the crash window between "snapshot
// written" and "WAL reset"; they are already reflected in the snapshot and
// are skipped.
func (s *shard) replayRecord(payload []byte) error {
	var rec walRecord
	if err := json.Unmarshal(payload, &rec); err != nil {
		return fmt.Errorf("catalog: decoding WAL record: %w", err)
	}
	if rec.Seq <= s.snapSeq {
		return nil
	}
	var err error
	switch rec.Op {
	case "put":
		err = s.applyPut(rec.Name, rec.Lattice, rec.Constraints)
	case "append":
		err = s.applyAppend(rec.Name, rec.Constraints)
	case "delete":
		err = s.applyDelete(rec.Name)
	default:
		err = fmt.Errorf("unknown op %q", rec.Op)
	}
	if err != nil {
		return fmt.Errorf("catalog: WAL record seq %d (%s %q): %w", rec.Seq, rec.Op, rec.Name, err)
	}
	s.seq = rec.Seq
	s.walRecords++
	return nil
}

// RecoveryInfo reports what Open reconstructed. Zero counts for memory-only
// catalogs.
func (c *Catalog) RecoveryInfo() RecoveryInfo { return c.recovery }

// closeStores closes every shard store that Open managed to create; used on
// the Open failure paths.
func (c *Catalog) closeStores() {
	for _, s := range c.shards {
		if s.store != nil {
			s.store.Close()
		}
	}
}

// Close drains the refresh pipeline and releases every shard's store.
// Idempotent and safe to race with mutations: the first call wins, later
// calls (and mutations that lose the race) observe ErrClosed. Durable state
// needs no flushing — every mutation is WAL-first — so drain only has to
// let in-flight cache refreshes finish.
func (c *Catalog) Close() error {
	if !c.closed.CompareAndSwap(false, true) {
		return nil
	}
	// Stop the pipeline: closing each subscription lets its worker drain
	// the buffered refreshes and exit; refreshes published by mutations
	// still in flight after this point are counted dropped (the bus is
	// lossy by contract, and a cold cache merely refills on next read).
	for _, s := range c.shards {
		s.sub.Close()
	}
	c.workers.Wait()
	c.bus.Close()
	var first error
	for _, s := range c.shards {
		s.mu.Lock()
		s.closed = true
		if err := s.store.Close(); err != nil && first == nil {
			first = err
		}
		s.mu.Unlock()
	}
	return first
}

// ---------------------------------------------------------------------------
// In-memory apply functions: the side of a mutation shared by the live path
// and recovery replay. They validate, parse, and swap state, but never
// touch the store, never solve, and never check preconditions (a record in
// the log already passed them).

func validName(name string) error {
	if name == "" || len(name) > 128 {
		return fmt.Errorf("catalog: policy name must be 1..128 characters")
	}
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '_', r == '-':
		default:
			return fmt.Errorf("catalog: policy name %q may only contain [A-Za-z0-9._-]", name)
		}
	}
	if name == "." || name == ".." {
		return fmt.Errorf("catalog: policy name %q is reserved", name)
	}
	return nil
}

// buildPolicy parses lattice and constraint text into a fresh policy value
// (version and shard unset).
func buildPolicy(name, latticeText, constraintsText string) (*policy, error) {
	if err := validName(name); err != nil {
		return nil, err
	}
	lat, err := lattice.Parse(strings.NewReader(latticeText))
	if err != nil {
		return nil, fmt.Errorf("catalog: policy %q lattice: %w", name, err)
	}
	set := constraint.NewSet(lat)
	if err := set.ParseString(constraintsText); err != nil {
		return nil, fmt.Errorf("catalog: policy %q constraints: %w", name, err)
	}
	return &policy{
		name:        name,
		latticeText: latticeText,
		consTexts:   []string{constraintsText},
		lat:         lat,
		set:         set,
	}, nil
}

func (s *shard) applyPut(name, latticeText, constraintsText string) error {
	p, err := buildPolicy(name, latticeText, constraintsText)
	if err != nil {
		return err
	}
	p.shard = s.id
	if old := s.pol[name]; old != nil {
		p.version = old.version + 1
	} else {
		p.version = 1
	}
	s.pol[name] = p
	return nil
}

func (s *shard) applyAppend(name, constraintsText string) error {
	p := s.pol[name]
	if p == nil {
		return ErrNotFound
	}
	ns := p.set.Clone()
	if err := ns.ParseString(constraintsText); err != nil {
		return fmt.Errorf("catalog: policy %q append: %w", name, err)
	}
	p.set = ns
	p.consTexts = append(p.consTexts, constraintsText)
	p.version++
	p.compiled = nil
	p.solved = nil
	p.solvedStats = core.Stats{}
	return nil
}

func (s *shard) applyDelete(name string) error {
	if s.pol[name] == nil {
		return ErrNotFound
	}
	delete(s.pol, name)
	return nil
}

// ---------------------------------------------------------------------------
// Durability helpers. All called under the owning shard's write lock.

// logRecord writes one record to the shard's store. Write-ahead ordering:
// the caller applies the mutation in memory only after logRecord returns
// nil, so a crash at any point leaves memory ⊆ disk, never ahead of it.
func (c *Catalog) logRecord(s *shard, rec walRecord) error {
	rec.Seq = s.seq + 1
	payload, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("catalog: encoding WAL record: %w", err)
	}
	if err := s.store.Append(payload); err != nil {
		return fmt.Errorf("%w: %w", ErrStorage, err)
	}
	s.seq = rec.Seq
	s.sinceSnap++
	if c.opt.OnRecord != nil {
		c.opt.OnRecord(RecordEvent{Shard: s.id, Seq: rec.Seq, Payload: payload})
	}
	return nil
}

// maybeCompact snapshots and resets the shard's log when it has grown past
// the compaction threshold. Compaction failures are counted but do not fail
// the mutation that triggered them — the log alone is still a complete,
// durable history, and the shard's next mutation retries.
func (c *Catalog) maybeCompact(s *shard) {
	if c.opt.SnapshotEvery <= 0 || s.sinceSnap < c.opt.SnapshotEvery {
		return
	}
	if err := c.compactShard(s); err != nil {
		c.count("catalog.compaction_errors")
	}
}

// compactShard writes the shard's full state to its snapshot (atomically)
// and then resets its log. The snapshot records the sequence number it
// covers, so a crash between the two steps merely replays records the
// snapshot already contains — replay skips them by sequence number.
func (c *Catalog) compactShard(s *shard) error {
	pols := make([]snapshotPolicy, 0, len(s.pol))
	for _, p := range s.pol {
		pols = append(pols, snapshotPolicyOf(p))
	}
	data, err := encodeSnapshot(s.seq, pols)
	if err != nil {
		return err
	}
	if err := s.store.Compact(data); err != nil {
		return err
	}
	s.snapSeq = s.seq
	s.sinceSnap = 0
	c.count("catalog.snapshots")
	return nil
}

// snapshotPolicyOf copies one policy's durable fields into its snapshot
// shape. Caller holds at least the owning shard's read lock: the copy is
// what makes it safe to marshal after the lock is released, while appends
// keep mutating the *policy in place under the write lock.
func snapshotPolicyOf(p *policy) snapshotPolicy {
	return snapshotPolicy{
		Name:        p.name,
		Version:     p.version,
		Lattice:     p.latticeText,
		Constraints: append([]string(nil), p.consTexts...),
	}
}

// encodeSnapshot serializes already-copied policies deterministically:
// sorted by name, stable JSON field order, trailing newline.
func encodeSnapshot(lastSeq uint64, pols []snapshotPolicy) ([]byte, error) {
	sort.Slice(pols, func(i, j int) bool { return pols[i].Name < pols[j].Name })
	snap := snapshotFile{LastSeq: lastSeq, Policies: pols}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("catalog: encoding snapshot: %w", err)
	}
	return append(data, '\n'), nil
}

// Fingerprint returns a deterministic serialization of the full catalog
// state (names, versions, lattice and constraint text, sorted across all
// shards). Two catalogs with equal fingerprints hold byte-identical policy
// state — the equality the crash-recovery chaos tests assert. Sequence
// numbers and the shard count are deliberately excluded: they describe the
// history's framing and its partitioning, not the state, so fingerprints
// compare across different shard counts. Policy fields are copied under
// each shard's read lock; only the copies are marshaled afterwards.
func (c *Catalog) Fingerprint() []byte {
	pols := make([]snapshotPolicy, 0, c.policies.Load())
	for _, s := range c.shards {
		s.mu.RLock()
		for _, p := range s.pol {
			pols = append(pols, snapshotPolicyOf(p))
		}
		s.mu.RUnlock()
	}
	data, err := encodeSnapshot(0, pols)
	if err != nil {
		panic(err) // marshal of plain strings cannot fail
	}
	return data
}

// ---------------------------------------------------------------------------
// Metrics helpers.

func (c *Catalog) count(name string) {
	if c.opt.Metrics != nil {
		c.opt.Metrics.Counter(name).Inc()
	}
}

// setGauges refreshes the catalog-wide and per-shard policy gauges. The
// per-shard reads are racy snapshots (no shard lock), which is fine for a
// gauge.
func (c *Catalog) setGauges() {
	if c.opt.Metrics == nil {
		return
	}
	c.opt.Metrics.Gauge("catalog.policies").Set(c.policies.Load())
	for _, s := range c.shards {
		c.opt.Metrics.Gauge(fmt.Sprintf("catalog.shard.%d.policies", s.id)).Set(int64(len(s.pol)))
	}
}

// shardGauge updates one shard's policy gauge; called under the shard lock.
func (c *Catalog) shardGauge(s *shard) {
	if c.opt.Metrics != nil {
		c.opt.Metrics.Gauge("catalog.policies").Set(c.policies.Load())
		c.opt.Metrics.Gauge(fmt.Sprintf("catalog.shard.%d.policies", s.id)).Set(int64(len(s.pol)))
	}
}

// ---------------------------------------------------------------------------
// Public query API. (Mutations live in pipeline.go.)

// PolicyInfo is the externally visible description of one policy version.
type PolicyInfo struct {
	Name        string `json:"name"`
	Version     uint64 `json:"version"`
	Attrs       int    `json:"attrs"`
	Constraints int    `json:"constraints"`
	UpperBounds int    `json:"upper_bounds"`
	// Shard is the hash partition the policy lives on; Compiled and Solved
	// report the state of the version's memoized artifacts (false right
	// after an async mutation, true once the refresh pipeline — or a read
	// — has warmed them).
	Shard    int  `json:"shard"`
	Compiled bool `json:"compiled"`
	Solved   bool `json:"solved"`
	// Lattice and ConstraintText are the policy's source texts; the
	// constraint text is the Put batch followed by every appended batch.
	Lattice        string `json:"lattice,omitempty"`
	ConstraintText string `json:"constraints_text,omitempty"`
}

func (p *policy) info() PolicyInfo {
	return PolicyInfo{
		Name:           p.name,
		Version:        p.version,
		Attrs:          p.set.NumAttrs(),
		Constraints:    len(p.set.Constraints()),
		UpperBounds:    len(p.set.UpperBounds()),
		Shard:          p.shard,
		Compiled:       p.compiled != nil,
		Solved:         p.solved != nil,
		Lattice:        p.latticeText,
		ConstraintText: strings.Join(p.consTexts, "\n"),
	}
}

// checkVersion enforces the optimistic-concurrency precondition against
// the current state of name on shard s. ifVersion: Unconditional (-1)
// accepts any state; MustNotExist (0) requires absence; a positive value
// requires the policy to exist at exactly that version.
func checkVersion(s *shard, name string, ifVersion int64, mustExist bool) error {
	p := s.pol[name]
	switch {
	case ifVersion == Unconditional:
		if p == nil && mustExist {
			return fmt.Errorf("%w: %q", ErrNotFound, name)
		}
	case ifVersion == MustNotExist:
		if p != nil {
			return fmt.Errorf("%w: %q is at version %d", ErrExists, name, p.version)
		}
	default:
		if p == nil {
			return fmt.Errorf("%w: %q", ErrNotFound, name)
		}
		if p.version != uint64(ifVersion) {
			return fmt.Errorf("%w: %q is at version %d, precondition %d",
				ErrVersionMismatch, name, p.version, ifVersion)
		}
	}
	return nil
}

// Get returns the policy's current description, or ErrNotFound.
func (c *Catalog) Get(name string) (PolicyInfo, error) {
	s := c.shardFor(name)
	s.mu.RLock()
	defer s.mu.RUnlock()
	p := s.pol[name]
	if p == nil {
		return PolicyInfo{}, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	return p.info(), nil
}

// List returns every policy's description (without the source texts),
// sorted by name across all shards.
func (c *Catalog) List() []PolicyInfo {
	out := make([]PolicyInfo, 0, c.policies.Load())
	for _, s := range c.shards {
		s.mu.RLock()
		for _, p := range s.pol {
			info := p.info()
			info.Lattice, info.ConstraintText = "", ""
			out = append(out, info)
		}
		s.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Len returns the number of policies across all shards.
func (c *Catalog) Len() int { return int(c.policies.Load()) }

// Bus exposes the catalog's event bus so external observers (metrics
// shippers, the future WAL-shipping replicator of ROADMAP item 1) can
// subscribe to TopicMutations and TopicRefreshed.
func (c *Catalog) Bus() *bus.Bus { return c.bus }

// SolveResult is the answer of Catalog.Solve.
type SolveResult struct {
	Info PolicyInfo
	// Assignment maps attribute names to formatted level names.
	Assignment map[string]string
	// Stats are the operation counts of the solve that produced the
	// memoized answer (a cache hit returns the original solve's stats).
	Stats core.Stats
	// CacheHit reports that the answer came from the memoized cache: zero
	// compiles and zero solves were performed by this call.
	CacheHit bool
}

// Solve returns the minimal classification for the policy's current
// version. Warm policies are served from the memoized cache
// ("catalog.cache_hits") under only the shard's read lock, with no compile
// and no solve; a cold version — the refresh pipeline hasn't caught up, or
// its event was dropped — is filled here under the shard's write lock,
// compiling the snapshot (at most once per version, "catalog.compiles",
// fault point "catalog.compile") and running one cold solve ("solve.cold",
// "catalog.cache_misses"), then memoizing.
func (c *Catalog) Solve(ctx context.Context, name string) (SolveResult, error) {
	s := c.shardFor(name)
	s.mu.RLock()
	p := s.pol[name]
	if p != nil && p.solved != nil {
		res := solveResult(p, true)
		s.mu.RUnlock()
		c.count("catalog.cache_hits")
		return res, nil
	}
	s.mu.RUnlock()

	s.mu.Lock()
	defer s.mu.Unlock()
	// Double-check under the write lock: the policy may have been mutated,
	// deleted, or warmed since the read lock was dropped.
	p = s.pol[name]
	if p == nil {
		return SolveResult{}, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	if p.solved != nil {
		c.count("catalog.cache_hits")
		return solveResult(p, true), nil
	}
	c.count("catalog.cache_misses")
	if p.compiled == nil {
		if err := c.opt.Fault.Hit("catalog.compile"); err != nil {
			return SolveResult{}, fmt.Errorf("catalog: compiling %q: %w", name, err)
		}
		p.compiled = p.set.Snapshot()
		c.count("catalog.compiles")
	}
	c.count("solve.cold")
	res, err := core.SolveContext(ctx, p.compiled, core.Options{
		Metrics: c.opt.Metrics,
		Fault:   c.opt.Fault,
	})
	if err != nil {
		return SolveResult{}, err
	}
	p.solved = res.Assignment
	p.solvedStats = res.Stats
	return solveResult(p, false), nil
}

// solveResult snapshots the memoized answer; caller holds at least the
// shard's read lock.
func solveResult(p *policy, hit bool) SolveResult {
	out := SolveResult{
		Info:       p.info(),
		Assignment: make(map[string]string, p.set.NumAttrs()),
		Stats:      p.solvedStats,
		CacheHit:   hit,
	}
	for _, a := range p.set.Attrs() {
		out.Assignment[p.set.AttrName(a)] = p.lat.FormatLevel(p.solved[a])
	}
	return out
}
