package catalog

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"testing"

	"minup/internal/constraint"
	"minup/internal/core"
	"minup/internal/lattice"
	"minup/internal/obs"
	"minup/internal/wal"
	"minup/internal/workload"
)

// TestCatalogSoak drives a durable catalog with a long generated mutation
// stream, interleaving solves so appends exercise the warm
// incremental-repair path and cache hits at scale, then checks three
// properties: every surviving policy's served solution satisfies its
// constraint set AND is minimal (repair never trades minimality for
// speed), the counters prove both repair and cache paths actually ran,
// and a reopen of the data directory reproduces the state byte-exactly
// through snapshot + WAL recovery.
func TestCatalogSoak(t *testing.T) {
	n := 300
	if testing.Short() {
		n = 60
	}
	muts, err := workload.MutationStream(workload.MutationSpec{
		Seed:             7,
		NumPolicies:      6,
		NumMutations:     n,
		PutFraction:      0.15,
		DeleteFraction:   0.08,
		AttrsPerPolicy:   10,
		ConsPerPut:       14,
		ConsPerAppend:    3,
		LevelRHSFraction: 0.35,
		NewAttrFraction:  0.15,
	})
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	reg := obs.NewRegistry()
	ctx := context.Background()
	c := mustOpen(t, Options{Dir: dir, Sync: wal.SyncNever, Metrics: reg, SnapshotEvery: 16, Shards: 2})
	for i, m := range muts {
		if err := applyMutation(ctx, c, m); err != nil {
			t.Fatalf("mutation %d (%s %s): %v", i, m.Op, m.Name, err)
		}
		// Solve the policy just touched (and again, for a guaranteed cache
		// hit) every few mutations, so later appends find a memoized
		// solution to repair instead of falling back to cold solves.
		if i%3 == 0 && m.Op != workload.OpDelete {
			if _, err := c.Solve(ctx, m.Name); err != nil {
				t.Fatalf("solve %s after mutation %d: %v", m.Name, i, err)
			}
			if res, err := c.Solve(ctx, m.Name); err != nil || !res.CacheHit {
				t.Fatalf("re-solve %s: hit=%v err=%v", m.Name, res.CacheHit, err)
			}
		}
	}

	// Drain the refresh pipeline so the memoized answers below are stable.
	mustFlush(t, c)

	// Every live policy: the served solution must satisfy the policy's
	// constraints and match an independent cold solve of a set rebuilt
	// from the stored source texts.
	live := c.List()
	if len(live) == 0 {
		t.Fatal("soak stream left no live policies")
	}
	for _, info := range live {
		res, err := c.Solve(ctx, info.Name)
		if err != nil {
			t.Fatalf("final solve %s: %v", info.Name, err)
		}
		full, err := c.Get(info.Name)
		if err != nil {
			t.Fatal(err)
		}
		lat, err := lattice.ParseString(full.Lattice)
		if err != nil {
			t.Fatal(err)
		}
		set := constraint.NewSet(lat)
		if err := set.ParseString(full.ConstraintText); err != nil {
			t.Fatalf("rebuilding %s from stored text: %v", info.Name, err)
		}
		if set.NumAttrs() != len(res.Assignment) {
			t.Fatalf("%s: served %d attrs, set has %d", info.Name, len(res.Assignment), set.NumAttrs())
		}
		asn := make(constraint.Assignment, set.NumAttrs())
		for _, a := range set.Attrs() {
			lvl, err := lat.ParseLevel(res.Assignment[set.AttrName(a)])
			if err != nil {
				t.Fatalf("%s: unparseable served level %q: %v", info.Name, res.Assignment[set.AttrName(a)], err)
			}
			asn[a] = lvl
		}
		if !set.Satisfies(asn) {
			t.Fatalf("%s: served solution violates constraints: %v", info.Name, set.Violations(asn))
		}
		// Complex constraints admit multiple incomparable minimal solutions
		// (the repair may settle on a different one than a fresh solve
		// would), so the check is minimality itself, not equality with an
		// independent solve.
		minimal, w, err := core.ProbeMinimality(set, asn)
		if err != nil {
			t.Fatalf("probing %s: %v", info.Name, err)
		}
		if !minimal {
			t.Fatalf("%s: served solution is not minimal (witness %v)\nserved: %s",
				info.Name, w, set.FormatAssignment(asn))
		}
	}

	snap := reg.Snapshot()
	for _, name := range []string{
		"catalog.repairs", "catalog.cache_hits", "catalog.snapshots",
		"catalog.refresh.enqueued", "catalog.refresh.completed",
	} {
		if snap.Counters[name] == 0 {
			t.Errorf("soak never exercised %s", name)
		}
	}
	if g := snap.Gauges["catalog.policies"]; g != int64(len(live)) {
		t.Errorf("catalog.policies gauge = %d, want %d", g, len(live))
	}

	want := c.Fingerprint()
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	re := mustOpen(t, Options{Dir: dir, Sync: wal.SyncNever, SnapshotEvery: 16, Shards: 2})
	if got := re.Fingerprint(); !bytes.Equal(got, want) {
		t.Fatal("reopened soak state differs from the live catalog")
	}
}

// TestCrossShardConcurrentSoak runs disjoint generated mutation streams
// from several goroutines against a 4-shard durable catalog (each
// goroutine's policy names carry its own prefix, so optimistic concurrency
// never fires and every mutation must succeed), then checks the combined
// properties: every surviving policy's served solution is minimal, and a
// reopen reproduces the merged state byte-exactly. Run under -race this is
// also the shard-locking and pipeline concurrency test.
func TestCrossShardConcurrentSoak(t *testing.T) {
	const writers = 4
	n := 120
	if testing.Short() {
		n = 40
	}
	dir := t.TempDir()
	reg := obs.NewRegistry()
	ctx := context.Background()
	c := mustOpen(t, Options{Dir: dir, Sync: wal.SyncNever, Metrics: reg, SnapshotEvery: 16, Shards: 4})

	var wg sync.WaitGroup
	errs := make([]error, writers)
	for g := 0; g < writers; g++ {
		muts, err := workload.MutationStream(workload.MutationSpec{
			Seed:             100 + int64(g),
			NumPolicies:      4,
			NumMutations:     n,
			PutFraction:      0.2,
			DeleteFraction:   0.08,
			AttrsPerPolicy:   8,
			ConsPerPut:       10,
			ConsPerAppend:    3,
			LevelRHSFraction: 0.35,
			NewAttrFraction:  0.15,
		})
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(g int, muts []workload.Mutation) {
			defer wg.Done()
			for i, m := range muts {
				name := fmt.Sprintf("g%d-%s", g, m.Name)
				var err error
				switch m.Op {
				case workload.OpPut:
					_, err = c.Put(ctx, name, m.Lattice, m.Constraints, Unconditional)
				case workload.OpAppend:
					_, err = c.Append(ctx, name, m.Constraints, Unconditional)
				case workload.OpDelete:
					err = c.Delete(ctx, name, Unconditional)
				}
				if err != nil {
					errs[g] = fmt.Errorf("writer %d mutation %d (%s %s): %w", g, i, m.Op, name, err)
					return
				}
				// Interleave reads so appends find warm caches to repair.
				if i%5 == 0 && m.Op != workload.OpDelete {
					if _, err := c.Solve(ctx, name); err != nil {
						errs[g] = fmt.Errorf("writer %d solve %s: %w", g, name, err)
						return
					}
				}
			}
		}(g, muts)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	mustFlush(t, c)

	live := c.List()
	if len(live) == 0 {
		t.Fatal("concurrent soak left no live policies")
	}
	seenShards := map[int]bool{}
	for _, info := range live {
		seenShards[info.Shard] = true
		res, err := c.Solve(ctx, info.Name)
		if err != nil {
			t.Fatalf("final solve %s: %v", info.Name, err)
		}
		full, err := c.Get(info.Name)
		if err != nil {
			t.Fatal(err)
		}
		lat, err := lattice.ParseString(full.Lattice)
		if err != nil {
			t.Fatal(err)
		}
		set := constraint.NewSet(lat)
		if err := set.ParseString(full.ConstraintText); err != nil {
			t.Fatalf("rebuilding %s from stored text: %v", info.Name, err)
		}
		asn := make(constraint.Assignment, set.NumAttrs())
		for _, a := range set.Attrs() {
			lvl, err := lat.ParseLevel(res.Assignment[set.AttrName(a)])
			if err != nil {
				t.Fatalf("%s: unparseable served level %q: %v", info.Name, res.Assignment[set.AttrName(a)], err)
			}
			asn[a] = lvl
		}
		minimal, w, err := core.ProbeMinimality(set, asn)
		if err != nil {
			t.Fatalf("probing %s: %v", info.Name, err)
		}
		if !minimal {
			t.Fatalf("%s: served solution is not minimal (witness %v)", info.Name, w)
		}
	}
	if len(seenShards) < 2 {
		t.Fatalf("soak exercised only shards %v; want spread across several", seenShards)
	}

	want := c.Fingerprint()
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	re := mustOpen(t, Options{Dir: dir, Sync: wal.SyncNever, SnapshotEvery: 16, Shards: 4})
	if got := re.Fingerprint(); !bytes.Equal(got, want) {
		t.Fatal("reopened concurrent-soak state differs from the live catalog")
	}
}
