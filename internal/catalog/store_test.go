package catalog

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"minup/internal/obs"
	"minup/internal/wal"
)

// TestSnapshotCorruption bit-flips and truncates a shard snapshot and
// asserts Open fails with the typed ErrSnapshotCorrupt (not a raw JSON
// error) and counts it, instead of silently recovering wrong state.
func TestSnapshotCorruption(t *testing.T) {
	ctx := context.Background()
	build := func(t *testing.T) string {
		dir := t.TempDir()
		c, err := Open(Options{Dir: dir, Sync: wal.SyncAlways, SnapshotEvery: 1, Shards: 1})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Put(ctx, "hr", testLattice, testCons, MustNotExist); err != nil {
			t.Fatal(err)
		}
		if err := c.Close(); err != nil {
			t.Fatal(err)
		}
		if _, err := os.Stat(filepath.Join(dir, "catalog-0.snap")); err != nil {
			t.Fatalf("no snapshot to corrupt: %v", err)
		}
		return dir
	}

	corruptions := map[string]func([]byte) []byte{
		"bitflip": func(b []byte) []byte {
			out := append([]byte(nil), b...)
			out[0] ^= 0x40
			return out
		},
		"truncated": func(b []byte) []byte { return b[:len(b)/2] },
		"valid-json-bad-content": func([]byte) []byte {
			return []byte(`{"last_seq":1,"policies":[{"name":"hr","version":1,"lattice":"chain mil\nlevels U C\n","constraints":[]}]}`)
		},
	}
	for name, corrupt := range corruptions {
		t.Run(name, func(t *testing.T) {
			dir := build(t)
			path := filepath.Join(dir, "catalog-0.snap")
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, corrupt(data), 0o644); err != nil {
				t.Fatal(err)
			}
			reg := obs.NewRegistry()
			c, err := Open(Options{Dir: dir, Sync: wal.SyncAlways, Metrics: reg, Shards: 1})
			if err == nil {
				c.Close()
				t.Fatal("Open accepted a corrupt snapshot")
			}
			if !errors.Is(err, ErrSnapshotCorrupt) {
				t.Fatalf("Open error = %v, want ErrSnapshotCorrupt", err)
			}
			if n := reg.Snapshot().Counters["catalog.snapshot_corrupt"]; n != 1 {
				t.Fatalf("catalog.snapshot_corrupt = %d, want 1", n)
			}
		})
	}

	// Control: the uncorrupted directory still opens.
	dir := build(t)
	c, err := Open(Options{Dir: dir, Sync: wal.SyncAlways, Shards: 1})
	if err != nil {
		t.Fatalf("pristine reopen: %v", err)
	}
	defer c.Close()
	if info, err := c.Get("hr"); err != nil || info.Version != 1 {
		t.Fatalf("pristine recovery = %+v, %v", info, err)
	}
}

// TestMemStoreReopen drives a full catalog generation on shared MemStores,
// "restarts" onto the same stores, and asserts recovery semantics match the
// durable path: identical fingerprint, cold caches that solve correctly,
// and unsolvable appends still rejected against a cold policy.
func TestMemStoreReopen(t *testing.T) {
	ctx := context.Background()
	stores := make(map[int]*MemStore)
	opt := Options{
		Shards:        2,
		SnapshotEvery: -1,
		OpenStore: func(i int) (Store, error) {
			if stores[i] == nil {
				stores[i] = NewMemStore()
			}
			return stores[i], nil
		},
	}
	c, err := Open(opt)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Put(ctx, "a", testLattice, testCons, MustNotExist, MutateOptions{Wait: true}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Put(ctx, "b", testLattice, testCons, MustNotExist); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Append(ctx, "a", "rank >= TS\n", Unconditional); err != nil {
		t.Fatal(err)
	}
	if err := c.Delete(ctx, "b", Unconditional); err != nil {
		t.Fatal(err)
	}
	mustFlush(t, c)
	want := c.Fingerprint()
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(opt)
	if err != nil {
		t.Fatalf("reopen on retained MemStores: %v", err)
	}
	defer re.Close()
	if ri := re.RecoveryInfo(); ri.WALRecords != 4 || ri.Shards != 2 {
		t.Fatalf("RecoveryInfo = %+v, want 4 records over 2 shards", ri)
	}
	if got := re.Fingerprint(); !bytes.Equal(got, want) {
		t.Fatalf("reopened state differs:\n%s\nwant:\n%s", got, want)
	}

	// Recovered policies come back cold: the first read takes the
	// write-lock fill path and cold-solves.
	info, err := re.Get("a")
	if err != nil || info.Version != 2 || info.Solved || info.Compiled {
		t.Fatalf("recovered policy = %+v, %v (want cold at version 2)", info, err)
	}
	res, err := re.Solve(ctx, "a")
	if err != nil || res.CacheHit || res.Assignment["rank"] != "TS" {
		t.Fatalf("cold recovery solve: hit=%v res=%v err=%v", res.CacheHit, res.Assignment, err)
	}
	if res, err := re.Solve(ctx, "a"); err != nil || !res.CacheHit {
		t.Fatalf("re-solve after cold fill: hit=%v err=%v", res.CacheHit, err)
	}

	// An unsolvable append is still rejected synchronously, and a solvable
	// one lands with its refresh handled on the worker.
	if _, err := re.Append(ctx, "a", "C >= rank\n", Unconditional, MutateOptions{Wait: true}); err == nil {
		t.Fatal("cold Append accepted an unsolvable upper bound")
	}
	ar, err := re.Append(ctx, "a", "salary >= TS\n", Unconditional)
	if err != nil || !ar.Pending {
		t.Fatalf("cold async Append = %+v, %v", ar, err)
	}
	mustFlush(t, re)
	if res, err := re.Solve(ctx, "a"); err != nil || !res.CacheHit || res.Assignment["salary"] != "TS" {
		t.Fatalf("solve after cold async append: hit=%v res=%v err=%v", res.CacheHit, res.Assignment, err)
	}
}

// TestMemStoreCompaction checks MemStore honors the Compact contract: the
// log is truncated into the snapshot and a reload sees snapshot-only state.
func TestMemStoreCompaction(t *testing.T) {
	ctx := context.Background()
	stores := make(map[int]*MemStore)
	opt := Options{
		Shards:        1,
		SnapshotEvery: 3,
		OpenStore: func(i int) (Store, error) {
			if stores[i] == nil {
				stores[i] = NewMemStore()
			}
			return stores[i], nil
		},
	}
	c, err := Open(opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"a", "b", "c"} {
		if _, err := c.Put(ctx, name, testLattice, testCons, MustNotExist); err != nil {
			t.Fatal(err)
		}
	}
	if n := stores[0].Records(); n != 0 {
		t.Fatalf("store retains %d records after compaction threshold", n)
	}
	want := c.Fingerprint()
	c.Close()

	re, err := Open(opt)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	ri := re.RecoveryInfo()
	if ri.SnapshotPolicies != 3 || ri.WALRecords != 0 {
		t.Fatalf("RecoveryInfo = %+v, want snapshot-only recovery of 3 policies", ri)
	}
	if got := re.Fingerprint(); !bytes.Equal(got, want) {
		t.Fatal("snapshot-only MemStore recovery differs")
	}
}

// TestMetaPinsShardCount: an existing data directory's shard count wins
// over the Options value — rehashing policies under a different N would
// orphan them.
func TestMetaPinsShardCount(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	c := mustOpen(t, Options{Dir: dir, Shards: 4})
	if _, err := c.Put(ctx, "pinned", testLattice, testCons, MustNotExist); err != nil {
		t.Fatal(err)
	}
	want := c.Fingerprint()
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	re := mustOpen(t, Options{Dir: dir, Shards: 1}) // asks for 1, gets 4
	if ri := re.RecoveryInfo(); ri.Shards != 4 {
		t.Fatalf("reopen honored Options.Shards over the meta file: %+v", ri)
	}
	if got := re.Fingerprint(); !bytes.Equal(got, want) {
		t.Fatal("reopen under pinned shard count lost state")
	}
}
