package catalog

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"minup/internal/obs"
	"minup/internal/wal"
)

// TestCloseIdempotentAndConcurrent hammers Close from several goroutines
// while mutations are still arriving: no panic, no deadlock, every Close
// returns, and once closed every mutation reports ErrClosed. Run under
// -race this is the Close-safety satellite.
func TestCloseIdempotentAndConcurrent(t *testing.T) {
	ctx := context.Background()
	c, err := Open(Options{Dir: t.TempDir(), Sync: wal.SyncNever, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	start := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			for i := 0; i < 50; i++ {
				name := fmt.Sprintf("w%d-%03d", g, i)
				if _, err := c.Put(ctx, name, testLattice, testCons, Unconditional); err != nil {
					if !errors.Is(err, ErrClosed) {
						t.Errorf("mutation during close: %v", err)
					}
					return
				}
			}
		}(g)
	}
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			time.Sleep(time.Millisecond)
			if err := c.Close(); err != nil {
				t.Errorf("concurrent Close: %v", err)
			}
		}()
	}
	close(start)
	wg.Wait()

	if err := c.Close(); err != nil {
		t.Fatalf("Close after Close: %v", err)
	}
	if _, err := c.Put(ctx, "late", testLattice, testCons, Unconditional); !errors.Is(err, ErrClosed) {
		t.Fatalf("Put after Close: err = %v, want ErrClosed", err)
	}
	if _, err := c.Append(ctx, "late", "rank >= TS\n", Unconditional); !errors.Is(err, ErrClosed) {
		t.Fatalf("Append after Close: err = %v, want ErrClosed", err)
	}
	if err := c.Delete(ctx, "late", Unconditional); !errors.Is(err, ErrClosed) {
		t.Fatalf("Delete after Close: err = %v, want ErrClosed", err)
	}
}

// TestFlushContext: Flush honors context cancellation while refreshes are
// still pending (a saturated pipeline must not wedge a shutdown that set a
// deadline).
func TestFlushContext(t *testing.T) {
	c := mustOpen(t, Options{Shards: 1})
	// Hold the pending count up artificially: Flush must give up when its
	// context does, then return promptly once the count drains.
	c.pendingAdd(1)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if err := c.Flush(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Flush under stuck pipeline: err = %v, want deadline exceeded", err)
	}
	c.pendingAdd(-1)
	if err := c.Flush(context.Background()); err != nil {
		t.Fatalf("Flush after drain: %v", err)
	}
}

// TestBusEvents subscribes to the public topics and asserts the pipeline
// publishes a mutation event per durable mutation and a refreshed event per
// completed refresh, with consistent shard routing.
func TestBusEvents(t *testing.T) {
	c := mustOpen(t, Options{Shards: 2})
	ctx := context.Background()
	muts := c.Bus().Subscribe(TopicMutations, 16)
	refs := c.Bus().Subscribe(TopicRefreshed, 16)

	if _, err := c.Put(ctx, "ev", testLattice, testCons, MustNotExist); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Append(ctx, "ev", "rank >= TS\n", Unconditional); err != nil {
		t.Fatal(err)
	}
	mustFlush(t, c)
	if err := c.Delete(ctx, "ev", Unconditional); err != nil {
		t.Fatal(err)
	}
	muts.Close()
	refs.Close()

	wantShard := c.shardFor("ev").id
	var ops []string
	for ev := range muts.C {
		me, ok := ev.Payload.(MutationEvent)
		if !ok {
			t.Fatalf("mutation payload %T", ev.Payload)
		}
		if me.Name != "ev" || me.Shard != wantShard {
			t.Fatalf("mutation event %+v, want name ev on shard %d", me, wantShard)
		}
		ops = append(ops, me.Op)
	}
	if fmt.Sprint(ops) != "[put append delete]" {
		t.Fatalf("mutation ops = %v", ops)
	}

	completed := 0
	for ev := range refs.C {
		re, ok := ev.Payload.(RefreshEvent)
		if !ok {
			t.Fatalf("refresh payload %T", ev.Payload)
		}
		if re.Err != "" {
			t.Fatalf("refresh failed: %+v", re)
		}
		if re.Name == "ev" {
			completed++
		}
	}
	// Put and append each enqueue one refresh. The append's always
	// completes; the put's completes too unless the append had already
	// bumped the version by the time the worker got to it (then it is
	// discarded as stale and publishes nothing).
	if completed < 1 || completed > 2 {
		t.Fatalf("refresh completions = %d, want 1 or 2", completed)
	}
}

// TestRefreshStaleAcrossRecreate: a queued refresh for a deleted policy's
// version must not install its artifacts onto a recreated policy of the
// same name — versions restart at 1 after delete+recreate, so a
// (name, version) check alone would match; the guard requires pointer
// identity with the policy the mutation touched.
func TestRefreshStaleAcrossRecreate(t *testing.T) {
	reg := obs.NewRegistry()
	c := mustOpen(t, Options{Shards: 1, Metrics: reg})
	ctx := context.Background()

	if _, err := c.Put(ctx, "re", testLattice, testCons, MustNotExist); err != nil {
		t.Fatal(err)
	}
	mustFlush(t, c)
	s := c.shardFor("re")
	s.mu.RLock()
	old := s.pol["re"]
	s.mu.RUnlock()
	// The job Put enqueued for version 1 of the first incarnation, held
	// back as it would be on a worker behind a deep queue.
	job := refreshJob{shard: s, pol: old, name: "re", version: 1, lat: old.lat, set: old.set}

	if err := c.Delete(ctx, "re", Unconditional); err != nil {
		t.Fatal(err)
	}
	// Recreate under the same name — version 1 again — with a different
	// attribute universe: installing the old job's artifacts here would
	// serve a solution for constraints this policy never had.
	if _, err := c.Put(ctx, "re", testLattice, "attrs x\nx >= TS\n", MustNotExist); err != nil {
		t.Fatal(err)
	}
	mustFlush(t, c)

	before := reg.Snapshot().Counters["catalog.refresh.stale"]
	c.runRefresh(ctx, job)
	if got := reg.Snapshot().Counters["catalog.refresh.stale"]; got != before+1 {
		t.Fatalf("catalog.refresh.stale = %d, want %d (old-incarnation job must be discarded)", got, before+1)
	}
	res, err := c.Solve(ctx, "re")
	if err != nil || res.Info.Version != 1 || res.Assignment["x"] != "TS" {
		t.Fatalf("solve after recreate = %+v, %v (want version 1, x=TS)", res, err)
	}
	if _, leaked := res.Assignment["salary"]; leaked {
		t.Fatalf("recreated policy serves the deleted incarnation's attributes: %v", res.Assignment)
	}
}

// TestFingerprintConcurrentMutation: Fingerprint copies policy state under
// the shard read locks before marshaling, so it is safe against appends
// mutating the same policies in place. Meaningful under -race.
func TestFingerprintConcurrentMutation(t *testing.T) {
	c := mustOpen(t, Options{Shards: 2})
	ctx := context.Background()
	for i := 0; i < 4; i++ {
		if _, err := c.Put(ctx, fmt.Sprintf("fp-%d", i), testLattice, testCons, MustNotExist); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := c.Append(ctx, fmt.Sprintf("fp-%d", i%4), "rank >= TS\n", Unconditional); err != nil {
				t.Errorf("Append during Fingerprint: %v", err)
				return
			}
		}
	}()
	for i := 0; i < 50; i++ {
		if len(c.Fingerprint()) == 0 {
			t.Error("empty fingerprint")
			break
		}
	}
	close(stop)
	wg.Wait()
}

// TestRefreshStaleVersion: a refresh whose policy moved on (rapid
// back-to-back mutations) must not install an outdated answer.
func TestRefreshStaleVersion(t *testing.T) {
	reg := obs.NewRegistry()
	c := mustOpen(t, Options{Shards: 1, Metrics: reg})
	ctx := context.Background()

	// Rapid-fire put + append: the put's refresh (version 1) very likely
	// lands after the append bumped to version 2 and must be discarded
	// then. Whatever the interleaving, the final answer must reflect
	// version 2.
	if _, err := c.Put(ctx, "fast", testLattice, testCons, MustNotExist); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Append(ctx, "fast", "rank >= TS\n", Unconditional); err != nil {
		t.Fatal(err)
	}
	mustFlush(t, c)
	res, err := c.Solve(ctx, "fast")
	if err != nil || res.Assignment["rank"] != "TS" || res.Info.Version != 2 {
		t.Fatalf("post-flush solve = %+v, %v (want version 2, rank TS)", res, err)
	}
	snap := reg.Snapshot()
	total := snap.Counters["catalog.refresh.completed"] + snap.Counters["catalog.refresh.stale"] +
		snap.Counters["catalog.refresh.dropped"] + snap.Counters["catalog.refresh.failures"]
	if want := snap.Counters["catalog.refresh.enqueued"]; total != want {
		t.Fatalf("refresh accounting leak: enqueued %d, accounted %d", want, total)
	}
	if g := reg.Snapshot().Gauges["catalog.refresh.pending"]; g != 0 {
		t.Fatalf("catalog.refresh.pending = %d after Flush, want 0", g)
	}
}
