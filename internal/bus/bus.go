// Package bus is a small in-process pub/sub event bus: named topics,
// buffered subscriptions, and non-blocking fan-out. It is the decoupling
// fabric between the catalog's ingest path and everything that reacts to a
// mutation after the fact — the per-shard cache refreshers today, metrics
// observers, and (per ROADMAP item 1) a WAL-shipping replicator tomorrow.
//
// # Delivery semantics
//
// Publish never blocks: each subscriber has a bounded buffer, and an event
// that finds a subscriber's buffer full is dropped for that subscriber
// (counted under "bus.dropped"). Within one subscription, events arrive in
// publish order; across subscriptions there is no ordering guarantee.
// Publishers therefore treat the bus as a lossy notification fabric, not a
// durable queue — the catalog's WAL is the durable history, and every
// subscriber must tolerate missing an event (the cache refresher does: a
// dropped refresh merely leaves the next read to fill the cache itself).
//
// Close tears down every subscription; a subscription's channel is closed
// exactly once, after which its receiver loop terminates. Publishing to a
// closed bus is a counted no-op, so racing producers never panic.
package bus

import (
	"log/slog"
	"sync"
	"sync/atomic"
	"time"

	"minup/internal/obs"
)

// Options tunes a Bus. The zero value is ready to use.
type Options struct {
	// Metrics, when non-nil, receives the bus.published / bus.delivered /
	// bus.dropped counters and the bus.subscriptions gauge.
	Metrics *obs.Registry
	// Logger, when non-nil, surfaces dropped-overflow events as warnings:
	// at most one line per WarnEvery per topic, carrying the number of
	// drops accumulated since the last line — so refresh-pipeline
	// backpressure is visible in the log stream without a drop storm
	// flooding it.
	Logger *slog.Logger
	// WarnEvery is the per-topic minimum interval between drop warnings
	// (default 10s).
	WarnEvery time.Duration
}

// Bus is the event fabric. Construct with New; safe for concurrent use.
type Bus struct {
	opt    Options
	seq    atomic.Uint64
	mu     sync.RWMutex
	subs   map[string][]*Subscription
	closed bool

	// Drop-warning rate limiter state, on its own mutex so Publish's read
	// lock never serializes on it beyond an actual drop.
	warnMu   sync.Mutex
	lastWarn map[string]time.Time
	pending  map[string]uint64
}

// Event is one published message. Seq is bus-assigned and strictly
// increasing across all topics, so subscribers can detect (not recover)
// gaps.
type Event struct {
	Topic   string
	Seq     uint64
	Payload any
}

// Subscription is one subscriber's buffered feed of a topic. Receive from C;
// C is closed when the subscription (or the whole bus) is closed, after any
// already-buffered events are drained.
type Subscription struct {
	// C delivers this subscription's events in publish order.
	C <-chan Event

	bus    *Bus
	topic  string
	ch     chan Event
	closed bool // guarded by bus.mu
}

// New creates a bus.
func New(opt Options) *Bus {
	if opt.WarnEvery <= 0 {
		opt.WarnEvery = 10 * time.Second
	}
	return &Bus{
		opt:      opt,
		subs:     make(map[string][]*Subscription),
		lastWarn: make(map[string]time.Time),
		pending:  make(map[string]uint64),
	}
}

// Subscribe registers a new subscription on topic with the given buffer
// capacity (minimum 1). Returns nil when the bus is already closed.
func (b *Bus) Subscribe(topic string, buffer int) *Subscription {
	if buffer < 1 {
		buffer = 1
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil
	}
	s := &Subscription{bus: b, topic: topic, ch: make(chan Event, buffer)}
	s.C = s.ch
	b.subs[topic] = append(b.subs[topic], s)
	if b.opt.Metrics != nil {
		b.opt.Metrics.Gauge("bus.subscriptions").Inc()
	}
	return s
}

// Close removes the subscription from its topic and closes its channel.
// Buffered events remain readable until drained. Safe to call more than
// once, and a no-op for a nil subscription.
func (s *Subscription) Close() {
	if s == nil {
		return
	}
	b := s.bus
	b.mu.Lock()
	defer b.mu.Unlock()
	s.closeLocked()
}

// closeLocked detaches and closes the subscription. Caller holds bus.mu.
func (s *Subscription) closeLocked() {
	if s.closed {
		return
	}
	s.closed = true
	list := s.bus.subs[s.topic]
	for i, t := range list {
		if t == s {
			s.bus.subs[s.topic] = append(list[:i:i], list[i+1:]...)
			break
		}
	}
	close(s.ch)
	if s.bus.opt.Metrics != nil {
		s.bus.opt.Metrics.Gauge("bus.subscriptions").Dec()
	}
}

// Publish fans payload out to every current subscriber of topic and returns
// the number of subscriptions that accepted it. Never blocks: a subscriber
// with a full buffer misses the event ("bus.dropped"). Publishing on a
// closed bus delivers to nobody.
func (b *Bus) Publish(topic string, payload any) int {
	ev := Event{Topic: topic, Seq: b.seq.Add(1), Payload: payload}
	delivered := 0
	b.mu.RLock()
	// Sends stay under the read lock: Subscription.Close needs the write
	// lock, so a channel can never be closed mid-send.
	if !b.closed {
		for _, s := range b.subs[topic] {
			select {
			case s.ch <- ev:
				delivered++
			default:
				b.noteDrop(topic)
			}
		}
	}
	b.mu.RUnlock()
	if m := b.opt.Metrics; m != nil {
		m.Counter("bus.published").Inc()
		m.Counter("bus.delivered").Add(uint64(delivered))
	}
	return delivered
}

// noteDrop counts one dropped delivery and, when a logger is wired, emits
// a warning at most once per WarnEvery per topic: the first drop on a quiet
// topic logs immediately, a drop storm logs one line per interval carrying
// the number of drops accumulated since the previous line.
func (b *Bus) noteDrop(topic string) {
	if b.opt.Metrics != nil {
		b.opt.Metrics.Counter("bus.dropped").Inc()
	}
	if b.opt.Logger == nil {
		return
	}
	now := time.Now()
	b.warnMu.Lock()
	b.pending[topic]++
	if last, ok := b.lastWarn[topic]; ok && now.Sub(last) < b.opt.WarnEvery {
		b.warnMu.Unlock()
		return
	}
	n := b.pending[topic]
	b.lastWarn[topic] = now
	delete(b.pending, topic)
	b.warnMu.Unlock()
	b.opt.Logger.Warn("bus: subscriber buffer full, events dropped",
		slog.String("topic", topic),
		slog.Uint64("dropped", n))
}

// Close shuts the bus down: every subscription's channel is closed (after
// its buffered events) and future Publish calls deliver to nobody.
// Idempotent.
func (b *Bus) Close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.closed = true
	for _, list := range b.subs {
		// closeLocked edits the topic's slice; iterate over a copy.
		for _, s := range append([]*Subscription(nil), list...) {
			s.closeLocked()
		}
	}
}
