package bus

import (
	"fmt"
	"log/slog"
	"strings"
	"sync"
	"testing"
	"time"

	"minup/internal/obs"
)

func TestPublishSubscribe(t *testing.T) {
	reg := obs.NewRegistry()
	b := New(Options{Metrics: reg})
	sub := b.Subscribe("t", 8)
	other := b.Subscribe("other", 8)

	if n := b.Publish("t", "hello"); n != 1 {
		t.Fatalf("Publish delivered to %d subs, want 1", n)
	}
	ev := <-sub.C
	if ev.Topic != "t" || ev.Payload != "hello" || ev.Seq == 0 {
		t.Fatalf("received %+v", ev)
	}
	select {
	case ev := <-other.C:
		t.Fatalf("other-topic subscription received %+v", ev)
	default:
	}
	if n := b.Publish("nobody", 1); n != 0 {
		t.Fatalf("topic with no subscribers delivered to %d", n)
	}
	snap := reg.Snapshot()
	if snap.Counters["bus.published"] != 2 || snap.Counters["bus.delivered"] != 1 {
		t.Fatalf("published=%d delivered=%d, want 2/1",
			snap.Counters["bus.published"], snap.Counters["bus.delivered"])
	}
	if g := snap.Gauges["bus.subscriptions"]; g != 2 {
		t.Fatalf("bus.subscriptions = %d, want 2", g)
	}
}

func TestPublishOrderWithinSubscription(t *testing.T) {
	b := New(Options{})
	sub := b.Subscribe("seq", 16)
	for i := 0; i < 10; i++ {
		b.Publish("seq", i)
	}
	for i := 0; i < 10; i++ {
		ev := <-sub.C
		if ev.Payload != i {
			t.Fatalf("event %d carried payload %v", i, ev.Payload)
		}
	}
}

func TestOverflowDropsNotBlocks(t *testing.T) {
	reg := obs.NewRegistry()
	b := New(Options{Metrics: reg})
	sub := b.Subscribe("full", 2)
	for i := 0; i < 5; i++ {
		b.Publish("full", i) // must not block even with nobody reading
	}
	if dropped := reg.Snapshot().Counters["bus.dropped"]; dropped != 3 {
		t.Fatalf("bus.dropped = %d, want 3", dropped)
	}
	// The two buffered events are still intact and in order.
	if ev := <-sub.C; ev.Payload != 0 {
		t.Fatalf("first buffered event = %v", ev.Payload)
	}
	if ev := <-sub.C; ev.Payload != 1 {
		t.Fatalf("second buffered event = %v", ev.Payload)
	}
}

func TestSubscriptionCloseDrainsBuffer(t *testing.T) {
	b := New(Options{})
	sub := b.Subscribe("t", 4)
	b.Publish("t", "kept")
	sub.Close()
	sub.Close() // idempotent
	if ev, ok := <-sub.C; !ok || ev.Payload != "kept" {
		t.Fatalf("buffered event lost on close: %v %v", ev, ok)
	}
	if _, ok := <-sub.C; ok {
		t.Fatal("channel still open after close and drain")
	}
	if n := b.Publish("t", "after"); n != 0 {
		t.Fatalf("closed subscription still receives: delivered %d", n)
	}
}

func TestBusClose(t *testing.T) {
	b := New(Options{})
	sub := b.Subscribe("t", 4)
	b.Close()
	b.Close() // idempotent
	if _, ok := <-sub.C; ok {
		t.Fatal("subscription channel open after bus close")
	}
	if n := b.Publish("t", 1); n != 0 {
		t.Fatalf("closed bus delivered to %d", n)
	}
	if s := b.Subscribe("t", 1); s != nil {
		t.Fatal("Subscribe on a closed bus returned a live subscription")
	}
}

// TestConcurrentPublishSubscribe races publishers against subscribers,
// closers, and a bus-wide Close under -race: no panics, no
// send-on-closed-channel, and every received event is well-formed.
func TestConcurrentPublishSubscribe(t *testing.T) {
	b := New(Options{Metrics: obs.NewRegistry()})
	var pubs, subs sync.WaitGroup
	for s := 0; s < 6; s++ {
		subs.Add(1)
		go func(s int) {
			defer subs.Done()
			sub := b.Subscribe(fmt.Sprintf("topic%d", s%3), 4)
			if sub == nil {
				return
			}
			n := 0
			for ev := range sub.C {
				if ev.Topic == "" {
					t.Error("empty topic received")
					return
				}
				if n++; n > 50 {
					sub.Close()
				}
			}
		}(s)
	}
	for p := 0; p < 4; p++ {
		pubs.Add(1)
		go func(p int) {
			defer pubs.Done()
			for i := 0; i < 200; i++ {
				b.Publish(fmt.Sprintf("topic%d", i%3), i)
			}
		}(p)
	}
	pubs.Wait()
	// Closing the bus closes every remaining channel, so slow subscribers
	// that never hit their own Close threshold still terminate.
	b.Close()
	subs.Wait()
}

// TestOverflowDropWarningRateLimited checks the drop-warning satellite: the
// first drop on a quiet topic logs immediately, a drop storm inside the
// WarnEvery interval stays silent, and the next line after the interval
// carries the accumulated count.
func TestOverflowDropWarningRateLimited(t *testing.T) {
	logBuf := &strings.Builder{}
	logger := slog.New(slog.NewJSONHandler(logBuf, nil))
	b := New(Options{Logger: logger, WarnEvery: time.Hour})
	b.Subscribe("full", 1)

	b.Publish("full", 0) // fills the buffer
	b.Publish("full", 1) // first drop: warns immediately
	b.Publish("full", 2) // inside the interval: silent
	b.Publish("full", 3)

	lines := strings.Count(logBuf.String(), "events dropped")
	if lines != 1 {
		t.Fatalf("%d warn lines inside the interval, want 1:\n%s", lines, logBuf.String())
	}
	if !strings.Contains(logBuf.String(), `"topic":"full"`) || !strings.Contains(logBuf.String(), `"dropped":1`) {
		t.Fatalf("first warn line malformed:\n%s", logBuf.String())
	}

	// Force the interval to lapse; the next drop flushes the pending count
	// (the two silent drops plus this one).
	b.warnMu.Lock()
	b.lastWarn["full"] = time.Now().Add(-2 * time.Hour)
	b.warnMu.Unlock()
	b.Publish("full", 4)
	if !strings.Contains(logBuf.String(), `"dropped":3`) {
		t.Fatalf("accumulated drop count not reported:\n%s", logBuf.String())
	}
	if got := strings.Count(logBuf.String(), "events dropped"); got != 2 {
		t.Fatalf("%d warn lines total, want 2:\n%s", got, logBuf.String())
	}
}

// TestOverflowDropNoLoggerStaysQuiet pins the default: without a logger the
// drop path is metrics-only and must not panic on the nil maps' behalf.
func TestOverflowDropNoLoggerStaysQuiet(t *testing.T) {
	reg := obs.NewRegistry()
	b := New(Options{Metrics: reg})
	b.Subscribe("full", 1)
	b.Publish("full", 0)
	b.Publish("full", 1)
	if dropped := reg.Snapshot().Counters["bus.dropped"]; dropped != 1 {
		t.Fatalf("bus.dropped = %d, want 1", dropped)
	}
}
